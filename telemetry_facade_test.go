package aitax_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"aitax"
)

func tracedOpts() aitax.AppOptions {
	return aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.UInt8,
		Delegate: aitax.DelegateHexagon,
		Frames:   8, WarmupFrames: -1,
	}
}

func TestMeasureAppTracedMatchesUntraced(t *testing.T) {
	plain, err := aitax.MeasureAppFrames(tracedOpts())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := aitax.MeasureAppTraced(tracedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Frames) != len(plain) {
		t.Fatalf("traced frames = %d, untraced %d", len(tr.Frames), len(plain))
	}
	for i := range plain {
		if tr.Frames[i] != plain[i] {
			t.Fatalf("frame %d differs with tracing on: %+v vs %+v", i, tr.Frames[i], plain[i])
		}
	}
}

func TestMeasureAppTracedSpanTreeAndExports(t *testing.T) {
	tr, err := aitax.MeasureAppTraced(tracedOpts())
	if err != nil {
		t.Fatal(err)
	}
	roots := 0
	for _, s := range tr.Spans {
		if s.Parent == 0 {
			roots++
		}
	}
	if roots != len(tr.Frames) {
		t.Fatalf("%d root spans for %d frames", roots, len(tr.Frames))
	}
	if len(tr.Flows) == 0 {
		t.Fatal("hexagon run produced no cross-track flows")
	}
	if got := tr.Metrics.Counter("aitax_frames_total"); got != float64(len(tr.Frames)) {
		t.Fatalf("frames_total = %v", got)
	}
	if tr.Metrics.Counter("aitax_sched_context_switches_total") != float64(tr.ContextSwitches) {
		t.Fatal("context switches not mirrored into metrics")
	}
	var chrome, prom bytes.Buffer
	if err := tr.Chrome.WriteJSON(&chrome); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"traceEvents"`) {
		t.Fatal("chrome export malformed")
	}
	if err := tr.Metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `aitax_stage_ms_p99{stage="total"}`) {
		t.Fatalf("metrics export missing stage quantiles:\n%s", prom.String())
	}
}

func TestMeasureAppTracedInsideLabReportsBundle(t *testing.T) {
	l := &aitax.Lab{Parallelism: 1}
	rs := l.Run(context.Background(), []aitax.Job{{
		ID: "traced",
		Run: func(ctx context.Context) (any, error) {
			return aitax.MeasureAppTracedCtx(ctx, tracedOpts())
		},
	}})
	if rs[0].Err != nil {
		t.Fatal(rs[0].Err)
	}
	bundle := aitax.MergeJobTelemetry(rs)
	if len(bundle.Spans) == 0 || bundle.Registry.Counter("aitax_frames_total") != 8 {
		t.Fatalf("job did not report its telemetry bundle: %d spans", len(bundle.Spans))
	}
}

func TestProbeOverheadOption(t *testing.T) {
	opts := tracedOpts()
	measure := func(probe float64) aitax.Breakdown {
		o := opts
		o.ProbeOverhead = probe
		b, err := aitax.MeasureApp(o)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base, probed := measure(0), measure(0.07)
	if probed.ModelExecution <= base.ModelExecution {
		t.Fatalf("7%% probe did not slow inference: %v vs %v",
			probed.ModelExecution, base.ModelExecution)
	}

	o := opts
	o.ProbeOverhead = 0.5
	if _, err := aitax.MeasureApp(o); err == nil || !strings.Contains(err.Error(), "ProbeOverhead") {
		t.Fatalf("out-of-range probe accepted: %v", err)
	}
	o.ProbeOverhead = 0.05
	o.Delegate = aitax.DelegateNNAPI
	if _, err := aitax.MeasureApp(o); err == nil || !strings.Contains(err.Error(), "NNAPI") {
		t.Fatalf("NNAPI probe accepted: %v", err)
	}
}

func TestModelAliasFacade(t *testing.T) {
	m, err := aitax.ModelByName("MobileNetV1")
	if err != nil || m.Name != "MobileNet 1.0 v1" {
		t.Fatalf("alias lookup: %v, %v", m, err)
	}
}
