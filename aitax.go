// Package aitax is a library for end-to-end performance analysis of
// machine learning on mobile SoCs, reproducing "AI Tax in Mobile SoCs"
// (Buch, Azad, Joshi, Janapa Reddi — ISPASS 2021) on a deterministic
// simulated platform.
//
// The paper's thesis: the time an ML application spends *outside* model
// inference — data capture, pre-/post-processing, framework scheduling,
// accelerator offload, cold start, multi-tenancy contention and
// run-to-run variability — is a first-class performance quantity, the
// "AI tax", that inference-only benchmarks miss.
//
// This package is the public face of the repository. It re-exports the
// building blocks (model zoo, simulated Snapdragon platforms, a
// TFLite-style runtime with CPU/GPU/Hexagon/NNAPI delegates, an
// instrumented Android-app pipeline) and offers one-call helpers for
// the common measurements. The experiment harness in internal/bench
// regenerates every table and figure of the paper; see EXPERIMENTS.md.
//
// Quickstart:
//
//	breakdown, err := aitax.MeasureApp(aitax.AppOptions{
//		Model:    "MobileNet 1.0 v1",
//		DType:    aitax.UInt8,
//		Delegate: aitax.DelegateNNAPI,
//		Frames:   50,
//	})
//	fmt.Println(breakdown.Render()) // per-stage latency + AI tax share
package aitax

import (
	"context"
	"fmt"
	"time"

	"aitax/internal/app"
	"aitax/internal/bench"
	"aitax/internal/core"
	"aitax/internal/driver"
	"aitax/internal/faults"
	"aitax/internal/lab"
	"aitax/internal/models"
	"aitax/internal/nnapi"
	"aitax/internal/sim"
	"aitax/internal/snpe"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
	"aitax/internal/trace"
	"aitax/internal/workload"
)

// Model zoo (paper Table I).
type (
	// Model is one Table-I benchmark model: graph, pipeline spec,
	// support matrix.
	Model = models.Model
	// Task is the model's ML task category.
	Task = models.Task
	// Support is the Table-I framework/precision support matrix.
	Support = models.Support
)

// Typed lookup failures. The lookup helpers wrap these sentinels, so
// callers branch with errors.Is — a serving frontend maps
// ErrUnknownModel to a 404 — instead of matching message text.
var (
	// ErrUnknownModel is wrapped by ModelByName when no model matches.
	ErrUnknownModel = models.ErrUnknownModel
	// ErrUnknownPlatform is wrapped by PlatformByName when no platform
	// matches.
	ErrUnknownPlatform = soc.ErrUnknownPlatform
	// ErrUnknownExperiment is wrapped by ExperimentByID when no
	// experiment matches.
	ErrUnknownExperiment = bench.ErrUnknownExperiment
)

// Models returns the Table-I model zoo in row order.
func Models() []*Model { return models.All() }

// ModelByName looks a model up by its Table-I name (aliases like
// "MobileNetV1" work). A failed lookup wraps ErrUnknownModel.
func ModelByName(name string) (*Model, error) { return models.ByName(name) }

// ModelNames lists the zoo's names in Table-I order.
func ModelNames() []string { return models.Names() }

// Platforms (paper Table II).
type (
	// SoC is one simulated hardware platform.
	SoC = soc.SoC
	// Device is one compute unit on a platform.
	Device = soc.Device
)

// Platforms returns the four Table-II platforms.
func Platforms() []*SoC { return soc.Platforms() }

// PlatformByName finds a platform by product or chipset name. A failed
// lookup wraps ErrUnknownPlatform.
func PlatformByName(name string) (*SoC, error) { return soc.PlatformByName(name) }

// Pixel3 returns the paper's primary platform (Snapdragon 845).
func Pixel3() *SoC { return soc.Pixel3() }

// Element types.
type DType = tensor.DType

// Element type constants.
const (
	Float32 = tensor.Float32
	Int8    = tensor.Int8
	UInt8   = tensor.UInt8
)

// Runtime plumbing.
type (
	// Runtime is one simulated process's execution stack.
	Runtime = tflite.Runtime
	// Interpreter executes one model with one delegate configuration.
	Interpreter = tflite.Interpreter
	// InterpreterOptions configure an interpreter.
	InterpreterOptions = tflite.Options
	// Delegate selects the execution path.
	Delegate = tflite.Delegate
	// BenchTool is the TFLite benchmark-utility model.
	BenchTool = tflite.BenchTool
	// RunSample is one measured benchmark iteration.
	RunSample = tflite.RunSample
	// StdLib selects the C++ standard library the benchmark binary was
	// compiled against (libc++ vs libstdc++).
	StdLib = tflite.StdLib
	// InvokeReport describes one inference invocation.
	InvokeReport = tflite.Report
	// NNAPI is the modeled Android Neural Networks API runtime.
	NNAPI = nnapi.Framework
	// SNPE is the modeled vendor (Qualcomm) framework.
	SNPE = snpe.SDK
	// SNPERuntime selects an SNPE execution runtime (CPU/GPU/DSP).
	SNPERuntime = snpe.RuntimeKind
	// ExecResult describes how a delegate execution spent its time.
	ExecResult = driver.Result
)

// SNPE runtime constants.
const (
	SNPECPU = snpe.RuntimeCPU
	SNPEGPU = snpe.RuntimeGPU
	SNPEDSP = snpe.RuntimeDSP
)

// Standard-library constants.
const (
	LibCXX    = tflite.LibCXX
	LibStdCXX = tflite.LibStdCXX
)

// Delegate constants.
const (
	DelegateCPU     = tflite.DelegateCPU
	DelegateGPU     = tflite.DelegateGPU
	DelegateHexagon = tflite.DelegateHexagon
	DelegateNNAPI   = tflite.DelegateNNAPI
)

// NewStack builds a fresh simulated process (engine, scheduler, runtime)
// on the platform.
func NewStack(platform *SoC, seed uint64) *Runtime { return tflite.NewStack(platform, seed) }

// Application pipeline.
type (
	// App is the instrumented Android-application pipeline.
	App = app.App
	// AppConfig configures an App.
	AppConfig = app.Config
	// FrameStats is one frame's per-stage latency breakdown.
	FrameStats = app.FrameStats
	// Background is a set of multi-tenant background inference jobs.
	Background = workload.Background
)

// NewApp builds an application on a runtime.
func NewApp(rt *Runtime, cfg AppConfig) (*App, error) { return app.New(rt, cfg) }

// StartBackground launches background inference jobs (multi-tenancy).
func StartBackground(rt *Runtime, m *Model, dt DType, d Delegate, count int) (*Background, error) {
	return workload.Start(rt, m, dt, d, count)
}

// AI-tax accounting (paper Fig. 1).
type (
	// Breakdown is an aggregated per-stage latency account.
	Breakdown = core.Breakdown
	// TaxonomyComponent is one leaf of the Fig. 1 overhead taxonomy.
	TaxonomyComponent = core.Component
)

// TaxBreakdown aggregates instrumented frames into a stage breakdown.
func TaxBreakdown(frames []FrameStats) Breakdown { return core.FromFrames(frames) }

// Taxonomy returns the Fig. 1 AI-tax taxonomy.
func Taxonomy() []TaxonomyComponent { return core.Taxonomy() }

// RenderTaxonomy draws the Fig. 1 tree as text.
func RenderTaxonomy() string { return core.RenderTaxonomy() }

// Experiments (tables and figures).
type (
	// Experiment regenerates one table or figure of the paper.
	Experiment = bench.Experiment
	// ExperimentConfig parameterizes an experiment run.
	ExperimentConfig = bench.Config
	// ExperimentResult is a regenerated artifact.
	ExperimentResult = bench.Result
)

// Experiments lists every regenerable table and figure in paper order.
func Experiments() []Experiment { return bench.Experiments() }

// ExperimentByID finds an experiment ("table1", "fig5", ...). A failed
// lookup wraps ErrUnknownExperiment.
func ExperimentByID(id string) (Experiment, error) { return bench.ByID(id) }

// RunAllExperiments regenerates every experiment across a worker pool of
// the given size (<= 0 means GOMAXPROCS), returning results in paper
// order regardless of completion order — rendered output is
// byte-identical at any parallelism. A failing or panicking experiment
// becomes an error Result (Notes carry a "setup failed" line), never a
// crashed run.
func RunAllExperiments(cfg ExperimentConfig, parallelism int) []*ExperimentResult {
	return bench.RunAll(cfg, parallelism)
}

// Parallel experiment lab.
type (
	// Lab is a concurrent measurement-job engine: a bounded worker pool
	// with panic isolation, per-job accounting, and a deterministic
	// merge that emits results in submission order.
	Lab = lab.Lab
	// Job is one unit of lab work.
	Job = lab.Job
	// JobResult is the outcome of one lab job.
	JobResult = lab.JobResult
	// LabPanicError is the error a panicking lab job is converted to.
	LabPanicError = lab.PanicError
)

// ReportSimTime attributes simulated virtual time to the enclosing lab
// job; outside a lab job it is a no-op. The MeasureApp/MeasureBenchmark
// context variants call it automatically.
func ReportSimTime(ctx context.Context, d time.Duration) { lab.ReportSim(ctx, d) }

// Telemetry (pipeline spans, deterministic metrics, Chrome trace).
type (
	// Span is one timed region of pipeline work on the virtual clock.
	Span = telemetry.Span
	// SpanFlow links two spans across tracks (a FastRPC or GPU
	// dispatch crossing); Chrome traces render it as a flow arrow.
	SpanFlow = telemetry.Flow
	// SpanTrack is the hardware lane a span executes on.
	SpanTrack = telemetry.Track
	// SpanAttr is one key/value annotation on a span.
	SpanAttr = telemetry.Attr
	// Tracer records spans and flows against a virtual clock.
	Tracer = telemetry.Tracer
	// MetricsRegistry is a deterministic counter/gauge/histogram
	// registry with exact quantiles and Prometheus/JSON export.
	MetricsRegistry = telemetry.Registry
	// TelemetryBundle carries one run's spans, flows and metrics.
	TelemetryBundle = telemetry.Bundle
	// ChromeTrace merges scheduler slices, pipeline spans and counter
	// tracks into one Chrome/Perfetto trace-event file.
	ChromeTrace = trace.ChromeRecorder
)

// Span track constants.
const (
	TrackCPU = telemetry.TrackCPU
	TrackDSP = telemetry.TrackDSP
	TrackGPU = telemetry.TrackGPU
)

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewChromeTrace creates an empty Chrome trace-event recorder.
func NewChromeTrace() *ChromeTrace { return trace.NewChromeRecorder() }

// MergeTelemetryBundles combines bundles deterministically in argument
// order (span IDs re-based, counters summed, histograms concatenated).
func MergeTelemetryBundles(bundles ...*TelemetryBundle) *TelemetryBundle {
	return telemetry.MergeBundles(bundles...)
}

// ReportTelemetry attaches a telemetry bundle to the enclosing lab job;
// outside a lab job it is a no-op. MeasureAppTracedCtx calls it
// automatically.
func ReportTelemetry(ctx context.Context, b *TelemetryBundle) { lab.ReportTelemetry(ctx, b) }

// MergeJobTelemetry combines lab results' telemetry bundles in
// submission order, so the aggregate is identical at any parallelism.
func MergeJobTelemetry(results []JobResult) *TelemetryBundle { return lab.MergeTelemetry(results) }

// Fault injection (deterministic offload-failure modeling).
type (
	// FaultPlan describes what the fault injector may break: FastRPC
	// transport errors and timeouts, session-setup failures, delegate /
	// driver init failures, driver stalls and thermal trips. The zero
	// value injects nothing and keeps runs byte-identical; see
	// docs/FAULTS.md.
	FaultPlan = faults.Plan
	// FaultError is a terminal injected failure (retries exhausted or a
	// non-retryable fault); errors.As against it recovers the site.
	FaultError = faults.Error
)

// ParseFaultPlan parses the -faults CLI spec ("rpc=0.1,timeout=0.05,
// deadline=40ms,init=1,seed=7,...") into a FaultPlan. The empty string
// is the zero plan.
func ParseFaultPlan(spec string) (FaultPlan, error) { return faults.ParsePlan(spec) }

// DefaultSeed is the seed every measurement uses when none is set
// explicitly (see AppOptions.SeedSet and ExperimentConfig.SeedSet).
const DefaultSeed uint64 = bench.DefaultSeed

// AppOptions configure MeasureApp, MeasureAppFrames and
// MeasureBenchmark. Each field documents which calls honour it; calls
// return an error when an option they ignore is set, instead of
// silently dropping it. Defaults documents the unset-field behaviour.
type AppOptions struct {
	// Model is the Table-I model name. All calls.
	Model string
	// DType is the precision (Float32 or UInt8). All calls.
	DType DType
	// Delegate is the execution path. All calls.
	Delegate Delegate
	// Frames is the number of measured frames (default 50). All calls.
	Frames int
	// WarmupFrames are discarded before measuring: 0 selects the default
	// of 2, a negative value disables warmup. MeasureApp and
	// MeasureAppFrames only; MeasureBenchmark rejects it (the benchmark
	// utility has no warmup phase).
	WarmupFrames int
	// Platform defaults to the Pixel 3. All calls.
	Platform *SoC
	// Seed fixes the run's stochastic behaviour. All calls. A zero Seed
	// with SeedSet false selects DefaultSeed (42); set SeedSet to
	// request seed 0 itself.
	Seed uint64
	// SeedSet marks Seed as explicit, making Seed 0 requestable.
	// Without it a zero Seed is indistinguishable from "unset".
	SeedSet bool
	// BackgroundJobs adds multi-tenant load on BackgroundDelegate.
	// MeasureApp and MeasureAppFrames only; MeasureBenchmark rejects it
	// (the benchmark utility models a single isolated process).
	BackgroundJobs     int
	BackgroundDelegate Delegate
	// StdLib selects the benchmark binary's C++ standard library, which
	// flips the random-generation cost asymmetry (§IV-A).
	// MeasureBenchmark only; the app calls reject a non-default value
	// (the application pipeline processes real frames, not random
	// input).
	StdLib StdLib
	// ProbeOverhead models the instrumentation probe effect (§III-C) as
	// a fractional compute-time inflation on accelerator targets; the
	// paper measured 4–7%, i.e. 0.04–0.07. Zero (the default) disables
	// the probe entirely; CPU targets are never wrapped either way.
	// All calls; values outside [0, 0.25] and the NNAPI delegate
	// (which owns its targets) are rejected at interpreter build time.
	ProbeOverhead float64
	// Faults injects deterministic offload failures (see FaultPlan).
	// The zero plan injects nothing and leaves output byte-identical;
	// a plan without an explicit fault Seed derives one from the run
	// seed, so run-level determinism extends to the fault stream.
	// All calls; invalid plans are rejected before the run starts.
	Faults FaultPlan
}

// Defaults returns a copy of o with every unset field filled with its
// documented default: Pixel 3 platform, DefaultSeed (unless SeedSet or
// a non-zero Seed marks the seed explicit), 50 frames, and 2 warmup
// frames (a negative WarmupFrames becomes 0, i.e. no warmup).
func (o AppOptions) Defaults() AppOptions {
	if o.Platform == nil {
		o.Platform = soc.Pixel3()
	}
	if !o.SeedSet {
		if o.Seed == 0 {
			o.Seed = DefaultSeed
		}
		o.SeedSet = true
	}
	if o.Frames == 0 {
		o.Frames = 50
	}
	switch {
	case o.WarmupFrames == 0:
		o.WarmupFrames = 2
	case o.WarmupFrames < 0:
		o.WarmupFrames = 0
	}
	return o
}

// MeasureApp is MeasureAppCtx with context.Background(). New code
// should prefer the Ctx form: the non-ctx names exist only as
// one-line conveniences for scripts and examples.
func MeasureApp(opts AppOptions) (Breakdown, error) {
	return MeasureAppCtx(context.Background(), opts)
}

// MeasureAppCtx runs the instrumented application end to end on the
// simulated platform and returns the per-stage AI-tax breakdown — the
// library's one-call answer to "where does my ML app's time go?". It is
// the canonical form: the simulation checks ctx between event batches
// and aborts promptly when it is cancelled, and when run inside a lab
// job it attributes the simulated virtual time to the job's accounting.
func MeasureAppCtx(ctx context.Context, opts AppOptions) (Breakdown, error) {
	frames, err := MeasureAppFramesCtx(ctx, opts)
	if err != nil {
		return Breakdown{}, err
	}
	return core.FromFrames(frames), nil
}

// MeasureBenchmark is MeasureBenchmarkCtx with context.Background().
// New code should prefer the Ctx form.
func MeasureBenchmark(opts AppOptions) ([]RunSample, error) {
	return MeasureBenchmarkCtx(context.Background(), opts)
}

// MeasureBenchmarkCtx runs the TFLite-style benchmark utility for the
// same model and returns its per-run samples — the inference-only view
// the paper contrasts applications against. It is the canonical form,
// with cancellation and lab simulated-time accounting mirroring
// MeasureAppCtx. Options the benchmark utility cannot honour
// (WarmupFrames, BackgroundJobs) are rejected with an error rather than
// silently ignored.
func MeasureBenchmarkCtx(ctx context.Context, opts AppOptions) ([]RunSample, error) {
	if opts.WarmupFrames != 0 {
		return nil, fmt.Errorf("aitax: MeasureBenchmark does not honour WarmupFrames (the benchmark utility has no warmup phase); use MeasureApp, or leave it unset")
	}
	if opts.BackgroundJobs != 0 {
		return nil, fmt.Errorf("aitax: MeasureBenchmark does not honour BackgroundJobs (the benchmark utility models a single isolated process); use MeasureApp, or leave it unset")
	}
	opts = opts.Defaults()
	m, err := models.ByName(opts.Model)
	if err != nil {
		return nil, err
	}
	rt := tflite.NewStack(opts.Platform, opts.Seed)
	inj, err := faults.New(opts.Faults.Resolved(opts.Seed))
	if err != nil {
		return nil, err
	}
	rt.Faults = inj
	ip, err := rt.NewInterpreter(m, opts.DType, tflite.Options{Delegate: opts.Delegate, ProbeOverhead: opts.ProbeOverhead})
	if err != nil {
		return nil, err
	}
	bt := tflite.NewBenchTool(rt, ip)
	bt.StdLib = opts.StdLib
	var samples []tflite.RunSample
	bt.Run(opts.Frames, func(s []tflite.RunSample) { samples = s })
	if err := runEngine(ctx, rt.Eng); err != nil {
		return nil, err
	}
	return samples, nil
}

// MeasureAppFrames is MeasureAppFramesCtx with context.Background().
// New code should prefer the Ctx form.
func MeasureAppFrames(opts AppOptions) ([]FrameStats, error) {
	return MeasureAppFramesCtx(context.Background(), opts)
}

// MeasureAppFramesCtx is MeasureAppCtx returning the raw per-frame
// stage breakdowns instead of the aggregate (for CSV export and custom
// analyses). It is the canonical form, with cancellation and lab
// simulated-time accounting.
func MeasureAppFramesCtx(ctx context.Context, opts AppOptions) ([]FrameStats, error) {
	if opts.StdLib != LibCXX {
		return nil, errAppStdLib()
	}
	opts = opts.Defaults()
	_, frames, err := measureFrames(ctx, opts, nil)
	return frames, err
}

// errAppStdLib is the shared rejection for StdLib on app measurements.
func errAppStdLib() error {
	return fmt.Errorf("aitax: the application pipeline does not honour StdLib (it processes real frames, not generated random input); use MeasureBenchmark, or leave it unset")
}

// measureFrames is the shared engine behind MeasureAppFrames and
// MeasureAppTraced: it builds the stack, lets setup (when non-nil)
// enable telemetry on the fresh runtime before any pipeline component
// exists, runs the app for opts.Frames measured frames, and returns
// the runtime alongside the frames. opts must already be defaulted.
func measureFrames(ctx context.Context, opts AppOptions, setup func(*tflite.Runtime)) (*tflite.Runtime, []app.FrameStats, error) {
	m, err := models.ByName(opts.Model)
	if err != nil {
		return nil, nil, err
	}
	rt := tflite.NewStack(opts.Platform, opts.Seed)
	inj, err := faults.New(opts.Faults.Resolved(opts.Seed))
	if err != nil {
		return nil, nil, err
	}
	rt.Faults = inj
	if setup != nil {
		setup(rt)
	}
	a, err := app.New(rt, app.Config{
		Model: m, DType: opts.DType, Delegate: opts.Delegate, Streaming: true,
		ProbeOverhead: opts.ProbeOverhead,
	})
	if err != nil {
		return nil, nil, err
	}
	var bg *workload.Background
	if opts.BackgroundJobs > 0 {
		bg, err = workload.Start(rt, m, opts.DType, opts.BackgroundDelegate, opts.BackgroundJobs)
		if err != nil {
			return nil, nil, err
		}
	}
	var frames []app.FrameStats
	a.Init(func() {
		a.Run(opts.Frames+opts.WarmupFrames, func(sts []app.FrameStats) {
			frames = sts[opts.WarmupFrames:]
			a.StopStream()
			if bg != nil {
				bg.Stop()
			}
		})
	})
	if err := runEngine(ctx, rt.Eng); err != nil {
		return nil, nil, err
	}
	return rt, frames, nil
}

// TraceRun is the full observability record of one traced app run: the
// per-frame stage breakdowns plus the span tree, cross-track flows,
// aggregated metrics and a ready-to-write Chrome trace.
type TraceRun struct {
	// Frames are the measured per-frame stage breakdowns (warmup
	// already discarded), exactly as MeasureAppFrames would return.
	Frames []FrameStats
	// Spans is the run's complete span set; each frame's tree tiles its
	// FrameStats boundaries exactly.
	Spans []Span
	// Flows are the cross-track links (FastRPC down/up, GPU dispatch).
	Flows []SpanFlow
	// Metrics aggregates the run's counters and stage histograms.
	Metrics *MetricsRegistry
	// Chrome holds scheduler slices, pipeline spans, flow arrows and
	// accelerator-occupancy counter tracks, ready for WriteJSON.
	Chrome *ChromeTrace
	// Migrations and ContextSwitches are the scheduler's totals for the
	// run (also recorded in Metrics).
	Migrations      int
	ContextSwitches int
}

// MeasureAppTraced is MeasureAppTracedCtx with context.Background().
// New code should prefer the Ctx form.
func MeasureAppTraced(opts AppOptions) (*TraceRun, error) {
	return MeasureAppTracedCtx(context.Background(), opts)
}

// MeasureAppTracedCtx is MeasureAppFramesCtx with the telemetry layer
// switched on: the same deterministic run (traced and untraced runs of
// one seed produce identical FrameStats) additionally yields spans,
// flows, metrics and a Chrome trace. It is the canonical form: inside a
// lab job it reports both the simulated time and the telemetry bundle,
// so merged aggregates are parallelism-independent.
func MeasureAppTracedCtx(ctx context.Context, opts AppOptions) (*TraceRun, error) {
	if opts.StdLib != LibCXX {
		return nil, errAppStdLib()
	}
	opts = opts.Defaults()
	chrome := trace.NewChromeRecorder()
	rt, frames, err := measureFrames(ctx, opts, func(rt *tflite.Runtime) {
		rt.Tracer = telemetry.NewTracer(rt.Eng.Now)
		rt.Metrics = telemetry.NewRegistry()
		chrome.Attach(rt.Sch)
	})
	if err != nil {
		return nil, err
	}
	mig, sw := rt.Sch.Migrations(), rt.Sch.Switches()
	rt.Metrics.Add("aitax_sched_migrations_total", float64(mig))
	rt.Metrics.Add("aitax_sched_context_switches_total", float64(sw))
	spans, flows := rt.Tracer.Spans(), rt.Tracer.Flows()
	chrome.AddTelemetry(spans, flows)
	chrome.AddSpanOccupancy("dsp in flight", spans, telemetry.TrackDSP)
	chrome.AddSpanOccupancy("gpu in flight", spans, telemetry.TrackGPU)
	chrome.AddFaultCounters(rt.Metrics, rt.Eng.Now())
	lab.ReportTelemetry(ctx, &telemetry.Bundle{Spans: spans, Flows: flows, Registry: rt.Metrics})
	return &TraceRun{
		Frames:          frames,
		Spans:           spans,
		Flows:           flows,
		Metrics:         rt.Metrics,
		Chrome:          chrome,
		Migrations:      mig,
		ContextSwitches: sw,
	}, nil
}

// runEngine drains the simulation engine, checking ctx between event
// batches so a cancelled measurement aborts promptly, and reports the
// final virtual time to the enclosing lab job (if any).
func runEngine(ctx context.Context, eng *sim.Engine) error {
	const batch = 4096
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		for i := 0; i < batch; i++ {
			if !eng.Step() {
				lab.ReportSim(ctx, eng.Now().Duration())
				return nil
			}
		}
	}
}
