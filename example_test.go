package aitax_test

import (
	"fmt"

	"aitax"
)

// ExampleMeasureApp measures where an ML application's time goes on the
// simulated Pixel 3. The output is deterministic for a fixed seed.
func ExampleMeasureApp() {
	breakdown, err := aitax.MeasureApp(aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.UInt8,
		Delegate: aitax.DelegateNNAPI,
		Frames:   20,
		Seed:     42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("frames measured: %d\n", breakdown.N)
	fmt.Printf("inference is the smaller share: %v\n",
		breakdown.ModelExecution < breakdown.Tax())
	// Output:
	// frames measured: 20
	// inference is the smaller share: true
}

// ExampleModelByName inspects a Table-I model's pipeline requirements.
func ExampleModelByName() {
	m, err := aitax.ModelByName("PoseNet")
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Task)
	fmt.Println(m.Resolution())
	fmt.Println(m.Pre.Tasks())
	fmt.Println(m.PostTasks)
	// Output:
	// Pose Estimation
	// 224x224
	// scale, crop, normalize, rotate
	// calculate keypoints
}

// ExampleTopK runs the real classification post-processing on fabricated
// model outputs.
func ExampleTopK() {
	m, _ := aitax.ModelByName("MobileNet 1.0 v1")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 7)
	top := aitax.TopK(outs[0], 3)
	fmt.Printf("%d predictions, best first: %v\n", len(top), top[0].Score >= top[1].Score)
	// Output:
	// 3 predictions, best first: true
}

// ExamplePlatforms lists the Table-II hardware.
func ExamplePlatforms() {
	for _, p := range aitax.Platforms() {
		fmt.Printf("%s: %s\n", p.Chipset, p.DSPName)
	}
	// Output:
	// Snapdragon 835: Hexagon 682
	// Snapdragon 845: Hexagon 685
	// Snapdragon 855: Hexagon 690
	// Snapdragon 865: Hexagon 698
}

// ExampleExperimentByID regenerates one paper artifact.
func ExampleExperimentByID() {
	e, err := aitax.ExperimentByID("table2")
	if err != nil {
		panic(err)
	}
	res := e.Run(aitax.ExperimentConfig{Runs: 5})
	fmt.Printf("%s has %d rows\n", res.ID, len(res.Rows))
	// Output:
	// table2 has 4 rows
}
