package aitax_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"aitax"
)

func TestModelsFacade(t *testing.T) {
	if len(aitax.Models()) != 11 {
		t.Fatalf("models = %d", len(aitax.Models()))
	}
	m, err := aitax.ModelByName("MobileNet 1.0 v1")
	if err != nil || m.Task != "Classification" {
		t.Fatalf("lookup: %v %v", m, err)
	}
	if len(aitax.ModelNames()) != 11 {
		t.Fatal("names facade broken")
	}
}

func TestPlatformsFacade(t *testing.T) {
	if len(aitax.Platforms()) != 4 {
		t.Fatal("platforms facade broken")
	}
	p := aitax.Pixel3()
	if p.Chipset != "Snapdragon 845" {
		t.Fatalf("pixel3 = %s", p.Chipset)
	}
	if _, err := aitax.PlatformByName("Snapdragon 865"); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureApp(t *testing.T) {
	b, err := aitax.MeasureApp(aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.UInt8,
		Delegate: aitax.DelegateNNAPI,
		Frames:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 15 {
		t.Fatalf("frames = %d", b.N)
	}
	if b.TaxFraction() <= 0.3 {
		t.Fatalf("tax fraction = %v, want the tax to be a major share", b.TaxFraction())
	}
	if !strings.Contains(b.Render(), "AI tax") {
		t.Fatal("render missing tax line")
	}
}

func TestMeasureAppErrors(t *testing.T) {
	if _, err := aitax.MeasureApp(aitax.AppOptions{Model: "nope"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := aitax.MeasureApp(aitax.AppOptions{
		Model: "AlexNet", DType: aitax.Float32, Delegate: aitax.DelegateNNAPI,
	}); err == nil {
		t.Fatal("Table-I-unsupported combo accepted")
	}
}

func TestMeasureBenchmark(t *testing.T) {
	samples, err := aitax.MeasureBenchmark(aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.Float32,
		Delegate: aitax.DelegateCPU,
		Frames:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("samples = %d", len(samples))
	}
}

func TestMeasureAppWithBackground(t *testing.T) {
	quiet, err := aitax.MeasureApp(aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.UInt8,
		Delegate: aitax.DelegateNNAPI, Frames: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := aitax.MeasureApp(aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.UInt8,
		Delegate: aitax.DelegateNNAPI, Frames: 10,
		BackgroundJobs: 3, BackgroundDelegate: aitax.DelegateHexagon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ModelExecution <= quiet.ModelExecution {
		t.Fatal("DSP tenancy must stretch inference")
	}
}

func TestTaxonomyFacade(t *testing.T) {
	if len(aitax.Taxonomy()) != 9 {
		t.Fatal("taxonomy facade broken")
	}
	if !strings.Contains(aitax.RenderTaxonomy(), "Algorithms") {
		t.Fatal("taxonomy render broken")
	}
}

func TestExperimentsFacade(t *testing.T) {
	if len(aitax.Experiments()) != 29 {
		t.Fatalf("experiments = %d", len(aitax.Experiments()))
	}
	e, err := aitax.ExperimentByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(aitax.ExperimentConfig{Runs: 5})
	if len(res.Rows) != 11 {
		t.Fatal("table1 via facade broken")
	}
}

func TestAppOptionsDefaults(t *testing.T) {
	d := aitax.AppOptions{}.Defaults()
	if d.Platform == nil || d.Seed != aitax.DefaultSeed || !d.SeedSet ||
		d.Frames != 50 || d.WarmupFrames != 2 {
		t.Fatalf("defaults = %+v", d)
	}
	// Seed 0 is requestable with SeedSet.
	z := aitax.AppOptions{Seed: 0, SeedSet: true}.Defaults()
	if z.Seed != 0 {
		t.Fatalf("explicit seed 0 coerced to %d", z.Seed)
	}
	// A non-zero seed counts as explicit without SeedSet.
	if s := (aitax.AppOptions{Seed: 7}).Defaults(); s.Seed != 7 {
		t.Fatalf("seed 7 rewritten to %d", s.Seed)
	}
	// Negative WarmupFrames means no warmup.
	if w := (aitax.AppOptions{WarmupFrames: -1}).Defaults(); w.WarmupFrames != 0 {
		t.Fatalf("WarmupFrames -1 -> %d, want 0", w.WarmupFrames)
	}
}

func TestSeedZeroRuns(t *testing.T) {
	b, err := aitax.MeasureApp(aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.UInt8,
		Delegate: aitax.DelegateNNAPI, Frames: 8, Seed: 0, SeedSet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 8 {
		t.Fatalf("frames = %d", b.N)
	}
}

func TestMeasureBenchmarkRejectsIgnoredOptions(t *testing.T) {
	base := aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.Float32,
		Delegate: aitax.DelegateCPU, Frames: 5,
	}
	bg := base
	bg.BackgroundJobs = 2
	if _, err := aitax.MeasureBenchmark(bg); err == nil ||
		!strings.Contains(err.Error(), "BackgroundJobs") {
		t.Fatalf("BackgroundJobs silently dropped: %v", err)
	}
	wu := base
	wu.WarmupFrames = 3
	if _, err := aitax.MeasureBenchmark(wu); err == nil ||
		!strings.Contains(err.Error(), "WarmupFrames") {
		t.Fatalf("WarmupFrames silently dropped: %v", err)
	}
}

func TestMeasureAppRejectsStdLib(t *testing.T) {
	if _, err := aitax.MeasureApp(aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.UInt8,
		Delegate: aitax.DelegateNNAPI, Frames: 5, StdLib: aitax.LibStdCXX,
	}); err == nil || !strings.Contains(err.Error(), "StdLib") {
		t.Fatalf("StdLib silently dropped: %v", err)
	}
}

func TestMeasureAppCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := aitax.MeasureAppCtx(ctx, aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.UInt8,
		Delegate: aitax.DelegateNNAPI, Frames: 5,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := aitax.MeasureBenchmarkCtx(ctx, aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.Float32,
		Delegate: aitax.DelegateCPU, Frames: 5,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("benchmark err = %v, want context.Canceled", err)
	}
}

func TestLabFacade(t *testing.T) {
	l := &aitax.Lab{Parallelism: 4}
	jobs := []aitax.Job{
		{ID: "mobilenet", Run: func(ctx context.Context) (any, error) {
			b, err := aitax.MeasureAppCtx(ctx, aitax.AppOptions{
				Model: "MobileNet 1.0 v1", DType: aitax.UInt8,
				Delegate: aitax.DelegateNNAPI, Frames: 6,
			})
			return b, err
		}},
		{ID: "boom", Run: func(ctx context.Context) (any, error) { panic("fail one") }},
	}
	rs := l.Run(context.Background(), jobs)
	if rs[0].Err != nil {
		t.Fatal(rs[0].Err)
	}
	if rs[0].Sim <= 0 {
		t.Fatalf("measurement did not report simulated time: %+v", rs[0])
	}
	b := rs[0].Value.(aitax.Breakdown)
	if b.N != 6 {
		t.Fatalf("breakdown frames = %d", b.N)
	}
	var pe *aitax.LabPanicError
	if !errors.As(rs[1].Err, &pe) {
		t.Fatalf("panic not isolated: %v", rs[1].Err)
	}
}

func TestRunAllExperimentsFacade(t *testing.T) {
	// A cheap smoke of the facade: table1/table2 are static, so run
	// just the first two experiments' worth of output through the full
	// parallel path by comparing against direct sequential runs.
	rs := aitax.RunAllExperiments(aitax.ExperimentConfig{Runs: 3}, 8)
	if len(rs) != len(aitax.Experiments()) {
		t.Fatalf("results = %d", len(rs))
	}
	for i, e := range aitax.Experiments() {
		if rs[i].ID != e.ID {
			t.Fatalf("result %d = %s, want %s", i, rs[i].ID, e.ID)
		}
	}
}

func TestDirectStackUse(t *testing.T) {
	rt := aitax.NewStack(aitax.Pixel3(), 7)
	m, _ := aitax.ModelByName("SSD MobileNet v2")
	ip, err := rt.NewInterpreter(m, aitax.UInt8, aitax.InterpreterOptions{Delegate: aitax.DelegateHexagon})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	ip.Init(func() {
		ip.Invoke(func(aitax.InvokeReport) { ran = true })
	})
	rt.Eng.Run()
	if !ran {
		t.Fatal("invoke did not run")
	}
}

func TestMeasureAppWithFaults(t *testing.T) {
	base := aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.UInt8,
		Delegate: aitax.DelegateHexagon,
		Frames:   10,
	}
	clean, err := aitax.MeasureApp(base)
	if err != nil {
		t.Fatal(err)
	}
	// The zero plan is a no-op: same options, byte-identical render.
	again, err := aitax.MeasureApp(base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Render() != again.Render() {
		t.Fatal("fault-free runs must stay byte-identical")
	}

	faulty := base
	// No warmup: the storm hits the very first inference, and discarding
	// warmup frames would hide the retry/fallback cost being asserted.
	faulty.WarmupFrames = -1
	faulty.Faults, err = aitax.ParseFaultPlan("timeout=1,deadline=20ms,attempts=2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := aitax.MeasureApp(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 10 {
		t.Fatalf("faulty run completed %d frames, want 10", b.N)
	}
	if b.Retry <= 0 || b.Fallback <= 0 {
		t.Fatalf("retry/fallback not surfaced: retry=%v fallback=%v", b.Retry, b.Fallback)
	}
	if !strings.Contains(b.Render(), "fault recovery") {
		t.Fatal("render missing the fault recovery line")
	}

	bad := base
	bad.Faults = aitax.FaultPlan{RPCErrorRate: 2}
	if _, err := aitax.MeasureApp(bad); err == nil {
		t.Fatal("out-of-range plan must be rejected")
	}
	if _, err := aitax.MeasureBenchmark(aitax.AppOptions{
		Model: base.Model, DType: base.DType, Delegate: base.Delegate,
		Frames: 5, Faults: bad.Faults,
	}); err == nil {
		t.Fatal("MeasureBenchmark must reject an invalid plan too")
	}
}
