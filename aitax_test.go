package aitax_test

import (
	"strings"
	"testing"

	"aitax"
)

func TestModelsFacade(t *testing.T) {
	if len(aitax.Models()) != 11 {
		t.Fatalf("models = %d", len(aitax.Models()))
	}
	m, err := aitax.ModelByName("MobileNet 1.0 v1")
	if err != nil || m.Task != "Classification" {
		t.Fatalf("lookup: %v %v", m, err)
	}
	if len(aitax.ModelNames()) != 11 {
		t.Fatal("names facade broken")
	}
}

func TestPlatformsFacade(t *testing.T) {
	if len(aitax.Platforms()) != 4 {
		t.Fatal("platforms facade broken")
	}
	p := aitax.Pixel3()
	if p.Chipset != "Snapdragon 845" {
		t.Fatalf("pixel3 = %s", p.Chipset)
	}
	if _, err := aitax.PlatformByName("Snapdragon 865"); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureApp(t *testing.T) {
	b, err := aitax.MeasureApp(aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.UInt8,
		Delegate: aitax.DelegateNNAPI,
		Frames:   15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 15 {
		t.Fatalf("frames = %d", b.N)
	}
	if b.TaxFraction() <= 0.3 {
		t.Fatalf("tax fraction = %v, want the tax to be a major share", b.TaxFraction())
	}
	if !strings.Contains(b.Render(), "AI tax") {
		t.Fatal("render missing tax line")
	}
}

func TestMeasureAppErrors(t *testing.T) {
	if _, err := aitax.MeasureApp(aitax.AppOptions{Model: "nope"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := aitax.MeasureApp(aitax.AppOptions{
		Model: "AlexNet", DType: aitax.Float32, Delegate: aitax.DelegateNNAPI,
	}); err == nil {
		t.Fatal("Table-I-unsupported combo accepted")
	}
}

func TestMeasureBenchmark(t *testing.T) {
	samples, err := aitax.MeasureBenchmark(aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.Float32,
		Delegate: aitax.DelegateCPU,
		Frames:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 10 {
		t.Fatalf("samples = %d", len(samples))
	}
}

func TestMeasureAppWithBackground(t *testing.T) {
	quiet, err := aitax.MeasureApp(aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.UInt8,
		Delegate: aitax.DelegateNNAPI, Frames: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := aitax.MeasureApp(aitax.AppOptions{
		Model: "MobileNet 1.0 v1", DType: aitax.UInt8,
		Delegate: aitax.DelegateNNAPI, Frames: 10,
		BackgroundJobs: 3, BackgroundDelegate: aitax.DelegateHexagon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ModelExecution <= quiet.ModelExecution {
		t.Fatal("DSP tenancy must stretch inference")
	}
}

func TestTaxonomyFacade(t *testing.T) {
	if len(aitax.Taxonomy()) != 9 {
		t.Fatal("taxonomy facade broken")
	}
	if !strings.Contains(aitax.RenderTaxonomy(), "Algorithms") {
		t.Fatal("taxonomy render broken")
	}
}

func TestExperimentsFacade(t *testing.T) {
	if len(aitax.Experiments()) != 28 {
		t.Fatalf("experiments = %d", len(aitax.Experiments()))
	}
	e, err := aitax.ExperimentByID("table1")
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(aitax.ExperimentConfig{Runs: 5})
	if len(res.Rows) != 11 {
		t.Fatal("table1 via facade broken")
	}
}

func TestDirectStackUse(t *testing.T) {
	rt := aitax.NewStack(aitax.Pixel3(), 7)
	m, _ := aitax.ModelByName("SSD MobileNet v2")
	ip, err := rt.NewInterpreter(m, aitax.UInt8, aitax.InterpreterOptions{Delegate: aitax.DelegateHexagon})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	ip.Init(func() {
		ip.Invoke(func(aitax.InvokeReport) { ran = true })
	})
	rt.Eng.Run()
	if !ran {
		t.Fatal("invoke did not run")
	}
}
