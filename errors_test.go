package aitax_test

import (
	"errors"
	"testing"

	"aitax"
)

// The lookup helpers wrap typed sentinels so callers (the serving
// frontend's 404 mapping, scripts) can branch with errors.Is instead of
// string matching — while the rendered messages stay exactly what they
// were before the sentinels existed.
func TestLookupSentinelErrors(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
		message  string
	}{
		{
			name:     "model",
			err:      mustErr(aitax.ModelByName("No Such Model")),
			sentinel: aitax.ErrUnknownModel,
			message:  `models: unknown model "No Such Model"`,
		},
		{
			name:     "platform",
			err:      mustErr(aitax.PlatformByName("No Such Phone")),
			sentinel: aitax.ErrUnknownPlatform,
			message:  `soc: unknown platform "No Such Phone"`,
		},
		{
			name:     "experiment",
			err:      mustErrExp(aitax.ExperimentByID("no-such-exp")),
			sentinel: aitax.ErrUnknownExperiment,
		},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Fatalf("%s: lookup succeeded, want error", c.name)
		}
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%s: errors.Is(%v, sentinel) = false", c.name, c.err)
		}
		if c.message != "" && c.err.Error() != c.message {
			t.Errorf("%s: message %q, want %q (sentinel wrapping must not change the text)",
				c.name, c.err.Error(), c.message)
		}
	}
	// Sentinels are distinct: a model miss is not a platform miss.
	if errors.Is(mustErr(aitax.ModelByName("x")), aitax.ErrUnknownPlatform) {
		t.Error("model error satisfies the platform sentinel")
	}
	// Successful lookups carry no sentinel.
	if _, err := aitax.ModelByName("MobileNet 1.0 v1"); err != nil {
		t.Errorf("known model lookup failed: %v", err)
	}
}

func mustErr[T any](_ T, err error) error { return err }

func mustErrExp(_ aitax.Experiment, err error) error { return err }
