// Allocation pins for the in-place kernel variants: every *Into kernel
// on the per-frame hot path must reach steady state at zero heap
// allocations per call, so the application loop's host cost stays flat
// no matter how many frames run. A regression here silently re-inflates
// BenchmarkAppPipeline's allocs/op, so the pins fail fast and by name.
package aitax_test

import (
	"testing"

	"aitax"
	"aitax/internal/imaging"
	"aitax/internal/postproc"
	"aitax/internal/preproc"
	"aitax/internal/tensor"
)

func TestInPlaceKernelsDoNotAllocate(t *testing.T) {
	frame := imaging.SyntheticFrame(480, 360, 1)
	scene := imaging.SyntheticScene(480, 360, 1)
	argbDst := imaging.NewARGB(480, 360)
	yuvDst := imaging.NewYUV(480, 360)
	resized := imaging.NewARGB(224, 224)
	norm := &tensor.Tensor{}
	quant := &tensor.Tensor{}

	mobilenet, err := aitax.ModelByName("MobileNet 1.0 v1")
	if err != nil {
		t.Fatal(err)
	}
	scores := aitax.FabricateOutputs(mobilenet, aitax.Float32, 1)[0]
	var classes []postproc.Class

	ssd, err := aitax.ModelByName("SSD MobileNet v2")
	if err != nil {
		t.Fatal(err)
	}
	dets := aitax.FabricateOutputs(ssd, aitax.Float32, 1)
	anchors := postproc.DefaultAnchors(26)[:1917]
	boxes := postproc.DecodeBoxes(dets[0], dets[1], anchors, 0.5)
	var kept, nmsScratch []postproc.Box
	var decoded []postproc.Box

	deeplab, err := aitax.ModelByName("Deeplab v3")
	if err != nil {
		t.Fatal(err)
	}
	segScores := aitax.FabricateOutputs(deeplab, aitax.Float32, 1)[0]
	var mask []int

	posenet, err := aitax.ModelByName("PoseNet")
	if err != nil {
		t.Fatal(err)
	}
	poseOuts := aitax.FabricateOutputs(posenet, aitax.Float32, 1)
	var keypoints []postproc.Keypoint

	fusedN := &tensor.Tensor{}
	fusedQ := &tensor.Tensor{}

	cases := []struct {
		name string
		fn   func()
	}{
		{"YUVToARGBInto", func() { imaging.YUVToARGBInto(argbDst, frame) }},
		{"ARGBToYUVInto", func() { imaging.ARGBToYUVInto(yuvDst, scene) }},
		{"ResizeBilinearInto", func() { preproc.ResizeBilinearInto(resized, scene, 224, 224) }},
		{"NormalizeInto", func() { preproc.NormalizeInto(norm, resized, 127.5, 127.5) }},
		{"QuantizeInputInto", func() {
			preproc.QuantizeInputInto(quant, resized, tensor.UInt8, tensor.QuantParams{Scale: 1})
		}},
		{"ResizeNormalizeInto", func() { preproc.ResizeNormalizeInto(fusedN, scene, 224, 224, 127.5, 127.5) }},
		{"ResizeQuantizeInto", func() {
			preproc.ResizeQuantizeInto(fusedQ, scene, 224, 224, tensor.UInt8, tensor.QuantParams{Scale: 1})
		}},
		{"TopKInto", func() { classes = postproc.TopKInto(classes[:0], scores, 5) }},
		{"FlattenMaskInto", func() { mask = postproc.FlattenMaskInto(mask[:0], segScores) }},
		{"DecodeBoxesInto", func() {
			decoded = postproc.DecodeBoxesInto(decoded[:0], dets[0], dets[1], anchors, 0.5)
		}},
		{"DecodeKeypointsInto", func() {
			keypoints = postproc.DecodeKeypointsInto(keypoints[:0], poseOuts[0], poseOuts[1], 32)
		}},
		{"NMSInto", func() { kept = postproc.NMSInto(kept[:0], &nmsScratch, boxes, 0.5, 10) }},
	}
	for _, c := range cases {
		c.fn() // reach steady state: first call may size buffers
		n := testing.AllocsPerRun(50, c.fn)
		if n != 0 {
			// A GC cycle landing inside the measurement window empties the
			// sync.Pools and charges the refills to the kernel. Re-measure
			// over a longer window: one-off refills average away, a real
			// per-call allocation still reads >= 1.
			n = testing.AllocsPerRun(400, c.fn)
		}
		if n != 0 {
			t.Errorf("%s allocates %.0f times per call at steady state, want 0", c.name, n)
		}
	}
}
