// Semantic segmentation with DeepLab v3: the Table-I workload whose
// post-processing ("mask flattening") dwarfs classification's topK while
// its pre-processing — implemented with native support-library ops — is
// only ~1% of run-time. Writes the input scene and the colored mask as
// PPM files for inspection.
//
//	go run ./examples/segmentation
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aitax"
)

func main() {
	model, err := aitax.ModelByName("Deeplab-v3 MobileNet-v2")
	if err != nil {
		log.Fatal(err)
	}

	// Real pipeline on real buffers.
	frame := aitax.SyntheticFrame(640, 480, 3)
	bitmap := aitax.YUVToARGB(frame)
	input, w := model.PreSpec(aitax.Float32).Run(bitmap)
	fmt.Printf("pre-processing (%s, native ops): input %v, %d ops\n",
		model.Pre.Tasks(), input.Shape, w.Ops)

	outs := aitax.FabricateOutputs(model, aitax.Float32, 7)
	mask := aitax.FlattenMask(outs[0])
	classes := map[int]int{}
	for _, c := range mask {
		classes[c]++
	}
	fmt.Printf("mask flattening: %d px argmaxed over 21 classes, %d distinct classes present\n",
		len(mask), len(classes))

	dir := os.TempDir()
	scenePath := filepath.Join(dir, "aitax-scene.ppm")
	maskPath := filepath.Join(dir, "aitax-mask.ppm")
	for _, out := range []struct {
		path string
		img  *aitax.Image
	}{
		{scenePath, bitmap},
		{maskPath, aitax.MaskToImage(mask, 513, 513)},
	} {
		f, err := os.Create(out.path)
		if err != nil {
			log.Fatal(err)
		}
		if err := aitax.WritePPM(out.img, f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", out.path)
	}

	// Measured breakdown: inference dominates; pre is ~1%.
	b, err := aitax.MeasureApp(aitax.AppOptions{
		Model: model.Name, DType: aitax.Float32,
		Delegate: aitax.DelegateNNAPI, Frames: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsegmentation app (fp32, NNAPI):\n%s", b.Render())
	fmt.Printf("pre-processing share: %.1f%% (paper: ~1%%)\n",
		100*float64(b.PreProcessing)/float64(b.Total()))
}
