// AR/VR multi-model pipeline: the paper's §IV-C motivation ("an emerging
// use-case is the growing need to support multiple models running
// concurrently — hand-tracking, depth-tracking, gesture recognition in
// AR/VR. Yet most hardware today supports the execution of one model at
// a time.") Three models run concurrently on one SoC under two
// placements: spread across CPU/GPU/DSP, or stacked onto the single DSP.
//
//	go run ./examples/arpipeline
package main

import (
	"fmt"
	"log"
	"time"

	"aitax"
)

type task struct {
	label    string
	model    string
	dtype    aitax.DType
	delegate aitax.Delegate
}

// spread places each model on its own device.
func spread() []task {
	return []task{
		{"scene classification", "MobileNet 1.0 v1", aitax.UInt8, aitax.DelegateNNAPI},
		{"pose estimation", "PoseNet", aitax.Float32, aitax.DelegateGPU},
		{"object detection", "SSD MobileNet v2", aitax.UInt8, aitax.DelegateCPU},
	}
}

// stacked sends every quantized model to the one DSP (pose has no int8
// variant and stays on the GPU).
func stacked() []task {
	return []task{
		{"scene classification", "MobileNet 1.0 v1", aitax.UInt8, aitax.DelegateNNAPI},
		{"pose estimation", "PoseNet", aitax.Float32, aitax.DelegateGPU},
		{"object detection", "SSD MobileNet v2", aitax.UInt8, aitax.DelegateHexagon},
	}
}

// measure runs the given tasks concurrently (or one alone when only>=0)
// on one simulated SoC and reports steady-state inference latency.
func measure(ts []task, only int) map[string]time.Duration {
	rt := aitax.NewStack(aitax.Pixel3(), 42)
	out := make(map[string]time.Duration)
	const rounds = 20
	for i, tk := range ts {
		if only >= 0 && i != only {
			continue
		}
		tk := tk
		m, err := aitax.ModelByName(tk.model)
		if err != nil {
			log.Fatal(err)
		}
		ip, err := rt.NewInterpreter(m, tk.dtype, aitax.InterpreterOptions{Delegate: tk.delegate})
		if err != nil {
			log.Fatal(err)
		}
		ip.Init(func() {
			var total time.Duration
			n := 0
			var loop func()
			loop = func() {
				start := rt.Eng.Now()
				ip.Invoke(func(aitax.InvokeReport) {
					if n > 0 { // skip the cold first round
						total += rt.Eng.Now().Sub(start)
					}
					n++
					if n <= rounds {
						loop()
						return
					}
					out[tk.label] = total / time.Duration(rounds)
				})
			}
			loop()
		})
	}
	rt.Eng.Run()
	return out
}

func report(title string, ts []task) {
	solo := map[string]time.Duration{}
	for i := range ts {
		for k, v := range measure(ts, i) {
			solo[k] = v
		}
	}
	together := measure(ts, -1)
	fmt.Println(title)
	fmt.Printf("  %-24s %-18s %-12s %-12s %s\n", "task", "device", "solo (ms)", "shared (ms)", "slowdown")
	for _, tk := range ts {
		s, c := solo[tk.label], together[tk.label]
		fmt.Printf("  %-24s %-18s %-12.2f %-12.2f %.2fx\n", tk.label, delegateName(tk.delegate),
			float64(s)/float64(time.Millisecond), float64(c)/float64(time.Millisecond),
			float64(c)/float64(s))
	}
	fmt.Println()
}

func delegateName(d aitax.Delegate) string {
	switch d {
	case aitax.DelegateNNAPI:
		return "NNAPI (DSP)"
	case aitax.DelegateGPU:
		return "GPU delegate"
	case aitax.DelegateHexagon:
		return "Hexagon (DSP)"
	default:
		return "CPU (4 threads)"
	}
}

func main() {
	fmt.Println("AR pipeline: three concurrent models on one simulated Pixel 3")
	fmt.Println()
	report("placement A — one model per device:", spread())
	report("placement B — detection moved onto the (single) DSP:", stacked())
	fmt.Println("the DSP serializes its clients: stacking models onto the 'fast'")
	fmt.Println("accelerator trades everyone's latency, while spreading them keeps")
	fmt.Println("mutual slowdown bounded — the paper's multi-tenancy takeaway (§IV-C).")
}
