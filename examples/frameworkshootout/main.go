// Framework shootout: the §IV-B comparison as a runnable scenario. The
// same quantized model goes through the open-source Hexagon delegate,
// NNAPI's automatic device assignment, the vendor-tuned SNPE stack, and
// plain CPU execution — exposing that "not all frameworks are created
// equal" and that a promised accelerator can lose to the CPU when the
// driver support lags.
//
//	go run ./examples/frameworkshootout
package main

import (
	"fmt"
	"log"
	"time"

	"aitax"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// measureDelegate reports warm mean inference latency through a TFLite
// delegate.
func measureDelegate(m *aitax.Model, dt aitax.DType, d aitax.Delegate) (float64, bool) {
	samples, err := aitax.MeasureBenchmark(aitax.AppOptions{
		Model: m.Name, DType: dt, Delegate: d, Frames: 30,
	})
	if err != nil {
		return 0, false
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s.Inference
	}
	return ms(sum / time.Duration(len(samples))), true
}

// measureSNPE reports warm inference latency through an SNPE runtime.
func measureSNPE(m *aitax.Model, dt aitax.DType, rk aitax.SNPERuntime) (float64, bool) {
	rt := aitax.NewStack(aitax.Pixel3(), 42)
	sdk := rt.NewSNPE()
	net, err := sdk.Load(m.Graph, dt, rk)
	if err != nil {
		return 0, false // DLC conversion failed (unsupported ops)
	}
	var warm time.Duration
	net.Execute(func(aitax.ExecResult) { // cold run absorbs session setup
		start := rt.Eng.Now()
		net.Execute(func(aitax.ExecResult) {
			warm = rt.Eng.Now().Sub(start)
		})
	})
	rt.Eng.Run()
	return ms(warm), true
}

func main() {
	for _, name := range []string{"EfficientNet-Lite0", "MobileNet 1.0 v1", "Inception v4"} {
		m, err := aitax.ModelByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (int8), warm inference latency on a simulated Pixel 3:\n", name)
		rows := []struct {
			label string
			f     func() (float64, bool)
		}{
			{"TFLite CPU (4 threads)", func() (float64, bool) { return measureDelegate(m, aitax.UInt8, aitax.DelegateCPU) }},
			{"TFLite Hexagon delegate", func() (float64, bool) { return measureDelegate(m, aitax.UInt8, aitax.DelegateHexagon) }},
			{"NNAPI automatic", func() (float64, bool) { return measureDelegate(m, aitax.UInt8, aitax.DelegateNNAPI) }},
			{"SNPE DSP runtime", func() (float64, bool) { return measureSNPE(m, aitax.UInt8, aitax.SNPEDSP) }},
		}
		for _, r := range rows {
			if v, ok := r.f(); ok {
				fmt.Printf("  %-26s %8.2f ms\n", r.label, v)
			} else {
				fmt.Printf("  %-26s %8s\n", r.label, "n/a")
			}
		}
		fmt.Println()
	}
	fmt.Println("takeaway (§IV-B): the same DSP silicon is fastest under the vendor")
	fmt.Println("stack, competitive under the open delegate, and can be the slowest")
	fmt.Println("option of all under NNAPI when the driver rejects the plan.")
}
