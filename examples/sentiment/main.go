// Sentiment analysis with Mobile BERT: the Table-I language-processing
// workload. Pre-processing here is tokenization rather than image work —
// cheap — so the AI tax shifts almost entirely into the framework: the
// transformer ops have no NNAPI driver support on this SoC and the whole
// graph runs on the CPU fallback, whichever delegate is requested.
//
//	go run ./examples/sentiment
package main

import (
	"fmt"
	"log"

	"aitax"
)

func main() {
	model, err := aitax.ModelByName("Mobile BERT")
	if err != nil {
		log.Fatal(err)
	}

	// Real tokenization through the model's pre-processing spec.
	reviews := []string{
		"the camera quality on this phone is great and the battery works well",
		"this app is slow and the screen is bad",
	}
	for _, text := range reviews {
		spec := model.PreSpec(aitax.Float32)
		spec.SampleText = text
		ids, w := spec.Run(nil)
		fmt.Printf("%q\n  -> %d token ids (first 10: %v), %d tokenizer ops\n",
			text, ids.Elems(), ids.I32[:10], w.Ops)

		outs := aitax.FabricateOutputs(model, aitax.Float32, uint64(len(text)))
		probs := aitax.Softmax([]float64{float64(outs[0].F32[0]), float64(outs[0].F32[1])})
		label := "positive"
		if probs[0] > probs[1] {
			label = "negative"
		}
		fmt.Printf("  -> %s (p=%.2f)\n", label, probs[1])
	}

	// Where the time goes: compare CPU and NNAPI end to end.
	fmt.Println()
	for _, d := range []struct {
		label    string
		delegate aitax.Delegate
	}{
		{"CPU (4 threads)", aitax.DelegateCPU},
		{"NNAPI", aitax.DelegateNNAPI},
	} {
		b, err := aitax.MeasureApp(aitax.AppOptions{
			Model: model.Name, DType: aitax.Float32, Delegate: d.delegate, Frames: 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n%s\n", d.label, b.Render())
	}
	fmt.Println("transformer ops (BATCH_MATMUL, LAYER_NORM, GELU) have no vendor")
	fmt.Println("driver support, so NNAPI silently runs BERT on its CPU fallback —")
	fmt.Println("transparency the paper's framework takeaway calls for.")
}
