// Image classification end to end: the paper's §II pipeline, executed
// for real — synthetic camera frame → bitmap formatting → crop → scale →
// normalize → (simulated) inference → topK — with the per-stage tax
// measured on the simulated SoC.
//
//	go run ./examples/imageclassification
package main

import (
	"fmt"
	"log"

	"aitax"
)

func main() {
	model, err := aitax.ModelByName("MobileNet 1.0 v1")
	if err != nil {
		log.Fatal(err)
	}

	// --- The real pipeline, on real buffers -------------------------
	frame := aitax.SyntheticFrame(480, 360, 1)
	bitmap := aitax.YUVToARGB(frame) // "bitmap formatting" (§II-B)

	spec := model.PreSpec(aitax.Float32)
	input, work := spec.Run(bitmap)
	fmt.Printf("pre-processing %q (%s): %v -> input tensor %v (%d ops)\n",
		model.Name, spec.Tasks(), fmt.Sprintf("%dx%d", bitmap.Width, bitmap.Height),
		input.Shape, work.Ops)

	// Inference is costed on the simulator; outputs are fabricated so
	// the real post-processing below has non-trivial input.
	outputs := aitax.FabricateOutputs(model, aitax.Float32, 7)
	top := aitax.TopK(outputs[0], 5)
	fmt.Println("top-5 predictions (class index : score):")
	for _, c := range top {
		fmt.Printf("  %4d : %.3f\n", c.Index, c.Score)
	}

	// --- The same pipeline inside an instrumented app ---------------
	for _, cfg := range []struct {
		label    string
		dt       aitax.DType
		delegate aitax.Delegate
	}{
		{"fp32 on CPU", aitax.Float32, aitax.DelegateCPU},
		{"fp32 via NNAPI (GPU)", aitax.Float32, aitax.DelegateNNAPI},
		{"int8 via NNAPI (DSP)", aitax.UInt8, aitax.DelegateNNAPI},
		{"int8 via Hexagon delegate", aitax.UInt8, aitax.DelegateHexagon},
	} {
		b, err := aitax.MeasureApp(aitax.AppOptions{
			Model: model.Name, DType: cfg.dt, Delegate: cfg.delegate, Frames: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n%s", cfg.label, b.Render())
	}
}
