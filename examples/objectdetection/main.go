// Object detection with SSD MobileNet v2: exercises the heavier
// post-processing path the paper calls out for detection workloads —
// box decoding against an anchor grid and non-maximum suppression — and
// shows how its cost compares with classification's trivial topK.
//
//	go run ./examples/objectdetection
package main

import (
	"fmt"
	"log"

	"aitax"
)

func main() {
	model, err := aitax.ModelByName("SSD MobileNet v2")
	if err != nil {
		log.Fatal(err)
	}

	// Real post-processing on fabricated detector outputs.
	outs := aitax.FabricateOutputs(model, aitax.UInt8, 11)
	locs := aitax.Dequantize(outs[0])
	scores := aitax.Dequantize(outs[1])

	nAnchors := model.OutputShapes[0][1]
	grid := 1
	for grid*grid*3 < nAnchors {
		grid++
	}
	anchors := aitax.DefaultAnchors(grid)[:nAnchors]

	boxes := aitax.DecodeBoxes(locs, scores, anchors, 0.5)
	kept := aitax.NMS(boxes, 0.5, 10)
	fmt.Printf("decoded %d candidate boxes over %d anchors, %d survive NMS:\n",
		len(boxes), nAnchors, len(kept))
	for _, b := range kept {
		fmt.Printf("  class %2d score %.2f  [%.2f %.2f %.2f %.2f]\n",
			b.Class, b.Score, b.XMin, b.YMin, b.XMax, b.YMax)
	}

	// A dashcam-style app: continuous detection with the camera stream.
	b, err := aitax.MeasureApp(aitax.AppOptions{
		Model: model.Name, DType: aitax.UInt8,
		Delegate: aitax.DelegateNNAPI, Frames: 80,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndashcam app (int8, NNAPI) on a simulated Pixel 3:\n%s", b.Render())

	// Classification post-processing is an array slice; detection is not.
	cls, _ := aitax.ModelByName("MobileNet 1.0 v1")
	fmt.Printf("\npost-processing demand: detection %d ops vs classification %d ops\n",
		model.PostWork(aitax.UInt8).Ops, cls.PostWork(aitax.UInt8).Ops)
}
