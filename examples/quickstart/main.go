// Quickstart: measure the AI tax of an image-classification app.
//
// This is the library's thirty-second demo: run quantized MobileNet v1
// through NNAPI inside a simulated Android application on a Pixel 3,
// then print where every millisecond of a frame went — and how much of
// it was not inference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aitax"
)

func main() {
	fmt.Println(aitax.RenderTaxonomy())

	breakdown, err := aitax.MeasureApp(aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.UInt8,
		Delegate: aitax.DelegateNNAPI,
		Frames:   100,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Quantized MobileNet v1 via NNAPI on a simulated Pixel 3:")
	fmt.Print(breakdown.Render())
	fmt.Printf("\nrun-to-run: %s\n", breakdown.E2E)

	// Contrast with what an inference-only benchmark would report.
	samples, err := aitax.MeasureBenchmark(aitax.AppOptions{
		Model:    "MobileNet 1.0 v1",
		DType:    aitax.UInt8,
		Delegate: aitax.DelegateNNAPI,
		Frames:   100,
	})
	if err != nil {
		log.Fatal(err)
	}
	var inf float64
	for _, s := range samples {
		inf += float64(s.Inference.Microseconds()) / 1000
	}
	inf /= float64(len(samples))
	fmt.Printf("\nthe benchmark utility would have told you: %.2f ms/inference —\n", inf)
	fmt.Printf("missing the %.1f%% of application time that is AI tax.\n", 100*breakdown.TaxFraction())
}
