// Multi-tenancy: the paper's Figs. 9 and 10 as a runnable scenario. An
// AR-style foreground app offloads classification to the DSP while an
// increasing number of background models contend for either the same
// DSP or the CPU — and the two cases bottleneck entirely different
// pipeline stages.
//
//	go run ./examples/multitenancy
package main

import (
	"fmt"
	"log"
	"time"

	"aitax"
)

func run(bg int, d aitax.Delegate) aitax.Breakdown {
	b, err := aitax.MeasureApp(aitax.AppOptions{
		Model:              "MobileNet 1.0 v1",
		DType:              aitax.UInt8,
		Delegate:           aitax.DelegateNNAPI,
		Frames:             40,
		BackgroundJobs:     bg,
		BackgroundDelegate: d,
	})
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func main() {
	fmt.Println("foreground: MobileNet v1 int8 via NNAPI (DSP) on a simulated Pixel 3")
	fmt.Println()

	fmt.Println("background inferences on the DSP (paper Fig. 9):")
	fmt.Printf("%-6s %-14s %-14s %-12s\n", "jobs", "capture (ms)", "pre (ms)", "infer (ms)")
	for n := 0; n <= 4; n++ {
		b := run(n, aitax.DelegateHexagon)
		fmt.Printf("%-6d %-14.2f %-14.2f %-12.2f\n",
			n, ms(b.DataCapture), ms(b.PreProcessing), ms(b.ModelExecution))
	}
	fmt.Println("-> inference stalls on the single DSP; capture+pre stay flat")
	fmt.Println()

	fmt.Println("background inferences on the CPU (paper Fig. 10):")
	fmt.Printf("%-6s %-14s %-14s %-12s\n", "jobs", "capture (ms)", "pre (ms)", "infer (ms)")
	for n := 0; n <= 4; n++ {
		b := run(n, aitax.DelegateCPU)
		fmt.Printf("%-6d %-14.2f %-14.2f %-12.2f\n",
			n, ms(b.DataCapture), ms(b.PreProcessing), ms(b.ModelExecution))
	}
	fmt.Println("-> capture+pre stretch under CPU contention; DSP inference stays flat")
	fmt.Println()
	fmt.Println("moral (§IV-C): judging device assignment from one pipeline stage in")
	fmt.Println("isolation misleads — the optimal schedule depends on what else runs.")
}
