// Cold start and benchmark pitfalls: §IV-C as a runnable scenario. The
// first accelerated inference a user triggers pays model load, delegate
// compilation, AND the FastRPC session setup; a benchmark that warms up
// first reports none of it.
//
//	go run ./examples/coldstart
package main

import (
	"fmt"
	"log"
	"time"

	"aitax"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func main() {
	model, err := aitax.ModelByName("MobileNet 1.0 v1")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("first-use cost of quantized MobileNet v1 on the Hexagon DSP:")
	rt := aitax.NewStack(aitax.Pixel3(), 42)
	ip, err := rt.NewInterpreter(model, aitax.UInt8,
		aitax.InterpreterOptions{Delegate: aitax.DelegateHexagon})
	if err != nil {
		log.Fatal(err)
	}

	var coldLatency, warmLatency time.Duration
	ip.Init(func() {
		start := rt.Eng.Now()
		ip.Invoke(func(aitax.InvokeReport) {
			coldLatency = rt.Eng.Now().Sub(start)
			warmStart := rt.Eng.Now()
			ip.Invoke(func(aitax.InvokeReport) {
				warmLatency = rt.Eng.Now().Sub(warmStart)
			})
		})
	})
	rt.Eng.Run()

	fmt.Printf("  model load + delegate compile : %8.2f ms (once per load)\n", ms(ip.InitTime))
	fmt.Printf("  first inference (cold DSP)    : %8.2f ms\n", ms(coldLatency))
	fmt.Printf("  steady-state inference        : %8.2f ms\n", ms(warmLatency))
	fmt.Printf("  cold/warm                     : %8.1fx\n",
		float64(coldLatency)/float64(warmLatency))

	fmt.Println("\nwhat the user feels on first camera open vs what a warmed-up")
	fmt.Println("benchmark reports differ by more than an order of magnitude (§IV-C).")

	// The random-generation pitfall, run as the experiment artifact.
	e, err := aitax.ExperimentByID("stdlib")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(e.Run(aitax.ExperimentConfig{}).Render())
}
