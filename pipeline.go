package aitax

import (
	"io"

	"aitax/internal/app"
	"aitax/internal/imaging"
	"aitax/internal/postproc"
	"aitax/internal/preproc"
	"aitax/internal/sim"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// PipelineStage identifies one node of the application's stage graph
// (capture→pre→inference→post→ui). A camera frame traverses the whole
// graph via App.ProcessFrame; a served request enters mid-graph via
// App.ProcessRange — its payload arrives over the wire already
// captured — and exits after post-processing.
type PipelineStage = app.Stage

// The pipeline stages in graph order.
const (
	StageCapture   = app.StageCapture
	StagePre       = app.StagePre
	StageInference = app.StageInference
	StagePost      = app.StagePost
	StageUI        = app.StageUI
)

// ParsePipelineStage resolves a stage name ("capture", "pre",
// "inference", "post", "ui") to its PipelineStage.
func ParsePipelineStage(name string) (PipelineStage, error) { return app.ParseStage(name) }

// Imaging and pre-processing (paper §II-A/B).
type (
	// Image is a packed ARGB_8888 bitmap.
	Image = imaging.ARGBImage
	// YUVImage is an NV21 camera frame.
	YUVImage = imaging.YUVImage
	// PreSpec declares a model's pre-processing pipeline.
	PreSpec = preproc.Spec
	// Tensor is a dense FP32/INT8/UINT8 array.
	Tensor = tensor.Tensor
)

// SyntheticScene deterministically paints a procedural test frame.
func SyntheticScene(width, height int, seed uint64) *Image {
	return imaging.SyntheticScene(width, height, seed)
}

// SyntheticFrame produces an NV21 sensor frame of the procedural scene.
func SyntheticFrame(width, height int, seed uint64) *YUVImage {
	return imaging.SyntheticFrame(width, height, seed)
}

// YUVToARGB performs the real NV21→ARGB bitmap-formatting step.
func YUVToARGB(src *YUVImage) *Image { return imaging.YUVToARGB(src) }

// ResizeBilinear scales an image with bilinear interpolation
// (TensorFlow's default resize).
func ResizeBilinear(src *Image, w, h int) *Image { return preproc.ResizeBilinear(src, w, h) }

// CenterCrop extracts the centered w×h region.
func CenterCrop(src *Image, w, h int) *Image { return preproc.CenterCrop(src, w, h) }

// Rotate90 rotates clockwise by quarter turns.
func Rotate90(src *Image, quarterTurns int) *Image { return preproc.Rotate90(src, quarterTurns) }

// Normalize converts an image to a normalized FP32 NHWC tensor.
func Normalize(src *Image, mean, std float64) *Tensor { return preproc.Normalize(src, mean, std) }

// Post-processing (paper §II-E).
type (
	// Class is a classification result.
	Class = postproc.Class
	// Box is a detection box.
	Box = postproc.Box
	// Keypoint is a pose keypoint.
	Keypoint = postproc.Keypoint
	// Anchor is an SSD prior box.
	Anchor = postproc.Anchor
)

// TopK returns the k highest-scoring classes of a model output.
func TopK(t *Tensor, k int) []Class { return postproc.TopK(t, k) }

// Dequantize converts a quantized output tensor to FP32.
func Dequantize(t *Tensor) *Tensor { return postproc.Dequantize(t) }

// Softmax computes numerically-stable probabilities from logits.
func Softmax(logits []float64) []float64 { return postproc.Softmax(logits) }

// FlattenMask converts NHWC class scores into an argmax label mask.
func FlattenMask(t *Tensor) []int { return postproc.FlattenMask(t) }

// DefaultAnchors generates a deterministic SSD prior-box grid.
func DefaultAnchors(gridSize int) []Anchor { return postproc.DefaultAnchors(gridSize) }

// DecodeBoxes converts SSD regressions and scores into detection boxes.
func DecodeBoxes(locs, scores *Tensor, anchors []Anchor, threshold float64) []Box {
	return postproc.DecodeBoxes(locs, scores, anchors, threshold)
}

// NMS performs class-aware greedy non-maximum suppression.
func NMS(boxes []Box, iouThresh float64, maxOut int) []Box {
	return postproc.NMS(boxes, iouThresh, maxOut)
}

// DecodeKeypoints maps PoseNet heatmaps and offsets to image keypoints.
func DecodeKeypoints(heatmaps, offsets *Tensor, outputStride int) []Keypoint {
	return postproc.DecodeKeypoints(heatmaps, offsets, outputStride)
}

// FabricateOutputs synthesizes plausible raw output tensors for a model
// so the real post-processing algorithms have non-trivial inputs (the
// simulator costs inference in virtual time; numerical contents come
// from this seeded generator).
func FabricateOutputs(m *Model, dt DType, seed uint64) []*Tensor {
	return tflite.FabricateOutputs(m, dt, sim.NewRNG(seed))
}

// WritePPM serializes an image as binary PPM (P6) for inspection.
func WritePPM(img *Image, w io.Writer) error { return imaging.WritePPM(img, w) }

// MaskToImage renders a segmentation mask with a deterministic palette.
func MaskToImage(mask []int, w, h int) *Image {
	return imaging.MaskToImage(mask, w, h, nil)
}
