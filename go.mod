module aitax

go 1.22
