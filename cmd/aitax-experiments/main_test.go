package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGoldenTable1(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "table1", "-runs", "5"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	want, err := os.ReadFile("testdata/table1_runs5.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), string(want))
	}
}

func TestParallelOutputByteIdentical(t *testing.T) {
	// A mixed subset (static tables, app runs, bench-tool runs) rendered
	// sequentially and 8-wide must be byte-for-byte identical.
	render := func(parallel string) string {
		var out, errb bytes.Buffer
		args := []string{"-run", "table2,fig5,fig8,coldstart,post",
			"-runs", "6", "-parallel", parallel}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("parallel %s: exit %d, stderr:\n%s", parallel, code, errb.String())
		}
		return out.String()
	}
	seq, par := render("1"), render("8")
	if seq != par {
		t.Fatalf("-parallel 8 diverged from -parallel 1\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "=== fig5") {
		t.Fatalf("missing experiment in output:\n%s", seq)
	}
}

func TestTelemetryFlagsLeaveStdoutIdenticalAndMergeDeterministically(t *testing.T) {
	// The telemetry flags must be strictly additive: stdout with
	// -trace/-metrics set is byte-identical to stdout without them, and
	// the exported files are byte-identical at any -parallel value.
	base := []string{"-run", "table2,fig5,post", "-runs", "4"}
	render := func(extra ...string) (string, string, string) {
		dir := t.TempDir()
		trace := filepath.Join(dir, "t.json")
		prom := filepath.Join(dir, "m.prom")
		var out, errb bytes.Buffer
		args := append(append([]string{}, base...), extra...)
		args = append(args, "-trace", trace, "-metrics", prom)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
		}
		return out.String(), readFile(t, trace), readFile(t, prom)
	}

	var plain bytes.Buffer
	if code := run(base, &plain, &bytes.Buffer{}); code != 0 {
		t.Fatal("plain run failed")
	}
	outSeq, traceSeq, promSeq := render("-parallel", "1")
	outPar, tracePar, promPar := render("-parallel", "8")
	if outSeq != plain.String() || outPar != plain.String() {
		t.Fatal("-trace/-metrics changed stdout")
	}
	if traceSeq != tracePar {
		t.Fatal("trace file depends on -parallel")
	}
	if promSeq != promPar {
		t.Fatal("metrics file depends on -parallel")
	}
	for _, want := range []string{"aitax_experiments_total 3", `aitax_experiment_sim_ms_count{id="fig5"} 1`} {
		if !strings.Contains(promSeq, want) {
			t.Fatalf("metrics missing %q:\n%s", want, promSeq)
		}
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestListAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	if !strings.Contains(out.String(), "table1") || !strings.Contains(out.String(), "fig11") {
		t.Fatalf("-list output:\n%s", out.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-run", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown experiment exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatalf("stderr:\n%s", errb.String())
	}
}

func TestProgressGoesToStderrOnly(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "table2", "-runs", "3", "-progress"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errb.String(), "done table2") {
		t.Fatalf("no progress on stderr:\n%s", errb.String())
	}
	if strings.Contains(out.String(), "done table2") {
		t.Fatal("progress leaked into stdout")
	}
}
