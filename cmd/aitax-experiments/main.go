// Command aitax-experiments regenerates the paper's tables and figures
// on the simulated platform.
//
// Usage:
//
//	aitax-experiments                 # run everything
//	aitax-experiments -run fig5       # one experiment
//	aitax-experiments -list           # list experiment ids
//	aitax-experiments -runs 100 -platform "Snapdragon 855" -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aitax"
)

func main() {
	run := flag.String("run", "all", "experiment id to run, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	runs := flag.Int("runs", 50, "iterations per configuration (paper: 500)")
	format := flag.String("format", "text", "output format: text | markdown | csv")
	platform := flag.String("platform", "Google Pixel 3", "platform name or chipset (Table II)")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	if *list {
		for _, e := range aitax.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	p, err := aitax.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := aitax.ExperimentConfig{Platform: p, Seed: *seed, Runs: *runs}

	var selected []aitax.Experiment
	if *run == "all" {
		selected = aitax.Experiments()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := aitax.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	if *format == "text" {
		fmt.Printf("platform: %s (%s) | seed %d | %d runs/config\n\n", p.Name, p.Chipset, *seed, *runs)
	}
	for _, e := range selected {
		res := e.Run(cfg)
		switch *format {
		case "markdown":
			fmt.Print(res.RenderMarkdown())
		case "csv":
			fmt.Print(res.RenderCSV())
		default:
			fmt.Println(res.Render())
		}
	}
}
