// Command aitax-experiments regenerates the paper's tables and figures
// on the simulated platform.
//
// Experiments are independent simulations, so they run concurrently on a
// worker pool (-parallel, default GOMAXPROCS); results are merged back
// in paper order, so output is byte-identical at any parallelism.
//
// Usage:
//
//	aitax-experiments                 # run everything, GOMAXPROCS-wide
//	aitax-experiments -run fig5       # one experiment
//	aitax-experiments -list           # list experiment ids
//	aitax-experiments -parallel 1     # strictly sequential
//	aitax-experiments -runs 500 -parallel 8 -progress   # paper scale
//	aitax-experiments -runs 100 -platform "Snapdragon 855" -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"aitax"
	"aitax/internal/cli"
	"aitax/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, rendered experiments out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aitax-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runIDs := fs.String("run", "all", "experiment id(s) to run, comma-separated, or 'all'")
	list := fs.Bool("list", false, "list experiment ids and exit")
	runs := fs.Int("runs", 50, "iterations per configuration (paper: 500)")
	format := fs.String("format", "text", "output format: text | markdown | csv")
	platform := fs.String("platform", "Google Pixel 3", "platform name or chipset (Table II)")
	seed := fs.Uint64("seed", 42, "random seed (0 is a valid seed)")
	common := cli.Register(fs, cli.Options{
		Trace: true, Metrics: true, Faults: true, Parallel: true, Progress: true,
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range aitax.Experiments() {
			fmt.Fprintf(stdout, "%-10s %s\n", e.ID, e.Title)
		}
		return 0
	}

	p, err := aitax.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	plan, err := common.FaultPlan()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// SeedSet: the flag always carries an explicit value, so -seed 0
	// really means seed 0.
	cfg := aitax.ExperimentConfig{Platform: p, Seed: *seed, SeedSet: true, Runs: *runs, Faults: plan}

	var selected []aitax.Experiment
	if *runIDs == "all" {
		selected = aitax.Experiments()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := aitax.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			selected = append(selected, e)
		}
	}

	if *format == "text" {
		fmt.Fprintf(stdout, "platform: %s (%s) | seed %d | %d runs/config\n\n",
			p.Name, p.Chipset, *seed, *runs)
	}

	jobs := make([]aitax.Job, len(selected))
	for i, e := range selected {
		e := e
		jobs[i] = aitax.Job{
			ID: e.ID,
			Run: func(ctx context.Context) (any, error) {
				return e.RunCtx(ctx, cfg)
			},
		}
	}
	l := &aitax.Lab{Parallelism: common.Parallel}
	if common.Progress {
		l.OnProgress = func(r aitax.JobResult) {
			status := "done"
			if r.Err != nil {
				status = "FAIL"
			}
			fmt.Fprintf(stderr, "%s %-20s wall %8.2fms\n",
				status, r.ID, float64(r.Wall.Microseconds())/1000)
		}
	}

	failures := 0
	results := l.RunEmit(context.Background(), jobs, func(r aitax.JobResult) {
		if r.Err != nil {
			failures++
			fmt.Fprintf(stderr, "%s: %v\n", r.ID, r.Err)
			return
		}
		res := r.Value.(*aitax.ExperimentResult)
		switch *format {
		case "markdown":
			fmt.Fprint(stdout, res.RenderMarkdown())
		case "csv":
			fmt.Fprint(stdout, res.RenderCSV())
		default:
			fmt.Fprintln(stdout, res.Render())
		}
	})
	if common.Trace != "" || common.Metrics != "" {
		if err := exportTelemetry(results, common.Trace, common.Metrics, stderr); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// exportTelemetry merges the jobs' telemetry bundles in submission order
// and folds in the harness's own accounting — all on virtual time, so
// both files are byte-identical at any -parallel value.
func exportTelemetry(results []aitax.JobResult, tracePath, metricsPath string, stderr io.Writer) error {
	bundle := aitax.MergeJobTelemetry(results)
	reg := bundle.Registry
	if reg == nil {
		reg = aitax.NewMetricsRegistry()
	}
	for _, r := range results {
		reg.Inc("aitax_experiments_total")
		if r.Err != nil {
			reg.Inc("aitax_experiment_failures_total")
			continue
		}
		reg.Observe(telemetry.Labeled("aitax_experiment_sim_ms", "id", r.ID),
			float64(r.Sim)/float64(time.Millisecond))
	}
	if metricsPath != "" {
		if err := cli.WriteFile(metricsPath, reg.WritePrometheus); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "metrics written to %s\n", metricsPath)
	}
	if tracePath != "" {
		chrome := aitax.NewChromeTrace()
		chrome.AddTelemetry(bundle.Spans, bundle.Flows)
		if err := cli.WriteFile(tracePath, chrome.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "chrome trace written to %s\n", tracePath)
	}
	return nil
}
