// Command aitax-fleet runs the device-fleet simulation: a seeded
// sampler expands the Table-II-derived SoC catalog into a heterogeneous
// device population (silicon binning, thermal state, FastRPC transport
// jitter), and a sharded runner folds every device's frame anatomy into
// per-tier mergeable statistics.
//
//	aitax-fleet -devices 10000 -seed 42
//
// The report is byte-identical for a fixed (catalog, devices, models,
// dtype, delegate, seed) at any -parallel and any -shards value: every
// printed figure derives from exactly-mergeable state (integer bucket
// counts, exact extremes, fixed-point regression sums) merged in shard
// submission order. Facts that legitimately vary with the run shape —
// worker counts, plan-cache hit rates — print on stderr only.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"aitax/internal/cli"
	"aitax/internal/fleet"
	"aitax/internal/lab"
	"aitax/internal/models"
	"aitax/internal/plan"
	"aitax/internal/soc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// defaultModels is the default application mix: the Table-I models with
// full int8 NNAPI support, so the default configuration exercises the
// DSP FastRPC path on every catalog entry.
const defaultModels = "MobileNet 1.0 v1,SSD MobileNet v2,EfficientNet-Lite0"

// run is the testable entry point: flags in, report out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aitax-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	devices := fs.Int("devices", 10000, "fleet size (sampled devices)")
	shards := fs.Int("shards", 32, "device-index shards; output is byte-identical at any value")
	modelList := fs.String("models", defaultModels, "comma-separated application mix (devices are assigned one model each by seeded hash)")
	dtype := fs.String("dtype", "int8", "precision: fp32 | int8")
	delegate := fs.String("delegate", "nnapi", "delegate: cpu | gpu | hexagon | nnapi")
	seed := fs.Uint64("seed", 42, "population seed; drives entry choice and every per-device jitter")
	jsonl := fs.String("jsonl", "", "write population distribution rows (JSONL) to this path")
	counters := fs.String("counters", "", "write Chrome-trace convergence counters to this path")
	common := cli.Register(fs, cli.Options{Parallel: true, Progress: true})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dt, err := cli.ParseDType(*dtype)
	if err != nil {
		fmt.Fprintln(stderr, "aitax-fleet:", err)
		return 2
	}
	del, err := cli.ParseDelegate(*delegate)
	if err != nil {
		fmt.Fprintln(stderr, "aitax-fleet:", err)
		return 2
	}
	var mix []*models.Model
	for _, name := range strings.Split(*modelList, ",") {
		m, err := models.ByName(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(stderr, "aitax-fleet:", err)
			return 2
		}
		mix = append(mix, m)
	}

	cfg := fleet.Config{
		Catalog:  soc.DefaultCatalog(),
		Devices:  *devices,
		Shards:   *shards,
		Models:   mix,
		DType:    dt,
		Delegate: del,
		Seed:     *seed,
		Parallel: common.Parallel,
	}
	if common.Progress {
		cfg.OnProgress = func(r lab.JobResult) {
			fmt.Fprintf(stderr, "aitax-fleet: %s done in %v\n", r.ID, r.Wall)
		}
	}

	hits0, misses0, _ := plan.Shared.Stats()
	res, err := fleet.Run(nil, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "aitax-fleet:", err)
		return 1
	}
	if err := fleet.WriteReport(stdout, res); err != nil {
		fmt.Fprintln(stderr, "aitax-fleet:", err)
		return 1
	}
	// Run-shape facts: stderr only, outside the byte-identity contract.
	hits, misses, _ := plan.Shared.Stats()
	fmt.Fprintf(stderr, "aitax-fleet: %d shards, parallel %d, anatomy cache %d hits / %d misses\n",
		res.Shards, common.Parallel, hits-hits0, misses-misses0)

	if *jsonl != "" {
		if err := cli.WriteFile(*jsonl, func(w io.Writer) error {
			return fleet.WriteJSONL(w, res)
		}); err != nil {
			fmt.Fprintln(stderr, "aitax-fleet:", err)
			return 1
		}
	}
	if *counters != "" {
		if err := cli.WriteFile(*counters, func(w io.Writer) error {
			return fleet.WriteCounters(w, res)
		}); err != nil {
			fmt.Fprintln(stderr, "aitax-fleet:", err)
			return 1
		}
	}
	return 0
}
