package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fleetArgs is the test configuration: small enough to run in seconds,
// large enough that every tier is populated.
var fleetArgs = []string{"-devices", "2000", "-seed", "42"}

// TestGoldenFleetReport: the report is byte-identical across -parallel
// and -shards variations and matches the committed golden.
func TestGoldenFleetReport(t *testing.T) {
	var outputs []string
	for _, v := range [][]string{
		{"-parallel", "1"},
		{"-parallel", "2", "-shards", "7"},
		{"-parallel", "8", "-shards", "64"},
		{"-parallel", "4", "-shards", "1"},
	} {
		var out, errb bytes.Buffer
		if code := run(append(append([]string{}, fleetArgs...), v...), &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", v, code, errb.String())
		}
		outputs = append(outputs, out.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("report differs between variant 0 and %d", i)
		}
	}
	want, err := os.ReadFile("testdata/fleet_report.golden")
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0] != string(want) {
		t.Fatalf("fleet report diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
			outputs[0], string(want))
	}
	// The population must actually be heterogeneous: all three tiers
	// populated, and the entry tier visibly slower than flagship.
	for _, tier := range []string{"flagship", "mid", "entry"} {
		if !strings.Contains(outputs[0], "== tier "+tier+" ==") {
			t.Fatalf("report missing tier %s", tier)
		}
	}
}

// TestFleetJSONLAndCounters: the export paths produce valid JSON and
// the JSONL is byte-identical across shard counts.
func TestFleetJSONLAndCounters(t *testing.T) {
	dir := t.TempDir()
	render := func(shards string) string {
		jsonl := filepath.Join(dir, "pop_"+shards+".jsonl")
		counters := filepath.Join(dir, "counters_"+shards+".json")
		var out, errb bytes.Buffer
		args := append(append([]string{}, fleetArgs...),
			"-shards", shards, "-jsonl", jsonl, "-counters", counters)
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
		}
		rows, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(rows)), "\n") {
			var v map[string]any
			if err := json.Unmarshal([]byte(line), &v); err != nil {
				t.Fatalf("bad JSONL line %q: %v", line, err)
			}
			if _, ok := v["sum"]; ok {
				t.Fatalf("JSONL row exports a float sum (non-mergeable): %q", line)
			}
		}
		var trace map[string]any
		counterBytes, err := os.ReadFile(counters)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(counterBytes, &trace); err != nil {
			t.Fatalf("counters file is not valid JSON: %v", err)
		}
		return string(rows)
	}
	if render("4") != render("25") {
		t.Fatal("JSONL differs across shard counts")
	}
}

// TestFleetBadFlags pins the CLI validation exits.
func TestFleetBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-dtype", "fp16"},
		{"-delegate", "tpu"},
		{"-models", "No Such Model"},
		{"-devices", "0"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Fatalf("%v accepted", args)
		}
	}
}
