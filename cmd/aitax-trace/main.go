// Command aitax-trace runs the instrumented application pipeline with
// the telemetry layer switched on and exports the run as a unified
// Chrome/Perfetto trace (scheduler slices + pipeline span tree +
// FastRPC flow arrows + accelerator counter tracks), a Prometheus-style
// metrics file, and/or a JSONL span log. Stdout gets a deterministic
// per-stage latency summary with exact p50/p90/p99.
//
// Usage:
//
//	aitax-trace -model MobileNetV1 -delegate hexagon -frames 20 \
//	    -chrome out.json -metrics out.prom
//	aitax-trace -model "Mobile BERT" -dtype fp32 -delegate cpu -jsonl spans.jsonl
//	aitax-trace -delegate hexagon -probe 0.05   # with the §III-C probe effect
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aitax"
	"aitax/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, summary out, files on disk.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aitax-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "MobileNet 1.0 v1", "Table-I model name (aliases like MobileNetV1 work)")
	dtype := fs.String("dtype", "int8", "precision: fp32 | int8")
	delegate := fs.String("delegate", "hexagon", "delegate: cpu | gpu | hexagon | nnapi")
	frames := fs.Int("frames", 20, "measured frames")
	platform := fs.String("platform", "Google Pixel 3", "platform (Table II)")
	seed := fs.Uint64("seed", 42, "random seed (0 is a valid seed)")
	bg := fs.Int("bg", 0, "background inference jobs (multi-tenancy)")
	bgDelegate := fs.String("bgdelegate", "hexagon", "background delegate")
	probe := fs.Float64("probe", 0, "probe-effect overhead fraction on accelerators (paper §III-C: 0.04–0.07)")
	chromePath := fs.String("chrome", "", "write the unified Chrome trace-event JSON to this path")
	metricsPath := fs.String("metrics", "", "write Prometheus-style metrics text to this path")
	jsonlPath := fs.String("jsonl", "", "write one JSON span per line to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dt, err := parseDType(*dtype)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	d, err := parseDelegate(*delegate)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	bgd, err := parseDelegate(*bgDelegate)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	p, err := aitax.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	// WarmupFrames -1: a trace wants every frame it records measured —
	// cold start included — so counts line up with -frames exactly.
	tr, err := aitax.MeasureAppTraced(aitax.AppOptions{
		Model: *model, DType: dt, Delegate: d,
		Frames: *frames, WarmupFrames: -1, Platform: p, Seed: *seed, SeedSet: true,
		BackgroundJobs: *bg, BackgroundDelegate: bgd,
		ProbeOverhead: *probe,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	writeSummary(stdout, tr, *model, dt, d, p.Name, *frames)

	for _, out := range []struct {
		path  string
		what  string
		write func(io.Writer) error
	}{
		{*chromePath, "chrome trace (open in ui.perfetto.dev or chrome://tracing)", tr.Chrome.WriteJSON},
		{*metricsPath, "metrics", tr.Metrics.WritePrometheus},
		{*jsonlPath, "span log", func(w io.Writer) error { return telemetry.WriteSpansJSONL(w, tr.Spans) }},
	} {
		if out.path == "" {
			continue
		}
		if err := writeFile(out.path, out.write); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s to %s\n", out.what, out.path)
	}
	return 0
}

// writeSummary prints the deterministic per-stage quantile table and the
// run's scheduler/RPC totals.
func writeSummary(w io.Writer, tr *aitax.TraceRun, model string, dt aitax.DType, d aitax.Delegate, platform string, frames int) {
	fmt.Fprintf(w, "trace: model=%q dtype=%s delegate=%s platform=%q frames=%d\n\n",
		model, dt, d, platform, frames)
	fmt.Fprintf(w, "%-10s %7s %10s %10s %10s\n", "stage", "count", "p50 ms", "p90 ms", "p99 ms")
	m := tr.Metrics
	for _, stage := range []string{"capture", "pre", "inference", "post", "ui", "total"} {
		name := telemetry.Labeled("aitax_stage_ms", "stage", stage)
		fmt.Fprintf(w, "%-10s %7d %10.4f %10.4f %10.4f\n", stage,
			m.Count(name), m.Quantile(name, 0.50), m.Quantile(name, 0.90), m.Quantile(name, 0.99))
	}
	fmt.Fprintf(w, "\nai tax per frame:  p50 %.4fms  p90 %.4fms  p99 %.4fms\n",
		m.Quantile("aitax_frame_tax_ms", 0.50),
		m.Quantile("aitax_frame_tax_ms", 0.90),
		m.Quantile("aitax_frame_tax_ms", 0.99))
	if calls := m.Counter("aitax_fastrpc_calls_total"); calls > 0 {
		fmt.Fprintf(w, "fastrpc: %.0f calls  transport p50 %.4fms  queue p50 %.4fms  exec p50 %.4fms\n",
			calls,
			m.Quantile("aitax_fastrpc_transport_ms", 0.50),
			m.Quantile("aitax_fastrpc_queue_ms", 0.50),
			m.Quantile("aitax_fastrpc_exec_ms", 0.50))
	}
	fmt.Fprintf(w, "spans %d  flows %d  migrations %d  context switches %d\n",
		len(tr.Spans), len(tr.Flows), tr.Migrations, tr.ContextSwitches)
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseDType(s string) (aitax.DType, error) {
	switch s {
	case "fp32", "float32":
		return aitax.Float32, nil
	case "int8", "uint8", "quant":
		return aitax.UInt8, nil
	default:
		return aitax.Float32, fmt.Errorf("unknown dtype %q (fp32|int8)", s)
	}
}

func parseDelegate(s string) (aitax.Delegate, error) {
	switch s {
	case "cpu":
		return aitax.DelegateCPU, nil
	case "gpu":
		return aitax.DelegateGPU, nil
	case "hexagon", "dsp":
		return aitax.DelegateHexagon, nil
	case "nnapi":
		return aitax.DelegateNNAPI, nil
	default:
		return aitax.DelegateCPU, fmt.Errorf("unknown delegate %q (cpu|gpu|hexagon|nnapi)", s)
	}
}
