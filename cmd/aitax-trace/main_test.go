package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceRunDeterministicSummary(t *testing.T) {
	render := func() string {
		var out, errb bytes.Buffer
		args := []string{"-model", "MobileNetV1", "-delegate", "hexagon", "-frames", "5"}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
		}
		return out.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("summary not deterministic\n--- 1 ---\n%s\n--- 2 ---\n%s", first, second)
	}
	for _, want := range []string{"stage", "capture", "inference", "total", "fastrpc:", "flows"} {
		if !strings.Contains(first, want) {
			t.Fatalf("summary missing %q:\n%s", want, first)
		}
	}
}

func TestTraceExportsFiles(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "out.json")
	prom := filepath.Join(dir, "out.prom")
	jsonl := filepath.Join(dir, "spans.jsonl")
	var out, errb bytes.Buffer
	args := []string{"-model", "MobileNetV1", "-delegate", "hexagon", "-frames", "5",
		"-chrome", chrome, "-metrics", prom, "-jsonl", jsonl}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}

	// The chrome file must be valid JSON with sched slices, pipeline
	// spans on both tracks, and paired flow events.
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
			TID int    `json:"tid"`
			ID  int64  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	starts, finishes := map[int64]bool{}, map[int64]bool{}
	var schedSlices, dspSpans, counters int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.PID == 0:
			schedSlices++
		case e.Ph == "X" && e.PID == 1 && e.TID == 1:
			dspSpans++
		case e.Ph == "s":
			starts[e.ID] = true
		case e.Ph == "f":
			finishes[e.ID] = true
		case e.Ph == "C":
			counters++
		}
	}
	if schedSlices == 0 || dspSpans == 0 || counters == 0 {
		t.Fatalf("trace incomplete: %d sched slices, %d dsp spans, %d counter samples",
			schedSlices, dspSpans, counters)
	}
	if len(starts) == 0 {
		t.Fatal("no flow events")
	}
	for id := range starts {
		if !finishes[id] {
			t.Fatalf("flow %d has no finish event", id)
		}
	}

	// The metrics file must carry per-stage exact quantiles.
	promText, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`aitax_stage_ms_p50{stage="inference"}`,
		`aitax_stage_ms_p90{stage="total"}`,
		`aitax_stage_ms_p99{stage="capture"}`,
		"aitax_fastrpc_calls_total",
	} {
		if !strings.Contains(string(promText), want) {
			t.Fatalf("metrics missing %q:\n%s", want, promText)
		}
	}

	// The span log is one JSON object per line.
	lines := bytes.Split(bytes.TrimSpace(mustRead(t, jsonl)), []byte("\n"))
	if len(lines) < 5 {
		t.Fatalf("span log has %d lines", len(lines))
	}
	for _, ln := range lines {
		var row map[string]any
		if err := json.Unmarshal(ln, &row); err != nil {
			t.Fatalf("bad JSONL row %q: %v", ln, err)
		}
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTraceBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-delegate", "npu"}, &out, &errb); code != 1 {
		t.Fatalf("unknown delegate exit = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown delegate") {
		t.Fatalf("stderr:\n%s", errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-model", "no-such-model"}, &out, &errb); code != 1 {
		t.Fatalf("unknown model exit = %d, want 1", code)
	}
}
