// Command aitax-bench is the analogue of the TFLite command-line
// benchmark utility: it runs one model through one delegate for N
// measured iterations and prints per-stage means and the latency
// distribution. It is also the repo's benchmark-report tool: -parse
// turns `go test -bench -benchmem` output into a BENCH_<date>.json
// report, and -compare gates two reports against each other.
//
// Usage:
//
//	aitax-bench -model "MobileNet 1.0 v1" -dtype int8 -delegate nnapi -runs 100
//	aitax-bench -list
//	aitax-bench -parse bench_output.txt -out BENCH_2026-08-05.json
//	aitax-bench -compare old.json new.json          # exit 1 on >10% regression
//	aitax-bench -compare -wall old.json new.json    # wall gate (multi-iteration runs)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aitax"
	"aitax/internal/benchfmt"
	"aitax/internal/stats"
)

func parseDType(s string) (aitax.DType, error) {
	switch s {
	case "fp32", "float32":
		return aitax.Float32, nil
	case "int8", "uint8", "quant":
		return aitax.UInt8, nil
	default:
		return aitax.Float32, fmt.Errorf("unknown dtype %q (fp32|int8)", s)
	}
}

func parseDelegate(s string) (aitax.Delegate, error) {
	switch s {
	case "cpu":
		return aitax.DelegateCPU, nil
	case "gpu":
		return aitax.DelegateGPU, nil
	case "hexagon", "dsp":
		return aitax.DelegateHexagon, nil
	case "nnapi":
		return aitax.DelegateNNAPI, nil
	default:
		return aitax.DelegateCPU, fmt.Errorf("unknown delegate %q (cpu|gpu|hexagon|nnapi)", s)
	}
}

func main() {
	model := flag.String("model", "MobileNet 1.0 v1", "Table-I model name")
	dtype := flag.String("dtype", "fp32", "precision: fp32 | int8")
	delegate := flag.String("delegate", "cpu", "delegate: cpu | gpu | hexagon | nnapi")
	runs := flag.Int("runs", 100, "measured iterations (paper: 500)")
	platform := flag.String("platform", "Google Pixel 3", "platform (Table II)")
	seed := flag.Uint64("seed", 42, "random seed (0 is a valid seed)")
	list := flag.Bool("list", false, "list model names and exit")
	stdlib := flag.String("stdlib", "libc++", "C++ standard library: libc++ | libstdc++ (flips random-gen cost, §IV-A)")
	parse := flag.String("parse", "", "parse `go test -bench` output from this file (\"-\" for stdin) into a JSON report")
	out := flag.String("out", "", "with -parse: write the JSON report here (default stdout)")
	date := flag.String("date", "", "with -parse: report date (default today, YYYY-MM-DD)")
	compare := flag.Bool("compare", false, "compare two JSON reports (old.json new.json); exit 1 on regression")
	threshold := flag.Float64("threshold", 0.10, "with -compare: allowed fractional growth in ns/op or allocs/op")
	allocsOnly := flag.Bool("allocs-only", false, "with -compare: gate only zero-alloc benchmarks (baseline 0 allocs/op must stay 0; for 1-iteration smoke runs)")
	wall := flag.Bool("wall", false, "with -compare: wall-time gate for multi-iteration runs (skip 1-iteration entries, apply -ns-floor; allocs gated too)")
	nsFloor := flag.Float64("ns-floor", 5000, "with -compare -wall: ignore ns/op regressions on benchmarks faster than this (noise floor, ns/op)")
	flag.Parse()

	if *list {
		for _, n := range aitax.ModelNames() {
			fmt.Println(n)
		}
		return
	}
	if *parse != "" {
		check(runParse(*parse, *out, *date))
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			check(fmt.Errorf("-compare needs exactly two arguments: old.json new.json"))
		}
		if *allocsOnly && *wall {
			check(fmt.Errorf("-allocs-only and -wall are mutually exclusive compare modes"))
		}
		ok, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold, *allocsOnly, *wall, *nsFloor)
		check(err)
		if !ok {
			os.Exit(1)
		}
		return
	}

	dt, err := parseDType(*dtype)
	check(err)
	d, err := parseDelegate(*delegate)
	check(err)
	p, err := aitax.PlatformByName(*platform)
	check(err)

	lib := aitax.LibCXX
	if *stdlib == "libstdc++" {
		lib = aitax.LibStdCXX
	}
	samples, err := aitax.MeasureBenchmark(aitax.AppOptions{
		Model: *model, DType: dt, Delegate: d,
		Frames: *runs, Platform: p, Seed: *seed, SeedSet: true, StdLib: lib,
	})
	check(err)

	var cap, pre, inf, total time.Duration
	dist := stats.NewSample()
	for _, s := range samples {
		cap += s.DataCapture
		pre += s.Pre
		inf += s.Inference
		total += s.Total
		dist.Add(float64(s.Total) / float64(time.Millisecond))
	}
	n := time.Duration(len(samples))
	fmt.Printf("model=%q dtype=%s delegate=%s platform=%q runs=%d\n",
		*model, dt, d, p.Name, len(samples))
	fmt.Printf("  input generation : %8.3f ms\n", ms(cap/n))
	fmt.Printf("  pre-processing   : %8.3f ms\n", ms(pre/n))
	fmt.Printf("  inference        : %8.3f ms\n", ms(inf/n))
	fmt.Printf("  total            : %8.3f ms\n", ms(total/n))
	fmt.Printf("  distribution     : %s\n", dist.Summarize())
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runParse converts `go test -bench` text output into a JSON report.
func runParse(in, out, date string) error {
	var src io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	rep, err := benchfmt.Parse(src)
	if err != nil {
		return err
	}
	if len(rep.Entries) == 0 {
		return fmt.Errorf("no benchmark result lines found in %s", in)
	}
	if date == "" {
		date = time.Now().Format("2006-01-02")
	}
	rep.Date = date
	dst := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return rep.Write(dst)
}

// runCompare gates a new report against an old one; ok=false means at
// least one benchmark regressed beyond the threshold. With allocsOnly,
// only a zero-alloc benchmark gaining allocations fails the gate (the
// mode CI's 1-iteration smoke run uses, where wall time and warm-up
// alloc counts are noise but 0 → n allocs is exact). With wall, the
// multi-iteration wall-time gate runs instead: 1-iteration entries are
// skipped, ns/op below nsFloor is reported but not judged, and allocs
// growth is gated everywhere (exact at steady state).
func runCompare(oldPath, newPath string, threshold float64, allocsOnly, wall bool, nsFloor float64) (bool, error) {
	readReport := func(p string) (*benchfmt.Report, error) {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return benchfmt.Read(f)
	}
	oldRep, err := readReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return false, err
	}
	var c *benchfmt.Comparison
	mode := ""
	switch {
	case allocsOnly:
		c = benchfmt.CompareAllocs(oldRep, newRep, threshold)
		mode = " (allocs only)"
	case wall:
		c = benchfmt.CompareWall(oldRep, newRep, threshold, nsFloor)
		mode = fmt.Sprintf(" (wall gate, noise floor %.0f ns/op)", nsFloor)
	default:
		c = benchfmt.Compare(oldRep, newRep, threshold)
	}
	fmt.Printf("comparing %s (%s) -> %s (%s), threshold %.0f%%%s\n",
		oldPath, oldRep.Date, newPath, newRep.Date, threshold*100, mode)
	c.Render(os.Stdout)
	if regs := c.Regressions(); len(regs) > 0 {
		fmt.Printf("FAIL: %d benchmark(s) regressed beyond %.0f%%\n", len(regs), threshold*100)
		return false, nil
	}
	fmt.Println("OK: no regressions beyond threshold")
	return true, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
