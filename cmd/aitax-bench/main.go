// Command aitax-bench is the analogue of the TFLite command-line
// benchmark utility: it runs one model through one delegate for N
// measured iterations and prints per-stage means and the latency
// distribution.
//
// Usage:
//
//	aitax-bench -model "MobileNet 1.0 v1" -dtype int8 -delegate nnapi -runs 100
//	aitax-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aitax"
	"aitax/internal/stats"
)

func parseDType(s string) (aitax.DType, error) {
	switch s {
	case "fp32", "float32":
		return aitax.Float32, nil
	case "int8", "uint8", "quant":
		return aitax.UInt8, nil
	default:
		return aitax.Float32, fmt.Errorf("unknown dtype %q (fp32|int8)", s)
	}
}

func parseDelegate(s string) (aitax.Delegate, error) {
	switch s {
	case "cpu":
		return aitax.DelegateCPU, nil
	case "gpu":
		return aitax.DelegateGPU, nil
	case "hexagon", "dsp":
		return aitax.DelegateHexagon, nil
	case "nnapi":
		return aitax.DelegateNNAPI, nil
	default:
		return aitax.DelegateCPU, fmt.Errorf("unknown delegate %q (cpu|gpu|hexagon|nnapi)", s)
	}
}

func main() {
	model := flag.String("model", "MobileNet 1.0 v1", "Table-I model name")
	dtype := flag.String("dtype", "fp32", "precision: fp32 | int8")
	delegate := flag.String("delegate", "cpu", "delegate: cpu | gpu | hexagon | nnapi")
	runs := flag.Int("runs", 100, "measured iterations (paper: 500)")
	platform := flag.String("platform", "Google Pixel 3", "platform (Table II)")
	seed := flag.Uint64("seed", 42, "random seed (0 is a valid seed)")
	list := flag.Bool("list", false, "list model names and exit")
	stdlib := flag.String("stdlib", "libc++", "C++ standard library: libc++ | libstdc++ (flips random-gen cost, §IV-A)")
	flag.Parse()

	if *list {
		for _, n := range aitax.ModelNames() {
			fmt.Println(n)
		}
		return
	}

	dt, err := parseDType(*dtype)
	check(err)
	d, err := parseDelegate(*delegate)
	check(err)
	p, err := aitax.PlatformByName(*platform)
	check(err)

	lib := aitax.LibCXX
	if *stdlib == "libstdc++" {
		lib = aitax.LibStdCXX
	}
	samples, err := aitax.MeasureBenchmark(aitax.AppOptions{
		Model: *model, DType: dt, Delegate: d,
		Frames: *runs, Platform: p, Seed: *seed, SeedSet: true, StdLib: lib,
	})
	check(err)

	var cap, pre, inf, total time.Duration
	dist := stats.NewSample()
	for _, s := range samples {
		cap += s.DataCapture
		pre += s.Pre
		inf += s.Inference
		total += s.Total
		dist.Add(float64(s.Total) / float64(time.Millisecond))
	}
	n := time.Duration(len(samples))
	fmt.Printf("model=%q dtype=%s delegate=%s platform=%q runs=%d\n",
		*model, dt, d, p.Name, len(samples))
	fmt.Printf("  input generation : %8.3f ms\n", ms(cap/n))
	fmt.Printf("  pre-processing   : %8.3f ms\n", ms(pre/n))
	fmt.Printf("  inference        : %8.3f ms\n", ms(inf/n))
	fmt.Printf("  total            : %8.3f ms\n", ms(total/n))
	fmt.Printf("  distribution     : %s\n", dist.Summarize())
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
