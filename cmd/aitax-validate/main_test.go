package main

import (
	"bytes"
	"strings"
	"testing"
)

// The chaos gate must pass, and its report must be byte-identical
// between invocations and across worker-pool widths — the end-to-end
// determinism contract of the fault subsystem.
func TestChaosGateDeterministic(t *testing.T) {
	gate := func(parallel string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-chaos", "-parallel", parallel}, &out, &errb); code != 0 {
			t.Fatalf("chaos gate exited %d: %s%s", code, out.String(), errb.String())
		}
		return out.String()
	}
	wide := gate("4")
	if !strings.Contains(wide, "chaos gate PASS") {
		t.Fatalf("no PASS line in report:\n%s", wide)
	}
	if !strings.Contains(wide, "fault recovery") {
		t.Fatalf("report shows no fault recovery — the plan injected nothing:\n%s", wide)
	}
	for _, tgt := range []string{"target cpu:", "target gpu:", "target hexagon:", "target nnapi:"} {
		if !strings.Contains(wide, tgt) {
			t.Fatalf("report missing %q:\n%s", tgt, wide)
		}
	}
	// Only the closing PASS line names the -parallel value; every
	// measured byte before it must match across pool widths.
	body := func(s string) string { return s[:strings.Index(s, "chaos gate PASS")] }
	if again := gate("2"); body(again) != body(wide) {
		t.Fatalf("chaos report differs across invocations/parallelism:\n--- parallel 4 ---\n%s--- parallel 2 ---\n%s", wide, again)
	}
}
