package main

import (
	"bytes"
	"strings"
	"testing"
)

// The chaos gate must pass, and its report must be byte-identical
// between invocations and across worker-pool widths — the end-to-end
// determinism contract of the fault subsystem.
func TestChaosGateDeterministic(t *testing.T) {
	gate := func(parallel string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-chaos", "-parallel", parallel}, &out, &errb); code != 0 {
			t.Fatalf("chaos gate exited %d: %s%s", code, out.String(), errb.String())
		}
		return out.String()
	}
	wide := gate("4")
	if !strings.Contains(wide, "chaos gate PASS") {
		t.Fatalf("no PASS line in report:\n%s", wide)
	}
	if !strings.Contains(wide, "fault recovery") {
		t.Fatalf("report shows no fault recovery — the plan injected nothing:\n%s", wide)
	}
	for _, tgt := range []string{"target cpu:", "target gpu:", "target hexagon:", "target nnapi:"} {
		if !strings.Contains(wide, tgt) {
			t.Fatalf("report missing %q:\n%s", tgt, wide)
		}
	}
	// Only the closing PASS line names the -parallel value; every
	// measured byte before it must match across pool widths.
	body := func(s string) string { return s[:strings.Index(s, "chaos gate PASS")] }
	if again := gate("2"); body(again) != body(wide) {
		t.Fatalf("chaos report differs across invocations/parallelism:\n--- parallel 4 ---\n%s--- parallel 2 ---\n%s", wide, again)
	}
}

// The brownout gate must pass end to end: ladder engaged and
// recovered, only best-effort shed, the controller inside the
// objective the frozen baseline violates, and the report identical
// across pool widths.
func TestBrownoutGatePasses(t *testing.T) {
	gate := func(parallel string) string {
		var out, errb bytes.Buffer
		if code := run([]string{"-brownout", "-parallel", parallel}, &out, &errb); code != 0 {
			t.Fatalf("brownout gate exited %d: %s%s", code, out.String(), errb.String())
		}
		return out.String()
	}
	wide := gate("4")
	if !strings.Contains(wide, "brownout gate PASS") {
		t.Fatalf("no PASS line in report:\n%s", wide)
	}
	for _, want := range []string{
		"degradation anatomy (brownout controller active",
		"per-class latency",
		"observe-only baseline violates it",
	} {
		if !strings.Contains(wide, want) {
			t.Fatalf("report missing %q:\n%s", want, wide)
		}
	}
	if strings.Contains(wide, "FAIL") {
		t.Fatalf("gate passed with FAIL lines:\n%s", wide)
	}
	// Only the first PASS line names the -parallel value; the measured
	// anatomy before the checks must match across pool widths.
	body := func(s string) string { return s[:strings.Index(s, "PASS  report byte-identical")] }
	if again := gate("2"); body(again) != body(wide) {
		t.Fatalf("brownout report differs across parallelism:\n--- parallel 4 ---\n%s--- parallel 2 ---\n%s", wide, again)
	}
}

// -chaos and -brownout are mutually exclusive gates.
func TestGateFlagsAreExclusive(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-chaos", "-brownout"}, &out, &errb); code == 0 {
		t.Fatal("combined -chaos -brownout succeeded, want an error")
	}
	if errb.Len() == 0 {
		t.Fatal("combined gates failed silently")
	}
}
