// Command aitax-validate runs every experiment and reports the status of
// each embedded shape check against the paper — a CI-style gate for the
// reproduction ("did the Fig. 5 cliff regress?") without running the
// full Go test suite. Experiments run concurrently on a worker pool
// (-parallel, default GOMAXPROCS); the report is always in paper order.
//
//	aitax-validate            # exit 0 iff every shape check passes
//	aitax-validate -runs 100  # higher-precision run
//	aitax-validate -parallel 1  # strictly sequential
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"aitax"
)

func main() {
	runs := flag.Int("runs", 24, "iterations per configuration")
	seed := flag.Uint64("seed", 42, "random seed (0 is a valid seed)")
	platform := flag.String("platform", "Google Pixel 3", "platform (Table II)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker-pool size; the report is identical at any value")
	flag.Parse()

	p, err := aitax.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := aitax.ExperimentConfig{Platform: p, Seed: *seed, SeedSet: true, Runs: *runs}

	// A panicking experiment comes back as an error Result whose note
	// carries "setup failed", so it is counted as a FAIL below rather
	// than crashing the gate.
	results := aitax.RunAllExperiments(cfg, *parallel)

	failures := 0
	checks := 0
	for i, e := range aitax.Experiments() {
		res := results[i]
		status := "ok    " // experiments without an explicit check still ran
		var failing []string
		for _, n := range res.Notes {
			if strings.Contains(n, "shape check PASS") {
				checks++
				status = "PASS  "
			}
			if strings.Contains(n, "FAIL") || strings.Contains(n, "setup failed") {
				checks++
				failures++
				status = "FAIL  "
				failing = append(failing, n)
			}
		}
		fmt.Printf("%s %-20s %s\n", status, e.ID, e.Title)
		for _, f := range failing {
			fmt.Printf("        %s\n", f)
		}
	}
	fmt.Printf("\n%d experiments, %d explicit shape checks, %d failures\n",
		len(aitax.Experiments()), checks, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
