// Command aitax-validate runs every experiment and reports the status of
// each embedded shape check against the paper — a CI-style gate for the
// reproduction ("did the Fig. 5 cliff regress?") without running the
// full Go test suite. Experiments run concurrently on a worker pool
// (-parallel, default GOMAXPROCS); the report is always in paper order.
//
// With -chaos it instead runs the fault-injection gate: one model per
// execution target under a fixed fault plan, once on the worker pool
// and once strictly sequentially, and fails unless the two reports are
// byte-identical — proving the injected faults, retries and CPU
// fallbacks are deterministic at any parallelism (see docs/FAULTS.md).
//
// With -brownout it runs the graceful-degradation gate instead: a
// pinned overload storm against the serving simulator with the QoS
// brownout controller enabled and again with the controller frozen,
// failing unless the ladder fully engages and recovers, only
// best-effort traffic is shed, the report is byte-identical at any
// parallelism, and the controller demonstrably holds the interactive
// p99 inside an objective the frozen baseline violates (see
// docs/QOS.md).
//
//	aitax-validate            # exit 0 iff every shape check passes
//	aitax-validate -runs 100  # higher-precision run
//	aitax-validate -parallel 1  # strictly sequential
//	aitax-validate -chaos     # deterministic fault-injection gate
//	aitax-validate -brownout  # graceful-degradation gate
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"aitax"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, validation report out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aitax-validate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runs := fs.Int("runs", 24, "iterations per configuration")
	seed := fs.Uint64("seed", 42, "random seed (0 is a valid seed)")
	platform := fs.String("platform", "Google Pixel 3", "platform (Table II)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker-pool size; the report is identical at any value")
	chaos := fs.Bool("chaos", false,
		"run the fault-injection gate instead of the shape checks")
	brownout := fs.Bool("brownout", false,
		"run the graceful-degradation gate instead of the shape checks")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	p, err := aitax.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *chaos && *brownout {
		fmt.Fprintln(stderr, "aitax-validate: -chaos and -brownout are separate gates; pick one")
		return 2
	}
	if *chaos {
		return chaosRun(p, *seed, *parallel, stdout, stderr)
	}
	if *brownout {
		return brownoutRun(p, *parallel, stdout, stderr)
	}
	cfg := aitax.ExperimentConfig{Platform: p, Seed: *seed, SeedSet: true, Runs: *runs}

	// A panicking experiment comes back as an error Result whose note
	// carries "setup failed", so it is counted as a FAIL below rather
	// than crashing the gate.
	results := aitax.RunAllExperiments(cfg, *parallel)

	failures := 0
	checks := 0
	for i, e := range aitax.Experiments() {
		res := results[i]
		status := "ok    " // experiments without an explicit check still ran
		var failing []string
		for _, n := range res.Notes {
			if strings.Contains(n, "shape check PASS") {
				checks++
				status = "PASS  "
			}
			if strings.Contains(n, "FAIL") || strings.Contains(n, "setup failed") {
				checks++
				failures++
				status = "FAIL  "
				failing = append(failing, n)
			}
		}
		fmt.Fprintf(stdout, "%s %-20s %s\n", status, e.ID, e.Title)
		for _, f := range failing {
			fmt.Fprintf(stdout, "        %s\n", f)
		}
	}
	fmt.Fprintf(stdout, "\n%d experiments, %d explicit shape checks, %d failures\n",
		len(aitax.Experiments()), checks, failures)
	if failures > 0 {
		return 1
	}
	return 0
}

// chaosPlanSpec is the gate's fixed fault plan: flaky and stalling
// FastRPC with tight deadlines, then a thermal trip that kills the
// accelerator mid-run, under a pinned fault seed so the gate exercises
// one reproducible storm — retries, driver stalls AND the permanent CPU
// fallback, all in a single run.
const chaosPlanSpec = "rpc=0.15,timeout=0.1,deadline=10ms,stall=0.25,trip=300ms,seed=7"

// chaosTargets pins one model per execution target: fp32 on the CPU and
// GPU paths, the quantized offload paths for Hexagon and NNAPI.
var chaosTargets = []struct {
	label    string
	dtype    aitax.DType
	delegate aitax.Delegate
}{
	{"cpu", aitax.Float32, aitax.DelegateCPU},
	{"gpu", aitax.Float32, aitax.DelegateGPU},
	{"hexagon", aitax.UInt8, aitax.DelegateHexagon},
	{"nnapi", aitax.UInt8, aitax.DelegateNNAPI},
}

// chaosRun measures every chaos target under the fixed plan on a
// parallel-wide lab and again sequentially, writes the (shared) report,
// and fails on any divergence — the determinism contract of the fault
// subsystem, checked end to end.
func chaosRun(p *aitax.SoC, seed uint64, parallel int, stdout, stderr io.Writer) int {
	plan, err := aitax.ParseFaultPlan(chaosPlanSpec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	measure := func(parallelism int) ([]string, error) {
		jobs := make([]aitax.Job, len(chaosTargets))
		for i, tgt := range chaosTargets {
			tgt := tgt
			jobs[i] = aitax.Job{
				ID: tgt.label,
				Run: func(ctx context.Context) (any, error) {
					b, err := aitax.MeasureAppCtx(ctx, aitax.AppOptions{
						Model: "MobileNet 1.0 v1", DType: tgt.dtype, Delegate: tgt.delegate,
						Frames: 12, Platform: p, Seed: seed, SeedSet: true, Faults: plan,
					})
					if err != nil {
						return nil, err
					}
					return fmt.Sprintf("target %s: tax %.2f ms (%.1f%%)\n%s",
						tgt.label, float64(b.Tax().Microseconds())/1000,
						100*b.TaxFraction(), b.Render()), nil
				},
			}
		}
		l := &aitax.Lab{Parallelism: parallelism}
		out := make([]string, 0, len(jobs))
		for _, r := range l.Run(context.Background(), jobs) {
			if r.Err != nil {
				return nil, fmt.Errorf("%s: %w", r.ID, r.Err)
			}
			out = append(out, r.Value.(string))
		}
		return out, nil
	}

	fmt.Fprintf(stdout, "chaos gate: plan %q, seed %d, platform %q\n\n", chaosPlanSpec, seed, p.Name)
	wide, err := measure(parallel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	seq, err := measure(1)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	failures := 0
	for i, tgt := range chaosTargets {
		fmt.Fprint(stdout, wide[i])
		if wide[i] != seq[i] {
			failures++
			fmt.Fprintf(stdout, "FAIL  %s diverged between -parallel %d and sequential:\n--- parallel ---\n%s--- sequential ---\n%s",
				tgt.label, parallel, wide[i], seq[i])
		}
		fmt.Fprintln(stdout)
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "chaos gate: %d of %d targets diverged across parallelism\n", failures, len(chaosTargets))
		return 1
	}
	fmt.Fprintf(stdout, "chaos gate PASS: %d targets byte-identical at -parallel %d and sequential\n",
		len(chaosTargets), parallel)
	return 0
}
