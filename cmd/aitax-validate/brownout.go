package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"aitax"
	"aitax/internal/app"
	"aitax/internal/loadgen"
	"aitax/internal/models"
	"aitax/internal/obs"
	"aitax/internal/qos"
	"aitax/internal/serve"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// The brownout gate's pinned storm: an overload burst that must climb
// the full degradation ladder, then a calm tail it must recover
// through. Mirrors the aitax-serve brownout golden so the two gates
// watch the same scenario from different layers.
const (
	brownoutLadderSpec = "tick=5ms,hold=6,short=2,long=4,enter=0.1/0.2/0.3,exit=0.04/0.08/0.15"
	brownoutRampSpec   = "300x300ms,4x3s"
	brownoutMixSpec    = "EfficientNet-Lite0=2,EfficientNet-Lite0=2:best-effort,EfficientNet-Lite0=1:interactive"
	brownoutSeed       = 11
	brownoutObjective  = 350 * time.Millisecond
)

// brownoutConfig assembles the gate's serving config and arrival
// schedule.
func brownoutConfig(p *aitax.SoC) (serve.Config, []loadgen.Arrival, error) {
	mobile, err := models.ByName("MobileNet 1.0 v1")
	if err != nil {
		return serve.Config{}, nil, err
	}
	eff, err := models.ByName("EfficientNet-Lite0")
	if err != nil {
		return serve.Config{}, nil, err
	}
	lad, err := qos.ParseLadder(brownoutLadderSpec)
	if err != nil {
		return serve.Config{}, nil, err
	}
	cfg := serve.Config{
		Platform: p, DType: tensor.Float32, Delegate: tflite.DelegateNNAPI,
		Entry:   app.StagePre,
		Models:  []*models.Model{mobile, eff},
		Workers: 2, BatchWindow: 2 * time.Millisecond, MaxBatch: 4,
		QueueDepth: 64, DispatchCost: 200 * time.Microsecond, Seed: brownoutSeed,
		SLO: []obs.Objective{{Model: "EfficientNet-Lite0", Latency: brownoutObjective, Target: 0.95}},
		QoS: &serve.QoSPolicy{
			Ladder:        lad,
			Downshift:     map[string]string{"EfficientNet-Lite0": "MobileNet 1.0 v1"},
			SteerDelegate: tflite.DelegateGPU,
		},
	}
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return serve.Config{}, nil, err
	}
	phases, err := loadgen.ParseRamp(brownoutRampSpec)
	if err != nil {
		return serve.Config{}, nil, err
	}
	mix, err := loadgen.ParseMix(brownoutMixSpec)
	if err != nil {
		return serve.Config{}, nil, err
	}
	arrivals, err := loadgen.Spec{Seed: brownoutSeed, Phases: phases, Mix: mix}.Generate()
	if err != nil {
		return serve.Config{}, nil, err
	}
	return cfg, arrivals, nil
}

// classP99 is the nearest-rank p99 of served latencies in one QoS
// class.
func classP99(outcomes []serve.Outcome, cls qos.Class) time.Duration {
	var lats []time.Duration
	for _, o := range outcomes {
		if o.Class == cls && !o.Shed && !o.Rejected {
			lats = append(lats, o.Latency())
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(float64(len(lats))*0.99+0.9999999) - 1
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

// brownoutRun is the graceful-degradation gate: the pinned storm must
// be byte-identical at any cost-table parallelism, the ladder must
// fully engage and recover, only best-effort traffic may be shed, and
// the controller must hold protected-class p99 inside the objective
// that the frozen (observe-only) baseline demonstrably violates.
func brownoutRun(p *aitax.SoC, parallel int, stdout, stderr io.Writer) int {
	cfg, arrivals, err := brownoutConfig(p)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "brownout gate: ladder %q, ramp %q, seed %d, platform %q\n\n",
		brownoutLadderSpec, brownoutRampSpec, brownoutSeed, p.Name)

	simulate := func(cfg serve.Config, parallelism int) (*serve.SimResult, string, error) {
		table, err := serve.BuildCostTable(context.Background(), cfg, parallelism, nil)
		if err != nil {
			return nil, "", err
		}
		res, err := serve.Simulate(cfg, table, arrivals, false)
		if err != nil {
			return nil, "", err
		}
		return res, res.Report(cfg, brownoutRampSpec), nil
	}

	res, wide, err := simulate(cfg, parallel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	_, seq, err := simulate(cfg, 1)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	obsCfg := cfg
	pol := *cfg.QoS
	pol.Observe = true
	obsCfg.QoS = &pol
	baseline, _, err := simulate(obsCfg, parallel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if i := strings.Index(wide, "degradation anatomy"); i >= 0 {
		fmt.Fprintln(stdout, wide[i:])
	}

	failures := 0
	check := func(ok bool, format string, args ...any) {
		status := "PASS  "
		if !ok {
			status = "FAIL  "
			failures++
		}
		fmt.Fprintf(stdout, status+format+"\n", args...)
	}

	d := res.Degradation
	check(wide == seq, "report byte-identical at -parallel %d and sequential", parallel)
	check(d.FullyEngaged(), "ladder reached L%d", qos.NumRungs)
	check(d.Recovered(), "ladder recovered to L0 (%d transitions)", len(d.Transitions))
	check(d.Shed[qos.BestEffort] > 0, "best-effort traffic shed (%d)", d.Shed[qos.BestEffort])
	check(d.Shed[qos.Interactive] == 0 && d.Shed[qos.Standard] == 0,
		"protected classes never shed (%v)", d.Shed)
	check(d.Downshifted > 0, "requests downshifted (%d)", d.Downshifted)
	check(d.SteeredBatches > 0, "batches steered (%d)", d.SteeredBatches)

	actP99 := classP99(res.Outcomes, qos.Interactive)
	obsP99 := classP99(baseline.Outcomes, qos.Interactive)
	check(actP99 <= brownoutObjective,
		"interactive p99 %.1fms inside the %v objective under brownout", ms(actP99), brownoutObjective)
	check(obsP99 > brownoutObjective,
		"observe-only baseline violates it (interactive p99 %.1fms)", ms(obsP99))
	bd := baseline.Degradation
	check(bd.Observe && len(bd.Transitions) == 0 && bd.ShedTotal() == 0,
		"frozen controller took no action")

	if failures > 0 {
		fmt.Fprintf(stdout, "\nbrownout gate: %d checks failed\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "\nbrownout gate PASS")
	return 0
}

// ms renders a duration in milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
