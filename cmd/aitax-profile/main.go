// Command aitax-profile renders Snapdragon-Profiler-style execution
// timelines (per-core utilization, DSP occupancy, migrations) for one
// model/delegate configuration — the Fig. 6 view.
//
// Usage:
//
//	aitax-profile -model "EfficientNet-Lite0" -dtype int8 -delegate nnapi
//	aitax-profile -delegate hexagon -chrome out.json -metrics out.prom
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aitax"
	"aitax/internal/cli"
	"aitax/internal/models"
	"aitax/internal/sim"
	"aitax/internal/telemetry"
	"aitax/internal/tflite"
	"aitax/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, rendered timeline out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aitax-profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	model := fs.String("model", "EfficientNet-Lite0", "Table-I model name")
	dtype := fs.String("dtype", "int8", "precision: fp32 | int8")
	delegate := fs.String("delegate", "nnapi", "delegate: cpu | gpu | hexagon | nnapi")
	horizonMS := fs.Int("horizon", 600, "profile window in virtual milliseconds")
	bucketMS := fs.Float64("bucket", 2, "timeline bucket in milliseconds")
	platform := fs.String("platform", "Google Pixel 3", "platform (Table II)")
	seed := fs.Uint64("seed", 42, "random seed")
	common := cli.Register(fs, cli.Options{Trace: true, Metrics: true, TraceAlias: "chrome"})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dt, err := cli.ParseDType(*dtype)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	d, err := cli.ParseDelegate(*delegate)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	p, err := aitax.PlatformByName(*platform)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	m, err := models.ByName(*model)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	rt := tflite.NewStack(p, *seed)
	// Telemetry is nil-safe and perturbation-free, so it is switched on
	// only when an export asks for it; the timeline itself is identical
	// either way.
	if common.Trace != "" || common.Metrics != "" {
		rt.Tracer = telemetry.NewTracer(rt.Eng.Now)
		rt.Metrics = telemetry.NewRegistry()
	}
	prof := trace.NewProfiler(rt.Eng, time.Duration(*bucketMS*float64(time.Millisecond)))
	prof.Attach(rt.Sch)
	var chrome *trace.ChromeRecorder
	if common.Trace != "" {
		chrome = trace.NewChromeRecorder()
		chrome.Attach(rt.Sch)
	}
	prof.TrackResource("cdsp", rt.DSP)
	prof.TrackResource("gpu", rt.GPUQueue)

	ip, err := rt.NewInterpreter(m, dt, tflite.Options{Delegate: d})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	horizon := time.Duration(*horizonMS) * time.Millisecond
	invocations := 0
	ip.Init(func() {
		prof.StartSampling(horizon)
		var loop func()
		loop = func() {
			if rt.Eng.Now().Duration() >= horizon {
				return
			}
			ip.Invoke(func(tflite.Report) {
				invocations++
				loop()
			})
		}
		loop()
	})
	rt.Eng.RunUntil(sim.Time(0).Add(horizon))

	fmt.Fprintf(stdout, "profile: model=%q dtype=%s delegate=%s platform=%q window=%v\n",
		*model, dt, d, p.Name, horizon)
	fmt.Fprintf(stdout, "completed invocations in window: %d\n\n", invocations)
	fmt.Fprint(stdout, prof.Render())

	if chrome != nil {
		spans, flows := rt.Tracer.Spans(), rt.Tracer.Flows()
		chrome.AddTelemetry(spans, flows)
		chrome.AddSpanOccupancy("dsp in flight", spans, telemetry.TrackDSP)
		chrome.AddSpanOccupancy("gpu in flight", spans, telemetry.TrackGPU)
		chrome.AddFaultCounters(rt.Metrics, rt.Eng.Now())
		if err := cli.WriteFile(common.Trace, chrome.WriteJSON); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", common.Trace)
	}
	if common.Metrics != "" {
		if err := cli.WriteFile(common.Metrics, rt.Metrics.WritePrometheus); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "metrics written to %s\n", common.Metrics)
	}
	return 0
}
