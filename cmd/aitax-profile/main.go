// Command aitax-profile renders Snapdragon-Profiler-style execution
// timelines (per-core utilization, DSP occupancy, migrations) for one
// model/delegate configuration — the Fig. 6 view.
//
// Usage:
//
//	aitax-profile -model "EfficientNet-Lite0" -dtype int8 -delegate nnapi
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aitax"
	"aitax/internal/models"
	"aitax/internal/sim"
	"aitax/internal/tflite"
	"aitax/internal/trace"
)

func main() {
	model := flag.String("model", "EfficientNet-Lite0", "Table-I model name")
	dtype := flag.String("dtype", "int8", "precision: fp32 | int8")
	delegate := flag.String("delegate", "nnapi", "delegate: cpu | gpu | hexagon | nnapi")
	horizonMS := flag.Int("horizon", 600, "profile window in virtual milliseconds")
	bucketMS := flag.Float64("bucket", 2, "timeline bucket in milliseconds")
	platform := flag.String("platform", "Google Pixel 3", "platform (Table II)")
	seed := flag.Uint64("seed", 42, "random seed")
	chromeOut := flag.String("chrome", "", "also write a chrome://tracing JSON file to this path")
	flag.Parse()

	dt := aitax.Float32
	if *dtype == "int8" || *dtype == "uint8" || *dtype == "quant" {
		dt = aitax.UInt8
	}
	var d aitax.Delegate
	switch *delegate {
	case "cpu":
		d = aitax.DelegateCPU
	case "gpu":
		d = aitax.DelegateGPU
	case "hexagon", "dsp":
		d = aitax.DelegateHexagon
	case "nnapi":
		d = aitax.DelegateNNAPI
	default:
		fmt.Fprintf(os.Stderr, "unknown delegate %q\n", *delegate)
		os.Exit(1)
	}

	p, err := aitax.PlatformByName(*platform)
	check(err)
	m, err := models.ByName(*model)
	check(err)

	rt := tflite.NewStack(p, *seed)
	prof := trace.NewProfiler(rt.Eng, time.Duration(*bucketMS*float64(time.Millisecond)))
	prof.Attach(rt.Sch)
	var chrome *trace.ChromeRecorder
	if *chromeOut != "" {
		chrome = trace.NewChromeRecorder()
		chrome.Attach(rt.Sch)
	}
	prof.TrackResource("cdsp", rt.DSP)
	prof.TrackResource("gpu", rt.GPUQueue)

	ip, err := rt.NewInterpreter(m, dt, tflite.Options{Delegate: d})
	check(err)

	horizon := time.Duration(*horizonMS) * time.Millisecond
	invocations := 0
	ip.Init(func() {
		prof.StartSampling(horizon)
		var loop func()
		loop = func() {
			if rt.Eng.Now().Duration() >= horizon {
				return
			}
			ip.Invoke(func(tflite.Report) {
				invocations++
				loop()
			})
		}
		loop()
	})
	rt.Eng.RunUntil(sim.Time(0).Add(horizon))

	fmt.Printf("profile: model=%q dtype=%s delegate=%s platform=%q window=%v\n",
		*model, dt, d, p.Name, horizon)
	fmt.Printf("completed invocations in window: %d\n\n", invocations)
	fmt.Print(prof.Render())

	if chrome != nil {
		f, err := os.Create(*chromeOut)
		check(err)
		defer f.Close()
		check(chrome.WriteJSON(f))
		fmt.Printf("\nchrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chromeOut)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
