package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestGoldenTimeline(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-horizon", "150"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	want, err := os.ReadFile("testdata/effnet_nnapi_h150.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("timeline diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
			out.String(), string(want))
	}
}

func TestGoldenChromeTraceAndUnperturbedTimeline(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "c.json")
	prom := filepath.Join(dir, "m.prom")
	base := []string{"-model", "MobileNetV1", "-delegate", "hexagon", "-horizon", "120"}

	var plain bytes.Buffer
	if code := run(base, &plain, &bytes.Buffer{}); code != 0 {
		t.Fatal("plain run failed")
	}
	var out, errb bytes.Buffer
	args := append(append([]string{}, base...), "-chrome", chrome, "-metrics", prom)
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	// Switching the exports on must not change the rendered timeline.
	if out.String() != plain.String() {
		t.Fatalf("-chrome/-metrics perturbed the timeline\n--- plain ---\n%s\n--- traced ---\n%s",
			plain.String(), out.String())
	}

	got, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/mobilenet_hexagon_h120_chrome.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chrome trace diverged from golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("golden chrome trace is not valid JSON: %v", err)
	}
	var flows int
	for _, e := range doc.TraceEvents {
		if e.Ph == "s" || e.Ph == "f" {
			flows++
		}
	}
	if flows == 0 {
		t.Fatal("no FastRPC flow events in hexagon trace")
	}

	promText, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aitax_invocations_total", "aitax_fastrpc_exec_ms_p50"} {
		if !bytes.Contains(promText, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, promText)
		}
	}
}

func TestProfileBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-delegate", "npu"}, &out, &errb); code != 1 {
		t.Fatalf("unknown delegate exit = %d, want 1", code)
	}
	if code := run([]string{"-model", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown model exit = %d, want 1", code)
	}
}
