// Command aitax-serve runs the inference-serving frontend: per-model
// bounded queues, micro-batching and admission control in front of the
// simulated mobile stack.
//
// Two modes share one serving policy:
//
//	aitax-serve -addr :8080
//	    wall-clock HTTP server (POST /v1/classify|detect|segment,
//	    GET /v1/models, /healthz, /metrics)
//
//	aitax-serve -loadgen -ramp 100x1s,400x500ms -seed 7
//	    deterministic virtual-time load simulation driven by a seeded
//	    open-loop Poisson generator; the report (p50/p90/p99 latency,
//	    AI tax per request, admission and batching counts) is
//	    byte-identical for a fixed seed at any -parallel value.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aitax"
	"aitax/internal/app"
	"aitax/internal/cli"
	"aitax/internal/lab"
	"aitax/internal/loadgen"
	"aitax/internal/models"
	"aitax/internal/obs"
	"aitax/internal/qos"
	"aitax/internal/serve"
	"aitax/internal/sim"
	"aitax/internal/thermal"
	"aitax/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags in, report (or server) out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aitax-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "HTTP listen address (server mode)")
	loadMode := fs.Bool("loadgen", false, "run the deterministic load simulation instead of serving HTTP")
	ramp := fs.String("ramp", "10x1s,150x1s", "open-loop QPS ramp, QPSxDURATION per phase")
	mix := fs.String("mix", "", `request mix, "MODEL[=WEIGHT][:CLASS],..." (class: interactive | standard | best-effort; default: all loaded models, equal weight, standard)`)
	modelList := fs.String("models", "", "comma-separated loaded models (default: one per endpoint task)")
	platform := fs.String("platform", "Google Pixel 3", "platform name or chipset (Table II)")
	dtype := fs.String("dtype", "fp32", "precision: fp32 | int8 (int8 needs every loaded model quantized)")
	delegate := fs.String("delegate", "nnapi", "delegate: cpu | gpu | hexagon | nnapi")
	entry := fs.String("entry", "pre", "stage served requests enter at: pre | inference")
	workers := fs.Int("workers", 2, "model executors (batches in service at once)")
	window := fs.Duration("batch-window", 2*time.Millisecond, "micro-batch window (0 = dispatch immediately)")
	maxBatch := fs.Int("max-batch", 4, "flush a batch early at this size")
	queueDepth := fs.Int("queue-depth", 16, "per-model admission limit; beyond it requests are rejected (HTTP 429)")
	dispatch := fs.Duration("dispatch-cost", 200*time.Microsecond, "per-batch dispatch overhead, amortized across the batch")
	seed := fs.Uint64("seed", 42, "random seed (0 is a valid seed)")
	sloSpec := fs.String("slo", "", `latency SLOs, "MODEL=LATENCY@TARGET,..." (e.g. "all=5ms@95"); enables burn-rate monitoring`)
	qosSpec := fs.String("qos", "", `brownout ladder, "key=value,..." or "on" for defaults (tick=50ms hold=8 enter=0.5/0.7/0.9 exit=0.25/0.4/0.6 ...); requires -slo`)
	qosObserve := fs.Bool("qos-observe", false, "freeze the brownout controller at level 0: report the would-be timeline, take no action")
	downshift := fs.String("downshift", "", `model downshift map, "FROM=TO,..." (both loaded, same task; engages at ladder level 2)`)
	steer := fs.String("steer", "gpu", "delegate batches steer to at ladder level 3 (must differ from -delegate)")
	thermalSpec := fs.String("thermal", "", `accelerator die model, "key=value,..." (ambient/max/start/floor/tau/trip; default thermal.Default)`)
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight batches (server mode)")
	watch := fs.Bool("watch", false, "terminal dashboard: end-of-run snapshot in -loadgen mode, periodic refresh in server mode")
	obsOut := fs.String("obs", "", "write per-window time-series rows (JSONL) to this file (-loadgen mode)")
	obsWindow := fs.Duration("obs-window", 0, "streaming recorder window (default 250ms)")
	prewarm := fs.Bool("prewarm", false, "compile all serving plans (and warm server telemetry) before taking traffic; the cold-start tax moved to startup is reported on stderr")
	common := cli.Register(fs, cli.Options{
		Trace: true, Metrics: true, Faults: true, Parallel: true, Progress: true,
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg, err := buildConfig(*platform, *dtype, *delegate, *entry, *modelList,
		*workers, *window, *maxBatch, *queueDepth, *dispatch, *seed, common)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *sloSpec != "" {
		if cfg.SLO, err = obs.ParseObjectives(*sloSpec); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		// An objective for a model that isn't loaded would never match a
		// request and trivially pass — reject the typo up front.
		for _, o := range cfg.SLO {
			if o.Model == "" {
				continue
			}
			loaded := false
			for _, m := range cfg.Models {
				loaded = loaded || m.Name == o.Model
			}
			if !loaded {
				fmt.Fprintf(stderr, "slo: model %q is not loaded\n", o.Model)
				return 1
			}
		}
	}
	cfg.ObsWindow = *obsWindow

	if *qosSpec != "" {
		pol, err := buildQoSPolicy(*qosSpec, *downshift, *steer, *thermalSpec, *qosObserve)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		cfg.QoS = pol
		// Re-validate: the QoS policy constrains the SLO set, the steer
		// delegate and the downshift pairs against the loaded models.
		cfg = cfg.Defaults()
		if err := cfg.Validate(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else if *downshift != "" || *qosObserve || *thermalSpec != "" {
		fmt.Fprintln(stderr, "serve: -downshift, -qos-observe and -thermal need -qos")
		return 1
	}

	if *loadMode {
		return runLoad(cfg, *ramp, *mix, *seed, *watch, *obsOut, *prewarm, common, stdout, stderr)
	}
	return runServer(cfg, *addr, *watch, *prewarm, *drainTimeout, stderr)
}

// buildQoSPolicy assembles the brownout policy from its flags.
func buildQoSPolicy(ladderSpec, downshift, steer, thermalSpec string, observe bool) (*serve.QoSPolicy, error) {
	lad, err := qos.ParseLadder(ladderSpec)
	if err != nil {
		return nil, err
	}
	sd, err := cli.ParseDelegate(steer)
	if err != nil {
		return nil, err
	}
	pol := &serve.QoSPolicy{Ladder: lad, SteerDelegate: sd, Observe: observe}
	if downshift != "" {
		if pol.Downshift, err = serve.ParseDownshift(downshift); err != nil {
			return nil, err
		}
	}
	if thermalSpec != "" {
		if pol.Thermal, err = thermal.Parse(thermalSpec); err != nil {
			return nil, err
		}
	}
	return pol, nil
}

// buildConfig assembles and validates the serving config from flags.
func buildConfig(platform, dtype, delegate, entry, modelList string,
	workers int, window time.Duration, maxBatch, queueDepth int,
	dispatch time.Duration, seed uint64, common *cli.Common) (serve.Config, error) {
	p, err := aitax.PlatformByName(platform)
	if err != nil {
		return serve.Config{}, err
	}
	dt, err := cli.ParseDType(dtype)
	if err != nil {
		return serve.Config{}, err
	}
	d, err := cli.ParseDelegate(delegate)
	if err != nil {
		return serve.Config{}, err
	}
	st, err := app.ParseStage(entry)
	if err != nil {
		return serve.Config{}, err
	}
	plan, err := common.FaultPlan()
	if err != nil {
		return serve.Config{}, err
	}
	var loaded []*models.Model
	if modelList != "" {
		for _, name := range strings.Split(modelList, ",") {
			m, err := models.ByName(strings.TrimSpace(name))
			if err != nil {
				return serve.Config{}, err
			}
			loaded = append(loaded, m)
		}
	}
	cfg := serve.Config{
		Platform: p, DType: dt, Delegate: d, Models: loaded, Entry: st,
		Workers: workers, BatchWindow: window, MaxBatch: maxBatch,
		QueueDepth: queueDepth, DispatchCost: dispatch,
		Seed: seed, Faults: plan,
	}
	cfg = cfg.Defaults()
	return cfg, cfg.Validate()
}

// runLoad runs the virtual-time load simulation and prints its report.
func runLoad(cfg serve.Config, ramp, mixSpec string, seed uint64,
	watch bool, obsOut string, prewarm bool, common *cli.Common, stdout, stderr io.Writer) int {
	phases, err := loadgen.ParseRamp(ramp)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var mix []loadgen.Share
	if mixSpec == "" {
		for _, m := range cfg.Models {
			mix = append(mix, loadgen.Share{Model: m.Name, Weight: 1})
		}
	} else {
		if mix, err = loadgen.ParseMix(mixSpec); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	spec := loadgen.Spec{Seed: seed, Phases: phases, Mix: mix}
	arrivals, err := spec.Generate()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	if prewarm {
		// Warm the plan cache before the cost-table pass so its measured
		// walls reflect steady-state serving, not first-compile outliers.
		// The report goes to stderr: the stdout load report is a pure
		// function of virtual time and stays byte-identical either way.
		rep, err := serve.PrewarmConfig(context.Background(), cfg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "prewarm: %s\n", rep)
	}

	var onProgress func(lab.JobResult)
	if common.Progress {
		onProgress = func(r lab.JobResult) {
			status := "done"
			if r.Err != nil {
				status = "FAIL"
			}
			fmt.Fprintf(stderr, "%s cost %-28s wall %8.2fms\n",
				status, r.ID, float64(r.Wall.Microseconds())/1000)
		}
	}
	table, err := serve.BuildCostTable(context.Background(), cfg, common.Parallel, onProgress)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	res, err := serve.Simulate(cfg, table, arrivals, common.Trace != "")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	names := make([]string, len(cfg.Models))
	for i, m := range cfg.Models {
		names[i] = m.Name
	}
	fmt.Fprintf(stdout, "platform: %s (%s) | delegate %s | dtype %s | seed %d\n",
		cfg.Platform.Name, cfg.Platform.Chipset, cfg.Delegate, cfg.DType, seed)
	fmt.Fprintf(stdout, "models: %s\n", strings.Join(names, ", "))
	fmt.Fprint(stdout, res.Report(cfg, ramp))

	// The streaming observability view is built once and shared by the
	// SLO report, the -watch snapshot, the JSONL export and the Chrome
	// counter tracks — all derived from the same deterministic replay.
	var so *serve.SimObs
	if len(cfg.SLO) > 0 || watch || obsOut != "" || common.Trace != "" {
		so = serve.BuildSimObs(cfg, res, cfg.ObsWindow, cfg.SLO)
	}
	if so != nil && so.Monitor != nil {
		so.Monitor.WriteReport(stdout)
		so.Monitor.Export(res.Metrics)
	}
	if watch {
		fmt.Fprintf(stdout, "\n%s", so.Snapshot())
	}
	if obsOut != "" {
		err := cli.WriteFile(obsOut, func(w io.Writer) error {
			for _, row := range so.Rows {
				if err := obs.WriteRowJSONL(w, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "time-series rows written to %s\n", obsOut)
	}

	if common.Metrics != "" {
		if err := cli.WriteFile(common.Metrics, res.Metrics.WritePrometheus); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "metrics written to %s\n", common.Metrics)
	}
	if common.Trace != "" {
		chrome := trace.NewChromeRecorder()
		chrome.AddTelemetry(res.Spans, res.Flows)
		for _, s := range res.Depth {
			chrome.AddCounter("queue depth "+s.Model, s.At, float64(s.Depth))
		}
		// Per-window tax anatomy and latency percentiles as counter
		// tracks, so Perfetto shows the tax evolving over the run.
		for _, row := range so.Rows {
			at := sim.Time(row.EndMS * 1e6)
			for _, st := range obs.Stages {
				if v, ok := row.Counters[obs.StageSeries(st)]; ok {
					chrome.AddCounter("tax "+st+" ms/window", at, v)
				}
			}
			if h, ok := row.Hists[obs.LatencySeries(obs.AllModels)]; ok {
				chrome.AddCounter("latency p99 ms (all)", at, h.P99)
			}
			if v, ok := row.Counters[obs.RejectedSeries(obs.AllModels)]; ok {
				chrome.AddCounter("rejected/window (all)", at, v)
			}
		}
		if so.Monitor != nil {
			for _, a := range so.Monitor.Alerts() {
				chrome.AddInstant("slo "+a.Severity+": "+a.Objective, "slo", sim.Time(a.At), map[string]any{
					"burn_short": a.Short, "burn_long": a.Long,
				})
			}
		}
		// The brownout ladder as a counter track plus one instant marker
		// per transition, so Perfetto shows degradation as part of the
		// run's AI-tax anatomy.
		if d := res.Degradation; d != nil {
			chrome.AddCounter("qos level", 0, 0)
			for _, tr := range d.Transitions {
				chrome.AddCounter("qos level", sim.Time(tr.At), float64(tr.To))
				chrome.AddInstant(fmt.Sprintf("qos L%d->L%d (%s)", tr.From, tr.To, tr.Driver),
					"qos", sim.Time(tr.At), map[string]any{
						"pressure": tr.Pressure, "temp_c": tr.TempC,
					})
			}
		}
		if err := cli.WriteFile(common.Trace, chrome.WriteJSON); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "chrome trace written to %s\n", common.Trace)
	}
	return 0
}

// runServer starts the wall-clock HTTP frontend and drains it
// gracefully on SIGINT/SIGTERM: admission flips to 503 + Retry-After,
// open micro-batch windows flush so queued requests still get served,
// and in-flight batches have drainTimeout to complete. With watch set
// it re-renders the live dashboard to stderr every two seconds.
func runServer(cfg serve.Config, addr string, watch, prewarm bool, drainTimeout time.Duration, stderr io.Writer) int {
	s, err := serve.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if prewarm {
		rep, err := s.Prewarm(context.Background())
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "prewarm: %s\n", rep)
	}
	fmt.Fprintf(stderr, "aitax-serve listening on %s (%s, %s, %s)\n",
		addr, cfg.Platform.Name, cfg.Delegate, cfg.DType)
	if watch {
		go func() {
			for range time.Tick(2 * time.Second) {
				fmt.Fprintf(stderr, "\n%s", s.Watch())
			}
		}()
	}
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		s.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	case <-ctx.Done():
		stop()
		fmt.Fprintf(stderr, "signal received; draining (timeout %v)\n", drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		// Drain the serving layer first (flush windows, finish batches),
		// then let the HTTP listener close idle connections.
		if err := s.Shutdown(dctx); err != nil {
			fmt.Fprintf(stderr, "drain incomplete: %v\n", err)
			hs.Close()
			return 1
		}
		if err := hs.Shutdown(dctx); err != nil {
			fmt.Fprintf(stderr, "listener shutdown: %v\n", err)
			return 1
		}
		fmt.Fprintln(stderr, "drained cleanly")
		return 0
	}
}
