package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aitax"
	"aitax/internal/app"
	"aitax/internal/models"
	"aitax/internal/plan"
	"aitax/internal/serve"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

func TestGoldenLoadReportAtAnyParallelism(t *testing.T) {
	var outputs []string
	for _, par := range []string{"1", "2", "8"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-loadgen", "-parallel", par}, &out, &errb); code != 0 {
			t.Fatalf("-parallel %s: exit %d, stderr:\n%s", par, code, errb.String())
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatal("load report differs across -parallel 1/2/8")
	}
	want, err := os.ReadFile("testdata/load_report.golden")
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0] != string(want) {
		t.Fatalf("load report diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
			outputs[0], string(want))
	}
	// The serving tax the report claims must actually be there: the
	// overload phase rejects, and queueing shows up in the tax columns.
	if !strings.Contains(outputs[0], "rejected") || strings.Contains(outputs[0], " 0 of 172 rejected") {
		t.Fatal("golden run shows no admission rejections under the overload phase")
	}
}

// goldenAtAnyParallelism runs args at -parallel 1/2/8 and asserts the
// stdout is identical across widths and matches the committed golden.
func goldenAtAnyParallelism(t *testing.T, args []string, golden string) string {
	t.Helper()
	var outputs []string
	for _, par := range []string{"1", "2", "8"} {
		var out, errb bytes.Buffer
		full := append(append([]string{}, args...), "-parallel", par)
		if code := run(full, &out, &errb); code != 0 {
			t.Fatalf("-parallel %s: exit %d, stderr:\n%s", par, code, errb.String())
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatalf("%s output differs across -parallel 1/2/8", golden)
	}
	want, err := os.ReadFile(filepath.Join("testdata", golden))
	if err != nil {
		t.Fatal(err)
	}
	if outputs[0] != string(want) {
		t.Fatalf("output diverged from %s\n--- got ---\n%s\n--- want ---\n%s",
			golden, outputs[0], string(want))
	}
	return outputs[0]
}

func TestGoldenSLOReportAtAnyParallelism(t *testing.T) {
	out := goldenAtAnyParallelism(t,
		[]string{"-loadgen", "-slo", "MobileNet 1.0 v1=4ms@95,all=6ms@90"},
		"slo_report.golden")
	for _, want := range []string{"slo (windows of 250ms", "burn", "alerts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SLO report missing %q:\n%s", want, out)
		}
	}
}

func TestGoldenWatchSnapshotAtAnyParallelism(t *testing.T) {
	out := goldenAtAnyParallelism(t,
		[]string{"-loadgen", "-slo", "MobileNet 1.0 v1=4ms@95,all=6ms@90", "-watch"},
		"watch_snapshot.golden")
	for _, want := range []string{"aitax-serve  t=", "tax anatomy ms/req:", "p99 trend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("watch snapshot missing %q:\n%s", want, out)
		}
	}
}

// brownoutArgs is the storm the brownout golden and the Makefile's
// brownout-demo target share: an overload burst that climbs the full
// ladder, then a calm tail it recovers through.
var brownoutArgs = []string{
	"-loadgen",
	"-models", "MobileNet 1.0 v1,EfficientNet-Lite0",
	"-slo", "EfficientNet-Lite0=350ms@95",
	"-qos", "tick=5ms,hold=6,short=2,long=4,enter=0.1/0.2/0.3,exit=0.04/0.08/0.15",
	"-downshift", "EfficientNet-Lite0=MobileNet 1.0 v1",
	"-mix", "EfficientNet-Lite0=2,EfficientNet-Lite0=2:best-effort,EfficientNet-Lite0=1:interactive",
	"-ramp", "300x300ms,4x3s",
	"-seed", "11",
	"-queue-depth", "64",
}

func TestGoldenBrownoutReportAtAnyParallelism(t *testing.T) {
	out := goldenAtAnyParallelism(t, brownoutArgs, "brownout_report.golden")
	for _, want := range []string{
		"degradation anatomy (brownout controller active",
		"L0->L1", "L2->L3", "L1->L0",
		"per-class latency",
		"best-effort",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("brownout report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "shed 0 best-effort") {
		t.Fatal("golden storm shed no best-effort traffic")
	}
}

func TestBrownoutTraceHasQoSMarkers(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	args := append(append([]string{}, brownoutArgs...), "-trace", chrome)
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	tr, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr, &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	var levelCounters, qosInstants int
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" && e.Name == "qos level" {
			levelCounters++
		}
		if e.Ph == "i" && strings.HasPrefix(e.Name, "qos L") {
			qosInstants++
		}
	}
	if levelCounters < 2 {
		t.Fatalf("qos level counter track has %d points, want the ladder timeline", levelCounters)
	}
	if qosInstants == 0 {
		t.Fatal("no qos transition instants in the trace")
	}
}

func TestObsExports(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "rows.jsonl")
	chrome := filepath.Join(dir, "trace.json")
	args := []string{"-loadgen", "-ramp", "40x250ms", "-seed", "9",
		"-slo", "all=5ms@95", "-obs", jsonl, "-trace", chrome}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}

	rows, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	var sawLatency bool
	for _, line := range strings.Split(strings.TrimSpace(string(rows)), "\n") {
		var row struct {
			Window  int                        `json:"window"`
			EndMS   float64                    `json:"end_ms"`
			Hists   map[string]json.RawMessage `json:"hists"`
			Counter map[string]float64         `json:"counters"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("bad JSONL row %q: %v", line, err)
		}
		if _, ok := row.Hists[`latency_ms{model="all"}`]; ok {
			sawLatency = true
		}
	}
	if !sawLatency {
		t.Fatal("no aggregate latency histogram in any JSONL row")
	}

	tr, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr, &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	var taxCounters, sloInstants int
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" && strings.HasPrefix(e.Name, "tax ") {
			taxCounters++
		}
		if e.Ph == "i" && strings.HasPrefix(e.Name, "slo ") {
			sloInstants++
		}
	}
	if taxCounters == 0 {
		t.Fatal("no per-window tax counter tracks in the trace")
	}
	if sloInstants == 0 {
		t.Fatal("no SLO alert instants in the trace (the overloaded run must page)")
	}
}

func TestExportsDoNotPerturbReport(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	prom := filepath.Join(dir, "metrics.prom")
	base := []string{"-loadgen", "-ramp", "40x250ms", "-seed", "9"}

	var plain bytes.Buffer
	if code := run(base, &plain, &bytes.Buffer{}); code != 0 {
		t.Fatal("plain run failed")
	}
	var traced bytes.Buffer
	args := append(append([]string{}, base...), "-trace", chrome, "-metrics", prom)
	if code := run(args, &traced, &bytes.Buffer{}); code != 0 {
		t.Fatal("traced run failed")
	}
	if plain.String() != traced.String() {
		t.Fatalf("-trace/-metrics perturbed the report\n--- plain ---\n%s\n--- traced ---\n%s",
			plain.String(), traced.String())
	}

	got, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var depthCounters int
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" && strings.HasPrefix(e.Name, "queue depth ") {
			depthCounters++
		}
	}
	if depthCounters == 0 {
		t.Fatal("no queue-depth counter events in the trace")
	}

	promText, err := os.ReadFile(prom)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aitax_serve_requests_total", "aitax_serve_latency_ms"} {
		if !strings.Contains(string(promText), want) {
			t.Fatalf("metrics file missing %s", want)
		}
	}
}

func TestBadFlagsFailCleanly(t *testing.T) {
	cases := [][]string{
		{"-loadgen", "-ramp", "fast"},
		{"-loadgen", "-mix", "No Such Model=x"},
		{"-loadgen", "-mix", "No Such Model"},
		{"-models", "No Such Model"},
		{"-entry", "ui"},
		{"-platform", "No Such Phone"},
		{"-loadgen", "-dtype", "int8"}, // Deeplab has no quantized variant
		{"-loadgen", "-slo", "all=6ms@x"},
		{"-loadgen", "-slo", "No Such Model=4ms@95"},
		// QoS flag validation: bad ladder spec, qos without an SLO, steer
		// colliding with the serving delegate, downshift to an unloaded
		// model, satellite flags without -qos, and a bad thermal spec.
		{"-loadgen", "-slo", "all=6ms@90", "-qos", "tick=-5ms"},
		{"-loadgen", "-slo", "all=6ms@90", "-qos", "enter=0.5/0.4/0.9"},
		{"-loadgen", "-qos", "on"},
		{"-loadgen", "-slo", "all=6ms@90", "-qos", "on", "-steer", "nnapi"},
		{"-loadgen", "-slo", "all=6ms@90", "-qos", "on", "-downshift", "MobileNet 1.0 v1=AlexNet"},
		{"-loadgen", "-slo", "all=6ms@90", "-downshift", "A=B"},
		{"-loadgen", "-qos-observe"},
		{"-loadgen", "-slo", "all=6ms@90", "-qos", "on", "-thermal", "max=10"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("run(%v) succeeded, want failure", args)
		}
		if errb.Len() == 0 {
			t.Errorf("run(%v) failed silently", args)
		}
	}
}

// firstRequest boots a server for cfg (optionally prewarmed), fires one
// classification request at it, and returns the request's wall-clock
// latency plus the plan-compile time and plan-cache misses it incurred.
func firstRequest(t *testing.T, cfg serve.Config, prewarm bool) (lat, compile time.Duration, misses int64) {
	t.Helper()
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if prewarm {
		rep, err := s.Prewarm(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Entries == 0 || rep.Compile <= 0 {
			t.Fatalf("prewarm report %+v claims no tax was moved to startup", rep)
		}
	}
	compile0 := plan.Shared.CompileTime()
	_, misses0, _ := plan.Shared.Stats()
	req := httptest.NewRequest("POST", "/v1/classify", strings.NewReader(`{}`))
	rec := httptest.NewRecorder()
	start := time.Now()
	s.Handler().ServeHTTP(rec, req)
	lat = time.Since(start)
	if rec.Code != 200 {
		t.Fatalf("first request failed: %d %s", rec.Code, rec.Body.String())
	}
	_, misses1, _ := plan.Shared.Stats()
	return lat, plan.Shared.CompileTime() - compile0, misses1 - misses0
}

// TestPrewarmEliminatesFirstRequestPlanTax compares the first request's
// latency anatomy before and after -prewarm: cold, the first request
// pays plan compilation (nonzero compile time, nonzero cache misses);
// prewarmed, that component is exactly zero — the tax moved to startup
// and was priced in the prewarm report. The two sides run on platforms
// no other test in this binary touches, so the shared cache is provably
// cold where the test needs it to be.
func TestPrewarmEliminatesFirstRequestPlanTax(t *testing.T) {
	mkCfg := func(platform string) serve.Config {
		p, err := aitax.PlatformByName(platform)
		if err != nil {
			t.Fatal(err)
		}
		m, err := models.ByName("MobileNet 1.0 v1")
		if err != nil {
			t.Fatal(err)
		}
		cfg := serve.Config{
			Platform: p, DType: tensor.Float32, Delegate: tflite.DelegateGPU,
			Models: []*models.Model{m}, Entry: app.StagePre,
			Workers: 1, MaxBatch: 1, QueueDepth: 4, Seed: 7,
		}
		cfg = cfg.Defaults()
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		return cfg
	}

	coldLat, coldCompile, coldMisses := firstRequest(t, mkCfg("Snapdragon 855 HDK"), false)
	if coldCompile <= 0 || coldMisses == 0 {
		t.Fatalf("cold first request paid %v compile over %d misses; expected nonzero plan tax", coldCompile, coldMisses)
	}
	warmLat, warmCompile, warmMisses := firstRequest(t, mkCfg("Snapdragon 865 HDK"), true)
	if warmCompile != 0 || warmMisses != 0 {
		t.Fatalf("prewarmed first request still paid %v compile over %d misses, want zero", warmCompile, warmMisses)
	}
	t.Logf("first-request latency: cold %v (plan compile %v, %d misses) -> prewarmed %v (compile 0)",
		coldLat, coldCompile, coldMisses, warmLat)
}

// TestPrewarmFlagKeepsReportByteIdentical pins that -prewarm only moves
// host-side work: the loadgen stdout report is byte-identical with and
// without it, and the prewarm accounting lands on stderr.
func TestPrewarmFlagKeepsReportByteIdentical(t *testing.T) {
	base := []string{"-loadgen", "-ramp", "40x250ms", "-seed", "9"}
	var plain, plainErr bytes.Buffer
	if code := run(base, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run failed:\n%s", plainErr.String())
	}
	var warmed, warmedErr bytes.Buffer
	if code := run(append(append([]string{}, base...), "-prewarm"), &warmed, &warmedErr); code != 0 {
		t.Fatalf("prewarmed run failed:\n%s", warmedErr.String())
	}
	if plain.String() != warmed.String() {
		t.Fatalf("-prewarm perturbed the load report\n--- plain ---\n%s\n--- prewarmed ---\n%s",
			plain.String(), warmed.String())
	}
	if !strings.Contains(warmedErr.String(), "prewarm: compiled") {
		t.Fatalf("prewarm accounting missing from stderr:\n%s", warmedErr.String())
	}
}
