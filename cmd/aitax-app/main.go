// Command aitax-app runs the instrumented Android-application pipeline
// for one model and prints the per-stage AI-tax breakdown, optionally
// under multi-tenant background load.
//
// Usage:
//
//	aitax-app -model "MobileNet 1.0 v1" -dtype int8 -delegate nnapi -frames 100
//	aitax-app -model "MobileNet 1.0 v1" -dtype int8 -bg 3 -bgdelegate hexagon
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aitax"
	"aitax/internal/cli"
	"aitax/internal/models"
	"aitax/internal/soc"
	"aitax/internal/tflite"
)

func main() {
	model := flag.String("model", "MobileNet 1.0 v1", "Table-I model name")
	dtype := flag.String("dtype", "int8", "precision: fp32 | int8")
	delegate := flag.String("delegate", "nnapi", "delegate: cpu | gpu | hexagon | nnapi")
	frames := flag.Int("frames", 100, "measured frames")
	platform := flag.String("platform", "Google Pixel 3", "platform (Table II)")
	seed := flag.Uint64("seed", 42, "random seed (0 is a valid seed)")
	bg := flag.Int("bg", 0, "background inference jobs (multi-tenancy)")
	bgDelegate := flag.String("bgdelegate", "hexagon", "background delegate")
	taxonomy := flag.Bool("taxonomy", false, "print the Fig. 1 AI-tax taxonomy and exit")
	prewarm := flag.Bool("prewarm", false, "compile the Table-I plan grid for this platform before measuring; the cold-start tax moved to startup is reported on stderr")
	csvPath := flag.String("csv", "", "write per-frame stage breakdowns to this CSV file")
	common := cli.Register(flag.CommandLine, cli.Options{Trace: true, Metrics: true, Faults: true})
	flag.Parse()

	if *taxonomy {
		fmt.Print(aitax.RenderTaxonomy())
		return
	}

	dt, err := cli.ParseDType(*dtype)
	check(err)
	d, err := cli.ParseDelegate(*delegate)
	check(err)
	bgd, err := cli.ParseDelegate(*bgDelegate)
	check(err)
	p, err := aitax.PlatformByName(*platform)
	check(err)
	plan, err := common.FaultPlan()
	check(err)

	if *prewarm {
		// Stdout (the breakdown) is a pure function of virtual time, so
		// warming the host-side plan cache cannot change it; the report
		// goes to stderr like the other side notes.
		rep := tflite.Prewarm([]*soc.SoC{p}, models.All())
		fmt.Fprintf(os.Stderr, "prewarm: %s\n", rep)
	}

	opts := aitax.AppOptions{
		Model: *model, DType: dt, Delegate: d,
		Frames: *frames, Platform: p, Seed: *seed, SeedSet: true,
		BackgroundJobs: *bg, BackgroundDelegate: bgd,
		Faults: plan,
	}
	// Tracing never perturbs the run: with -trace/-metrics set, the
	// frames (and thus all stdout) are identical to an untraced run —
	// only the side files and stderr notes are added.
	var perFrame []aitax.FrameStats
	if common.Trace != "" || common.Metrics != "" {
		tr, err := aitax.MeasureAppTraced(opts)
		check(err)
		perFrame = tr.Frames
		if common.Trace != "" {
			writeTo(common.Trace, tr.Chrome.WriteJSON)
			fmt.Fprintf(os.Stderr, "chrome trace written to %s\n", common.Trace)
		}
		if common.Metrics != "" {
			writeTo(common.Metrics, tr.Metrics.WritePrometheus)
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", common.Metrics)
		}
	} else {
		var err error
		perFrame, err = aitax.MeasureAppFrames(opts)
		check(err)
	}
	breakdown := aitax.TaxBreakdown(perFrame)

	fmt.Printf("application: model=%q dtype=%s delegate=%s platform=%q background=%d\n",
		*model, dt, d, p.Name, *bg)
	fmt.Print(breakdown.Render())
	fmt.Printf("e2e distribution: %s\n", breakdown.E2E)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		check(err)
		defer f.Close()
		fmt.Fprintln(f, "frame,capture_ms,pre_ms,inference_ms,post_ms,ui_ms,total_ms")
		for i, st := range perFrame {
			fmt.Fprintf(f, "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", i,
				msf(st.Capture), msf(st.Pre), msf(st.Inference),
				msf(st.Post), msf(st.UI), msf(st.Total))
		}
		fmt.Printf("wrote %d frame rows to %s\n", len(perFrame), *csvPath)
	}
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// writeTo creates path and streams write into it, exiting on error.
func writeTo(path string, write func(io.Writer) error) {
	check(cli.WriteFile(path, write))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
