// Command aitax-app runs the instrumented Android-application pipeline
// for one model and prints the per-stage AI-tax breakdown, optionally
// under multi-tenant background load.
//
// Usage:
//
//	aitax-app -model "MobileNet 1.0 v1" -dtype int8 -delegate nnapi -frames 100
//	aitax-app -model "MobileNet 1.0 v1" -dtype int8 -bg 3 -bgdelegate hexagon
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aitax"
)

func main() {
	model := flag.String("model", "MobileNet 1.0 v1", "Table-I model name")
	dtype := flag.String("dtype", "int8", "precision: fp32 | int8")
	delegate := flag.String("delegate", "nnapi", "delegate: cpu | gpu | hexagon | nnapi")
	frames := flag.Int("frames", 100, "measured frames")
	platform := flag.String("platform", "Google Pixel 3", "platform (Table II)")
	seed := flag.Uint64("seed", 42, "random seed (0 is a valid seed)")
	bg := flag.Int("bg", 0, "background inference jobs (multi-tenancy)")
	bgDelegate := flag.String("bgdelegate", "hexagon", "background delegate")
	taxonomy := flag.Bool("taxonomy", false, "print the Fig. 1 AI-tax taxonomy and exit")
	csvPath := flag.String("csv", "", "write per-frame stage breakdowns to this CSV file")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this path")
	metricsPath := flag.String("metrics", "", "write Prometheus-style metrics of the run to this path")
	faultSpec := flag.String("faults", "", `deterministic fault plan, e.g. "rpc=0.1,timeout=0.05,init=1,seed=7" (see docs/FAULTS.md)`)
	flag.Parse()

	if *taxonomy {
		fmt.Print(aitax.RenderTaxonomy())
		return
	}

	dt, err := parseDType(*dtype)
	check(err)
	d, err := parseDelegate(*delegate)
	check(err)
	bgd, err := parseDelegate(*bgDelegate)
	check(err)
	p, err := aitax.PlatformByName(*platform)
	check(err)
	plan, err := aitax.ParseFaultPlan(*faultSpec)
	check(err)

	opts := aitax.AppOptions{
		Model: *model, DType: dt, Delegate: d,
		Frames: *frames, Platform: p, Seed: *seed, SeedSet: true,
		BackgroundJobs: *bg, BackgroundDelegate: bgd,
		Faults: plan,
	}
	// Tracing never perturbs the run: with -trace/-metrics set, the
	// frames (and thus all stdout) are identical to an untraced run —
	// only the side files and stderr notes are added.
	var perFrame []aitax.FrameStats
	if *tracePath != "" || *metricsPath != "" {
		tr, err := aitax.MeasureAppTraced(opts)
		check(err)
		perFrame = tr.Frames
		if *tracePath != "" {
			writeTo(*tracePath, tr.Chrome.WriteJSON)
			fmt.Fprintf(os.Stderr, "chrome trace written to %s\n", *tracePath)
		}
		if *metricsPath != "" {
			writeTo(*metricsPath, tr.Metrics.WritePrometheus)
			fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsPath)
		}
	} else {
		var err error
		perFrame, err = aitax.MeasureAppFrames(opts)
		check(err)
	}
	breakdown := aitax.TaxBreakdown(perFrame)

	fmt.Printf("application: model=%q dtype=%s delegate=%s platform=%q background=%d\n",
		*model, dt, d, p.Name, *bg)
	fmt.Print(breakdown.Render())
	fmt.Printf("e2e distribution: %s\n", breakdown.E2E)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		check(err)
		defer f.Close()
		fmt.Fprintln(f, "frame,capture_ms,pre_ms,inference_ms,post_ms,ui_ms,total_ms")
		for i, st := range perFrame {
			fmt.Fprintf(f, "%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n", i,
				msf(st.Capture), msf(st.Pre), msf(st.Inference),
				msf(st.Post), msf(st.UI), msf(st.Total))
		}
		fmt.Printf("wrote %d frame rows to %s\n", len(perFrame), *csvPath)
	}
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// writeTo creates path and streams write into it, exiting on error.
func writeTo(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	check(err)
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	check(err)
}

func parseDType(s string) (aitax.DType, error) {
	switch s {
	case "fp32", "float32":
		return aitax.Float32, nil
	case "int8", "uint8", "quant":
		return aitax.UInt8, nil
	default:
		return aitax.Float32, fmt.Errorf("unknown dtype %q (fp32|int8)", s)
	}
}

func parseDelegate(s string) (aitax.Delegate, error) {
	switch s {
	case "cpu":
		return aitax.DelegateCPU, nil
	case "gpu":
		return aitax.DelegateGPU, nil
	case "hexagon", "dsp":
		return aitax.DelegateHexagon, nil
	case "nnapi":
		return aitax.DelegateNNAPI, nil
	default:
		return aitax.DelegateCPU, fmt.Errorf("unknown delegate %q (cpu|gpu|hexagon|nnapi)", s)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
