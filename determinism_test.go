// Cross-worker-count bit-exactness: every kernel tiled on internal/par
// must produce byte-identical output no matter how many workers run it
// (the scheduler's static-partition contract). Each kernel runs once at
// 1 worker as the reference, then at 2, 4 and 8 workers — also under
// -race, which exercises the pool's synchronization.
package aitax_test

import (
	"reflect"
	"testing"

	"aitax"
	"aitax/internal/imaging"
	"aitax/internal/par"
	"aitax/internal/postproc"
	"aitax/internal/preproc"
	"aitax/internal/tensor"
)

func TestTiledKernelsBitExactAtEveryWorkerCount(t *testing.T) {
	frame := imaging.SyntheticFrame(480, 360, 5)
	scene := imaging.SyntheticScene(480, 360, 5)

	deeplab, err := aitax.ModelByName("Deeplab v3")
	if err != nil {
		t.Fatal(err)
	}
	segScores := aitax.FabricateOutputs(deeplab, aitax.Float32, 1)[0]
	ssd, err := aitax.ModelByName("SSD MobileNet v2")
	if err != nil {
		t.Fatal(err)
	}
	dets := aitax.FabricateOutputs(ssd, aitax.Float32, 1)
	anchors := postproc.DefaultAnchors(26)[:dets[1].Shape[1]]
	posenet, err := aitax.ModelByName("PoseNet")
	if err != nil {
		t.Fatal(err)
	}
	poseOuts := aitax.FabricateOutputs(posenet, aitax.Float32, 1)

	quant := tensor.QuantParams{Scale: 0.0078125, ZeroPoint: 128}
	spec := preproc.Spec{TargetW: 224, TargetH: 224, Quantized: true,
		DType: tensor.UInt8, Quant: quant}

	// Each kernel returns a comparable snapshot of its output; the
	// harness runs it per worker count and diffs against w=1.
	kernels := []struct {
		name string
		run  func() any
	}{
		{"YUVToARGBInto", func() any {
			dst := imaging.NewARGB(frame.Width, frame.Height)
			imaging.YUVToARGBInto(dst, frame)
			return append([]uint32(nil), dst.Pix...)
		}},
		{"ARGBToYUVInto", func() any {
			dst := imaging.NewYUV(scene.Width, scene.Height)
			imaging.ARGBToYUVInto(dst, scene)
			return [][]byte{append([]byte(nil), dst.Y...), append([]byte(nil), dst.VU...)}
		}},
		{"SyntheticSceneInto", func() any {
			dst := imaging.NewARGB(480, 360)
			imaging.SyntheticSceneInto(dst, 99)
			return append([]uint32(nil), dst.Pix...)
		}},
		{"ResizeBilinearInto", func() any {
			dst := imaging.NewARGB(224, 224)
			preproc.ResizeBilinearInto(dst, scene, 224, 224)
			return append([]uint32(nil), dst.Pix...)
		}},
		{"NormalizeInto", func() any {
			out := preproc.Normalize(scene, 127.5, 127.5)
			return append([]float32(nil), out.F32...)
		}},
		{"QuantizeInputInto", func() any {
			out := preproc.QuantizeInput(scene, tensor.UInt8, quant)
			return append([]uint8(nil), out.U8...)
		}},
		{"ResizeNormalizeInto", func() any {
			out := preproc.ResizeNormalize(scene, 224, 224, 127.5, 127.5)
			return append([]float32(nil), out.F32...)
		}},
		{"ResizeQuantizeInto", func() any {
			out := preproc.ResizeQuantize(scene, 224, 224, tensor.UInt8, quant)
			return append([]uint8(nil), out.U8...)
		}},
		{"SpecRunInto", func() any {
			var sc preproc.RunScratch
			out, _ := spec.RunInto(&sc, scene)
			return append([]uint8(nil), out.U8...)
		}},
		{"FlattenMaskInto", func() any {
			return postproc.FlattenMask(segScores)
		}},
		{"DecodeBoxesInto", func() any {
			return postproc.DecodeBoxes(dets[0], dets[1], anchors, 0.5)
		}},
		{"DecodeKeypointsInto", func() any {
			return postproc.DecodeKeypoints(poseOuts[0], poseOuts[1], 32)
		}},
	}

	defer par.SetWorkers(par.SetWorkers(1))
	for _, k := range kernels {
		par.SetWorkers(1)
		want := k.run()
		for _, w := range []int{2, 4, 8} {
			par.SetWorkers(w)
			if got := k.run(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: output at %d workers differs from sequential reference", k.name, w)
			}
		}
	}
}
