package aitax_test

import (
	"testing"

	"aitax"
)

func TestPipelineFacadeVision(t *testing.T) {
	frame := aitax.SyntheticFrame(64, 48, 1)
	img := aitax.YUVToARGB(frame)
	if img.Width != 64 || img.Height != 48 {
		t.Fatalf("converted dims = %dx%d", img.Width, img.Height)
	}
	scene := aitax.SyntheticScene(64, 48, 1)
	resized := aitax.ResizeBilinear(scene, 32, 32)
	if resized.Width != 32 {
		t.Fatal("resize facade broken")
	}
	cropped := aitax.CenterCrop(scene, 20, 20)
	if cropped.Width != 20 {
		t.Fatal("crop facade broken")
	}
	rotated := aitax.Rotate90(scene, 1)
	if rotated.Width != 48 || rotated.Height != 64 {
		t.Fatal("rotate facade broken")
	}
	tensor := aitax.Normalize(resized, 127.5, 127.5)
	if tensor.Elems() != 32*32*3 {
		t.Fatal("normalize facade broken")
	}
}

func TestPipelineFacadePost(t *testing.T) {
	m, _ := aitax.ModelByName("MobileNet 1.0 v1")
	outs := aitax.FabricateOutputs(m, aitax.UInt8, 5)
	deq := aitax.Dequantize(outs[0])
	top := aitax.TopK(deq, 3)
	if len(top) != 3 {
		t.Fatal("topK facade broken")
	}
	p := aitax.Softmax([]float64{1, 2})
	if len(p) != 2 || p[1] <= p[0] {
		t.Fatal("softmax facade broken")
	}

	ssd, _ := aitax.ModelByName("SSD MobileNet v2")
	souts := aitax.FabricateOutputs(ssd, aitax.Float32, 5)
	anchors := aitax.DefaultAnchors(26)[:1917]
	boxes := aitax.DecodeBoxes(souts[0], souts[1], anchors, 0.5)
	if len(aitax.NMS(boxes, 0.5, 5)) == 0 {
		t.Fatal("detection facade broken")
	}

	pose, _ := aitax.ModelByName("PoseNet")
	pouts := aitax.FabricateOutputs(pose, aitax.Float32, 5)
	if len(aitax.DecodeKeypoints(pouts[0], pouts[1], 16)) != 17 {
		t.Fatal("keypoint facade broken")
	}

	dl, _ := aitax.ModelByName("Deeplab-v3 MobileNet-v2")
	douts := aitax.FabricateOutputs(dl, aitax.Float32, 5)
	if len(aitax.FlattenMask(douts[0])) != 513*513 {
		t.Fatal("mask facade broken")
	}
}

func TestPreSpecFacade(t *testing.T) {
	m, _ := aitax.ModelByName("PoseNet")
	spec := m.PreSpec(aitax.Float32)
	frame := aitax.SyntheticScene(480, 360, 2)
	input, w := spec.Run(frame)
	if input.Elems() != 224*224*3 {
		t.Fatalf("posenet input elems = %d", input.Elems())
	}
	if w.Ops <= 0 {
		t.Fatal("pre work missing")
	}
}
