// Benchmarks: one per paper table/figure (regenerating the artifact and
// reporting its headline metric), plus microbenchmarks of the real
// pre-/post-processing kernels whose cost constitutes the algorithmic
// AI tax. Run with:
//
//	go test -bench=. -benchmem
package aitax_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"aitax"
	"aitax/internal/app"
	"aitax/internal/bench"
	"aitax/internal/imaging"
	"aitax/internal/postproc"
	"aitax/internal/preproc"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

func benchCfg() bench.Config {
	return bench.Config{Platform: soc.Pixel3(), Seed: 42, Runs: 12}
}

// runExperiment executes one experiment per iteration and fails the
// bench if a shape check regressed.
func runExperiment(b *testing.B, id string) *bench.Result {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = e.Run(benchCfg())
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "FAIL") || strings.Contains(n, "setup failed") {
			b.Fatalf("shape check regressed: %s", n)
		}
	}
	return res
}

// cell parses a float table cell like "42.13" or "95.0%".
func cell(s string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x"), 64)
	return v
}

func BenchmarkTableI(b *testing.B)  { runExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B) { runExperiment(b, "table2") }

func BenchmarkFigure3(b *testing.B) {
	res := runExperiment(b, "fig3")
	// Report the app-over-CLI inflation of the first model.
	if len(res.Rows) > 0 {
		b.ReportMetric(cell(res.Rows[0][4]), "app/cli-x")
	}
}

func BenchmarkFigure4a(b *testing.B) { runExperiment(b, "fig4a") }

func BenchmarkFigure4b(b *testing.B) {
	res := runExperiment(b, "fig4b")
	for _, row := range res.Rows {
		if row[0] == "MobileNet 1.0 v1-int8" {
			b.ReportMetric(cell(row[2]), "app-cap+pre/inf")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	res := runExperiment(b, "fig5")
	for _, n := range res.Notes {
		if strings.Contains(n, "degradation") {
			for _, tok := range strings.Fields(n) {
				if strings.HasSuffix(tok, "x") {
					b.ReportMetric(cell(tok), "nnapi-degradation-x")
				}
			}
		}
	}
}

func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

func BenchmarkFigure8(b *testing.B) {
	res := runExperiment(b, "fig8")
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	b.ReportMetric(cell(first[3]), "offload-share-n1-%")
	b.ReportMetric(cell(last[3]), "offload-share-n500-%")
}

func BenchmarkFigure9(b *testing.B) {
	res := runExperiment(b, "fig9")
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	b.ReportMetric(cell(last[3])/cell(first[3]), "inference-growth-x")
}

func BenchmarkFigure10(b *testing.B) {
	res := runExperiment(b, "fig10")
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	capPre := func(r []string) float64 { return cell(r[1]) + cell(r[2]) }
	b.ReportMetric(capPre(last)/capPre(first), "capture+pre-growth-x")
}

func BenchmarkFigure11(b *testing.B) {
	res := runExperiment(b, "fig11")
	// Rows: benchmark then application; column 5 is CV.
	if len(res.Rows) == 2 {
		b.ReportMetric(cell(res.Rows[0][5]), "bench-cv-%")
		b.ReportMetric(cell(res.Rows[1][5]), "app-cv-%")
	}
}

func BenchmarkColdStart(b *testing.B)   { runExperiment(b, "coldstart") }
func BenchmarkProbeEffect(b *testing.B) { runExperiment(b, "probe") }

// --- Real-kernel microbenchmarks (host-measured Go implementations) ---

func BenchmarkYUVToARGB480p(b *testing.B) {
	frame := imaging.SyntheticFrame(480, 360, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.YUVToARGB(frame)
	}
}

func BenchmarkResizeBilinearTo224(b *testing.B) {
	src := imaging.SyntheticScene(480, 360, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.ResizeBilinear(src, 224, 224)
	}
}

func BenchmarkNormalize224(b *testing.B) {
	src := imaging.SyntheticScene(224, 224, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.Normalize(src, 127.5, 127.5)
	}
}

func BenchmarkRotate90(b *testing.B) {
	src := imaging.SyntheticScene(480, 360, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.Rotate90(src, 1)
	}
}

func BenchmarkQuantizeInput224(b *testing.B) {
	src := imaging.SyntheticScene(224, 224, 1)
	q := tensor.QuantParams{Scale: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.QuantizeInput(src, tensor.UInt8, q)
	}
}

func BenchmarkTokenize(b *testing.B) {
	vocab := preproc.BasicVocab()
	text := "the camera quality on this phone is great and the battery works well for photos"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.Tokenize(text, vocab, 128)
	}
}

func BenchmarkTopK1001(b *testing.B) {
	m, _ := aitax.ModelByName("MobileNet 1.0 v1")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postproc.TopK(outs[0], 5)
	}
}

func BenchmarkSSDDecodeNMS(b *testing.B) {
	m, _ := aitax.ModelByName("SSD MobileNet v2")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 1)
	anchors := postproc.DefaultAnchors(26)[:1917]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxes := postproc.DecodeBoxes(outs[0], outs[1], anchors, 0.5)
		postproc.NMS(boxes, 0.5, 10)
	}
}

func BenchmarkMaskFlatten513(b *testing.B) {
	m, _ := aitax.ModelByName("Deeplab-v3 MobileNet-v2")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postproc.FlattenMask(outs[0])
	}
}

func BenchmarkKeypointDecode(b *testing.B) {
	m, _ := aitax.ModelByName("PoseNet")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postproc.DecodeKeypoints(outs[0], outs[1], 16)
	}
}

// BenchmarkAppPipeline is the headline host-cost benchmark the
// BENCH_*.json regression gate keys on: one fully-loaded application
// frame — synthetic sensor content generated per frame, pre-processing,
// NNAPI inference, real post-processing on fabricated outputs, UI —
// with telemetry (span tree + metrics) recording enabled. It measures
// the simulator's own host CPU and allocation cost, not virtual time.
func BenchmarkAppPipeline(b *testing.B) {
	m, err := aitax.ModelByName("MobileNet 1.0 v1")
	if err != nil {
		b.Fatal(err)
	}
	rt := tflite.NewStack(soc.Pixel3(), 1)
	rt.Tracer = telemetry.NewTracer(rt.Eng.Now)
	rt.Metrics = telemetry.NewRegistry()
	a, err := app.New(rt, app.Config{
		Model: m, DType: tensor.UInt8, Delegate: tflite.DelegateNNAPI,
		RealPostprocess: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	a.Camera().Synthesize = true
	a.Init(nil)
	rt.Eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ProcessFrame(nil)
		rt.Eng.Run()
	}
}

func BenchmarkARGBToYUV480p(b *testing.B) {
	scene := imaging.SyntheticScene(480, 360, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.ARGBToYUV(scene)
	}
}

// --- In-place kernel variants (steady state must be 0 allocs/op;
// TestInPlaceKernelsDoNotAllocate pins that, these quantify the time) ---

func BenchmarkYUVToARGB480pInto(b *testing.B) {
	frame := imaging.SyntheticFrame(480, 360, 1)
	dst := imaging.NewARGB(480, 360)
	imaging.YUVToARGBInto(dst, frame) // warm: reach steady state before the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.YUVToARGBInto(dst, frame)
	}
}

func BenchmarkARGBToYUV480pInto(b *testing.B) {
	scene := imaging.SyntheticScene(480, 360, 1)
	dst := imaging.NewYUV(480, 360)
	imaging.ARGBToYUVInto(dst, scene) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imaging.ARGBToYUVInto(dst, scene)
	}
}

func BenchmarkResizeBilinearTo224Into(b *testing.B) {
	src := imaging.SyntheticScene(480, 360, 1)
	dst := imaging.NewARGB(224, 224)
	preproc.ResizeBilinearInto(dst, src, 224, 224) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.ResizeBilinearInto(dst, src, 224, 224)
	}
}

func BenchmarkNormalize224Into(b *testing.B) {
	src := imaging.SyntheticScene(224, 224, 1)
	dst := &tensor.Tensor{}
	preproc.NormalizeInto(dst, src, 127.5, 127.5) // warm: the first call grows the tensor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.NormalizeInto(dst, src, 127.5, 127.5)
	}
}

func BenchmarkTopK1001Into(b *testing.B) {
	m, _ := aitax.ModelByName("MobileNet 1.0 v1")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 1)
	var classes []postproc.Class
	classes = postproc.TopKInto(classes[:0], outs[0], 5) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classes = postproc.TopKInto(classes[:0], outs[0], 5)
	}
}

func BenchmarkSSDDecodeNMSInto(b *testing.B) {
	m, _ := aitax.ModelByName("SSD MobileNet v2")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 1)
	anchors := postproc.DefaultAnchors(26)[:1917]
	var boxes, kept, scratch []postproc.Box
	boxes = postproc.DecodeBoxesInto(boxes[:0], outs[0], outs[1], anchors, 0.5) // warm
	kept = postproc.NMSInto(kept[:0], &scratch, boxes, 0.5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxes = postproc.DecodeBoxesInto(boxes[:0], outs[0], outs[1], anchors, 0.5)
		kept = postproc.NMSInto(kept[:0], &scratch, boxes, 0.5, 10)
	}
}

func BenchmarkQuantizeInput224Into(b *testing.B) {
	src := imaging.SyntheticScene(224, 224, 1)
	q := tensor.QuantParams{Scale: 1}
	dst := &tensor.Tensor{}
	preproc.QuantizeInputInto(dst, src, tensor.UInt8, q) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.QuantizeInputInto(dst, src, tensor.UInt8, q)
	}
}

// --- Fused kernels: one pass instead of resize + convert ---

func BenchmarkResizeNormalize224Into(b *testing.B) {
	src := imaging.SyntheticScene(480, 360, 1)
	dst := &tensor.Tensor{}
	preproc.ResizeNormalizeInto(dst, src, 224, 224, 127.5, 127.5) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.ResizeNormalizeInto(dst, src, 224, 224, 127.5, 127.5)
	}
}

func BenchmarkResizeQuantize224Into(b *testing.B) {
	src := imaging.SyntheticScene(480, 360, 1)
	q := tensor.QuantParams{Scale: 1}
	dst := &tensor.Tensor{}
	preproc.ResizeQuantizeInto(dst, src, 224, 224, tensor.UInt8, q) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preproc.ResizeQuantizeInto(dst, src, 224, 224, tensor.UInt8, q)
	}
}

func BenchmarkMaskFlatten513Into(b *testing.B) {
	m, _ := aitax.ModelByName("Deeplab-v3 MobileNet-v2")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 1)
	var mask []int
	mask = postproc.FlattenMaskInto(mask[:0], outs[0]) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask = postproc.FlattenMaskInto(mask[:0], outs[0])
	}
}

func BenchmarkKeypointDecodeInto(b *testing.B) {
	m, _ := aitax.ModelByName("PoseNet")
	outs := aitax.FabricateOutputs(m, aitax.Float32, 1)
	var kps []postproc.Keypoint
	kps = postproc.DecodeKeypointsInto(kps[:0], outs[0], outs[1], 16) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kps = postproc.DecodeKeypointsInto(kps[:0], outs[0], outs[1], 16)
	}
}

// BenchmarkSimulatedInvoke measures the simulator's host-side throughput
// for one full NNAPI invocation (events processed, not virtual time).
func BenchmarkSimulatedInvoke(b *testing.B) {
	m, _ := aitax.ModelByName("MobileNet 1.0 v1")
	rt := tflite.NewStack(soc.Pixel3(), 1)
	ip, err := rt.NewInterpreter(m, tensor.UInt8, tflite.Options{Delegate: tflite.DelegateNNAPI})
	if err != nil {
		b.Fatal(err)
	}
	ip.Init(nil)
	rt.Eng.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip.Invoke(nil)
		rt.Eng.Run()
	}
}

var _ = time.Millisecond

// --- Extension-experiment benchmarks (beyond the paper's artifacts) ---

func BenchmarkPlatformSweep(b *testing.B) { runExperiment(b, "platforms") }
func BenchmarkPreferences(b *testing.B)   { runExperiment(b, "prefs") }
func BenchmarkThermalDrift(b *testing.B)  { runExperiment(b, "thermal") }
func BenchmarkInitTimes(b *testing.B)     { runExperiment(b, "init") }
func BenchmarkStdlibQuirk(b *testing.B)   { runExperiment(b, "stdlib") }

func BenchmarkFrameworks(b *testing.B) {
	res := runExperiment(b, "frameworks")
	// Report MobileNet's SNPE-DSP vs CPU speedup.
	for _, row := range res.Rows {
		if row[0] == "MobileNet 1.0 v1" {
			b.ReportMetric(cell(row[1])/cell(row[4]), "snpe-speedup-x")
		}
	}
}

func BenchmarkDVFSRamp(b *testing.B) {
	res := runExperiment(b, "dvfs")
	if len(res.Rows) > 0 {
		b.ReportMetric(cell(res.Rows[0][3]), "first-inference-penalty-x")
	}
}

func BenchmarkPostProcessing(b *testing.B)    { runExperiment(b, "post") }
func BenchmarkFusionAblation(b *testing.B)    { runExperiment(b, "fusion") }
func BenchmarkPreOffload(b *testing.B)        { runExperiment(b, "preoffload") }
func BenchmarkDriverFix(b *testing.B)         { runExperiment(b, "driverfix") }
func BenchmarkResolutionSweep(b *testing.B)   { runExperiment(b, "resolution") }
func BenchmarkPartitionAblation(b *testing.B) { runExperiment(b, "ablation-partitions") }
