// Package par is the deterministic row-tile scheduler the pixel kernels
// run on. It splits an index range [0, n) into at most Workers()
// contiguous tiles using static arithmetic partitioning — tile i of w is
// exactly [i*n/w, (i+1)*n/w) — and executes the tiles on a persistent
// worker pool. Because the partition is a pure function of (n, w) and
// every kernel writes only inside its own tile, the output bytes are
// identical at any worker count; parallelism changes wall-clock only.
//
// The dispatch path allocates nothing at steady state: tasks are
// interface values over caller-pooled structs, jobs travel by value
// through a buffered channel, and the per-call WaitGroup is recycled
// through a sync.Pool. Tasks must not call For themselves (no nesting) —
// a kernel tile that blocked on the pool could deadlock it.
//
// The pool is sized from GOMAXPROCS at init. AITAX_KERNEL_WORKERS
// overrides it (AITAX_KERNEL_WORKERS=1 opts out of parallelism
// entirely); SetWorkers changes it at runtime (tests use this to prove
// cross-worker-count bit-exactness).
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Task is one tiled kernel invocation. Tile processes items [lo, hi) of
// the range handed to For; implementations must touch no state outside
// that tile (other than read-only inputs).
type Task interface {
	Tile(lo, hi int)
}

// maxWorkers bounds the fan-out width (and the pool size) so a
// misconfigured environment cannot spawn unbounded goroutines.
const maxWorkers = 64

// minGrain is the smallest tile worth dispatching: ranges shorter than
// minGrain*2 run inline. Purely a latency guard — it cannot affect
// results, only which goroutine computes them.
const minGrain = 16

type job struct {
	t      Task
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	width   atomic.Int32 // configured fan-out (>= 1)
	spawned atomic.Int32 // worker goroutines started so far

	poolMu sync.Mutex
	jobs   chan job // buffered dispatch queue

	wgPool = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

func init() {
	w := runtime.GOMAXPROCS(0)
	if s := os.Getenv("AITAX_KERNEL_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			w = v
		}
	}
	width.Store(int32(clampWidth(w)))
	jobs = make(chan job, 4*maxWorkers)
}

func clampWidth(w int) int {
	if w < 1 {
		return 1
	}
	if w > maxWorkers {
		return maxWorkers
	}
	return w
}

// Workers reports the configured fan-out width.
func Workers() int { return int(width.Load()) }

// SetWorkers sets the fan-out width (clamped to [1, 64]) and returns the
// previous value, so tests can restore it with a deferred call. The
// partition — and therefore every kernel's output — is byte-identical at
// any width; only wall-clock changes.
func SetWorkers(n int) (prev int) {
	n = clampWidth(n)
	prev = int(width.Swap(int32(n)))
	ensureWorkers(n - 1)
	return prev
}

// ensureWorkers grows the persistent pool to at least n goroutines.
func ensureWorkers(n int) {
	if int(spawned.Load()) >= n {
		return
	}
	poolMu.Lock()
	for int(spawned.Load()) < n {
		spawned.Add(1)
		go worker()
	}
	poolMu.Unlock()
}

func worker() {
	for j := range jobs {
		j.t.Tile(j.lo, j.hi)
		j.wg.Done()
	}
}

// For runs t over [0, n), split into at most Workers() contiguous tiles
// of at least minGrain items each. The caller's goroutine always
// executes the first tile; the rest go to the pool. For returns once
// every tile has completed. n <= 0 is a no-op.
func For(n int, t Task) { ForGrain(n, minGrain, t) }

// ForGrain is For with an explicit minimum tile size, for kernels whose
// per-item cost is large enough that even a handful of items (PoseNet's
// 17 keypoint argmax scans, say) are worth spreading across the pool.
// grain < 1 is treated as 1.
func ForGrain(n, grain int, t Task) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := int(width.Load())
	if w > n/grain {
		w = n / grain
	}
	if w <= 1 {
		t.Tile(0, n)
		return
	}
	ensureWorkers(w - 1)
	wg := wgPool.Get().(*sync.WaitGroup)
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		jobs <- job{t: t, lo: i * n / w, hi: (i + 1) * n / w, wg: wg}
	}
	t.Tile(0, n/w)
	wg.Wait()
	wgPool.Put(wg)
}

// TileBounds returns tile i's [lo, hi) range of the w-way static
// partition of [0, n) — exported so tests can assert the exact contract
// kernels rely on.
func TileBounds(n, w, i int) (lo, hi int) { return i * n / w, (i + 1) * n / w }
