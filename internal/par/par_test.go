package par

import (
	"sync/atomic"
	"testing"
)

// countTask marks every index it is handed, atomically, so coverage and
// overlap can be checked after a For run from any number of goroutines.
type countTask struct {
	hits []atomic.Int32
	// tiles counts Tile invocations.
	tiles atomic.Int32
}

func (c *countTask) Tile(lo, hi int) {
	c.tiles.Add(1)
	for i := lo; i < hi; i++ {
		c.hits[i].Add(1)
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, n := range []int{0, 1, 7, 16, 31, 32, 100, 263169} {
		c := &countTask{hits: make([]atomic.Int32, n)}
		For(n, c)
		for i := range c.hits {
			if got := c.hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d processed %d times, want 1", n, i, got)
			}
		}
	}
}

func TestForGrainRunsSmallRangesInline(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	c := &countTask{hits: make([]atomic.Int32, minGrain*2-1)}
	For(len(c.hits), c)
	if got := c.tiles.Load(); got != 1 {
		t.Fatalf("range below 2*minGrain split into %d tiles, want 1 (inline)", got)
	}
	// With an explicit grain of 1, the same range fans out.
	c2 := &countTask{hits: make([]atomic.Int32, 8)}
	ForGrain(len(c2.hits), 1, c2)
	if got := c2.tiles.Load(); got != 8 {
		t.Fatalf("grain-1 fan-out produced %d tiles, want 8", got)
	}
	for i := range c2.hits {
		if c2.hits[i].Load() != 1 {
			t.Fatalf("grain-1 index %d not covered exactly once", i)
		}
	}
}

func TestTileBoundsPartitionIsExact(t *testing.T) {
	for _, n := range []int{1, 2, 17, 224, 513, 263169} {
		for w := 1; w <= 9; w++ {
			prev := 0
			for i := 0; i < w; i++ {
				lo, hi := TileBounds(n, w, i)
				if lo != prev {
					t.Fatalf("n=%d w=%d tile %d starts at %d, want %d", n, w, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d w=%d tile %d is inverted", n, w, i)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d w=%d tiles end at %d, want %d", n, w, prev, n)
			}
		}
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if SetWorkers(3); Workers() != 3 {
		t.Fatalf("Workers = %d after SetWorkers(3)", Workers())
	}
	if SetWorkers(0); Workers() != 1 {
		t.Fatalf("Workers = %d after SetWorkers(0), want clamp to 1", Workers())
	}
	if SetWorkers(1 << 20); Workers() != maxWorkers {
		t.Fatalf("Workers = %d after huge SetWorkers, want clamp to %d", Workers(), maxWorkers)
	}
}

func TestConcurrentForCallsDoNotInterfere(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	const n = 4096
	done := make(chan *countTask)
	for g := 0; g < 8; g++ {
		go func() {
			c := &countTask{hits: make([]atomic.Int32, n)}
			for rep := 0; rep < 10; rep++ {
				for i := range c.hits {
					c.hits[i].Store(0)
				}
				For(n, c)
				for i := range c.hits {
					if c.hits[i].Load() != 1 {
						panic("index not covered exactly once")
					}
				}
			}
			done <- c
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func BenchmarkForDispatch(b *testing.B) {
	defer SetWorkers(SetWorkers(4))
	c := &countTask{hits: make([]atomic.Int32, 1024)}
	For(len(c.hits), c) // warm up: first call spins up the worker pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(len(c.hits), c)
	}
}
