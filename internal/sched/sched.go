// Package sched is a discrete-event model of the Android/Linux CPU
// scheduler as it matters to the paper: a global runqueue feeding
// big.LITTLE cores with round-robin timeslices, context-switch and
// core-migration penalties, and CPU affinity. The Fig. 6 pathology —
// an NNAPI CPU fallback bouncing a single thread across cores with
// frequent migrations — emerges from exactly these mechanics.
package sched

import (
	"fmt"
	"time"

	"aitax/internal/sim"
)

// Core is one CPU core. Speed scales execution time: a burst quoted for a
// reference (big) core takes d/Speed here.
type Core struct {
	ID    int
	Big   bool
	Speed float64

	busy    bool
	current *Thread
	// Reusable end-of-slice callback state: a core runs at most one
	// slice at a time, so one closure per core (built at construction)
	// serves every slice instead of one allocation per slice.
	sliceEnd  func()
	sliceT    *Thread
	sliceExec time.Duration
	sliceLen  time.Duration
	// Accounting.
	busyTime   time.Duration
	lastThread *Thread
}

// BusyTime returns the cumulative time this core spent executing threads.
func (c *Core) BusyTime() time.Duration { return c.busyTime }

// Running returns the thread currently on the core, or nil.
func (c *Core) Running() *Thread { return c.current }

// Listener observes scheduling events (the trace package implements it
// to render Fig. 6-style timelines).
type Listener interface {
	// OnRun fires when a thread occupies a core for a slice.
	OnRun(th *Thread, core *Core, start sim.Time, d time.Duration)
	// OnMigrate fires when a thread resumes on a different core.
	OnMigrate(th *Thread, from, to *Core, at sim.Time)
}

// Thread is a schedulable entity. Work is submitted as bursts; the
// scheduler timeslices bursts across cores.
type Thread struct {
	Name     string
	Affinity func(*Core) bool // nil = any core
	// Sticky threads prefer their previous core (cache affinity), the
	// normal CFS behaviour. Non-sticky threads are placed round-robin
	// across idle cores — the energy-aware bouncing that NNAPI's CPU
	// fallback exhibits in the paper's Fig. 6 profile.
	Sticky bool
	// Priority orders runqueue admission: higher values are dispatched
	// first (Android's foreground/background cgroup distinction). Equal
	// priorities dispatch in arrival order. Running slices are not
	// preempted.
	Priority int

	s         *Scheduler
	remaining time.Duration // of the current burst
	onDone    func()
	// queue[qhead:] are the pending bursts. Popping advances qhead
	// instead of reslicing the front off, so the backing array (and its
	// capacity) is recycled once the queue drains — a thread that
	// executes thousands of bursts reallocates its queue O(1) times, not
	// O(bursts).
	queue    []burst
	qhead    int
	lastCore *Core
	running  bool
	queued   bool

	// Accounting.
	cpuTime    time.Duration
	migrations int
	slices     int
}

type burst struct {
	d      time.Duration
	onDone func()
}

// CPUTime returns the thread's accumulated execution time (reference-core
// scaled time actually spent, i.e. wall time on whatever cores it used).
func (t *Thread) CPUTime() time.Duration { return t.cpuTime }

// Migrations returns how many times the thread changed cores.
func (t *Thread) Migrations() int { return t.migrations }

// Exec submits a CPU burst of duration d (quoted for a big core); onDone
// fires when the burst completes. Bursts queue FIFO per thread.
func (t *Thread) Exec(d time.Duration, onDone func()) {
	if d < 0 {
		panic("sched: negative burst")
	}
	t.queue = append(t.queue, burst{d: d, onDone: onDone})
	t.s.activate(t)
}

// Scheduler owns the cores and the global runqueue.
type Scheduler struct {
	eng   *sim.Engine
	cores []*Core
	ready []*Thread

	// Timeslice is the round-robin quantum.
	Timeslice time.Duration
	// ContextSwitch is charged when a core changes threads.
	ContextSwitch time.Duration
	// MigrationPenalty is charged when a thread resumes on a new core
	// (cold caches).
	MigrationPenalty time.Duration

	listeners []Listener
	rrNext    int // round-robin cursor for non-sticky placement
	dvfs      *DVFS

	// Accounting.
	switches   int
	migrations int
}

// Config sizes a scheduler.
type Config struct {
	BigCores    int
	LittleCores int
	// LittleSpeed is the little cores' relative speed (e.g. 0.45).
	LittleSpeed      float64
	Timeslice        time.Duration
	ContextSwitch    time.Duration
	MigrationPenalty time.Duration
	// DVFS enables the schedutil-style frequency governor. Off by
	// default: the paper's methodology controls for it.
	DVFS bool
}

// DefaultConfig mirrors a Snapdragon 845-class octa-core configuration.
func DefaultConfig() Config {
	return Config{
		BigCores:         4,
		LittleCores:      4,
		LittleSpeed:      0.45,
		Timeslice:        4 * time.Millisecond,
		ContextSwitch:    12 * time.Microsecond,
		MigrationPenalty: 60 * time.Microsecond,
	}
}

// New creates a scheduler on the engine.
func New(eng *sim.Engine, cfg Config) *Scheduler {
	if cfg.BigCores <= 0 {
		panic("sched: need at least one big core")
	}
	if cfg.Timeslice <= 0 {
		panic("sched: timeslice must be positive")
	}
	s := &Scheduler{
		eng:              eng,
		Timeslice:        cfg.Timeslice,
		ContextSwitch:    cfg.ContextSwitch,
		MigrationPenalty: cfg.MigrationPenalty,
	}
	id := 0
	for i := 0; i < cfg.BigCores; i++ {
		s.cores = append(s.cores, &Core{ID: id, Big: true, Speed: 1})
		id++
	}
	for i := 0; i < cfg.LittleCores; i++ {
		s.cores = append(s.cores, &Core{ID: id, Big: false, Speed: cfg.LittleSpeed})
		id++
	}
	for _, c := range s.cores {
		c := c
		c.sliceEnd = func() { s.finishSlice(c) }
	}
	if cfg.DVFS {
		s.dvfs = newDVFS(s)
	}
	return s
}

// Governor returns the DVFS governor, or nil when disabled.
func (s *Scheduler) Governor() *DVFS { return s.dvfs }

// Subscribe registers a scheduling-event listener.
func (s *Scheduler) Subscribe(l Listener) { s.listeners = append(s.listeners, l) }

// Cores returns the core list.
func (s *Scheduler) Cores() []*Core { return s.cores }

// Switches returns the number of context switches performed.
func (s *Scheduler) Switches() int { return s.switches }

// Migrations returns the number of cross-core thread migrations.
func (s *Scheduler) Migrations() int { return s.migrations }

// Spawn creates a (sticky) thread. affinity of nil allows all cores;
// BigOnly and LittleOnly are common masks.
func (s *Scheduler) Spawn(name string, affinity func(*Core) bool) *Thread {
	return &Thread{Name: name, Affinity: affinity, Sticky: true, s: s}
}

// SpawnMigratory creates a non-sticky thread that is placed round-robin
// across idle cores, migrating (and paying the penalty) nearly every
// slice when the system is otherwise idle.
func (s *Scheduler) SpawnMigratory(name string, affinity func(*Core) bool) *Thread {
	return &Thread{Name: name, Affinity: affinity, Sticky: false, s: s}
}

// BigOnly pins a thread to the big cluster.
func BigOnly(c *Core) bool { return c.Big }

// LittleOnly pins a thread to the little cluster.
func LittleOnly(c *Core) bool { return !c.Big }

// activate puts a thread on the runqueue if it has work and isn't
// already queued or running.
func (s *Scheduler) activate(t *Thread) {
	if t.running || t.queued {
		return
	}
	if t.remaining == 0 {
		if t.qhead == len(t.queue) {
			if t.qhead > 0 {
				t.queue = t.queue[:0]
				t.qhead = 0
			}
			return
		}
		b := t.queue[t.qhead]
		t.queue[t.qhead] = burst{} // release the closure
		t.qhead++
		if t.qhead == len(t.queue) {
			t.queue = t.queue[:0]
			t.qhead = 0
		}
		t.remaining = b.d
		t.onDone = b.onDone
		if t.remaining == 0 {
			// Zero-length burst: complete immediately (still async).
			done := t.onDone
			t.onDone = nil
			s.eng.After(0, func() {
				if done != nil {
					done()
				}
				s.activate(t)
			})
			return
		}
	}
	t.queued = true
	s.ready = append(s.ready, t)
	s.dvfs.kick()
	s.dispatch()
}

// dispatch assigns ready threads to idle compatible cores: the
// highest-priority placeable thread first, arrival order within a
// priority class. Core preference: the thread's last core (no
// migration), then idle big cores, then idle little cores.
func (s *Scheduler) dispatch() {
	for {
		best := -1
		var bestCore *Core
		for qi := 0; qi < len(s.ready); qi++ {
			t := s.ready[qi]
			if best >= 0 && t.Priority <= s.ready[best].Priority {
				continue
			}
			if core := s.pickCore(t); core != nil {
				best, bestCore = qi, core
			}
		}
		if best < 0 {
			return
		}
		t := s.ready[best]
		s.ready = append(s.ready[:best], s.ready[best+1:]...)
		t.queued = false
		s.run(t, bestCore)
	}
}

func (s *Scheduler) pickCore(t *Thread) *Core {
	if !t.Sticky {
		return s.pickRoundRobin(t)
	}
	var best *Core
	for _, c := range s.cores {
		if c.busy {
			continue
		}
		if t.Affinity != nil && !t.Affinity(c) {
			continue
		}
		if c == t.lastCore {
			return c // staying put is always best
		}
		if best == nil || (c.Big && !best.Big) {
			best = c
		}
	}
	return best
}

// pickRoundRobin cycles non-sticky threads across idle compatible cores.
func (s *Scheduler) pickRoundRobin(t *Thread) *Core {
	n := len(s.cores)
	for i := 0; i < n; i++ {
		c := s.cores[(s.rrNext+i)%n]
		if c.busy {
			continue
		}
		if t.Affinity != nil && !t.Affinity(c) {
			continue
		}
		s.rrNext = (s.rrNext + i + 1) % n
		return c
	}
	return nil
}

// run executes one timeslice of t on core.
func (s *Scheduler) run(t *Thread, core *Core) {
	var overhead time.Duration
	if core.lastThread != t && core.lastThread != nil {
		overhead += s.ContextSwitch
		s.switches++
	}
	if t.lastCore != nil && t.lastCore != core {
		overhead += s.MigrationPenalty
		s.migrations++
		t.migrations++
		for _, l := range s.listeners {
			l.OnMigrate(t, t.lastCore, core, s.eng.Now())
		}
	}
	slice := s.Timeslice
	if t.remaining < slice {
		slice = t.remaining
	}
	// Execution time on this core, scaled by core speed and the current
	// DVFS frequency level.
	speed := core.Speed
	if s.dvfs != nil {
		speed *= s.dvfs.factor(core)
	}
	execTime := time.Duration(float64(slice)/speed) + overhead

	core.busy = true
	core.current = t
	core.lastThread = t
	t.running = true
	t.lastCore = core
	t.slices++
	start := s.eng.Now()
	for _, l := range s.listeners {
		l.OnRun(t, core, start, execTime)
	}
	core.sliceT, core.sliceExec, core.sliceLen = t, execTime, slice
	s.eng.After(execTime, core.sliceEnd)
}

// finishSlice completes the slice running on core: accounting, burst
// completion, and rescheduling. It is the body of the core's reusable
// sliceEnd callback.
func (s *Scheduler) finishSlice(core *Core) {
	t, execTime, slice := core.sliceT, core.sliceExec, core.sliceLen
	core.sliceT = nil
	core.busy = false
	core.current = nil
	core.busyTime += execTime
	t.running = false
	t.cpuTime += execTime
	t.remaining -= slice
	if t.remaining <= 0 {
		t.remaining = 0
		done := t.onDone
		t.onDone = nil
		if done != nil {
			done()
		}
	}
	s.activate(t)
	s.dispatch()
}

// Utilization returns a core's busy fraction of total simulated time.
func (s *Scheduler) Utilization(core *Core) float64 {
	total := float64(s.eng.Now())
	if total == 0 {
		return 0
	}
	return float64(core.busyTime) / total
}

// String summarizes the scheduler state.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sched{cores=%d ready=%d switches=%d migrations=%d}",
		len(s.cores), len(s.ready), s.switches, s.migrations)
}
