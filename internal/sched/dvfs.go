package sched

import (
	"time"
)

// DVFS is a per-cluster schedutil-style frequency governor: cluster
// frequency steps up under sustained utilization and decays when idle.
// Real benchmarks often pin frequencies; real applications ramp — one
// more way a benchmark's steady-state number differs from the first
// frames an end user experiences.
//
// The governor is opt-in (Config.DVFS); all paper-artifact experiments
// run with it off, matching the paper's §III-D controlled methodology.
type DVFS struct {
	// Levels is the ascending frequency-factor ladder.
	Levels []float64
	// Window is the utilization sampling period.
	Window time.Duration
	// UpThreshold and DownThreshold bound the target utilization band.
	UpThreshold, DownThreshold float64

	s        *Scheduler
	bigIdx   int
	litIdx   int
	lastBusy []time.Duration // per-core busy snapshot
	running  bool
}

func newDVFS(s *Scheduler) *DVFS {
	return &DVFS{
		Levels:        []float64{0.55, 0.75, 1.0},
		Window:        10 * time.Millisecond,
		UpThreshold:   0.60,
		DownThreshold: 0.25,
		s:             s,
	}
}

// factor returns the current frequency factor for a core.
func (d *DVFS) factor(c *Core) float64 {
	if d == nil {
		return 1
	}
	if c.Big {
		return d.Levels[d.bigIdx]
	}
	return d.Levels[d.litIdx]
}

// BigLevel returns the big cluster's current frequency factor.
func (d *DVFS) BigLevel() float64 { return d.Levels[d.bigIdx] }

// kick starts the governor loop if work exists and it is not running.
func (d *DVFS) kick() {
	if d == nil || d.running {
		return
	}
	d.running = true
	d.snapshot()
	d.tick()
}

func (d *DVFS) snapshot() {
	d.lastBusy = make([]time.Duration, len(d.s.cores))
	for i, c := range d.s.cores {
		d.lastBusy[i] = c.busyTime
	}
}

// tick evaluates utilization over the last window and adjusts levels.
// The loop stops when the system goes idle (so simulations drain) and
// frequencies decay back to the lowest level for the next burst — the
// cold-ramp a user's first frames pay.
func (d *DVFS) tick() {
	d.s.eng.After(d.Window, func() {
		// schedutil acts on the busiest CPU of each policy (cluster):
		// one saturated core is enough to ramp the whole cluster.
		var bigPeak, litPeak float64
		for i, c := range d.s.cores {
			util := float64(c.busyTime-d.lastBusy[i]) / float64(d.Window)
			if c.Big {
				if util > bigPeak {
					bigPeak = util
				}
			} else if util > litPeak {
				litPeak = util
			}
		}
		adjust := func(idx *int, util float64) {
			switch {
			case util > d.UpThreshold && *idx < len(d.Levels)-1:
				*idx++
			case util < d.DownThreshold && *idx > 0:
				*idx--
			}
		}
		adjust(&d.bigIdx, bigPeak)
		adjust(&d.litIdx, litPeak)
		d.snapshot()

		busy := false
		for _, c := range d.s.cores {
			if c.busy {
				busy = true
				break
			}
		}
		if busy || len(d.s.ready) > 0 {
			d.tick()
			return
		}
		// Idle: stop the loop and decay to the lowest level.
		d.running = false
		d.bigIdx, d.litIdx = 0, 0
	})
}
