package sched

import (
	"testing"
	"testing/quick"
	"time"

	"aitax/internal/sim"
)

func newSched() (*sim.Engine, *Scheduler) {
	eng := sim.NewEngine()
	return eng, New(eng, DefaultConfig())
}

func TestSingleBurstRuns(t *testing.T) {
	eng, s := newSched()
	th := s.Spawn("t", nil)
	done := false
	th.Exec(10*time.Millisecond, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("burst did not complete")
	}
	if th.CPUTime() < 10*time.Millisecond {
		t.Fatalf("cpu time = %v", th.CPUTime())
	}
}

func TestParallelThreadsUseMultipleCores(t *testing.T) {
	eng, s := newSched()
	// 4 threads of 40ms on 4 big cores must finish in ~40ms, not 160ms.
	for i := 0; i < 4; i++ {
		s.Spawn("t", BigOnly).Exec(40*time.Millisecond, nil)
	}
	end := eng.Run()
	if end.Duration() > 45*time.Millisecond {
		t.Fatalf("4 threads on 4 cores took %v, want ~40ms", end.Duration())
	}
}

func TestOversubscriptionSerializes(t *testing.T) {
	eng, s := newSched()
	// 8 threads of 40ms pinned to 4 big cores: ~80ms.
	for i := 0; i < 8; i++ {
		s.Spawn("t", BigOnly).Exec(40*time.Millisecond, nil)
	}
	end := eng.Run()
	if end.Duration() < 79*time.Millisecond {
		t.Fatalf("8 threads on 4 cores took %v, want >=80ms", end.Duration())
	}
}

func TestLittleCoresAreSlower(t *testing.T) {
	eng, s := newSched()
	th := s.Spawn("t", LittleOnly)
	th.Exec(10*time.Millisecond, nil)
	end := eng.Run()
	// 10ms of big-core work at 0.45 speed ≈ 22ms.
	if end.Duration() < 20*time.Millisecond {
		t.Fatalf("little-core run took %v, want >20ms", end.Duration())
	}
}

func TestTimeslicingInterleaves(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.BigCores, cfg.LittleCores = 1, 0
	s := New(eng, cfg)
	var order []string
	a := s.Spawn("a", nil)
	b := s.Spawn("b", nil)
	a.Exec(8*time.Millisecond, func() { order = append(order, "a") })
	b.Exec(3*time.Millisecond, func() { order = append(order, "b") })
	eng.Run()
	// With a 4ms slice, b (3ms) finishes during its first slice, before
	// a's 8ms total completes.
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("completion order = %v, want [b a]", order)
	}
	if s.Switches() == 0 {
		t.Fatal("interleaving must context switch")
	}
}

func TestMigrationCountedAndPenalized(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.BigCores, cfg.LittleCores = 2, 0
	s := New(eng, cfg)
	// Two long threads plus a third that must bounce between whichever
	// core frees first.
	s.Spawn("x", nil).Exec(20*time.Millisecond, nil)
	s.Spawn("y", nil).Exec(20*time.Millisecond, nil)
	floater := s.Spawn("f", nil)
	floater.Exec(20*time.Millisecond, nil)
	eng.Run()
	if s.Migrations() == 0 {
		t.Fatal("floater must migrate between cores")
	}
	if floater.Migrations() == 0 {
		t.Fatal("per-thread migration count must grow")
	}
}

func TestAffinityRespected(t *testing.T) {
	eng, s := newSched()
	th := s.Spawn("big", BigOnly)
	th.Exec(5*time.Millisecond, nil)
	eng.Run()
	if th.lastCore == nil || !th.lastCore.Big {
		t.Fatal("BigOnly thread ran on a little core")
	}
}

func TestSequentialBurstsFIFO(t *testing.T) {
	eng, s := newSched()
	th := s.Spawn("t", nil)
	var order []int
	th.Exec(time.Millisecond, func() { order = append(order, 1) })
	th.Exec(time.Millisecond, func() { order = append(order, 2) })
	th.Exec(time.Millisecond, func() { order = append(order, 3) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("burst order = %v", order)
	}
}

func TestZeroLengthBurst(t *testing.T) {
	eng, s := newSched()
	th := s.Spawn("t", nil)
	fired := false
	th.Exec(0, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("zero burst callback missing")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.BigCores, cfg.LittleCores = 1, 0
	s := New(eng, cfg)
	s.Spawn("t", nil).Exec(10*time.Millisecond, nil)
	eng.Run()
	if u := s.Utilization(s.Cores()[0]); u < 0.99 {
		t.Fatalf("single busy core utilization = %v, want ~1", u)
	}
}

func TestListener(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.BigCores, cfg.LittleCores = 2, 0
	s := New(eng, cfg)
	l := &countListener{}
	s.Subscribe(l)
	s.Spawn("a", nil).Exec(10*time.Millisecond, nil)
	s.Spawn("b", nil).Exec(10*time.Millisecond, nil)
	s.Spawn("c", nil).Exec(10*time.Millisecond, nil)
	eng.Run()
	if l.runs == 0 {
		t.Fatal("no OnRun events")
	}
	if l.migrations != s.Migrations() {
		t.Fatalf("listener migrations %d != scheduler %d", l.migrations, s.Migrations())
	}
}

type countListener struct {
	runs, migrations int
}

func (c *countListener) OnRun(th *Thread, core *Core, start sim.Time, d time.Duration) { c.runs++ }
func (c *countListener) OnMigrate(th *Thread, from, to *Core, at sim.Time)             { c.migrations++ }

func TestBigCorePreferredWhenFree(t *testing.T) {
	eng, s := newSched()
	th := s.Spawn("t", nil)
	th.Exec(time.Millisecond, nil)
	eng.Run()
	if !th.lastCore.Big {
		t.Fatal("unpinned thread should start on a big core")
	}
}

func TestManyThreadsAllComplete(t *testing.T) {
	eng, s := newSched()
	done := 0
	for i := 0; i < 50; i++ {
		s.Spawn("t", nil).Exec(time.Duration(1+i%7)*time.Millisecond, func() { done++ })
	}
	eng.Run()
	if done != 50 {
		t.Fatalf("completed = %d, want 50", done)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, int, int) {
		eng, s := newSched()
		for i := 0; i < 20; i++ {
			s.Spawn("t", nil).Exec(time.Duration(1+i%5)*time.Millisecond, nil)
		}
		end := eng.Run()
		return end.Duration(), s.Switches(), s.Migrations()
	}
	d1, sw1, m1 := run()
	d2, sw2, m2 := run()
	if d1 != d2 || sw1 != sw2 || m1 != m2 {
		t.Fatal("scheduler is nondeterministic")
	}
}

func TestWorkConservationProperty(t *testing.T) {
	// Property: total core busy time equals the sum of thread CPU time,
	// for any mix of bursts.
	f := func(bursts []uint16) bool {
		eng, s := newSched()
		var threads []*Thread
		for i, b := range bursts {
			th := s.Spawn("t", nil)
			if i%3 == 0 {
				th = s.SpawnMigratory("m", nil)
			}
			th.Exec(time.Duration(b)*time.Microsecond, nil)
			threads = append(threads, th)
		}
		eng.Run()
		var coreBusy, threadCPU time.Duration
		for _, c := range s.Cores() {
			coreBusy += c.BusyTime()
		}
		for _, th := range threads {
			threadCPU += th.CPUTime()
		}
		return coreBusy == threadCPU
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityDispatchOrder(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.BigCores, cfg.LittleCores = 1, 0
	s := New(eng, cfg)
	// Occupy the core, then queue a low- and a high-priority thread.
	s.Spawn("hog", nil).Exec(2*time.Millisecond, nil)
	var order []string
	lo := s.Spawn("lo", nil)
	lo.Priority = -1
	lo.Exec(time.Millisecond, func() { order = append(order, "lo") })
	hi := s.Spawn("hi", nil)
	hi.Priority = 5
	hi.Exec(time.Millisecond, func() { order = append(order, "hi") })
	eng.Run()
	if len(order) != 2 || order[0] != "hi" {
		t.Fatalf("dispatch order = %v, want hi first", order)
	}
}

func TestEqualPriorityKeepsArrivalOrder(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.BigCores, cfg.LittleCores = 1, 0
	s := New(eng, cfg)
	s.Spawn("hog", nil).Exec(time.Millisecond, nil)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, nil).Exec(100*time.Microsecond, func() { order = append(order, name) })
	}
	eng.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("arrival order broken: %v", order)
	}
}

func TestDVFSRampsUpUnderLoad(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.DVFS = true
	s := New(eng, cfg)
	if s.Governor() == nil {
		t.Fatal("governor missing")
	}
	if s.Governor().BigLevel() != 0.55 {
		t.Fatalf("initial level = %v, want lowest", s.Governor().BigLevel())
	}
	// Sustained load on the big cluster ramps the frequency.
	for i := 0; i < 4; i++ {
		s.Spawn("w", BigOnly).Exec(80*time.Millisecond, nil)
	}
	eng.RunUntil(sim.Time(0).Add(60 * time.Millisecond))
	if s.Governor().BigLevel() != 1.0 {
		t.Fatalf("level after sustained load = %v, want 1.0", s.Governor().BigLevel())
	}
	eng.Run()
}

func TestDVFSFirstBurstSlowerThanSteady(t *testing.T) {
	// The cold-ramp effect: the same burst takes longer from idle than
	// once the governor has ramped.
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.DVFS = true
	s := New(eng, cfg)
	th := s.Spawn("w", BigOnly)
	var first, later time.Duration
	start := eng.Now()
	th.Exec(20*time.Millisecond, func() {
		first = eng.Now().Sub(start)
		// Keep load up, then measure again at speed.
		for i := 0; i < 4; i++ {
			th.Exec(20*time.Millisecond, nil)
		}
		th.Exec(0, func() {
			s2 := eng.Now()
			th.Exec(20*time.Millisecond, func() { later = eng.Now().Sub(s2) })
		})
	})
	eng.Run()
	if later >= first {
		t.Fatalf("ramped burst (%v) must beat cold burst (%v)", later, first)
	}
}

func TestDVFSOffByDefault(t *testing.T) {
	eng := sim.NewEngine()
	s := New(eng, DefaultConfig())
	if s.Governor() != nil {
		t.Fatal("DVFS must be opt-in")
	}
	// A 10ms burst at full speed takes exactly 10ms.
	s.Spawn("w", BigOnly).Exec(10*time.Millisecond, nil)
	if end := eng.Run(); end.Duration() != 10*time.Millisecond {
		t.Fatalf("no-DVFS burst took %v", end.Duration())
	}
}

func TestDVFSSimulationDrains(t *testing.T) {
	// The governor must not keep the event queue alive forever.
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.DVFS = true
	s := New(eng, cfg)
	s.Spawn("w", nil).Exec(5*time.Millisecond, nil)
	end := eng.Run()
	if end.Duration() > time.Second {
		t.Fatalf("governor kept simulation alive: %v", end.Duration())
	}
}
