package tflite

import (
	"time"

	"aitax/internal/sched"
	"aitax/internal/work"
)

// BenchTool models the TFLite command-line benchmark utility and its
// Android-app wrapper (§III-B): random input tensors stand in for data
// capture, pre-processing is negligible (the tensor is already the right
// shape), and each invocation is measured. The app wrapper adds UI
// rendering per result.
type BenchTool struct {
	rt *Runtime
	ip *Interpreter

	// StdLib selects the random-generation quirk (§IV-A).
	StdLib StdLib
	// AppWrapper adds the benchmark Android app's UI work per run.
	AppWrapper bool
	// UIBase is the app wrapper's per-run rendering cost.
	UIBase time.Duration
	// NoiseCeil bounds the per-run OS noise burst (tight distributions
	// for benchmarks, per Fig. 11).
	NoiseCeil time.Duration

	genThread *sched.Thread
	uiThread  *sched.Thread
}

// RunSample is one measured benchmark iteration.
type RunSample struct {
	DataCapture time.Duration // random input generation
	Pre         time.Duration
	Inference   time.Duration
	UI          time.Duration
	Total       time.Duration
}

// NewBenchTool wraps an initialized-or-not interpreter; Run initializes
// it if needed.
func NewBenchTool(rt *Runtime, ip *Interpreter) *BenchTool {
	return &BenchTool{
		rt: rt, ip: ip,
		StdLib:    LibCXX,
		UIBase:    3 * time.Millisecond,
		NoiseCeil: 300 * time.Microsecond,
		genThread: rt.Sch.Spawn("bench-gen", sched.BigOnly),
		uiThread:  rt.Sch.Spawn("bench-ui", nil),
	}
}

func (bt *BenchTool) inputElems() int {
	m := bt.ip.Model
	if m.InputW == 0 {
		// Language model: token ids.
		if m.Pre.MaxTokens > 0 {
			return m.Pre.MaxTokens
		}
		return 128
	}
	return m.InputW * m.InputH * 3
}

// preWork is the utility's minimal input staging (a copy into the input
// tensor).
func (bt *BenchTool) preWork() work.Work {
	n := int64(bt.inputElems())
	return work.Work{Ops: n, Bytes: 2 * n * int64(bt.ip.DType.Size()), Vectorizable: true}
}

// Run initializes the interpreter (if necessary), performs one warmup,
// then measures n iterations; done receives the per-run samples.
func (bt *BenchTool) Run(n int, done func([]RunSample)) {
	samples := make([]RunSample, 0, n)
	big := &bt.rt.Platform.Big

	var iterate func(i int)
	iterate = func(i int) {
		if i >= n {
			if done != nil {
				done(samples)
			}
			return
		}
		var s RunSample
		start := bt.rt.Eng.Now()

		// "Data capture": random tensor generation plus a sliver of OS
		// noise (interrupts, logging).
		genW := RandomInputWork(bt.inputElems(), bt.ip.DType, bt.StdLib)
		genDur := big.TimeFor(genW, bt.ip.DType)
		if bt.NoiseCeil > 0 {
			genDur += time.Duration(bt.rt.RNG.Float64() * float64(bt.NoiseCeil))
		}
		bt.genThread.Exec(genDur, func() {
			s.DataCapture = bt.rt.Eng.Now().Sub(start)

			preStart := bt.rt.Eng.Now()
			bt.genThread.Exec(big.TimeFor(bt.preWork(), bt.ip.DType), func() {
				s.Pre = bt.rt.Eng.Now().Sub(preStart)

				invStart := bt.rt.Eng.Now()
				bt.ip.Invoke(func(Report) {
					s.Inference = bt.rt.Eng.Now().Sub(invStart)

					finish := func() {
						s.Total = bt.rt.Eng.Now().Sub(start)
						samples = append(samples, s)
						iterate(i + 1)
					}
					if bt.AppWrapper {
						uiStart := bt.rt.Eng.Now()
						uiDur := bt.rt.RNG.Jitter(bt.UIBase, 0.15)
						bt.uiThread.Exec(uiDur, func() {
							s.UI = bt.rt.Eng.Now().Sub(uiStart)
							finish()
						})
					} else {
						finish()
					}
				})
			})
		})
	}

	startRuns := func() {
		// Warmup run, as the utility performs before measuring.
		bt.ip.Invoke(func(Report) { iterate(0) })
	}
	if bt.ip.initialized {
		startRuns()
	} else {
		bt.ip.Init(startRuns)
	}
}
