package tflite

import (
	"context"
	"fmt"
	"testing"
	"time"

	"aitax/internal/faults"
	"aitax/internal/lab"
	"aitax/internal/models"
	"aitax/internal/plan"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

// cacheRaceCfg is one stack configuration the plan-cache race test runs
// repeatedly from concurrent lab workers.
type cacheRaceCfg struct {
	model string
	dt    tensor.DType
	del   Delegate
	// fault forces delegate init to fail, driving the CPU fallback path
	// that invalidates the shared plan entry mid-run.
	fault bool
}

func (c cacheRaceCfg) id() string {
	return fmt.Sprintf("%s/%v/%v/fault=%v", c.model, c.dt, c.del, c.fault)
}

// runWithPlanCache builds a fresh stack wired to cache (nil disables
// caching), runs two invokes (one warm-up) and returns the second
// invocation's total latency.
func runWithPlanCache(cache *plan.Cache, c cacheRaceCfg) (time.Duration, error) {
	rt := NewStack(soc.Pixel3(), 42)
	rt.Plans = cache
	if c.fault {
		inj, err := faults.New(faults.Plan{DelegateInitFailRate: 1, Seed: 99})
		if err != nil {
			return 0, err
		}
		rt.Faults = inj
	}
	m, err := models.ByName(c.model)
	if err != nil {
		return 0, err
	}
	ip, err := rt.NewInterpreter(m, c.dt, Options{Delegate: c.del})
	if err != nil {
		return 0, err
	}
	var rep Report
	ip.Init(func() {
		ip.Invoke(func(Report) {
			ip.Invoke(func(r Report) { rep = r })
		})
	})
	rt.Eng.Run()
	if rep.Total() <= 0 {
		return 0, fmt.Errorf("%s: no latency measured", c.id())
	}
	if c.fault && c.del == DelegateGPU && !ip.FellBack() {
		return 0, fmt.Errorf("%s: forced init fault did not fall back", c.id())
	}
	return rep.Total(), nil
}

// TestPlanCacheSharedAcrossLabWorkers is the plan cache's concurrency
// proof, meant to run under -race: many lab workers simultaneously
// build interpreters for overlapping (model, dtype, delegate) combos
// against ONE shared cache, while fault-injected workers keep forcing
// CPU fallbacks that invalidate the very entries the others are
// reading. Every job's simulated latency must equal the uncached
// sequential reference — sharing compiled plans may only remove host
// work, never change virtual-time results.
func TestPlanCacheSharedAcrossLabWorkers(t *testing.T) {
	configs := []cacheRaceCfg{
		{"MobileNet 1.0 v1", tensor.Float32, DelegateCPU, false},
		{"MobileNet 1.0 v1", tensor.Float32, DelegateGPU, false},
		{"MobileNet 1.0 v1", tensor.Float32, DelegateGPU, true},
		{"MobileNet 1.0 v1", tensor.UInt8, DelegateHexagon, false},
		{"MobileNet 1.0 v1", tensor.UInt8, DelegateNNAPI, false},
		{"MobileNet 1.0 v1", tensor.UInt8, DelegateNNAPI, true},
		{"Inception v3", tensor.Float32, DelegateGPU, false},
	}

	// Uncached sequential reference: what each config reports when every
	// stack recomputes its own plans.
	want := make(map[string]time.Duration, len(configs))
	for _, c := range configs {
		total, err := runWithPlanCache(nil, c)
		if err != nil {
			t.Fatal(err)
		}
		want[c.id()] = total
	}

	cache := plan.New()
	const repeats = 4
	var jobs []lab.Job
	for r := 0; r < repeats; r++ {
		for _, c := range configs {
			c := c
			jobs = append(jobs, lab.Job{
				ID: fmt.Sprintf("%s#%d", c.id(), r),
				Run: func(context.Context) (any, error) {
					total, err := runWithPlanCache(cache, c)
					return total, err
				},
			})
		}
	}

	l := &lab.Lab{Parallelism: 8}
	for _, res := range l.Run(context.Background(), jobs) {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.ID, res.Err)
		}
		c := configs[res.Index%len(configs)]
		if got := res.Value.(time.Duration); got != want[c.id()] {
			t.Errorf("%s: cached run reported %v, uncached reference %v", res.ID, got, want[c.id()])
		}
	}

	hits, misses, invalidations := cache.Stats()
	if misses == 0 || hits == 0 {
		t.Fatalf("cache never shared work: %d hits, %d misses", hits, misses)
	}
	if invalidations == 0 {
		t.Fatal("fault-injected workers never invalidated a shared entry")
	}
}
