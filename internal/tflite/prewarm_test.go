package tflite

import (
	"strings"
	"testing"

	"aitax/internal/models"
	"aitax/internal/plan"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

// TestSupportedMirrorsTableI pins the grid filter against the
// validation NewInterpreter performs, so the prewarm pass never
// enumerates a combination that would fail to build.
func TestSupportedMirrorsTableI(t *testing.T) {
	mobilenet, err := models.ByName("MobileNet 1.0 v1")
	if err != nil {
		t.Fatal(err)
	}
	deeplab, err := models.ByName("Deeplab-v3 MobileNet-v2")
	if err != nil {
		t.Fatal(err)
	}
	if !Supported(mobilenet, tensor.Int8, DelegateHexagon) {
		t.Fatal("quantized MobileNet on Hexagon is a Table-I configuration")
	}
	if Supported(mobilenet, tensor.Float32, DelegateHexagon) {
		t.Fatal("the Hexagon delegate requires a quantized model")
	}
	if Supported(deeplab, tensor.Int8, DelegateCPU) {
		t.Fatal("Deeplab has no quantized variant (Table I)")
	}
	// The filter must agree with NewInterpreter over the whole grid.
	p := soc.Pixel3()
	rt := NewStack(p, 0)
	rt.Plans = plan.New()
	for _, m := range []*models.Model{mobilenet, deeplab} {
		for _, dt := range GridDTypes {
			for _, d := range AllDelegates {
				_, err := rt.NewInterpreter(m, dt, Options{Delegate: d})
				if got, want := Supported(m, dt, d), err == nil; got != want {
					t.Errorf("%s/%v/%v: Supported=%v, NewInterpreter err=%v", m.Name, dt, d, got, err)
				}
			}
		}
	}
}

// TestPrewarmJobsWarmEveryServingKey proves the tentpole property: after
// one prewarm pass over the grid, building any supported interpreter —
// including the NNAPI path, which compiles at Init — touches the cache
// without a single miss. The cold-start plan tax is fully front-loaded.
func TestPrewarmJobsWarmEveryServingKey(t *testing.T) {
	c := plan.New()
	p := soc.Pixel3()
	ms := models.All()
	jobs := PrewarmJobs(c, []*soc.SoC{p}, ms, GridDTypes, AllDelegates)
	if len(jobs) == 0 {
		t.Fatal("empty prewarm grid")
	}
	for _, j := range jobs {
		if strings.Contains(j.Label, "Deeplab") && strings.Contains(j.Label, "int8") {
			t.Fatalf("grid enumerated unsupported combination %q", j.Label)
		}
	}
	rep := c.Prewarm(jobs)
	if rep.Jobs != len(jobs) || rep.Entries == 0 {
		t.Fatalf("report = %+v, want %d jobs adding entries", rep, len(jobs))
	}
	if again := c.Prewarm(PrewarmJobs(c, []*soc.SoC{p}, ms, GridDTypes, AllDelegates)); again.Entries != 0 || again.Compile != 0 {
		t.Fatalf("second pass = %+v, want a free all-hit no-op", again)
	}

	// Every supported interpreter build on a fresh stack is now all-hit.
	rt := NewStack(p, 1)
	rt.Plans = c
	for _, m := range ms {
		for _, dt := range GridDTypes {
			for _, d := range AllDelegates {
				if !Supported(m, dt, d) {
					continue
				}
				_, missesBefore, _ := c.Stats()
				ip, err := rt.NewInterpreter(m, dt, Options{Delegate: d})
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", m.Name, dt, d, err)
				}
				if d == DelegateNNAPI {
					ip.Init(nil)
				}
				if _, missesAfter, _ := c.Stats(); missesAfter != missesBefore {
					t.Fatalf("%s/%v/%v: %d cache misses after prewarm, want none",
						m.Name, dt, d, missesAfter-missesBefore)
				}
			}
		}
	}
}
