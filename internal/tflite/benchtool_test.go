package tflite

import (
	"testing"

	"aitax/internal/imaging"
	"aitax/internal/models"
	"aitax/internal/postproc"
	"aitax/internal/snpe"
	"aitax/internal/tensor"
)

func TestBenchToolDirect(t *testing.T) {
	rt := stack()
	m, _ := models.ByName("MobileNet 1.0 v1")
	ip, err := rt.NewInterpreter(m, tensor.UInt8, Options{Delegate: DelegateHexagon})
	if err != nil {
		t.Fatal(err)
	}
	bt := NewBenchTool(rt, ip)
	var runs []RunSample
	bt.Run(8, func(s []RunSample) { runs = s })
	rt.Eng.Run()
	if len(runs) != 8 {
		t.Fatalf("runs = %d", len(runs))
	}
	// Warmup absorbed the cold start: steady-state totals must be tight.
	for _, r := range runs[1:] {
		if r.Total > 2*runs[0].Total {
			t.Fatalf("unexpected cold-start leak: %v vs %v", r.Total, runs[0].Total)
		}
	}
}

func TestBenchToolLanguageModel(t *testing.T) {
	rt := stack()
	m, _ := models.ByName("Mobile BERT")
	ip, err := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateCPU})
	if err != nil {
		t.Fatal(err)
	}
	bt := NewBenchTool(rt, ip)
	var runs []RunSample
	bt.Run(3, func(s []RunSample) { runs = s })
	rt.Eng.Run()
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	// Token-id generation is tiny compared with image tensors.
	if runs[0].DataCapture > runs[0].Inference {
		t.Fatal("BERT input generation should be negligible")
	}
}

func TestBenchToolOnAlreadyInitializedInterpreter(t *testing.T) {
	rt := stack()
	m, _ := models.ByName("MobileNet 1.0 v1")
	ip, _ := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateCPU})
	ip.Init(nil)
	rt.Eng.Run()
	bt := NewBenchTool(rt, ip)
	var runs []RunSample
	bt.Run(2, func(s []RunSample) { runs = s })
	rt.Eng.Run()
	if len(runs) != 2 {
		t.Fatal("bench tool must handle pre-initialized interpreters")
	}
}

func TestNewSNPEWiredToSharedDSP(t *testing.T) {
	rt := stack()
	sdk := rt.NewSNPE()
	m, _ := models.ByName("MobileNet 1.0 v1")
	net, err := sdk.Load(m.Graph, tensor.UInt8, snpe.RuntimeDSP)
	if err != nil {
		t.Fatal(err)
	}
	net.Execute(nil)
	rt.Eng.Run()
	// The SNPE DSP target and the Hexagon delegate share the runtime's
	// DSP resource: usage must be visible on it.
	if rt.DSP.Served() == 0 {
		t.Fatal("SNPE execution did not touch the shared DSP")
	}
}

func TestInterpreterFabricateOutputsMethod(t *testing.T) {
	rt := stack()
	m, _ := models.ByName("PoseNet")
	ip, _ := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateCPU})
	outs := ip.FabricateOutputs()
	if len(outs) != 2 {
		t.Fatalf("outputs = %d", len(outs))
	}
	if !outs[0].Shape.Equal(m.OutputShapes[0]) {
		t.Fatalf("shape = %v", outs[0].Shape)
	}
}

func TestSegmentsNNAPI(t *testing.T) {
	rt := stack()
	m, _ := models.ByName("Inception v3")
	ip, _ := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateNNAPI})
	if ip.Segments() != 0 {
		t.Fatal("segments before init must be 0 for NNAPI")
	}
	ip.Init(nil)
	rt.Eng.Run()
	if ip.Segments() < 3 {
		t.Fatalf("Inception NNAPI segments = %d, want several", ip.Segments())
	}
}

func TestSetInputValidatesShape(t *testing.T) {
	rt := stack()
	m, _ := models.ByName("MobileNet 1.0 v1")
	ip, _ := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateCPU})

	good := tensor.New(tensor.Float32, tensor.Shape{1, 224, 224, 3})
	if err := ip.SetInput(good); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if ip.Input() != good {
		t.Fatal("input not bound")
	}
	bad := tensor.New(tensor.Float32, tensor.Shape{1, 299, 299, 3})
	if err := ip.SetInput(bad); err == nil {
		t.Fatal("wrong-shape input accepted")
	}
	quant := tensor.New(tensor.UInt8, tensor.Shape{1, 224, 224, 3})
	if err := ip.SetInput(quant); err == nil {
		t.Fatal("quantized input into fp32 model accepted")
	}
}

func TestSetInputLanguageModel(t *testing.T) {
	rt := stack()
	m, _ := models.ByName("Mobile BERT")
	ip, _ := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateCPU})
	ids := tensor.New(tensor.Int32, tensor.Shape{1, 128})
	if err := ip.SetInput(ids); err != nil {
		t.Fatalf("token input rejected: %v", err)
	}
	short := tensor.New(tensor.Int32, tensor.Shape{1, 64})
	if err := ip.SetInput(short); err == nil {
		t.Fatal("wrong-length token input accepted")
	}
}

func TestEndToEndRealPipelineIntoInterpreter(t *testing.T) {
	// The full real pipeline: synthetic sensor frame -> NV21->ARGB ->
	// model pre-spec -> validated interpreter input -> (simulated)
	// inference -> real topK on fabricated outputs.
	rt := stack()
	m, _ := models.ByName("MobileNet 1.0 v1")
	ip, _ := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateCPU})

	frame := imaging.SyntheticFrame(480, 360, 9)
	bitmap := imaging.YUVToARGB(frame)
	input, _ := m.PreSpec(tensor.Float32).Run(bitmap)
	if err := ip.SetInput(input); err != nil {
		t.Fatal(err)
	}
	classes := 0
	ip.Init(func() {
		ip.Invoke(func(Report) {
			outs := ip.FabricateOutputs()
			classes = len(postproc.TopK(outs[0], 5))
		})
	})
	rt.Eng.Run()
	if classes != 5 {
		t.Fatalf("pipeline produced %d classes", classes)
	}
}

func TestGPUAllowFP16Faster(t *testing.T) {
	m, _ := models.ByName("Inception v3")
	run := func(fp16 bool) int64 {
		rt := stack()
		ip, err := rt.NewInterpreter(m, tensor.Float32, Options{
			Delegate: DelegateGPU, GPUAllowFP16: fp16,
		})
		if err != nil {
			t.Fatal(err)
		}
		var warm int64
		ip.Init(func() {
			ip.Invoke(func(Report) {
				start := rt.Eng.Now()
				ip.Invoke(func(Report) { warm = int64(rt.Eng.Now().Sub(start)) })
			})
		})
		rt.Eng.Run()
		return warm
	}
	full, half := run(false), run(true)
	ratio := float64(full) / float64(half)
	if ratio < 1.3 || ratio > 1.8 {
		t.Fatalf("fp16 speedup = %.2fx, want ~1.7x on the GPU portion", ratio)
	}
}
