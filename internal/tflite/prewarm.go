package tflite

import (
	"fmt"

	"aitax/internal/models"
	"aitax/internal/plan"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

// AllDelegates lists every delegate in declaration order, for grid
// enumeration.
var AllDelegates = []Delegate{DelegateCPU, DelegateGPU, DelegateHexagon, DelegateNNAPI}

// GridDTypes are the two precisions the Table-I support matrix spans.
var GridDTypes = []tensor.DType{tensor.Float32, tensor.Int8}

// Supported mirrors NewInterpreter's Table-I validation without
// building anything: it reports whether the (model, dtype, delegate)
// combination can compile. Prewarm passes use it to enumerate only
// combinations that would build.
func Supported(m *models.Model, dt tensor.DType, d Delegate) bool {
	quant := dt == tensor.Int8 || dt == tensor.UInt8
	if quant && !m.Quantizable() {
		return false
	}
	if !m.Support.Supports(d == DelegateNNAPI, dt) {
		return false
	}
	if d == DelegateHexagon && !quant {
		return false
	}
	return true
}

// PrewarmJobs enumerates one compile job per supported (platform, model,
// dtype, delegate) combination. Each job builds a throwaway stack whose
// plan cache is c, constructs the interpreter (which compiles the
// partition plan and op-cost schedules into the cache), and for NNAPI
// additionally runs the framework's compile step; the stack itself is
// discarded, only the cached plans survive. Plans are pure functions of
// the key, so warming them can never change simulation results.
func PrewarmJobs(c *plan.Cache, platforms []*soc.SoC, ms []*models.Model,
	dts []tensor.DType, dels []Delegate) []plan.Job {
	var jobs []plan.Job
	for _, p := range platforms {
		rt := NewStack(p, 0)
		rt.Plans = c
		for _, m := range ms {
			for _, dt := range dts {
				for _, d := range dels {
					if !Supported(m, dt, d) {
						continue
					}
					m, dt, d := m, dt, d
					jobs = append(jobs, plan.Job{
						Label: fmt.Sprintf("%s/%s/%v/%v", p.Name, m.Name, dt, d),
						Compile: func() {
							ip, err := rt.NewInterpreter(m, dt, Options{Delegate: d})
							if err != nil {
								return
							}
							if d == DelegateNNAPI {
								// Segment plans for direct delegates compile in
								// NewInterpreter; NNAPI partitions at Init.
								ip.Init(nil)
							}
						},
					})
				}
			}
		}
	}
	return jobs
}

// Prewarm compiles the full Table-I model×platform×dtype×delegate grid
// into the process-shared plan cache and reports what the pass cost —
// the cold-start AI tax moved from first inferences to startup.
func Prewarm(platforms []*soc.SoC, ms []*models.Model) plan.Report {
	return plan.Shared.Prewarm(PrewarmJobs(plan.Shared, platforms, ms, GridDTypes, AllDelegates))
}
