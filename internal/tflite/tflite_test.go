package tflite

import (
	"testing"
	"time"

	"aitax/internal/models"
	"aitax/internal/postproc"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

func stack() *Runtime { return NewStack(soc.Pixel3(), 42) }

func mustInterpreter(t *testing.T, rt *Runtime, name string, dt tensor.DType, opts Options) *Interpreter {
	t.Helper()
	m, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := rt.NewInterpreter(m, dt, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

// initAndInvoke initializes, performs one warmup run (as the TFLite
// benchmark utility does before measuring), then measures one invocation.
func initAndInvoke(t *testing.T, rt *Runtime, ip *Interpreter) (Report, time.Duration) {
	t.Helper()
	var rep Report
	var invokeStart time.Duration
	ip.Init(func() {
		ip.Invoke(func(Report) { // warmup: absorbs cold-start costs
			invokeStart = rt.Eng.Now().Duration()
			ip.Invoke(func(r Report) { rep = r })
		})
	})
	end := rt.Eng.Run().Duration()
	return rep, end - invokeStart
}

func TestCPUInvoke(t *testing.T) {
	rt := stack()
	ip := mustInterpreter(t, rt, "MobileNet 1.0 v1", tensor.Float32, Options{Delegate: DelegateCPU})
	rep, lat := initAndInvoke(t, rt, ip)
	if rep.Compute <= 0 {
		t.Fatal("no compute")
	}
	// MobileNet fp32 on 4 big-core threads: plausible mobile latency.
	if lat < 5*time.Millisecond || lat > 80*time.Millisecond {
		t.Fatalf("MobileNet fp32 CPU latency = %v, want 5-80ms", lat)
	}
}

func TestInitTimeSeparateFromInvoke(t *testing.T) {
	rt := stack()
	ip := mustInterpreter(t, rt, "MobileNet 1.0 v1", tensor.Float32, Options{Delegate: DelegateCPU})
	_, _ = initAndInvoke(t, rt, ip)
	if ip.InitTime <= 0 {
		t.Fatal("init time missing")
	}
}

func TestInvokeBeforeInitPanics(t *testing.T) {
	rt := stack()
	ip := mustInterpreter(t, rt, "MobileNet 1.0 v1", tensor.Float32, Options{Delegate: DelegateCPU})
	defer func() {
		if recover() == nil {
			t.Fatal("Invoke before Init must panic")
		}
	}()
	ip.Invoke(nil)
}

func TestGPUDelegateFasterThanCPUForBigFP32(t *testing.T) {
	run := func(d Delegate) time.Duration {
		rt := stack()
		ip := mustInterpreter(t, rt, "Inception v3", tensor.Float32, Options{Delegate: d})
		_, lat := initAndInvoke(t, rt, ip)
		return lat
	}
	cpu, gpu := run(DelegateCPU), run(DelegateGPU)
	if gpu >= cpu {
		t.Fatalf("GPU (%v) must beat CPU (%v) on Inception fp32", gpu, cpu)
	}
}

func TestHexagonDelegateRequiresQuantized(t *testing.T) {
	rt := stack()
	m, _ := models.ByName("MobileNet 1.0 v1")
	if _, err := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateHexagon}); err == nil {
		t.Fatal("fp32 Hexagon must be rejected")
	}
	if _, err := rt.NewInterpreter(m, tensor.UInt8, Options{Delegate: DelegateHexagon}); err != nil {
		t.Fatalf("uint8 Hexagon rejected: %v", err)
	}
}

func TestTableIGatesDelegates(t *testing.T) {
	rt := stack()
	alex, _ := models.ByName("AlexNet")
	if _, err := rt.NewInterpreter(alex, tensor.Float32, Options{Delegate: DelegateNNAPI}); err == nil {
		t.Fatal("AlexNet+NNAPI must be rejected (Table I: N)")
	}
	if _, err := rt.NewInterpreter(alex, tensor.Float32, Options{Delegate: DelegateCPU}); err != nil {
		t.Fatalf("AlexNet+CPU rejected: %v", err)
	}
	pose, _ := models.ByName("PoseNet")
	if _, err := rt.NewInterpreter(pose, tensor.UInt8, Options{Delegate: DelegateCPU}); err == nil {
		t.Fatal("PoseNet has no quantized variant (Table I)")
	}
}

func TestNNAPIQuantizedEfficientNetSlow(t *testing.T) {
	// End-to-end Fig. 5 through the interpreter API.
	run := func(d Delegate, threads int) time.Duration {
		rt := stack()
		ip := mustInterpreter(t, rt, "EfficientNet-Lite0", tensor.UInt8,
			Options{Delegate: d, Threads: threads})
		_, lat := initAndInvoke(t, rt, ip)
		return lat
	}
	nnapiLat := run(DelegateNNAPI, 4)
	cpu1 := run(DelegateCPU, 1)
	cpu4 := run(DelegateCPU, 4)
	hex := run(DelegateHexagon, 4)
	if !(hex < cpu4 && cpu4 < cpu1 && cpu1 < nnapiLat) {
		t.Fatalf("Fig. 5 ordering violated: hexagon=%v cpu4=%v cpu1=%v nnapi=%v",
			hex, cpu4, cpu1, nnapiLat)
	}
	ratio := float64(nnapiLat) / float64(cpu1)
	if ratio < 4 || ratio > 11 {
		t.Fatalf("NNAPI degradation = %.1fx, want ~7x", ratio)
	}
}

func TestGPUInitDominatedByShaderCompile(t *testing.T) {
	rt := stack()
	cpuIP := mustInterpreter(t, rt, "MobileNet 1.0 v1", tensor.Float32, Options{Delegate: DelegateCPU})
	rt2 := stack()
	gpuIP := mustInterpreter(t, rt2, "MobileNet 1.0 v1", tensor.Float32, Options{Delegate: DelegateGPU})
	cpuIP.Init(nil)
	rt.Eng.Run()
	gpuIP.Init(nil)
	rt2.Eng.Run()
	if gpuIP.InitTime <= cpuIP.InitTime {
		t.Fatal("GPU delegate init must cost more than CPU init")
	}
}

func TestSegments(t *testing.T) {
	rt := stack()
	ip := mustInterpreter(t, rt, "MobileNet 1.0 v1", tensor.UInt8, Options{Delegate: DelegateHexagon})
	if ip.Segments() < 1 {
		t.Fatal("no segments")
	}
	// MobileNet under the Hexagon delegate: a single DSP partition.
	if ip.Segments() > 2 {
		t.Fatalf("MobileNet hexagon segments = %d, want 1-2", ip.Segments())
	}
}

func TestRandomInputWorkQuirk(t *testing.T) {
	elems := 224 * 224 * 3
	fp32LibCXX := RandomInputWork(elems, tensor.Float32, LibCXX)
	intLibCXX := RandomInputWork(elems, tensor.UInt8, LibCXX)
	fp32LibStd := RandomInputWork(elems, tensor.Float32, LibStdCXX)
	intLibStd := RandomInputWork(elems, tensor.UInt8, LibStdCXX)
	// libc++: reals much faster than integers; libstdc++ the opposite.
	if intLibCXX.Ops <= fp32LibCXX.Ops {
		t.Fatal("libc++ integer generation must be slower than real")
	}
	if fp32LibStd.Ops <= intLibStd.Ops {
		t.Fatal("libstdc++ real generation must be slower than integer")
	}
}

func TestStdLibStrings(t *testing.T) {
	if LibCXX.String() != "libc++" || LibStdCXX.String() != "libstdc++" {
		t.Fatal("stdlib names wrong")
	}
}

func TestFabricatedOutputsFeedPostprocessing(t *testing.T) {
	rt := stack()
	// Classification output feeds topK.
	mob, _ := models.ByName("MobileNet 1.0 v1")
	outs := FabricateOutputs(mob, tensor.Float32, rt.RNG)
	if len(outs) != 1 || !outs[0].Shape.Equal(tensor.Shape{1, 1001}) {
		t.Fatalf("mobilenet outputs = %v", outs)
	}
	top := postproc.TopK(outs[0], 5)
	if len(top) != 5 || top[0].Score <= top[4].Score {
		t.Fatalf("topK on fabricated output broken: %v", top)
	}

	// Detection outputs feed box decode + NMS.
	ssd, _ := models.ByName("SSD MobileNet v2")
	souts := FabricateOutputs(ssd, tensor.Float32, rt.RNG)
	anchors := postproc.DefaultAnchors(26) // 26*26*3 > 1917
	boxes := postproc.DecodeBoxes(souts[0], souts[1], anchors[:1917], 0.5)
	if len(boxes) == 0 {
		t.Fatal("fabricated detections produced no boxes")
	}
	kept := postproc.NMS(boxes, 0.5, 10)
	if len(kept) == 0 || len(kept) > 10 {
		t.Fatalf("NMS kept %d", len(kept))
	}

	// Pose outputs feed keypoint decode.
	pose, _ := models.ByName("PoseNet")
	pouts := FabricateOutputs(pose, tensor.Float32, rt.RNG)
	kps := postproc.DecodeKeypoints(pouts[0], pouts[1], pose.PoseOutputStride)
	if len(kps) != 17 {
		t.Fatalf("keypoints = %d, want 17", len(kps))
	}
}

func TestFabricatedQuantizedOutputs(t *testing.T) {
	rt := stack()
	mob, _ := models.ByName("MobileNet 1.0 v1")
	outs := FabricateOutputs(mob, tensor.UInt8, rt.RNG)
	if outs[0].DType != tensor.UInt8 {
		t.Fatalf("dtype = %v", outs[0].DType)
	}
	deq := postproc.Dequantize(outs[0])
	if deq.DType != tensor.Float32 {
		t.Fatal("dequantize failed")
	}
}

func TestSegmentationOutputFeedsMaskFlatten(t *testing.T) {
	rt := stack()
	dl, _ := models.ByName("Deeplab-v3 MobileNet-v2")
	outs := FabricateOutputs(dl, tensor.Float32, rt.RNG)
	mask := postproc.FlattenMask(outs[0])
	if len(mask) != 513*513 {
		t.Fatalf("mask = %d px", len(mask))
	}
	seen := map[int]bool{}
	for _, c := range mask {
		seen[c] = true
	}
	if len(seen) < 2 {
		t.Fatal("fabricated mask must have multiple classes")
	}
}

func TestDelegateStrings(t *testing.T) {
	for _, d := range []Delegate{DelegateCPU, DelegateGPU, DelegateHexagon, DelegateNNAPI} {
		if d.String() == "" {
			t.Fatal("empty delegate name")
		}
	}
}

func TestDeterministicInvocation(t *testing.T) {
	run := func() time.Duration {
		rt := stack()
		ip := mustInterpreter(t, rt, "SSD MobileNet v2", tensor.UInt8, Options{Delegate: DelegateNNAPI})
		_, lat := initAndInvoke(t, rt, ip)
		return lat
	}
	if run() != run() {
		t.Fatal("invocation latency is nondeterministic")
	}
}
