// Package tflite models the TFLite-style inference runtime the paper's
// benchmarks are built on: an interpreter that executes a model graph on
// the CPU or partially on a delegate (GPU, Hexagon, or NNAPI), a one-time
// initialization step (model load + delegate compilation), and the
// random-input generation quirk of the command-line benchmark utility
// (§IV-A's libc++ vs libstdc++ anecdote).
package tflite

import (
	"fmt"
	"time"

	"aitax/internal/driver"
	"aitax/internal/fastrpc"
	"aitax/internal/faults"
	"aitax/internal/models"
	"aitax/internal/nn"
	"aitax/internal/nnapi"
	"aitax/internal/plan"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/snpe"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
	"aitax/internal/trace"
	"aitax/internal/work"
)

// Delegate selects the interpreter's execution path.
type Delegate int

// Available delegates, matching the paper's §III-B configurations.
const (
	DelegateCPU Delegate = iota
	DelegateGPU
	DelegateHexagon
	DelegateNNAPI
)

// String names the delegate.
func (d Delegate) String() string {
	switch d {
	case DelegateCPU:
		return "cpu"
	case DelegateGPU:
		return "gpu-delegate"
	case DelegateHexagon:
		return "hexagon-delegate"
	case DelegateNNAPI:
		return "nnapi"
	default:
		return fmt.Sprintf("delegate(%d)", int(d))
	}
}

// Runtime bundles one simulated process's execution plumbing: the
// engine, the OS scheduler, the platform, and the shared accelerator
// resources (one DSP, one GPU queue per SoC).
type Runtime struct {
	Eng      *sim.Engine
	Sch      *sched.Scheduler
	Platform *soc.SoC
	DSP      *sim.Resource
	GPUQueue *sim.Resource
	RNG      *sim.RNG

	// Tracer, when set, threads span recording through every framework,
	// driver and FastRPC layer built from this runtime. Nil (the
	// default) disables tracing at zero cost and leaves runs
	// byte-identical to untraced ones.
	Tracer *telemetry.Tracer
	// Metrics, when set, aggregates counters and latency histograms from
	// the same layers. Nil disables collection.
	Metrics *telemetry.Registry
	// Faults, when set, injects offload failures (FastRPC errors,
	// delegate-init failures, stalls, thermal trips) into every channel
	// and framework built from this runtime. Nil keeps the stack
	// infallible and byte-identical to a build without fault injection.
	Faults *faults.Injector
	// Plans shares compiled inference plans — partition assignments and
	// op-level cost schedules — across every interpreter and framework
	// this runtime (and, through plan.Shared, every other runtime in the
	// process) builds. Cached artifacts are pure functions of (model,
	// dtype, delegate, platform), so sharing never changes results. Nil
	// disables caching; NewRuntime defaults it to plan.Shared.
	Plans *plan.Cache
}

// NewRuntime creates a runtime on a fresh platform.
func NewRuntime(eng *sim.Engine, sch *sched.Scheduler, platform *soc.SoC, seed uint64) *Runtime {
	return &Runtime{
		Eng:      eng,
		Sch:      sch,
		Platform: platform,
		DSP:      sim.NewResource(eng, "dsp", 1),
		GPUQueue: sim.NewResource(eng, "gpu", 1),
		RNG:      sim.NewRNG(seed),
		Plans:    plan.Shared,
	}
}

// NewStack creates an engine, scheduler and runtime in one call — the
// common test and benchmark setup.
func NewStack(platform *soc.SoC, seed uint64) *Runtime {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	return NewRuntime(eng, sch, platform, seed)
}

// newChannel creates a FastRPC channel wired to the runtime's telemetry.
func (rt *Runtime) newChannel() *fastrpc.Channel {
	ch := fastrpc.NewChannel(rt.Eng, rt.Platform.RPC, rt.DSP)
	ch.Tracer = rt.Tracer
	ch.Metrics = rt.Metrics
	ch.Faults = rt.Faults
	return ch
}

// NewNNAPI builds this process's NNAPI framework instance over the
// shared accelerators.
func (rt *Runtime) NewNNAPI() *nnapi.Framework {
	p := rt.Platform
	gpu := driver.NewGPUTarget("nnapi-gpu", rt.Eng, &p.GPU, rt.GPUQueue, driver.NNAPIVendorSupports)
	gpu.Tracer = rt.Tracer
	cpu := driver.NewCPUTarget("nnapi-cpu-fallback", rt.Sch, &p.Big, 4)
	cpu.Tracer = rt.Tracer
	ref := driver.NewReferenceCPUTarget("nnapi-ref", rt.Sch, &p.Big)
	ref.Tracer = rt.Tracer
	fw := nnapi.New(nnapi.Config{
		Engine:       rt.Eng,
		AccelFP32:    gpu,
		AccelInt8:    driver.NewDSPTarget("nnapi-dsp", &p.DSP, rt.newChannel(), 0.6, driver.NNAPIVendorSupports),
		FallbackCPU:  cpu,
		ReferenceCPU: ref,
	})
	fw.Tracer = rt.Tracer
	fw.Metrics = rt.Metrics
	fw.Faults = rt.Faults
	// Standard-built frameworks use the standard support matrices, so
	// their compiled plans are shareable across instances (and lab
	// workers). Custom frameworks (tests with bespoke targets or support
	// matrices) leave Plans nil and compile privately.
	fw.Plans = rt.Plans
	fw.PlanPlatform = p.Name
	return fw
}

// NewSNPE builds this process's SNPE SDK instance.
func (rt *Runtime) NewSNPE() *snpe.SDK {
	p := rt.Platform
	cpu := driver.NewCPUTarget("snpe-cpu", rt.Sch, &p.Big, 4)
	cpu.Tracer = rt.Tracer
	gpu := driver.NewGPUTarget("snpe-gpu", rt.Eng, &p.GPU, rt.GPUQueue, driver.SNPESupports)
	gpu.Tracer = rt.Tracer
	return &snpe.SDK{
		CPU: cpu,
		GPU: gpu,
		DSP: driver.NewDSPTarget("snpe-dsp", &p.DSP, rt.newChannel(), 0.95, driver.SNPESupports),
	}
}

// Options configure an interpreter.
type Options struct {
	Delegate Delegate
	// Threads is the CPU thread count (default 4, the paper's setup).
	Threads int
	// Preference is the NNAPI execution preference (default
	// FAST_SINGLE_ANSWER, as in §III-B).
	Preference nnapi.Preference
	// NNAPI supplies a framework instance; nil constructs one.
	NNAPI *nnapi.Framework
	// FuseActivations applies the graph-level activation-fusion pass
	// before planning, removing per-op dispatch and launch overheads for
	// element-wise activations. Off by default so the baseline matches
	// the calibrated figures; the "fusion" experiment ablates it.
	FuseActivations bool
	// GPUAllowFP16 runs the GPU delegate in half precision (its real
	// default), ~1.7x faster at reduced numeric precision. Off by
	// default to match the paper's full-precision configuration.
	GPUAllowFP16 bool
	// ProbeOverhead, when positive, wraps accelerator segments with the
	// driver-instrumentation probe at this fractional compute cost (the
	// paper measures 4-7%, i.e. 0.04-0.07; §III-D). CPU segments are
	// never wrapped, matching the paper. Zero disables instrumentation.
	ProbeOverhead float64
}

// Report describes one inference invocation.
type Report struct {
	driver.Result
	// Transitions counts delegate partition boundaries crossed.
	Transitions int
	// FellBack reports that the delegate failed mid-run during this
	// invocation and the graph was re-planned onto the CPU interpreter
	// (production TFLite's graceful degradation).
	FellBack bool
	// FallbackCost is the delegate teardown + CPU re-init time this
	// invocation paid for that degradation.
	FallbackCost time.Duration
}

type segment struct {
	target driver.Target
	ops    []*nn.Op
	// costs is the precomputed per-op device-time schedule for ops on
	// target (shared through the runtime's plan cache); nil recomputes
	// per invocation.
	costs []time.Duration
}

// Interpreter executes one model with one delegate configuration.
type Interpreter struct {
	rt    *Runtime
	Model *models.Model
	DType tensor.DType
	opts  Options

	cpu        *driver.CPUTarget
	segments   []segment
	nnapiFW    *nnapi.Framework
	compiled   *nnapi.CompiledModel
	input      *tensor.Tensor
	graph      *nn.Graph // possibly fused view of Model.Graph
	outScratch *OutputScratch
	planKey    plan.Key // partition-plan cache key (zero when uncached)

	initialized bool
	fellBack    bool
	// InitTime is the one-time load+compile cost (§IV-C notes the TFLite
	// benchmark tool breaks out model initialization time).
	InitTime time.Duration

	// TransitionOverhead is the per-boundary handoff cost for GPU and
	// Hexagon delegate partitions.
	TransitionOverhead time.Duration
}

// NewInterpreter validates the (model, precision, delegate) combination
// against the Table-I support matrix and builds the execution plan
// skeleton. Init must run before Invoke.
func (rt *Runtime) NewInterpreter(m *models.Model, dt tensor.DType, opts Options) (*Interpreter, error) {
	quant := dt == tensor.Int8 || dt == tensor.UInt8
	if quant && !m.Quantizable() {
		return nil, fmt.Errorf("tflite: %s has no quantized variant (Table I)", m.Name)
	}
	useNNAPI := opts.Delegate == DelegateNNAPI
	if !m.Support.Supports(useNNAPI, dt) {
		return nil, fmt.Errorf("tflite: %s is not supported with %v at %v (Table I)",
			m.Name, opts.Delegate, dt)
	}
	if opts.Delegate == DelegateHexagon && !quant {
		return nil, fmt.Errorf("tflite: the Hexagon delegate requires a quantized model")
	}
	if opts.ProbeOverhead < 0 || opts.ProbeOverhead > 0.25 {
		return nil, fmt.Errorf("tflite: ProbeOverhead %v outside [0, 0.25]", opts.ProbeOverhead)
	}
	if opts.ProbeOverhead != 0 && opts.Delegate == DelegateNNAPI {
		return nil, fmt.Errorf("tflite: ProbeOverhead is ignored by the NNAPI delegate (it owns its targets); leave it zero")
	}
	if opts.Threads == 0 {
		opts.Threads = 4
	}
	ip := &Interpreter{
		rt:                 rt,
		Model:              m,
		DType:              dt,
		opts:               opts,
		cpu:                driver.NewCPUTarget("tflite-cpu", rt.Sch, &rt.Platform.Big, opts.Threads),
		TransitionOverhead: 80 * time.Microsecond,
	}
	graph := m.Graph
	if opts.FuseActivations {
		graph = nn.FuseActivations(graph)
	}
	ip.cpu.Tracer = rt.Tracer
	ip.graph = graph
	switch opts.Delegate {
	case DelegateCPU:
		ip.segments = []segment{{target: ip.cpu, ops: graph.Ops(),
			costs: rt.opCosts(m.Name, graph, dt, ip.cpu)}}
	case DelegateGPU:
		gpu := driver.NewGPUTarget("gpu-delegate", rt.Eng, &rt.Platform.GPU, rt.GPUQueue, driver.GPUDelegateSupports)
		if opts.GPUAllowFP16 {
			gpu.AllowFP16()
		}
		gpu.Tracer = rt.Tracer
		ip.buildSegments(rt.instrument(gpu, opts.ProbeOverhead))
	case DelegateHexagon:
		dsp := driver.NewDSPTarget("hexagon-delegate", &rt.Platform.DSP, rt.newChannel(), 0.8, driver.HexagonDelegateSupports)
		ip.buildSegments(rt.instrument(dsp, opts.ProbeOverhead))
	case DelegateNNAPI:
		fw := opts.NNAPI
		if fw == nil {
			fw = rt.NewNNAPI()
		}
		ip.nnapiFW = fw
	default:
		return nil, fmt.Errorf("tflite: unknown delegate %v", opts.Delegate)
	}
	return ip, nil
}

// opCosts returns the shared per-op cost schedule for running graph g
// at dt on target t, computing it once per (model, dtype, target,
// platform, graph variant) through the runtime's plan cache. Returns
// nil when the target cannot cost segments ahead of execution.
func (rt *Runtime) opCosts(model string, g *nn.Graph, dt tensor.DType, t driver.Target) []time.Duration {
	c, ok := t.(driver.Coster)
	if !ok {
		return nil
	}
	k := plan.Key{Kind: "op-costs", Model: model, DType: dt, Scope: t.Name(),
		Platform: rt.Platform.Name, Variant: g.NumOps()}
	costs, _ := rt.Plans.Get(k, func() any { return c.OpCosts(g.Ops(), dt) }).([]time.Duration)
	return costs
}

// buildSegments materializes the interpreter's delegate partitioning
// from the cached assignment: the greedy support-matrix split and both
// sides' cost schedules are computed once per (model, dtype, delegate,
// platform) and shared; only the op-slice views are per-interpreter.
func (ip *Interpreter) buildSegments(accel driver.Target) {
	rt, m, graph, dt := ip.rt, ip.Model, ip.graph, ip.DType
	ip.planKey = plan.Key{Kind: "tflite-partition", Model: m.Name, DType: dt,
		Scope: ip.opts.Delegate.String(), Platform: rt.Platform.Name, Variant: graph.NumOps()}
	segs := rt.Plans.Get(ip.planKey, func() any {
		return plan.PartitionSegments(graph.Ops(), dt, accel.Supports)
	}).([]plan.Segment)
	ops := graph.Ops()
	accelCosts := rt.opCosts(m.Name, graph, dt, accel)
	cpuCosts := rt.opCosts(m.Name, graph, dt, ip.cpu)
	ip.segments = make([]segment, 0, len(segs))
	for _, s := range segs {
		t, costs := driver.Target(ip.cpu), cpuCosts
		if s.Accel {
			t, costs = accel, accelCosts
		}
		seg := segment{target: t, ops: ops[s.Start:s.End]}
		if costs != nil {
			seg.costs = costs[s.Start:s.End]
		}
		ip.segments = append(ip.segments, seg)
	}
}

// instrument wraps an accelerator target with the driver probe at the
// given fractional overhead (zero passes through), wiring the wrapper to
// the runtime's telemetry.
func (rt *Runtime) instrument(t driver.Target, overhead float64) driver.Target {
	w := trace.InstrumentOverhead(t, rt.Eng, overhead)
	if it, ok := w.(*trace.InstrumentedTarget); ok {
		it.Tracer = rt.Tracer
		it.Metrics = rt.Metrics
	}
	return w
}

// Segments returns the number of execution partitions (1 when fully on
// one target).
func (ip *Interpreter) Segments() int {
	if ip.opts.Delegate == DelegateNNAPI {
		if ip.compiled == nil {
			return 0
		}
		return len(ip.compiled.Partitions)
	}
	return len(ip.segments)
}

// SetInput binds a pre-processed input tensor, validating its shape and
// precision against the model the way TFLite's type-checked input API
// does. Inference cost is simulated, so binding is optional; the value
// is the validation and the end-to-end plumbing for examples.
func (ip *Interpreter) SetInput(t *tensor.Tensor) error {
	m := ip.Model
	var want tensor.Shape
	if m.InputW > 0 {
		want = tensor.Shape{1, m.InputH, m.InputW, 3}
	} else if m.Pre.MaxTokens > 0 {
		want = tensor.Shape{1, m.Pre.MaxTokens}
	}
	if want != nil && !t.Shape.Equal(want) {
		return fmt.Errorf("tflite: %s expects input %v, got %v", m.Name, want, t.Shape)
	}
	quantModel := ip.DType == tensor.Int8 || ip.DType == tensor.UInt8
	quantInput := t.DType == tensor.Int8 || t.DType == tensor.UInt8
	if m.InputW > 0 && quantModel != quantInput {
		return fmt.Errorf("tflite: %s (%v) cannot take a %v input", m.Name, ip.DType, t.DType)
	}
	ip.input = t
	return nil
}

// Input returns the currently bound input tensor, or nil.
func (ip *Interpreter) Input() *tensor.Tensor { return ip.input }

// flashReadBytesPerSec is UFS-class storage throughput for model loading.
const flashReadBytesPerSec = 600e6

// Init performs the one-time model load and delegate compilation,
// advancing the virtual clock; done fires when the interpreter is ready.
func (ip *Interpreter) Init(done func()) {
	load := time.Duration(float64(ip.graph.WeightBytes(ip.DType)) /
		flashReadBytesPerSec * float64(time.Second))
	build := time.Duration(ip.graph.NumOps()) * 25 * time.Microsecond

	var compile time.Duration
	switch ip.opts.Delegate {
	case DelegateGPU:
		// Shader compilation is the expensive delegate init.
		compile = time.Duration(ip.graph.NumOps()) * 900 * time.Microsecond
	case DelegateHexagon:
		compile = time.Duration(ip.graph.NumOps()) * 250 * time.Microsecond
	case DelegateNNAPI:
		ip.compiled = ip.nnapiFW.Compile(ip.graph, ip.DType, ip.opts.Preference)
		compile = ip.compiled.CompileTime
	}
	ip.InitTime = load + build + compile
	ip.rt.Eng.After(ip.InitTime, func() {
		// Delegate bring-up (shader compile, DSP graph download) can be
		// rejected by the driver. Production TFLite answers by tearing
		// the delegate down and planning the whole graph on the CPU —
		// the run completes, slower, and the extra init time is tax.
		var accel string
		switch ip.opts.Delegate {
		case DelegateGPU:
			accel = "gpu-delegate"
		case DelegateHexagon:
			accel = "hexagon-delegate"
		}
		if accel != "" {
			if err := ip.rt.Faults.DelegateInit(accel); err != nil {
				ip.rt.Metrics.Inc(telemetry.Labeled("aitax_faults_injected_total", "site", "delegate-init"))
				extra := ip.fallBackToCPU(nil)
				ip.InitTime += extra
				ip.rt.Eng.After(extra, func() {
					ip.initialized = true
					if done != nil {
						done()
					}
				})
				return
			}
		}
		ip.initialized = true
		if done != nil {
			done()
		}
	})
}

// FellBack reports whether the delegate was abandoned for the CPU
// interpreter (at init or mid-run).
func (ip *Interpreter) FellBack() bool { return ip.fellBack }

// fallBackToCPU re-plans the whole graph onto the CPU interpreter and
// returns the teardown + re-init cost the caller must spend in virtual
// time. The re-planning is permanent: subsequent invocations stay on
// the CPU, reproducing production TFLite's delegate teardown.
func (ip *Interpreter) fallBackToCPU(parent *telemetry.ActiveSpan) time.Duration {
	ip.segments = []segment{{target: ip.cpu, ops: ip.graph.Ops(),
		costs: ip.rt.opCosts(ip.Model.Name, ip.graph, ip.DType, ip.cpu)}}
	ip.fellBack = true
	// The delegate plan died; drop the shared entry so the next compile
	// of this configuration starts from a clean build. Other entries
	// stay warm.
	if ip.planKey != (plan.Key{}) {
		ip.rt.Plans.Invalidate(ip.planKey)
	}
	// Teardown of the delegate's compiled graph plus a fresh CPU
	// interpreter build for the ops it owned.
	cost := time.Duration(ip.graph.NumOps()) * 85 * time.Microsecond
	ip.rt.Tracer.Instant("delegate-fallback", "faults", telemetry.TrackCPU, parent, ip.rt.Eng.Now())
	ip.rt.Metrics.Inc(telemetry.Labeled("aitax_faults_fallbacks_total", "layer", "tflite"))
	ip.rt.Metrics.Observe("aitax_faults_fallback_ms", float64(cost)/float64(time.Millisecond))
	return cost
}

// Invoke runs one inference; done receives the invocation report.
func (ip *Interpreter) Invoke(done func(Report)) {
	ip.InvokeTraced(nil, done)
}

// InvokeTraced is Invoke with telemetry context: the invocation becomes
// a "framework" span under parent (may be nil), and every segment's
// driver work is parented beneath it. With the runtime's Tracer unset
// this is exactly Invoke.
func (ip *Interpreter) InvokeTraced(parent *telemetry.ActiveSpan, done func(Report)) {
	if !ip.initialized {
		panic("tflite: Invoke before Init")
	}
	fw := ip.rt.Tracer.Start("framework", "tflite", telemetry.TrackCPU, parent)
	fw.SetAttr("model", ip.Model.Name)
	fw.SetAttr("delegate", ip.opts.Delegate.String())
	finish := func(rep Report) {
		fw.End()
		ip.rt.Metrics.Inc("aitax_invocations_total")
		ip.rt.Metrics.Add("aitax_delegate_transitions_total", float64(rep.Transitions))
		ip.rt.Metrics.Observe("aitax_invoke_ms", float64(rep.Total())/float64(time.Millisecond))
		if done != nil {
			done(rep)
		}
	}
	if ip.opts.Delegate == DelegateNNAPI {
		ip.nnapiFW.Execute(ip.compiled, func(r nnapi.Report) {
			finish(Report{Result: r.Result, Transitions: r.Transitions,
				FellBack: r.Fallbacks > 0, FallbackCost: r.FallbackCost})
		})
		return
	}
	var rep Report
	var runSeg func(i int)
	runSeg = func(i int) {
		if i >= len(ip.segments) {
			finish(rep)
			return
		}
		s := ip.segments[i]
		exec := func() {
			driver.ExecuteCosted(s.target, s.ops, s.costs, ip.DType, fw, func(res driver.Result) {
				if res.Err != nil && s.target != driver.Target(ip.cpu) {
					// The delegate died mid-run (retries exhausted or the
					// accelerator is down). Absorb the failed attempt's
					// time, tear the delegate down, and re-run the whole
					// graph on the CPU interpreter — the frame completes.
					res.Err = nil
					rep.Result = rep.Result.Add(res)
					t0 := ip.rt.Eng.Now()
					cost := ip.fallBackToCPU(fw)
					rep.FellBack = true
					rep.FallbackCost += cost
					rep.Overhead += cost
					ip.rt.Eng.After(cost, func() {
						ip.rt.Tracer.Emit("fallback", "faults", telemetry.TrackCPU, fw, t0, ip.rt.Eng.Now())
						runSeg(0) // segments are now the single CPU plan
					})
					return
				}
				rep.Result = rep.Result.Add(res)
				runSeg(i + 1)
			})
		}
		if i > 0 {
			rep.Transitions++
			rep.Overhead += ip.TransitionOverhead
			ip.rt.Eng.After(ip.TransitionOverhead, exec)
		} else {
			exec()
		}
	}
	runSeg(0)
}

// StdLib selects the C++ standard library the benchmark binary was
// compiled against — the paper found libc++ generates random reals
// significantly faster than integers, and libstdc++ the exact opposite.
type StdLib int

// Standard libraries.
const (
	LibCXX StdLib = iota
	LibStdCXX
)

// String names the library.
func (l StdLib) String() string {
	if l == LibStdCXX {
		return "libstdc++"
	}
	return "libc++"
}

// RandomInputWork is the cost of the benchmark utility's random input
// tensor generation — its stand-in for data capture.
func RandomInputWork(elems int, dt tensor.DType, lib StdLib) work.Work {
	quant := dt == tensor.Int8 || dt == tensor.UInt8
	var opsPerElem int64
	switch {
	case lib == LibCXX && quant:
		opsPerElem = 120 // slow integer distribution path
	case lib == LibCXX && !quant:
		opsPerElem = 5 // fast real path
	case lib == LibStdCXX && quant:
		opsPerElem = 5
	default:
		opsPerElem = 120
	}
	return work.Work{
		Ops:   int64(elems) * opsPerElem,
		Bytes: int64(elems) * int64(dt.Size()+8),
	}
}
