package tflite

import (
	"testing"
	"time"

	"aitax/internal/models"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

// TestEveryTableICombinationExecutes sweeps the full support matrix:
// every model × precision × delegate combination Table I marks "Y" must
// initialize, invoke and produce a positive, deterministic latency on
// every Table-II platform's flagship (we use the Pixel 3; the platform
// sweep experiment covers the others).
func TestEveryTableICombinationExecutes(t *testing.T) {
	type combo struct {
		delegate Delegate
		nnapiCol bool
	}
	combos := []combo{
		{DelegateCPU, false},
		{DelegateNNAPI, true},
	}
	for _, m := range models.All() {
		for _, dt := range []tensor.DType{tensor.Float32, tensor.UInt8} {
			for _, c := range combos {
				if !m.Support.Supports(c.nnapiCol, dt) {
					continue
				}
				name := m.Name + "/" + dt.String() + "/" + c.delegate.String()
				t.Run(name, func(t *testing.T) {
					rt := NewStack(soc.Pixel3(), 42)
					ip, err := rt.NewInterpreter(m, dt, Options{Delegate: c.delegate})
					if err != nil {
						t.Fatalf("Table I says Y but interpreter rejected: %v", err)
					}
					var rep Report
					ip.Init(func() {
						ip.Invoke(func(Report) { // warm
							ip.Invoke(func(r Report) { rep = r })
						})
					})
					rt.Eng.Run()
					if rep.Total() <= 0 {
						t.Fatal("no latency measured")
					}
					if rep.Total() > 5*time.Second {
						t.Fatalf("implausible latency %v", rep.Total())
					}
					if rep.EnergyJ <= 0 {
						t.Fatal("no energy accounted")
					}
				})
			}
		}
	}
}

// TestHexagonCombinations covers the open Hexagon delegate over every
// quantizable model.
func TestHexagonCombinations(t *testing.T) {
	for _, m := range models.All() {
		if !m.Quantizable() {
			continue
		}
		m := m
		t.Run(m.Name, func(t *testing.T) {
			rt := NewStack(soc.Pixel3(), 7)
			ip, err := rt.NewInterpreter(m, tensor.UInt8, Options{Delegate: DelegateHexagon})
			if err != nil {
				t.Fatal(err)
			}
			done := false
			ip.Init(func() { ip.Invoke(func(Report) { done = true }) })
			rt.Eng.Run()
			if !done {
				t.Fatal("invoke incomplete")
			}
		})
	}
}

// TestGPUDelegateCombinations covers the GPU delegate over fp32 models.
func TestGPUDelegateCombinations(t *testing.T) {
	for _, m := range models.All() {
		if !m.Support.CPUFP32 {
			continue
		}
		m := m
		t.Run(m.Name, func(t *testing.T) {
			rt := NewStack(soc.Pixel3(), 7)
			ip, err := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateGPU})
			if err != nil {
				t.Fatal(err)
			}
			done := false
			ip.Init(func() { ip.Invoke(func(Report) { done = true }) })
			rt.Eng.Run()
			if !done {
				t.Fatal("invoke incomplete")
			}
		})
	}
}

// TestEnergyAccounting pins the energy model's basic physics: more
// compute → more joules; the DSP is more efficient than the CPU for
// quantized inference.
func TestEnergyAccounting(t *testing.T) {
	energy := func(model string, d Delegate, dt tensor.DType) float64 {
		m, _ := models.ByName(model)
		rt := NewStack(soc.Pixel3(), 3)
		ip, err := rt.NewInterpreter(m, dt, Options{Delegate: d})
		if err != nil {
			t.Fatal(err)
		}
		var rep Report
		ip.Init(func() {
			ip.Invoke(func(Report) {
				ip.Invoke(func(r Report) { rep = r })
			})
		})
		rt.Eng.Run()
		return rep.EnergyJ
	}
	small := energy("MobileNet 1.0 v1", DelegateCPU, tensor.Float32)
	big := energy("Inception v3", DelegateCPU, tensor.Float32)
	if big <= small {
		t.Fatalf("Inception energy (%v) must exceed MobileNet (%v)", big, small)
	}
	cpuQ := energy("MobileNet 1.0 v1", DelegateCPU, tensor.UInt8)
	dspQ := energy("MobileNet 1.0 v1", DelegateHexagon, tensor.UInt8)
	if dspQ >= cpuQ {
		t.Fatalf("DSP int8 energy (%v) must beat CPU (%v)", dspQ, cpuQ)
	}
}

// TestPlatformGenerationsEndToEnd verifies the interpreter path speeds
// up monotonically across the Table-II generations.
func TestPlatformGenerationsEndToEnd(t *testing.T) {
	m, _ := models.ByName("MobileNet 1.0 v1")
	var prev time.Duration
	for _, p := range soc.Platforms() {
		rt := NewStack(p, 42)
		ip, err := rt.NewInterpreter(m, tensor.Float32, Options{Delegate: DelegateCPU})
		if err != nil {
			t.Fatal(err)
		}
		var lat time.Duration
		ip.Init(func() {
			ip.Invoke(func(Report) {
				start := rt.Eng.Now()
				ip.Invoke(func(Report) { lat = rt.Eng.Now().Sub(start) })
			})
		})
		rt.Eng.Run()
		if prev != 0 && lat >= prev {
			t.Fatalf("%s (%v) not faster than previous generation (%v)", p.Name, lat, prev)
		}
		prev = lat
	}
}
