package tflite

import (
	"aitax/internal/models"
	"aitax/internal/sim"
	"aitax/internal/tensor"
)

// OutputScratch holds the reusable tensors behind fabricated model
// outputs, so a per-frame caller (the app's real post-processing path)
// stops allocating after the first frame. The zero value is ready to
// use. Tensors returned from FabricateOutputsInto alias the scratch and
// are valid until the next call with the same scratch.
type OutputScratch struct {
	f32   []*tensor.Tensor // fp32 generator outputs
	quant []*tensor.Tensor // quantized views (quantized dtypes only)
	outs  []*tensor.Tensor // returned slice
}

// FabricateOutputs synthesizes plausible raw output tensors for the
// interpreter's model so that the real post-processing implementations
// (topK, NMS, keypoint decode, mask flattening) have non-trivial inputs.
// The simulator costs inference in virtual time; tensors' numerical
// contents come from this seeded generator. The returned tensors are
// scratch owned by the interpreter: valid until the next call.
func (ip *Interpreter) FabricateOutputs() []*tensor.Tensor {
	if ip.outScratch == nil {
		ip.outScratch = &OutputScratch{}
	}
	return FabricateOutputsInto(ip.outScratch, ip.Model, ip.DType, ip.rt.RNG)
}

// FabricateOutputs is the model-level generator behind
// Interpreter.FabricateOutputs.
func FabricateOutputs(m *models.Model, dt tensor.DType, rng *sim.RNG) []*tensor.Tensor {
	return FabricateOutputsInto(&OutputScratch{}, m, dt, rng)
}

// FabricateOutputsInto is the scratch-reusing generator: values (and the
// random stream consumed) are identical to FabricateOutputs, but all
// buffers are recycled from s.
func FabricateOutputsInto(s *OutputScratch, m *models.Model, dt tensor.DType, rng *sim.RNG) []*tensor.Tensor {
	quant := dt == tensor.Int8 || dt == tensor.UInt8
	for len(s.f32) < len(m.OutputShapes) {
		s.f32 = append(s.f32, nil)
		s.quant = append(s.quant, nil)
	}
	s.outs = s.outs[:0]
	for oi, shape := range m.OutputShapes {
		var t *tensor.Tensor
		switch m.Task {
		case models.Classification, models.FaceRecognition, models.LanguageProcessing:
			t = classScores(s.f32[oi], shape, rng)
		case models.Segmentation:
			t = segScores(s.f32[oi], shape, rng)
		case models.ObjectDetection:
			if oi == 0 {
				t = boxRegressions(s.f32[oi], shape, rng)
			} else {
				t = detScores(s.f32[oi], shape, rng)
			}
		case models.PoseEstimation:
			if oi == 0 {
				t = heatmaps(s.f32[oi], shape, rng)
			} else {
				t = offsets(s.f32[oi], shape, rng)
			}
		default:
			t = tensor.Ensure(s.f32[oi], tensor.Float32, shape)
			clear(t.F32)
		}
		s.f32[oi] = t
		if quant {
			s.quant[oi] = tensor.QuantizeTensorInto(s.quant[oi], t, dt)
			t = s.quant[oi]
		}
		s.outs = append(s.outs, t)
	}
	return s.outs
}

// classScores builds a probability-like vector with a handful of strong
// peaks over low background noise.
func classScores(dst *tensor.Tensor, shape tensor.Shape, rng *sim.RNG) *tensor.Tensor {
	t := tensor.Ensure(dst, tensor.Float32, shape)
	n := t.Elems()
	for i := 0; i < n; i++ {
		t.F32[i] = float32(rng.Float64() * 0.01)
	}
	for k := 0; k < 5 && k < n; k++ {
		t.F32[rng.Intn(n)] = float32(0.2 + rng.Float64()*0.8)
	}
	return t
}

// segScores builds per-pixel class scores with spatially coherent
// regions (vertical bands) so argmax masks are structured.
func segScores(dst *tensor.Tensor, shape tensor.Shape, rng *sim.RNG) *tensor.Tensor {
	t := tensor.Ensure(dst, tensor.Float32, shape)
	h, w, c := shape[1], shape[2], shape[3]
	bands := 2 + rng.Intn(3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dominant := (x * bands / w) % c
			base := ((y * w) + x) * c
			for ch := 0; ch < c; ch++ {
				v := rng.Float64() * 0.2
				if ch == dominant {
					v += 0.7
				}
				t.F32[base+ch] = float32(v)
			}
		}
	}
	return t
}

func boxRegressions(dst *tensor.Tensor, shape tensor.Shape, rng *sim.RNG) *tensor.Tensor {
	t := tensor.Ensure(dst, tensor.Float32, shape)
	for i := range t.F32 {
		t.F32[i] = float32(rng.Norm(0, 0.6))
	}
	return t
}

func detScores(dst *tensor.Tensor, shape tensor.Shape, rng *sim.RNG) *tensor.Tensor {
	t := tensor.Ensure(dst, tensor.Float32, shape)
	n, c := shape[1], shape[2]
	for i := range t.F32 {
		t.F32[i] = float32(rng.Float64() * 0.1)
	}
	// A few confident detections.
	for k := 0; k < 8; k++ {
		anchor := rng.Intn(n)
		class := 1 + rng.Intn(c-1)
		t.F32[anchor*c+class] = float32(0.6 + rng.Float64()*0.4)
	}
	return t
}

func heatmaps(dst *tensor.Tensor, shape tensor.Shape, rng *sim.RNG) *tensor.Tensor {
	t := tensor.Ensure(dst, tensor.Float32, shape)
	h, w, k := shape[1], shape[2], shape[3]
	for i := range t.F32 {
		t.F32[i] = float32(rng.Norm(-3, 1)) // low logits everywhere
	}
	for kp := 0; kp < k; kp++ {
		y, x := rng.Intn(h), rng.Intn(w)
		t.F32[((y*w)+x)*k+kp] = float32(2 + rng.Float64()*3)
	}
	return t
}

func offsets(dst *tensor.Tensor, shape tensor.Shape, rng *sim.RNG) *tensor.Tensor {
	t := tensor.Ensure(dst, tensor.Float32, shape)
	for i := range t.F32 {
		t.F32[i] = float32(rng.Norm(0, 4))
	}
	return t
}
