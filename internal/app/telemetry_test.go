package app

import (
	"testing"
	"time"

	"aitax/internal/models"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// newTracedApp builds an app on a runtime with telemetry enabled.
func newTracedApp(t *testing.T, model string, dt tensor.DType, d tflite.Delegate) (*tflite.Runtime, *App) {
	t.Helper()
	rt := tflite.NewStack(soc.Pixel3(), 42)
	rt.Tracer = telemetry.NewTracer(rt.Eng.Now)
	rt.Metrics = telemetry.NewRegistry()
	m, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(rt, Config{Model: m, DType: dt, Delegate: d})
	if err != nil {
		t.Fatal(err)
	}
	return rt, a
}

func TestFrameSpanTreeTilesFrameStats(t *testing.T) {
	const frames = 5
	rt, a := newTracedApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateHexagon)
	sts := runFrames(rt, a, frames)
	spans := rt.Tracer.Spans()
	roots := telemetry.Roots(spans)
	if len(roots) != frames {
		t.Fatalf("root spans = %d, want %d", len(roots), frames)
	}
	stageFor := map[string]func(FrameStats) time.Duration{
		"capture":   func(s FrameStats) time.Duration { return s.Capture },
		"pre":       func(s FrameStats) time.Duration { return s.Pre },
		"inference": func(s FrameStats) time.Duration { return s.Inference },
		"post":      func(s FrameStats) time.Duration { return s.Post },
		"ui":        func(s FrameStats) time.Duration { return s.UI },
	}
	for i, root := range roots {
		if root.Name != "frame" || root.Duration() != sts[i].Total {
			t.Fatalf("frame %d root = %+v, want duration %v", i, root, sts[i].Total)
		}
		kids := telemetry.Children(spans, root.ID)
		if len(kids) != 5 {
			t.Fatalf("frame %d has %d stage children, want 5", i, len(kids))
		}
		var sum time.Duration
		cursor := root.Start
		for _, k := range kids {
			want, ok := stageFor[k.Name]
			if !ok {
				t.Fatalf("unexpected stage span %q", k.Name)
			}
			if k.Duration() != want(sts[i]) {
				t.Fatalf("frame %d stage %s span %v != FrameStats %v",
					i, k.Name, k.Duration(), want(sts[i]))
			}
			if k.Start != cursor {
				t.Fatalf("frame %d stage %s starts at %v, want contiguous %v", i, k.Name, k.Start, cursor)
			}
			cursor = k.End
			sum += k.Duration()
		}
		if sum != sts[i].Total {
			t.Fatalf("frame %d stages sum to %v, FrameStats total %v", i, sum, sts[i].Total)
		}
	}
}

func TestFrameSpansNestFrameworkAndRPC(t *testing.T) {
	rt, a := newTracedApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateHexagon)
	runFrames(rt, a, 2)
	spans := rt.Tracer.Spans()
	byName := map[string][]telemetry.Span{}
	byID := map[int64]telemetry.Span{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
		byID[s.ID] = s
	}
	fws := byName["framework"]
	if len(fws) != 2 {
		t.Fatalf("framework spans = %d, want 2", len(fws))
	}
	for _, fw := range fws {
		if byID[fw.Parent].Name != "inference" {
			t.Fatalf("framework span parent = %q, want inference", byID[fw.Parent].Name)
		}
		if fw.Attr("delegate") != "hexagon-delegate" {
			t.Fatalf("framework delegate attr = %q", fw.Attr("delegate"))
		}
	}
	infers := byName["infer"]
	if len(infers) == 0 {
		t.Fatal("no DSP infer spans")
	}
	for _, inf := range infers {
		if inf.Track != telemetry.TrackDSP {
			t.Fatal("infer span off the DSP track")
		}
		if byID[inf.Parent].Name != "framework" {
			t.Fatalf("infer parent = %q, want framework", byID[inf.Parent].Name)
		}
	}
	// Each warm FastRPC round-trip contributes a down→exec and exec→up
	// flow pair crossing the CPU/DSP tracks.
	if len(rt.Tracer.Flows()) < 2 {
		t.Fatalf("flows = %d, want ≥ 2", len(rt.Tracer.Flows()))
	}
	for _, f := range rt.Tracer.Flows() {
		from, to := byID[f.From], byID[f.To]
		if from.Track == to.Track {
			t.Fatalf("flow %q does not cross tracks (%v→%v)", f.Name, from.Track, to.Track)
		}
	}
}

func TestFrameMetricsAggregation(t *testing.T) {
	const frames = 20
	rt, a := newTracedApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateHexagon)
	sts := runFrames(rt, a, frames)
	m := rt.Metrics
	if got := m.Counter("aitax_frames_total"); got != frames {
		t.Fatalf("frames_total = %v", got)
	}
	if got := m.Counter("aitax_gc_pauses_total"); got != 1 {
		t.Fatalf("gc_pauses_total = %v, want 1 in %d frames (period %d)", got, frames, a.GCPeriod)
	}
	if got := m.Counter("aitax_invocations_total"); got != frames {
		t.Fatalf("invocations_total = %v", got)
	}
	name := telemetry.Labeled("aitax_stage_ms", "stage", "total")
	if m.Count(name) != frames {
		t.Fatalf("stage total observations = %d", m.Count(name))
	}
	// The p50 must be an actual observed frame total.
	p50 := m.Quantile(name, 0.5)
	found := false
	for _, st := range sts {
		if float64(st.Total)/float64(time.Millisecond) == p50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("p50 %v is not an observed frame total", p50)
	}
	if m.Counter("aitax_fastrpc_calls_total") == 0 {
		t.Fatal("fastrpc calls not counted")
	}
}

func TestTracingDoesNotPerturbRun(t *testing.T) {
	run := func(traced bool) []FrameStats {
		rt := tflite.NewStack(soc.Pixel3(), 42)
		if traced {
			rt.Tracer = telemetry.NewTracer(rt.Eng.Now)
			rt.Metrics = telemetry.NewRegistry()
		}
		m, err := models.ByName("MobileNet 1.0 v1")
		if err != nil {
			t.Fatal(err)
		}
		a, err := New(rt, Config{Model: m, DType: tensor.UInt8, Delegate: tflite.DelegateHexagon, Streaming: true})
		if err != nil {
			t.Fatal(err)
		}
		return runFrames(rt, a, 10)
	}
	plain, traced := run(false), run(true)
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("frame %d differs with tracing on: %+v vs %+v", i, plain[i], traced[i])
		}
	}
}

func TestTextPipelineSpanTree(t *testing.T) {
	rt, a := newTracedApp(t, "Mobile BERT", tensor.Float32, tflite.DelegateCPU)
	sts := runFrames(rt, a, 2)
	roots := telemetry.Roots(rt.Tracer.Spans())
	if len(roots) != 2 {
		t.Fatalf("roots = %d", len(roots))
	}
	for i, root := range roots {
		if root.Duration() != sts[i].Total {
			t.Fatalf("text frame %d root %v != total %v", i, root.Duration(), sts[i].Total)
		}
		if len(telemetry.Children(rt.Tracer.Spans(), root.ID)) != 5 {
			t.Fatal("text frame missing stage children")
		}
	}
}
