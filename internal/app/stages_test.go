package app

import (
	"testing"
	"time"

	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

func TestParseStage(t *testing.T) {
	for s := StageCapture; s <= StageUI; s++ {
		got, err := ParseStage(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStage(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStage("render"); err == nil {
		t.Fatal("ParseStage accepted an unknown stage")
	}
}

// A served request enters at pre and exits after post: the stages it
// never ran stay zero, so Tax() is exact for the traversed segment.
func TestProcessRangeMidGraphEntry(t *testing.T) {
	rt, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, false)
	var st FrameStats
	a.Init(func() {
		a.ProcessRange(StagePre, StagePost, func(s FrameStats) { st = s })
	})
	rt.Eng.Run()
	if st.Capture != 0 || st.UI != 0 {
		t.Fatalf("skipped stages nonzero: capture %v, ui %v", st.Capture, st.UI)
	}
	if st.Pre <= 0 || st.Inference <= 0 || st.Post <= 0 {
		t.Fatalf("traversed stages missing: %+v", st)
	}
	if st.Total < st.Pre+st.Inference+st.Post {
		t.Fatalf("total %v below stage sum", st.Total)
	}
	if st.Tax() != st.Total-st.Inference {
		t.Fatal("tax accounting broken for a partial traversal")
	}
}

// A full-range ProcessRange is exactly ProcessFrame.
func TestProcessRangeFullMatchesProcessFrame(t *testing.T) {
	rtA, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, false)
	var viaRange FrameStats
	a.Init(func() {
		a.ProcessRange(StageCapture, StageUI, func(s FrameStats) { viaRange = s })
	})
	rtA.Eng.Run()

	rtB, b := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, false)
	var viaFrame FrameStats
	b.Init(func() {
		b.ProcessFrame(func(s FrameStats) { viaFrame = s })
	})
	rtB.Eng.Run()

	if viaRange != viaFrame {
		t.Fatalf("ProcessRange(capture, ui) %+v != ProcessFrame %+v", viaRange, viaFrame)
	}
}

func TestProcessRangeInvalidRangePanics(t *testing.T) {
	_, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, false)
	for _, r := range [][2]Stage{{StagePost, StagePre}, {StageCapture, StageUI + 1}, {-1, StageUI}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ProcessRange(%v, %v) did not panic", r[0], r[1])
				}
			}()
			a.ProcessRange(r[0], r[1], nil)
		}()
	}
}

// Mid-graph entries are cheaper than full frames: the serving path
// skips the capture wait and UI render entirely.
func TestProcessRangeSkipsStageCosts(t *testing.T) {
	rtA, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, false)
	var partial FrameStats
	a.Init(func() {
		a.ProcessRange(StagePre, StagePost, func(s FrameStats) { partial = s })
	})
	rtA.Eng.Run()

	rtB, b := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, false)
	var full FrameStats
	b.Init(func() {
		b.ProcessFrame(func(s FrameStats) { full = s })
	})
	rtB.Eng.Run()

	if partial.Total+time.Microsecond >= full.Total {
		t.Fatalf("partial traversal %v not cheaper than full frame %v", partial.Total, full.Total)
	}
}
