package app

import (
	"testing"
	"time"

	"aitax/internal/capture"
	"aitax/internal/models"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/stats"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

func newApp(t *testing.T, model string, dt tensor.DType, d tflite.Delegate, streaming bool) (*tflite.Runtime, *App) {
	t.Helper()
	rt := tflite.NewStack(soc.Pixel3(), 42)
	m, err := models.ByName(model)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(rt, Config{Model: m, DType: dt, Delegate: d, Streaming: streaming})
	if err != nil {
		t.Fatal(err)
	}
	return rt, a
}

func runFrames(rt *tflite.Runtime, a *App, n int) []FrameStats {
	var out []FrameStats
	a.Init(func() {
		a.Run(n, func(st []FrameStats) {
			out = st
			a.StopStream()
		})
	})
	rt.Eng.Run()
	return out
}

func TestProcessFrameStages(t *testing.T) {
	rt, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, false)
	sts := runFrames(rt, a, 3)
	if len(sts) != 3 {
		t.Fatalf("frames = %d", len(sts))
	}
	for _, st := range sts {
		if st.Capture <= 0 || st.Pre <= 0 || st.Inference <= 0 || st.Post <= 0 || st.UI <= 0 {
			t.Fatalf("missing stage in %+v", st)
		}
		if st.Total < st.Capture+st.Pre+st.Inference+st.Post+st.UI-time.Millisecond {
			t.Fatalf("total %v below stage sum", st.Total)
		}
		if st.Tax() != st.Total-st.Inference {
			t.Fatal("tax accounting broken")
		}
	}
}

func TestCapturePlusPreRivalsInferenceForQuantMobileNet(t *testing.T) {
	// §IV-A: quantized MobileNet v1 spends up to ~2x as much time on
	// data acquisition + processing as on inference.
	rt, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, true)
	sts := runFrames(rt, a, 20)
	var capPre, inf time.Duration
	for _, st := range sts {
		capPre += st.Capture + st.Pre
		inf += st.Inference
	}
	ratio := float64(capPre) / float64(inf)
	if ratio < 1.0 || ratio > 4.5 {
		t.Fatalf("capture+pre / inference = %.2f, want 1-4.5 (paper: up to ~2x+)", ratio)
	}
}

func TestInceptionInferenceDominates(t *testing.T) {
	// §IV-A: Inception is the model where inference latency dominates.
	rt, a := newApp(t, "Inception v3", tensor.Float32, tflite.DelegateNNAPI, true)
	sts := runFrames(rt, a, 5)
	var capPre, inf time.Duration
	for _, st := range sts {
		capPre += st.Capture + st.Pre
		inf += st.Inference
	}
	if inf < 2*capPre {
		t.Fatalf("Inception inference (%v) must dominate capture+pre (%v)", inf, capPre)
	}
}

func TestDeepLabPreTiny(t *testing.T) {
	// §IV-A: DeepLab's pre-processing is ~1% of run-time (native ops).
	rt, a := newApp(t, "Deeplab-v3 MobileNet-v2", tensor.Float32, tflite.DelegateNNAPI, true)
	sts := runFrames(rt, a, 5)
	var pre, total time.Duration
	for _, st := range sts {
		pre += st.Pre
		total += st.Total
	}
	frac := float64(pre) / float64(total)
	if frac > 0.06 {
		t.Fatalf("DeepLab pre fraction = %.3f, want small (~1%%)", frac)
	}
}

func TestPoseNetPreModerate(t *testing.T) {
	// §IV-A: PoseNet pre-processing ≈ 10% of run-time (includes rotate).
	rt, a := newApp(t, "PoseNet", tensor.Float32, tflite.DelegateNNAPI, true)
	sts := runFrames(rt, a, 5)
	var pre, total time.Duration
	for _, st := range sts {
		pre += st.Pre
		total += st.Total
	}
	frac := float64(pre) / float64(total)
	if frac < 0.02 || frac > 0.30 {
		t.Fatalf("PoseNet pre fraction = %.3f, want ~0.1", frac)
	}
}

func TestStreamingStretchesCPUInference(t *testing.T) {
	// Fig. 3's mechanism: the camera stream contends with CPU inference.
	run := func(streaming bool) time.Duration {
		rt, a := newApp(t, "Inception v3", tensor.Float32, tflite.DelegateCPU, streaming)
		sts := runFrames(rt, a, 3)
		var inf time.Duration
		for _, st := range sts {
			inf += st.Inference
		}
		return inf
	}
	withStream, without := run(true), run(false)
	if withStream <= without {
		t.Fatalf("streaming must stretch CPU inference: with=%v without=%v", withStream, without)
	}
}

func TestAppVariabilityExceedsBenchmark(t *testing.T) {
	// Fig. 11: app latency distribution is much wider than the
	// benchmark utility's.
	rt, a := newApp(t, "MobileNet 1.0 v1", tensor.Float32, tflite.DelegateCPU, true)
	sts := runFrames(rt, a, 60)
	appSample := stats.NewSample()
	for _, st := range sts {
		appSample.Add(float64(st.Total) / float64(time.Millisecond))
	}

	rt2 := tflite.NewStack(soc.Pixel3(), 42)
	m, _ := models.ByName("MobileNet 1.0 v1")
	ip, err := rt2.NewInterpreter(m, tensor.Float32, tflite.Options{Delegate: tflite.DelegateCPU})
	if err != nil {
		t.Fatal(err)
	}
	bt := tflite.NewBenchTool(rt2, ip)
	var runs []tflite.RunSample
	bt.Run(60, func(s []tflite.RunSample) { runs = s })
	rt2.Eng.Run()
	benchSample := stats.NewSample()
	for _, r := range runs {
		benchSample.Add(float64(r.Total) / float64(time.Millisecond))
	}

	if appSample.CV() < 2*benchSample.CV() {
		t.Fatalf("app CV (%.3f) must far exceed benchmark CV (%.3f)",
			appSample.CV(), benchSample.CV())
	}
}

func TestRealPostprocessRuns(t *testing.T) {
	rt := tflite.NewStack(soc.Pixel3(), 7)
	for _, name := range []string{"MobileNet 1.0 v1", "SSD MobileNet v2", "PoseNet"} {
		m, _ := models.ByName(name)
		a, err := New(rt, Config{Model: m, DType: tensor.Float32,
			Delegate: tflite.DelegateCPU, RealPostprocess: true})
		if err != nil {
			t.Fatal(err)
		}
		done := false
		a.Init(func() {
			a.ProcessFrame(func(FrameStats) { done = true })
		})
		rt.Eng.Run()
		if !done {
			t.Fatalf("%s frame did not complete", name)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	rt := tflite.NewStack(soc.Pixel3(), 1)
	if _, err := New(rt, Config{}); err == nil {
		t.Fatal("nil model accepted")
	}
	alex, _ := models.ByName("AlexNet")
	if _, err := New(rt, Config{Model: alex, DType: tensor.Float32, Delegate: tflite.DelegateNNAPI}); err == nil {
		t.Fatal("AlexNet+NNAPI accepted (Table I says N)")
	}
}

func TestBenchToolSamplesComplete(t *testing.T) {
	rt := tflite.NewStack(soc.Pixel3(), 3)
	m, _ := models.ByName("MobileNet 1.0 v1")
	ip, _ := rt.NewInterpreter(m, tensor.UInt8, tflite.Options{Delegate: tflite.DelegateCPU})
	bt := tflite.NewBenchTool(rt, ip)
	var runs []tflite.RunSample
	bt.Run(10, func(s []tflite.RunSample) { runs = s })
	rt.Eng.Run()
	if len(runs) != 10 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if r.DataCapture <= 0 || r.Inference <= 0 || r.Total <= 0 {
			t.Fatalf("incomplete sample %+v", r)
		}
		if r.UI != 0 {
			t.Fatal("CLI tool must not render UI")
		}
	}
}

func TestBenchToolQuantRandomGenSlower(t *testing.T) {
	// §IV-A: under libc++, integer random generation (quantized inputs)
	// is significantly slower than real generation (fp32 inputs).
	gen := func(dt tensor.DType) time.Duration {
		rt := tflite.NewStack(soc.Pixel3(), 3)
		m, _ := models.ByName("MobileNet 1.0 v1")
		ip, _ := rt.NewInterpreter(m, dt, tflite.Options{Delegate: tflite.DelegateCPU})
		bt := tflite.NewBenchTool(rt, ip)
		bt.NoiseCeil = 0
		var runs []tflite.RunSample
		bt.Run(5, func(s []tflite.RunSample) { runs = s })
		rt.Eng.Run()
		var sum time.Duration
		for _, r := range runs {
			sum += r.DataCapture
		}
		return sum
	}
	if gen(tensor.UInt8) <= gen(tensor.Float32) {
		t.Fatal("quantized random generation must be slower under libc++")
	}
}

func TestBenchAppWrapperAddsUI(t *testing.T) {
	rt := tflite.NewStack(soc.Pixel3(), 3)
	m, _ := models.ByName("MobileNet 1.0 v1")
	ip, _ := rt.NewInterpreter(m, tensor.Float32, tflite.Options{Delegate: tflite.DelegateCPU})
	bt := tflite.NewBenchTool(rt, ip)
	bt.AppWrapper = true
	var runs []tflite.RunSample
	bt.Run(5, func(s []tflite.RunSample) { runs = s })
	rt.Eng.Run()
	for _, r := range runs {
		if r.UI <= 0 {
			t.Fatal("app wrapper must render UI")
		}
	}
}

func TestFigure3Ordering(t *testing.T) {
	// Fig. 3: real app > benchmark app > CLI benchmark, per model, CPU.
	m, _ := models.ByName("MobileNet 1.0 v1")

	mean := func(appWrapper bool) time.Duration {
		rt := tflite.NewStack(soc.Pixel3(), 42)
		ip, _ := rt.NewInterpreter(m, tensor.Float32, tflite.Options{Delegate: tflite.DelegateCPU})
		bt := tflite.NewBenchTool(rt, ip)
		bt.AppWrapper = appWrapper
		var runs []tflite.RunSample
		bt.Run(20, func(s []tflite.RunSample) { runs = s })
		rt.Eng.Run()
		var sum time.Duration
		for _, r := range runs {
			sum += r.Total
		}
		return sum / time.Duration(len(runs))
	}
	cli := mean(false)
	benchApp := mean(true)

	rt, a := newApp(t, "MobileNet 1.0 v1", tensor.Float32, tflite.DelegateCPU, true)
	sts := runFrames(rt, a, 20)
	var appSum time.Duration
	for _, st := range sts {
		appSum += st.Total
	}
	appMean := appSum / time.Duration(len(sts))

	if !(appMean > benchApp && benchApp > cli) {
		t.Fatalf("Fig. 3 ordering violated: app=%v benchApp=%v cli=%v", appMean, benchApp, cli)
	}
}

func TestLanguageAppSkipsCamera(t *testing.T) {
	rt, a := newApp(t, "Mobile BERT", tensor.Float32, tflite.DelegateCPU, true)
	sts := runFrames(rt, a, 5)
	for _, st := range sts {
		if st.Capture > time.Millisecond {
			t.Fatalf("language app capture = %v, want sub-ms text fetch", st.Capture)
		}
		if st.Pre > st.Inference {
			t.Fatal("tokenization must be negligible next to BERT inference")
		}
		if st.Inference <= 0 || st.UI <= 0 {
			t.Fatalf("incomplete text frame %+v", st)
		}
	}
}

func TestPoseAppFusesIMU(t *testing.T) {
	rt, a := newApp(t, "PoseNet", tensor.Float32, tflite.DelegateCPU, false)
	runFrames(rt, a, 10)
	if a.imu.Reads() != 10 {
		t.Fatalf("IMU reads = %d, want one per frame", a.imu.Reads())
	}
	// Classification apps do not touch the IMU.
	rt2, a2 := newApp(t, "MobileNet 1.0 v1", tensor.Float32, tflite.DelegateCPU, false)
	runFrames(rt2, a2, 5)
	if a2.imu.Reads() != 0 {
		t.Fatalf("classification app read the IMU %d times", a2.imu.Reads())
	}
}

func TestSetCameraBeforeInit(t *testing.T) {
	rt, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, false)
	cam := capture.NewCamera(rt.Eng, rt.RNG, 320, 240)
	a.SetCamera(cam)
	if a.Camera() != cam {
		t.Fatal("camera not replaced")
	}
	sts := runFrames(rt, a, 3)
	if len(sts) != 3 {
		t.Fatal("frames incomplete with replaced camera")
	}
}

func TestSetCameraAfterStreamPanics(t *testing.T) {
	rt, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, true)
	started := false
	a.Init(func() { started = true })
	rt.Eng.RunUntil(sim.Time(0).Add(200 * time.Millisecond))
	if !started {
		t.Fatal("init incomplete")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetCamera after streaming must panic")
		}
	}()
	a.SetCamera(capture.NewCamera(rt.Eng, rt.RNG, 320, 240))
}

func TestPreOnDSPFastWhenIdle(t *testing.T) {
	run := func(preDSP bool) time.Duration {
		rt := tflite.NewStack(soc.Pixel3(), 42)
		m, _ := models.ByName("MobileNet 1.0 v1")
		a, err := New(rt, Config{Model: m, DType: tensor.UInt8,
			Delegate: tflite.DelegateNNAPI, PreOnDSP: preDSP})
		if err != nil {
			t.Fatal(err)
		}
		var pre time.Duration
		a.Init(func() {
			a.Run(6, func(sts []FrameStats) {
				for _, st := range sts[2:] {
					pre += st.Pre
				}
			})
		})
		rt.Eng.Run()
		return pre
	}
	cpu, dsp := run(false), run(true)
	if dsp >= cpu {
		t.Fatalf("idle DSP pre (%v) must beat managed CPU pre (%v)", dsp, cpu)
	}
}

func TestAppSoak(t *testing.T) {
	// Long-run robustness: 600 frames must complete, drain the event
	// queue, and keep a stable steady-state mean (no drift from leaked
	// state in the scheduler, RPC channel, or camera).
	if testing.Short() {
		t.Skip("soak test")
	}
	rt, a := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateNNAPI, true)
	sts := runFrames(rt, a, 600)
	if len(sts) != 600 {
		t.Fatalf("frames = %d", len(sts))
	}
	if rt.Eng.Pending() != 0 {
		t.Fatalf("event queue not drained: %d pending", rt.Eng.Pending())
	}
	var early, late time.Duration
	for _, st := range sts[10:110] {
		early += st.Total
	}
	for _, st := range sts[490:590] {
		late += st.Total
	}
	drift := float64(late) / float64(early)
	if drift < 0.9 || drift > 1.1 {
		t.Fatalf("steady-state drift %.3fx over 600 frames", drift)
	}
}

func TestRealPreprocessRunsAndKeepsStatsIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		dt   tensor.DType
	}{
		{"MobileNet 1.0 v1", tensor.UInt8},
		{"MobileNet 1.0 v1", tensor.Float32},
		{"Deeplab v3", tensor.Float32},
		{"PoseNet", tensor.Float32},
	} {
		var runs [2][]FrameStats
		for i, real := range []bool{false, true} {
			rt := tflite.NewStack(soc.Pixel3(), 7)
			m, _ := models.ByName(tc.name)
			a, err := New(rt, Config{Model: m, DType: tc.dt,
				Delegate: tflite.DelegateCPU, RealPreprocess: real})
			if err != nil {
				t.Fatal(err)
			}
			a.cam.Synthesize = true
			a.Init(func() {
				a.Run(3, func(st []FrameStats) { runs[i] = st })
			})
			rt.Eng.Run()
			if len(runs[i]) != 3 {
				t.Fatalf("%s real=%v: %d frames", tc.name, real, len(runs[i]))
			}
		}
		// The real kernels run on the host only; the simulated stage
		// breakdown must not notice them.
		for f := range runs[0] {
			if runs[0][f] != runs[1][f] {
				t.Fatalf("%s frame %d: stats differ with RealPreprocess: %+v vs %+v",
					tc.name, f, runs[0][f], runs[1][f])
			}
		}
	}
}
