// Package app models the real Android application form factor the paper
// contrasts with benchmarks: a camera preview stream that keeps a CPU
// thread busy converting frames whether or not anyone consumes them,
// per-pixel managed-code pre-processing, inference through a chosen
// delegate, task-specific post-processing, UI rendering with jitter, and
// periodic GC pauses. These are the mechanisms behind the paper's
// app-vs-benchmark gaps (Fig. 3), the data-capture/pre-processing tax
// (Fig. 4), the multi-tenancy curves (Figs. 9/10) and the latency
// distributions (Fig. 11).
package app

import (
	"fmt"
	"time"

	"aitax/internal/capture"
	"aitax/internal/fastrpc"
	"aitax/internal/imaging"
	"aitax/internal/models"
	"aitax/internal/postproc"
	"aitax/internal/preproc"
	"aitax/internal/sched"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
	"aitax/internal/work"
)

// ManagedEfficiency is the throughput derating of per-pixel managed
// (Java/Kotlin) image code relative to the device's scalar rate. The
// classification and pose demo apps process bitmaps this way.
const ManagedEfficiency = 0.11

// NativeEfficiency applies to support-library pipelines implemented as
// vectorized native ops (the segmentation demo).
const NativeEfficiency = 0.9

// Config selects what the app runs.
type Config struct {
	Model    *models.Model
	DType    tensor.DType
	Delegate tflite.Delegate
	Threads  int
	// Streaming keeps the camera-conversion thread busy in the
	// background, the default for a preview app.
	Streaming bool
	// RealPostprocess executes the actual post-processing algorithms on
	// fabricated model outputs in addition to costing them in virtual
	// time (used by the runnable examples).
	RealPostprocess bool
	// RealPreprocess executes the actual pre-processing kernels (bitmap
	// conversion plus the model's fused resize+normalize/quantize
	// pipeline) on the captured frame in addition to costing the stage
	// in virtual time. Host-side only: FrameStats are unchanged.
	RealPreprocess bool
	// PreOnDSP offloads the pre-processing stage to the DSP through
	// FastRPC (a FastCV-style pipeline) — the jointly-accelerate-the-
	// mundane-stages direction the paper's conclusion proposes. The DSP
	// crunches pixels far faster than managed CPU code, but each frame
	// pays the RPC transport and the stage now contends with any
	// inference sharing the DSP.
	PreOnDSP bool
	// ProbeOverhead enables driver instrumentation on accelerator
	// inference at the given fractional cost (the paper's 4-7% probe
	// effect; zero disables). Passed through to the interpreter.
	ProbeOverhead float64
}

// FrameStats is the per-frame stage breakdown an instrumented app
// reports — the quantities Figs. 4, 9 and 10 plot.
type FrameStats struct {
	Capture   time.Duration // sensor latency + bitmap formatting
	Pre       time.Duration // scale/crop/normalize/rotate/convert
	Inference time.Duration
	Post      time.Duration
	UI        time.Duration
	Total     time.Duration
	// Retry is the inference stage's injected-fault recovery time
	// (failed FastRPC attempts + backoff waits). It is contained in
	// Inference but is tax, not useful compute. Retries in other stages
	// (a PreOnDSP pipeline) are already inside those stages' times.
	Retry time.Duration
	// Fallback is delegate teardown + CPU re-init time paid inside the
	// inference stage when the delegate died mid-run.
	Fallback time.Duration
}

// Tax returns the non-inference share of the frame (the AI tax). Fault
// recovery that happened inside the inference stage — retries and
// delegate fallback — is tax too, so it is added back; on fault-free
// frames this is exactly Total - Inference.
func (f FrameStats) Tax() time.Duration { return f.Total - f.Inference + f.Retry + f.Fallback }

// App is one running application instance.
type App struct {
	rt     *tflite.Runtime
	cam    *capture.Camera
	imu    *capture.IMU
	ip     *tflite.Interpreter
	cfg    Config
	preRPC *fastrpc.Channel // non-nil when PreOnDSP

	camThread  *sched.Thread
	preThread  *sched.Thread
	postThread *sched.Thread
	uiThread   *sched.Thread

	// UIBase is the per-frame result-rendering cost.
	UIBase time.Duration
	// UIJitterCV spreads UI time (compositor alignment, binder).
	UIJitterCV float64
	// GCPeriod triggers a collector pause every N frames; GCPause is its
	// length.
	GCPeriod int
	GCPause  time.Duration
	// FrameInterval paces the background preview stream (30 fps).
	FrameInterval time.Duration

	frames     int
	streaming  bool
	preDSPDown bool // the DSP pre-processing path failed; stay on CPU

	post postScratch
	pre  preScratch
}

// preScratch holds the buffers runRealPreprocess recycles across
// frames: the decoded ARGB bitmap and the preproc pipeline's scratch.
type preScratch struct {
	argb *imaging.ARGBImage
	run  preproc.RunScratch
}

// postScratch holds the buffers runRealPostprocess recycles across
// frames. The stage's results are inspected and discarded each frame, so
// every buffer is safely overwritten by the next one.
type postScratch struct {
	deq0, deq1 *tensor.Tensor
	classes    []postproc.Class
	mask       []int
	boxes      []postproc.Box
	nms, kept  []postproc.Box
	keypoints  []postproc.Keypoint
	anchors    []postproc.Anchor
}

// New builds an app around a runtime.
func New(rt *tflite.Runtime, cfg Config) (*App, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("app: config needs a model")
	}
	ip, err := rt.NewInterpreter(cfg.Model, cfg.DType, tflite.Options{
		Delegate:      cfg.Delegate,
		Threads:       cfg.Threads,
		ProbeOverhead: cfg.ProbeOverhead,
	})
	if err != nil {
		return nil, err
	}
	a := &App{
		rt:  rt,
		cam: capture.NewCamera(rt.Eng, rt.RNG, capture.DefaultPreviewW, capture.DefaultPreviewH),
		imu: capture.NewIMU(rt.Eng, rt.RNG),
		ip:  ip,
		cfg: cfg,

		// The conversion thread is heavy enough that EAS keeps it on the
		// big cluster, where it contends with CPU inference (Fig. 3).
		camThread:  rt.Sch.Spawn("app-camera", sched.BigOnly),
		preThread:  rt.Sch.Spawn("app-pre", nil),
		postThread: rt.Sch.Spawn("app-post", nil),
		uiThread:   rt.Sch.Spawn("app-ui", nil),

		UIBase:        4 * time.Millisecond,
		UIJitterCV:    0.3,
		GCPeriod:      17,
		GCPause:       7 * time.Millisecond,
		FrameInterval: 33 * time.Millisecond,
	}
	if cfg.PreOnDSP {
		a.preRPC = fastrpc.NewChannel(rt.Eng, rt.Platform.RPC, rt.DSP)
		a.preRPC.Tracer = rt.Tracer
		a.preRPC.Metrics = rt.Metrics
		a.preRPC.Faults = rt.Faults
	}
	return a, nil
}

// Interpreter exposes the app's interpreter (for init-time inspection).
func (a *App) Interpreter() *tflite.Interpreter { return a.ip }

// Camera exposes the app's camera.
func (a *App) Camera() *capture.Camera { return a.cam }

// SetCamera replaces the camera session (e.g. to request a different
// preview resolution). Must be called before Init.
func (a *App) SetCamera(c *capture.Camera) {
	if a.streaming {
		panic("app: SetCamera after the preview stream started")
	}
	a.cam = c
}

// stageDuration converts stage work into a CPU burst length, applying
// the managed-code penalty unless the pipeline is native.
func (a *App) stageDuration(w work.Work, native bool) time.Duration {
	eff := ManagedEfficiency
	if native {
		eff = NativeEfficiency
	} else {
		w.Vectorizable = false // per-pixel managed loops don't vectorize
	}
	d := a.rt.Platform.Big.TimeFor(w, a.ip.DType)
	return time.Duration(float64(d) / eff)
}

// Init loads the model and starts the background preview stream (vision
// apps only; a language app has no camera).
func (a *App) Init(done func()) {
	a.ip.Init(func() {
		if a.cfg.Streaming && !a.ip.Model.Pre.Tokenize {
			a.startStream()
		}
		if done != nil {
			done()
		}
	})
}

// startStream models the camera callback that converts every delivered
// preview frame whether or not the pipeline consumes it — background CPU
// load that benchmarks do not have.
func (a *App) startStream() {
	if a.streaming {
		return
	}
	a.streaming = true
	conv := a.stageDuration(a.cam.ConversionWork(), false)
	var tick func()
	tick = func() {
		if !a.streaming {
			return
		}
		a.camThread.Exec(conv, nil)
		a.rt.Eng.After(a.FrameInterval, tick)
	}
	a.rt.Eng.After(a.FrameInterval, tick)
}

// StopStream halts the background preview stream so a bounded experiment
// can drain its event queue.
func (a *App) StopStream() { a.streaming = false }

// ProcessFrame runs one capture→pre→infer→post→render cycle and reports
// the stage breakdown. With the runtime's Tracer set, the cycle yields a
// span tree — a "frame" root whose capture/pre/inference/post/ui
// children tile it exactly at the FrameStats boundaries, with the
// framework and driver layers nesting beneath "inference". The cycle is
// the full traversal of the stage graph in stages.go; served requests
// traverse a subgraph via ProcessRange instead.
func (a *App) ProcessFrame(done func(FrameStats)) {
	a.ProcessRange(StageCapture, StageUI, done)
}

// stageSeries are the per-stage latency series names, built once: the
// record path runs per frame and must not rebuild labelled keys.
var stageSeries = [...]string{
	telemetry.Labeled("aitax_stage_ms", "stage", "capture"),
	telemetry.Labeled("aitax_stage_ms", "stage", "pre"),
	telemetry.Labeled("aitax_stage_ms", "stage", "inference"),
	telemetry.Labeled("aitax_stage_ms", "stage", "post"),
	telemetry.Labeled("aitax_stage_ms", "stage", "ui"),
	telemetry.Labeled("aitax_stage_ms", "stage", "total"),
}

// recordFrame aggregates one frame's stage breakdown into the runtime's
// metrics registry (no-op with metrics off).
func (a *App) recordFrame(st FrameStats) {
	m := a.rt.Metrics
	if m == nil {
		return
	}
	m.Inc("aitax_frames_total")
	for i, d := range [...]time.Duration{
		st.Capture, st.Pre, st.Inference, st.Post, st.UI, st.Total,
	} {
		m.Observe(stageSeries[i], float64(d)/float64(time.Millisecond))
	}
	m.Observe("aitax_frame_tax_ms", float64(st.Tax())/float64(time.Millisecond))
	// Fault-recovery series only exist once a fault actually fired, so
	// fault-free runs export byte-identical metrics.
	if st.Retry > 0 {
		m.Observe("aitax_frame_retry_ms", float64(st.Retry)/float64(time.Millisecond))
	}
	if st.Fallback > 0 {
		m.Observe("aitax_frame_fallback_ms", float64(st.Fallback)/float64(time.Millisecond))
	}
}

// runPre executes the pre-processing stage on the configured engine:
// the app's CPU thread by default, or the DSP behind FastRPC when
// PreOnDSP is set. DSP vector units chew through pixel math at a rate
// managed code cannot approach, but the stage then queues behind any
// inference tenant of the same DSP.
func (a *App) runPre(w work.Work, native bool, parent *telemetry.ActiveSpan, done func()) {
	if a.preRPC == nil || a.preDSPDown {
		a.preThread.Exec(a.stageDuration(w, native), done)
		return
	}
	dspW := w
	dspW.Vectorizable = true // HVX path
	exec := a.rt.Platform.DSP.TimeFor(dspW, a.ip.DType)
	payload := int64(a.cam.FrameBytes())
	a.preRPC.InvokeSpan(payload, exec, parent, "pre-dsp", func(b fastrpc.Breakdown) {
		if b.Err != nil {
			// The DSP pre-processing path is gone (session setup or
			// transport failure after retries). Degrade permanently to
			// the managed CPU path — like an app disabling its FastCV
			// pipeline — and run this frame's stage there. The failed
			// attempt's time is already inside the pre stage, so it is
			// counted as tax without further accounting.
			a.preDSPDown = true
			a.rt.Tracer.Instant("pre-dsp-fallback", "faults", telemetry.TrackCPU, parent, a.rt.Eng.Now())
			a.rt.Metrics.Inc(telemetry.Labeled("aitax_faults_fallbacks_total", "layer", "app-pre"))
			a.preThread.Exec(a.stageDuration(w, native), done)
			return
		}
		done()
	})
}

// runRealPreprocess executes the genuine pre-processing kernels on the
// delivered frame: the NV21→ARGB bitmap conversion followed by the
// model's pipeline (fused resize+convert). All buffers come from the
// app's scratch, so steady state allocates nothing; the input tensor is
// discarded — model I/O is fabricated separately, as in post.
func (a *App) runRealPreprocess(f *capture.Frame, spec preproc.Spec) {
	s := &a.pre
	if s.argb == nil {
		s.argb = &imaging.ARGBImage{}
	}
	capture.ConvertFrameInto(s.argb, f)
	spec.RunInto(&s.run, s.argb)
}

// runRealPostprocess executes the genuine algorithms on fabricated
// outputs so example binaries produce inspectable results.
func (a *App) runRealPostprocess() {
	m := a.ip.Model
	s := &a.post
	outs := a.ip.FabricateOutputs()
	switch m.Task {
	case models.Classification, models.FaceRecognition, models.LanguageProcessing:
		out := outs[0]
		if a.ip.DType != tensor.Float32 {
			s.deq0 = postproc.DequantizeInto(s.deq0, out)
			out = s.deq0
		}
		s.classes = postproc.TopKInto(s.classes[:0], out, 5)
	case models.Segmentation:
		s.mask = postproc.FlattenMaskInto(s.mask[:0], outs[0])
	case models.ObjectDetection:
		n := m.OutputShapes[0][1]
		locs, scores := outs[0], outs[1]
		if a.ip.DType != tensor.Float32 {
			s.deq0 = postproc.DequantizeInto(s.deq0, locs)
			s.deq1 = postproc.DequantizeInto(s.deq1, scores)
			locs, scores = s.deq0, s.deq1
		}
		if len(s.anchors) < n {
			grid := 1
			for grid*grid*3 < n {
				grid++
			}
			s.anchors = postproc.DefaultAnchors(grid)
		}
		s.boxes = postproc.DecodeBoxesInto(s.boxes[:0], locs, scores, s.anchors[:n], 0.5)
		s.kept = postproc.NMSInto(s.kept[:0], &s.nms, s.boxes, 0.5, 10)
	case models.PoseEstimation:
		s.keypoints = postproc.DecodeKeypointsInto(s.keypoints[:0], outs[0], outs[1], m.PoseOutputStride)
	}
}

// Run processes n frames sequentially and reports every breakdown.
func (a *App) Run(n int, done func([]FrameStats)) {
	stats := make([]FrameStats, 0, n)
	var loop func(i int)
	loop = func(i int) {
		if i >= n {
			if done != nil {
				done(stats)
			}
			return
		}
		a.ProcessFrame(func(st FrameStats) {
			stats = append(stats, st)
			loop(i + 1)
		})
	}
	loop(0)
}
