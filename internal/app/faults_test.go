package app

import (
	"testing"
	"time"

	"aitax/internal/faults"
	"aitax/internal/models"
	"aitax/internal/soc"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

func newFaultyApp(t *testing.T, plan faults.Plan, cfg Config) (*tflite.Runtime, *App) {
	t.Helper()
	rt := tflite.NewStack(soc.Pixel3(), 42)
	inj, err := faults.New(plan.Resolved(42))
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	rt.Faults = inj
	if cfg.Model == nil {
		m, err := models.ByName("MobileNet 1.0 v1")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Model = m
	}
	a, err := New(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, a
}

// Satellite: retried FastRPC calls add exactly the expected virtual-time
// backoff to the frame's AI-tax share. Every attempt times out (rate 1,
// deadline-bounded, payload-independent), so the first frame's retry tax
// is a closed form: MaxAttempts × Deadline + the geometric backoffs —
// after which the delegate is torn down and the run continues on CPU.
func TestRetryBackoffFlowsIntoFrameTax(t *testing.T) {
	plan := faults.Plan{
		RPCTimeoutRate: 1,
		Deadline:       40 * time.Millisecond,
		MaxAttempts:    3,
		Backoff:        2 * time.Millisecond,
		BackoffFactor:  2,
	}
	rt, a := newFaultyApp(t, plan, Config{DType: tensor.UInt8, Delegate: tflite.DelegateHexagon})
	sts := runFrames(rt, a, 3)
	if len(sts) != 3 {
		t.Fatalf("frames = %d, want 3 (pipeline must survive the fault)", len(sts))
	}

	// 3 timed-out attempts plus backoffs 2ms and 4ms.
	wantRetry := 3*40*time.Millisecond + 2*time.Millisecond + 4*time.Millisecond
	first := sts[0]
	if first.Retry != wantRetry {
		t.Fatalf("frame 1 Retry = %v, want exactly %v", first.Retry, wantRetry)
	}
	if first.Fallback <= 0 {
		t.Fatal("frame 1 must pay the delegate teardown + CPU re-init cost")
	}
	if got, want := first.Tax(), first.Total-first.Inference+wantRetry+first.Fallback; got != want {
		t.Fatalf("frame 1 Tax = %v, want %v (stage tax + retry + fallback)", got, want)
	}
	if !a.Interpreter().FellBack() {
		t.Fatal("interpreter must report the fallback")
	}
	// The teardown is permanent: later frames run the CPU plan cleanly.
	for i, st := range sts[1:] {
		if st.Retry != 0 || st.Fallback != 0 {
			t.Fatalf("frame %d after fallback: retry=%v fallback=%v, want zero", i+2, st.Retry, st.Fallback)
		}
		if st.Inference <= 0 {
			t.Fatalf("frame %d did not run inference", i+2)
		}
		if st.Tax() != st.Total-st.Inference {
			t.Fatalf("frame %d tax accounting drifted", i+2)
		}
	}
}

// Acceptance demo shape: a Hexagon run whose delegate init fails
// completes every frame on the CPU interpreter instead of dying.
func TestDelegateInitFailureFallsBackToCPU(t *testing.T) {
	rt, a := newFaultyApp(t, faults.Plan{DelegateInitFailRate: 1},
		Config{DType: tensor.UInt8, Delegate: tflite.DelegateHexagon})
	sts := runFrames(rt, a, 4)
	if len(sts) != 4 {
		t.Fatalf("frames = %d, want 4", len(sts))
	}
	if !a.Interpreter().FellBack() {
		t.Fatal("delegate-init fault must force the CPU fallback")
	}
	for i, st := range sts {
		if st.Inference <= 0 {
			t.Fatalf("frame %d inference = %v", i+1, st.Inference)
		}
		if st.Retry != 0 || st.Fallback != 0 {
			t.Fatalf("init-time fallback must not charge per-frame retry/fallback, frame %d: %+v", i+1, st)
		}
	}
	// The init-time fallback costs extra InitTime relative to a clean run.
	rtClean, clean := newApp(t, "MobileNet 1.0 v1", tensor.UInt8, tflite.DelegateHexagon, false)
	runFrames(rtClean, clean, 1)
	if a.Interpreter().InitTime <= clean.Interpreter().InitTime {
		t.Fatalf("fallback InitTime %v must exceed clean InitTime %v",
			a.Interpreter().InitTime, clean.Interpreter().InitTime)
	}
}

// A PreOnDSP pipeline whose FastRPC session never comes up degrades to
// the managed CPU pre-processing path and keeps producing frames.
func TestPreDSPSessionFailureDegradesToCPU(t *testing.T) {
	rt, a := newFaultyApp(t, faults.Plan{SessionFailRate: 1, MaxAttempts: 2},
		Config{DType: tensor.UInt8, Delegate: tflite.DelegateCPU, PreOnDSP: true})
	sts := runFrames(rt, a, 3)
	if len(sts) != 3 {
		t.Fatalf("frames = %d, want 3", len(sts))
	}
	if !a.preDSPDown {
		t.Fatal("pre-DSP path must be marked down after session failure")
	}
	for i, st := range sts {
		if st.Pre <= 0 {
			t.Fatalf("frame %d pre = %v, want CPU fallback to run", i+1, st.Pre)
		}
	}
	// The first frame ate the failed session attempts inside Pre.
	if sts[0].Pre <= sts[1].Pre {
		t.Fatalf("frame 1 pre (%v) must exceed steady-state pre (%v): it paid the failed setup",
			sts[0].Pre, sts[1].Pre)
	}
}

// With a fixed seed and plan the whole faulty app run is deterministic.
func TestFaultyAppRunDeterministic(t *testing.T) {
	run := func() []FrameStats {
		rt, a := newFaultyApp(t, faults.Plan{RPCErrorRate: 0.3, StallRate: 0.3, Seed: 9},
			Config{DType: tensor.UInt8, Delegate: tflite.DelegateHexagon})
		return runFrames(rt, a, 5)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("frame counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d diverged: %+v vs %+v", i+1, a[i], b[i])
		}
	}
}
