package app

import (
	"fmt"
	"strconv"
	"time"

	"aitax/internal/capture"
	"aitax/internal/preproc"
	"aitax/internal/sim"
	"aitax/internal/telemetry"
	"aitax/internal/tflite"
)

// Stage identifies one node of the application's frame-processing graph.
// A camera frame traverses the whole graph; a served request enters
// mid-graph (its payload arrives over the wire, already captured) and
// exits after post-processing (the server serializes a response instead
// of rendering UI). See ProcessRange.
type Stage int

// The pipeline stages in graph order.
const (
	StageCapture Stage = iota
	StagePre
	StageInference
	StagePost
	StageUI
)

// String names the stage as it appears in spans and reports.
func (s Stage) String() string {
	switch s {
	case StageCapture:
		return "capture"
	case StagePre:
		return "pre"
	case StageInference:
		return "inference"
	case StagePost:
		return "post"
	case StageUI:
		return "ui"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// ParseStage resolves a stage name ("capture", "pre", "inference",
// "post", "ui") to its Stage.
func ParseStage(name string) (Stage, error) {
	for s := StageCapture; s <= StageUI; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("app: unknown stage %q (capture|pre|inference|post|ui)", name)
}

// frameRun is one request's traversal of the stage graph: the in-flight
// FrameStats, the enclosing span, and the capture state later stages
// consume. A full camera frame and a mid-graph served request share this
// carrier; stages a run never enters stay zero in its FrameStats.
type frameRun struct {
	a     *App
	st    FrameStats
	start sim.Time
	// frameNo is the app-lifetime frame index (GC cadence).
	frameNo int
	frame   *telemetry.ActiveSpan
	// spec is the model's pre-processing pipeline; capture's sensor
	// fusion may rewrite its rotation before pre runs.
	spec preproc.Spec
	// capFrame is the delivered camera frame (nil when the run entered
	// the graph past capture: the payload arrived over the wire).
	capFrame *capture.Frame
	// srcW/srcH are the pre stage's input dimensions (0 for text).
	srcW, srcH int
	to         Stage
	done       func(FrameStats)
}

// advance dispatches the run to stage s, or finishes it when the run's
// segment is exhausted.
func (r *frameRun) advance(s Stage) {
	if s > r.to || s > StageUI {
		r.finish()
		return
	}
	switch s {
	case StageCapture:
		r.a.stageCapture(r)
	case StagePre:
		r.a.stagePre(r)
	case StageInference:
		r.a.stageInference(r)
	case StagePost:
		r.a.stagePost(r)
	case StageUI:
		r.a.stageUI(r)
	}
}

// finish closes the run: total latency, root span, metrics, callback.
func (r *frameRun) finish() {
	r.st.Total = r.a.rt.Eng.Now().Sub(r.start)
	r.frame.End()
	r.a.recordFrame(r.st)
	if r.done != nil {
		r.done(r.st)
	}
}

// stageCapture obtains the input. Vision apps wait for the camera's
// sensor delivery, fuse the IMU orientation when the model rotates, and
// pay the bitmap formatting on the camera thread; language apps fetch
// the text input (IME/clipboard, negligible).
func (a *App) stageCapture(r *frameRun) {
	capSpan := a.rt.Tracer.Start("capture", "capture", telemetry.TrackCPU, r.frame)
	if r.spec.Tokenize {
		a.preThread.Exec(a.rt.RNG.Jitter(200*time.Microsecond, 0.2), func() {
			r.st.Capture = a.rt.Eng.Now().Sub(r.start)
			capSpan.End()
			r.advance(StagePre)
		})
		return
	}
	a.cam.Capture(func(f *capture.Frame) {
		r.capFrame = f
		afterFusion := func() {
			conv := a.stageDuration(a.cam.ConversionWork(), false)
			a.camThread.Exec(conv, func() {
				r.st.Capture = a.rt.Eng.Now().Sub(r.start)
				capSpan.End()
				r.advance(StagePre)
			})
		}
		if r.spec.RotateTurns != 0 {
			// Sensor fusion: the frame's rotation follows the IMU's
			// current orientation, read per frame.
			a.imu.ReadOrientation(func(turns int) {
				r.spec.RotateTurns = turns
				afterFusion()
			})
		} else {
			afterFusion()
		}
	})
}

// stagePre runs pre-processing: tokenization on the pre thread for
// language models, otherwise the pixel pipeline on the configured
// engine (CPU thread, or the DSP behind FastRPC when PreOnDSP is set).
func (a *App) stagePre(r *frameRun) {
	preW := r.spec.Work(r.srcW, r.srcH)
	preStart := a.rt.Eng.Now()
	preSpan := a.rt.Tracer.Start("pre", "preproc", telemetry.TrackCPU, r.frame)
	next := func() {
		if a.cfg.RealPreprocess && r.capFrame != nil {
			a.runRealPreprocess(r.capFrame, r.spec)
		}
		r.st.Pre = a.rt.Eng.Now().Sub(preStart)
		preSpan.End()
		r.advance(StageInference)
	}
	if r.spec.Tokenize {
		a.preThread.Exec(a.stageDuration(preW, false), next)
		return
	}
	a.runPre(preW, r.spec.Native, preSpan, next)
}

// stageInference invokes the model through the delegate.
func (a *App) stageInference(r *frameRun) {
	invStart := a.rt.Eng.Now()
	infSpan := a.rt.Tracer.Start("inference", "app", telemetry.TrackCPU, r.frame)
	a.ip.InvokeTraced(infSpan, func(rep tflite.Report) {
		r.st.Inference = a.rt.Eng.Now().Sub(invStart)
		r.st.Retry = rep.Retry
		r.st.Fallback = rep.FallbackCost
		infSpan.End()
		r.advance(StagePost)
	})
}

// stagePost runs task-specific post-processing.
func (a *App) stagePost(r *frameRun) {
	postStart := a.rt.Eng.Now()
	postSpan := a.rt.Tracer.Start("post", "postproc", telemetry.TrackCPU, r.frame)
	postW := a.ip.Model.PostWork(a.ip.DType)
	a.postThread.Exec(a.stageDuration(postW, true), func() {
		if a.cfg.RealPostprocess {
			a.runRealPostprocess()
		}
		r.st.Post = a.rt.Eng.Now().Sub(postStart)
		postSpan.End()
		r.advance(StageUI)
	})
}

// stageUI renders the result (plus the periodic GC pause).
func (a *App) stageUI(r *frameRun) {
	uiStart := a.rt.Eng.Now()
	uiSpan := a.rt.Tracer.Start("ui", "app", telemetry.TrackCPU, r.frame)
	ui := a.rt.RNG.Jitter(a.UIBase, a.UIJitterCV)
	if a.GCPeriod > 0 && r.frameNo%a.GCPeriod == 0 {
		ui += a.GCPause
		uiSpan.SetAttr("gc", "1")
		a.rt.Metrics.Inc("aitax_gc_pauses_total")
	}
	a.uiThread.Exec(ui, func() {
		r.st.UI = a.rt.Eng.Now().Sub(uiStart)
		uiSpan.End()
		r.advance(StageUI + 1)
	})
}

// ProcessRange runs the stage subgraph [from, to] and reports the stage
// breakdown of the stages that actually ran (the rest stay zero, so
// FrameStats.Tax remains exact for the segment). A served request enters
// at StagePre (its payload needs the pixel pipeline) or StageInference
// (the payload is a ready tensor) and exits after StagePost — the server
// serializes a response instead of rendering UI.
func (a *App) ProcessRange(from, to Stage, done func(FrameStats)) {
	if from < StageCapture || to > StageUI || from > to {
		panic(fmt.Sprintf("app: invalid stage range [%v, %v]", from, to))
	}
	r := &frameRun{a: a, start: a.rt.Eng.Now(), to: to, done: done}
	a.frames++
	r.frameNo = a.frames
	r.frame = a.rt.Tracer.Start("frame", "app", telemetry.TrackCPU, nil)
	r.frame.SetAttr("frame", strconv.Itoa(r.frameNo))
	r.spec = a.ip.Model.PreSpec(a.ip.DType)
	if !r.spec.Tokenize {
		r.srcW, r.srcH = a.cam.Width, a.cam.Height
	}
	r.advance(from)
}
