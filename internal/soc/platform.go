package soc

import (
	"errors"
	"fmt"
	"time"
)

// RPCParams are the FastRPC offload-transport costs of a platform
// (paper Fig. 7): session setup happens once per process, each call pays
// two kernel crossings plus cache maintenance proportional to the buffer.
type RPCParams struct {
	// SessionSetup maps the DSP into the application process (once).
	SessionSetup time.Duration
	// KernelCrossing is one user→kernel→driver traversal; a call makes
	// two round trips (submit and completion signal).
	KernelCrossing time.Duration
	// CacheFlushPerKB maintains coherency for shared buffers.
	CacheFlushPerKB time.Duration
	// DSPWakeup is the co-processor's dispatch latency per invocation.
	DSPWakeup time.Duration
}

// CallOverhead is the per-call (post-setup) transport cost for a payload
// of the given size.
func (p RPCParams) CallOverhead(payloadBytes int64) time.Duration {
	kb := (payloadBytes + 1023) / 1024
	return 4*p.KernelCrossing + time.Duration(kb)*p.CacheFlushPerKB + p.DSPWakeup
}

// SoC describes one Table-II platform.
type SoC struct {
	Name    string // product name, e.g. "Google Pixel 3"
	Chipset string // e.g. "Snapdragon 845"
	GPUName string // e.g. "Adreno 630"
	DSPName string // e.g. "Hexagon 685"

	BigCores    int
	LittleCores int
	Big         Device
	Little      Device
	GPU         Device
	DSP         Device

	RPC RPCParams

	// IdleTempC is the idle CPU temperature the paper cools to (§III-D).
	IdleTempC float64
}

// Devices returns the SoC's devices for iteration.
func (s *SoC) Devices() []*Device {
	return []*Device{&s.Big, &s.Little, &s.GPU, &s.DSP}
}

// Validate sanity-checks the platform description. Every failure wraps
// ErrBadSpec, so callers branch with errors.Is — the same typed-error
// contract Spec.Validate follows.
func (s *SoC) Validate() error {
	if s.BigCores <= 0 || s.LittleCores < 0 {
		return fmt.Errorf("%w: %s has invalid core counts", ErrBadSpec, s.Name)
	}
	for _, d := range s.Devices() {
		if d.FP32OpsPerSec <= 0 || d.Int8OpsPerSec <= 0 || d.ScalarOpsPerSec <= 0 || d.MemBytesPerSec <= 0 {
			return fmt.Errorf("%w: %s device %s has unset throughput", ErrBadSpec, s.Name, d.Name)
		}
	}
	if s.RPC.SessionSetup <= 0 || s.RPC.KernelCrossing <= 0 {
		return fmt.Errorf("%w: %s has unset RPC params", ErrBadSpec, s.Name)
	}
	return nil
}

// snapdragon builds one platform generation from its declarative spec.
// gen scales device throughput across the SD835→SD865 range (~18% per
// generation, matching the flagship cadence); the derivation formulas
// live in Spec.Build, shared with every fleet-catalog entry.
func snapdragon(name, chipset, gpu, dsp string, bigGHz, littleGHz, gen float64) *SoC {
	return tableIISpec(name, chipset, gpu, dsp, bigGHz, littleGHz, gen).MustBuild()
}

// Table-II platform constructors.

// OpenQ835 returns the Open-Q 835 µSOM (Snapdragon 835).
func OpenQ835() *SoC {
	return snapdragon("Open-Q 835 uSOM", "Snapdragon 835", "Adreno 540", "Hexagon 682", 2.45, 1.90, 1.00)
}

// Pixel3 returns the Google Pixel 3 (Snapdragon 845) — the platform the
// paper reports results on.
func Pixel3() *SoC {
	return snapdragon("Google Pixel 3", "Snapdragon 845", "Adreno 630", "Hexagon 685", 2.80, 1.77, 1.18)
}

// SD855HDK returns the Snapdragon 855 HDK.
func SD855HDK() *SoC {
	return snapdragon("Snapdragon 855 HDK", "Snapdragon 855", "Adreno 640", "Hexagon 690", 2.84, 1.80, 1.39)
}

// SD865HDK returns the Snapdragon 865 HDK.
func SD865HDK() *SoC {
	return snapdragon("Snapdragon 865 HDK", "Snapdragon 865", "Adreno 650", "Hexagon 698", 2.84, 1.80, 1.64)
}

// Platforms returns all Table-II platforms in row order.
func Platforms() []*SoC {
	return []*SoC{OpenQ835(), Pixel3(), SD855HDK(), SD865HDK()}
}

// ErrUnknownPlatform is the sentinel PlatformByName wraps when no
// platform matches; callers branch with errors.Is instead of matching
// message text.
var ErrUnknownPlatform = errors.New("soc: unknown platform")

// PlatformByName finds a platform by product or chipset name.
func PlatformByName(name string) (*SoC, error) {
	for _, p := range Platforms() {
		if p.Name == name || p.Chipset == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownPlatform, name)
}
