package soc

import (
	"errors"
	"fmt"
	"time"
)

// Tier is the market band a catalog entry belongs to. AI Benchmark
// (Ignatov et al.) shows AI-tax anatomy shifts sharply by chipset tier:
// flagship parts have big NPUs/DSPs and fast fabrics, entry parts run
// everything on slow CPU clusters — so fleet results are reported per
// tier.
type Tier int

// Market bands, ordered slowest to fastest.
const (
	TierEntry Tier = iota
	TierMid
	TierFlagship
	// NumTiers sizes per-tier accumulator arrays.
	NumTiers = 3
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierEntry:
		return "entry"
	case TierMid:
		return "mid"
	case TierFlagship:
		return "flagship"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Tiers lists the bands fastest first (the report order).
func Tiers() []Tier { return []Tier{TierFlagship, TierMid, TierEntry} }

// ErrBadSpec tags every catalog-spec validation error, so callers
// (catalog loaders, CLI flag parsing, tests) can branch with errors.Is
// instead of matching message text — the qos.ErrBadLadder pattern.
var ErrBadSpec = errors.New("soc: bad catalog spec")

// Spec is the declarative form of one SoC: the handful of published
// figures a data sheet gives (cluster layout and clocks, a generation
// multiplier, GPU/DSP sizing relative to the flagship template, RPC
// transport parameters, thermal envelope), from which Build derives a
// full device model. The four Table-II platforms are themselves built
// from Specs, so catalog entries and lab platforms share one code path.
type Spec struct {
	Name    string // product or reference-design name
	Chipset string // e.g. "Snapdragon 765G"
	GPUName string
	DSPName string

	// Cluster layout and peak clocks (GHz).
	BigCores    int
	LittleCores int
	BigGHz      float64
	LittleGHz   float64

	// Gen scales every throughput figure across generations
	// (1.0 = Snapdragon 835; the flagship cadence is ~18%/generation).
	Gen float64

	// GPUScale and DSPScale size the accelerators relative to the
	// flagship template (1.0 = the Adreno 6xx / Hexagon 6xx class parts
	// of Table II). Mid and entry chipsets ship far smaller blocks.
	GPUScale float64
	DSPScale float64

	// RPC overrides the FastRPC transport parameters. The zero value
	// derives them from Gen the way the Table-II constructors do.
	RPC RPCParams

	// Thermal envelope: idle die temperature and the throttle ceiling.
	// IdleTempC 0 defaults to 33 (§III-D); MaxTempC 0 defaults to 95.
	IdleTempC float64
	MaxTempC  float64
}

// Tier derives the market band from the generation multiplier: the
// SD835..SD865 flagships span 1.0..1.64, 7-series parts land around
// 0.55..0.9, everything below is entry silicon.
func (sp Spec) Tier() Tier {
	switch {
	case sp.Gen >= 0.95:
		return TierFlagship
	case sp.Gen >= 0.55:
		return TierMid
	default:
		return TierEntry
	}
}

// Defaults fills the zero-value conveniences (thermal envelope) without
// touching anything the caller set.
func (sp Spec) Defaults() Spec {
	if sp.IdleTempC == 0 {
		sp.IdleTempC = 33
	}
	if sp.MaxTempC == 0 {
		sp.MaxTempC = 95
	}
	return sp
}

// Validate sanity-checks the declarative spec. Every failure wraps
// ErrBadSpec.
func (sp Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("%w: unnamed spec", ErrBadSpec)
	}
	if sp.BigCores <= 0 {
		return fmt.Errorf("%w: %s: missing big cluster (BigCores %d)", ErrBadSpec, sp.Name, sp.BigCores)
	}
	if sp.LittleCores < 0 {
		return fmt.Errorf("%w: %s: negative little cluster (LittleCores %d)", ErrBadSpec, sp.Name, sp.LittleCores)
	}
	if sp.BigGHz <= 0 || (sp.LittleCores > 0 && sp.LittleGHz <= 0) {
		return fmt.Errorf("%w: %s: zero cluster clocks (big %.2f GHz, little %.2f GHz)",
			ErrBadSpec, sp.Name, sp.BigGHz, sp.LittleGHz)
	}
	if sp.Gen <= 0 {
		return fmt.Errorf("%w: %s: generation multiplier must be positive, got %g", ErrBadSpec, sp.Name, sp.Gen)
	}
	if sp.GPUScale <= 0 || sp.DSPScale <= 0 {
		return fmt.Errorf("%w: %s: accelerator scales must be positive (gpu %g, dsp %g)",
			ErrBadSpec, sp.Name, sp.GPUScale, sp.DSPScale)
	}
	if sp.RPC.SessionSetup < 0 || sp.RPC.KernelCrossing < 0 || sp.RPC.CacheFlushPerKB < 0 || sp.RPC.DSPWakeup < 0 {
		return fmt.Errorf("%w: %s: negative RPC params", ErrBadSpec, sp.Name)
	}
	if sp.IdleTempC < 0 || sp.MaxTempC < 0 {
		return fmt.Errorf("%w: %s: negative thermal envelope", ErrBadSpec, sp.Name)
	}
	if sp.MaxTempC != 0 && sp.IdleTempC != 0 && sp.MaxTempC <= sp.IdleTempC {
		return fmt.Errorf("%w: %s: MaxTempC %.1f must exceed IdleTempC %.1f",
			ErrBadSpec, sp.Name, sp.MaxTempC, sp.IdleTempC)
	}
	return nil
}

// Build derives the full device model from the spec — the same formulas
// the Table-II constructors use, generalized by the accelerator scales.
// Little-less layouts (LittleCores 0) reuse the big cluster figures at
// the little clock so schedulers still have a LITTLE target.
func (sp Spec) Build() (*SoC, error) {
	sp = sp.Defaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	g := sp.Gen
	const G = 1e9
	littleGHz := sp.LittleGHz
	if sp.LittleCores == 0 {
		littleGHz = sp.BigGHz
	}
	s := &SoC{
		Name: sp.Name, Chipset: sp.Chipset, GPUName: sp.GPUName, DSPName: sp.DSPName,
		BigCores: sp.BigCores, LittleCores: sp.LittleCores,
		Big: Device{
			Name: "kryo-big", Kind: CPUBig,
			// NEON FMA at ~45% achieved efficiency, SDOT-class int8.
			FP32OpsPerSec:   sp.BigGHz * 7 * G * g,
			Int8OpsPerSec:   sp.BigGHz * 12 * G * g,
			ScalarOpsPerSec: sp.BigGHz * 1.2 * G * g,
			MemBytesPerSec:  9 * G * g,
			ActivePowerW:    2.0,
		},
		Little: Device{
			Name: "kryo-little", Kind: CPULittle,
			FP32OpsPerSec:   littleGHz * 3.5 * G * g,
			Int8OpsPerSec:   littleGHz * 6 * G * g,
			ScalarOpsPerSec: littleGHz * 0.8 * G * g,
			MemBytesPerSec:  5 * G * g,
			ActivePowerW:    0.45,
		},
		GPU: Device{
			Name: "adreno", Kind: GPU,
			FP32OpsPerSec:   90 * G * g * sp.GPUScale,
			Int8OpsPerSec:   120 * G * g * sp.GPUScale,
			ScalarOpsPerSec: 4 * G * g * sp.GPUScale,
			MemBytesPerSec:  18 * G * g * sp.GPUScale,
			ActivePowerW:    3.6,
		},
		DSP: Device{
			Name: "hexagon", Kind: DSP,
			// HVX: enormous int8 throughput, weak fp32 and scalar paths.
			FP32OpsPerSec:   8 * G * g * sp.DSPScale,
			Int8OpsPerSec:   450 * G * g * sp.DSPScale,
			ScalarOpsPerSec: 1.5 * G * g * sp.DSPScale,
			MemBytesPerSec:  14 * G * g * sp.DSPScale,
			ActivePowerW:    1.1,
		},
		RPC:       sp.RPC,
		IdleTempC: sp.IdleTempC,
	}
	if s.RPC == (RPCParams{}) {
		s.RPC = RPCParams{
			SessionSetup:    time.Duration(float64(85*time.Millisecond) / g),
			KernelCrossing:  time.Duration(float64(28*time.Microsecond) / g),
			CacheFlushPerKB: time.Duration(float64(220*time.Nanosecond) / g),
			DSPWakeup:       time.Duration(float64(95*time.Microsecond) / g),
		}
	}
	return s, nil
}

// MustBuild is Build for known-good specs (the compiled-in catalog).
func (sp Spec) MustBuild() *SoC {
	s, err := sp.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// CatalogEntry pairs a spec with its population weight — the share of
// the simulated fleet running this chipset. Weights are relative; the
// sampler normalizes them.
type CatalogEntry struct {
	Spec   Spec
	Weight float64
}

// Catalog is the data-driven SoC population a fleet is sampled from.
type Catalog []CatalogEntry

// Validate checks every entry's spec and weight.
func (c Catalog) Validate() error {
	if len(c) == 0 {
		return fmt.Errorf("%w: empty catalog", ErrBadSpec)
	}
	total := 0.0
	seen := make(map[string]bool, len(c))
	for i, e := range c {
		if err := e.Spec.Defaults().Validate(); err != nil {
			return fmt.Errorf("catalog entry %d: %w", i, err)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("%w: entry %d (%s): weight must be positive, got %g",
				ErrBadSpec, i, e.Spec.Name, e.Weight)
		}
		if seen[e.Spec.Name] {
			return fmt.Errorf("%w: duplicate entry name %q", ErrBadSpec, e.Spec.Name)
		}
		seen[e.Spec.Name] = true
		total += e.Weight
	}
	if total <= 0 {
		return fmt.Errorf("%w: zero total weight", ErrBadSpec)
	}
	return nil
}

// TotalWeight sums the population weights.
func (c Catalog) TotalWeight() float64 {
	total := 0.0
	for _, e := range c {
		total += e.Weight
	}
	return total
}

// tableIISpec reconstructs the Spec behind a Table-II flagship.
func tableIISpec(name, chipset, gpu, dsp string, bigGHz, littleGHz, gen float64) Spec {
	return Spec{
		Name: name, Chipset: chipset, GPUName: gpu, DSPName: dsp,
		BigCores: 4, LittleCores: 4, BigGHz: bigGHz, LittleGHz: littleGHz,
		Gen: gen, GPUScale: 1, DSPScale: 1, IdleTempC: 33, MaxTempC: 95,
	}
}

// DefaultCatalog is the compiled-in device population: the four Table-II
// flagships plus mid-tier and entry-tier reference designs extrapolated
// down the Snapdragon product line (smaller Adreno/Hexagon blocks, lower
// clocks, slower fabrics), weighted the way real fleets skew — mid and
// entry silicon dominates, flagships are the minority. AI Benchmark's
// chipset survey is the shape being mimicked; absolute weights are
// round numbers, not market data.
func DefaultCatalog() Catalog {
	return Catalog{
		{Spec: tableIISpec("Snapdragon 865 HDK", "Snapdragon 865", "Adreno 650", "Hexagon 698", 2.84, 1.80, 1.64), Weight: 5},
		{Spec: tableIISpec("Snapdragon 855 HDK", "Snapdragon 855", "Adreno 640", "Hexagon 690", 2.84, 1.80, 1.39), Weight: 7},
		{Spec: tableIISpec("Google Pixel 3", "Snapdragon 845", "Adreno 630", "Hexagon 685", 2.80, 1.77, 1.18), Weight: 9},
		{Spec: tableIISpec("Open-Q 835 uSOM", "Snapdragon 835", "Adreno 540", "Hexagon 682", 2.45, 1.90, 1.00), Weight: 9},
		{Spec: Spec{
			Name: "SD765G reference", Chipset: "Snapdragon 765G", GPUName: "Adreno 620", DSPName: "Hexagon 696",
			BigCores: 2, LittleCores: 6, BigGHz: 2.40, LittleGHz: 1.80,
			Gen: 0.88, GPUScale: 0.55, DSPScale: 0.60, MaxTempC: 92,
		}, Weight: 14},
		{Spec: Spec{
			Name: "SD730 reference", Chipset: "Snapdragon 730", GPUName: "Adreno 618", DSPName: "Hexagon 688",
			BigCores: 2, LittleCores: 6, BigGHz: 2.20, LittleGHz: 1.80,
			Gen: 0.74, GPUScale: 0.42, DSPScale: 0.48, MaxTempC: 92,
		}, Weight: 16},
		{Spec: Spec{
			Name: "SD675 reference", Chipset: "Snapdragon 675", GPUName: "Adreno 612", DSPName: "Hexagon 685",
			BigCores: 2, LittleCores: 6, BigGHz: 2.00, LittleGHz: 1.70,
			Gen: 0.60, GPUScale: 0.32, DSPScale: 0.38, MaxTempC: 90,
		}, Weight: 13},
		{Spec: Spec{
			Name: "SD460 reference", Chipset: "Snapdragon 460", GPUName: "Adreno 610", DSPName: "Hexagon 683",
			BigCores: 4, LittleCores: 4, BigGHz: 1.80, LittleGHz: 1.60,
			Gen: 0.45, GPUScale: 0.22, DSPScale: 0.20, MaxTempC: 88,
		}, Weight: 12},
		{Spec: Spec{
			Name: "SD439 reference", Chipset: "Snapdragon 439", GPUName: "Adreno 505", DSPName: "Hexagon 536",
			BigCores: 4, LittleCores: 4, BigGHz: 1.95, LittleGHz: 1.45,
			Gen: 0.34, GPUScale: 0.15, DSPScale: 0.12, MaxTempC: 85,
		}, Weight: 9},
		{Spec: Spec{
			Name: "SD429 reference", Chipset: "Snapdragon 429", GPUName: "Adreno 504", DSPName: "Hexagon 536",
			BigCores: 2, LittleCores: 2, BigGHz: 1.95, LittleGHz: 1.45,
			Gen: 0.28, GPUScale: 0.12, DSPScale: 0.10, MaxTempC: 85,
		}, Weight: 6},
	}
}
