package soc

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// goodSpec returns a valid mid-tier spec for mutation tests.
func goodSpec() Spec {
	return Spec{
		Name: "test part", Chipset: "Snapdragon 7xx", GPUName: "Adreno", DSPName: "Hexagon",
		BigCores: 2, LittleCores: 6, BigGHz: 2.2, LittleGHz: 1.8,
		Gen: 0.7, GPUScale: 0.5, DSPScale: 0.5,
	}
}

// TestSpecValidateTable is the malformed-catalog-spec table: every bad
// shape must fail with an error wrapping ErrBadSpec (the typed-error
// contract mirroring qos.ErrBadLadder), and the message must name the
// offending field family.
func TestSpecValidateTable(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string // substring of the error
	}{
		{"unnamed", func(s *Spec) { s.Name = "" }, "unnamed"},
		{"zero big cores", func(s *Spec) { s.BigCores = 0 }, "missing big cluster"},
		{"negative big cores", func(s *Spec) { s.BigCores = -4 }, "missing big cluster"},
		{"negative little cores", func(s *Spec) { s.LittleCores = -1 }, "negative little cluster"},
		{"zero big clock", func(s *Spec) { s.BigGHz = 0 }, "zero cluster clocks"},
		{"negative big clock", func(s *Spec) { s.BigGHz = -2.2 }, "zero cluster clocks"},
		{"zero little clock", func(s *Spec) { s.LittleGHz = 0 }, "zero cluster clocks"},
		{"zero gen", func(s *Spec) { s.Gen = 0 }, "generation multiplier"},
		{"negative gen", func(s *Spec) { s.Gen = -1 }, "generation multiplier"},
		{"zero gpu scale", func(s *Spec) { s.GPUScale = 0 }, "accelerator scales"},
		{"negative dsp scale", func(s *Spec) { s.DSPScale = -0.5 }, "accelerator scales"},
		{"negative rpc session", func(s *Spec) { s.RPC.SessionSetup = -time.Millisecond }, "negative RPC"},
		{"negative rpc crossing", func(s *Spec) { s.RPC.KernelCrossing = -time.Microsecond }, "negative RPC"},
		{"negative rpc flush", func(s *Spec) { s.RPC.CacheFlushPerKB = -time.Nanosecond }, "negative RPC"},
		{"negative rpc wakeup", func(s *Spec) { s.RPC.DSPWakeup = -time.Microsecond }, "negative RPC"},
		{"negative idle temp", func(s *Spec) { s.IdleTempC = -5 }, "thermal"},
		{"inverted envelope", func(s *Spec) { s.IdleTempC = 50; s.MaxTempC = 40 }, "must exceed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := goodSpec()
			tc.mut(&sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("malformed spec validated")
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("error %v does not wrap ErrBadSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := goodSpec().Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

// TestSoCValidateTyped pins SoC.Validate to the same typed sentinel.
func TestSoCValidateTyped(t *testing.T) {
	s := Pixel3()
	s.BigCores = 0
	if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("core-count error %v does not wrap ErrBadSpec", err)
	}
	s = Pixel3()
	s.DSP.Int8OpsPerSec = 0
	if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("throughput error %v does not wrap ErrBadSpec", err)
	}
	s = Pixel3()
	s.RPC.SessionSetup = 0
	if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("rpc error %v does not wrap ErrBadSpec", err)
	}
}

// TestBuildRejectsBadSpec pins Build to the validation contract.
func TestBuildRejectsBadSpec(t *testing.T) {
	sp := goodSpec()
	sp.BigGHz = 0
	if _, err := sp.Build(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("Build accepted a bad spec (err %v)", err)
	}
}

// TestTableIISpecsMatchConstructors proves the declarative path derives
// the exact platforms the Table-II constructors ship: same throughputs,
// same RPC params, bit for bit — catalog entries and lab platforms are
// one code path.
func TestTableIISpecsMatchConstructors(t *testing.T) {
	for _, p := range Platforms() {
		entryFor := func(name string) Spec {
			for _, e := range DefaultCatalog() {
				if e.Spec.Name == name {
					return e.Spec
				}
			}
			t.Fatalf("platform %s missing from DefaultCatalog", name)
			return Spec{}
		}
		built, err := entryFor(p.Name).Build()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if *built != *p {
			t.Fatalf("%s: catalog build differs from constructor:\n%+v\nvs\n%+v", p.Name, built, p)
		}
	}
}

// TestSpecTiers pins the tier derivation across the default catalog:
// Table-II parts are flagship, 7-series mid, 4-series entry, and each
// tier is populated.
func TestSpecTiers(t *testing.T) {
	var seen [NumTiers]int
	for _, e := range DefaultCatalog() {
		seen[e.Spec.Tier()]++
	}
	for tier, n := range seen {
		if n == 0 {
			t.Errorf("tier %s has no catalog entries", Tier(tier))
		}
	}
	if got := tableIISpec("x", "", "", "", 2.8, 1.8, 1.18).Tier(); got != TierFlagship {
		t.Fatalf("SD845-class tier = %s, want flagship", got)
	}
	if got := (Spec{Gen: 0.7}).Tier(); got != TierMid {
		t.Fatalf("gen 0.7 tier = %s, want mid", got)
	}
	if got := (Spec{Gen: 0.3}).Tier(); got != TierEntry {
		t.Fatalf("gen 0.3 tier = %s, want entry", got)
	}
}

// TestDefaultCatalogValid validates the compiled-in population and its
// fleet-relevant shape: slower tiers outweigh flagships.
func TestDefaultCatalogValid(t *testing.T) {
	c := DefaultCatalog()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	var weight [NumTiers]float64
	for _, e := range c {
		weight[e.Spec.Tier()] += e.Weight
	}
	if weight[TierFlagship] >= weight[TierMid]+weight[TierEntry] {
		t.Fatalf("flagship weight %g must be the minority (mid %g, entry %g)",
			weight[TierFlagship], weight[TierMid], weight[TierEntry])
	}
	if c.TotalWeight() <= 0 {
		t.Fatal("zero total weight")
	}
}

// TestCatalogValidateRejects covers catalog-level failures.
func TestCatalogValidateRejects(t *testing.T) {
	if err := (Catalog{}).Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty catalog error %v", err)
	}
	bad := Catalog{{Spec: goodSpec(), Weight: 0}}
	if err := bad.Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("zero-weight error %v", err)
	}
	dup := Catalog{{Spec: goodSpec(), Weight: 1}, {Spec: goodSpec(), Weight: 1}}
	if err := dup.Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("duplicate-name error %v", err)
	}
	mangled := goodSpec()
	mangled.Gen = -1
	if err := (Catalog{{Spec: mangled, Weight: 1}}).Validate(); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad-spec error %v", err)
	}
}

// TestLittlelessBuild: a big-only layout still builds all four devices.
func TestLittlelessBuild(t *testing.T) {
	sp := goodSpec()
	sp.LittleCores = 0
	sp.LittleGHz = 0
	s, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMidTierIsSlower: catalog extrapolation must preserve the ordering
// the tiers are named for.
func TestMidTierIsSlower(t *testing.T) {
	var flag, entry *SoC
	for _, e := range DefaultCatalog() {
		switch {
		case e.Spec.Name == "Google Pixel 3":
			flag = e.Spec.MustBuild()
		case e.Spec.Name == "SD439 reference":
			entry = e.Spec.MustBuild()
		}
	}
	if flag == nil || entry == nil {
		t.Fatal("catalog entries missing")
	}
	if entry.DSP.Int8OpsPerSec >= flag.DSP.Int8OpsPerSec {
		t.Fatal("entry DSP must be slower than flagship")
	}
	if entry.Big.FP32OpsPerSec >= flag.Big.FP32OpsPerSec {
		t.Fatal("entry CPU must be slower than flagship")
	}
	if entry.RPC.KernelCrossing <= flag.RPC.KernelCrossing {
		t.Fatal("entry kernel crossings must be costlier")
	}
}
