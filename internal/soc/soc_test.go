package soc

import (
	"testing"
	"time"

	"aitax/internal/tensor"
	"aitax/internal/work"
)

func TestPlatformsValidate(t *testing.T) {
	ps := Platforms()
	if len(ps) != 4 {
		t.Fatalf("platforms = %d, want 4 (Table II)", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPlatformNamesMatchTableII(t *testing.T) {
	want := map[string][2]string{
		"Open-Q 835 uSOM":    {"Adreno 540", "Hexagon 682"},
		"Google Pixel 3":     {"Adreno 630", "Hexagon 685"},
		"Snapdragon 855 HDK": {"Adreno 640", "Hexagon 690"},
		"Snapdragon 865 HDK": {"Adreno 650", "Hexagon 698"},
	}
	for _, p := range Platforms() {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected platform %s", p.Name)
			continue
		}
		if p.GPUName != w[0] || p.DSPName != w[1] {
			t.Errorf("%s accelerators = %s/%s, want %s/%s", p.Name, p.GPUName, p.DSPName, w[0], w[1])
		}
	}
}

func TestPlatformByName(t *testing.T) {
	if _, err := PlatformByName("Google Pixel 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformByName("Snapdragon 845"); err != nil {
		t.Fatal("chipset lookup failed")
	}
	if _, err := PlatformByName("iPhone"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestGenerationsGetFaster(t *testing.T) {
	w := work.Work{Ops: 1e9, Bytes: 1e6, Vectorizable: true}
	ps := Platforms()
	for i := 1; i < len(ps); i++ {
		prev := ps[i-1].DSP.TimeFor(w, tensor.Int8)
		cur := ps[i].DSP.TimeFor(w, tensor.Int8)
		if cur >= prev {
			t.Errorf("%s DSP (%v) not faster than %s (%v)", ps[i].Name, cur, ps[i-1].Name, prev)
		}
	}
}

func TestDSPInt8BeatsCPU(t *testing.T) {
	p := Pixel3()
	w := work.Work{Ops: 1e9, Bytes: 10e6, Vectorizable: true}
	dsp := p.DSP.TimeFor(w, tensor.Int8)
	cpu := p.Big.TimeFor(w, tensor.Int8)
	if float64(cpu)/float64(dsp) < 4 {
		t.Errorf("DSP int8 speedup = %.1fx, want >4x (cpu=%v dsp=%v)",
			float64(cpu)/float64(dsp), cpu, dsp)
	}
}

func TestDSPFP32IsWeak(t *testing.T) {
	// The Hexagon's fp32 path must NOT beat the big CPU cluster: this is
	// why fp32 models stay on CPU/GPU in the paper.
	p := Pixel3()
	w := work.Work{Ops: 1e9, Bytes: 1e6, Vectorizable: true}
	if p.DSP.TimeFor(w, tensor.Float32) < p.Big.TimeFor(w, tensor.Float32) {
		t.Error("DSP fp32 should not beat a big core")
	}
}

func TestGPUFasterThanSingleCPU(t *testing.T) {
	p := Pixel3()
	w := work.Work{Ops: 2e9, Bytes: 10e6, Vectorizable: true}
	if p.GPU.TimeFor(w, tensor.Float32) >= p.Big.TimeFor(w, tensor.Float32) {
		t.Error("GPU fp32 must beat one big core")
	}
}

func TestRooflineMemoryBound(t *testing.T) {
	d := Device{Name: "d", FP32OpsPerSec: 1e12, Int8OpsPerSec: 1e12,
		ScalarOpsPerSec: 1e12, MemBytesPerSec: 1e9}
	// 1 GB at 1 GB/s = 1 s regardless of tiny op count.
	w := work.Work{Ops: 10, Bytes: 1e9, Vectorizable: true}
	got := d.TimeFor(w, tensor.Float32)
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Fatalf("memory-bound time = %v, want ~1s", got)
	}
}

func TestRooflineComputeBound(t *testing.T) {
	d := Device{Name: "d", FP32OpsPerSec: 1e9, Int8OpsPerSec: 2e9,
		ScalarOpsPerSec: 1e8, MemBytesPerSec: 1e12}
	w := work.Work{Ops: 1e9, Bytes: 10, Vectorizable: true}
	if got := d.TimeFor(w, tensor.Float32); got < 990*time.Millisecond {
		t.Fatalf("compute-bound fp32 = %v, want ~1s", got)
	}
	if got := d.TimeFor(w, tensor.Int8); got > 510*time.Millisecond {
		t.Fatalf("int8 = %v, want ~0.5s", got)
	}
	// Non-vectorizable work uses the scalar path.
	sw := work.Work{Ops: 1e8, Bytes: 10, Vectorizable: false}
	if got := d.TimeFor(sw, tensor.Float32); got < 990*time.Millisecond {
		t.Fatalf("scalar = %v, want ~1s", got)
	}
}

func TestSpeedup(t *testing.T) {
	fast := Device{Name: "f", FP32OpsPerSec: 2e9, Int8OpsPerSec: 2e9, ScalarOpsPerSec: 2e9, MemBytesPerSec: 1e12}
	slow := Device{Name: "s", FP32OpsPerSec: 1e9, Int8OpsPerSec: 1e9, ScalarOpsPerSec: 1e9, MemBytesPerSec: 1e12}
	w := work.Work{Ops: 1e9, Bytes: 1, Vectorizable: true}
	if sp := fast.Speedup(&slow, w, tensor.Float32); sp < 1.9 || sp > 2.1 {
		t.Fatalf("speedup = %v, want ~2", sp)
	}
}

func TestRPCCallOverhead(t *testing.T) {
	p := Pixel3()
	small := p.RPC.CallOverhead(1024)
	large := p.RPC.CallOverhead(10 * 1024 * 1024)
	if large <= small {
		t.Fatal("larger payloads must cost more cache maintenance")
	}
	// Setup dominates a single call by orders of magnitude (Fig. 8).
	if p.RPC.SessionSetup < 50*small {
		t.Fatalf("session setup (%v) must dwarf per-call overhead (%v)", p.RPC.SessionSetup, small)
	}
}

func TestIdleTemp(t *testing.T) {
	for _, p := range Platforms() {
		if p.IdleTempC != 33 {
			t.Errorf("%s idle temp = %v, want 33 (§III-D)", p.Name, p.IdleTempC)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{CPUBig, CPULittle, GPU, DSP} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestDevicesList(t *testing.T) {
	p := Pixel3()
	if len(p.Devices()) != 4 {
		t.Fatalf("devices = %d, want 4", len(p.Devices()))
	}
}

func TestEnergyFor(t *testing.T) {
	p := Pixel3()
	w := work.Work{Ops: 1e9, Bytes: 1e6, Vectorizable: true}
	eBig := p.Big.EnergyFor(w, tensor.Float32)
	eDSP := p.DSP.EnergyFor(w, tensor.Int8)
	if eBig <= 0 || eDSP <= 0 {
		t.Fatal("energy must be positive")
	}
	// The DSP's int8 path is far more energy-efficient than a big core.
	if eDSP >= eBig {
		t.Fatalf("DSP int8 energy %v must beat big-core fp32 %v", eDSP, eBig)
	}
}

func TestActivePowerSet(t *testing.T) {
	for _, p := range Platforms() {
		for _, d := range p.Devices() {
			if d.ActivePowerW <= 0 {
				t.Fatalf("%s %s has no power figure", p.Name, d.Name)
			}
		}
	}
	p := Pixel3()
	if p.Little.ActivePowerW >= p.Big.ActivePowerW {
		t.Fatal("little cores must draw less than big cores")
	}
}
