// Package soc models the hardware of the Snapdragon-class mobile
// platforms in the paper's Table II: big.LITTLE CPU clusters, an
// Adreno-class GPU, and a Hexagon-class DSP with HVX vector units, joined
// by a DDR memory fabric. Devices turn device-independent work.Work into
// virtual time with a simple roofline (compute-bound vs memory-bound)
// plus per-dispatch overheads; the absolute numbers are calibrated so
// published latency magnitudes and, more importantly, the paper's ratios
// and crossovers are reproduced.
package soc

import (
	"fmt"
	"time"

	"aitax/internal/tensor"
	"aitax/internal/work"
)

// Kind identifies a compute device class.
type Kind int

// Device classes present on the studied SoCs.
const (
	CPUBig Kind = iota
	CPULittle
	GPU
	DSP
)

// String names the device class.
func (k Kind) String() string {
	switch k {
	case CPUBig:
		return "cpu-big"
	case CPULittle:
		return "cpu-little"
	case GPU:
		return "gpu"
	case DSP:
		return "dsp"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Device is one compute unit with effective (achievable, not peak)
// throughput figures.
type Device struct {
	Name string
	Kind Kind

	// Effective throughputs in operations per second.
	FP32OpsPerSec   float64 // vectorizable fp32 work
	Int8OpsPerSec   float64 // vectorizable int8 work
	ScalarOpsPerSec float64 // non-vectorizable work

	// MemBytesPerSec is the achievable memory bandwidth from this device.
	MemBytesPerSec float64

	// ActivePowerW is the unit's active power draw, used for the
	// energy accounting behind NNAPI's LOW_POWER preference.
	ActivePowerW float64
}

// EnergyFor returns the energy (joules) of executing w at precision dt.
func (d *Device) EnergyFor(w work.Work, dt tensor.DType) float64 {
	return d.ActivePowerW * d.TimeFor(w, dt).Seconds()
}

// TimeFor converts a unit of work at element precision dt into execution
// time on this device: the maximum of its compute time and memory time.
func (d *Device) TimeFor(w work.Work, dt tensor.DType) time.Duration {
	rate := d.ScalarOpsPerSec
	if w.Vectorizable {
		if dt == tensor.Int8 || dt == tensor.UInt8 {
			rate = d.Int8OpsPerSec
		} else {
			rate = d.FP32OpsPerSec
		}
	}
	if rate <= 0 || d.MemBytesPerSec <= 0 {
		panic(fmt.Sprintf("soc: device %s has unset throughput", d.Name))
	}
	tc := float64(w.Ops) / rate
	tm := float64(w.Bytes) / d.MemBytesPerSec
	t := tc
	if tm > t {
		t = tm
	}
	return time.Duration(t * float64(time.Second))
}

// Speedup returns how much faster this device executes w than other.
func (d *Device) Speedup(other *Device, w work.Work, dt tensor.DType) float64 {
	a := d.TimeFor(w, dt)
	b := other.TimeFor(w, dt)
	if a == 0 {
		return 0
	}
	return float64(b) / float64(a)
}
