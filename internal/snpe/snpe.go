// Package snpe models Qualcomm's Snapdragon Neural Processing Engine,
// the vendor framework the paper contrasts with NNAPI (§IV-B). SNPE
// converts a model ahead of time for one runtime (CPU, GPU or DSP) and
// rejects models containing ops that runtime cannot execute — the "lack
// of model variety" the paper mentions — but what it does run, it runs
// with highly tuned kernels, which is why the DSP outperforms the CPU
// under SNPE where NNAPI failed to deliver.
package snpe

import (
	"fmt"

	"aitax/internal/driver"
	"aitax/internal/nn"
	"aitax/internal/tensor"
)

// RuntimeKind selects the SNPE runtime a model is converted for.
type RuntimeKind int

// SNPE runtimes.
const (
	RuntimeCPU RuntimeKind = iota
	RuntimeGPU
	RuntimeDSP
)

// String names the runtime.
func (k RuntimeKind) String() string {
	switch k {
	case RuntimeCPU:
		return "CPU"
	case RuntimeGPU:
		return "GPU"
	case RuntimeDSP:
		return "DSP"
	default:
		return fmt.Sprintf("RUNTIME(%d)", int(k))
	}
}

// SDK is a process's SNPE instance, holding one target per runtime.
type SDK struct {
	CPU driver.Target
	GPU driver.Target
	DSP driver.Target
}

// target returns the driver target for a runtime kind.
func (s *SDK) target(k RuntimeKind) driver.Target {
	switch k {
	case RuntimeCPU:
		return s.CPU
	case RuntimeGPU:
		return s.GPU
	case RuntimeDSP:
		return s.DSP
	default:
		return nil
	}
}

// Net is a converted (DLC-style) model bound to one runtime.
type Net struct {
	Graph   *nn.Graph
	DType   tensor.DType
	Runtime RuntimeKind
	target  driver.Target
}

// Load converts a graph for the given runtime. Unlike NNAPI there is no
// partitioning: if any op is unsupported the conversion fails, exactly
// like an unconvertible DLC.
func (s *SDK) Load(g *nn.Graph, dt tensor.DType, k RuntimeKind) (*Net, error) {
	t := s.target(k)
	if t == nil {
		return nil, fmt.Errorf("snpe: runtime %v not configured", k)
	}
	for _, op := range g.Ops() {
		if !t.Supports(op, dt) {
			return nil, fmt.Errorf("snpe: %s: op %s (%v) unsupported on %v runtime",
				g.Name, op.Name, op.Kind, k)
		}
	}
	return &Net{Graph: g, DType: dt, Runtime: k, target: t}, nil
}

// Execute runs one inference on the bound runtime.
func (n *Net) Execute(done func(driver.Result)) {
	n.target.Execute(n.Graph.Ops(), n.DType, done)
}
