package snpe

import (
	"testing"

	"aitax/internal/driver"
	"aitax/internal/fastrpc"
	"aitax/internal/models"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

func newSDK() (*sim.Engine, *SDK, *sched.Scheduler) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := soc.Pixel3()
	dspRes := sim.NewResource(eng, "dsp", 1)
	gpuQ := sim.NewResource(eng, "gpu", 1)
	ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
	sdk := &SDK{
		CPU: driver.NewCPUTarget("snpe-cpu", sch, &p.Big, 4),
		GPU: driver.NewGPUTarget("snpe-gpu", eng, &p.GPU, gpuQ, driver.SNPESupports),
		DSP: driver.NewDSPTarget("snpe-dsp", &p.DSP, ch, 0.95, driver.SNPESupports),
	}
	return eng, sdk, sch
}

func TestLoadCNNOnDSP(t *testing.T) {
	_, sdk, _ := newSDK()
	m, _ := models.ByName("MobileNet 1.0 v1")
	net, err := sdk.Load(m.Graph, tensor.UInt8, RuntimeDSP)
	if err != nil {
		t.Fatalf("load failed: %v", err)
	}
	if net.Runtime != RuntimeDSP {
		t.Fatal("wrong runtime")
	}
}

func TestLoadBERTFailsOnDSP(t *testing.T) {
	// The "lack of model variety" effect: SNPE rejects models with ops
	// outside its converted set.
	_, sdk, _ := newSDK()
	m, _ := models.ByName("Mobile BERT")
	if _, err := sdk.Load(m.Graph, tensor.Float32, RuntimeDSP); err == nil {
		t.Fatal("transformer model must fail DLC conversion")
	}
}

func TestSNPEDSPBeatsCPUWarm(t *testing.T) {
	// §IV-B: "When we switch the framework to the vendor-optimized
	// Qualcomm SNPE, the DSP's performance is significantly better...
	// outperforms the CPU (as one would expect)."
	m, _ := models.ByName("MobileNet 1.0 v1")

	eng1, sdk1, _ := newSDK()
	netCPU, err := sdk1.Load(m.Graph, tensor.UInt8, RuntimeCPU)
	if err != nil {
		t.Fatal(err)
	}
	netCPU.Execute(nil)
	cpuTime := eng1.Run().Duration()

	eng2, sdk2, _ := newSDK()
	netDSP, _ := sdk2.Load(m.Graph, tensor.UInt8, RuntimeDSP)
	var warm driver.Result
	netDSP.Execute(func(driver.Result) { // cold run pays session setup
		netDSP.Execute(func(r driver.Result) { warm = r })
	})
	eng2.Run()
	if warm.Total() >= cpuTime {
		t.Fatalf("SNPE DSP warm (%v) must beat CPU (%v)", warm.Total(), cpuTime)
	}
	if float64(cpuTime)/float64(warm.Total()) < 2 {
		t.Fatalf("SNPE DSP speedup only %.1fx", float64(cpuTime)/float64(warm.Total()))
	}
}

func TestLoadAlexNetOnDSP(t *testing.T) {
	// SNPE's op set covers LRN; NNAPI's does not.
	_, sdk, _ := newSDK()
	m, _ := models.ByName("AlexNet")
	if _, err := sdk.Load(m.Graph, tensor.Float32, RuntimeDSP); err != nil {
		t.Fatalf("AlexNet must convert under SNPE: %v", err)
	}
}

func TestUnknownRuntime(t *testing.T) {
	_, sdk, _ := newSDK()
	m, _ := models.ByName("MobileNet 1.0 v1")
	if _, err := sdk.Load(m.Graph, tensor.Float32, RuntimeKind(9)); err == nil {
		t.Fatal("unknown runtime accepted")
	}
}

func TestRuntimeStrings(t *testing.T) {
	if RuntimeCPU.String() != "CPU" || RuntimeGPU.String() != "GPU" || RuntimeDSP.String() != "DSP" {
		t.Fatal("runtime names wrong")
	}
}
