package serve

import (
	"strings"
	"testing"
	"time"

	"aitax/internal/loadgen"
	"aitax/internal/models"
	"aitax/internal/obs"
	"aitax/internal/qos"
	"aitax/internal/tflite"
	"aitax/internal/thermal"
)

// qosConfig is testConfig plus a second classification model (the
// downshift target) and a fast-tick brownout policy driven mostly by
// queue pressure.
func qosConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig(t)
	eff, err := models.ByName("EfficientNet-Lite0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Models = append(cfg.Models, eff)
	// On this device EfficientNet-Lite0 is the expensive model (~226ms
	// NNAPI b1) and MobileNet the cheap fallback (~81ms), so the
	// downshift runs EfficientNet -> MobileNet. The 300ms objective is
	// comfortably met by any uncontended request and breached by queue
	// waits during the storm.
	cfg.SLO = []obs.Objective{{Model: "EfficientNet-Lite0", Latency: 300 * time.Millisecond, Target: 0.95}}
	cfg.QoS = &QoSPolicy{
		Ladder: qos.Ladder{
			Tick:       5 * time.Millisecond,
			Hold:       2,
			ShortTicks: 2,
			LongTicks:  4,
		},
		Downshift:     map[string]string{"EfficientNet-Lite0": "MobileNet 1.0 v1"},
		SteerDelegate: tflite.DelegateGPU,
	}
	return cfg
}

// storm builds a burst-lull-calm arrival schedule: a dense mixed-class
// burst that overflows the queue and torches the SLO, a lull long
// enough for the backlog to drain and the burn windows to clear, then a
// sparse standard-class tail the system can serve within the objective
// at level 0 — so the ladder must climb all the way up and then walk
// all the way back down.
func storm(model string) []loadgen.Arrival {
	var arr []loadgen.Arrival
	id := 0
	add := func(at time.Duration, class string) {
		arr = append(arr, loadgen.Arrival{ID: id, At: at, Model: model, Class: class})
		id++
	}
	// Burst: one arrival per ms for 80ms, alternating standard and
	// best-effort.
	for i := 0; i < 80; i++ {
		class := ""
		if i%2 == 1 {
			class = "best-effort"
		}
		add(time.Duration(i)*time.Millisecond, class)
	}
	// Calm tail after a lull: one standard arrival per 250ms.
	for i := 0; i < 8; i++ {
		add(900*time.Millisecond+time.Duration(i)*250*time.Millisecond, "")
	}
	return arr
}

func TestParseDownshift(t *testing.T) {
	m, err := ParseDownshift("A=B, C = D")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["A"] != "B" || m["C"] != "D" {
		t.Fatalf("parsed %v", m)
	}
	for _, bad := range []string{"", "A", "A=", "=B", "A=B,A=C"} {
		if _, err := ParseDownshift(bad); err == nil {
			t.Errorf("ParseDownshift(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateQoSPolicy(t *testing.T) {
	good := qosConfig(t)
	if err := good.Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no slo", func(c *Config) { c.SLO = nil }},
		{"steer equals serving delegate", func(c *Config) { c.QoS.SteerDelegate = c.Delegate }},
		{"downshift source unloaded", func(c *Config) { c.QoS.Downshift = map[string]string{"AlexNet": "EfficientNet-Lite0"} }},
		{"downshift target unloaded", func(c *Config) { c.QoS.Downshift = map[string]string{"MobileNet 1.0 v1": "AlexNet"} }},
		{"downshift to itself", func(c *Config) {
			c.QoS.Downshift = map[string]string{"EfficientNet-Lite0": "EfficientNet-Lite0"}
		}},
		{"bad ladder", func(c *Config) {
			// Explicit non-zero thresholds survive Defaults(); exit equal to
			// enter kills the hysteresis band and must be rejected.
			c.QoS.Ladder.Enter = [qos.NumRungs]float64{0.5, 0.7, 0.9}
			c.QoS.Ladder.Exit = [qos.NumRungs]float64{0.5, 0.7, 0.9}
		}},
		{"bad thermal", func(c *Config) { c.QoS.Thermal = &thermal.Model{} }},
	}
	for _, tc := range cases {
		cfg := qosConfig(t)
		tc.mutate(&cfg)
		if err := cfg.Defaults().Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", tc.name)
		}
	}
	// Chained downshift needs a third classification model. Validation
	// never measures, so SqueezeNet's missing quantized variant is fine.
	cfg := qosConfig(t)
	sq, err := models.ByName("SqueezeNet")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Models = append(cfg.Models, sq)
	cfg.QoS.Downshift = map[string]string{
		"MobileNet 1.0 v1":   "EfficientNet-Lite0",
		"EfficientNet-Lite0": "SqueezeNet",
	}
	if err := cfg.Defaults().Validate(); err == nil {
		t.Error("chained downshift accepted")
	}
	// Cross-task downshift.
	cfg = qosConfig(t)
	dl, err := models.ByName("Deeplab-v3 MobileNet-v2")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Models = append(cfg.Models, dl)
	cfg.QoS.Downshift = map[string]string{"MobileNet 1.0 v1": "Deeplab-v3 MobileNet-v2"}
	if err := cfg.Defaults().Validate(); err == nil {
		t.Error("cross-task downshift accepted")
	}
}

func TestBrownoutLadderEngagesAndRecovers(t *testing.T) {
	cfg := qosConfig(t).Defaults()
	table := buildTable(t, cfg, 0)
	res, err := Simulate(cfg, table, storm("EfficientNet-Lite0"), false)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Degradation
	if d == nil {
		t.Fatal("QoS run produced no degradation record")
	}
	if !d.FullyEngaged() {
		t.Fatalf("ladder never reached L%d: %+v", qos.NumRungs, d.Transitions)
	}
	if !d.Recovered() {
		t.Fatalf("ladder never recovered to L0: %+v", d.Transitions)
	}
	if d.Shed[qos.BestEffort] == 0 {
		t.Fatal("no best-effort traffic shed during the storm")
	}
	if d.Shed[qos.Interactive] != 0 || d.Shed[qos.Standard] != 0 {
		t.Fatalf("shed protected classes: %v", d.Shed)
	}
	if d.Downshifted == 0 {
		t.Fatal("no requests downshifted at L2+")
	}
	if d.SteeredBatches == 0 {
		t.Fatal("no batches steered at L3")
	}
	// Every shed/downshift is visible in the outcomes too.
	sheds, downshifted, steered := 0, 0, 0
	for _, o := range res.Outcomes {
		if o.Shed {
			sheds++
			if o.Class != qos.BestEffort {
				t.Fatalf("shed a %s request", o.Class)
			}
		}
		if o.ServedAs != "" {
			downshifted++
			if o.ServedAs != "MobileNet 1.0 v1" {
				t.Fatalf("downshifted to %q", o.ServedAs)
			}
		}
		if o.Steered {
			steered++
		}
	}
	if sheds != d.ShedTotal() || downshifted != d.Downshifted {
		t.Fatalf("outcome census (shed %d, downshift %d) disagrees with record (%d, %d)",
			sheds, downshifted, d.ShedTotal(), d.Downshifted)
	}
	if steered == 0 {
		t.Fatal("no steered outcomes")
	}
	// Transition timeline is ordered and starts with a climb from L0.
	for i, tr := range d.Transitions {
		if i > 0 && tr.At < d.Transitions[i-1].At {
			t.Fatalf("transitions out of order: %+v", d.Transitions)
		}
	}
	if d.Transitions[0].From != 0 || d.Transitions[0].To != 1 {
		t.Fatalf("first transition %+v, want L0->L1", d.Transitions[0])
	}
}

func TestBrownoutObserveBaselineActsNever(t *testing.T) {
	cfg := qosConfig(t)
	cfg.QoS.Observe = true
	cfg = cfg.Defaults()
	table := buildTable(t, cfg, 0)
	res, err := Simulate(cfg, table, storm("EfficientNet-Lite0"), false)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Degradation
	if d == nil || !d.Observe {
		t.Fatalf("observe run not marked: %+v", d)
	}
	if len(d.Transitions) != 0 || d.ShedTotal() != 0 || d.Downshifted != 0 || d.SteeredBatches != 0 {
		t.Fatalf("frozen controller acted: %+v", d)
	}
	if d.Ticks == 0 {
		t.Fatal("frozen controller never ticked")
	}
	for _, o := range res.Outcomes {
		if o.Shed || o.ServedAs != "" || o.Steered {
			t.Fatalf("frozen run degraded an outcome: %+v", o)
		}
	}
}

func TestBrownoutReportDeterministicAcrossParallelism(t *testing.T) {
	arrivals := storm("EfficientNet-Lite0")
	var reports []string
	for _, par := range []int{1, 2, 8} {
		cfg := qosConfig(t).Defaults()
		table := buildTable(t, cfg, par)
		res, err := Simulate(cfg, table, arrivals, true)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, res.Report(cfg, "storm"))
	}
	if reports[0] != reports[1] || reports[0] != reports[2] {
		t.Fatal("degradation report differs across cost-table parallelism")
	}
	for _, want := range []string{"degradation anatomy", "per-class latency", "best-effort", "transitions"} {
		if !strings.Contains(reports[0], want) {
			t.Fatalf("report missing %q:\n%s", want, reports[0])
		}
	}
}

func TestThermalSteeringEngagesBeforeTrip(t *testing.T) {
	cfg := qosConfig(t)
	// Thermal-driven run: the SLO covers EfficientNet, but the traffic
	// is all MobileNet, so burn stays zero and the die is what climbs
	// the ladder. A wide steer headroom band (20C) starts thermal
	// pressure at 70C, between throttle start (72C) and trip (90C), so
	// batches throttle first, then steer — and the trip never fires.
	cfg.QoS.Ladder.Enter = [qos.NumRungs]float64{0.3, 0.4, 0.5}
	cfg.QoS.Ladder.Exit = [qos.NumRungs]float64{0.15, 0.2, 0.25}
	cfg.QoS.Ladder.SteerHeadroomC = 20
	th, err := thermal.Parse("tau=150ms,trip=90,start=72")
	if err != nil {
		t.Fatal(err)
	}
	cfg.QoS.Thermal = th
	cfg = cfg.Defaults()
	table := buildTable(t, cfg, 0)
	// Steady near-saturating standard stream: MobileNet b1 is ~81ms of
	// NNAPI service, arrivals land every 70ms.
	var arrivals []loadgen.Arrival
	for i := 0; i < 30; i++ {
		arrivals = append(arrivals, loadgen.Arrival{
			ID: i, At: time.Duration(i) * 70 * time.Millisecond, Model: "MobileNet 1.0 v1",
		})
	}
	res, err := Simulate(cfg, table, arrivals, false)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Degradation
	if d.SteeredBatches == 0 {
		t.Fatalf("hot die never steered: %+v", d)
	}
	if d.ThrottledBatches == 0 {
		t.Fatalf("die above throttle start never throttled a batch: %+v", d)
	}
	// Steering must engage from thermal pressure before any hard trip.
	var steerAt time.Duration = -1
	for _, tr := range d.Transitions {
		if tr.To == qos.NumRungs {
			steerAt = tr.At
			break
		}
	}
	if steerAt < 0 {
		t.Fatalf("no L%d transition: %+v", qos.NumRungs, d.Transitions)
	}
	if d.Tripped && d.TripAt <= steerAt {
		t.Fatalf("trip at %v beat steering at %v", d.TripAt, steerAt)
	}
	if d.PeakTempC <= cfg.QoS.Thermal.ThrottleStartC {
		t.Fatalf("peak %gC never crossed throttle start %gC", d.PeakTempC, cfg.QoS.Thermal.ThrottleStartC)
	}
}
