// Package serve is the inference-serving frontend: it accepts
// classification / detection / segmentation requests, admits them into
// per-model bounded queues, gathers admitted requests into micro-batches
// (a batch window capped at a maximum batch size), and executes batches
// on a bounded pool of model executors built from the simulated stack.
//
// The same queueing policy runs in two harnesses:
//
//   - a wall-clock HTTP frontend ([Server]) for interactive use, and
//   - a virtual-time discrete-event simulator ([Simulate]) driven by
//     the open-loop generator in internal/loadgen, whose reports are
//     byte-identical for a fixed seed at any -parallel value.
//
// Serving adds its own AI tax on top of the per-frame pipeline tax:
// batch-formation wait (the window), dispatch wait (all executors
// busy), and the per-dispatch overhead amortized across the batch.
// Both harnesses account these explicitly so the serving tax is
// visible next to the pipeline's own.
package serve

import (
	"fmt"
	"time"

	"aitax/internal/app"
	"aitax/internal/faults"
	"aitax/internal/models"
	"aitax/internal/obs"
	"aitax/internal/soc"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// Config fixes the serving policy and the executor stack.
type Config struct {
	// Platform is the simulated SoC the executors run on.
	Platform *soc.SoC
	// DType and Delegate select the models' execution configuration.
	DType    tensor.DType
	Delegate tflite.Delegate
	// Models is the loaded model set; requests for anything else are
	// rejected with a not-found error. Empty means DefaultModels.
	Models []*models.Model
	// Entry is where served requests enter the stage graph: StagePre
	// (the payload is an image needing the pixel pipeline) or
	// StageInference (the payload arrives as a ready tensor). Requests
	// always exit after StagePost.
	Entry app.Stage
	// Workers is the number of model executors; at most this many
	// batches are in service at once.
	Workers int
	// BatchWindow is how long an open batch waits for co-riders before
	// it is flushed to an executor. Zero disables batching delay: every
	// request dispatches immediately.
	BatchWindow time.Duration
	// MaxBatch flushes a batch early once it holds this many requests.
	MaxBatch int
	// QueueDepth is the per-model admission limit: requests admitted
	// but not yet in service. Arrivals beyond it are rejected
	// (HTTP 429 on the wire, counted in both harnesses).
	QueueDepth int
	// DispatchCost is the fixed per-batch dispatch overhead (executor
	// wakeup, tensor buffer binding) paid once per batch and amortized
	// across its members — the cost micro-batching exists to spread.
	DispatchCost time.Duration
	// Seed derives every executor stack's RNG stream.
	Seed uint64
	// Faults is the deterministic fault plan threaded into every
	// executor stack.
	Faults faults.Plan
	// SLO lists the latency objectives the serving observability layer
	// monitors (burn-rate alerts, /v1/slo, the loadgen SLO report).
	// Empty disables SLO monitoring.
	SLO []obs.Objective
	// ObsWindow is the streaming recorder's aggregation window (zero =
	// the obs default, 250ms) — virtual time in the simulator, wall
	// clock in the HTTP frontend.
	ObsWindow time.Duration
	// QoS, when non-nil, puts the brownout controller behind the
	// harness: QoS-class shedding, model downshift and thermal-aware
	// delegate steering under pressure. Requires SLO objectives (the
	// controller's burn signal).
	QoS *QoSPolicy
}

// DefaultModels returns the standard serving set: one model per
// endpoint task (classify, detect, segment).
func DefaultModels() []*models.Model {
	set := make([]*models.Model, 0, 3)
	for _, name := range []string{
		"MobileNet 1.0 v1",
		"SSD MobileNet v2",
		"Deeplab-v3 MobileNet-v2",
	} {
		m, err := models.ByName(name)
		if err != nil {
			panic(err) // catalog regression, unreachable
		}
		set = append(set, m)
	}
	return set
}

// Defaults fills unset fields with the serving defaults. BatchWindow
// and DispatchCost are left alone: zero is meaningful for both
// (immediate dispatch, free dispatch), so their defaults live on the
// command-line flags instead.
func (c Config) Defaults() Config {
	if c.Models == nil {
		c.Models = DefaultModels()
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.QoS != nil {
		c.QoS = c.QoS.withDefaults()
	}
	return c
}

// Validate reports the first problem with the config.
func (c Config) Validate() error {
	if c.Platform == nil {
		return fmt.Errorf("serve: config needs a platform")
	}
	if len(c.Models) == 0 {
		return fmt.Errorf("serve: config needs at least one model")
	}
	if c.Entry != app.StagePre && c.Entry != app.StageInference {
		return fmt.Errorf("serve: entry stage must be pre or inference, got %v", c.Entry)
	}
	if c.Workers < 1 {
		return fmt.Errorf("serve: workers must be at least 1, got %d", c.Workers)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: max batch must be at least 1, got %d", c.MaxBatch)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("serve: queue depth must be at least 1, got %d", c.QueueDepth)
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("serve: batch window must be non-negative, got %v", c.BatchWindow)
	}
	if c.DispatchCost < 0 {
		return fmt.Errorf("serve: dispatch cost must be non-negative, got %v", c.DispatchCost)
	}
	if c.QoS != nil {
		if err := c.validateQoS(); err != nil {
			return err
		}
	}
	return nil
}

// modelByName resolves name within the loaded set.
func (c Config) modelByName(name string) (*models.Model, bool) {
	for _, m := range c.Models {
		if m.Name == name {
			return m, true
		}
	}
	return nil, false
}
