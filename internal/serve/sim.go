package serve

import (
	"fmt"
	"strconv"
	"time"

	"aitax/internal/loadgen"
	"aitax/internal/qos"
	"aitax/internal/sim"
	"aitax/internal/telemetry"
)

// Outcome is one request's fate in the virtual-time simulation. All
// times are on the simulation clock; a rejected request has only
// Arrival set and everything else zero.
type Outcome struct {
	ID    int
	Model string
	// Arrival, Flushed, Started, Finished are the request's queueing
	// milestones: admission, batch flush (window close or max-batch),
	// executor pickup, completion.
	Arrival  sim.Time
	Flushed  sim.Time
	Started  sim.Time
	Finished sim.Time
	// Rejected marks an arrival turned away by admission control.
	Rejected bool
	// Class is the request's QoS class (Standard when undeclared).
	Class qos.Class
	// Shed marks an arrival turned away by the brownout controller's
	// class shedding (distinct from a queue-full rejection).
	Shed bool
	// ServedAs, when non-empty, is the cheaper model the brownout
	// controller downshifted this request to.
	ServedAs string
	// Steered marks a request whose batch ran on the steer delegate.
	Steered bool
	// BatchSize is the size of the batch that served the request.
	BatchSize int
	// Infer is the request's share of the batch's inference time — the
	// useful compute. Everything else in Latency is serving tax.
	Infer time.Duration
	// ComputeTax is the request's share of the batch's pipeline tax
	// plus its share of the per-dispatch overhead.
	ComputeTax time.Duration
	// Pre, Post, RPC and Exec are the request's share of the batch's
	// Table-III stage anatomy (see BatchCost) — the streaming recorder's
	// per-window tax export.
	Pre  time.Duration
	Post time.Duration
	RPC  time.Duration
	Exec time.Duration
}

// Framework is the inference-stage time not attributed to FastRPC
// overhead or remote kernel execution: the framework/scheduling slice of
// the Table-III anatomy. On delegates that never cross to the DSP it is
// zero (all inference time counts as kernel execution).
func (o Outcome) Framework() time.Duration {
	if o.Exec == 0 && o.RPC == 0 {
		return 0
	}
	fw := o.Infer - o.RPC - o.Exec
	if fw < 0 {
		return 0
	}
	return fw
}

// KernelExec is the useful kernel-execution slice of the anatomy: the
// measured remote execution when the inference crossed to the DSP, the
// whole inference stage otherwise.
func (o Outcome) KernelExec() time.Duration {
	if o.Exec == 0 && o.RPC == 0 {
		return o.Infer
	}
	return o.Exec
}

// Latency is the end-to-end time the client observed.
func (o Outcome) Latency() time.Duration { return o.Finished.Sub(o.Arrival) }

// Tax is the non-inference share of the request's latency: batch wait,
// dispatch wait, its slice of the batch's pipeline tax and dispatch
// overhead, and time serialized behind batch co-riders.
func (o Outcome) Tax() time.Duration { return o.Latency() - o.Infer }

// BatchWait is time spent waiting for the batch window to close.
func (o Outcome) BatchWait() time.Duration { return o.Flushed.Sub(o.Arrival) }

// DispatchWait is time a flushed batch waited for a free executor.
func (o Outcome) DispatchWait() time.Duration { return o.Started.Sub(o.Flushed) }

// DepthSample is one step of a model's admitted-queue depth, for the
// Chrome trace's counter tracks.
type DepthSample struct {
	Model string
	At    sim.Time
	Depth int
}

// ModelBatches counts the batches one model's queue flushed.
type ModelBatches struct {
	Model   string
	Batches int
}

// SimResult is everything one virtual-time load simulation produced.
type SimResult struct {
	// Outcomes are in arrival order, rejected requests included.
	Outcomes []Outcome
	// End is the virtual time the last request completed.
	End sim.Time
	// Batches counts flushed batches per model, in Config.Models order.
	Batches []ModelBatches
	// Spans, Flows and Metrics are the run's telemetry (spans only when
	// Simulate was asked to trace).
	Spans   []telemetry.Span
	Flows   []telemetry.Flow
	Metrics *telemetry.Registry
	// Depth samples every admitted-queue depth change (traced runs).
	Depth []DepthSample
	// Degradation is the brownout controller's run accounting, nil when
	// the config carried no QoS policy.
	Degradation *Degradation
}

// simQueue is one model's serving state inside the simulator.
type simQueue struct {
	name    string
	pending []*simReq
	window  sim.EventID
	armed   bool
	// queued counts admitted requests not yet in service — the
	// admission-control quantity.
	queued  int
	batches int
}

type simReq struct {
	out  Outcome
	span *telemetry.ActiveSpan
	wait *telemetry.ActiveSpan
}

type simBatch struct {
	q    *simQueue
	reqs []*simReq
}

// simulator runs the serving policy as a discrete-event simulation:
// single-threaded on one virtual clock, so one seed produces one
// history regardless of host parallelism.
type simulator struct {
	cfg     Config
	table   *CostTable
	eng     *sim.Engine
	tracer  *telemetry.Tracer
	metrics *telemetry.Registry
	queues  map[string]*simQueue
	order   []*simQueue
	ready   []*simBatch // flushed batches awaiting an executor, FIFO
	free    int         // idle executors
	depth   []DepthSample
	traced  bool
	// qs is the brownout state (nil without a QoS policy); remaining
	// counts arrivals not yet resolved and active the batches in
	// service — together they bound the controller's self-rescheduling
	// decision tick so the event queue drains.
	qs        *qosState
	remaining int
	active    int
}

// Simulate replays the arrival schedule against the serving policy in
// virtual time, pricing batches from the cost table. With traced set it
// additionally records per-request spans and queue-depth samples.
func Simulate(cfg Config, table *CostTable, arrivals []loadgen.Arrival, traced bool) (*SimResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &simulator{
		cfg:     cfg,
		table:   table,
		eng:     sim.NewEngine(),
		metrics: telemetry.NewRegistry(),
		queues:  make(map[string]*simQueue),
		free:    cfg.Workers,
		traced:  traced,
	}
	if traced {
		s.tracer = telemetry.NewTracer(s.eng.Now)
	}
	if cfg.QoS != nil {
		qs, err := newQOSState(cfg)
		if err != nil {
			return nil, err
		}
		s.qs = qs
	}
	for _, m := range cfg.Models {
		q := &simQueue{name: m.Name}
		s.queues[m.Name] = q
		s.order = append(s.order, q)
	}
	reqs := make([]*simReq, len(arrivals))
	for i, a := range arrivals {
		if _, ok := s.queues[a.Model]; !ok {
			return nil, fmt.Errorf("serve: arrival %d asks for %q, not in the loaded set", a.ID, a.Model)
		}
		cls, err := qos.ParseClass(a.Class)
		if err != nil {
			return nil, fmt.Errorf("serve: arrival %d: %w", a.ID, err)
		}
		r := &simReq{out: Outcome{ID: a.ID, Model: a.Model, Class: cls}}
		reqs[i] = r
		at := sim.Time(a.At)
		s.eng.Schedule(at, func() { s.arrive(r) })
	}
	s.remaining = len(arrivals)
	if s.qs != nil && s.remaining > 0 {
		s.armTick()
	}
	s.eng.Run()
	res := &SimResult{
		Outcomes: make([]Outcome, len(reqs)),
		End:      s.eng.Now(),
		Metrics:  s.metrics,
		Depth:    s.depth,
	}
	for i, r := range reqs {
		res.Outcomes[i] = r.out
	}
	for _, q := range s.order {
		res.Batches = append(res.Batches, ModelBatches{Model: q.name, Batches: q.batches})
	}
	if s.tracer != nil {
		res.Spans, res.Flows = s.tracer.Spans(), s.tracer.Flows()
	}
	if s.qs != nil {
		res.Degradation = s.qs.finish()
	}
	return res, nil
}

// armTick schedules the next brownout decision.
func (s *simulator) armTick() {
	s.qs.tickArmed = true
	s.qs.tickID = s.eng.After(s.qs.ctl.Ladder().Tick, s.qosTick)
}

// maybeDisarmTick cancels the pending decision tick once no work
// remains, so the engine's queue drains — the simulation ends at the
// last request's completion, not at some later tick.
func (s *simulator) maybeDisarmTick() {
	if s.qs != nil && s.qs.tickArmed && s.remaining == 0 && s.active == 0 {
		s.eng.Cancel(s.qs.tickID)
		s.qs.tickArmed = false
	}
}

// accrueBusy integrates the hot-delegate busy level up to now, for the
// thermal model's utilization input.
func (s *simulator) accrueBusy(now sim.Time) {
	dt := now.Sub(s.qs.lastBusy)
	if dt > 0 {
		s.qs.busyInt += time.Duration(s.qs.hot) * dt
	}
	s.qs.lastBusy = now
}

// queueFrac is the fullest admission queue's occupancy in [0, 1].
func (s *simulator) queueFrac() float64 {
	max := 0
	for _, q := range s.order {
		if q.queued > max {
			max = q.queued
		}
	}
	return float64(max) / float64(s.cfg.QueueDepth)
}

// qosTick runs one brownout decision on the virtual clock.
func (s *simulator) qosTick() {
	qs := s.qs
	qs.tickArmed = false
	now := s.eng.Now()
	dt := now.Sub(qs.lastTick)
	qs.lastTick = now
	s.accrueBusy(now)
	util := 0.0
	if dt > 0 {
		util = float64(qs.busyInt) / (float64(dt) * float64(s.cfg.Workers))
	}
	qs.busyInt = 0
	faultTrip := s.cfg.Faults.ThermalTripAt > 0 && now.Duration() >= s.cfg.Faults.ThermalTripAt
	t := qs.step(now.Duration(), dt, util, s.queueFrac(), faultTrip)
	s.metrics.Set("aitax_qos_level", float64(t.Level))
	s.metrics.Set("aitax_qos_temp_c", qs.therm.TempC())
	if t.Changed {
		s.metrics.Inc("aitax_qos_transitions_total")
		if s.tracer != nil {
			sp := s.tracer.Instant(fmt.Sprintf("qos L%d->L%d", t.From, t.Level), "qos", telemetry.TrackCPU, nil, now)
			sp.SetAttr("driver", t.Driver)
			sp.SetAttr("pressure", fmt.Sprintf("%.2f", t.Pressure))
		}
	}
	if s.remaining > 0 || s.active > 0 {
		s.armTick()
	}
}

func (s *simulator) sampleDepth(q *simQueue) {
	if s.traced {
		s.depth = append(s.depth, DepthSample{Model: q.name, At: s.eng.Now(), Depth: q.queued})
	}
}

// arrive runs admission control and batch formation for one request.
func (s *simulator) arrive(r *simReq) {
	name := r.out.Model
	now := s.eng.Now()
	r.out.Arrival = now
	s.metrics.Inc(telemetry.Labeled("aitax_serve_requests_total", "model", name))
	// Brownout rung 1: shed best-effort traffic at admission. Shed
	// outcomes are not fed back into the controller's burn signal — its
	// own action must not hold its pressure up.
	if s.qs != nil && s.qs.ctl.Shed(r.out.Class) {
		r.out.Shed = true
		s.qs.deg.Shed[r.out.Class]++
		s.metrics.Inc(telemetry.Labeled("aitax_qos_shed_total", "class", r.out.Class.String()))
		if s.tracer != nil {
			sp := s.tracer.Instant("shed", "qos", telemetry.TrackCPU, nil, now)
			sp.SetAttr("model", name)
			sp.SetAttr("class", r.out.Class.String())
			sp.SetAttr("request", strconv.Itoa(r.out.ID))
		}
		s.remaining--
		s.maybeDisarmTick()
		return
	}
	// Brownout rung 2: rewrite the request onto its cheaper fallback
	// model's queue; it batches, prices and serves as that model.
	q := s.queues[name]
	if s.qs != nil && s.qs.ctl.Downshift() {
		if to, ok := s.cfg.QoS.Downshift[name]; ok {
			r.out.ServedAs = to
			q = s.queues[to]
			s.qs.deg.Downshifted++
			s.metrics.Inc(telemetry.Labeled("aitax_qos_downshift_total", "model", name))
		}
	}
	if q.queued >= s.cfg.QueueDepth {
		r.out.Rejected = true
		s.metrics.Inc(telemetry.Labeled("aitax_serve_rejected_total", "model", name))
		if s.qs != nil && s.sloCovers(name) {
			s.qs.ctl.ObserveBad()
		}
		if s.tracer != nil {
			sp := s.tracer.Instant("reject", "serve", telemetry.TrackCPU, nil, now)
			sp.SetAttr("model", name)
			sp.SetAttr("request", strconv.Itoa(r.out.ID))
		}
		s.remaining--
		s.maybeDisarmTick()
		return
	}
	q.queued++
	s.sampleDepth(q)
	if s.tracer != nil {
		r.span = s.tracer.Start("request", "serve", telemetry.TrackCPU, nil)
		r.span.SetAttr("model", q.name)
		r.span.SetAttr("request", strconv.Itoa(r.out.ID))
		r.wait = s.tracer.Start("queued", "serve", telemetry.TrackCPU, r.span)
	}
	q.pending = append(q.pending, r)
	switch {
	case len(q.pending) >= s.cfg.MaxBatch:
		// Full batch: flush now, the window (if armed) is moot.
		if q.armed {
			s.eng.Cancel(q.window)
			q.armed = false
		}
		s.flush(q)
	case s.cfg.BatchWindow == 0:
		s.flush(q)
	case len(q.pending) == 1:
		// First rider opens the window.
		q.window = s.eng.After(s.cfg.BatchWindow, func() {
			q.armed = false
			s.flush(q)
		})
		q.armed = true
	}
}

// sloCovers reports whether any configured objective covers model.
func (s *simulator) sloCovers(model string) bool {
	for _, obj := range s.cfg.SLO {
		if covered, _ := obj.Match(model, 0, true); covered {
			return true
		}
	}
	return false
}

// observeOutcome feeds one served request's SLO verdict into the
// controller's burn signal, scored against the model the client asked
// for (a downshifted request that meets the requested model's objective
// is a good outcome — that is the point of downshifting).
func (s *simulator) observeOutcome(model string, latency time.Duration) {
	covered, breached := false, false
	for _, obj := range s.cfg.SLO {
		c, b := obj.Match(model, latency, false)
		covered = covered || c
		breached = breached || b
	}
	if !covered {
		return
	}
	if breached {
		s.qs.ctl.ObserveBad()
	} else {
		s.qs.ctl.ObserveGood()
	}
}

// flush closes the open batch and hands it to the executor pool.
func (s *simulator) flush(q *simQueue) {
	if len(q.pending) == 0 {
		return
	}
	now := s.eng.Now()
	b := &simBatch{q: q, reqs: q.pending}
	q.pending = nil
	q.batches++
	for _, r := range b.reqs {
		r.out.Flushed = now
	}
	s.metrics.Inc(telemetry.Labeled("aitax_serve_batches_total", "model", q.name))
	s.metrics.Observe(telemetry.Labeled("aitax_serve_batch_size", "model", q.name), float64(len(b.reqs)))
	s.ready = append(s.ready, b)
	s.dispatch()
}

// dispatch starts ready batches on idle executors, FIFO.
func (s *simulator) dispatch() {
	for s.free > 0 && len(s.ready) > 0 {
		b := s.ready[0]
		s.ready = s.ready[1:]
		s.free--
		s.active++
		now := s.eng.Now()
		k := len(b.reqs)
		// Brownout rung 3: steer the batch off the hot delegate. A
		// steered batch is priced from the steer cost table, does not
		// heat the die, and escapes DVFS throttling; a non-steered batch
		// on a hot die is stretched by the throttle factor — that
		// stretch lands in every rider's latency, and therefore in its
		// tax (DVFS is AI tax the thermal model charges).
		steered := s.qs != nil && s.qs.ctl.Steer()
		var cost BatchCost
		if steered {
			cost = s.table.SteerCost(b.q.name, k)
			s.qs.deg.SteeredBatches++
			s.metrics.Inc("aitax_qos_steered_batches_total")
		} else {
			cost = s.table.Cost(b.q.name, k)
		}
		service := s.cfg.DispatchCost + cost.Service
		if s.qs != nil && !steered {
			if f := s.qs.therm.ThrottleFactor(); f < 1 {
				service = s.cfg.DispatchCost + time.Duration(float64(cost.Service)/f)
				s.qs.deg.ThrottledBatches++
				s.metrics.Inc("aitax_qos_throttled_batches_total")
			}
			s.accrueBusy(now)
			s.qs.hot++
		}
		var span *telemetry.ActiveSpan
		if s.tracer != nil {
			span = s.tracer.Start("batch", "serve", telemetry.TrackCPU, nil)
			span.SetAttr("model", b.q.name)
			span.SetAttr("size", strconv.Itoa(k))
			if steered {
				span.SetAttr("steered", "true")
			}
		}
		for _, r := range b.reqs {
			r.out.Started = now
			r.out.Steered = steered
			b.q.queued--
			if r.wait != nil {
				r.wait.End()
			}
		}
		s.sampleDepth(b.q)
		s.eng.After(service, func() {
			s.complete(b, cost, steered, span)
		})
	}
}

// complete finishes a batch: per-request accounting, executor release.
func (s *simulator) complete(b *simBatch, cost BatchCost, steered bool, span *telemetry.ActiveSpan) {
	now := s.eng.Now()
	k := len(b.reqs)
	if span != nil {
		span.End()
	}
	if s.qs != nil && !steered {
		s.accrueBusy(now)
		s.qs.hot--
	}
	for _, r := range b.reqs {
		r.out.Finished = now
		r.out.BatchSize = k
		r.out.Infer = cost.Infer / time.Duration(k)
		r.out.ComputeTax = (cost.Tax + s.cfg.DispatchCost) / time.Duration(k)
		r.out.Pre = cost.Pre / time.Duration(k)
		r.out.Post = cost.Post / time.Duration(k)
		r.out.RPC = cost.RPC / time.Duration(k)
		r.out.Exec = cost.Exec / time.Duration(k)
		if r.span != nil {
			r.span.End()
		}
		ms := float64(r.out.Latency()) / float64(time.Millisecond)
		s.metrics.Observe(telemetry.Labeled("aitax_serve_latency_ms", "model", b.q.name), ms)
		s.metrics.Observe(telemetry.Labeled("aitax_serve_tax_ms", "model", b.q.name),
			float64(r.out.Tax())/float64(time.Millisecond))
		if s.qs != nil {
			s.observeOutcome(r.out.Model, r.out.Latency())
		}
		s.remaining--
	}
	s.free++
	s.active--
	s.dispatch()
	s.maybeDisarmTick()
}
