package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"aitax/internal/lab"
	"aitax/internal/models"
	"aitax/internal/obs"
	"aitax/internal/qos"
	"aitax/internal/telemetry"
)

// endpointTask maps each inference endpoint to the task it serves.
var endpointTask = []struct {
	path string
	task models.Task
}{
	{"/v1/classify", models.Classification},
	{"/v1/detect", models.ObjectDetection},
	{"/v1/segment", models.Segmentation},
}

// Server is the wall-clock HTTP frontend: the same admission /
// micro-batching policy as the virtual-time simulator, but driven by
// real requests on real time. Batches execute as lab jobs on simulated
// executor stacks (compiled plans shared process-wide via plan.Shared),
// bounded by Config.Workers.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *telemetry.Registry
	lab     *lab.Lab
	sem     chan struct{}
	// retryAfter is the 429 Retry-After value in whole seconds, derived
	// from the batch window (a client retrying sooner than the window
	// cannot be admitted any faster).
	retryAfter string
	// start anchors the streaming recorder's wall-clock time axis.
	start time.Time
	rec   *obs.Recorder
	mon   *obs.Monitor

	mu     sync.Mutex
	queues map[string]*httpQueue
	closed bool
	wg     sync.WaitGroup
	// qs is the brownout state (nil without a QoS policy), guarded by
	// mu like the queues it gates; hot counts executing batches on the
	// configured (heat-producing) delegate for the thermal tick's
	// utilization sample.
	qs       *qosState
	hot      int
	qosStop  chan struct{}
	qosDone  chan struct{}
	stopOnce sync.Once
}

type httpQueue struct {
	model   *models.Model
	pending []*httpReq
	timer   *time.Timer
	// queued counts admitted requests not yet in service.
	queued int
}

type httpReq struct {
	enq time.Time
	ch  chan httpDone
}

type httpDone struct {
	batch int
	wait  time.Duration
	cost  BatchCost
	err   error
}

// NewServer validates the config and builds the frontend. The cost of
// each batch is measured live when the batch executes, so no warmup
// pass is needed; the first batch per (model, size) pays the plan
// compilation that later ones reuse from the shared cache.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		mux: http.NewServeMux(),
		// A long-running server takes unbounded traffic: the streaming
		// registry keeps /metrics memory flat (bucketed quantiles
		// instead of retained samples).
		metrics:    telemetry.NewStreamingRegistry(),
		lab:        &lab.Lab{Parallelism: 1},
		sem:        make(chan struct{}, cfg.Workers),
		retryAfter: retryAfterSeconds(cfg.BatchWindow),
		start:      time.Now(),
		queues:     make(map[string]*httpQueue, len(cfg.Models)),
	}
	s.rec = obs.NewRecorder(obs.RecorderConfig{
		Window: cfg.ObsWindow,
		OnClose: func(row obs.Row) {
			if s.mon != nil {
				s.mon.OnRow(row)
			}
		},
	})
	if len(cfg.SLO) > 0 {
		s.mon = obs.NewMonitor(cfg.SLO, s.rec.Window())
	}
	for _, m := range cfg.Models {
		s.queues[m.Name] = &httpQueue{model: m}
	}
	if cfg.QoS != nil {
		qs, err := newQOSState(cfg)
		if err != nil {
			return nil, err
		}
		s.qs = qs
		s.qosStop = make(chan struct{})
		s.qosDone = make(chan struct{})
		go s.qosLoop()
	}
	for _, ep := range endpointTask {
		ep := ep
		s.mux.HandleFunc(ep.path, func(w http.ResponseWriter, r *http.Request) {
			s.handleInfer(w, r, ep.task)
		})
	}
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/v1/slo", s.handleSLO)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Prometheus text exposition format 0.0.4; runtime health and
		// SLO state are refreshed per scrape.
		obs.CollectRuntime(s.metrics)
		if s.mon != nil {
			s.mon.Export(s.metrics)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.metrics.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is log the broken scrape.
			http.Error(w, "metrics write failed: "+err.Error(), http.StatusInternalServerError)
		}
	})
	// Live profiling surfaces, mounted on the same mux so the serving
	// frontend is introspectable without a second listener.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// retryAfterSeconds renders the batch window as a whole-second
// Retry-After value (minimum 1s, the header's resolution floor).
func retryAfterSeconds(window time.Duration) string {
	secs := int(math.Ceil(window.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// now is the server's position on the recorder's time axis.
func (s *Server) now() time.Duration { return time.Since(s.start) }

// Watch renders the live terminal dashboard from the server's streaming
// recorder (the -watch flag's refresh body).
func (s *Server) Watch() string {
	models := make([]string, 0, len(s.cfg.Models))
	for _, m := range s.cfg.Models {
		models = append(models, m.Name)
	}
	d := &obs.Dashboard{Rec: s.rec, Mon: s.mon, Models: models}
	return d.Render(s.now().Round(time.Millisecond))
}

// sloResponse is the /v1/slo JSON shape.
type sloResponse struct {
	Objective  string  `json:"objective"`
	Contract   string  `json:"contract"`
	Good       float64 `json:"good"`
	Bad        float64 `json:"bad"`
	Compliance float64 `json:"compliance"`
	BudgetUsed float64 `json:"budget_used"`
	BurnShort  float64 `json:"burn_short"`
	BurnLong   float64 `json:"burn_long"`
	Pages      int     `json:"pages"`
	Warns      int     `json:"warns"`
	Pass       bool    `json:"pass"`
}

// handleSLO reports each objective's compliance and live burn rate.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.mon == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no SLOs configured (start with -slo)"})
		return
	}
	burns := s.mon.CurrentBurn()
	out := make([]sloResponse, 0, len(s.cfg.SLO))
	for _, sum := range s.mon.Summaries() {
		b := burns[sum.Objective.Name()]
		out = append(out, sloResponse{
			Objective:  sum.Objective.Name(),
			Contract:   fmt.Sprintf("%g%% < %s", sum.Objective.Target*100, sum.Objective.Latency),
			Good:       sum.Good,
			Bad:        sum.Bad,
			Compliance: sum.Compliance,
			BudgetUsed: sum.BudgetUsed,
			BurnShort:  b[0],
			BurnLong:   b[1],
			Pages:      sum.Pages,
			Warns:      sum.Warns,
			Pass:       sum.Pass,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// Handler returns the frontend's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's registry (also served at /metrics).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// qosLoop drives the brownout controller on the wall clock: every tick
// it samples executor utilization and queue occupancy, advances the
// thermal model, and runs one ladder decision under the server mutex.
func (s *Server) qosLoop() {
	defer close(s.qosDone)
	t := time.NewTicker(s.qs.ctl.Ladder().Tick)
	defer t.Stop()
	last := s.now()
	for {
		select {
		case <-s.qosStop:
			return
		case <-t.C:
			now := s.now()
			dt := now - last
			last = now
			faultTrip := s.cfg.Faults.ThermalTripAt > 0 && now >= s.cfg.Faults.ThermalTripAt
			s.mu.Lock()
			util := float64(s.hot) / float64(s.cfg.Workers)
			frac := 0.0
			for _, q := range s.queues {
				if f := float64(q.queued) / float64(s.cfg.QueueDepth); f > frac {
					frac = f
				}
			}
			tk := s.qs.step(now, dt, util, frac, faultTrip)
			temp := s.qs.therm.TempC()
			s.mu.Unlock()
			s.metrics.Set("aitax_qos_level", float64(tk.Level))
			s.metrics.Set("aitax_qos_temp_c", temp)
			if tk.Changed {
				s.metrics.Inc("aitax_qos_transitions_total")
				s.rec.Add(now, telemetry.Labeled("qos_transitions", "to", strconv.Itoa(tk.Level)), 1)
			}
		}
	}
}

// Close stops admitting requests and waits for in-flight batches.
func (s *Server) Close() { s.Shutdown(context.Background()) }

// Shutdown drains the server gracefully: admission immediately starts
// answering 503 with a Retry-After, every open micro-batch window is
// flushed so queued requests still get served, and in-flight batches
// have until ctx's deadline to complete. It returns ctx.Err() if the
// drain deadline expires first (batches then finish in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for _, q := range s.queues {
		if q.timer != nil {
			q.timer.Stop()
			q.timer = nil
		}
		s.flushLocked(q)
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() {
		if s.qosStop != nil {
			close(s.qosStop)
		}
	})
	if s.qosDone != nil {
		<-s.qosDone
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// inferRequest is the request body of the inference endpoints.
type inferRequest struct {
	// Model is the Table-I model name; empty picks the endpoint's
	// default (the first loaded model of the endpoint's task).
	Model string `json:"model"`
	// Class is the request's QoS class: "interactive", "standard"
	// (default) or "best-effort". Under brownout, best-effort traffic is
	// shed first.
	Class string `json:"class"`
}

// inferResponse reports the request's fate and its AI-tax accounting.
// Queue time is wall clock (real batching delay on this host); the
// service, inference and compute-tax times are virtual (simulated
// execution on the configured SoC).
type inferResponse struct {
	Model string `json:"model"`
	Batch int    `json:"batch_size"`
	// QueueMS is wall-clock admission-to-service time.
	QueueMS float64 `json:"queue_ms"`
	// ServiceMS is the whole batch's virtual execution time.
	ServiceMS float64 `json:"service_ms"`
	// InferMS is this request's share of the batch's inference time.
	InferMS float64 `json:"infer_ms"`
	// TaxMS is queue wait plus this request's share of the batch's
	// pipeline tax and dispatch overhead.
	TaxMS float64 `json:"tax_ms"`
	// ServedBy, when set, is the cheaper model the brownout controller
	// downshifted this request to.
	ServedBy string `json:"served_by,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// resolveModel picks the request's model: an explicit name must exist
// in the catalog (404 otherwise, via models.ErrUnknownModel), be loaded
// (404), and match the endpoint's task (400); an empty name falls back
// to the endpoint's default loaded model.
func (s *Server) resolveModel(name string, task models.Task) (*models.Model, int, error) {
	if name == "" {
		for _, m := range s.cfg.Models {
			if m.Task == task {
				return m, 0, nil
			}
		}
		return nil, http.StatusNotFound, fmt.Errorf("no %s model loaded", task)
	}
	m, err := models.ByName(name)
	if err != nil {
		if errors.Is(err, models.ErrUnknownModel) {
			return nil, http.StatusNotFound, err
		}
		return nil, http.StatusInternalServerError, err
	}
	if _, ok := s.cfg.modelByName(m.Name); !ok {
		return nil, http.StatusNotFound, fmt.Errorf("model %q is not loaded (see /v1/models)", m.Name)
	}
	if m.Task != task {
		return nil, http.StatusBadRequest, fmt.Errorf("model %q is a %s model, not %s", m.Name, m.Task, task)
	}
	return m, 0, nil
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request, task models.Task) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req inferRequest
	if r.Body != nil {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err.Error() != "EOF" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
			return
		}
	}
	m, status, err := s.resolveModel(req.Model, task)
	if err != nil {
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	cls, err := qos.ParseClass(req.Class)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.metrics.Inc(telemetry.Labeled("aitax_serve_requests_total", "model", m.Name))
	arrival := s.now()
	s.rec.Add(arrival, obs.OfferedSeries(m.Name), 1)
	s.rec.Add(arrival, obs.OfferedSeries(obs.AllModels), 1)

	hr := &httpReq{enq: time.Now(), ch: make(chan httpDone, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Draining: tell clients when to come back, not just to go away.
		w.Header().Set("Retry-After", s.retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server shutting down"})
		return
	}
	// Brownout rung 1: shed best-effort traffic at admission. The shed
	// outcome is not fed into the controller's burn signal.
	if s.qs != nil && s.qs.ctl.Shed(cls) {
		s.qs.deg.Shed[cls]++
		s.mu.Unlock()
		s.metrics.Inc(telemetry.Labeled("aitax_qos_shed_total", "class", cls.String()))
		s.rec.Add(arrival, obs.ShedSeries(m.Name), 1)
		s.rec.Add(arrival, obs.ShedSeries(obs.AllModels), 1)
		w.Header().Set("Retry-After", s.retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: fmt.Sprintf("shedding %s traffic under load; retry later", cls),
		})
		return
	}
	// Brownout rung 2: serve the request with its cheaper fallback.
	served := m
	if s.qs != nil && s.qs.ctl.Downshift() {
		if to, ok := s.cfg.QoS.Downshift[m.Name]; ok {
			if tm, loaded := s.cfg.modelByName(to); loaded {
				served = tm
				s.qs.deg.Downshifted++
				s.metrics.Inc(telemetry.Labeled("aitax_qos_downshift_total", "model", m.Name))
			}
		}
	}
	q := s.queues[served.Name]
	if q.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.metrics.Inc(telemetry.Labeled("aitax_serve_rejected_total", "model", m.Name))
		s.rec.Add(arrival, obs.RejectedSeries(m.Name), 1)
		s.rec.Add(arrival, obs.RejectedSeries(obs.AllModels), 1)
		for _, obj := range s.cfg.SLO {
			if covered, _ := obj.Match(m.Name, 0, true); covered {
				s.rec.Add(arrival, obs.BadSeries(obj), 1)
			}
		}
		if s.qs != nil {
			for _, obj := range s.cfg.SLO {
				if covered, _ := obj.Match(m.Name, 0, true); covered {
					s.mu.Lock()
					s.qs.ctl.ObserveBad()
					s.mu.Unlock()
					break
				}
			}
		}
		w.Header().Set("Retry-After", s.retryAfter)
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: fmt.Sprintf("queue for %q is full (depth %d); retry later", served.Name, s.cfg.QueueDepth),
		})
		return
	}
	q.queued++
	s.rec.Observe(arrival, obs.DepthSeries(served.Name), float64(q.queued))
	q.pending = append(q.pending, hr)
	switch {
	case len(q.pending) >= s.cfg.MaxBatch:
		if q.timer != nil {
			q.timer.Stop()
			q.timer = nil
		}
		s.flushLocked(q)
	case s.cfg.BatchWindow == 0:
		s.flushLocked(q)
	case len(q.pending) == 1:
		q.timer = time.AfterFunc(s.cfg.BatchWindow, func() {
			s.mu.Lock()
			q.timer = nil
			s.flushLocked(q)
			s.mu.Unlock()
		})
	}
	s.mu.Unlock()

	select {
	case done := <-hr.ch:
		if done.err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: done.err.Error()})
			return
		}
		s.recordServed(m.Name, done)
		k := time.Duration(done.batch)
		resp := inferResponse{
			Model:     m.Name,
			Batch:     done.batch,
			QueueMS:   ms(done.wait),
			ServiceMS: ms(s.cfg.DispatchCost + done.cost.Service),
			InferMS:   ms(done.cost.Infer / k),
			TaxMS:     ms(done.wait + (done.cost.Tax+s.cfg.DispatchCost)/k),
		}
		if served != m {
			resp.ServedBy = served.Name
		}
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Deadline propagation: if the request is still queued, pull it
		// out before dispatch so the batch never pays for a client that
		// left — it counts as cancelled, not served. If it already
		// flushed, the buffered channel lets the batch finish without
		// leaking the executor goroutine.
		s.mu.Lock()
		removed := false
		for i, p := range q.pending {
			if p == hr {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				q.queued--
				removed = true
				break
			}
		}
		if removed && len(q.pending) == 0 && q.timer != nil {
			q.timer.Stop()
			q.timer = nil
		}
		s.mu.Unlock()
		if removed {
			at := s.now()
			s.metrics.Inc(telemetry.Labeled("aitax_serve_cancelled_total", "model", m.Name))
			s.rec.Add(at, obs.CancelledSeries(m.Name), 1)
			s.rec.Add(at, obs.CancelledSeries(obs.AllModels), 1)
		}
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "client cancelled"})
	}
}

// flushLocked closes q's open batch and schedules its execution. The
// caller holds s.mu.
func (s *Server) flushLocked(q *httpQueue) {
	if len(q.pending) == 0 {
		return
	}
	batch := q.pending
	q.pending = nil
	s.metrics.Inc(telemetry.Labeled("aitax_serve_batches_total", "model", q.model.Name))
	s.metrics.Observe(telemetry.Labeled("aitax_serve_batch_size", "model", q.model.Name), float64(len(batch)))
	s.wg.Add(1)
	go s.execute(q, batch)
}

// execute runs one batch on an executor slot: a lab job measuring the
// batch on a fresh simulated stack (plans cached process-wide).
func (s *Server) execute(q *httpQueue, batch []*httpReq) {
	defer s.wg.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	start := time.Now()
	// Brownout rung 3 and DVFS: decide steering and sample the throttle
	// at pickup, under the same mutex the controller ticks under.
	cfg := s.cfg
	steered := false
	factor := 1.0
	s.mu.Lock()
	q.queued -= len(batch)
	if s.qs != nil {
		if s.qs.ctl.Steer() {
			steered = true
			cfg.Delegate = s.cfg.QoS.SteerDelegate
			s.qs.deg.SteeredBatches++
		} else {
			factor = s.qs.therm.ThrottleFactor()
			if factor < 1 {
				s.qs.deg.ThrottledBatches++
			}
			s.hot++
		}
	}
	s.mu.Unlock()
	if steered {
		s.metrics.Inc("aitax_qos_steered_batches_total")
	} else if factor < 1 {
		s.metrics.Inc("aitax_qos_throttled_batches_total")
	}

	k := len(batch)
	results := s.lab.Run(context.Background(), []lab.Job{{
		ID: fmt.Sprintf("%s/b%d", q.model.Name, k),
		Run: func(ctx context.Context) (any, error) {
			return MeasureBatch(ctx, cfg, q.model, k)
		},
	}})
	if !steered && s.qs != nil {
		s.mu.Lock()
		s.hot--
		s.mu.Unlock()
	}
	res := results[0]
	var cost BatchCost
	if res.Err == nil {
		cost = res.Value.(BatchCost)
		if factor < 1 {
			// The hot die runs the batch slower; the stretch is thermal
			// tax every rider's latency carries.
			cost.Service = time.Duration(float64(cost.Service) / factor)
		}
		s.metrics.Observe(telemetry.Labeled("aitax_serve_service_ms", "model", q.model.Name),
			ms(s.cfg.DispatchCost+cost.Service))
	}
	for _, hr := range batch {
		hr.ch <- httpDone{batch: k, wait: start.Sub(hr.enq), cost: cost, err: res.Err}
	}
}

// recordServed feeds one completed request into the streaming recorder
// under the shared series-name contract, and scores it against the
// configured SLOs. Latency is the client's composite view: wall-clock
// queueing on this host plus the batch's virtual execution on the
// simulated SoC.
func (s *Server) recordServed(model string, done httpDone) {
	at := s.now()
	k := time.Duration(done.batch)
	lat := done.wait + s.cfg.DispatchCost + done.cost.Service
	o := Outcome{
		Model:     model,
		BatchSize: done.batch,
		Infer:     done.cost.Infer / k,
		Pre:       done.cost.Pre / k,
		Post:      done.cost.Post / k,
		RPC:       done.cost.RPC / k,
		Exec:      done.cost.Exec / k,
	}
	latMS := ms(lat)
	for _, m := range []string{model, obs.AllModels} {
		s.rec.Add(at, obs.ServedSeries(m), 1)
		s.rec.Observe(at, obs.LatencySeries(m), latMS)
		s.rec.Observe(at, obs.BatchSeries(m), float64(done.batch))
		s.rec.Observe(at, obs.BatchWaitSeries(m), ms(done.wait))
	}
	s.rec.Add(at, obs.StageSeries("pre"), ms(o.Pre))
	s.rec.Add(at, obs.StageSeries("framework"), ms(o.Framework()))
	s.rec.Add(at, obs.StageSeries("rpc"), ms(o.RPC))
	s.rec.Add(at, obs.StageSeries("infer"), ms(o.KernelExec()))
	s.rec.Add(at, obs.StageSeries("post"), ms(o.Post))
	anyCovered, anyBreached := false, false
	for _, obj := range s.cfg.SLO {
		covered, breached := obj.Match(model, lat, false)
		if !covered {
			continue
		}
		anyCovered = true
		if breached {
			anyBreached = true
			s.rec.Add(at, obs.BadSeries(obj), 1)
		} else {
			s.rec.Add(at, obs.GoodSeries(obj), 1)
		}
	}
	if s.qs != nil && anyCovered {
		s.mu.Lock()
		if anyBreached {
			s.qs.ctl.ObserveBad()
		} else {
			s.qs.ctl.ObserveGood()
		}
		s.mu.Unlock()
	}
}

// handleModels lists the loaded models and their endpoints.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Model    string `json:"model"`
		Task     string `json:"task"`
		Endpoint string `json:"endpoint"`
	}
	out := make([]entry, 0, len(s.cfg.Models))
	for _, m := range s.cfg.Models {
		e := entry{Model: m.Name, Task: string(m.Task)}
		for _, ep := range endpointTask {
			if ep.task == m.Task {
				e.Endpoint = ep.path
			}
		}
		out = append(out, e)
	}
	writeJSON(w, http.StatusOK, out)
}
