package serve

import (
	"context"
	"reflect"
	"testing"
	"time"

	"aitax/internal/app"
	"aitax/internal/loadgen"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// testConfig is a small, fast serving config: one classification model.
func testConfig(t *testing.T) Config {
	t.Helper()
	p, err := soc.PlatformByName("Google Pixel 3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Platform:     p,
		DType:        tensor.UInt8,
		Delegate:     tflite.DelegateNNAPI,
		Models:       DefaultModels()[:1], // MobileNet 1.0 v1
		Entry:        app.StagePre,
		Workers:      1,
		BatchWindow:  2 * time.Millisecond,
		MaxBatch:     4,
		QueueDepth:   4,
		DispatchCost: 200 * time.Microsecond,
		Seed:         42,
	}
	return cfg
}

func buildTable(t *testing.T, cfg Config, parallel int) *CostTable {
	t.Helper()
	table, err := BuildCostTable(context.Background(), cfg, parallel, nil)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestCostTableParallelismIndependent(t *testing.T) {
	cfg := testConfig(t)
	seq := buildTable(t, cfg, 1)
	par := buildTable(t, cfg, 4)
	if !reflect.DeepEqual(seq.entries, par.entries) {
		t.Fatal("cost table differs between parallel 1 and 4")
	}
	c1 := seq.Cost(cfg.Models[0].Name, 1)
	if c1.Service <= 0 || c1.Infer <= 0 || c1.Infer >= c1.Service {
		t.Fatalf("implausible batch-1 cost: %+v", c1)
	}
	c4 := seq.Cost(cfg.Models[0].Name, 4)
	if c4.Service <= c1.Service {
		t.Fatalf("batch 4 (%v) not costlier than batch 1 (%v)", c4.Service, c1.Service)
	}
}

func TestSimulateReportDeterministicAcrossParallelism(t *testing.T) {
	cfg := testConfig(t)
	spec := loadgen.Spec{
		Seed:   7,
		Phases: []loadgen.Phase{{QPS: 200, Duration: 300 * time.Millisecond}},
		Mix:    []loadgen.Share{{Model: cfg.Models[0].Name, Weight: 1}},
	}
	arrivals, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var reports []string
	for _, par := range []int{1, 2, 8} {
		table := buildTable(t, cfg, par)
		res, err := Simulate(cfg, table, arrivals, true)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, res.Report(cfg, "200x300ms"))
	}
	if reports[0] != reports[1] || reports[0] != reports[2] {
		t.Fatal("load report differs across cost-table parallelism")
	}
	if len(reports[0]) == 0 {
		t.Fatal("empty report")
	}
}

// at builds a handcrafted arrival list for one model.
func at(model string, offsets ...time.Duration) []loadgen.Arrival {
	arr := make([]loadgen.Arrival, len(offsets))
	for i, o := range offsets {
		arr[i] = loadgen.Arrival{ID: i, At: o, Model: model}
	}
	return arr
}

func TestBatchWindowFlushesPartialBatch(t *testing.T) {
	cfg := testConfig(t)
	table := buildTable(t, cfg, 0)
	name := cfg.Models[0].Name
	// Three riders inside one 2ms window: the batch flushes when the
	// window closes, 2ms after the first arrival.
	res, err := Simulate(cfg, table, at(name, 0, 500*time.Microsecond, time.Millisecond), false)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outcomes {
		if o.Rejected {
			t.Fatalf("request %d rejected", i)
		}
		if o.BatchSize != 3 {
			t.Fatalf("request %d in batch of %d, want 3", i, o.BatchSize)
		}
		if o.Flushed != sim.Time(cfg.BatchWindow) {
			t.Fatalf("request %d flushed at %v, want window close %v", i, o.Flushed, cfg.BatchWindow)
		}
	}
	// The first rider waited the full window; that wait is tax.
	first := res.Outcomes[0]
	if first.BatchWait() != cfg.BatchWindow {
		t.Fatalf("first rider batch wait %v, want %v", first.BatchWait(), cfg.BatchWindow)
	}
	if first.Tax() < first.BatchWait() {
		t.Fatalf("tax %v does not cover batch wait %v", first.Tax(), first.BatchWait())
	}
	if res.Batches[0].Batches != 1 {
		t.Fatalf("got %d batches, want 1", res.Batches[0].Batches)
	}
}

func TestMaxBatchFlushesEarly(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 2
	table := buildTable(t, cfg, 0)
	name := cfg.Models[0].Name
	res, err := Simulate(cfg, table, at(name, 0, time.Millisecond), false)
	if err != nil {
		t.Fatal(err)
	}
	second := res.Outcomes[1]
	if second.BatchSize != 2 {
		t.Fatalf("batch size %d, want 2", second.BatchSize)
	}
	// The max-batch flush fires on the second arrival, not at the
	// window close.
	if second.Flushed != second.Arrival {
		t.Fatalf("flush at %v, want immediately at second arrival %v", second.Flushed, second.Arrival)
	}
}

func TestAdmissionControlRejectsAndCounts(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 2
	cfg.MaxBatch = 2
	cfg.Workers = 1
	table := buildTable(t, cfg, 0)
	name := cfg.Models[0].Name
	// Six near-simultaneous arrivals against depth 2: the first two
	// admit (and enter service as one batch, freeing no depth until
	// service starts on the same tick), later ones hit a full queue
	// while the executor is busy.
	res, err := Simulate(cfg, table,
		at(name, 0, time.Microsecond, 2*time.Microsecond, 3*time.Microsecond, 4*time.Microsecond, 5*time.Microsecond),
		false)
	if err != nil {
		t.Fatal(err)
	}
	served, rejected := 0, 0
	for _, o := range res.Outcomes {
		if o.Rejected {
			rejected++
		} else {
			served++
		}
	}
	if rejected == 0 {
		t.Fatal("no rejections despite queue depth 2 under a 6-request burst")
	}
	if served+rejected != len(res.Outcomes) {
		t.Fatalf("served %d + rejected %d != offered %d", served, rejected, len(res.Outcomes))
	}
	reqs := res.Metrics.Counter(telemetry.Labeled("aitax_serve_requests_total", "model", name))
	rej := res.Metrics.Counter(telemetry.Labeled("aitax_serve_rejected_total", "model", name))
	if int(reqs) != len(res.Outcomes) || int(rej) != rejected {
		t.Fatalf("metrics disagree: requests %v rejected %v, want %d / %d",
			reqs, rej, len(res.Outcomes), rejected)
	}
}

func TestSimulateTracesSpansAndDepth(t *testing.T) {
	cfg := testConfig(t)
	table := buildTable(t, cfg, 0)
	name := cfg.Models[0].Name
	res, err := Simulate(cfg, table, at(name, 0, time.Millisecond), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced simulation produced no spans")
	}
	names := map[string]int{}
	for _, sp := range res.Spans {
		names[sp.Name]++
	}
	if names["request"] != 2 || names["batch"] != 1 {
		t.Fatalf("span census %v, want 2 request + 1 batch", names)
	}
	if len(res.Depth) == 0 {
		t.Fatal("no queue-depth samples")
	}
}

func TestSimulateRejectsUnknownArrivalModel(t *testing.T) {
	cfg := testConfig(t)
	table := buildTable(t, cfg, 0)
	_, err := Simulate(cfg, table, at("No Such Model", 0), false)
	if err == nil {
		t.Fatal("Simulate accepted an arrival for an unloaded model")
	}
}
