package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aitax/internal/qos"
	"aitax/internal/sim"
	"aitax/internal/tflite"
	"aitax/internal/thermal"
)

// QoSPolicy configures the brownout controller behind a serving harness:
// the degradation ladder, the model-downshift map, the delegate batches
// steer to when the configured accelerator runs hot, and the thermal
// model of that accelerator's die.
type QoSPolicy struct {
	// Ladder is the brownout policy; zero fields take qos defaults.
	Ladder qos.Ladder
	// Downshift maps a requested model to the cheaper same-task model
	// that serves it at ladder level 2+. Both sides must be loaded and
	// no target may itself be downshifted (no chains).
	Downshift map[string]string
	// SteerDelegate is where batches run at ladder level 3 — it must
	// differ from the configured delegate, or steering is a no-op.
	SteerDelegate tflite.Delegate
	// Thermal is the accelerator die model (nil = thermal.Default()).
	// Each run advances its own clone, never this template.
	Thermal *thermal.Model
	// Observe freezes the controller at level 0: pressure, burn and the
	// would-be timeline are still computed and reported every tick, but
	// no action ever engages. This is the storm comparison's baseline.
	Observe bool
}

// withDefaults returns a defaulted copy (the caller's policy is never
// mutated).
func (p *QoSPolicy) withDefaults() *QoSPolicy {
	q := *p
	q.Ladder = q.Ladder.Defaults()
	if q.Thermal == nil {
		q.Thermal = thermal.Default()
	}
	return &q
}

// ParseDownshift parses "FROM=TO,FROM=TO" into a downshift map. Pair
// validity against the loaded model set is Config.Validate's job.
func ParseDownshift(spec string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		from, to, ok := strings.Cut(part, "=")
		from, to = strings.TrimSpace(from), strings.TrimSpace(to)
		if !ok || from == "" || to == "" {
			return nil, fmt.Errorf("serve: downshift %q is not FROM=TO", part)
		}
		if prev, dup := out[from]; dup {
			return nil, fmt.Errorf("serve: downshift %q already maps to %q", from, prev)
		}
		out[from] = to
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: empty downshift spec")
	}
	return out, nil
}

// validateQoS checks the policy against the loaded model set.
func (c Config) validateQoS() error {
	p := c.QoS
	if err := p.Ladder.Validate(); err != nil {
		return err
	}
	if len(c.SLO) == 0 {
		return fmt.Errorf("serve: qos needs at least one SLO objective (the burn signal)")
	}
	if p.SteerDelegate == c.Delegate {
		return fmt.Errorf("serve: steer delegate %v is the serving delegate — steering would be a no-op", p.SteerDelegate)
	}
	if p.Thermal != nil {
		if err := p.Thermal.Validate(); err != nil {
			return err
		}
	}
	for from, to := range p.Downshift {
		fm, ok := c.modelByName(from)
		if !ok {
			return fmt.Errorf("serve: downshift source %q is not loaded", from)
		}
		tm, ok := c.modelByName(to)
		if !ok {
			return fmt.Errorf("serve: downshift target %q is not loaded", to)
		}
		if from == to {
			return fmt.Errorf("serve: downshift %q to itself", from)
		}
		if fm.Task != tm.Task {
			return fmt.Errorf("serve: downshift %q (%s) to %q (%s) crosses tasks", from, fm.Task, to, tm.Task)
		}
		if _, chained := p.Downshift[to]; chained {
			return fmt.Errorf("serve: downshift target %q is itself downshifted (no chains)", to)
		}
	}
	return nil
}

// rearmHeadroomC is the cool-down hysteresis on the latched trip state:
// once tripped, the accelerator stays off-limits until it has cooled
// this far below the trip point.
const rearmHeadroomC = 2.0

// Transition is one ladder level change in the degradation timeline.
type Transition struct {
	At       time.Duration
	From, To int
	Pressure float64
	Driver   string
	TempC    float64
}

// Degradation is the brownout controller's run accounting: every action
// it took, and the thermal trajectory it steered. Nil on runs without a
// QoS policy.
type Degradation struct {
	// Observe marks the frozen (observe-only) baseline.
	Observe bool
	// Ticks counts controller decisions; Transitions the level changes,
	// in time order.
	Ticks       int
	Transitions []Transition
	// TimeAtLevel is how long the run sat at each ladder level.
	TimeAtLevel [qos.NumRungs + 1]time.Duration
	// Shed counts admission-shed requests per class.
	Shed [qos.NumClasses]int
	// Downshifted counts requests served by their fallback model;
	// SteeredBatches the batches run on the steer delegate;
	// ThrottledBatches the batches stretched by DVFS throttling.
	Downshifted      int
	SteeredBatches   int
	ThrottledBatches int
	// Tripped marks a hard thermal trip; TripAt its first firing.
	Tripped bool
	TripAt  time.Duration
	// PeakTempC and FinalTempC bracket the die trajectory.
	PeakTempC  float64
	FinalTempC float64
}

// ShedTotal is the total count of admission-shed requests.
func (d *Degradation) ShedTotal() int {
	n := 0
	for _, s := range d.Shed {
		n += s
	}
	return n
}

// FullyEngaged reports the ladder reached its top rung at some point.
func (d *Degradation) FullyEngaged() bool {
	for _, t := range d.Transitions {
		if t.To == qos.NumRungs {
			return true
		}
	}
	return false
}

// Recovered reports the ladder came back down to level 0 after having
// engaged at all.
func (d *Degradation) Recovered() bool {
	engaged := false
	for _, t := range d.Transitions {
		if t.To > 0 {
			engaged = true
		}
	}
	if !engaged || len(d.Transitions) == 0 {
		return false
	}
	return d.Transitions[len(d.Transitions)-1].To == 0
}

// qosState is one run's brownout state: the controller, its private
// clone of the thermal model, the latched trip, and the accounting the
// report renders. The simulator drives it on virtual time; the HTTP
// frontend drives it under the server mutex on wall clock.
type qosState struct {
	pol     *QoSPolicy
	ctl     *qos.Controller
	therm   *thermal.Model
	tripped bool
	deg     Degradation

	// Virtual-time busy integral (simulator only): hot counts executing
	// batches on the configured (heat-producing) delegate.
	hot       int
	lastBusy  sim.Time
	busyInt   time.Duration
	lastTick  sim.Time
	tickID    sim.EventID
	tickArmed bool
}

// newQOSState builds a run's controller and thermal clone from the
// (already validated) config.
func newQOSState(cfg Config) (*qosState, error) {
	ctl, err := qos.NewController(cfg.QoS.Ladder)
	if err != nil {
		return nil, err
	}
	if cfg.QoS.Observe {
		ctl.Freeze()
	}
	return &qosState{pol: cfg.QoS, ctl: ctl, therm: cfg.QoS.Thermal.Clone()}, nil
}

// step advances the thermal model by dt at the given utilization,
// updates the latched trip state, and runs one controller decision.
// faultTrip reports the fault plan's scheduled trip has fired.
func (qs *qosState) step(now, dt time.Duration, util, queueFrac float64, faultTrip bool) qos.Tick {
	qs.therm.Advance(dt, util)
	temp := qs.therm.TempC()
	if temp > qs.deg.PeakTempC {
		qs.deg.PeakTempC = temp
	}
	if qs.therm.Tripped() || faultTrip {
		qs.tripped = true
		if !qs.deg.Tripped {
			qs.deg.Tripped = true
			qs.deg.TripAt = now
		}
	} else if qs.tripped && qs.therm.Headroom() >= rearmHeadroomC {
		qs.tripped = false
	}
	t := qs.ctl.TickAt(now, qos.Signals{
		QueueFrac: queueFrac,
		HeadroomC: qs.therm.Headroom(),
		Tripped:   qs.tripped,
	})
	qs.deg.Ticks++
	qs.deg.TimeAtLevel[t.From] += dt
	if t.Changed {
		qs.deg.Transitions = append(qs.deg.Transitions, Transition{
			At: now, From: t.From, To: t.Level, Pressure: t.Pressure, Driver: t.Driver, TempC: temp,
		})
	}
	return t
}

// finish closes the accounting and returns the run's degradation
// record.
func (qs *qosState) finish() *Degradation {
	d := qs.deg
	d.Observe = qs.pol.Observe
	d.FinalTempC = qs.therm.TempC()
	return &d
}

// classAgg is one QoS class's row in the per-class latency table.
type classAgg struct {
	offered, served, shed, rejected int
	latencies                       []time.Duration
}

// writeDegradation renders the "degradation anatomy" report section:
// the ladder timeline, every action's count, and the thermal
// trajectory — the brownout controller's own AI-tax bill.
func (r *SimResult) writeDegradation(b *strings.Builder, cfg Config) {
	d := r.Degradation
	mode := "active"
	if d.Observe {
		mode = "observe-only (frozen at L0)"
	}
	fmt.Fprintf(b, "\ndegradation anatomy (brownout controller %s, tick %v)\n", mode, cfg.QoS.Ladder.Tick)
	fmt.Fprintf(b, "  ladder: L0 %.3fs | L1 %.3fs | L2 %.3fs | L3 %.3fs  (%d ticks, %d transitions)\n",
		d.TimeAtLevel[0].Seconds(), d.TimeAtLevel[1].Seconds(),
		d.TimeAtLevel[2].Seconds(), d.TimeAtLevel[3].Seconds(),
		d.Ticks, len(d.Transitions))
	fmt.Fprintf(b, "  actions: shed %d best-effort + %d standard + %d interactive | downshifted %d | steered batches %d | throttled batches %d\n",
		d.Shed[qos.BestEffort], d.Shed[qos.Standard], d.Shed[qos.Interactive],
		d.Downshifted, d.SteeredBatches, d.ThrottledBatches)
	if d.Tripped {
		fmt.Fprintf(b, "  thermal: peak %.1fC | final %.1fC | tripped at %v\n", d.PeakTempC, d.FinalTempC, d.TripAt)
	} else {
		fmt.Fprintf(b, "  thermal: peak %.1fC | final %.1fC | no trip\n", d.PeakTempC, d.FinalTempC)
	}
	if len(d.Transitions) > 0 {
		fmt.Fprintf(b, "  transitions:\n")
		for _, tr := range d.Transitions {
			fmt.Fprintf(b, "    %-10v L%d->L%d  pressure %.2f  driver %-7s  temp %.1fC\n",
				tr.At, tr.From, tr.To, tr.Pressure, tr.Driver, tr.TempC)
		}
	}

	agg := make([]classAgg, qos.NumClasses)
	for _, o := range r.Outcomes {
		a := &agg[o.Class]
		a.offered++
		switch {
		case o.Shed:
			a.shed++
		case o.Rejected:
			a.rejected++
		default:
			a.served++
			a.latencies = append(a.latencies, o.Latency())
		}
	}
	fmt.Fprintf(b, "\nper-class latency (virtual ms)\n")
	fmt.Fprintf(b, "%-13s %8s %8s %8s %9s %8s %8s\n",
		"class", "offered", "served", "shed", "rejected", "p50", "p99")
	for c := 0; c < qos.NumClasses; c++ {
		a := agg[c]
		sort.Slice(a.latencies, func(i, j int) bool { return a.latencies[i] < a.latencies[j] })
		fmt.Fprintf(b, "%-13s %8d %8d %8d %9d %8.3f %8.3f\n",
			qos.Class(c).String(), a.offered, a.served, a.shed, a.rejected,
			ms(quantileDur(a.latencies, 0.50)), ms(quantileDur(a.latencies, 0.99)))
	}
}
