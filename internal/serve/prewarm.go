package serve

import (
	"context"
	"fmt"

	"aitax/internal/obs"
	"aitax/internal/plan"
	"aitax/internal/qos"
	"aitax/internal/telemetry"
	"aitax/internal/tflite"
)

// PrewarmConfig compiles the serving plans for every loaded model into
// the process-shared cache: one single-request batch per model (and,
// when a QoS policy can steer, per model on the steer delegate too), so
// the exact plan keys serving touches — partition assignments, op-cost
// schedules, NNAPI compilations — are warm before the first request.
// The batches run in virtual time on throwaway stacks; only the cached
// plans survive, so results are byte-identical with or without the
// pass. The report prices the pass as cold-start AI tax moved from the
// first requests to startup.
func PrewarmConfig(ctx context.Context, cfg Config) (plan.Report, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return plan.Report{}, err
	}
	var firstErr error
	grid := []Config{cfg}
	if cfg.QoS != nil {
		steered := cfg
		steered.Delegate = cfg.QoS.SteerDelegate
		grid = append(grid, steered)
	}
	var jobs []plan.Job
	for _, c := range grid {
		for _, m := range c.Models {
			if !tflite.Supported(m, c.DType, c.Delegate) {
				// A loaded model outside the Table-I support matrix for this
				// configuration can't compile; requests to it fail the same
				// way warmed or not, so skip it rather than abort the pass.
				continue
			}
			c, m := c, m
			jobs = append(jobs, plan.Job{
				Label: fmt.Sprintf("%s/%s/%v/%v", c.Platform.Name, m.Name, c.DType, c.Delegate),
				Compile: func() {
					if _, err := MeasureBatch(ctx, c, m, 1); err != nil && firstErr == nil {
						firstErr = err
					}
				},
			})
		}
	}
	rep := plan.Shared.Prewarm(jobs)
	return rep, firstErr
}

// Prewarm readies the HTTP frontend before it takes traffic: it runs
// PrewarmConfig so the first batch per model pays no plan compilation,
// then warms the harness's own state — every metric and recorder series
// the handlers touch is pre-created (empty, no fabricated samples) and
// the QoS gauges are published — so the first /metrics scrape and the
// first recorder window aren't outliers missing most of the series set.
func (s *Server) Prewarm(ctx context.Context) (plan.Report, error) {
	rep, err := PrewarmConfig(ctx, s.cfg)
	if err != nil {
		return rep, err
	}
	s.warmTelemetry()
	return rep, nil
}

// warmTelemetry pre-creates the serving series in the registry and the
// streaming recorder, and publishes the brownout gauges' starting
// values. Counters are touched with +0 and histograms created empty, so
// nothing a later scrape or window reports is fabricated.
func (s *Server) warmTelemetry() {
	at := s.now()
	names := make([]string, 0, len(s.cfg.Models))
	for _, m := range s.cfg.Models {
		names = append(names, m.Name)
	}
	for _, name := range names {
		s.metrics.Add(telemetry.Labeled("aitax_serve_requests_total", "model", name), 0)
		s.metrics.Add(telemetry.Labeled("aitax_serve_rejected_total", "model", name), 0)
		s.metrics.Add(telemetry.Labeled("aitax_serve_cancelled_total", "model", name), 0)
		s.metrics.Add(telemetry.Labeled("aitax_serve_batches_total", "model", name), 0)
		s.metrics.TouchHistogram(telemetry.Labeled("aitax_serve_batch_size", "model", name))
		s.metrics.TouchHistogram(telemetry.Labeled("aitax_serve_service_ms", "model", name))
	}
	for _, name := range append(names, obs.AllModels) {
		s.rec.Add(at, obs.OfferedSeries(name), 0)
		s.rec.Add(at, obs.ServedSeries(name), 0)
		s.rec.Add(at, obs.RejectedSeries(name), 0)
		s.rec.Add(at, obs.CancelledSeries(name), 0)
		s.rec.Touch(at, obs.LatencySeries(name))
		s.rec.Touch(at, obs.BatchSeries(name))
		s.rec.Touch(at, obs.BatchWaitSeries(name))
	}
	for _, name := range names {
		s.rec.Touch(at, obs.DepthSeries(name))
	}
	for _, st := range obs.Stages {
		s.rec.Add(at, obs.StageSeries(st), 0)
	}
	for _, obj := range s.cfg.SLO {
		s.rec.Add(at, obs.GoodSeries(obj), 0)
		s.rec.Add(at, obs.BadSeries(obj), 0)
	}
	if s.qs != nil {
		s.mu.Lock()
		temp := s.qs.therm.TempC()
		s.mu.Unlock()
		s.metrics.Set("aitax_qos_level", 0)
		s.metrics.Set("aitax_qos_temp_c", temp)
		s.metrics.Add("aitax_qos_transitions_total", 0)
		s.metrics.Add("aitax_qos_steered_batches_total", 0)
		s.metrics.Add("aitax_qos_throttled_batches_total", 0)
		for c := qos.Class(0); c < qos.NumClasses; c++ {
			s.metrics.Add(telemetry.Labeled("aitax_qos_shed_total", "class", c.String()), 0)
		}
		for _, name := range names {
			if _, ok := s.cfg.QoS.Downshift[name]; ok {
				s.metrics.Add(telemetry.Labeled("aitax_qos_downshift_total", "model", name), 0)
			}
		}
	}
}
