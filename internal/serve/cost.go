package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"aitax/internal/app"
	"aitax/internal/faults"
	"aitax/internal/lab"
	"aitax/internal/models"
	"aitax/internal/sim"
	"aitax/internal/telemetry"
	"aitax/internal/tflite"
)

// BatchCost is the measured virtual-time cost of executing one batch of
// a model: k requests run back-to-back on a warm executor stack.
type BatchCost struct {
	// Batch is the batch size k.
	Batch int
	// Service is the executor's busy time for the whole batch (virtual),
	// excluding the per-dispatch overhead (Config.DispatchCost).
	Service time.Duration
	// Infer is the summed inference-stage time across the batch — the
	// useful compute the clients paid for.
	Infer time.Duration
	// Tax is the summed per-frame pipeline tax across the batch
	// (pre/post processing, fault retries, delegate fallback).
	Tax time.Duration
	// Pre and Post are the summed pre-/post-processing stage times — the
	// Table-III anatomy the streaming recorder exports per window.
	Pre  time.Duration
	Post time.Duration
	// RPC is the summed FastRPC overhead inside the inference stage
	// (transport + queue + cache flush) and Exec the summed remote
	// kernel execution, both measured from the stack's fastrpc metrics.
	// Zero on delegates that never cross to the DSP.
	RPC  time.Duration
	Exec time.Duration
}

// batchSeed derives the executor-stack seed for one (model, batch-size)
// measurement. It depends only on the base seed and the measurement's
// identity, never on scheduling, so the cost table is a pure function
// of the config.
func batchSeed(base uint64, model string, k int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	return base ^ h.Sum64() ^ uint64(k)*0x9E3779B97F4A7C15
}

// MeasureBatch builds a fresh executor stack for m, warms it (Init
// loads the model and compiles the plan — shared process-wide through
// plan.Shared), and runs a batch of k requests through the stage
// subgraph [cfg.Entry, post]. Each measurement is an independent,
// fully deterministic simulation.
func MeasureBatch(ctx context.Context, cfg Config, m *models.Model, k int) (BatchCost, error) {
	if k < 1 {
		return BatchCost{}, fmt.Errorf("serve: batch size must be at least 1, got %d", k)
	}
	rt := tflite.NewStack(cfg.Platform, batchSeed(cfg.Seed, m.Name, k))
	inj, err := faults.New(cfg.Faults.Resolved(cfg.Seed))
	if err != nil {
		return BatchCost{}, err
	}
	rt.Faults = inj
	// A streaming (bounded-memory) registry on the stack captures the
	// FastRPC split for the anatomy export. Metrics recording is
	// host-side only: virtual timing, and therefore every golden, is
	// unchanged by the attachment.
	mreg := telemetry.NewStreamingRegistry()
	rt.Metrics = mreg
	a, err := app.New(rt, app.Config{
		Model: m, DType: cfg.DType, Delegate: cfg.Delegate, Streaming: false,
	})
	if err != nil {
		return BatchCost{}, err
	}
	rpcSum := func() time.Duration {
		ms := mreg.Sum("aitax_fastrpc_transport_ms") +
			mreg.Sum("aitax_fastrpc_queue_ms") +
			mreg.Sum("aitax_fastrpc_cache_flush_ms")
		return time.Duration(ms * float64(time.Millisecond))
	}
	execSum := func() time.Duration {
		return time.Duration(mreg.Sum("aitax_fastrpc_exec_ms") * float64(time.Millisecond))
	}
	bc := BatchCost{Batch: k}
	a.Init(func() {
		start := rt.Eng.Now()
		// Baselines taken after init: model load / plan compilation RPC
		// traffic is setup cost, not part of the batch's anatomy.
		rpc0, exec0 := rpcSum(), execSum()
		var next func(i int)
		next = func(i int) {
			if i == k {
				bc.Service = rt.Eng.Now().Sub(start)
				bc.RPC = rpcSum() - rpc0
				bc.Exec = execSum() - exec0
				return
			}
			a.ProcessRange(cfg.Entry, app.StagePost, func(st app.FrameStats) {
				bc.Infer += st.Inference
				bc.Tax += st.Tax()
				bc.Pre += st.Pre
				bc.Post += st.Post
				next(i + 1)
			})
		}
		next(0)
	})
	if err := drain(ctx, rt.Eng); err != nil {
		return BatchCost{}, err
	}
	return bc, nil
}

// drain runs the simulation engine to completion, checking ctx between
// event batches and reporting the final virtual time to the enclosing
// lab job (if any).
func drain(ctx context.Context, eng *sim.Engine) error {
	const batch = 4096
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		for i := 0; i < batch; i++ {
			if !eng.Step() {
				lab.ReportSim(ctx, eng.Now().Duration())
				return nil
			}
		}
	}
}

// CostTable holds the measured batch costs for every (loaded model,
// batch size 1..MaxBatch) pair. The virtual-time simulator prices
// batches from it, so queueing decisions and service times decouple:
// the table is built once, in parallel, and the queueing simulation
// replays it sequentially.
type CostTable struct {
	maxBatch int
	entries  map[string][]BatchCost
	// steer holds the same grid measured on the QoS steer delegate;
	// populated only when the config carries a QoS policy.
	steer map[string][]BatchCost
}

// Cost returns the measured cost for a k-request batch of model.
func (t *CostTable) Cost(model string, k int) BatchCost {
	row, ok := t.entries[model]
	if !ok || k < 1 || k > len(row) {
		panic(fmt.Sprintf("serve: no cost entry for %q batch %d", model, k))
	}
	return row[k-1]
}

// SteerCost returns the measured cost for a k-request batch of model on
// the steer delegate.
func (t *CostTable) SteerCost(model string, k int) BatchCost {
	row, ok := t.steer[model]
	if !ok || k < 1 || k > len(row) {
		panic(fmt.Sprintf("serve: no steer cost entry for %q batch %d", model, k))
	}
	return row[k-1]
}

// BuildCostTable measures every (model, batch size) pair on the lab
// worker pool. Each entry is an independent deterministic simulation,
// so the table is byte-identical at any parallelism; onProgress (when
// non-nil) observes per-entry completion.
func BuildCostTable(ctx context.Context, cfg Config, parallel int, onProgress func(lab.JobResult)) (*CostTable, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	type key struct {
		model string
		k     int
		steer bool
	}
	// The steer grid prices batches on the QoS steer delegate — the
	// level-3 fail-over path — with the same per-entry seeds, so adding
	// a policy never perturbs the primary grid.
	steerCfg := cfg
	if cfg.QoS != nil {
		steerCfg.Delegate = cfg.QoS.SteerDelegate
	}
	var jobs []lab.Job
	var keys []key
	for _, m := range cfg.Models {
		m := m
		for k := 1; k <= cfg.MaxBatch; k++ {
			k := k
			keys = append(keys, key{m.Name, k, false})
			jobs = append(jobs, lab.Job{
				ID: fmt.Sprintf("%s/b%d", m.Name, k),
				Run: func(ctx context.Context) (any, error) {
					return MeasureBatch(ctx, cfg, m, k)
				},
			})
			if cfg.QoS != nil {
				keys = append(keys, key{m.Name, k, true})
				jobs = append(jobs, lab.Job{
					ID: fmt.Sprintf("%s/steer/b%d", m.Name, k),
					Run: func(ctx context.Context) (any, error) {
						return MeasureBatch(ctx, steerCfg, m, k)
					},
				})
			}
		}
	}
	l := &lab.Lab{Parallelism: parallel, OnProgress: onProgress}
	results := l.Run(ctx, jobs)
	t := &CostTable{
		maxBatch: cfg.MaxBatch,
		entries:  make(map[string][]BatchCost),
		steer:    make(map[string][]BatchCost),
	}
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("serve: measuring %s: %w", r.ID, r.Err)
		}
		k := keys[i]
		grid := t.entries
		if k.steer {
			grid = t.steer
		}
		row := grid[k.model]
		if row == nil {
			row = make([]BatchCost, cfg.MaxBatch)
			grid[k.model] = row
		}
		row[k.k-1] = r.Value.(BatchCost)
	}
	return t, nil
}
