package serve

import (
	"sort"
	"time"

	"aitax/internal/obs"
)

// SimObs is the streaming-observability view of a finished load
// simulation: the windowed recorder, the closed rows (for JSONL and
// Chrome counter export), and the SLO monitor's verdicts. It is built
// by replaying the simulator's outcome list — already byte-identical at
// any parallelism — through the same obs layer the wall-clock HTTP
// frontend feeds live, so reports, goldens and dashboards come from one
// code path.
type SimObs struct {
	Recorder *obs.Recorder
	// Monitor is nil when no objectives were configured.
	Monitor *obs.Monitor
	// Rows are the closed windows in index order.
	Rows []obs.Row
	// Models are the configured model names, in config order.
	Models []string
	// End is the virtual time the run drained at.
	End time.Duration
}

// obsEvent is one replay step; kind orders simultaneous events
// deterministically (admission before rejection before completion
// before executor pickup).
type obsEvent struct {
	at   time.Duration
	kind int
	idx  int // index into res.Outcomes
}

const (
	evArrive = iota
	evReject
	evFinish
	evStart
	evShed
)

// BuildSimObs replays a finished simulation into the streaming
// observability layer. window is the aggregation window width (zero =
// the recorder default); objectives, when non-empty, attach an SLO
// burn-rate monitor fed by the closed windows.
func BuildSimObs(cfg Config, res *SimResult, window time.Duration, objectives []obs.Objective) *SimObs {
	so := &SimObs{End: res.End.Duration()}
	for _, m := range cfg.Models {
		so.Models = append(so.Models, m.Name)
	}

	var mon *obs.Monitor
	rec := obs.NewRecorder(obs.RecorderConfig{
		Window: window,
		// The replay is ordered, so every window beyond the horizon is
		// final: keep just enough live for the dashboard's rolling view.
		Keep: 64,
		OnClose: func(row obs.Row) {
			so.Rows = append(so.Rows, row)
			if mon != nil {
				mon.OnRow(row)
			}
		},
	})
	if len(objectives) > 0 {
		mon = obs.NewMonitor(objectives, rec.Window())
		mon.KeepHistory = true
	}
	so.Recorder = rec
	so.Monitor = mon

	events := make([]obsEvent, 0, 4*len(res.Outcomes))
	for i, o := range res.Outcomes {
		if o.Shed {
			events = append(events, obsEvent{o.Arrival.Duration(), evShed, i})
			continue
		}
		if o.Rejected {
			events = append(events, obsEvent{o.Arrival.Duration(), evReject, i})
			continue
		}
		events = append(events,
			obsEvent{o.Arrival.Duration(), evArrive, i},
			obsEvent{o.Started.Duration(), evStart, i},
			obsEvent{o.Finished.Duration(), evFinish, i},
		)
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return res.Outcomes[a.idx].ID < res.Outcomes[b.idx].ID
	})

	depth := make(map[string]int, len(so.Models))
	depthAll := 0
	for _, ev := range events {
		o := res.Outcomes[ev.idx]
		switch ev.kind {
		case evArrive:
			rec.Add(ev.at, obs.OfferedSeries(o.Model), 1)
			rec.Add(ev.at, obs.OfferedSeries(obs.AllModels), 1)
			depth[o.Model]++
			depthAll++
			rec.Observe(ev.at, obs.DepthSeries(o.Model), float64(depth[o.Model]))
			rec.Observe(ev.at, obs.DepthSeries(obs.AllModels), float64(depthAll))
		case evReject:
			rec.Add(ev.at, obs.OfferedSeries(o.Model), 1)
			rec.Add(ev.at, obs.OfferedSeries(obs.AllModels), 1)
			rec.Add(ev.at, obs.RejectedSeries(o.Model), 1)
			rec.Add(ev.at, obs.RejectedSeries(obs.AllModels), 1)
			for _, obj := range objectives {
				if covered, _ := obj.Match(o.Model, 0, true); covered {
					rec.Add(ev.at, obs.BadSeries(obj), 1)
				}
			}
		case evShed:
			// A shed request was offered and turned away on purpose; it
			// still burns any objective covering its model — shedding is
			// honest about the traffic it sacrifices.
			rec.Add(ev.at, obs.OfferedSeries(o.Model), 1)
			rec.Add(ev.at, obs.OfferedSeries(obs.AllModels), 1)
			rec.Add(ev.at, obs.ShedSeries(o.Model), 1)
			rec.Add(ev.at, obs.ShedSeries(obs.AllModels), 1)
			for _, obj := range objectives {
				if covered, _ := obj.Match(o.Model, 0, true); covered {
					rec.Add(ev.at, obs.BadSeries(obj), 1)
				}
			}
		case evStart:
			depth[o.Model]--
			depthAll--
		case evFinish:
			recordServed(rec, o, ev.at)
			for _, obj := range objectives {
				covered, breached := obj.Match(o.Model, o.Latency(), false)
				if !covered {
					continue
				}
				if breached {
					rec.Add(ev.at, obs.BadSeries(obj), 1)
				} else {
					rec.Add(ev.at, obs.GoodSeries(obj), 1)
				}
			}
		}
	}
	rec.Flush()
	return so
}

// recordServed records one completed request's latency, batching and
// Table-III stage anatomy under the shared series-name contract — the
// single write path both harnesses use.
func recordServed(rec *obs.Recorder, o Outcome, at time.Duration) {
	latMS := ms(o.Latency())
	for _, m := range []string{o.Model, obs.AllModels} {
		rec.Add(at, obs.ServedSeries(m), 1)
		rec.Observe(at, obs.LatencySeries(m), latMS)
		rec.Observe(at, obs.BatchSeries(m), float64(o.BatchSize))
		rec.Observe(at, obs.BatchWaitSeries(m), ms(o.BatchWait()))
		rec.Observe(at, obs.DispatchWaitSeries(m), ms(o.DispatchWait()))
	}
	rec.Add(at, obs.StageSeries("pre"), ms(o.Pre))
	rec.Add(at, obs.StageSeries("framework"), ms(o.Framework()))
	rec.Add(at, obs.StageSeries("rpc"), ms(o.RPC))
	rec.Add(at, obs.StageSeries("infer"), ms(o.KernelExec()))
	rec.Add(at, obs.StageSeries("post"), ms(o.Post))
}

// Snapshot renders the end-of-run -watch dashboard: the exact text a
// live terminal dashboard would show at the moment the run drained.
func (so *SimObs) Snapshot() string {
	d := &obs.Dashboard{Rec: so.Recorder, Mon: so.Monitor, Models: so.Models}
	return d.Render(so.End)
}
