package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"aitax/internal/models"
	"aitax/internal/obs"
	"aitax/internal/qos"
	"aitax/internal/tflite"
)

// qosServerConfig mirrors qosConfig for the wall-clock frontend: the
// EfficientNet -> MobileNet downshift pair, an SLO to feed the burn
// signal, and a ladder ticking so slowly the background loop never
// interferes with a test that sets the level by hand.
func qosServerConfig(c *Config, t *testing.T) {
	t.Helper()
	eff, err := models.ByName("EfficientNet-Lite0")
	if err != nil {
		t.Fatal(err)
	}
	c.Models = append(c.Models, eff)
	c.SLO = []obs.Objective{{Model: "EfficientNet-Lite0", Latency: 300 * time.Millisecond, Target: 0.95}}
	c.QoS = &QoSPolicy{
		Ladder:        qos.Ladder{Tick: time.Hour},
		Downshift:     map[string]string{"EfficientNet-Lite0": "MobileNet 1.0 v1"},
		SteerDelegate: tflite.DelegateGPU,
	}
}

// forceLevel climbs the server's controller to the requested rung by
// feeding it saturated-queue ticks under the server mutex.
func forceLevel(t *testing.T, srv *Server, level int) {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for i := 0; i < level; i++ {
		srv.qs.ctl.TickAt(time.Duration(i)*time.Millisecond, qos.Signals{QueueFrac: 1})
	}
	if got := srv.qs.ctl.Level(); got != level {
		t.Fatalf("forced level %d, got %d", level, got)
	}
}

func TestHTTPBadClassIs400(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, out := postJSON(t, ts.URL+"/v1/classify", `{"class":"bogus"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %v", resp.StatusCode, out)
	}
	if !strings.Contains(out["error"].(string), "bogus") {
		t.Fatalf("error %q does not name the bad class", out["error"])
	}
}

func TestHTTPShedsBestEffortUnderBrownout(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.Models = DefaultModels()[:1]
		qosServerConfig(c, t)
	})
	forceLevel(t, srv, 1)
	resp, out := postJSON(t, ts.URL+"/v1/classify", `{"class":"best-effort"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 503 without Retry-After")
	}
	if !strings.Contains(out["error"].(string), "shedding") {
		t.Fatalf("shed error %q", out["error"])
	}
	if got := srv.Metrics().Counter(`aitax_qos_shed_total{class="best-effort"}`); got != 1 {
		t.Fatalf("shed counter %v, want 1", got)
	}
	// Protected classes still get served at level 1.
	resp, out = postJSON(t, ts.URL+"/v1/classify", `{"class":"interactive"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive status %d under L1: %v", resp.StatusCode, out)
	}
}

func TestHTTPDownshiftAndSteerAtTopRung(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.Models = DefaultModels()[:1]
		qosServerConfig(c, t)
	})
	forceLevel(t, srv, qos.NumRungs)
	resp, out := postJSON(t, ts.URL+"/v1/classify", `{"model":"EfficientNet-Lite0"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["model"] != "EfficientNet-Lite0" {
		t.Fatalf("response model %v, want the requested name", out["model"])
	}
	if out["served_by"] != "MobileNet 1.0 v1" {
		t.Fatalf("served_by %v, want the downshift target", out["served_by"])
	}
	if got := srv.Metrics().Counter(`aitax_qos_downshift_total{model="EfficientNet-Lite0"}`); got != 1 {
		t.Fatalf("downshift counter %v, want 1", got)
	}
	if got := srv.Metrics().Counter("aitax_qos_steered_batches_total"); got < 1 {
		t.Fatalf("steered counter %v, want >= 1", got)
	}
	srv.mu.Lock()
	deg := srv.qs.deg
	srv.mu.Unlock()
	if deg.Downshifted != 1 || deg.SteeredBatches < 1 {
		t.Fatalf("degradation record %+v", deg)
	}
}

func TestHTTPQoSLoopTicksOnWallClock(t *testing.T) {
	srv, _ := newTestServer(t, func(c *Config) {
		c.Models = DefaultModels()[:1]
		qosServerConfig(c, t)
		c.QoS.Ladder.Tick = 2 * time.Millisecond
		c.QoS.Observe = true
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		ticks := srv.qs.deg.Ticks
		srv.mu.Unlock()
		if ticks >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("qos loop never ticked")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHTTPShutdownDrainsOpenWindows(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.BatchWindow = time.Minute // hold the batch open until drain
		c.MaxBatch = 8
	})
	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(`{}`))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		queued := srv.queues["MobileNet 1.0 v1"].queued
		srv.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Shutdown flushes the open window: the queued request is served,
	// not dropped, and the drain completes within the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if code := <-first; code != http.StatusOK {
		t.Fatalf("held request finished with %d, want 200", code)
	}
	// Admission during/after drain answers 503 with a Retry-After.
	resp, out := postJSON(t, ts.URL+"/v1/classify", `{}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503: %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 without Retry-After")
	}
}

func TestHTTPCancelledRequestLeavesQueue(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.BatchWindow = time.Minute // keep the request queued
		c.MaxBatch = 8
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/classify", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	q := srv.queues["MobileNet 1.0 v1"]
	for {
		srv.mu.Lock()
		queued := q.queued
		srv.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned without error")
	}
	// The abandoned request is pulled out before dispatch: queue slot
	// freed, window timer stopped, and it counts as cancelled.
	for {
		srv.mu.Lock()
		queued, pending, timer := q.queued, len(q.pending), q.timer
		srv.mu.Unlock()
		if queued == 0 && pending == 0 && timer == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled request not removed: queued %d pending %d", queued, pending)
		}
		time.Sleep(time.Millisecond)
	}
	for {
		if srv.Metrics().Counter(`aitax_serve_cancelled_total{model="MobileNet 1.0 v1"}`) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled counter never incremented")
		}
		time.Sleep(time.Millisecond)
	}
}
