package serve

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ms renders a duration in milliseconds for the report's columns.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// quantileDur is the nearest-rank percentile on a sorted slice, the
// same rule the telemetry registry uses, so report and -metrics agree.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// modelAgg is one model's (or the aggregate's) report row.
type modelAgg struct {
	name      string
	offered   int
	served    int
	rejected  int
	shed      int
	batches   int
	latencies []time.Duration
	infer     time.Duration
	tax       time.Duration
	batchWait time.Duration
	dispWait  time.Duration
	compute   time.Duration
	batchSum  int
}

func (a *modelAgg) add(o Outcome) {
	a.offered++
	if o.Shed {
		a.shed++
		return
	}
	if o.Rejected {
		a.rejected++
		return
	}
	a.served++
	a.latencies = append(a.latencies, o.Latency())
	a.infer += o.Infer
	a.tax += o.Tax()
	a.batchWait += o.BatchWait()
	a.dispWait += o.DispatchWait()
	a.compute += o.ComputeTax
	a.batchSum += o.BatchSize
}

func meanMS(total time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return ms(total) / float64(n)
}

// Report renders the load simulation as the deterministic text report
// the -loadgen mode prints: admission and batching counts per model,
// latency percentiles, and the serving-tax anatomy. rampDesc echoes the
// offered ramp (the -ramp flag's value).
func (r *SimResult) Report(cfg Config, rampDesc string) string {
	perModel := make(map[string]*modelAgg, len(cfg.Models))
	var order []*modelAgg
	for _, m := range cfg.Models {
		a := &modelAgg{name: m.Name}
		perModel[m.Name] = a
		order = append(order, a)
	}
	all := &modelAgg{name: "all models"}
	for _, o := range r.Outcomes {
		perModel[o.Model].add(o)
		all.add(o)
	}
	rows := append([]*modelAgg{}, order...)
	if len(order) > 1 {
		rows = append(rows, all)
	}
	for _, m := range r.Batches {
		perModel[m.Model].batches = m.Batches
		all.batches += m.Batches
	}

	var b strings.Builder
	fmt.Fprintf(&b, "serving: workers %d | window %v | max batch %d | queue depth %d | entry %v | dispatch %v\n",
		cfg.Workers, cfg.BatchWindow, cfg.MaxBatch, cfg.QueueDepth, cfg.Entry, cfg.DispatchCost)
	fmt.Fprintf(&b, "offered: %d requests (ramp %s) | drained at %v virtual\n\n",
		all.offered, rampDesc, r.End.Duration())

	fmt.Fprintf(&b, "%-24s %8s %8s %9s %8s %10s\n",
		"model", "offered", "served", "rejected", "batches", "mean batch")
	for _, a := range rows {
		meanBatch := 0.0
		if a.served > 0 {
			meanBatch = float64(a.batchSum) / float64(a.served)
		}
		fmt.Fprintf(&b, "%-24s %8d %8d %9d %8d %10.2f\n",
			a.name, a.offered, a.served, a.rejected, a.batches, meanBatch)
	}

	fmt.Fprintf(&b, "\nlatency per served request (virtual ms)\n")
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %8s %8s %6s\n",
		"model", "p50", "p90", "p99", "infer", "tax", "tax%")
	for _, a := range rows {
		sort.Slice(a.latencies, func(i, j int) bool { return a.latencies[i] < a.latencies[j] })
		p50 := quantileDur(a.latencies, 0.50)
		p90 := quantileDur(a.latencies, 0.90)
		p99 := quantileDur(a.latencies, 0.99)
		taxPct := 0.0
		if a.infer+a.tax > 0 {
			taxPct = 100 * float64(a.tax) / float64(a.infer+a.tax)
		}
		fmt.Fprintf(&b, "%-24s %8.3f %8.3f %8.3f %8.3f %8.3f %5.1f%%\n",
			a.name, ms(p50), ms(p90), ms(p99),
			meanMS(a.infer, a.served), meanMS(a.tax, a.served), taxPct)
	}

	fmt.Fprintf(&b, "\nserving-tax anatomy (mean ms per served request)\n")
	fmt.Fprintf(&b, "%-24s %10s %13s %11s %8s\n",
		"model", "batch-wait", "dispatch-wait", "compute-tax", "co-ride")
	for _, a := range rows {
		// co-ride: in-service time serialized behind batch co-riders'
		// inference (total tax minus the named components).
		coRide := a.tax - a.batchWait - a.dispWait - a.compute
		fmt.Fprintf(&b, "%-24s %10.3f %13.3f %11.3f %8.3f\n",
			a.name, meanMS(a.batchWait, a.served), meanMS(a.dispWait, a.served),
			meanMS(a.compute, a.served), meanMS(coRide, a.served))
	}

	rejPct := 0.0
	if all.offered > 0 {
		rejPct = 100 * float64(all.rejected) / float64(all.offered)
	}
	fmt.Fprintf(&b, "\nadmission: %d of %d rejected (%.1f%%)\n", all.rejected, all.offered, rejPct)
	if r.Degradation != nil {
		r.writeDegradation(&b, cfg)
	}
	return b.String()
}
