package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"aitax/internal/plan"
	"aitax/internal/tflite"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestPrewarmWarmsFirstScrapeAndFirstRequest pins the prewarm satellite:
// a prewarmed server's very first /metrics scrape already carries the
// full serving series set (no outlier first window missing most
// series), and its first request compiles no plans — the plan tax was
// paid at startup.
func TestPrewarmWarmsFirstScrapeAndFirstRequest(t *testing.T) {
	// An un-prewarmed server's first scrape has none of the serving
	// series: nothing has touched the registry yet.
	_, coldTS := newTestServer(t, nil)
	if body := scrape(t, coldTS.URL); strings.Contains(body, "aitax_serve_requests_total") {
		t.Fatal("cold server's first scrape already lists serving series; the prewarm contrast is broken")
	}

	s, ts := newTestServer(t, nil)
	rep, err := s.Prewarm(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, m := range s.cfg.Models {
		if tflite.Supported(m, s.cfg.DType, s.cfg.Delegate) {
			want++
		}
	}
	if rep.Jobs != want || want == 0 {
		t.Fatalf("prewarm ran %d jobs, want %d (one per supported loaded model)", rep.Jobs, want)
	}
	body := scrape(t, ts.URL)
	for _, series := range []string{
		`aitax_serve_requests_total{model="MobileNet 1.0 v1"}`,
		`aitax_serve_rejected_total{model="MobileNet 1.0 v1"}`,
		`aitax_serve_batches_total{model="MobileNet 1.0 v1"}`,
		"aitax_serve_batch_size",
		"aitax_serve_service_ms",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("first scrape after prewarm is missing %s", series)
		}
	}
	// No fabricated traffic: the warmed counters read zero.
	if s.metrics.Counter(`aitax_serve_requests_total{model="MobileNet 1.0 v1"}`) != 0 {
		t.Fatal("prewarm fabricated request counts")
	}

	// The first real request reuses every prewarmed plan: zero compile
	// time and zero cache misses added.
	compile0 := plan.Shared.CompileTime()
	_, misses0, _ := plan.Shared.Stats()
	resp, out := postJSON(t, ts.URL+"/v1/classify", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request failed: %d %v", resp.StatusCode, out)
	}
	if d := plan.Shared.CompileTime() - compile0; d != 0 {
		t.Fatalf("first request after prewarm spent %v compiling plans, want zero", d)
	}
	if _, misses, _ := plan.Shared.Stats(); misses != misses0 {
		t.Fatalf("first request after prewarm missed the plan cache %d times, want zero", misses-misses0)
	}
}

// TestPrewarmConfigCoversTheSteerDelegate pins that a QoS policy's
// steer delegate is prewarmed too: brownout level 3 must not pay plan
// compilation in the middle of an overload it exists to relieve.
func TestPrewarmConfigCoversTheSteerDelegate(t *testing.T) {
	cfg := testConfig(t)
	rep, err := PrewarmConfig(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Jobs != len(cfg.Models) {
		t.Fatalf("plain config ran %d jobs, want %d", rep.Jobs, len(cfg.Models))
	}
	qcfg := qosConfig(t)
	qrep, err := PrewarmConfig(context.Background(), qcfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(qcfg.Models); qrep.Jobs != want {
		t.Fatalf("QoS config ran %d prewarm jobs, want %d (serving + steer delegate)", qrep.Jobs, want)
	}
}
