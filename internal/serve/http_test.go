package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := testConfig(t)
	cfg.Models = DefaultModels()
	cfg.BatchWindow = 0 // immediate dispatch unless a test overrides
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestHTTPClassifyHappyPath(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, out := postJSON(t, ts.URL+"/v1/classify", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["model"] != "MobileNet 1.0 v1" {
		t.Fatalf("default classify model %v", out["model"])
	}
	if out["batch_size"].(float64) != 1 {
		t.Fatalf("batch size %v, want 1", out["batch_size"])
	}
	if out["infer_ms"].(float64) <= 0 || out["service_ms"].(float64) <= out["infer_ms"].(float64) {
		t.Fatalf("implausible accounting: %v", out)
	}
}

func TestHTTPUnknownModelIs404(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, out := postJSON(t, ts.URL+"/v1/classify", `{"model":"No Such Model"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %v", resp.StatusCode, out)
	}
	if !strings.Contains(out["error"].(string), "unknown model") {
		t.Fatalf("error %q does not name the unknown model", out["error"])
	}
}

func TestHTTPTaskMismatchIs400(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, out := postJSON(t, ts.URL+"/v1/detect", `{"model":"MobileNet 1.0 v1"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %v", resp.StatusCode, out)
	}
}

func TestHTTPNotLoadedIs404(t *testing.T) {
	// Load only the classifier; a catalog model that is not loaded is
	// still a 404, with a hint at /v1/models.
	_, ts := newTestServer(t, func(c *Config) { c.Models = DefaultModels()[:1] })
	resp, out := postJSON(t, ts.URL+"/v1/segment", `{"model":"Deeplab-v3 MobileNet-v2"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %v", resp.StatusCode, out)
	}
	if !strings.Contains(out["error"].(string), "not loaded") {
		t.Fatalf("error %q does not say the model is unloaded", out["error"])
	}
}

func TestHTTPAdmissionControl429(t *testing.T) {
	srv, ts := newTestServer(t, func(c *Config) {
		c.QueueDepth = 1
		c.MaxBatch = 8
		c.BatchWindow = time.Minute // hold the batch open
	})
	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(`{}`))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	// Wait for the first request to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		queued := srv.queues["MobileNet 1.0 v1"].queued
		srv.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp, out := postJSON(t, ts.URL+"/v1/classify", `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := srv.Metrics().Counter("aitax_serve_rejected_total{model=\"MobileNet 1.0 v1\"}"); got != 1 {
		t.Fatalf("rejected counter %v, want 1", got)
	}
	// Close flushes the held batch; the first request completes.
	srv.Close()
	if code := <-first; code != http.StatusOK {
		t.Fatalf("held request finished with %d, want 200", code)
	}
}

func TestHTTPModelsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 3 {
		t.Fatalf("got %d models, want 3", len(list))
	}
	if list[0]["endpoint"] != "/v1/classify" {
		t.Fatalf("first model endpoint %q", list[0]["endpoint"])
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", hz.StatusCode)
	}
	// One inference populates the registry the /metrics endpoint serves.
	postJSON(t, ts.URL+"/v1/classify", `{}`)
	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	body, err := io.ReadAll(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "aitax_serve_requests_total") {
		t.Fatal("metrics endpoint missing serve counters")
	}
}
