package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"aitax/internal/loadgen"
	"aitax/internal/obs"
)

// simObsFixture runs a small overloaded load simulation and builds its
// observability view.
func simObsFixture(t *testing.T, objectives []obs.Objective) (*SimResult, *SimObs, Config) {
	t.Helper()
	cfg := testConfig(t)
	cfg.Models = DefaultModels()[:1]
	cfg.QueueDepth = 2
	cfg.Workers = 1
	spec := loadgen.Spec{
		Seed:   7,
		Phases: []loadgen.Phase{{QPS: 200, Duration: 300 * time.Millisecond}},
		Mix:    []loadgen.Share{{Model: cfg.Models[0].Name, Weight: 1}},
	}
	arrivals, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	table, err := BuildCostTable(context.Background(), cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, table, arrivals, false)
	if err != nil {
		t.Fatal(err)
	}
	return res, BuildSimObs(cfg, res, 0, objectives), cfg
}

func TestBuildSimObsAccountsEveryRequest(t *testing.T) {
	objs := []obs.Objective{{Latency: 5 * time.Millisecond, Target: 0.95}}
	res, so, _ := simObsFixture(t, objs)

	var offered, served, rejected, good, bad float64
	for _, row := range so.Rows {
		offered += row.Counters[obs.OfferedSeries(obs.AllModels)]
		served += row.Counters[obs.ServedSeries(obs.AllModels)]
		rejected += row.Counters[obs.RejectedSeries(obs.AllModels)]
		good += row.Counters[obs.GoodSeries(objs[0])]
		bad += row.Counters[obs.BadSeries(objs[0])]
	}
	var wantServed, wantRejected float64
	for _, o := range res.Outcomes {
		if o.Rejected {
			wantRejected++
		} else {
			wantServed++
		}
	}
	if offered != wantServed+wantRejected || served != wantServed || rejected != wantRejected {
		t.Fatalf("rows account offered %g served %g rejected %g; want %g/%g/%g",
			offered, served, rejected, wantServed+wantRejected, wantServed, wantRejected)
	}
	// Every offered request is scored against the aggregate objective,
	// exactly once.
	if good+bad != offered {
		t.Fatalf("slo scored %g of %g offered", good+bad, offered)
	}
	if so.Monitor == nil {
		t.Fatal("objectives given but no monitor built")
	}
	sum := so.Monitor.Summaries()[0]
	if sum.Good != good || sum.Bad != bad {
		t.Fatalf("monitor totals %g/%g diverge from rows %g/%g", sum.Good, sum.Bad, good, bad)
	}
}

func TestBuildSimObsStageAnatomyMatchesOutcomes(t *testing.T) {
	res, so, _ := simObsFixture(t, nil)
	var wantPre, wantPost time.Duration
	for _, o := range res.Outcomes {
		if !o.Rejected {
			wantPre += o.Pre
			wantPost += o.Post
		}
	}
	var gotPre, gotPost float64
	for _, row := range so.Rows {
		gotPre += row.Counters[obs.StageSeries("pre")]
		gotPost += row.Counters[obs.StageSeries("post")]
	}
	if wantPre == 0 {
		t.Fatal("outcomes carry no pre-processing time; BatchCost.Pre not plumbed")
	}
	tol := 1e-6
	if diff := gotPre - ms(wantPre); diff > tol || diff < -tol {
		t.Fatalf("pre stage: rows %g ms, outcomes %g ms", gotPre, ms(wantPre))
	}
	if diff := gotPost - ms(wantPost); diff > tol || diff < -tol {
		t.Fatalf("post stage: rows %g ms, outcomes %g ms", gotPost, ms(wantPost))
	}
}

func TestSimObsSnapshotDeterministic(t *testing.T) {
	objs := []obs.Objective{{Latency: 5 * time.Millisecond, Target: 0.95}}
	_, so1, _ := simObsFixture(t, objs)
	_, so2, _ := simObsFixture(t, objs)
	if so1.Snapshot() != so2.Snapshot() {
		t.Fatal("snapshot not deterministic across identical runs")
	}
	if !strings.Contains(so1.Snapshot(), "tax anatomy ms/req:") {
		t.Fatalf("snapshot missing anatomy line:\n%s", so1.Snapshot())
	}
}

func TestHTTPMetricsContentTypeAndRuntime(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aitax_runtime_heap_alloc_bytes", "aitax_runtime_goroutines"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}
}

func TestHTTPRetryAfterDerivedFromWindow(t *testing.T) {
	if got := retryAfterSeconds(0); got != "1" {
		t.Fatalf("zero window Retry-After = %s, want 1", got)
	}
	if got := retryAfterSeconds(2 * time.Millisecond); got != "1" {
		t.Fatalf("2ms window Retry-After = %s, want 1 (floor)", got)
	}
	if got := retryAfterSeconds(2500 * time.Millisecond); got != "3" {
		t.Fatalf("2.5s window Retry-After = %s, want 3 (ceil)", got)
	}
	srv, _ := newTestServer(t, func(c *Config) { c.BatchWindow = 3 * time.Second })
	if srv.retryAfter != "3" {
		t.Fatalf("server Retry-After = %s, want 3", srv.retryAfter)
	}
}

func TestHTTPSLOEndpoint(t *testing.T) {
	// Without objectives: 404.
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/slo without SLOs: status %d, want 404", resp.StatusCode)
	}

	_, ts2 := newTestServer(t, func(c *Config) {
		c.SLO = []obs.Objective{{Latency: 10 * time.Second, Target: 0.5}}
	})
	if _, out := postJSON(t, ts2.URL+"/v1/classify", `{}`); out["error"] != nil {
		t.Fatalf("classify failed: %v", out["error"])
	}
	resp2, err := http.Get(ts2.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["objective"] != "all models" {
		t.Fatalf("/v1/slo = %v", got)
	}
}

func TestHTTPPprofMounted(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

func TestHTTPWatchRendersLiveTraffic(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	if _, out := postJSON(t, ts.URL+"/v1/classify", `{}`); out["error"] != nil {
		t.Fatalf("classify failed: %v", out["error"])
	}
	watch := srv.Watch()
	for _, want := range []string{"MobileNet 1.0 v1", "tax anatomy ms/req:"} {
		if !strings.Contains(watch, want) {
			t.Fatalf("watch output missing %q:\n%s", want, watch)
		}
	}
}
