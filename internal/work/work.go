// Package work defines the device-independent unit of compute demand that
// pipeline stages emit and simulated hardware consumes. Keeping it in its
// own package lets algorithm packages (preproc, postproc, nn) describe
// cost without depending on the hardware models in soc, and vice versa.
package work

import "fmt"

// Work describes a unit of computation in device-independent terms.
// Devices translate it to virtual time using their throughput parameters;
// whichever of the compute or memory components takes longer dominates
// (a simple roofline).
type Work struct {
	// Ops is the number of arithmetic operations (MACs count as two).
	Ops int64
	// Bytes is the memory traffic in bytes (reads + writes).
	Bytes int64
	// Vectorizable marks work that profits from SIMD/HVX-style units.
	Vectorizable bool
}

// Add accumulates other into w.
func (w Work) Add(other Work) Work {
	return Work{
		Ops:          w.Ops + other.Ops,
		Bytes:        w.Bytes + other.Bytes,
		Vectorizable: w.Vectorizable && other.Vectorizable,
	}
}

// Scale multiplies both components by n.
func (w Work) Scale(n int64) Work {
	return Work{Ops: w.Ops * n, Bytes: w.Bytes * n, Vectorizable: w.Vectorizable}
}

// String renders the work compactly.
func (w Work) String() string {
	return fmt.Sprintf("Work(ops=%d bytes=%d vec=%v)", w.Ops, w.Bytes, w.Vectorizable)
}
