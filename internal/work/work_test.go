package work

import "testing"

func TestAdd(t *testing.T) {
	a := Work{Ops: 1, Bytes: 2, Vectorizable: true}
	b := Work{Ops: 10, Bytes: 20, Vectorizable: true}
	c := a.Add(b)
	if c.Ops != 11 || c.Bytes != 22 || !c.Vectorizable {
		t.Fatalf("add = %+v", c)
	}
	// Mixing in non-vectorizable work poisons the flag.
	d := c.Add(Work{Ops: 1, Bytes: 1, Vectorizable: false})
	if d.Vectorizable {
		t.Fatal("vectorizable must be conjunctive")
	}
}

func TestScale(t *testing.T) {
	w := Work{Ops: 3, Bytes: 5, Vectorizable: true}.Scale(4)
	if w.Ops != 12 || w.Bytes != 20 || !w.Vectorizable {
		t.Fatalf("scale = %+v", w)
	}
}

func TestString(t *testing.T) {
	if (Work{}).String() == "" {
		t.Fatal("empty string")
	}
}
