package preproc

import (
	"testing"

	"aitax/internal/imaging"
)

// FuzzTokenize drives the WordPiece tokenizer with arbitrary text: it
// must never panic, always produce exactly maxLen ids, and every id must
// exist in the vocabulary.
func FuzzTokenize(f *testing.F) {
	f.Add("the camera quality is great", 32)
	f.Add("", 2)
	f.Add("zzzzzz unknown-token 🙂", 16)
	f.Add("a b c d e f g h i j k l m n o p", 8)
	vocab := BasicVocab()
	valid := map[int]bool{}
	for _, id := range vocab {
		valid[id] = true
	}
	f.Fuzz(func(t *testing.T, text string, maxLen int) {
		if maxLen < 2 || maxLen > 512 {
			maxLen = 2 + (abs(maxLen) % 511)
		}
		ids := Tokenize(text, vocab, maxLen)
		if len(ids) != maxLen {
			t.Fatalf("len = %d, want %d", len(ids), maxLen)
		}
		for _, id := range ids {
			if !valid[id] {
				t.Fatalf("id %d not in vocabulary", id)
			}
		}
		if ids[0] != vocab["[CLS]"] {
			t.Fatal("missing [CLS]")
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Guard MinInt overflow.
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}

// FuzzResize drives bilinear resize with arbitrary dimensions: no
// panics, correct output size, pixels stay valid.
func FuzzResize(f *testing.F) {
	f.Add(uint8(10), uint8(10))
	f.Add(uint8(1), uint8(255))
	src := imaging.SyntheticScene(37, 23, 1)
	f.Fuzz(func(t *testing.T, w, h uint8) {
		dw, dh := int(w)+1, int(h)+1
		dst := ResizeBilinear(src, dw, dh)
		if dst.Width != dw || dst.Height != dh {
			t.Fatalf("dims = %dx%d, want %dx%d", dst.Width, dst.Height, dw, dh)
		}
	})
}
