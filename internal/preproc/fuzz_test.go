package preproc

import (
	"testing"

	"aitax/internal/imaging"
	"aitax/internal/par"
	"aitax/internal/tensor"
)

// fuzzScene builds an ARGB image of the given dimensions with pixels
// drawn cyclically from the fuzz payload (or a fixed pattern when the
// payload is empty), so arbitrary channel bytes reach the kernels.
func fuzzScene(w, h int, pix []byte) *imaging.ARGBImage {
	src := imaging.NewARGB(w, h)
	for i := range src.Pix {
		var b0, b1, b2, b3 byte
		if len(pix) > 0 {
			b0, b1, b2, b3 = pix[(i*4)%len(pix)], pix[(i*4+1)%len(pix)],
				pix[(i*4+2)%len(pix)], pix[(i*4+3)%len(pix)]
		} else {
			b0, b1, b2, b3 = byte(i), byte(i*37+11), byte(i*53+3), byte(i*31+7)
		}
		src.Pix[i] = uint32(b0)<<24 | uint32(b1)<<16 | uint32(b2)<<8 | uint32(b3)
	}
	return src
}

// FuzzNormalizeSwarBitExact checks the unrolled normalize kernel against
// the scalar channel-by-channel definition over fuzzed pixels, widths
// covering every w%4 tail lane, and a couple of parameter sets.
func FuzzNormalizeSwarBitExact(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{0xFF, 0x80, 0x10, 0x00})
	f.Add(uint8(6), uint8(2), []byte{})
	f.Add(uint8(13), uint8(4), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, w8, h8 uint8, pix []byte) {
		w := 1 + int(w8%19) // widths 1..19: all 4-pixel tail lanes
		h := 1 + int(h8%5)
		src := fuzzScene(w, h, pix)
		for _, ms := range [][2]float64{{127.5, 127.5}, {0, 255}} {
			out := Normalize(src, ms[0], ms[1])
			idx := 0
			for _, p := range src.Pix {
				r, g, b := imaging.RGB(p)
				for c, ch := range [3]uint8{r, g, b} {
					want := float32((float64(ch) - ms[0]) / ms[1])
					if out.F32[idx+c] != want {
						t.Fatalf("%dx%d mean=%v: channel %d of pixel %d differs", w, h, ms, c, idx/3)
					}
				}
				idx += 3
			}
		}
	})
}

// FuzzQuantizeSwarBitExact checks the unrolled quantize kernel (both the
// uint8 and int8 paths) against the scalar QuantParams definition.
func FuzzQuantizeSwarBitExact(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{0xFF, 0x80, 0x10, 0x00})
	f.Add(uint8(6), uint8(2), []byte{})
	f.Add(uint8(13), uint8(4), []byte{9, 8, 7, 6, 5})
	f.Fuzz(func(t *testing.T, w8, h8 uint8, pix []byte) {
		w := 1 + int(w8%19)
		h := 1 + int(h8%5)
		src := fuzzScene(w, h, pix)
		q := tensor.QuantParams{Scale: 0.0078125, ZeroPoint: 128}
		for _, dt := range []tensor.DType{tensor.UInt8, tensor.Int8} {
			out := QuantizeInput(src, dt, q)
			idx := 0
			for _, p := range src.Pix {
				r, g, b := imaging.RGB(p)
				for c, ch := range [3]uint8{r, g, b} {
					want := byte(q.Quantize(float64(ch), dt))
					var got byte
					if dt == tensor.UInt8 {
						got = out.U8[idx+c]
					} else {
						got = byte(out.I8[idx+c])
					}
					if got != want {
						t.Fatalf("%dx%d %v: channel %d of pixel %d differs", w, h, dt, c, idx/3)
					}
				}
				idx += 3
			}
		}
	})
}

// TestConvertKernelsAllTailLanes sweeps widths 1..19 (every 4-pixel tail
// lane) at several worker counts, pinning the unrolled normalize and
// quantize kernels against their scalar definitions.
func TestConvertKernelsAllTailLanes(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	q := tensor.QuantParams{Scale: 0.02, ZeroPoint: 3}
	for _, workers := range []int{1, 2, 3, 8} {
		par.SetWorkers(workers)
		for w := 1; w <= 19; w++ {
			src := fuzzScene(w, 6, nil)
			norm := Normalize(src, 127.5, 127.5)
			u8 := QuantizeInput(src, tensor.UInt8, q)
			i8 := QuantizeInput(src, tensor.Int8, q)
			idx := 0
			for _, p := range src.Pix {
				r, g, b := imaging.RGB(p)
				for c, ch := range [3]uint8{r, g, b} {
					if norm.F32[idx+c] != float32((float64(ch)-127.5)/127.5) {
						t.Fatalf("normalize w=%d @%d workers differs", w, workers)
					}
					if u8.U8[idx+c] != byte(q.Quantize(float64(ch), tensor.UInt8)) {
						t.Fatalf("quantize u8 w=%d @%d workers differs", w, workers)
					}
					if byte(i8.I8[idx+c]) != byte(q.Quantize(float64(ch), tensor.Int8)) {
						t.Fatalf("quantize i8 w=%d @%d workers differs", w, workers)
					}
				}
				idx += 3
			}
		}
	}
}

// FuzzTokenize drives the WordPiece tokenizer with arbitrary text: it
// must never panic, always produce exactly maxLen ids, and every id must
// exist in the vocabulary.
func FuzzTokenize(f *testing.F) {
	f.Add("the camera quality is great", 32)
	f.Add("", 2)
	f.Add("zzzzzz unknown-token 🙂", 16)
	f.Add("a b c d e f g h i j k l m n o p", 8)
	vocab := BasicVocab()
	valid := map[int]bool{}
	for _, id := range vocab {
		valid[id] = true
	}
	f.Fuzz(func(t *testing.T, text string, maxLen int) {
		if maxLen < 2 || maxLen > 512 {
			maxLen = 2 + (abs(maxLen) % 511)
		}
		ids := Tokenize(text, vocab, maxLen)
		if len(ids) != maxLen {
			t.Fatalf("len = %d, want %d", len(ids), maxLen)
		}
		for _, id := range ids {
			if !valid[id] {
				t.Fatalf("id %d not in vocabulary", id)
			}
		}
		if ids[0] != vocab["[CLS]"] {
			t.Fatal("missing [CLS]")
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Guard MinInt overflow.
		if v == -v {
			return 0
		}
		return -v
	}
	return v
}

// FuzzResize drives bilinear resize with arbitrary dimensions: no
// panics, correct output size, pixels stay valid.
func FuzzResize(f *testing.F) {
	f.Add(uint8(10), uint8(10))
	f.Add(uint8(1), uint8(255))
	src := imaging.SyntheticScene(37, 23, 1)
	f.Fuzz(func(t *testing.T, w, h uint8) {
		dw, dh := int(w)+1, int(h)+1
		dst := ResizeBilinear(src, dw, dh)
		if dst.Width != dw || dst.Height != dh {
			t.Fatalf("dims = %dx%d, want %dx%d", dst.Width, dst.Height, dw, dh)
		}
	})
}
