// Package preproc implements the pre-processing algorithms the paper
// catalogues in §II-B: bitmap formatting, scale (bilinear interpolation),
// center crop, normalization, rotation, type conversion/quantization, and
// tokenization for language models. Every kernel is a real implementation
// operating on real buffers; each also reports its compute demand as
// work.Work so the simulator can cost it onto a device.
package preproc

import (
	"fmt"
	"strings"

	"aitax/internal/imaging"
	"aitax/internal/par"
	"aitax/internal/tensor"
	"aitax/internal/work"
)

// ResizeBilinear scales src to dstW×dstH using bilinear interpolation,
// TensorFlow's default resize algorithm. Runtime scales with the output
// pixel count (quadratically in the output edge length, as the paper
// notes).
func ResizeBilinear(src *imaging.ARGBImage, dstW, dstH int) *imaging.ARGBImage {
	return ResizeBilinearInto(imaging.NewARGB(dstW, dstH), src, dstW, dstH)
}

// ResizeBilinearInto is the in-place variant of ResizeBilinear: it scales
// into dst (resized to dstW×dstH) and allocates nothing when dst's
// backing array is already large enough. Sample positions and lerp
// weights come from the per-geometry coefficient cache (kernels.go) and
// the rows are tiled across the par worker pool; the arithmetic per
// pixel is unchanged, so the output is bit-identical to the original
// scalar loop at any worker count. Returns dst.
func ResizeBilinearInto(dst *imaging.ARGBImage, src *imaging.ARGBImage, dstW, dstH int) *imaging.ARGBImage {
	if dstW <= 0 || dstH <= 0 {
		panic(fmt.Sprintf("preproc: invalid resize target %dx%d", dstW, dstH))
	}
	dst.Resize(dstW, dstH)
	task := resizeTaskPool.Get().(*resizeTask)
	*task = resizeTask{plan: planFor(src.Width, src.Height, dstW, dstH), src: src, dst: dst}
	par.For(dstH, task)
	*task = resizeTask{}
	resizeTaskPool.Put(task)
	return dst
}

// ResizeWork reports the compute demand of a bilinear resize to w×h.
func ResizeWork(w, h int) work.Work {
	px := int64(w) * int64(h)
	return work.Work{
		Ops:          px * 3 * 8,     // 3 channels × ~8 ops per lerp
		Bytes:        px * (4*4 + 4), // 4 source reads + 1 write, 4B each
		Vectorizable: true,
	}
}

// CenterCrop extracts the centered w×h region. If the source is smaller
// along a dimension, the whole extent is used. Inception-style models
// center-crop before scaling (§II-B).
func CenterCrop(src *imaging.ARGBImage, w, h int) *imaging.ARGBImage {
	return CenterCropInto(imaging.NewARGB(min(w, src.Width), min(h, src.Height)), src, w, h)
}

// CenterCropInto is the in-place variant of CenterCrop. Returns dst.
func CenterCropInto(dst *imaging.ARGBImage, src *imaging.ARGBImage, w, h int) *imaging.ARGBImage {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("preproc: invalid crop %dx%d", w, h))
	}
	w = min(w, src.Width)
	h = min(h, src.Height)
	x0 := (src.Width - w) / 2
	y0 := (src.Height - h) / 2
	dst.Resize(w, h)
	for j := 0; j < h; j++ {
		srcOff := (y0+j)*src.Width + x0
		copy(dst.Pix[j*w:j*w+w], src.Pix[srcOff:srcOff+w])
	}
	return dst
}

// CropWork reports the compute demand of cropping to w×h (a bounding-box
// computation plus a tensor reshape/copy, as §II-B describes).
func CropWork(w, h int) work.Work {
	px := int64(w) * int64(h)
	return work.Work{Ops: px, Bytes: px * 8, Vectorizable: true}
}

// CropFraction center-crops a fixed fraction of the image (e.g. 0.875 for
// Inception's 87.5% central fraction) and returns the result.
func CropFraction(src *imaging.ARGBImage, fraction float64) *imaging.ARGBImage {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("preproc: invalid crop fraction %v", fraction))
	}
	return CenterCrop(src, int(float64(src.Width)*fraction), int(float64(src.Height)*fraction))
}

// Rotate90 rotates the image clockwise by quarterTurns×90°. PoseNet-style
// applications rotate frames to match sensor orientation; the cost scales
// with the pixel count (quadratically in edge length, §II-B).
func Rotate90(src *imaging.ARGBImage, quarterTurns int) *imaging.ARGBImage {
	quarterTurns = ((quarterTurns % 4) + 4) % 4
	w, h := src.Width, src.Height
	if quarterTurns%2 == 1 {
		w, h = h, w
	}
	return Rotate90Into(imaging.NewARGB(w, h), src, quarterTurns)
}

// Rotate90Into is the in-place variant of Rotate90 (dst must not alias
// src). Returns dst.
func Rotate90Into(dst *imaging.ARGBImage, src *imaging.ARGBImage, quarterTurns int) *imaging.ARGBImage {
	quarterTurns = ((quarterTurns % 4) + 4) % 4
	switch quarterTurns {
	case 0:
		dst.Resize(src.Width, src.Height)
		copy(dst.Pix, src.Pix)
	case 1: // 90° cw: (x,y) -> (H-1-y, x)
		dst.Resize(src.Height, src.Width)
		for j := 0; j < src.Height; j++ {
			row := src.Pix[j*src.Width : j*src.Width+src.Width]
			x := src.Height - 1 - j
			for i, p := range row {
				dst.Pix[i*dst.Width+x] = p
			}
		}
	case 2:
		dst.Resize(src.Width, src.Height)
		for j := 0; j < src.Height; j++ {
			row := src.Pix[j*src.Width : j*src.Width+src.Width]
			out := dst.Pix[(src.Height-1-j)*dst.Width : (src.Height-j)*dst.Width]
			for i, p := range row {
				out[src.Width-1-i] = p
			}
		}
	case 3: // 270° cw: (x,y) -> (y, W-1-x)
		dst.Resize(src.Height, src.Width)
		for j := 0; j < src.Height; j++ {
			row := src.Pix[j*src.Width : j*src.Width+src.Width]
			for i, p := range row {
				dst.Pix[(src.Width-1-i)*dst.Width+j] = p
			}
		}
	}
	return dst
}

// RotateWork reports the compute demand of rotating a w×h image.
func RotateWork(w, h int) work.Work {
	px := int64(w) * int64(h)
	return work.Work{Ops: px * 2, Bytes: px * 8, Vectorizable: false}
}

// Normalize converts an ARGB image to an NHWC FP32 tensor with the given
// per-channel mean and standard deviation: out = (px - mean) / std.
// Nearly all networks require normalized inputs (§II-B); runtime is linear
// in the pixel count.
func Normalize(src *imaging.ARGBImage, mean, std float64) *tensor.Tensor {
	return NormalizeInto(nil, src, mean, std)
}

// NormalizeInto is the scratch-reusing variant of Normalize: dst (which
// may be nil) is recycled through tensor.Ensure, so a steady-state
// caller allocates nothing. Returns the tensor.
func NormalizeInto(dst *tensor.Tensor, src *imaging.ARGBImage, mean, std float64) *tensor.Tensor {
	if std == 0 {
		panic("preproc: zero normalization std")
	}
	t := tensor.Ensure(dst, tensor.Float32, tensor.Shape{1, src.Height, src.Width, 3})
	task := normalizeTaskPool.Get().(*normalizeTask)
	*task = normalizeTask{src: src, tab: normTabFor(mean, std), out: t.F32}
	par.For(src.Height, task)
	*task = normalizeTask{}
	normalizeTaskPool.Put(task)
	return t
}

// NormalizeWork reports the compute demand of normalizing a w×h frame.
func NormalizeWork(w, h int) work.Work {
	px := int64(w) * int64(h)
	return work.Work{Ops: px * 3 * 2, Bytes: px * (4 + 12), Vectorizable: true}
}

// QuantizeInput converts an ARGB image directly to a quantized NHWC
// tensor, the type-conversion step quantized models require (§II-B).
// Camera bytes map to the quantized domain through params q.
func QuantizeInput(src *imaging.ARGBImage, dt tensor.DType, q tensor.QuantParams) *tensor.Tensor {
	return QuantizeInputInto(nil, src, dt, q)
}

// QuantizeInputInto is the scratch-reusing variant of QuantizeInput: dst
// (which may be nil) is recycled through tensor.Ensure. Returns the
// tensor.
func QuantizeInputInto(dst *tensor.Tensor, src *imaging.ARGBImage, dt tensor.DType, q tensor.QuantParams) *tensor.Tensor {
	t := tensor.Ensure(dst, dt, tensor.Shape{1, src.Height, src.Width, 3})
	t.Quant = q
	if dt == tensor.UInt8 || dt == tensor.Int8 {
		// Byte targets collapse to a cached 256-entry table built with
		// the same Quantize call the scalar loop made per channel.
		task := quantizeTaskPool.Get().(*quantizeTask)
		*task = quantizeTask{src: src, tab: quantTabFor(dt, q)}
		if dt == tensor.UInt8 {
			task.u8 = t.U8
		} else {
			task.i8 = t.I8
		}
		par.For(src.Height, task)
		*task = quantizeTask{}
		quantizeTaskPool.Put(task)
		return t
	}
	idx := 0
	for j := 0; j < src.Height; j++ {
		row := src.Pix[j*src.Width : j*src.Width+src.Width]
		for _, p := range row {
			r, g, b := imaging.RGB(p)
			t.Set(idx, float64(r))
			t.Set(idx+1, float64(g))
			t.Set(idx+2, float64(b))
			idx += 3
		}
	}
	return t
}

// TypeConvertWork reports the demand of converting and/or quantizing a
// w×h frame into a model input tensor with elemBytes-wide elements.
func TypeConvertWork(w, h, elemBytes int) work.Work {
	px := int64(w) * int64(h)
	return work.Work{Ops: px * 3, Bytes: px * (4 + 3*int64(elemBytes)), Vectorizable: true}
}

// Tokenize performs the WordPiece-style greedy longest-match-first
// tokenization Mobile BERT uses, against the supplied vocabulary.
// Unknown words map to [UNK]; the output is padded/truncated to maxLen
// with [CLS]/[SEP] markers, mirroring the BERT input pipeline.
func Tokenize(text string, vocab map[string]int, maxLen int) []int {
	if maxLen < 2 {
		panic("preproc: maxLen must fit [CLS] and [SEP]")
	}
	ids := []int{vocab["[CLS]"]}
	words := strings.Fields(strings.ToLower(text))
	for _, w := range words {
		if len(ids) >= maxLen-1 {
			break
		}
		ids = append(ids, wordPiece(w, vocab, maxLen-1-len(ids))...)
	}
	if len(ids) > maxLen-1 {
		ids = ids[:maxLen-1]
	}
	ids = append(ids, vocab["[SEP]"])
	for len(ids) < maxLen {
		ids = append(ids, vocab["[PAD]"])
	}
	return ids
}

func wordPiece(w string, vocab map[string]int, budget int) []int {
	var out []int
	start := 0
	for start < len(w) && len(out) < budget {
		end := len(w)
		found := -1
		for end > start {
			piece := w[start:end]
			if start > 0 {
				piece = "##" + piece
			}
			if id, ok := vocab[piece]; ok {
				found = id
				break
			}
			end--
		}
		if found < 0 {
			return []int{vocab["[UNK]"]}
		}
		out = append(out, found)
		start = end
	}
	return out
}

// TokenizeWork reports the demand of tokenizing n characters.
func TokenizeWork(nChars int) work.Work {
	return work.Work{Ops: int64(nChars) * 24, Bytes: int64(nChars) * 16, Vectorizable: false}
}

// BasicVocab returns a small deterministic vocabulary suitable for
// exercising the tokenizer: special tokens, ASCII words and common
// suffix pieces.
func BasicVocab() map[string]int {
	v := map[string]int{"[PAD]": 0, "[UNK]": 1, "[CLS]": 2, "[SEP]": 3}
	next := 4
	for _, w := range []string{
		"the", "a", "of", "and", "to", "in", "is", "it", "on", "for",
		"this", "that", "with", "phone", "camera", "image", "model",
		"fast", "slow", "good", "bad", "great", "battery", "screen",
		"love", "hate", "works", "app", "photo", "quality",
	} {
		v[w] = next
		next++
	}
	for _, p := range []string{"##s", "##ing", "##ed", "##er", "##ly", "##est"} {
		v[p] = next
		next++
	}
	for c := 'a'; c <= 'z'; c++ {
		v[string(c)] = next
		v["##"+string(c)] = next + 1
		next += 2
	}
	return v
}
