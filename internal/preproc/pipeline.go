package preproc

import (
	"fmt"
	"strings"

	"aitax/internal/imaging"
	"aitax/internal/tensor"
	"aitax/internal/work"
)

// Spec declares the pre-processing pipeline a model requires, i.e. the
// "Pre-processing Task" column of the paper's Table I.
type Spec struct {
	// Vision pipeline.
	CropFraction float64 // central fraction to keep; 0 disables cropping
	TargetW      int     // network input width; 0 disables resize
	TargetH      int     // network input height
	Mean, Std    float64 // normalization parameters (fp32 models)
	RotateTurns  int     // clockwise quarter turns (PoseNet-style apps)

	// Quantized models convert bytes straight into the quantized domain.
	Quantized bool
	DType     tensor.DType
	Quant     tensor.QuantParams

	// Language pipeline (Mobile BERT). When set, the vision fields are
	// ignored and Run tokenizes SampleText instead.
	Tokenize   bool
	MaxTokens  int
	SampleText string

	// Native marks pipelines implemented with the TFLite support
	// library's vectorized native ops (the segmentation demo) rather
	// than per-pixel managed code (the classification/pose demos). The
	// app costs native pipelines at vector rate, managed ones at scalar
	// rate with an interpretation penalty — the reason DeepLab's
	// pre-processing is ~1% of its run-time while MobileNet's rivals its
	// inference (§IV-A).
	Native bool
}

// Tasks lists the pipeline's steps in Table-I vocabulary
// ("scale, crop, normalize", "tokenization", ...).
func (s Spec) Tasks() string {
	if s.Tokenize {
		return "tokenization"
	}
	var parts []string
	if s.TargetW > 0 {
		parts = append(parts, "scale")
	}
	if s.CropFraction > 0 {
		parts = append(parts, "crop")
	}
	parts = append(parts, "normalize")
	if s.RotateTurns != 0 {
		parts = append(parts, "rotate")
	}
	return strings.Join(parts, ", ")
}

// Run executes the pipeline for real on frame and returns the model input
// tensor together with the compute demand of the steps performed. For a
// tokenizing spec, frame may be nil. Every call returns a fresh tensor;
// steady-state callers should use RunInto with a RunScratch instead.
func (s Spec) Run(frame *imaging.ARGBImage) (*tensor.Tensor, work.Work) {
	return s.RunInto(nil, frame)
}

// RunScratch holds the intermediate buffers RunInto reuses between
// frames: rotation/crop bitmaps and the output tensor. The zero value
// is ready to use; after the first frame of a fixed-geometry stream,
// RunInto allocates nothing.
type RunScratch struct {
	rot  *imaging.ARGBImage
	crop *imaging.ARGBImage
	t    *tensor.Tensor
}

// RunInto is the scratch-reusing variant of Run. sc may be nil, in
// which case every buffer is allocated fresh (exactly Run's behavior).
// The returned tensor aliases sc's storage and is valid until the next
// RunInto call with the same scratch. The step sequence, Work sums and
// output bytes are identical to Run's original unfused path — the
// resize+convert tail just runs as one fused pass when both steps are
// present.
func (s Spec) RunInto(sc *RunScratch, frame *imaging.ARGBImage) (*tensor.Tensor, work.Work) {
	if s.Tokenize {
		maxLen := s.MaxTokens
		if maxLen == 0 {
			maxLen = 128
		}
		ids := Tokenize(s.SampleText, BasicVocab(), maxLen)
		var t *tensor.Tensor
		if sc != nil {
			sc.t = tensor.Ensure(sc.t, tensor.Int32, tensor.Shape{1, maxLen})
			t = sc.t
		} else {
			t = tensor.New(tensor.Int32, tensor.Shape{1, maxLen})
		}
		for i, id := range ids {
			t.I32[i] = int32(id)
		}
		return t, TokenizeWork(len(s.SampleText))
	}
	if frame == nil {
		panic("preproc: vision spec requires a frame")
	}

	var w work.Work
	img := frame
	if s.RotateTurns != 0 {
		dst := &imaging.ARGBImage{}
		if sc != nil {
			if sc.rot == nil {
				sc.rot = &imaging.ARGBImage{}
			}
			dst = sc.rot
		}
		img = Rotate90Into(dst, img, s.RotateTurns)
		w = w.Add(RotateWork(img.Width, img.Height))
	}
	if s.CropFraction > 0 {
		if s.CropFraction > 1 {
			panic(fmt.Sprintf("preproc: invalid crop fraction %v", s.CropFraction))
		}
		dst := &imaging.ARGBImage{}
		if sc != nil {
			if sc.crop == nil {
				sc.crop = &imaging.ARGBImage{}
			}
			dst = sc.crop
		}
		cw := int(float64(img.Width) * s.CropFraction)
		ch := int(float64(img.Height) * s.CropFraction)
		img = CenterCropInto(dst, img, cw, ch)
		w = w.Add(CropWork(img.Width, img.Height))
	}
	var dstT *tensor.Tensor
	if sc != nil {
		dstT = sc.t
	}
	needResize := s.TargetW > 0 && (img.Width != s.TargetW || img.Height != s.TargetH)
	var t *tensor.Tensor
	switch {
	case s.Quantized && needResize:
		t = ResizeQuantizeInto(dstT, img, s.TargetW, s.TargetH, s.DType, s.Quant)
		w = w.Add(ResizeWork(s.TargetW, s.TargetH))
		w = w.Add(TypeConvertWork(s.TargetW, s.TargetH, s.DType.Size()))
	case s.Quantized:
		t = QuantizeInputInto(dstT, img, s.DType, s.Quant)
		w = w.Add(TypeConvertWork(img.Width, img.Height, s.DType.Size()))
	default:
		std := s.Std
		if std == 0 {
			std = 1
		}
		if needResize {
			t = ResizeNormalizeInto(dstT, img, s.TargetW, s.TargetH, s.Mean, std)
			w = w.Add(ResizeWork(s.TargetW, s.TargetH))
			w = w.Add(NormalizeWork(s.TargetW, s.TargetH))
		} else {
			t = NormalizeInto(dstT, img, s.Mean, std)
			w = w.Add(NormalizeWork(img.Width, img.Height))
		}
	}
	if sc != nil {
		sc.t = t
	}
	return t, w
}

// Work reports the compute demand of running the pipeline on a frame of
// the given size, without executing it (used by the simulator to cost the
// stage onto a device).
func (s Spec) Work(frameW, frameH int) work.Work {
	if s.Tokenize {
		return TokenizeWork(len(s.SampleText))
	}
	var w work.Work
	cw, ch := frameW, frameH
	if s.RotateTurns != 0 {
		w = w.Add(RotateWork(cw, ch))
	}
	if s.CropFraction > 0 {
		cw = int(float64(cw) * s.CropFraction)
		ch = int(float64(ch) * s.CropFraction)
		w = w.Add(CropWork(cw, ch))
	}
	if s.TargetW > 0 {
		cw, ch = s.TargetW, s.TargetH
		w = w.Add(ResizeWork(cw, ch))
	}
	if s.Quantized {
		return w.Add(TypeConvertWork(cw, ch, s.DType.Size()))
	}
	return w.Add(NormalizeWork(cw, ch))
}

// Validate checks the spec for internal consistency.
func (s Spec) Validate() error {
	if s.Tokenize {
		if s.MaxTokens < 0 {
			return fmt.Errorf("preproc: negative MaxTokens %d", s.MaxTokens)
		}
		return nil
	}
	if s.TargetW < 0 || s.TargetH < 0 {
		return fmt.Errorf("preproc: negative target %dx%d", s.TargetW, s.TargetH)
	}
	if (s.TargetW == 0) != (s.TargetH == 0) {
		return fmt.Errorf("preproc: target dimensions must both be set or both zero")
	}
	if s.CropFraction < 0 || s.CropFraction > 1 {
		return fmt.Errorf("preproc: crop fraction %v outside (0,1]", s.CropFraction)
	}
	if !s.Quantized && s.Std < 0 {
		return fmt.Errorf("preproc: negative std %v", s.Std)
	}
	if s.Quantized && s.DType != tensor.Int8 && s.DType != tensor.UInt8 {
		return fmt.Errorf("preproc: quantized spec needs int8/uint8 dtype, got %v", s.DType)
	}
	return nil
}
