package preproc

import (
	"testing"

	"aitax/internal/imaging"
	"aitax/internal/tensor"
)

// scalarResize is the original (pre-coefficient-cache) bilinear loop,
// kept as the reference the plan-based kernel must match bit-exactly.
func scalarResize(src *imaging.ARGBImage, dstW, dstH int) *imaging.ARGBImage {
	dst := imaging.NewARGB(dstW, dstH)
	xRatio := float64(src.Width-1) / float64(max(dstW-1, 1))
	yRatio := float64(src.Height-1) / float64(max(dstH-1, 1))
	for j := 0; j < dstH; j++ {
		sy := yRatio * float64(j)
		y0 := int(sy)
		y1 := min(y0+1, src.Height-1)
		fy := sy - float64(y0)
		row0 := src.Pix[y0*src.Width : y0*src.Width+src.Width]
		row1 := src.Pix[y1*src.Width : y1*src.Width+src.Width]
		out := dst.Pix[j*dstW : j*dstW+dstW]
		for i := 0; i < dstW; i++ {
			sx := xRatio * float64(i)
			x0 := int(sx)
			x1 := min(x0+1, src.Width-1)
			fx := sx - float64(x0)
			r00, g00, b00 := imaging.RGB(row0[x0])
			r10, g10, b10 := imaging.RGB(row0[x1])
			r01, g01, b01 := imaging.RGB(row1[x0])
			r11, g11, b11 := imaging.RGB(row1[x1])
			lerp := func(a, b, c, d uint8) uint8 {
				top := float64(a)*(1-fx) + float64(b)*fx
				bot := float64(c)*(1-fx) + float64(d)*fx
				return uint8(top*(1-fy) + bot*fy + 0.5)
			}
			out[i] = imaging.PackRGB(
				lerp(r00, r10, r01, r11),
				lerp(g00, g10, g01, g11),
				lerp(b00, b10, b01, b11),
			)
		}
	}
	return dst
}

func TestResizeBilinearMatchesScalarReference(t *testing.T) {
	for _, dims := range [][4]int{{640, 480, 224, 224}, {97, 61, 224, 224}, {224, 224, 97, 33}, {5, 5, 1, 1}} {
		src := imaging.SyntheticScene(dims[0], dims[1], 11)
		want := scalarResize(src, dims[2], dims[3])
		got := ResizeBilinear(src, dims[2], dims[3])
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("%v: pixel %d = %08x, want %08x", dims, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}

func TestNormalizeTableMatchesFormula(t *testing.T) {
	src := imaging.SyntheticScene(118, 74, 3)
	for _, p := range [][2]float64{{127.5, 127.5}, {0, 255}, {100, 0.017}} {
		mean, std := p[0], p[1]
		got := Normalize(src, mean, std)
		for j := 0; j < src.Height; j++ {
			for i := 0; i < src.Width; i++ {
				r, g, b := imaging.RGB(src.Pix[j*src.Width+i])
				idx := (j*src.Width + i) * 3
				for ch, v := range [3]uint8{r, g, b} {
					want := float32((float64(v) - mean) / std)
					if got.F32[idx+ch] != want {
						t.Fatalf("mean=%v std=%v px(%d,%d) ch%d = %v, want %v", mean, std, i, j, ch, got.F32[idx+ch], want)
					}
				}
			}
		}
	}
}

func TestQuantizeTableMatchesSet(t *testing.T) {
	src := imaging.SyntheticScene(118, 74, 5)
	for _, dt := range []tensor.DType{tensor.UInt8, tensor.Int8} {
		q := tensor.QuantParams{Scale: 0.0078125, ZeroPoint: 128}
		if dt == tensor.Int8 {
			q = tensor.QuantParams{Scale: 1.7, ZeroPoint: -3}
		}
		got := QuantizeInput(src, dt, q)
		for i := 0; i < src.Width*src.Height; i++ {
			r, g, b := imaging.RGB(src.Pix[i])
			for ch, v := range [3]uint8{r, g, b} {
				want := q.Quantize(float64(v), dt)
				if raw := int(got.RawAt(i*3 + ch)); raw != want {
					t.Fatalf("%v px %d ch%d = %d, want %d", dt, i, ch, raw, want)
				}
			}
		}
	}
}

func TestFusedKernelsMatchUnfused(t *testing.T) {
	src := imaging.SyntheticScene(640, 480, 9)
	mid := ResizeBilinear(src, 224, 224)

	wantN := Normalize(mid, 127.5, 127.5)
	gotN := ResizeNormalize(src, 224, 224, 127.5, 127.5)
	for i := range wantN.F32 {
		if gotN.F32[i] != wantN.F32[i] {
			t.Fatalf("fused normalize elem %d = %v, want %v", i, gotN.F32[i], wantN.F32[i])
		}
	}

	q := tensor.QuantParams{Scale: 1, ZeroPoint: 0}
	wantQ := QuantizeInput(mid, tensor.UInt8, q)
	gotQ := ResizeQuantize(src, 224, 224, tensor.UInt8, q)
	for i := range wantQ.U8 {
		if gotQ.U8[i] != wantQ.U8[i] {
			t.Fatalf("fused quantize elem %d = %d, want %d", i, gotQ.U8[i], wantQ.U8[i])
		}
	}

	qi := tensor.QuantParams{Scale: 0.5, ZeroPoint: -10}
	wantI := QuantizeInput(mid, tensor.Int8, qi)
	gotI := ResizeQuantize(src, 224, 224, tensor.Int8, qi)
	for i := range wantI.I8 {
		if gotI.I8[i] != wantI.I8[i] {
			t.Fatalf("fused int8 quantize elem %d = %d, want %d", i, gotI.I8[i], wantI.I8[i])
		}
	}
}

func TestRunIntoMatchesRunAndReusesBuffers(t *testing.T) {
	frame := imaging.SyntheticScene(640, 480, 21)
	specs := []Spec{
		{TargetW: 224, TargetH: 224, Mean: 127.5, Std: 127.5},
		{TargetW: 224, TargetH: 224, Quantized: true, DType: tensor.UInt8,
			Quant: tensor.QuantParams{Scale: 1, ZeroPoint: 0}},
		{CropFraction: 0.875, TargetW: 224, TargetH: 224, Mean: 0, Std: 1},
		{RotateTurns: 1, TargetW: 257, TargetH: 257, Mean: 127.5, Std: 127.5},
		{Tokenize: true, MaxTokens: 32, SampleText: "the camera app works great"},
	}
	for si, s := range specs {
		wantT, wantW := s.Run(frame)
		var sc RunScratch
		for rep := 0; rep < 3; rep++ { // repeated calls must reuse and agree
			gotT, gotW := s.RunInto(&sc, frame)
			if gotW != wantW {
				t.Fatalf("spec %d rep %d: work %+v, want %+v", si, rep, gotW, wantW)
			}
			if !gotT.Shape.Equal(wantT.Shape) || gotT.DType != wantT.DType {
				t.Fatalf("spec %d rep %d: tensor %v, want %v", si, rep, gotT, wantT)
			}
			for i, n := 0, wantT.Elems(); i < n; i++ {
				if gotT.RawAt(i) != wantT.RawAt(i) {
					t.Fatalf("spec %d rep %d: elem %d = %v, want %v", si, rep, i, gotT.RawAt(i), wantT.RawAt(i))
				}
			}
		}
	}
}
