package preproc

// This file holds the hot-path machinery behind the public kernels in
// preproc.go: the bilinear coefficient cache, the byte-indexed
// normalization/quantization tables, and the fused resize+convert
// kernels. Everything here is bit-exact with the scalar definitions in
// preproc.go — the coefficient tables are built with the very same
// float64 expressions the scalar loops used, so replaying them yields
// identical bytes (pinned by TestFusedKernelsMatchUnfused and the
// cross-worker-count determinism test at the repo root).

import (
	"sync"

	"aitax/internal/imaging"
	"aitax/internal/par"
	"aitax/internal/tensor"
)

// ---------------------------------------------------------------------------
// Bilinear coefficient cache.
//
// A resize is fully described by (srcW, srcH, dstW, dstH): the sample
// positions x0/x1/y0/y1 and the lerp weights fx/fy depend on nothing
// else. The app resizes every frame with the same geometry, so in the
// spirit of internal/plan the coefficients are computed once per
// geometry and cached forever (the set of distinct geometries in a run
// is tiny — one per model × capture resolution).

type resizeKey struct{ srcW, srcH, dstW, dstH int }

type resizePlan struct {
	x0, x1  []int32   // per output column: left/right source columns
	fx, ofx []float64 // per output column: weight and 1-weight
	y0, y1  []int32   // per output row: top/bottom source rows
	fy, ofy []float64 // per output row: weight and 1-weight
}

// A plain RWMutex + typed map rather than sync.Map: Load with a struct
// key boxes the key into an interface and allocates on every lookup,
// which would put an allocation back on the per-frame path.
var (
	resizeMu    sync.RWMutex
	resizePlans = map[resizeKey]*resizePlan{}
)

func planFor(srcW, srcH, dstW, dstH int) *resizePlan {
	key := resizeKey{srcW, srcH, dstW, dstH}
	resizeMu.RLock()
	p := resizePlans[key]
	resizeMu.RUnlock()
	if p != nil {
		return p
	}
	p = buildResizePlan(key)
	resizeMu.Lock()
	if q, ok := resizePlans[key]; ok {
		p = q // lost the build race; keep the published plan
	} else {
		resizePlans[key] = p
	}
	resizeMu.Unlock()
	return p
}

func buildResizePlan(k resizeKey) *resizePlan {
	p := &resizePlan{
		x0: make([]int32, k.dstW), x1: make([]int32, k.dstW),
		fx: make([]float64, k.dstW), ofx: make([]float64, k.dstW),
		y0: make([]int32, k.dstH), y1: make([]int32, k.dstH),
		fy: make([]float64, k.dstH), ofy: make([]float64, k.dstH),
	}
	xRatio := float64(k.srcW-1) / float64(max(k.dstW-1, 1))
	yRatio := float64(k.srcH-1) / float64(max(k.dstH-1, 1))
	for i := 0; i < k.dstW; i++ {
		sx := xRatio * float64(i)
		x0 := int(sx)
		p.x0[i] = int32(x0)
		p.x1[i] = int32(min(x0+1, k.srcW-1))
		p.fx[i] = sx - float64(x0)
		p.ofx[i] = 1 - p.fx[i]
	}
	for j := 0; j < k.dstH; j++ {
		sy := yRatio * float64(j)
		y0 := int(sy)
		p.y0[j] = int32(y0)
		p.y1[j] = int32(min(y0+1, k.srcH-1))
		p.fy[j] = sy - float64(y0)
		p.ofy[j] = 1 - p.fy[j]
	}
	return p
}

// lerpChan is one channel of the bilinear kernel, written with the same
// float64 expression shape as the original closure so the rounding is
// identical (ofx/ofy are the cached 1-fx/1-fy).
func lerpChan(a, b, c, d uint8, fx, ofx, fy, ofy float64) uint8 {
	top := float64(a)*ofx + float64(b)*fx
	bot := float64(c)*ofx + float64(d)*fx
	return uint8(top*ofy + bot*fy + 0.5)
}

type resizeTask struct {
	plan     *resizePlan
	src, dst *imaging.ARGBImage
}

var resizeTaskPool = sync.Pool{New: func() any { return new(resizeTask) }}

func (t *resizeTask) Tile(lo, hi int) {
	p, src := t.plan, t.src
	dstW := t.dst.Width
	for j := lo; j < hi; j++ {
		row0 := src.Pix[int(p.y0[j])*src.Width:][:src.Width]
		row1 := src.Pix[int(p.y1[j])*src.Width:][:src.Width]
		fy, ofy := p.fy[j], p.ofy[j]
		out := t.dst.Pix[j*dstW:][:dstW]
		for i := range out {
			x0, x1 := p.x0[i], p.x1[i]
			fx, ofx := p.fx[i], p.ofx[i]
			r00, g00, b00 := imaging.RGB(row0[x0])
			r10, g10, b10 := imaging.RGB(row0[x1])
			r01, g01, b01 := imaging.RGB(row1[x0])
			r11, g11, b11 := imaging.RGB(row1[x1])
			out[i] = imaging.PackRGB(
				lerpChan(r00, r10, r01, r11, fx, ofx, fy, ofy),
				lerpChan(g00, g10, g01, g11, fx, ofx, fy, ofy),
				lerpChan(b00, b10, b01, b11, fx, ofx, fy, ofy),
			)
		}
	}
}

// ---------------------------------------------------------------------------
// Byte-indexed conversion tables.
//
// Both normalization and input quantization map each of the 256
// possible channel bytes through a fixed scalar function, so the whole
// conversion collapses to a table lookup. Tables are cached per
// parameter set, again behind RWMutex + typed map to keep lookups
// allocation-free.

type normKey struct{ mean, std float64 }

var (
	normMu   sync.RWMutex
	normTabs = map[normKey]*[256]float32{}
)

func normTabFor(mean, std float64) *[256]float32 {
	key := normKey{mean, std}
	normMu.RLock()
	tab := normTabs[key]
	normMu.RUnlock()
	if tab != nil {
		return tab
	}
	tab = new([256]float32)
	for i := range tab {
		tab[i] = float32((float64(i) - mean) / std)
	}
	normMu.Lock()
	if t, ok := normTabs[key]; ok {
		tab = t
	} else {
		normTabs[key] = tab
	}
	normMu.Unlock()
	return tab
}

type quantKey struct {
	dt    tensor.DType
	scale float64
	zp    int
}

var (
	quantMu   sync.RWMutex
	quantTabs = map[quantKey]*[256]byte{}
)

// quantTabFor builds the byte→quantized-byte table for int8/uint8
// targets. Entries are the raw bit patterns (int8 values stored as
// their byte representation), produced by the same QuantParams.Quantize
// call the scalar path used.
func quantTabFor(dt tensor.DType, q tensor.QuantParams) *[256]byte {
	key := quantKey{dt, q.Scale, q.ZeroPoint}
	quantMu.RLock()
	tab := quantTabs[key]
	quantMu.RUnlock()
	if tab != nil {
		return tab
	}
	tab = new([256]byte)
	for i := range tab {
		tab[i] = byte(q.Quantize(float64(i), dt))
	}
	quantMu.Lock()
	if t, ok := quantTabs[key]; ok {
		tab = t
	} else {
		quantTabs[key] = tab
	}
	quantMu.Unlock()
	return tab
}

type normalizeTask struct {
	src *imaging.ARGBImage
	tab *[256]float32
	out []float32
}

var normalizeTaskPool = sync.Pool{New: func() any { return new(normalizeTask) }}

func (t *normalizeTask) Tile(lo, hi int) {
	w := t.src.Width
	tab := t.tab
	for j := lo; j < hi; j++ {
		row := t.src.Pix[j*w:][:w]
		out := t.out[j*w*3:][:w*3]
		// Four pixels per iteration into a capped 12-element window, so
		// the twelve float32 stores share one bounds check. (The output
		// is float32, so unlike the quantize kernel there is no packed
		// uint64 store to aim for.)
		i, idx := 0, 0
		for ; i+4 <= w; i, idx = i+4, idx+12 {
			o := out[idx : idx+12 : idx+12]
			p0, p1, p2, p3 := row[i], row[i+1], row[i+2], row[i+3]
			o[0], o[1], o[2] = tab[uint8(p0>>16)], tab[uint8(p0>>8)], tab[uint8(p0)]
			o[3], o[4], o[5] = tab[uint8(p1>>16)], tab[uint8(p1>>8)], tab[uint8(p1)]
			o[6], o[7], o[8] = tab[uint8(p2>>16)], tab[uint8(p2>>8)], tab[uint8(p2)]
			o[9], o[10], o[11] = tab[uint8(p3>>16)], tab[uint8(p3>>8)], tab[uint8(p3)]
		}
		for ; i < w; i, idx = i+1, idx+3 {
			r, g, b := imaging.RGB(row[i])
			out[idx] = tab[r]
			out[idx+1] = tab[g]
			out[idx+2] = tab[b]
		}
	}
}


type quantizeTask struct {
	src *imaging.ARGBImage
	tab *[256]byte
	u8  []uint8
	i8  []int8
}

var quantizeTaskPool = sync.Pool{New: func() any { return new(quantizeTask) }}

func (t *quantizeTask) Tile(lo, hi int) {
	w := t.src.Width
	tab := t.tab
	for j := lo; j < hi; j++ {
		row := t.src.Pix[j*w:][:w]
		if t.u8 != nil {
			// Four pixels per iteration, twelve independent byte stores
			// per bounds check. Packing the 24 output bytes into three
			// uint64 stores was measured and rejected: the narrow stores
			// are absorbed by the store buffer, while building each
			// packed word serializes on its shift/OR tree (see
			// docs/PERF.md).
			out := t.u8[j*w*3:][:w*3]
			i, idx := 0, 0
			for ; i+4 <= w; i, idx = i+4, idx+12 {
				o := out[idx : idx+12 : idx+12]
				p0, p1, p2, p3 := row[i], row[i+1], row[i+2], row[i+3]
				o[0], o[1], o[2] = tab[uint8(p0>>16)], tab[uint8(p0>>8)], tab[uint8(p0)]
				o[3], o[4], o[5] = tab[uint8(p1>>16)], tab[uint8(p1>>8)], tab[uint8(p1)]
				o[6], o[7], o[8] = tab[uint8(p2>>16)], tab[uint8(p2>>8)], tab[uint8(p2)]
				o[9], o[10], o[11] = tab[uint8(p3>>16)], tab[uint8(p3>>8)], tab[uint8(p3)]
			}
			for ; i < w; i, idx = i+1, idx+3 {
				r, g, b := imaging.RGB(row[i])
				out[idx] = tab[r]
				out[idx+1] = tab[g]
				out[idx+2] = tab[b]
			}
		} else {
			out := t.i8[j*w*3:][:w*3]
			i, idx := 0, 0
			for ; i+4 <= w; i, idx = i+4, idx+12 {
				o := out[idx : idx+12 : idx+12]
				p0, p1, p2, p3 := row[i], row[i+1], row[i+2], row[i+3]
				o[0], o[1], o[2] = int8(tab[uint8(p0>>16)]), int8(tab[uint8(p0>>8)]), int8(tab[uint8(p0)])
				o[3], o[4], o[5] = int8(tab[uint8(p1>>16)]), int8(tab[uint8(p1>>8)]), int8(tab[uint8(p1)])
				o[6], o[7], o[8] = int8(tab[uint8(p2>>16)]), int8(tab[uint8(p2>>8)]), int8(tab[uint8(p2)])
				o[9], o[10], o[11] = int8(tab[uint8(p3>>16)]), int8(tab[uint8(p3>>8)]), int8(tab[uint8(p3)])
			}
			for ; i < w; i, idx = i+1, idx+3 {
				r, g, b := imaging.RGB(row[i])
				out[idx] = int8(tab[r])
				out[idx+1] = int8(tab[g])
				out[idx+2] = int8(tab[b])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fused resize + convert kernels.
//
// Resize-then-normalize (or -quantize) walks the 224×224 intermediate
// twice and materializes it in between. The fused kernels interpolate a
// pixel and immediately push its channels through the conversion table,
// eliminating the intermediate image and one full pass over it. Because
// the lerp produces the same uint8 the two-step path would have stored,
// the outputs are bit-identical.

type fusedNormTask struct {
	plan *resizePlan
	src  *imaging.ARGBImage
	tab  *[256]float32
	out  []float32
	dstW int
}

var fusedNormTaskPool = sync.Pool{New: func() any { return new(fusedNormTask) }}

func (t *fusedNormTask) Tile(lo, hi int) {
	p, src, tab, dstW := t.plan, t.src, t.tab, t.dstW
	for j := lo; j < hi; j++ {
		row0 := src.Pix[int(p.y0[j])*src.Width:][:src.Width]
		row1 := src.Pix[int(p.y1[j])*src.Width:][:src.Width]
		fy, ofy := p.fy[j], p.ofy[j]
		out := t.out[j*dstW*3:][:dstW*3]
		idx := 0
		for i := 0; i < dstW; i++ {
			x0, x1 := p.x0[i], p.x1[i]
			fx, ofx := p.fx[i], p.ofx[i]
			r00, g00, b00 := imaging.RGB(row0[x0])
			r10, g10, b10 := imaging.RGB(row0[x1])
			r01, g01, b01 := imaging.RGB(row1[x0])
			r11, g11, b11 := imaging.RGB(row1[x1])
			out[idx] = tab[lerpChan(r00, r10, r01, r11, fx, ofx, fy, ofy)]
			out[idx+1] = tab[lerpChan(g00, g10, g01, g11, fx, ofx, fy, ofy)]
			out[idx+2] = tab[lerpChan(b00, b10, b01, b11, fx, ofx, fy, ofy)]
			idx += 3
		}
	}
}

type fusedQuantTask struct {
	plan *resizePlan
	src  *imaging.ARGBImage
	tab  *[256]byte
	u8   []uint8
	i8   []int8
	dstW int
}

var fusedQuantTaskPool = sync.Pool{New: func() any { return new(fusedQuantTask) }}

func (t *fusedQuantTask) Tile(lo, hi int) {
	p, src, tab, dstW := t.plan, t.src, t.tab, t.dstW
	for j := lo; j < hi; j++ {
		row0 := src.Pix[int(p.y0[j])*src.Width:][:src.Width]
		row1 := src.Pix[int(p.y1[j])*src.Width:][:src.Width]
		fy, ofy := p.fy[j], p.ofy[j]
		idx := 0
		if t.u8 != nil {
			out := t.u8[j*dstW*3:][:dstW*3]
			for i := 0; i < dstW; i++ {
				x0, x1 := p.x0[i], p.x1[i]
				fx, ofx := p.fx[i], p.ofx[i]
				r00, g00, b00 := imaging.RGB(row0[x0])
				r10, g10, b10 := imaging.RGB(row0[x1])
				r01, g01, b01 := imaging.RGB(row1[x0])
				r11, g11, b11 := imaging.RGB(row1[x1])
				out[idx] = tab[lerpChan(r00, r10, r01, r11, fx, ofx, fy, ofy)]
				out[idx+1] = tab[lerpChan(g00, g10, g01, g11, fx, ofx, fy, ofy)]
				out[idx+2] = tab[lerpChan(b00, b10, b01, b11, fx, ofx, fy, ofy)]
				idx += 3
			}
		} else {
			out := t.i8[j*dstW*3:][:dstW*3]
			for i := 0; i < dstW; i++ {
				x0, x1 := p.x0[i], p.x1[i]
				fx, ofx := p.fx[i], p.ofx[i]
				r00, g00, b00 := imaging.RGB(row0[x0])
				r10, g10, b10 := imaging.RGB(row0[x1])
				r01, g01, b01 := imaging.RGB(row1[x0])
				r11, g11, b11 := imaging.RGB(row1[x1])
				out[idx] = int8(tab[lerpChan(r00, r10, r01, r11, fx, ofx, fy, ofy)])
				out[idx+1] = int8(tab[lerpChan(g00, g10, g01, g11, fx, ofx, fy, ofy)])
				out[idx+2] = int8(tab[lerpChan(b00, b10, b01, b11, fx, ofx, fy, ofy)])
				idx += 3
			}
		}
	}
}

// ResizeNormalize scales src to dstW×dstH and normalizes the result to
// an NHWC FP32 tensor in a single pass (no intermediate image).
// Bit-identical to ResizeBilinear followed by Normalize.
func ResizeNormalize(src *imaging.ARGBImage, dstW, dstH int, mean, std float64) *tensor.Tensor {
	return ResizeNormalizeInto(nil, src, dstW, dstH, mean, std)
}

// ResizeNormalizeInto is the scratch-reusing variant of ResizeNormalize:
// dst (which may be nil) is recycled through tensor.Ensure, so a
// steady-state caller allocates nothing. Returns the tensor.
func ResizeNormalizeInto(dst *tensor.Tensor, src *imaging.ARGBImage, dstW, dstH int, mean, std float64) *tensor.Tensor {
	if dstW <= 0 || dstH <= 0 {
		panic("preproc: invalid resize target")
	}
	if std == 0 {
		panic("preproc: zero normalization std")
	}
	t := tensor.Ensure(dst, tensor.Float32, tensor.Shape{1, dstH, dstW, 3})
	task := fusedNormTaskPool.Get().(*fusedNormTask)
	*task = fusedNormTask{
		plan: planFor(src.Width, src.Height, dstW, dstH),
		src:  src, tab: normTabFor(mean, std), out: t.F32, dstW: dstW,
	}
	par.For(dstH, task)
	*task = fusedNormTask{}
	fusedNormTaskPool.Put(task)
	return t
}

// ResizeQuantize scales src to dstW×dstH and quantizes the result to an
// NHWC tensor in a single pass (no intermediate image). Bit-identical
// to ResizeBilinear followed by QuantizeInput.
func ResizeQuantize(src *imaging.ARGBImage, dstW, dstH int, dt tensor.DType, q tensor.QuantParams) *tensor.Tensor {
	return ResizeQuantizeInto(nil, src, dstW, dstH, dt, q)
}

// ResizeQuantizeInto is the scratch-reusing variant of ResizeQuantize:
// dst (which may be nil) is recycled through tensor.Ensure. Returns the
// tensor.
func ResizeQuantizeInto(dst *tensor.Tensor, src *imaging.ARGBImage, dstW, dstH int, dt tensor.DType, q tensor.QuantParams) *tensor.Tensor {
	if dstW <= 0 || dstH <= 0 {
		panic("preproc: invalid resize target")
	}
	if dt != tensor.UInt8 && dt != tensor.Int8 {
		// Non-byte targets have no conversion table; fall back to the
		// two-step path through a pooled intermediate.
		tmp := imaging.GetARGB(dstW, dstH)
		ResizeBilinearInto(tmp, src, dstW, dstH)
		t := QuantizeInputInto(dst, tmp, dt, q)
		imaging.PutARGB(tmp)
		return t
	}
	t := tensor.Ensure(dst, dt, tensor.Shape{1, dstH, dstW, 3})
	t.Quant = q
	task := fusedQuantTaskPool.Get().(*fusedQuantTask)
	*task = fusedQuantTask{
		plan: planFor(src.Width, src.Height, dstW, dstH),
		src:  src, tab: quantTabFor(dt, q), dstW: dstW,
	}
	// Select the output slice by dtype: a reused tensor can carry a stale
	// slice of the other width from an earlier Ensure.
	if dt == tensor.UInt8 {
		task.u8 = t.U8
	} else {
		task.i8 = t.I8
	}
	par.For(dstH, task)
	*task = fusedQuantTask{}
	fusedQuantTaskPool.Put(task)
	return t
}
