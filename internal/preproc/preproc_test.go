package preproc

import (
	"testing"
	"testing/quick"

	"aitax/internal/imaging"
	"aitax/internal/tensor"
)

func gradient(w, h int) *imaging.ARGBImage {
	img := imaging.NewARGB(w, h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			img.Set(i, j, imaging.PackRGB(uint8(255*i/w), uint8(255*j/h), 128))
		}
	}
	return img
}

func TestResizeBilinearDims(t *testing.T) {
	src := gradient(640, 480)
	dst := ResizeBilinear(src, 224, 224)
	if dst.Width != 224 || dst.Height != 224 {
		t.Fatalf("resized dims = %dx%d", dst.Width, dst.Height)
	}
}

func TestResizeBilinearIdentity(t *testing.T) {
	src := gradient(64, 64)
	dst := ResizeBilinear(src, 64, 64)
	for i := range src.Pix {
		if src.Pix[i] != dst.Pix[i] {
			t.Fatal("identity resize altered pixels")
		}
	}
}

func TestResizeBilinearPreservesConstant(t *testing.T) {
	src := imaging.NewARGB(100, 80)
	for i := range src.Pix {
		src.Pix[i] = imaging.PackRGB(10, 200, 77)
	}
	dst := ResizeBilinear(src, 33, 57)
	for _, p := range dst.Pix {
		r, g, b := imaging.RGB(p)
		if r != 10 || g != 200 || b != 77 {
			t.Fatalf("constant image changed: %d,%d,%d", r, g, b)
		}
	}
}

func TestResizeBilinearMonotoneGradient(t *testing.T) {
	// Downscaling a horizontal ramp must remain (weakly) monotone.
	src := gradient(256, 16)
	dst := ResizeBilinear(src, 64, 8)
	for j := 0; j < dst.Height; j++ {
		prev := -1
		for i := 0; i < dst.Width; i++ {
			r, _, _ := imaging.RGB(dst.At(i, j))
			if int(r) < prev {
				t.Fatalf("gradient non-monotone at (%d,%d)", i, j)
			}
			prev = int(r)
		}
	}
}

func TestCenterCrop(t *testing.T) {
	src := gradient(100, 100)
	dst := CenterCrop(src, 50, 50)
	if dst.Width != 50 || dst.Height != 50 {
		t.Fatalf("crop dims = %dx%d", dst.Width, dst.Height)
	}
	if dst.At(0, 0) != src.At(25, 25) {
		t.Fatal("crop not centered")
	}
	// Oversized crop clamps to source.
	big := CenterCrop(src, 500, 500)
	if big.Width != 100 || big.Height != 100 {
		t.Fatalf("oversized crop = %dx%d", big.Width, big.Height)
	}
}

func TestCropFraction(t *testing.T) {
	src := gradient(200, 100)
	dst := CropFraction(src, 0.875)
	if dst.Width != 175 || dst.Height != 87 {
		t.Fatalf("crop fraction dims = %dx%d", dst.Width, dst.Height)
	}
}

func TestRotate90RoundTrip(t *testing.T) {
	src := gradient(31, 17)
	r := Rotate90(src, 4)
	for i := range src.Pix {
		if r.Pix[i] != src.Pix[i] {
			t.Fatal("4 quarter turns must be identity")
		}
	}
	// 1 turn then 3 turns = identity.
	r13 := Rotate90(Rotate90(src, 1), 3)
	for i := range src.Pix {
		if r13.Pix[i] != src.Pix[i] {
			t.Fatal("1+3 quarter turns must be identity")
		}
	}
}

func TestRotate90Dimensions(t *testing.T) {
	src := gradient(30, 20)
	r1 := Rotate90(src, 1)
	if r1.Width != 20 || r1.Height != 30 {
		t.Fatalf("90° dims = %dx%d", r1.Width, r1.Height)
	}
	// Top-left goes to top-right under 90° cw.
	if r1.At(19, 0) != src.At(0, 0) {
		t.Fatal("90° rotation mapping wrong")
	}
	r2 := Rotate90(src, 2)
	if r2.At(29, 19) != src.At(0, 0) {
		t.Fatal("180° rotation mapping wrong")
	}
	rneg := Rotate90(src, -1)
	r3 := Rotate90(src, 3)
	for i := range rneg.Pix {
		if rneg.Pix[i] != r3.Pix[i] {
			t.Fatal("-1 and 3 quarter turns must agree")
		}
	}
}

func TestNormalize(t *testing.T) {
	src := imaging.NewARGB(2, 2)
	src.Set(0, 0, imaging.PackRGB(127, 0, 255))
	out := Normalize(src, 127.5, 127.5)
	if out.DType != tensor.Float32 || !out.Shape.Equal(tensor.Shape{1, 2, 2, 3}) {
		t.Fatalf("normalize output %v", out)
	}
	if v := out.F32[0]; v < -0.01 || v > 0.01 {
		t.Fatalf("normalized 127 = %v, want ~0", v)
	}
	if v := out.F32[1]; v != -1 {
		t.Fatalf("normalized 0 = %v, want -1", v)
	}
	if v := out.F32[2]; v != 1 {
		t.Fatalf("normalized 255 = %v, want 1", v)
	}
}

func TestNormalizeRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		img := imaging.SyntheticScene(16, 16, seed)
		out := Normalize(img, 127.5, 127.5)
		for _, v := range out.F32 {
			if v < -1 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeInput(t *testing.T) {
	src := imaging.NewARGB(2, 2)
	src.Set(0, 0, imaging.PackRGB(0, 128, 255))
	q := tensor.QuantParams{Scale: 1, ZeroPoint: 0}
	out := QuantizeInput(src, tensor.UInt8, q)
	if out.U8[0] != 0 || out.U8[1] != 128 || out.U8[2] != 255 {
		t.Fatalf("quantized input = %v", out.U8[:3])
	}
}

func TestTokenize(t *testing.T) {
	vocab := BasicVocab()
	ids := Tokenize("the camera is great", vocab, 16)
	if len(ids) != 16 {
		t.Fatalf("token count = %d, want 16 (padded)", len(ids))
	}
	if ids[0] != vocab["[CLS]"] {
		t.Fatal("missing [CLS]")
	}
	if ids[1] != vocab["the"] || ids[2] != vocab["camera"] || ids[3] != vocab["is"] || ids[4] != vocab["great"] {
		t.Fatalf("tokens = %v", ids[:6])
	}
	if ids[5] != vocab["[SEP]"] {
		t.Fatalf("missing [SEP] after words: %v", ids[:8])
	}
	for _, id := range ids[6:] {
		if id != vocab["[PAD]"] {
			t.Fatal("padding wrong")
		}
	}
}

func TestTokenizeWordPieces(t *testing.T) {
	vocab := BasicVocab()
	// "works" = "works" in vocab; "working" = "work"? not in vocab -> pieces.
	ids := Tokenize("loves", vocab, 8)
	// "loves" -> "love" + "##s"
	if ids[1] != vocab["love"] || ids[2] != vocab["##s"] {
		t.Fatalf("wordpiece split wrong: %v", ids[:4])
	}
}

func TestTokenizeTruncates(t *testing.T) {
	vocab := BasicVocab()
	long := ""
	for i := 0; i < 100; i++ {
		long += "the "
	}
	ids := Tokenize(long, vocab, 10)
	if len(ids) != 10 {
		t.Fatalf("truncated len = %d, want 10", len(ids))
	}
	if ids[9] != vocab["[SEP]"] {
		t.Fatal("[SEP] must terminate truncated sequence")
	}
}

func TestSpecRunVision(t *testing.T) {
	frame := imaging.SyntheticScene(640, 480, 1)
	spec := Spec{CropFraction: 0.875, TargetW: 224, TargetH: 224, Mean: 127.5, Std: 127.5}
	out, w := spec.Run(frame)
	if !out.Shape.Equal(tensor.Shape{1, 224, 224, 3}) {
		t.Fatalf("output shape %v", out.Shape)
	}
	if w.Ops == 0 || w.Bytes == 0 {
		t.Fatal("work must be non-zero")
	}
	if spec.Tasks() != "scale, crop, normalize" {
		t.Fatalf("tasks = %q", spec.Tasks())
	}
}

func TestSpecRunQuantized(t *testing.T) {
	frame := imaging.SyntheticScene(640, 480, 1)
	spec := Spec{TargetW: 224, TargetH: 224, Quantized: true,
		DType: tensor.UInt8, Quant: tensor.QuantParams{Scale: 1}}
	out, _ := spec.Run(frame)
	if out.DType != tensor.UInt8 {
		t.Fatalf("dtype = %v", out.DType)
	}
}

func TestSpecRunTokenize(t *testing.T) {
	spec := Spec{Tokenize: true, MaxTokens: 32, SampleText: "this phone is fast"}
	out, w := spec.Run(nil)
	if !out.Shape.Equal(tensor.Shape{1, 32}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	if w.Ops == 0 {
		t.Fatal("tokenize work is zero")
	}
	if spec.Tasks() != "tokenization" {
		t.Fatalf("tasks = %q", spec.Tasks())
	}
}

func TestSpecWorkMatchesRunShape(t *testing.T) {
	frame := imaging.SyntheticScene(320, 240, 2)
	spec := Spec{TargetW: 128, TargetH: 128, Mean: 0, Std: 255, RotateTurns: 1}
	_, ran := spec.Run(frame)
	est := spec.Work(320, 240)
	if est.Ops != ran.Ops {
		t.Fatalf("estimated ops %d != run ops %d", est.Ops, ran.Ops)
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{TargetW: 224, TargetH: 224, Std: 127.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{TargetW: 224},             // mismatched target
		{TargetW: -1, TargetH: -1}, // negative
		{CropFraction: 1.5},        // fraction out of range
		{Quantized: true, DType: tensor.Float32, TargetW: 8, TargetH: 8}, // wrong dtype
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestWorkScalesWithResolution(t *testing.T) {
	small := Spec{TargetW: 224, TargetH: 224, Std: 1}.Work(640, 480)
	large := Spec{TargetW: 513, TargetH: 513, Std: 1}.Work(640, 480)
	if large.Ops <= small.Ops {
		t.Fatal("larger target must cost more")
	}
}

func TestResizePixelsBoundedBySourceRange(t *testing.T) {
	// Property: bilinear interpolation cannot produce values outside the
	// source's per-channel min/max.
	f := func(seed uint64, dw, dh uint8) bool {
		src := imaging.SyntheticScene(40, 30, seed)
		var rmin, rmax uint8 = 255, 0
		for _, p := range src.Pix {
			r, _, _ := imaging.RGB(p)
			if r < rmin {
				rmin = r
			}
			if r > rmax {
				rmax = r
			}
		}
		w := 8 + int(dw)%64
		h := 8 + int(dh)%64
		dst := ResizeBilinear(src, w, h)
		for _, p := range dst.Pix {
			r, _, _ := imaging.RGB(p)
			if r < rmin || r > rmax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
