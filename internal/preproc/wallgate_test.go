package preproc

import (
	"os"
	"testing"
	"time"

	"aitax/internal/imaging"
	"aitax/internal/par"
	"aitax/internal/tensor"
)

// In-process half of the wall-time gate for the conversion kernels (see
// internal/imaging/wallgate_test.go for the rationale): each table-based
// unrolled kernel races the scalar per-channel definition it replaced,
// interleaved so machine noise cancels, gated behind AITAX_WALL_GATE=1.

func minWall2(rounds int, a, b func()) (minA, minB time.Duration) {
	a()
	b()
	minA, minB = time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		a()
		t1 := time.Now()
		b()
		t2 := time.Now()
		if d := t1.Sub(t0); d < minA {
			minA = d
		}
		if d := t2.Sub(t1); d < minB {
			minB = d
		}
	}
	return minA, minB
}

// refNormalizeInto is the scalar definition Normalize started as: one
// float subtract/divide per channel, no tables, no unrolling.
func refNormalizeInto(dst *tensor.Tensor, src *imaging.ARGBImage, mean, std float64) *tensor.Tensor {
	t := tensor.Ensure(dst, tensor.Float32, tensor.Shape{1, src.Height, src.Width, 3})
	idx := 0
	for _, p := range src.Pix {
		r, g, b := imaging.RGB(p)
		t.F32[idx] = float32((float64(r) - mean) / std)
		t.F32[idx+1] = float32((float64(g) - mean) / std)
		t.F32[idx+2] = float32((float64(b) - mean) / std)
		idx += 3
	}
	return t
}

// refQuantizeInto is the scalar definition of QuantizeInput for byte
// targets: one QuantParams.Quantize call per channel.
func refQuantizeInto(dst *tensor.Tensor, src *imaging.ARGBImage, dt tensor.DType, q tensor.QuantParams) *tensor.Tensor {
	t := tensor.Ensure(dst, dt, tensor.Shape{1, src.Height, src.Width, 3})
	t.Quant = q
	idx := 0
	for _, p := range src.Pix {
		r, g, b := imaging.RGB(p)
		for c, ch := range [3]uint8{r, g, b} {
			v := byte(q.Quantize(float64(ch), dt))
			if dt == tensor.UInt8 {
				t.U8[idx+c] = v
			} else {
				t.I8[idx+c] = int8(v)
			}
		}
		idx += 3
	}
	return t
}

func TestWallGateConvertKernels(t *testing.T) {
	if os.Getenv("AITAX_WALL_GATE") == "" {
		t.Skip("in-process wall check; run via `make bench-wall` (AITAX_WALL_GATE=1)")
	}
	defer par.SetWorkers(par.SetWorkers(1))
	scene := imaging.SyntheticScene(224, 224, 7)
	q := tensor.QuantParams{Scale: 0.0078125, ZeroPoint: 128}
	var swarOut, refOut *tensor.Tensor

	report := func(name string, swar, ref time.Duration) {
		t.Helper()
		t.Logf("%s: table kernel %v vs scalar %v (%.1f%% faster)",
			name, swar, ref, (1-float64(swar)/float64(ref))*100)
		if float64(swar) > 0.97*float64(ref) {
			t.Errorf("%s: table kernel (%v) is not measurably faster than the scalar definition (%v)",
				name, swar, ref)
		}
	}

	swar, ref := minWall2(40,
		func() { swarOut = NormalizeInto(swarOut, scene, 127.5, 127.5) },
		func() { refOut = refNormalizeInto(refOut, scene, 127.5, 127.5) })
	report("Normalize 224", swar, ref)
	for i, v := range refOut.F32 {
		if swarOut.F32[i] != v {
			t.Fatalf("normalize reference diverged at element %d", i)
		}
	}

	var swarQ, refQ *tensor.Tensor
	swar, ref = minWall2(40,
		func() { swarQ = QuantizeInputInto(swarQ, scene, tensor.UInt8, q) },
		func() { refQ = refQuantizeInto(refQ, scene, tensor.UInt8, q) })
	report("QuantizeInput 224 uint8", swar, ref)
	for i, v := range refQ.U8 {
		if swarQ.U8[i] != v {
			t.Fatalf("quantize reference diverged at element %d", i)
		}
	}
}
