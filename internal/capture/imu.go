package capture

import (
	"time"

	"aitax/internal/sim"
)

// IMU models the inertial sensor whose orientation stream pose apps fuse
// with camera frames (§II-A: "Some systems collect data from more than a
// single sensor, in which case additional data processing such as fusing
// multiple sources of data into a single metric may be required").
// Orientation changes occasionally; reads return the latest sample after
// a short sensor-hub round trip.
type IMU struct {
	eng *sim.Engine
	rng *sim.RNG

	// ReadLatency is the sensor-hub round trip per query.
	ReadLatency time.Duration
	// JitterCV spreads the read latency.
	JitterCV float64

	orientation int // quarter turns, 0..3
	reads       int
}

// NewIMU opens an inertial sensor session.
func NewIMU(eng *sim.Engine, rng *sim.RNG) *IMU {
	return &IMU{
		eng: eng, rng: rng,
		ReadLatency: 350 * time.Microsecond,
		JitterCV:    0.25,
	}
}

// Reads returns how many orientation queries were served.
func (i *IMU) Reads() int { return i.reads }

// ReadOrientation asynchronously returns the device orientation in
// clockwise quarter turns. The device occasionally rotates (seeded), so
// consumers cannot cache the answer — each frame pays the fusion read.
func (i *IMU) ReadOrientation(done func(quarterTurns int)) {
	lat := i.rng.Jitter(i.ReadLatency, i.JitterCV)
	i.eng.After(lat, func() {
		i.reads++
		// ~2% of reads observe a rotation event.
		if i.rng.Intn(50) == 0 {
			i.orientation = (i.orientation + 1) % 4
		}
		if done != nil {
			done(i.orientation)
		}
	})
}
