package capture

import (
	"testing"
	"time"

	"aitax/internal/sim"
)

func newCam() (*sim.Engine, *Camera) {
	eng := sim.NewEngine()
	return eng, NewCamera(eng, sim.NewRNG(7), DefaultPreviewW, DefaultPreviewH)
}

func TestCaptureDeliversFrame(t *testing.T) {
	eng, cam := newCam()
	var f *Frame
	cam.Capture(func(fr *Frame) { f = fr })
	eng.Run()
	if f == nil {
		t.Fatal("no frame delivered")
	}
	if f.Image.Width != DefaultPreviewW || f.Image.Height != DefaultPreviewH {
		t.Fatalf("frame dims = %dx%d", f.Image.Width, f.Image.Height)
	}
	if f.SensorLatency <= 0 {
		t.Fatal("sensor latency missing")
	}
}

func TestSensorLatencyPlausible(t *testing.T) {
	eng, cam := newCam()
	var lats []time.Duration
	for i := 0; i < 100; i++ {
		cam.Capture(func(f *Frame) { lats = append(lats, f.SensorLatency) })
	}
	eng.Run()
	for _, l := range lats {
		if l < 2*time.Millisecond || l > 15*time.Millisecond {
			t.Fatalf("sensor latency %v outside sane range", l)
		}
	}
	// Jitter: not all identical.
	same := true
	for _, l := range lats {
		if l != lats[0] {
			same = false
		}
	}
	if same {
		t.Fatal("no jitter on sensor latency")
	}
}

func TestSequenceNumbers(t *testing.T) {
	eng, cam := newCam()
	var seqs []int
	for i := 0; i < 5; i++ {
		cam.Capture(func(f *Frame) { seqs = append(seqs, f.Seq) })
	}
	eng.Run()
	if len(seqs) != 5 {
		t.Fatalf("frames = %d", len(seqs))
	}
	seen := map[int]bool{}
	for _, s := range seqs {
		if seen[s] {
			t.Fatal("duplicate sequence number")
		}
		seen[s] = true
	}
}

func TestConvertFrame(t *testing.T) {
	eng, cam := newCam()
	cam.Capture(func(f *Frame) {
		img := ConvertFrame(f)
		if img.Width != cam.Width || img.Height != cam.Height {
			t.Errorf("converted dims = %dx%d", img.Width, img.Height)
		}
	})
	eng.Run()
}

func TestConversionWorkScalesWithResolution(t *testing.T) {
	eng := sim.NewEngine()
	small := NewCamera(eng, sim.NewRNG(1), 320, 240)
	large := NewCamera(eng, sim.NewRNG(1), 1280, 720)
	if large.ConversionWork().Ops <= small.ConversionWork().Ops {
		t.Fatal("conversion work must scale with pixels")
	}
	if small.ConversionWork().Vectorizable {
		t.Fatal("managed conversion is not vectorizable")
	}
}

func TestFrameBytes(t *testing.T) {
	_, cam := newCam()
	if cam.FrameBytes() != DefaultPreviewW*DefaultPreviewH*3/2 {
		t.Fatalf("frame bytes = %d", cam.FrameBytes())
	}
}

func TestSynthesizeMode(t *testing.T) {
	eng, cam := newCam()
	cam.Synthesize = true
	var a, b *Frame
	cam.Capture(func(f *Frame) { a = f })
	cam.Capture(func(f *Frame) { b = f })
	eng.Run()
	diff := false
	for i := range a.Image.Y {
		if a.Image.Y[i] != b.Image.Y[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("synthesized frames must differ")
	}
}

func TestPoolModeCyclesDistinctFrames(t *testing.T) {
	eng, cam := newCam()
	imgs := map[*Frame]bool{}
	for i := 0; i < 8; i++ {
		cam.Capture(func(f *Frame) { imgs[f] = true })
	}
	eng.Run()
	if len(imgs) != 8 {
		t.Fatalf("frames = %d", len(imgs))
	}
}

func TestOddResolutionFloored(t *testing.T) {
	eng := sim.NewEngine()
	cam := NewCamera(eng, sim.NewRNG(1), 641, 481)
	if cam.Width != 640 || cam.Height != 480 {
		t.Fatalf("dims = %dx%d", cam.Width, cam.Height)
	}
}

func TestIMUReadOrientation(t *testing.T) {
	eng := sim.NewEngine()
	imu := NewIMU(eng, sim.NewRNG(3))
	var turns []int
	for i := 0; i < 200; i++ {
		imu.ReadOrientation(func(q int) { turns = append(turns, q) })
	}
	eng.Run()
	if len(turns) != 200 || imu.Reads() != 200 {
		t.Fatalf("reads = %d/%d", len(turns), imu.Reads())
	}
	for _, q := range turns {
		if q < 0 || q > 3 {
			t.Fatalf("orientation %d out of range", q)
		}
	}
	// With ~2% rotation probability over 200 reads, the orientation must
	// have changed at least once.
	changed := false
	for i := 1; i < len(turns); i++ {
		if turns[i] != turns[i-1] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("orientation never changed over 200 reads")
	}
}

func TestIMUReadLatencyPositive(t *testing.T) {
	eng := sim.NewEngine()
	imu := NewIMU(eng, sim.NewRNG(5))
	imu.ReadOrientation(nil)
	if end := eng.Run(); end.Duration() <= 0 || end.Duration() > 2*time.Millisecond {
		t.Fatalf("imu read latency = %v", end.Duration())
	}
}
