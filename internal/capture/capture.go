// Package capture models the Android camera data-acquisition path the
// paper identifies as a major share of application latency (§II-A): a
// sensor with exposure/readout/ISP latency delivering YUV_NV21 preview
// frames, plus the CPU-side buffer handling the app performs to obtain a
// usable frame. Sensor-side latency is constant-ish with jitter; the
// CPU-side conversion runs on the scheduler, so background CPU load
// stretches it — exactly the Fig. 10 behaviour.
package capture

import (
	"time"

	"aitax/internal/imaging"
	"aitax/internal/sim"
	"aitax/internal/work"
)

// Frame is one delivered camera frame.
type Frame struct {
	Image       *imaging.YUVImage
	Seq         int
	DeliveredAt sim.Time
	// SensorLatency is the non-CPU share of acquisition (exposure,
	// readout, ISP, HAL delivery).
	SensorLatency time.Duration
}

// Camera is a preview-stream camera session.
type Camera struct {
	eng *sim.Engine
	rng *sim.RNG

	// Width and Height are the preview resolution (the demo apps request
	// a small preview, not full sensor resolution).
	Width, Height int
	// Exposure+Readout is the sensor-side base latency per frame.
	Exposure time.Duration
	Readout  time.Duration
	// JitterCV is the coefficient of variation on sensor latency —
	// "delays in the interrupt handling from sensor input streams"
	// (§IV-C) feeding the Fig. 11 variability.
	JitterCV float64

	// Synthesize controls whether each frame gets fresh procedural
	// content (true) or cycles a small pregenerated pool (false, the
	// fast default for long experiments).
	Synthesize bool

	pool    []*imaging.YUVImage
	scratch []*imaging.YUVImage // ring reused by the Synthesize path
	seq     int
}

// DefaultPreviewW and DefaultPreviewH are the demo apps' preview size.
const (
	DefaultPreviewW = 480
	DefaultPreviewH = 360
)

// NewCamera opens a camera session at the given preview resolution.
func NewCamera(eng *sim.Engine, rng *sim.RNG, width, height int) *Camera {
	c := &Camera{
		eng: eng, rng: rng,
		Width: width &^ 1, Height: height &^ 1,
		Exposure: 4 * time.Millisecond,
		Readout:  3 * time.Millisecond,
		JitterCV: 0.18,
	}
	// Pregenerate a pool of distinct frames so long runs do not spend
	// host time on procedural content.
	for i := 0; i < 4; i++ {
		c.pool = append(c.pool, imaging.SyntheticFrame(c.Width, c.Height, uint64(1000+i)))
	}
	return c
}

// FrameBytes returns the NV21 frame size.
func (c *Camera) FrameBytes() int { return c.Width * c.Height * 3 / 2 }

// ConversionWork is the CPU-side cost of turning the delivered NV21
// buffer into an ARGB bitmap ("bitmap formatting", §II-B) — per-pixel
// integer math that Android apps perform in managed code.
func (c *Camera) ConversionWork() work.Work {
	px := int64(c.Width) * int64(c.Height)
	return work.Work{Ops: px * 12, Bytes: px * (3/2 + 4), Vectorizable: false}
}

// Capture delivers the next frame after the sensor-side latency. The
// CPU-side conversion is the caller's job (it belongs to the app's
// threads); ConvertFrame performs it for real.
func (c *Camera) Capture(done func(*Frame)) {
	base := c.Exposure + c.Readout
	lat := c.rng.Jitter(base, c.JitterCV)
	seq := c.seq
	c.seq++
	c.eng.After(lat, func() {
		var img *imaging.YUVImage
		if c.Synthesize {
			// Paint into a camera-owned scratch ring: like the pooled
			// path, a delivered image is recycled after len(pool) more
			// captures, which is the lifetime a preview buffer has anyway.
			if c.scratch == nil {
				c.scratch = make([]*imaging.YUVImage, len(c.pool))
				for i := range c.scratch {
					c.scratch[i] = imaging.NewYUV(c.Width, c.Height)
				}
			}
			img = imaging.SyntheticFrameInto(c.scratch[seq%len(c.scratch)], uint64(5000+seq))
		} else {
			img = c.pool[seq%len(c.pool)]
		}
		done(&Frame{Image: img, Seq: seq, DeliveredAt: c.eng.Now(), SensorLatency: lat})
	})
}

// ConvertFrame performs the real NV21→ARGB conversion of a frame.
func ConvertFrame(f *Frame) *imaging.ARGBImage {
	return imaging.YUVToARGB(f.Image)
}

// ConvertFrameInto is the scratch-reusing variant of ConvertFrame: the
// bitmap is decoded into dst, which steady-state callers recycle every
// frame so the conversion allocates nothing. Returns dst.
func ConvertFrameInto(dst *imaging.ARGBImage, f *Frame) *imaging.ARGBImage {
	return imaging.YUVToARGBInto(dst, f.Image)
}
