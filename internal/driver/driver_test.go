package driver

import (
	"testing"
	"time"

	"aitax/internal/fastrpc"
	"aitax/internal/models"
	"aitax/internal/nn"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

type rig struct {
	eng *sim.Engine
	sch *sched.Scheduler
	p   *soc.SoC
}

func newRig() *rig {
	eng := sim.NewEngine()
	return &rig{eng: eng, sch: sched.New(eng, sched.DefaultConfig()), p: soc.Pixel3()}
}

func smallGraph() *nn.Graph {
	b := nn.NewBuilder("g", 56, 56, 32)
	b.Conv(64, 3, 1).ReLU6().Conv(64, 1, 1).ReLU6()
	return b.Graph()
}

func TestCPUTargetExecutes(t *testing.T) {
	r := newRig()
	cpu := NewCPUTarget("cpu", r.sch, &r.p.Big, 4)
	var res Result
	cpu.Execute(smallGraph().Ops(), tensor.Float32, func(x Result) { res = x })
	r.eng.Run()
	if res.Compute <= 0 {
		t.Fatal("no compute time recorded")
	}
	if res.Total() <= 0 {
		t.Fatal("no total time")
	}
}

func TestCPUFourThreadsBeatOne(t *testing.T) {
	ops := smallGraph().Ops()
	run := func(n int) time.Duration {
		r := newRig()
		cpu := NewCPUTarget("cpu", r.sch, &r.p.Big, n)
		cpu.Execute(ops, tensor.Float32, nil)
		return r.eng.Run().Duration()
	}
	t1, t4 := run(1), run(4)
	sp := float64(t1) / float64(t4)
	if sp < 2.5 || sp > 4 {
		t.Fatalf("4-thread speedup = %.2fx (t1=%v t4=%v), want ~3.2x", sp, t1, t4)
	}
}

func TestCPUInt8FasterThanFP32(t *testing.T) {
	ops := smallGraph().Ops()
	run := func(dt tensor.DType) time.Duration {
		r := newRig()
		cpu := NewCPUTarget("cpu", r.sch, &r.p.Big, 4)
		cpu.Execute(ops, dt, nil)
		return r.eng.Run().Duration()
	}
	if run(tensor.Int8) >= run(tensor.Float32) {
		t.Fatal("int8 must be faster on CPU")
	}
}

func TestCPUSupportsEverything(t *testing.T) {
	r := newRig()
	cpu := NewCPUTarget("cpu", r.sch, &r.p.Big, 1)
	for _, m := range models.All() {
		for _, op := range m.Graph.Ops() {
			if !cpu.Supports(op, tensor.Float32) {
				t.Fatalf("CPU rejected %s", op.Name)
			}
		}
	}
}

func TestGPUTargetExecutes(t *testing.T) {
	r := newRig()
	q := sim.NewResource(r.eng, "gpu", 1)
	gpu := NewGPUTarget("gpu", r.eng, &r.p.GPU, q, GPUDelegateSupports)
	var res Result
	gpu.Execute(smallGraph().Ops(), tensor.Float32, func(x Result) { res = x })
	r.eng.Run()
	if res.Compute <= 0 || res.Overhead <= 0 {
		t.Fatalf("gpu result = %+v", res)
	}
}

func TestGPUQueueContention(t *testing.T) {
	r := newRig()
	q := sim.NewResource(r.eng, "gpu", 1)
	gpu := NewGPUTarget("gpu", r.eng, &r.p.GPU, q, GPUDelegateSupports)
	var second Result
	gpu.Execute(smallGraph().Ops(), tensor.Float32, nil)
	gpu.Execute(smallGraph().Ops(), tensor.Float32, func(x Result) { second = x })
	r.eng.Run()
	if second.Queue <= 0 {
		t.Fatal("second submission must queue behind the first")
	}
}

func TestDSPTargetColdThenWarm(t *testing.T) {
	r := newRig()
	dspRes := sim.NewResource(r.eng, "dsp", 1)
	ch := fastrpc.NewChannel(r.eng, r.p.RPC, dspRes)
	dsp := NewDSPTarget("hexagon", &r.p.DSP, ch, 1.0, HexagonDelegateSupports)
	var cold, warm Result
	dsp.Execute(smallGraph().Ops(), tensor.Int8, func(x Result) {
		cold = x
		dsp.Execute(smallGraph().Ops(), tensor.Int8, func(y Result) { warm = y })
	})
	r.eng.Run()
	if cold.Overhead <= warm.Overhead {
		t.Fatalf("cold overhead %v must exceed warm %v (session setup)", cold.Overhead, warm.Overhead)
	}
	if warm.Compute <= 0 {
		t.Fatal("warm compute missing")
	}
}

func TestDSPEfficiencyScalesCompute(t *testing.T) {
	ops := smallGraph().Ops()
	run := func(eff float64) time.Duration {
		r := newRig()
		dspRes := sim.NewResource(r.eng, "dsp", 1)
		ch := fastrpc.NewChannel(r.eng, r.p.RPC, dspRes)
		dsp := NewDSPTarget("d", &r.p.DSP, ch, eff, HexagonDelegateSupports)
		var res Result
		dsp.Execute(ops, tensor.Int8, func(x Result) { res = x })
		r.eng.Run()
		return res.Compute
	}
	if run(0.5) <= run(1.0) {
		t.Fatal("lower efficiency must mean more compute time")
	}
}

func TestDSPInt8BeatsCPUOnBigModel(t *testing.T) {
	// The §IV-B expectation under a tuned stack: DSP int8 outruns CPU.
	m, _ := models.ByName("MobileNet 1.0 v1")
	r1 := newRig()
	cpu := NewCPUTarget("cpu", r1.sch, &r1.p.Big, 4)
	cpu.Execute(m.Graph.Ops(), tensor.UInt8, nil)
	cpuTime := r1.eng.Run().Duration()

	r2 := newRig()
	dspRes := sim.NewResource(r2.eng, "dsp", 1)
	ch := fastrpc.NewChannel(r2.eng, r2.p.RPC, dspRes)
	dsp := NewDSPTarget("d", &r2.p.DSP, ch, 1.0, SNPESupports)
	dsp.Execute(m.Graph.Ops(), tensor.UInt8, nil)
	dspCold := r2.eng.Run().Duration()

	// Even including the cold start, a full-model DSP run should not be
	// slower than 2x CPU; warm it must win clearly.
	var warm Result
	dsp.Execute(m.Graph.Ops(), tensor.UInt8, func(x Result) { warm = x })
	r2.eng.Run()
	if warm.Total() >= cpuTime {
		t.Fatalf("warm DSP (%v) must beat CPU 4T (%v)", warm.Total(), cpuTime)
	}
	_ = dspCold
}

func TestGPUDelegateSupportMatrix(t *testing.T) {
	conv := &nn.Op{Name: "c", Kind: nn.Conv2D, KH: 3, KW: 3}
	rect := &nn.Op{Name: "r", Kind: nn.Conv2D, KH: 1, KW: 7}
	lrn := &nn.Op{Name: "l", Kind: nn.LocalResponseNorm}
	if !GPUDelegateSupports(conv, tensor.Float32) {
		t.Fatal("gpu must support square conv fp32")
	}
	if GPUDelegateSupports(conv, tensor.UInt8) {
		t.Fatal("gpu delegate is fp32-only")
	}
	if GPUDelegateSupports(rect, tensor.Float32) {
		t.Fatal("gpu must reject rectangular kernels")
	}
	if GPUDelegateSupports(lrn, tensor.Float32) {
		t.Fatal("gpu must reject LRN")
	}
}

func TestHexagonSupportMatrix(t *testing.T) {
	conv := &nn.Op{Name: "c", Kind: nn.Conv2D, KH: 3, KW: 3}
	add := &nn.Op{Name: "a", Kind: nn.Add}
	if HexagonDelegateSupports(conv, tensor.Float32) {
		t.Fatal("hexagon delegate is quantized-only")
	}
	if !HexagonDelegateSupports(conv, tensor.UInt8) {
		t.Fatal("hexagon must support quantized conv")
	}
	if !HexagonDelegateSupports(add, tensor.UInt8) {
		t.Fatal("open hexagon delegate supports quantized add")
	}
}

func TestNNAPIVendorLagsOnQuantizedAdd(t *testing.T) {
	add := &nn.Op{Name: "a", Kind: nn.Add}
	avg := &nn.Op{Name: "p", Kind: nn.AvgPool, KH: 3, KW: 3}
	if NNAPIVendorSupports(add, tensor.UInt8) {
		t.Fatal("vendor NNAPI int8 ADD must be unsupported (Fig. 5 mechanism)")
	}
	if !NNAPIVendorSupports(avg, tensor.UInt8) {
		t.Fatal("vendor NNAPI int8 AvgPool is supported")
	}
	if !NNAPIVendorSupports(add, tensor.Float32) {
		t.Fatal("fp32 ADD is supported (no fp32 cliff in Fig. 5)")
	}
}

func TestInceptionHalfOffloadsUnderNNAPI(t *testing.T) {
	// §IV-A: Inception v3 "only partially able to be offloaded by NNAPI
	// and runs around half of its inference on the CPU".
	m, _ := models.ByName("Inception v3")
	frac := SupportedFraction(m.Graph, tensor.Float32, NNAPIVendorSupports)
	if frac < 0.3 || frac > 0.75 {
		t.Fatalf("Inception v3 NNAPI-supported fraction = %.2f, want ~half", frac)
	}
	mob, _ := models.ByName("MobileNet 1.0 v1")
	if f := SupportedFraction(mob.Graph, tensor.UInt8, NNAPIVendorSupports); f < 0.95 {
		t.Fatalf("MobileNet int8 must offload nearly fully, got %.2f", f)
	}
}

func TestEfficientNetShattersUnderNNAPIInt8(t *testing.T) {
	m, _ := models.ByName("EfficientNet-Lite0")
	frac := SupportedFraction(m.Graph, tensor.UInt8, NNAPIVendorSupports)
	full := SupportedFraction(m.Graph, tensor.UInt8, HexagonDelegateSupports)
	if frac >= full {
		t.Fatal("vendor NNAPI int8 must cover less of EfficientNet than the Hexagon delegate")
	}
}

func TestSNPESupportsLRN(t *testing.T) {
	lrn := &nn.Op{Name: "l", Kind: nn.LocalResponseNorm}
	if !SNPESupports(lrn, tensor.Float32) {
		t.Fatal("SNPE covers the classic CNN op set")
	}
}

func TestParallelEfficiency(t *testing.T) {
	if parallelEfficiency(1) != 1 {
		t.Fatal("1 thread must be fully efficient")
	}
	if e := parallelEfficiency(4); e < 0.75 || e > 0.85 {
		t.Fatalf("4-thread efficiency = %v", e)
	}
}

func TestResultAddTotal(t *testing.T) {
	a := Result{Compute: 1, Overhead: 2, Queue: 3}
	b := a.Add(Result{Compute: 10, Overhead: 20, Queue: 30})
	if b.Compute != 11 || b.Overhead != 22 || b.Queue != 33 || b.Total() != 66 {
		t.Fatalf("add = %+v", b)
	}
}

func TestSegmentIOBytes(t *testing.T) {
	g := smallGraph()
	n := segmentIOBytes(g.Ops(), tensor.Float32)
	if n <= 0 {
		t.Fatal("io bytes must be positive")
	}
	if q := segmentIOBytes(g.Ops(), tensor.UInt8); q >= n {
		t.Fatal("quantized payload must be smaller")
	}
	if segmentIOBytes(nil, tensor.Float32) != 0 {
		t.Fatal("empty segment payload must be 0")
	}
}

func TestDSPInitGraphHoldsDSP(t *testing.T) {
	r := newRig()
	dspRes := sim.NewResource(r.eng, "dsp", 1)
	ch := fastrpc.NewChannel(r.eng, r.p.RPC, dspRes)
	dsp := NewDSPTarget("d", &r.p.DSP, ch, 0.6, NNAPIVendorSupports)
	m, _ := models.ByName("EfficientNet-Lite0")
	var res Result
	dsp.InitGraph(m.Graph.Ops(), tensor.UInt8, func(x Result) { res = x })
	r.eng.Run()
	if res.Compute <= 0 {
		t.Fatal("graph init must hold the DSP for a visible interval")
	}
	if dspRes.BusyTime() != res.Compute {
		t.Fatalf("DSP busy %v != init hold %v", dspRes.BusyTime(), res.Compute)
	}
}

func TestEnergyScalesWithWork(t *testing.T) {
	r := newRig()
	cpu := NewCPUTarget("cpu", r.sch, &r.p.Big, 4)
	small := smallGraph().Ops()[:1]
	var eSmall, eAll Result
	cpu.Execute(small, tensor.Float32, func(x Result) { eSmall = x })
	r.eng.Run()
	r2 := newRig()
	cpu2 := NewCPUTarget("cpu", r2.sch, &r2.p.Big, 4)
	cpu2.Execute(smallGraph().Ops(), tensor.Float32, func(x Result) { eAll = x })
	r2.eng.Run()
	if eAll.EnergyJ <= eSmall.EnergyJ || eSmall.EnergyJ <= 0 {
		t.Fatalf("energy must scale with ops: %v vs %v", eSmall.EnergyJ, eAll.EnergyJ)
	}
}

func TestTargetAccessors(t *testing.T) {
	r := newRig()
	cpu := NewCPUTarget("cpu", r.sch, &r.p.Big, 2)
	if cpu.Name() != "cpu" || cpu.Kind() != soc.CPUBig || cpu.Threads() != 2 {
		t.Fatal("cpu accessors wrong")
	}
	ref := NewReferenceCPUTarget("ref", r.sch, &r.p.Big)
	if ref.Threads() != 1 || ref.Efficiency >= 1 {
		t.Fatal("reference target must be one slow thread")
	}
	q := sim.NewResource(r.eng, "gpu", 1)
	gpu := NewGPUTarget("gpu", r.eng, &r.p.GPU, q, GPUDelegateSupports)
	if gpu.Name() != "gpu" || gpu.Kind() != soc.GPU {
		t.Fatal("gpu accessors wrong")
	}
	conv := &nn.Op{Name: "c", Kind: nn.Conv2D, KH: 3, KW: 3}
	if !gpu.Supports(conv, tensor.Float32) {
		t.Fatal("gpu supports passthrough wrong")
	}
	ch := fastrpc.NewChannel(r.eng, r.p.RPC, sim.NewResource(r.eng, "dsp", 1))
	dsp := NewDSPTarget("dsp", &r.p.DSP, ch, 0.9, HexagonDelegateSupports)
	if dsp.Name() != "dsp" || dsp.Kind() != soc.DSP || dsp.Channel() != ch {
		t.Fatal("dsp accessors wrong")
	}
	if !dsp.Supports(conv, tensor.UInt8) {
		t.Fatal("dsp supports passthrough wrong")
	}
}

func TestNewDSPTargetRejectsZeroEfficiency(t *testing.T) {
	r := newRig()
	ch := fastrpc.NewChannel(r.eng, r.p.RPC, sim.NewResource(r.eng, "dsp", 1))
	defer func() {
		if recover() == nil {
			t.Fatal("zero efficiency must panic")
		}
	}()
	NewDSPTarget("d", &r.p.DSP, ch, 0, HexagonDelegateSupports)
}
