// Package driver implements the hardware delegates that execute model
// graph segments on simulated devices: the multi-threaded CPU path, the
// GPU delegate, and the Hexagon (DSP) delegate behind FastRPC. A target
// advertises per-op support — the information NNAPI's partitioner works
// from — and executes contiguous op segments asynchronously on the
// simulation engine.
//
// The support matrices encode the driver-quality findings of §IV-B: open
// delegates and vendor NNAPI drivers support different op subsets at
// different precisions, and what a driver does not support falls back to
// the CPU.
package driver

import (
	"time"

	"aitax/internal/fastrpc"
	"aitax/internal/nn"
	"aitax/internal/plan"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
)

// Result describes how a segment execution spent its time.
type Result struct {
	// Compute is pure device execution time.
	Compute time.Duration
	// Overhead is dispatch/transport cost (interpreter loop, kernel
	// launches, RPC crossings, session setup).
	Overhead time.Duration
	// Queue is time spent waiting behind other clients of the device.
	Queue time.Duration
	// EnergyJ is the estimated active energy spent, in joules — the
	// quantity NNAPI's LOW_POWER preference optimizes.
	EnergyJ float64
	// Retry is virtual time burned in failed transport attempts and
	// backoff waits (injected faults). Zero on fault-free runs.
	Retry time.Duration
	// Faults counts injected faults absorbed while executing.
	Faults int
	// Err is set when the segment ultimately failed (retries exhausted
	// or the accelerator is down); the framework above decides whether
	// to fall back to another target.
	Err error
}

// Total returns the segment wall time, retries included.
func (r Result) Total() time.Duration { return r.Compute + r.Overhead + r.Queue + r.Retry }

// Add accumulates another result. The first error wins: once a segment
// fails, later segments of the same report don't overwrite the cause.
func (r Result) Add(o Result) Result {
	err := r.Err
	if err == nil {
		err = o.Err
	}
	return Result{
		Compute:  r.Compute + o.Compute,
		Overhead: r.Overhead + o.Overhead,
		Queue:    r.Queue + o.Queue,
		EnergyJ:  r.EnergyJ + o.EnergyJ,
		Retry:    r.Retry + o.Retry,
		Faults:   r.Faults + o.Faults,
		Err:      err,
	}
}

// Target is a delegate capable of running graph segments.
type Target interface {
	// Name identifies the target ("cpu", "gpu-delegate", "hexagon", ...).
	Name() string
	// Kind reports the underlying device class.
	Kind() soc.Kind
	// Supports reports whether the op can run here at precision dt.
	Supports(op *nn.Op, dt tensor.DType) bool
	// Execute runs a contiguous op segment and calls done when finished.
	Execute(ops []*nn.Op, dt tensor.DType, done func(Result))
}

// SpanExecutor is implemented by targets that can attribute their
// execution to a telemetry span tree. ExecuteSpan behaves exactly like
// Execute (a nil parent is always valid) but parents any spans the
// target emits under parent.
type SpanExecutor interface {
	ExecuteSpan(ops []*nn.Op, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result))
}

// ExecuteSpan dispatches through a target's SpanExecutor when it has
// one, falling back to plain Execute otherwise.
func ExecuteSpan(t Target, ops []*nn.Op, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result)) {
	if se, ok := t.(SpanExecutor); ok {
		se.ExecuteSpan(ops, dt, parent, done)
		return
	}
	t.Execute(ops, dt, done)
}

// Coster is implemented by targets that can cost an op segment ahead of
// execution. The returned schedule (one device time per op, in segment
// order) feeds ExecuteCosted and must reproduce exactly the per-op
// times the target's execute loop would compute itself.
type Coster interface {
	OpCosts(ops []*nn.Op, dt tensor.DType) []time.Duration
}

// CostedExecutor is implemented by targets that can execute a segment
// against a precomputed cost schedule from Coster. Results are
// identical to ExecuteSpan; only the per-frame recomputation of device
// times disappears.
type CostedExecutor interface {
	ExecuteCosted(ops []*nn.Op, costs []time.Duration, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result))
}

// ExecuteCosted dispatches through a target's CostedExecutor when a
// matching schedule is supplied, falling back to ExecuteSpan (which
// recomputes costs per op) otherwise.
func ExecuteCosted(t Target, ops []*nn.Op, costs []time.Duration, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result)) {
	if len(costs) == len(ops) && len(ops) > 0 {
		if ce, ok := t.(CostedExecutor); ok {
			ce.ExecuteCosted(ops, costs, dt, parent, done)
			return
		}
	}
	ExecuteSpan(t, ops, dt, parent, done)
}

// segmentTime sums the device time of a segment at 1/efficiency, using
// the precomputed schedule when one is supplied.
func segmentTime(ops []*nn.Op, costs []time.Duration, dt tensor.DType, dev *soc.Device, efficiency float64) time.Duration {
	var total time.Duration
	if costs != nil {
		for _, c := range costs {
			total += c
		}
	} else {
		for _, op := range ops {
			total += dev.TimeFor(op.Work(dt), dt)
		}
	}
	if efficiency > 0 && efficiency != 1 {
		total = time.Duration(float64(total) / efficiency)
	}
	return total
}

// segmentIOBytes estimates the activation payload crossing a delegate
// boundary: the first op's inputs plus the last op's outputs.
func segmentIOBytes(ops []*nn.Op, dt tensor.DType) int64 {
	if len(ops) == 0 {
		return 0
	}
	sz := int64(dt.Size())
	return ops[0].InElems()*sz + ops[len(ops)-1].OutElems()*sz
}

// --- CPU target ---

// CPUTarget executes segments on the scheduler with a fixed thread count,
// the way TFLite's default CPU path does. Threads are pinned to the big
// cluster (TFLite's default affinity on big.LITTLE parts).
type CPUTarget struct {
	name    string
	sch     *sched.Scheduler
	dev     *soc.Device
	threads []*sched.Thread
	// PerOpOverhead is the interpreter's per-op dispatch cost.
	PerOpOverhead time.Duration
	// Efficiency derates the device's effective rate (driver quality).
	Efficiency float64
	// Tracer, when set, wraps each segment in a span. Nil disables.
	Tracer *telemetry.Tracer
}

// NewCPUTarget creates a CPU delegate with nThreads worker threads.
func NewCPUTarget(name string, sch *sched.Scheduler, dev *soc.Device, nThreads int) *CPUTarget {
	if nThreads <= 0 {
		panic("driver: need at least one CPU thread")
	}
	t := &CPUTarget{
		name:          name,
		sch:           sch,
		dev:           dev,
		PerOpOverhead: 3 * time.Microsecond,
		Efficiency:    1,
	}
	for i := 0; i < nThreads; i++ {
		t.threads = append(t.threads, sch.Spawn(name+"-worker", sched.BigOnly))
	}
	return t
}

// NewReferenceCPUTarget builds NNAPI's reference CPU implementation: a
// single unpinned, migratory thread running unoptimized kernels. This is
// the path NNAPI lands on when a driver rejects a quantized graph — the
// Fig. 6 profile of one thread bouncing across cores.
func NewReferenceCPUTarget(name string, sch *sched.Scheduler, dev *soc.Device) *CPUTarget {
	return &CPUTarget{
		name:          name,
		sch:           sch,
		dev:           dev,
		threads:       []*sched.Thread{sch.SpawnMigratory(name+"-ref", nil)},
		PerOpOverhead: 15 * time.Microsecond,
		Efficiency:    0.25,
	}
}

// Name implements Target.
func (t *CPUTarget) Name() string { return t.name }

// Kind implements Target.
func (t *CPUTarget) Kind() soc.Kind { return soc.CPUBig }

// Threads returns the worker thread count.
func (t *CPUTarget) Threads() int { return len(t.threads) }

// Supports implements Target: the CPU reference path runs everything.
func (t *CPUTarget) Supports(op *nn.Op, dt tensor.DType) bool { return true }

// parallelEfficiency models the diminishing returns of intra-op
// threading (TFLite's observed ~3.2x at 4 threads).
func parallelEfficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 - 0.067*float64(n-1)
}

// Execute implements Target: ops run in graph order; each op's work is
// split across the worker threads, so background CPU load stretches the
// segment via scheduler contention (the Fig. 10 effect).
func (t *CPUTarget) Execute(ops []*nn.Op, dt tensor.DType, done func(Result)) {
	t.ExecuteSpan(ops, dt, nil, done)
}

// OpCosts implements Coster.
func (t *CPUTarget) OpCosts(ops []*nn.Op, dt tensor.DType) []time.Duration {
	return plan.OpCosts(ops, dt, t.dev)
}

// ExecuteSpan implements SpanExecutor: the whole segment becomes one
// "cpu-exec" span on the CPU track.
func (t *CPUTarget) ExecuteSpan(ops []*nn.Op, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result)) {
	t.ExecuteCosted(ops, nil, dt, parent, done)
}

// cpuSegRun is the in-flight state of one CPU segment execution. The
// per-op fan-out reuses two closures built once per segment (the
// thread-completion callback and nothing else), so a segment costs O(1)
// allocations instead of one closure per thread per op.
type cpuSegRun struct {
	t     *CPUTarget
	ops   []*nn.Op
	costs []time.Duration
	dt    tensor.DType
	sp    *telemetry.ActiveSpan
	done  func(Result)
	res   Result
	eff   float64

	i          int // current op index
	remaining  int // threads still running the current op
	threadDone func()
}

func (r *cpuSegRun) onThreadDone() {
	r.remaining--
	if r.remaining == 0 {
		r.i++
		r.runOp()
	}
}

func (r *cpuSegRun) runOp() {
	t := r.t
	if r.i >= len(r.ops) {
		r.sp.End()
		if r.done != nil {
			r.done(r.res)
		}
		return
	}
	var opTime time.Duration
	if r.costs != nil {
		opTime = r.costs[r.i]
	} else {
		opTime = t.dev.TimeFor(r.ops[r.i].Work(r.dt), r.dt)
	}
	n := len(t.threads)
	perThread := time.Duration(float64(opTime)/(float64(n)*r.eff)) + t.PerOpOverhead
	r.res.Compute += time.Duration(float64(opTime) / (float64(n) * r.eff))
	r.res.Overhead += t.PerOpOverhead
	r.res.EnergyJ += t.dev.ActivePowerW * float64(n) * perThread.Seconds()
	r.remaining = n
	for _, th := range t.threads {
		th.Exec(perThread, r.threadDone)
	}
}

// ExecuteCosted implements CostedExecutor: identical to ExecuteSpan with
// each op's device time read from the schedule instead of recomputed.
func (t *CPUTarget) ExecuteCosted(ops []*nn.Op, costs []time.Duration, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result)) {
	sp := t.Tracer.Start("cpu-exec", "driver", telemetry.TrackCPU, parent)
	sp.SetAttr("target", t.name)
	r := &cpuSegRun{
		t: t, ops: ops, costs: costs, dt: dt, sp: sp, done: done,
		eff: parallelEfficiency(len(t.threads)) * t.Efficiency,
	}
	r.threadDone = r.onThreadDone
	r.runOp()
}

// --- GPU target ---

// GPUTarget executes segments on the GPU behind a serialized command
// queue, with a per-segment dispatch and per-op kernel-launch overhead.
type GPUTarget struct {
	name  string
	eng   *sim.Engine
	dev   *soc.Device
	queue *sim.Resource
	// DispatchOverhead is paid once per segment (buffer map/unmap).
	DispatchOverhead time.Duration
	// KernelLaunch is paid per op.
	KernelLaunch time.Duration
	// Efficiency derates the device rate (shader-compiler quality).
	Efficiency float64
	// Tracer, when set, records dispatch and GPU execution spans. Nil
	// disables.
	Tracer   *telemetry.Tracer
	supports func(op *nn.Op, dt tensor.DType) bool
}

// NewGPUTarget creates a GPU delegate over a shared GPU queue resource.
func NewGPUTarget(name string, eng *sim.Engine, dev *soc.Device, queue *sim.Resource, supports func(*nn.Op, tensor.DType) bool) *GPUTarget {
	return &GPUTarget{
		name: name, eng: eng, dev: dev, queue: queue,
		DispatchOverhead: 180 * time.Microsecond,
		KernelLaunch:     9 * time.Microsecond,
		Efficiency:       1,
		supports:         supports,
	}
}

// AllowFP16 switches the delegate to half-precision arithmetic (the
// TFLite GPU delegate's default "precision loss allowed" mode): ~1.7x
// the fp32 rate on packed-math mobile GPUs, at reduced numeric
// precision. The paper's setups run full precision; this is the knob a
// deployment would actually flip.
func (t *GPUTarget) AllowFP16() {
	t.Efficiency *= 1.7
	t.name += "-fp16"
}

// Name implements Target.
func (t *GPUTarget) Name() string { return t.name }

// Kind implements Target.
func (t *GPUTarget) Kind() soc.Kind { return soc.GPU }

// Supports implements Target.
func (t *GPUTarget) Supports(op *nn.Op, dt tensor.DType) bool { return t.supports(op, dt) }

// Execute implements Target.
func (t *GPUTarget) Execute(ops []*nn.Op, dt tensor.DType, done func(Result)) {
	t.ExecuteSpan(ops, dt, nil, done)
}

// OpCosts implements Coster.
func (t *GPUTarget) OpCosts(ops []*nn.Op, dt tensor.DType) []time.Duration {
	return plan.OpCosts(ops, dt, t.dev)
}

// ExecuteSpan implements SpanExecutor: the buffer map/unmap becomes a
// "gpu-dispatch" span on the CPU track linked to a "gpu-exec" span on
// the GPU track.
func (t *GPUTarget) ExecuteSpan(ops []*nn.Op, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result)) {
	t.ExecuteCosted(ops, nil, dt, parent, done)
}

// ExecuteCosted implements CostedExecutor.
func (t *GPUTarget) ExecuteCosted(ops []*nn.Op, costs []time.Duration, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result)) {
	compute := segmentTime(ops, costs, dt, t.dev, t.Efficiency)
	launches := time.Duration(len(ops)) * t.KernelLaunch
	hold := compute + launches
	t0 := t.eng.Now()
	t.eng.After(t.DispatchOverhead, func() {
		enqueued := t.eng.Now()
		disp := t.Tracer.Emit("gpu-dispatch", "driver", telemetry.TrackCPU, parent, t0, enqueued)
		t.queue.Acquire(hold, func(start, end sim.Time) {
			exec := t.Tracer.Emit("gpu-exec", "driver", telemetry.TrackGPU, parent, start, end)
			t.Tracer.Link("gpu", disp, exec)
			if done != nil {
				done(Result{
					Compute:  compute,
					Overhead: t.DispatchOverhead + launches,
					Queue:    start.Sub(enqueued),
					EnergyJ:  t.dev.ActivePowerW * hold.Seconds(),
				})
			}
		})
	})
}

// --- DSP (Hexagon) target ---

// DSPTarget executes segments on the Hexagon DSP through a FastRPC
// channel: one RPC invocation per segment, with the segment's boundary
// activations as the payload. The first invocation pays the session
// setup (cold start); concurrent clients of the same DSP queue.
type DSPTarget struct {
	name    string
	dev     *soc.Device
	channel *fastrpc.Channel
	// Efficiency derates the device rate: vendor-tuned stacks (SNPE)
	// sit near 1.0, generic NNAPI drivers lower (§IV-B).
	Efficiency float64
	supports   func(op *nn.Op, dt tensor.DType) bool
}

// NewDSPTarget creates a DSP delegate over a FastRPC channel.
func NewDSPTarget(name string, dev *soc.Device, ch *fastrpc.Channel, efficiency float64, supports func(*nn.Op, tensor.DType) bool) *DSPTarget {
	if efficiency <= 0 {
		panic("driver: DSP efficiency must be positive")
	}
	return &DSPTarget{name: name, dev: dev, channel: ch, Efficiency: efficiency, supports: supports}
}

// Name implements Target.
func (t *DSPTarget) Name() string { return t.name }

// Kind implements Target.
func (t *DSPTarget) Kind() soc.Kind { return soc.DSP }

// Supports implements Target.
func (t *DSPTarget) Supports(op *nn.Op, dt tensor.DType) bool { return t.supports(op, dt) }

// Channel exposes the underlying FastRPC channel (for cold-start state).
func (t *DSPTarget) Channel() *fastrpc.Channel { return t.channel }

// InitGraph models driver-side graph bring-up on the DSP: weight
// download over the fabric plus per-op kernel configuration, all of
// which holds the DSP. NNAPI performs this once during compilation (and
// it is the brief CDSP spike the paper's Fig. 6 shows even for plans the
// driver ultimately rejects).
func (t *DSPTarget) InitGraph(ops []*nn.Op, dt tensor.DType, done func(Result)) {
	var weights int64
	for _, op := range ops {
		weights += op.WeightBytes(dt)
	}
	hold := time.Duration(float64(weights)/t.dev.MemBytesPerSec*float64(time.Second)) +
		time.Duration(len(ops))*120*time.Microsecond
	t.channel.InvokeSpan(weights, hold, nil, "graph-init", func(b fastrpc.Breakdown) {
		if done != nil {
			done(Result{Compute: b.Exec, Overhead: b.Setup + b.Transport, Queue: b.Queue,
				Retry: b.Retry, Faults: b.Faults, Err: b.Err})
		}
	})
}

// GraphIniter is implemented by targets with a distinct driver-side
// graph bring-up step.
type GraphIniter interface {
	InitGraph(ops []*nn.Op, dt tensor.DType, done func(Result))
}

// Execute implements Target.
func (t *DSPTarget) Execute(ops []*nn.Op, dt tensor.DType, done func(Result)) {
	t.ExecuteSpan(ops, dt, nil, done)
}

// OpCosts implements Coster.
func (t *DSPTarget) OpCosts(ops []*nn.Op, dt tensor.DType) []time.Duration {
	return plan.OpCosts(ops, dt, t.dev)
}

// ExecuteSpan implements SpanExecutor: the FastRPC channel records the
// rpc-down / infer / rpc-up sub-spans and their CPU↔DSP flow links.
func (t *DSPTarget) ExecuteSpan(ops []*nn.Op, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result)) {
	t.ExecuteCosted(ops, nil, dt, parent, done)
}

// ExecuteCosted implements CostedExecutor.
func (t *DSPTarget) ExecuteCosted(ops []*nn.Op, costs []time.Duration, dt tensor.DType, parent *telemetry.ActiveSpan, done func(Result)) {
	compute := segmentTime(ops, costs, dt, t.dev, t.Efficiency)
	payload := segmentIOBytes(ops, dt)
	t.channel.InvokeSpan(payload, compute, parent, "infer", func(b fastrpc.Breakdown) {
		if done != nil {
			done(Result{
				Compute:  b.Exec,
				Overhead: b.Setup + b.Transport,
				Queue:    b.Queue,
				EnergyJ:  t.dev.ActivePowerW * b.Exec.Seconds(),
				Retry:    b.Retry,
				Faults:   b.Faults,
				Err:      b.Err,
			})
		}
	})
}
