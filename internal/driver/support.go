package driver

import (
	"aitax/internal/nn"
	"aitax/internal/tensor"
)

// Support matrices. These encode the §IV-B driver-quality landscape:
// which ops each delegate/vendor driver can actually run, per precision.
// What a matrix rejects is exactly what NNAPI's partitioner sends back to
// the CPU — the mechanism behind the Fig. 5 cliff and Inception's
// half-on-CPU execution.

func isQuant(dt tensor.DType) bool { return dt == tensor.Int8 || dt == tensor.UInt8 }

// GPUDelegateSupports is the open-source TFLite GPU delegate: fp32 only,
// standard CNN ops, square kernels (rectangular 1×7/7×1 convolutions are
// not covered by its shader set).
func GPUDelegateSupports(op *nn.Op, dt tensor.DType) bool {
	if isQuant(dt) {
		return false
	}
	switch op.Kind {
	case nn.Conv2D, nn.DepthwiseConv2D:
		return op.KH == op.KW
	case nn.FullyConnected, nn.AvgPool, nn.MaxPool,
		nn.ReLU, nn.ReLU6, nn.Sigmoid, nn.Softmax,
		nn.Add, nn.Mul, nn.Concat, nn.Reshape, nn.ResizeBilinearOp:
		return true
	default:
		// No LRN, no transformer ops.
		return false
	}
}

// HexagonDelegateSupports is the open-source TFLite Hexagon delegate:
// quantized models only, core CNN ops including quantized Add.
func HexagonDelegateSupports(op *nn.Op, dt tensor.DType) bool {
	if !isQuant(dt) {
		return false
	}
	switch op.Kind {
	case nn.Conv2D, nn.DepthwiseConv2D:
		return op.KH == op.KW
	case nn.FullyConnected, nn.AvgPool, nn.MaxPool,
		nn.ReLU, nn.ReLU6, nn.Softmax, nn.Add, nn.Concat, nn.Reshape:
		return true
	default:
		return false
	}
}

// NNAPIVendorSupports is the vendor-implemented NNAPI driver of the
// studied Snapdragons. The fp32 path (GPU-backed) mirrors the GPU
// delegate's coverage. The int8 path (DSP-backed) lags the open Hexagon
// delegate on one operator: the quantized ADD variant that newer model
// implementations (EfficientNet-Lite's MBConv residuals, MobileNet v2
// backbones) use. Graphs containing it shatter into many partitions,
// and NNAPI abandons the plan for its single-threaded reference CPU
// path — the paper's Fig. 5/Fig. 6 pathology.
func NNAPIVendorSupports(op *nn.Op, dt tensor.DType) bool {
	if !isQuant(dt) {
		return GPUDelegateSupports(op, dt)
	}
	switch op.Kind {
	case nn.Conv2D, nn.DepthwiseConv2D:
		return true // DSP handles rectangular kernels too
	case nn.FullyConnected, nn.MaxPool, nn.AvgPool, nn.ReLU, nn.ReLU6,
		nn.Softmax, nn.Reshape, nn.Concat:
		return true
	case nn.Add:
		// Missing INT8 operator variant (lagging driver support, §IV-B).
		return false
	default:
		return false
	}
}

// SNPESupports is the vendor-tuned Qualcomm stack: optimized support for
// the full CNN op set at both precisions on the DSP (§IV-B: "the SoC
// vendor-specific software is highly tuned ... provides optimized
// support for the neural network operators").
func SNPESupports(op *nn.Op, dt tensor.DType) bool {
	switch op.Kind {
	case nn.Conv2D, nn.DepthwiseConv2D, nn.FullyConnected,
		nn.AvgPool, nn.MaxPool, nn.ReLU, nn.ReLU6, nn.Sigmoid, nn.Softmax,
		nn.Add, nn.Mul, nn.Concat, nn.Reshape, nn.ResizeBilinearOp,
		nn.LocalResponseNorm:
		return true
	default:
		// Transformer ops still run on CPU even under SNPE.
		return false
	}
}

// SupportedFraction reports the fraction of a graph's MACs that a
// support matrix covers — a quick measure of how much of a model can
// offload (Inception v3 sits near one half under NNAPI).
func SupportedFraction(g *nn.Graph, dt tensor.DType, supports func(*nn.Op, tensor.DType) bool) float64 {
	var total, ok int64
	for _, op := range g.Ops() {
		f := op.FLOPs()
		total += f
		if supports(op, dt) {
			ok += f
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}
