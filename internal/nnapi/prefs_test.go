package nnapi

import (
	"testing"

	"aitax/internal/models"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

func TestLowPowerRoutesFP32ToDSP(t *testing.T) {
	r := newRig()
	m, _ := models.ByName("MobileNet 1.0 v1")
	fast := r.fw.Compile(m.Graph, tensor.Float32, FastSingleAnswer)
	low := r.fw.Compile(m.Graph, tensor.Float32, LowPower)
	if fast.Partitions[0].Target.Kind() != soc.GPU {
		t.Fatalf("FAST fp32 device = %v, want GPU", fast.Partitions[0].Target.Kind())
	}
	if low.Partitions[0].Target.Kind() != soc.DSP {
		t.Fatalf("LOW_POWER fp32 device = %v, want DSP", low.Partitions[0].Target.Kind())
	}
}

func TestSustainedMatchesFastAssignment(t *testing.T) {
	r := newRig()
	m, _ := models.ByName("MobileNet 1.0 v1")
	fast := r.fw.Compile(m.Graph, tensor.Float32, FastSingleAnswer)
	sus := r.fw.Compile(m.Graph, tensor.Float32, SustainedSpeed)
	if fast.Partitions[0].Target != sus.Partitions[0].Target {
		t.Fatal("SUSTAINED_SPEED must share FAST's device assignment")
	}
}

func TestQuantizedIgnoresPreferenceForDevice(t *testing.T) {
	r := newRig()
	m, _ := models.ByName("MobileNet 1.0 v1")
	for _, pref := range []Preference{FastSingleAnswer, SustainedSpeed, LowPower} {
		cm := r.fw.Compile(m.Graph, tensor.UInt8, pref)
		if cm.Partitions[0].Target.Kind() != soc.DSP {
			t.Fatalf("int8 under %v landed on %v, want DSP", pref, cm.Partitions[0].Target.Kind())
		}
	}
}

func TestLowPowerDrawsLessPower(t *testing.T) {
	m, _ := models.ByName("MobileNet 1.0 v1")
	watts := func(pref Preference) float64 {
		r := newRig()
		cm := r.fw.Compile(m.Graph, tensor.Float32, pref)
		var warm Report
		r.fw.Execute(cm, func(Report) {
			r.fw.Execute(cm, func(rep Report) { warm = rep })
		})
		r.eng.Run()
		return warm.EnergyJ / warm.Total().Seconds()
	}
	fast, low := watts(FastSingleAnswer), watts(LowPower)
	if low >= fast {
		t.Fatalf("LOW_POWER draw %.2fW must be below FAST %.2fW", low, fast)
	}
}

func TestReportAccumulatesEnergy(t *testing.T) {
	r := newRig()
	m, _ := models.ByName("Inception v3")
	cm := r.fw.Compile(m.Graph, tensor.Float32, FastSingleAnswer)
	var rep Report
	r.fw.Execute(cm, func(x Report) { rep = x })
	r.eng.Run()
	if rep.EnergyJ <= 0 {
		t.Fatal("partitioned execution must account energy")
	}
}
