package nnapi

import (
	"testing"
	"time"

	"aitax/internal/driver"
	"aitax/internal/fastrpc"
	"aitax/internal/models"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

type rig struct {
	eng *sim.Engine
	sch *sched.Scheduler
	p   *soc.SoC
	fw  *Framework
	cpu *driver.CPUTarget // plain TFLite CPU path for comparisons
}

func newRig() *rig {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := soc.Pixel3()
	dspRes := sim.NewResource(eng, "dsp", 1)
	gpuQ := sim.NewResource(eng, "gpu", 1)
	ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
	fw := New(Config{
		Engine:       eng,
		AccelFP32:    driver.NewGPUTarget("nnapi-gpu", eng, &p.GPU, gpuQ, driver.NNAPIVendorSupports),
		AccelInt8:    driver.NewDSPTarget("nnapi-dsp", &p.DSP, ch, 0.6, driver.NNAPIVendorSupports),
		FallbackCPU:  driver.NewCPUTarget("nnapi-cpu-fallback", sch, &p.Big, 4),
		ReferenceCPU: driver.NewReferenceCPUTarget("nnapi-ref", sch, &p.Big),
	})
	return &rig{
		eng: eng, sch: sch, p: p, fw: fw,
		cpu: driver.NewCPUTarget("tflite-cpu", sch, &p.Big, 1),
	}
}

func TestCompileMobileNetInt8FullyOffloads(t *testing.T) {
	r := newRig()
	m, _ := models.ByName("MobileNet 1.0 v1")
	cm := r.fw.Compile(m.Graph, tensor.UInt8, FastSingleAnswer)
	if cm.ReferenceFallback {
		t.Fatal("MobileNet int8 must not fall back")
	}
	if f := cm.OffloadedFraction(); f < 0.95 {
		t.Fatalf("offloaded fraction = %.2f, want ~1", f)
	}
	if len(cm.Partitions) > 2 {
		t.Fatalf("partitions = %d, want <=2", len(cm.Partitions))
	}
}

func TestCompileEfficientNetInt8Shatters(t *testing.T) {
	// Fig. 5's mechanism: EfficientNet-Lite0's quantized residual ADDs
	// are unsupported, the plan shatters, NNAPI retreats to the
	// reference CPU path.
	r := newRig()
	m, _ := models.ByName("EfficientNet-Lite0")
	cm := r.fw.Compile(m.Graph, tensor.UInt8, FastSingleAnswer)
	if !cm.ReferenceFallback {
		t.Fatal("EfficientNet int8 must trigger the reference fallback")
	}
	if len(cm.Partitions) != 1 || cm.Partitions[0].Target.Name() != "nnapi-ref" {
		t.Fatal("fallback plan must be one reference-CPU partition")
	}
}

func TestCompileEfficientNetFP32IsFine(t *testing.T) {
	r := newRig()
	m, _ := models.ByName("EfficientNet-Lite0")
	cm := r.fw.Compile(m.Graph, tensor.Float32, FastSingleAnswer)
	if cm.ReferenceFallback {
		t.Fatal("fp32 plan must not fall back (no cliff in Fig. 5 fp32)")
	}
	if f := cm.OffloadedFraction(); f < 0.9 {
		t.Fatalf("fp32 offload fraction = %.2f", f)
	}
}

func TestCompileInceptionV3HalfOnCPU(t *testing.T) {
	// §IV-A: Inception v3 is "only partially able to be offloaded by
	// NNAPI and runs around half of its inference on the CPU".
	r := newRig()
	m, _ := models.ByName("Inception v3")
	cm := r.fw.Compile(m.Graph, tensor.Float32, FastSingleAnswer)
	f := cm.OffloadedFraction()
	if f < 0.25 || f > 0.75 {
		t.Fatalf("Inception v3 offloaded fraction = %.2f, want ~0.5", f)
	}
	if len(cm.Partitions) < 3 {
		t.Fatal("Inception v3 must split into multiple partitions")
	}
}

func TestCompileTimeScalesWithOps(t *testing.T) {
	r := newRig()
	small, _ := models.ByName("MobileNet 1.0 v1")
	big, _ := models.ByName("Inception v4")
	cs := r.fw.Compile(small.Graph, tensor.Float32, FastSingleAnswer)
	cb := r.fw.Compile(big.Graph, tensor.Float32, FastSingleAnswer)
	if cb.CompileTime <= cs.CompileTime {
		t.Fatal("bigger graphs must take longer to compile")
	}
}

func TestExecutePartitionedPlan(t *testing.T) {
	r := newRig()
	m, _ := models.ByName("Inception v3")
	cm := r.fw.Compile(m.Graph, tensor.Float32, FastSingleAnswer)
	var rep Report
	r.fw.Execute(cm, func(x Report) { rep = x })
	r.eng.Run()
	if rep.Transitions != len(cm.Partitions)-1 {
		t.Fatalf("transitions = %d, want %d", rep.Transitions, len(cm.Partitions)-1)
	}
	if rep.PerTarget["nnapi-gpu"] <= 0 || rep.PerTarget["nnapi-cpu-fallback"] <= 0 {
		t.Fatalf("per-target times = %v, want both targets used", rep.PerTarget)
	}
	if rep.Total() <= 0 {
		t.Fatal("no total time")
	}
}

func TestFigure5Shape(t *testing.T) {
	// The headline Fig. 5 result: quantized EfficientNet-Lite0 through
	// NNAPI is ~7x slower than a single CPU thread.
	m, _ := models.ByName("EfficientNet-Lite0")

	r1 := newRig()
	cm := r1.fw.Compile(m.Graph, tensor.UInt8, FastSingleAnswer)
	r1.fw.Execute(cm, nil)
	nnapiTime := r1.eng.Run().Duration()

	r2 := newRig()
	r2.cpu.Execute(m.Graph.Ops(), tensor.UInt8, nil)
	cpu1Time := r2.eng.Run().Duration()

	ratio := float64(nnapiTime) / float64(cpu1Time)
	if ratio < 4 || ratio > 11 {
		t.Fatalf("NNAPI/CPU-1T = %.1fx (nnapi=%v cpu=%v), want ~7x", ratio, nnapiTime, cpu1Time)
	}
}

func TestReferencePathMigrates(t *testing.T) {
	// Fig. 6: the fallback run shows frequent CPU migrations.
	r := newRig()
	m, _ := models.ByName("EfficientNet-Lite0")
	cm := r.fw.Compile(m.Graph, tensor.UInt8, FastSingleAnswer)
	r.fw.Execute(cm, nil)
	r.eng.Run()
	if r.sch.Migrations() < 10 {
		t.Fatalf("migrations = %d, want many (Fig. 6 pathology)", r.sch.Migrations())
	}
}

func TestPreferenceStrings(t *testing.T) {
	for _, p := range []Preference{FastSingleAnswer, SustainedSpeed, LowPower} {
		if p.String() == "" {
			t.Fatal("empty preference name")
		}
	}
	if FastSingleAnswer.String() != "FAST_SINGLE_ANSWER" {
		t.Fatalf("name = %s", FastSingleAnswer.String())
	}
}

func TestTransitionOverheadAdvancesClock(t *testing.T) {
	r := newRig()
	m, _ := models.ByName("Inception v3")
	cm := r.fw.Compile(m.Graph, tensor.Float32, FastSingleAnswer)
	var rep Report
	r.fw.Execute(cm, func(x Report) { rep = x })
	end := r.eng.Run().Duration()
	minOverhead := time.Duration(rep.Transitions) * r.fw.TransitionOverhead
	if end < minOverhead {
		t.Fatalf("wall %v < transition overhead %v: transitions not timed", end, minOverhead)
	}
}

func TestPartitionsCoverGraphInOrder(t *testing.T) {
	// Property over the whole zoo: partitions must cover every op
	// exactly once, in graph order, for both precisions.
	r := newRig()
	for _, m := range models.All() {
		for _, dt := range []tensor.DType{tensor.Float32, tensor.UInt8} {
			cm := r.fw.Compile(m.Graph, dt, FastSingleAnswer)
			i := 0
			ops := m.Graph.Ops()
			for _, p := range cm.Partitions {
				for _, op := range p.Ops {
					if i >= len(ops) || ops[i] != op {
						t.Fatalf("%s/%v: partition ops out of order at %d", m.Name, dt, i)
					}
					i++
				}
			}
			if i != len(ops) {
				t.Fatalf("%s/%v: partitions cover %d/%d ops", m.Name, dt, i, len(ops))
			}
			if f := cm.OffloadedFraction(); f < 0 || f > 1 {
				t.Fatalf("%s/%v: offloaded fraction %v", m.Name, dt, f)
			}
		}
	}
}
