package nnapi

import (
	"testing"
	"time"

	"aitax/internal/driver"
	"aitax/internal/fastrpc"
	"aitax/internal/faults"
	"aitax/internal/models"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

// faultyRig builds a framework whose DSP channel and compile path share
// one injector, the way tflite.Runtime wires a real stack.
func faultyRig(t *testing.T, plan faults.Plan) *rig {
	t.Helper()
	inj, err := faults.New(plan.Resolved(1))
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := soc.Pixel3()
	dspRes := sim.NewResource(eng, "dsp", 1)
	gpuQ := sim.NewResource(eng, "gpu", 1)
	ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
	ch.Faults = inj
	fw := New(Config{
		Engine:       eng,
		AccelFP32:    driver.NewGPUTarget("nnapi-gpu", eng, &p.GPU, gpuQ, driver.NNAPIVendorSupports),
		AccelInt8:    driver.NewDSPTarget("nnapi-dsp", &p.DSP, ch, 0.6, driver.NNAPIVendorSupports),
		FallbackCPU:  driver.NewCPUTarget("nnapi-cpu-fallback", sch, &p.Big, 4),
		ReferenceCPU: driver.NewReferenceCPUTarget("nnapi-ref", sch, &p.Big),
	})
	fw.Faults = inj
	return &rig{eng: eng, sch: sch, p: p, fw: fw,
		cpu: driver.NewCPUTarget("tflite-cpu", sch, &p.Big, 1)}
}

// A driver whose accelerator bring-up fails re-plans the whole graph
// onto the CPU fallback at compile time.
func TestCompileDriverInitFailureReplansOnCPU(t *testing.T) {
	r := faultyRig(t, faults.Plan{DelegateInitFailRate: 1})
	clean := newRig()
	m, _ := models.ByName("MobileNet 1.0 v1")
	cm := r.fw.Compile(m.Graph, tensor.UInt8, FastSingleAnswer)
	if !cm.DriverInitFailed {
		t.Fatal("DriverInitFailed not set")
	}
	if cm.ReferenceFallback {
		t.Fatal("init failure is not the shatter pathology")
	}
	if n := cm.AccelPartitions(); n != 0 {
		t.Fatalf("accel partitions = %d after init failure", n)
	}
	cleanCM := clean.fw.Compile(m.Graph, tensor.UInt8, FastSingleAnswer)
	if cm.CompileTime <= cleanCM.CompileTime {
		t.Fatalf("re-planning must cost extra compile time: %v vs %v", cm.CompileTime, cleanCM.CompileTime)
	}
	// The plan still executes to completion, entirely on CPU.
	var rep Report
	done := false
	r.fw.Execute(cm, func(rp Report) { rep = rp; done = true })
	r.eng.Run()
	if !done || rep.Total() <= 0 {
		t.Fatalf("execution did not complete: done=%v rep=%+v", done, rep)
	}
	if rep.Fallbacks != 0 {
		t.Fatal("compile-time re-plan must not count as an execute-time fallback")
	}
}

// A partition that dies on the DSP mid-run is re-run on the CPU
// fallback, permanently, and the report carries the fallback cost.
func TestExecuteFallbackOnPartitionFailure(t *testing.T) {
	r := faultyRig(t, faults.Plan{RPCTimeoutRate: 1, Deadline: 30 * time.Millisecond, MaxAttempts: 2})
	m, _ := models.ByName("MobileNet 1.0 v1")
	cm := r.fw.Compile(m.Graph, tensor.UInt8, FastSingleAnswer)
	if cm.AccelPartitions() == 0 {
		t.Fatal("plan must start with DSP partitions")
	}

	var rep Report
	r.fw.Execute(cm, func(rp Report) { rep = rp })
	r.eng.Run()
	if rep.Err != nil {
		t.Fatalf("fallback must clear the error: %v", rep.Err)
	}
	if rep.Fallbacks == 0 || rep.FallbackCost <= 0 {
		t.Fatalf("fallback not recorded: %+v", rep)
	}
	if rep.Retry <= 0 {
		t.Fatal("the failed attempts' retry time must be reported")
	}
	if _, ok := rep.PerTarget["nnapi-cpu-fallback"]; !ok {
		t.Fatalf("CPU fallback never ran: %v", rep.PerTarget)
	}
	if cm.AccelPartitions() != 0 {
		t.Fatal("failed partition must move to the CPU for good")
	}

	// The degraded plan keeps working with no further fallbacks.
	var rep2 Report
	r.fw.Execute(cm, func(rp Report) { rep2 = rp })
	r.eng.Run()
	if rep2.Fallbacks != 0 || rep2.Retry != 0 || rep2.Err != nil {
		t.Fatalf("steady state after fallback not clean: %+v", rep2)
	}
}
