// Package nnapi models Android's Neural Networks API as the paper
// describes it (§II-C/D): model compilation with greedy partitioning
// against vendor-driver op-support matrices, execution-preference-driven
// device assignment, and the CPU fallback path. The package reproduces
// the framework behaviours the paper measures — partial offload
// (Inception running half on CPU), and the quantized-model pathology
// where lagging INT8 driver support shatters a graph and NNAPI retreats
// to its single-threaded reference CPU implementation (Figs. 5 and 6).
package nnapi

import (
	"fmt"
	"time"

	"aitax/internal/driver"
	"aitax/internal/faults"
	"aitax/internal/nn"
	"aitax/internal/plan"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
)

// Preference mirrors NNAPI's execution preferences.
type Preference int

// Execution preferences; the benchmarks default to FastSingleAnswer as
// the paper's setup does (§III-B).
const (
	FastSingleAnswer Preference = iota
	SustainedSpeed
	LowPower
)

// String names the preference the way the NDK constants read.
func (p Preference) String() string {
	switch p {
	case FastSingleAnswer:
		return "FAST_SINGLE_ANSWER"
	case SustainedSpeed:
		return "SUSTAINED_SPEED"
	case LowPower:
		return "LOW_POWER"
	default:
		return fmt.Sprintf("PREFERENCE(%d)", int(p))
	}
}

// Partition is a contiguous op segment assigned to one target.
type Partition struct {
	Target driver.Target
	Ops    []*nn.Op
	// Costs is the precomputed per-op device-time schedule for Ops on
	// Target (from the shared plan cache); nil recomputes per execution.
	Costs []time.Duration
}

// CompiledModel is the result of model compilation: the partition plan
// plus bookkeeping, computed once per model load (§II-D).
type CompiledModel struct {
	Graph      *nn.Graph
	DType      tensor.DType
	Preference Preference
	Partitions []Partition
	// CompileTime is the one-time compilation/partitioning cost.
	CompileTime time.Duration
	// ReferenceFallback marks plans NNAPI abandoned for the reference
	// CPU path (the Fig. 5 pathology).
	ReferenceFallback bool
	// DriverInitFailed marks plans whose vendor driver failed to bring
	// the accelerator up (injected delegate-init fault); the whole graph
	// was re-planned onto the CPU fallback during compilation.
	DriverInitFailed bool

	probed bool // the one-time DSP attempt of a fallback plan happened

	// plans/planKey identify the shared cache entry this plan's
	// partition assignment came from, so a fault-driven re-plan can
	// invalidate exactly that entry. Nil/zero when compiled privately.
	plans   *plan.Cache
	planKey plan.Key
}

// AccelPartitions counts partitions on non-CPU targets.
func (cm *CompiledModel) AccelPartitions() int {
	n := 0
	for _, p := range cm.Partitions {
		if p.Target.Kind() != soc.CPUBig && p.Target.Kind() != soc.CPULittle {
			n++
		}
	}
	return n
}

// OffloadedFraction returns the fraction of FLOPs assigned off-CPU.
func (cm *CompiledModel) OffloadedFraction() float64 {
	var total, off int64
	for _, p := range cm.Partitions {
		for _, op := range p.Ops {
			f := op.FLOPs()
			total += f
			if p.Target.Kind() != soc.CPUBig && p.Target.Kind() != soc.CPULittle {
				off += f
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(off) / float64(total)
}

// Framework is one process's NNAPI runtime instance.
type Framework struct {
	eng *sim.Engine
	// Accel is the vendor driver's accelerator target for each
	// precision class: DSP for quantized graphs, GPU for fp32.
	AccelFP32 driver.Target
	AccelInt8 driver.Target
	// FallbackCPU runs ops the driver rejects inside a partitioned plan.
	FallbackCPU driver.Target
	// ReferenceCPU is the slow single-threaded path whole graphs retreat
	// to when a quantized plan shatters.
	ReferenceCPU driver.Target
	// Supports is the vendor driver's op-support matrix.
	Supports func(*nn.Op, tensor.DType) bool

	// TransitionOverhead is the tensor-handoff cost at each partition
	// boundary (buffer copies between runtimes).
	TransitionOverhead time.Duration
	// CompilePerOp scales the one-time compilation cost.
	CompilePerOp time.Duration
	// MaxQuantPartitions is the shatter threshold beyond which a
	// quantized plan is abandoned for the reference path.
	MaxQuantPartitions int

	// Tracer, when set, records fallback events. Nil disables.
	Tracer *telemetry.Tracer
	// Metrics, when set, counts injected faults and fallbacks. Nil
	// disables.
	Metrics *telemetry.Registry
	// Faults, when set, injects driver-init failures at compile time and
	// lets partition execution errors trigger the CPU fallback. Nil
	// keeps the framework infallible.
	Faults *faults.Injector

	// Plans, when set, shares partition assignments and cost schedules
	// with every other standard-built framework in the process (the lab
	// workers all hit the same entries). Only runtimes that build the
	// framework from the standard support matrices set this; custom
	// frameworks compile privately.
	Plans *plan.Cache
	// PlanPlatform names the platform in shared cache keys.
	PlanPlatform string
}

// Config carries the targets for New.
type Config struct {
	Engine       *sim.Engine
	AccelFP32    driver.Target
	AccelInt8    driver.Target
	FallbackCPU  driver.Target
	ReferenceCPU driver.Target
	Supports     func(*nn.Op, tensor.DType) bool
}

// New assembles a framework with the defaults used throughout the
// experiments.
func New(cfg Config) *Framework {
	if cfg.Engine == nil || cfg.AccelFP32 == nil || cfg.AccelInt8 == nil || cfg.FallbackCPU == nil || cfg.ReferenceCPU == nil {
		panic("nnapi: engine and all targets must be provided")
	}
	supports := cfg.Supports
	if supports == nil {
		supports = driver.NNAPIVendorSupports
	}
	return &Framework{
		eng:                cfg.Engine,
		AccelFP32:          cfg.AccelFP32,
		AccelInt8:          cfg.AccelInt8,
		FallbackCPU:        cfg.FallbackCPU,
		ReferenceCPU:       cfg.ReferenceCPU,
		Supports:           supports,
		TransitionOverhead: 120 * time.Microsecond,
		CompilePerOp:       180 * time.Microsecond,
		MaxQuantPartitions: 12,
	}
}

// accelFor picks the accelerator the execution preference implies:
// quantized graphs go to the DSP; fp32 graphs go to the GPU under the
// throughput preferences and to the DSP (slow but frugal fp16-style
// path) under LOW_POWER. SUSTAINED_SPEED differs from
// FAST_SINGLE_ANSWER only in DVFS governor behaviour, which the device
// models do not resolve, so the two share a device assignment.
func (f *Framework) accelFor(dt tensor.DType, pref Preference) driver.Target {
	if dt == tensor.Int8 || dt == tensor.UInt8 {
		return f.AccelInt8
	}
	if pref == LowPower {
		return f.AccelInt8
	}
	return f.AccelFP32
}

// Compile partitions the graph across the accelerator and the CPU
// fallback: maximal runs of driver-supported ops go to the accelerator,
// everything else to the CPU. A quantized plan that shatters past
// MaxQuantPartitions is abandoned for the reference CPU path.
func (f *Framework) Compile(g *nn.Graph, dt tensor.DType, pref Preference) *CompiledModel {
	accel := f.accelFor(dt, pref)
	cm := &CompiledModel{
		Graph:       g,
		DType:       dt,
		Preference:  pref,
		CompileTime: time.Duration(g.NumOps()) * f.CompilePerOp,
	}
	ops := g.Ops()
	assign := func() any {
		return plan.PartitionSegments(ops, dt, func(op *nn.Op, dt tensor.DType) bool {
			return f.Supports(op, dt) && accel.Supports(op, dt)
		})
	}
	var segs []plan.Segment
	if f.Plans != nil && g.Name != "" {
		cm.plans = f.Plans
		cm.planKey = plan.Key{Kind: "nnapi-partition", Model: g.Name, DType: dt,
			Scope: accel.Name(), Platform: f.PlanPlatform, Variant: g.NumOps()}
		segs = f.Plans.Get(cm.planKey, assign).([]plan.Segment)
	} else {
		segs = assign().([]plan.Segment)
	}
	// Materialize per-plan partitions from the shared assignment: the
	// Partitions slice is this plan's own (execution-time fallbacks
	// mutate it), only the index ranges and cost schedules are shared.
	accelCosts := f.opCosts(g, dt, accel)
	cpuCosts := f.opCosts(g, dt, f.FallbackCPU)
	cm.Partitions = make([]Partition, 0, len(segs))
	for _, s := range segs {
		t, costs := f.FallbackCPU, cpuCosts
		if s.Accel {
			t, costs = accel, accelCosts
		}
		p := Partition{Target: t, Ops: ops[s.Start:s.End]}
		if costs != nil {
			p.Costs = costs[s.Start:s.End]
		}
		cm.Partitions = append(cm.Partitions, p)
	}
	quant := dt == tensor.Int8 || dt == tensor.UInt8
	if quant && len(cm.Partitions) > f.MaxQuantPartitions {
		// The vendor driver rejects the shattered plan; NNAPI retreats
		// to its reference implementation for the whole graph.
		cm.ReferenceFallback = true
		cm.Partitions = []Partition{{Target: f.ReferenceCPU, Ops: ops,
			Costs: f.opCosts(g, dt, f.ReferenceCPU)}}
	} else if cm.AccelPartitions() > 0 {
		// The vendor driver's accelerator bring-up can fail outright
		// (injected fault); NNAPI re-plans the whole graph onto its CPU
		// fallback and eats the second planning pass.
		if err := f.Faults.DelegateInit(accel.Name()); err != nil {
			cm.DriverInitFailed = true
			cm.Partitions = []Partition{{Target: f.FallbackCPU, Ops: ops, Costs: cpuCosts}}
			cm.invalidate()
			cm.CompileTime += time.Duration(g.NumOps()) * f.CompilePerOp / 2
			f.Metrics.Inc(telemetry.Labeled("aitax_faults_injected_total", "site", faults.SiteDelegateInit.String()))
			f.Metrics.Inc(telemetry.Labeled("aitax_faults_fallbacks_total", "layer", "nnapi-compile"))
		}
	}
	return cm
}

// opCosts returns the per-op device-time schedule for the whole graph
// on target t, shared through the plan cache when one is wired. Nil
// when t cannot cost segments ahead of execution.
func (f *Framework) opCosts(g *nn.Graph, dt tensor.DType, t driver.Target) []time.Duration {
	c, ok := t.(driver.Coster)
	if !ok {
		return nil
	}
	if f.Plans == nil || g.Name == "" {
		return c.OpCosts(g.Ops(), dt)
	}
	k := plan.Key{Kind: "op-costs", Model: g.Name, DType: dt, Scope: t.Name(),
		Platform: f.PlanPlatform, Variant: g.NumOps()}
	costs, _ := f.Plans.Get(k, func() any { return c.OpCosts(g.Ops(), dt) }).([]time.Duration)
	return costs
}

// invalidate drops this plan's shared partition entry (if it came from
// the cache) after a fault-driven re-plan; other entries stay warm.
func (cm *CompiledModel) invalidate() {
	if cm.plans != nil {
		cm.plans.Invalidate(cm.planKey)
	}
}

// Report aggregates one NNAPI execution.
type Report struct {
	driver.Result
	// Transitions counts partition boundaries crossed.
	Transitions int
	// PerTarget accumulates wall time by target name.
	PerTarget map[string]time.Duration
	// Fallbacks counts partitions that failed on the accelerator and
	// were re-run on the CPU fallback this execution.
	Fallbacks int
	// FallbackCost is the extra handoff/re-planning time those
	// fallbacks burned (the failed attempts' retry time is in Retry).
	FallbackCost time.Duration
}

// Execute runs a compiled plan: partitions execute in order, each
// boundary paying the transition overhead. A partition that fails on
// the accelerator (injected fault, retries exhausted) is re-planned
// onto the CPU fallback — permanently, like production NNAPI dropping a
// misbehaving driver — and re-run there after a handoff penalty. done
// receives the aggregated report.
func (f *Framework) Execute(cm *CompiledModel, done func(Report)) {
	if cm.ReferenceFallback && !cm.probed {
		// The driver's one-time attempt to bring the graph up on the
		// DSP before rejecting it — the brief CDSP utilization spike at
		// the start of the paper's Fig. 6 NNAPI profile.
		cm.probed = true
		if gi, ok := f.AccelInt8.(driver.GraphIniter); ok {
			gi.InitGraph(cm.Graph.Ops(), cm.DType, func(driver.Result) {
				f.Execute(cm, done)
			})
			return
		}
	}
	rep := Report{PerTarget: make(map[string]time.Duration)}
	var runPart func(i int)
	runPart = func(i int) {
		if i >= len(cm.Partitions) {
			if done != nil {
				done(rep)
			}
			return
		}
		p := cm.Partitions[i]
		exec := func() {
			driver.ExecuteCosted(p.Target, p.Ops, p.Costs, cm.DType, nil, func(res driver.Result) {
				if res.Err != nil && p.Target != f.FallbackCPU && p.Target != f.ReferenceCPU {
					// The accelerator gave up on this partition. Absorb
					// the failed attempt's time (it really passed), pay
					// the handoff + re-planning penalty, move the
					// partition to the CPU fallback for good, and re-run.
					res.Err = nil
					rep.Result = rep.Result.Add(res)
					rep.PerTarget[p.Target.Name()] += res.Total()
					penalty := f.TransitionOverhead + time.Duration(len(p.Ops))*f.CompilePerOp/2
					rep.Fallbacks++
					rep.FallbackCost += penalty
					rep.Overhead += penalty
					f.Tracer.Instant("nnapi-fallback", "faults", telemetry.TrackCPU, nil, f.eng.Now())
					f.Metrics.Inc(telemetry.Labeled("aitax_faults_fallbacks_total", "layer", "nnapi"))
					f.Metrics.Observe("aitax_faults_fallback_ms", float64(penalty)/float64(time.Millisecond))
					cm.Partitions[i].Target = f.FallbackCPU
					cm.Partitions[i].Costs = nil // accel schedule no longer applies
					cm.invalidate()
					f.eng.After(penalty, func() {
						f.FallbackCPU.Execute(p.Ops, cm.DType, func(res2 driver.Result) {
							rep.Result = rep.Result.Add(res2)
							rep.PerTarget[f.FallbackCPU.Name()] += res2.Total()
							runPart(i + 1)
						})
					})
					return
				}
				rep.Result = rep.Result.Add(res)
				rep.PerTarget[p.Target.Name()] += res.Total()
				runPart(i + 1)
			})
		}
		if i > 0 {
			rep.Transitions++
			rep.Overhead += f.TransitionOverhead
			f.eng.After(f.TransitionOverhead, exec)
		} else {
			exec()
		}
	}
	runPart(0)
}
