// Package faults is the deterministic fault-injection subsystem for the
// offload path. The paper attributes much of the AI tax to the fragility
// of that path — FastRPC round-trips, delegate and driver bring-up,
// multi-tenancy contention — and real mobile stacks survive it by
// retrying and by falling back to CPU execution. This package supplies
// the failure side of that story on the simulated platform: a seeded
// Plan describes *what* can fail and how often, and an Injector draws
// every fault decision from its own virtual-time RNG stream (never wall
// clock, never the run's main RNG), so a fixed (seed, plan) pair
// regenerates byte-identical fault sites, retries and fallbacks at any
// host parallelism.
//
// Everything is nil-safe and zero-value-safe: a nil *Injector injects
// nothing at zero cost, and the zero Plan is "no faults", so the layers
// that consult the injector (fastrpc, driver, tflite, nnapi, app) can do
// so unconditionally without perturbing fault-free runs.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"aitax/internal/sim"
)

// Site identifies one injection point in the offload stack — the layers
// the paper's §III/§IV analysis names as variability sources.
type Site int

// Injection sites.
const (
	// SiteRPCTransport is a FastRPC invoke failing in transport (kernel
	// crossing or driver signalling error).
	SiteRPCTransport Site = iota
	// SiteRPCTimeout is a FastRPC invoke hanging until its deadline.
	SiteRPCTimeout
	// SiteSessionSetup is a FastRPC session establishment failing.
	SiteSessionSetup
	// SiteDelegateInit is a delegate/driver refusing to initialize
	// (shader compile failure, DSP graph rejection).
	SiteDelegateInit
	// SiteDriverStall is a driver stall extending accelerator occupancy
	// — the run-to-run variability tail of §III.
	SiteDriverStall
	// SiteThermalTrip is a thermal-forced accelerator shutdown; calls
	// after the trip fail without retry.
	SiteThermalTrip
)

// String names the site the way metrics and spans label it.
func (s Site) String() string {
	switch s {
	case SiteRPCTransport:
		return "rpc-transport"
	case SiteRPCTimeout:
		return "rpc-timeout"
	case SiteSessionSetup:
		return "session-setup"
	case SiteDelegateInit:
		return "delegate-init"
	case SiteDriverStall:
		return "driver-stall"
	case SiteThermalTrip:
		return "thermal-trip"
	default:
		return fmt.Sprintf("site(%d)", int(s))
	}
}

// Error is a terminal injected failure, reported after any retries were
// exhausted. Retryable is false for failures no retry can cure (thermal
// trip, delegate init).
type Error struct {
	Site     Site
	Attempts int
	Target   string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("faults: %s on %q failed after %d attempts", e.Site, e.Target, e.Attempts)
	}
	return fmt.Sprintf("faults: %s on %q", e.Site, e.Target)
}

// Plan describes what the injector may break. The zero value injects
// nothing — FaultPlan-free runs stay byte-identical to builds without
// this package. All probabilities are per-attempt in [0, 1].
type Plan struct {
	// Seed keys the dedicated fault RNG stream. Zero derives the stream
	// from the run seed, so sweeping run seeds also sweeps fault sites;
	// a non-zero Seed pins fault decisions across run seeds.
	Seed uint64

	// RPCErrorRate is the probability one FastRPC invoke attempt fails
	// in transport (detected one kernel crossing after submission).
	RPCErrorRate float64
	// RPCTimeoutRate is the probability one FastRPC invoke attempt hangs
	// until Deadline before the caller gives up on it.
	RPCTimeoutRate float64
	// Deadline is the per-call FastRPC timeout (default 50ms when any
	// timeout rate is set). Timed-out attempts burn exactly this much
	// virtual time.
	Deadline time.Duration
	// SessionFailRate is the probability one FastRPC session-setup
	// attempt fails. Failed setups leave the channel cold (re-initializable).
	SessionFailRate float64
	// DelegateInitFailRate is the probability delegate/driver
	// initialization fails, forcing the framework's CPU fallback.
	DelegateInitFailRate float64
	// StallRate is the probability a successful DSP invoke is stretched
	// by a driver stall of StallDuration (default 25ms), holding the
	// accelerator for the extra time.
	StallRate float64
	// StallDuration is the injected stall length.
	StallDuration time.Duration
	// ThermalTripAt, when positive, shuts the accelerator down once
	// virtual time reaches it; later offload attempts fail without retry.
	ThermalTripAt time.Duration

	// MaxAttempts bounds FastRPC attempts per call, setup included
	// (default 3). 1 disables retry.
	MaxAttempts int
	// Backoff is the wait before the first retry (default 2ms); each
	// further retry multiplies it by BackoffFactor (default 2). Backoff
	// waits consume virtual time and surface as AI tax.
	Backoff       time.Duration
	BackoffFactor float64
}

// Enabled reports whether the plan can inject anything.
func (p Plan) Enabled() bool {
	return p.RPCErrorRate > 0 || p.RPCTimeoutRate > 0 || p.SessionFailRate > 0 ||
		p.DelegateInitFailRate > 0 || p.StallRate > 0 || p.ThermalTripAt > 0
}

// Validate rejects out-of-range plan fields.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"RPCErrorRate", p.RPCErrorRate},
		{"RPCTimeoutRate", p.RPCTimeoutRate},
		{"SessionFailRate", p.SessionFailRate},
		{"DelegateInitFailRate", p.DelegateInitFailRate},
		{"StallRate", p.StallRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"Deadline", p.Deadline},
		{"StallDuration", p.StallDuration},
		{"ThermalTripAt", p.ThermalTripAt},
		{"Backoff", p.Backoff},
	} {
		if d.v < 0 {
			return fmt.Errorf("faults: negative %s %v", d.name, d.v)
		}
	}
	if p.MaxAttempts < 0 {
		return fmt.Errorf("faults: negative MaxAttempts %d", p.MaxAttempts)
	}
	if p.BackoffFactor != 0 && p.BackoffFactor < 1 {
		return fmt.Errorf("faults: BackoffFactor %v below 1", p.BackoffFactor)
	}
	return nil
}

// seedMix decorrelates the derived fault stream from the run's main RNG
// (which NewRNG seeds with the run seed directly).
const seedMix = 0xFA117A6C0FFEE

// Resolved returns a copy with every unset knob filled with its
// documented default and the RNG seed derived from runSeed when the
// plan does not pin one.
func (p Plan) Resolved(runSeed uint64) Plan {
	if p.Seed == 0 {
		p.Seed = runSeed ^ seedMix
	}
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.Backoff == 0 {
		p.Backoff = 2 * time.Millisecond
	}
	if p.BackoffFactor == 0 {
		p.BackoffFactor = 2
	}
	if p.Deadline == 0 {
		p.Deadline = 50 * time.Millisecond
	}
	if p.StallDuration == 0 {
		p.StallDuration = 25 * time.Millisecond
	}
	return p
}

// RPCFaultKind classifies one FastRPC attempt's outcome.
type RPCFaultKind int

// Attempt outcomes.
const (
	// RPCNone: the attempt proceeds (possibly with a Stall).
	RPCNone RPCFaultKind = iota
	// RPCTransportError: the attempt fails in transport; retryable.
	RPCTransportError
	// RPCTimeout: the attempt hangs until the deadline; retryable.
	RPCTimeout
	// RPCAccelDown: the accelerator is thermally tripped; not retryable.
	RPCAccelDown
)

// RPCOutcome is one attempt's draw.
type RPCOutcome struct {
	Kind RPCFaultKind
	// Stall is extra accelerator hold time on a successful attempt.
	Stall time.Duration
	// TripFirst is set on the first attempt to observe the thermal trip,
	// so the caller can record the shutdown event exactly once.
	TripFirst bool
}

// Injector draws fault decisions for one simulated process. Construct
// with New; a nil *Injector is the "no faults" injector — every method
// is a no-op returning the fault-free outcome. Not safe for concurrent
// use, like the simulation engine it serves.
type Injector struct {
	plan     Plan
	rng      *sim.RNG
	tripped  bool
	injected map[Site]int
}

// New builds an injector for a resolved plan. Callers normally write
// faults.New(plan.Resolved(runSeed)). A plan that injects nothing
// yields a nil injector, keeping fault-free runs on the nil fast path.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if !plan.Enabled() {
		return nil, nil
	}
	plan = plan.Resolved(plan.Seed)
	return &Injector{
		plan:     plan,
		rng:      sim.NewRNG(plan.Seed),
		injected: make(map[Site]int),
	}, nil
}

// Plan returns the resolved plan (zero Plan on nil).
func (i *Injector) Plan() Plan {
	if i == nil {
		return Plan{}
	}
	return i.plan
}

// Enabled reports whether this injector can inject (false on nil).
func (i *Injector) Enabled() bool { return i != nil }

// MaxAttempts returns the per-call FastRPC attempt bound (1 on nil: a
// fault-free stack never retries).
func (i *Injector) MaxAttempts() int {
	if i == nil {
		return 1
	}
	return i.plan.MaxAttempts
}

// BackoffFor returns the wait before retrying after the given 1-based
// failed attempt: Backoff * BackoffFactor^(attempt-1).
func (i *Injector) BackoffFor(attempt int) time.Duration {
	if i == nil {
		return 0
	}
	d := float64(i.plan.Backoff)
	for a := 1; a < attempt; a++ {
		d *= i.plan.BackoffFactor
	}
	return time.Duration(d)
}

// Deadline returns the per-call FastRPC timeout.
func (i *Injector) Deadline() time.Duration {
	if i == nil {
		return 0
	}
	return i.plan.Deadline
}

// note counts an injected fault.
func (i *Injector) note(s Site) {
	i.injected[s]++
}

// Injected returns how many faults the injector has placed at a site
// (0 on nil).
func (i *Injector) Injected(s Site) int {
	if i == nil {
		return 0
	}
	return i.injected[s]
}

// InjectedTotal sums injected faults across all sites.
func (i *Injector) InjectedTotal() int {
	if i == nil {
		return 0
	}
	n := 0
	for _, c := range i.injected {
		n += c
	}
	return n
}

// AccelDown reports whether the accelerator is thermally tripped at the
// given virtual time, and whether this call is the first to observe the
// trip (so the caller can record the event exactly once).
func (i *Injector) AccelDown(now sim.Time) (down, first bool) {
	if i == nil || i.plan.ThermalTripAt <= 0 {
		return false, false
	}
	if now.Duration() < i.plan.ThermalTripAt {
		return false, false
	}
	if !i.tripped {
		i.tripped = true
		i.note(SiteThermalTrip)
		return true, true
	}
	return true, false
}

// RPCAttempt draws the outcome of one FastRPC invoke attempt. It always
// consumes exactly three uniform draws, so outcome sequences stay
// aligned across plans with the same seed regardless of which rates are
// active — a mirror injector with the same plan predicts a channel's
// draws exactly.
func (i *Injector) RPCAttempt(now sim.Time) RPCOutcome {
	if i == nil {
		return RPCOutcome{}
	}
	if down, first := i.AccelDown(now); down {
		return RPCOutcome{Kind: RPCAccelDown, TripFirst: first}
	}
	errDraw := i.rng.Float64()
	timeoutDraw := i.rng.Float64()
	stallDraw := i.rng.Float64()
	switch {
	case errDraw < i.plan.RPCErrorRate:
		i.note(SiteRPCTransport)
		return RPCOutcome{Kind: RPCTransportError}
	case timeoutDraw < i.plan.RPCTimeoutRate:
		i.note(SiteRPCTimeout)
		return RPCOutcome{Kind: RPCTimeout}
	case stallDraw < i.plan.StallRate:
		i.note(SiteDriverStall)
		return RPCOutcome{Stall: i.plan.StallDuration}
	default:
		return RPCOutcome{}
	}
}

// SessionSetup draws whether one FastRPC session-setup attempt fails.
func (i *Injector) SessionSetup() error {
	if i == nil {
		return nil
	}
	if i.rng.Float64() < i.plan.SessionFailRate {
		i.note(SiteSessionSetup)
		return &Error{Site: SiteSessionSetup, Attempts: 1, Target: "fastrpc"}
	}
	return nil
}

// DelegateInit draws whether the named delegate's one-time
// initialization fails. Delegate-init failures are not retryable: the
// production frameworks respond by tearing the delegate down and
// planning the graph on the CPU instead.
func (i *Injector) DelegateInit(name string) error {
	if i == nil {
		return nil
	}
	if i.rng.Float64() < i.plan.DelegateInitFailRate {
		i.note(SiteDelegateInit)
		return &Error{Site: SiteDelegateInit, Attempts: 1, Target: name}
	}
	return nil
}

// ParsePlan parses the -faults flag syntax: a comma-separated key=value
// list. An empty spec is the zero (disabled) plan.
//
//	rpc=RATE       FastRPC transport error rate
//	timeout=RATE   FastRPC timeout rate
//	deadline=DUR   per-call timeout (e.g. 50ms)
//	session=RATE   session-setup failure rate
//	init=RATE      delegate-init failure rate
//	stall=RATE     driver-stall rate
//	stalldur=DUR   injected stall length
//	trip=DUR       thermal trip at this virtual time
//	seed=N         fault RNG seed (0 derives from the run seed)
//	attempts=N     FastRPC attempts per call (1 disables retry)
//	backoff=DUR    first retry backoff
//	factor=F       backoff multiplier
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: %q is not key=value", kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "rpc":
			p.RPCErrorRate, err = parseRate(v)
		case "timeout":
			p.RPCTimeoutRate, err = parseRate(v)
		case "deadline":
			p.Deadline, err = time.ParseDuration(v)
		case "session":
			p.SessionFailRate, err = parseRate(v)
		case "init":
			p.DelegateInitFailRate, err = parseRate(v)
		case "stall":
			p.StallRate, err = parseRate(v)
		case "stalldur":
			p.StallDuration, err = time.ParseDuration(v)
		case "trip":
			p.ThermalTripAt, err = time.ParseDuration(v)
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "attempts":
			p.MaxAttempts, err = strconv.Atoi(v)
		case "backoff":
			p.Backoff, err = time.ParseDuration(v)
		case "factor":
			p.BackoffFactor, err = strconv.ParseFloat(v, 64)
		default:
			return Plan{}, fmt.Errorf("faults: unknown key %q (rpc, timeout, deadline, session, init, stall, stalldur, trip, seed, attempts, backoff, factor)", k)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad value for %q: %v", k, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func parseRate(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", f)
	}
	return f, nil
}
