package faults

import (
	"errors"
	"testing"
	"time"

	"aitax/internal/sim"
)

func TestZeroPlanDisabled(t *testing.T) {
	var p Plan
	if p.Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
	inj, err := New(p)
	if err != nil {
		t.Fatalf("New(zero plan): %v", err)
	}
	if inj != nil {
		t.Fatal("zero plan yields a non-nil injector")
	}
}

func TestNilInjectorIsNoFault(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Error("nil injector reports Enabled")
	}
	if got := inj.MaxAttempts(); got != 1 {
		t.Errorf("nil MaxAttempts = %d, want 1", got)
	}
	if got := inj.BackoffFor(3); got != 0 {
		t.Errorf("nil BackoffFor = %v, want 0", got)
	}
	if got := inj.Deadline(); got != 0 {
		t.Errorf("nil Deadline = %v, want 0", got)
	}
	if out := inj.RPCAttempt(sim.Time(0)); out != (RPCOutcome{}) {
		t.Errorf("nil RPCAttempt = %+v, want zero outcome", out)
	}
	if err := inj.SessionSetup(); err != nil {
		t.Errorf("nil SessionSetup = %v", err)
	}
	if err := inj.DelegateInit("hexagon"); err != nil {
		t.Errorf("nil DelegateInit = %v", err)
	}
	if down, first := inj.AccelDown(sim.Time(1e12)); down || first {
		t.Error("nil AccelDown reports tripped")
	}
	if n := inj.InjectedTotal(); n != 0 {
		t.Errorf("nil InjectedTotal = %d", n)
	}
	if p := inj.Plan(); p != (Plan{}) {
		t.Errorf("nil Plan = %+v, want zero", p)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"full rates", Plan{RPCErrorRate: 1, RPCTimeoutRate: 1, SessionFailRate: 1, DelegateInitFailRate: 1, StallRate: 1}, true},
		{"rate above one", Plan{RPCErrorRate: 1.1}, false},
		{"negative rate", Plan{StallRate: -0.1}, false},
		{"negative deadline", Plan{Deadline: -time.Millisecond}, false},
		{"negative attempts", Plan{MaxAttempts: -1}, false},
		{"factor below one", Plan{BackoffFactor: 0.5}, false},
		{"factor zero ok", Plan{BackoffFactor: 0}, true},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestResolvedDefaults(t *testing.T) {
	p := Plan{RPCErrorRate: 0.5}.Resolved(42)
	if p.Seed == 0 || p.Seed == 42 {
		t.Errorf("derived Seed = %d, want mixed non-zero value distinct from run seed", p.Seed)
	}
	if p.MaxAttempts != 3 {
		t.Errorf("MaxAttempts = %d, want 3", p.MaxAttempts)
	}
	if p.Backoff != 2*time.Millisecond {
		t.Errorf("Backoff = %v, want 2ms", p.Backoff)
	}
	if p.BackoffFactor != 2 {
		t.Errorf("BackoffFactor = %v, want 2", p.BackoffFactor)
	}
	if p.Deadline != 50*time.Millisecond {
		t.Errorf("Deadline = %v, want 50ms", p.Deadline)
	}
	if p.StallDuration != 25*time.Millisecond {
		t.Errorf("StallDuration = %v, want 25ms", p.StallDuration)
	}
	pinned := Plan{Seed: 7, MaxAttempts: 1, Backoff: time.Millisecond, BackoffFactor: 3, Deadline: time.Second, StallDuration: time.Millisecond}.Resolved(42)
	if pinned.Seed != 7 || pinned.MaxAttempts != 1 || pinned.Backoff != time.Millisecond ||
		pinned.BackoffFactor != 3 || pinned.Deadline != time.Second || pinned.StallDuration != time.Millisecond {
		t.Errorf("Resolved overwrote pinned fields: %+v", pinned)
	}
}

// Same seed and plan must regenerate the identical decision sequence.
func TestDeterministicSequence(t *testing.T) {
	plan := Plan{Seed: 99, RPCErrorRate: 0.3, RPCTimeoutRate: 0.2, StallRate: 0.3, SessionFailRate: 0.5, DelegateInitFailRate: 0.5}
	draw := func() ([]RPCOutcome, []bool, []bool) {
		inj, err := New(plan)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var outs []RPCOutcome
		var setups, inits []bool
		for k := 0; k < 50; k++ {
			outs = append(outs, inj.RPCAttempt(sim.Time(k)))
			setups = append(setups, inj.SessionSetup() != nil)
			inits = append(inits, inj.DelegateInit("gpu") != nil)
		}
		return outs, setups, inits
	}
	o1, s1, i1 := draw()
	o2, s2, i2 := draw()
	for k := range o1 {
		if o1[k] != o2[k] || s1[k] != s2[k] || i1[k] != i2[k] {
			t.Fatalf("draw %d diverged: %+v/%v/%v vs %+v/%v/%v", k, o1[k], s1[k], i1[k], o2[k], s2[k], i2[k])
		}
	}
}

// RPCAttempt burns a fixed number of draws per call, so rate changes
// never shift later decisions sourced from the same seed.
func TestRPCAttemptDrawAlignment(t *testing.T) {
	// With rpc error rate 1, every attempt fails on the first draw; the
	// stall draws afterwards must land exactly where an all-success run
	// with the same seed would place them.
	a, _ := New(Plan{Seed: 5, RPCErrorRate: 1, StallRate: 1})
	b, _ := New(Plan{Seed: 5, StallRate: 1})
	for k := 0; k < 20; k++ {
		oa := a.RPCAttempt(sim.Time(k))
		ob := b.RPCAttempt(sim.Time(k))
		if oa.Kind != RPCTransportError {
			t.Fatalf("attempt %d: kind %v, want transport error", k, oa.Kind)
		}
		if ob.Kind != RPCNone || ob.Stall == 0 {
			t.Fatalf("attempt %d: baseline %+v, want stall", k, ob)
		}
	}
	// After identical draw counts both streams are still in lockstep.
	a2, _ := New(Plan{Seed: 5, SessionFailRate: 0.5})
	b2, _ := New(Plan{Seed: 5, SessionFailRate: 0.5, RPCErrorRate: 1})
	for k := 0; k < 10; k++ {
		b2.RPCAttempt(sim.Time(k))
		a2.RPCAttempt(sim.Time(k))
	}
	for k := 0; k < 10; k++ {
		if (a2.SessionSetup() != nil) != (b2.SessionSetup() != nil) {
			t.Fatalf("setup draw %d diverged after differing rates", k)
		}
	}
}

func TestBackoffGrowth(t *testing.T) {
	inj, _ := New(Plan{RPCErrorRate: 1, Backoff: 2 * time.Millisecond, BackoffFactor: 2, MaxAttempts: 4})
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond}
	for k, w := range want {
		if got := inj.BackoffFor(k + 1); got != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", k+1, got, w)
		}
	}
}

func TestThermalTrip(t *testing.T) {
	inj, _ := New(Plan{ThermalTripAt: 10 * time.Millisecond})
	if down, _ := inj.AccelDown(sim.Time(5 * time.Millisecond)); down {
		t.Fatal("tripped before ThermalTripAt")
	}
	down, first := inj.AccelDown(sim.Time(10 * time.Millisecond))
	if !down || !first {
		t.Fatalf("at trip time: down=%v first=%v, want true/true", down, first)
	}
	down, first = inj.AccelDown(sim.Time(11 * time.Millisecond))
	if !down || first {
		t.Fatalf("after trip: down=%v first=%v, want true/false", down, first)
	}
	if out := inj.RPCAttempt(sim.Time(12 * time.Millisecond)); out.Kind != RPCAccelDown {
		t.Fatalf("post-trip RPCAttempt = %+v, want accel-down", out)
	}
	if n := inj.Injected(SiteThermalTrip); n != 1 {
		t.Errorf("thermal trips recorded = %d, want 1", n)
	}
}

func TestInjectedCounters(t *testing.T) {
	inj, _ := New(Plan{Seed: 3, RPCErrorRate: 1, MaxAttempts: 2})
	for k := 0; k < 5; k++ {
		inj.RPCAttempt(sim.Time(k))
	}
	if n := inj.Injected(SiteRPCTransport); n != 5 {
		t.Errorf("transport faults = %d, want 5", n)
	}
	if n := inj.InjectedTotal(); n != 5 {
		t.Errorf("total faults = %d, want 5", n)
	}
}

func TestErrorStringsAndSites(t *testing.T) {
	e := &Error{Site: SiteDelegateInit, Attempts: 1, Target: "hexagon"}
	if got := e.Error(); got != `faults: delegate-init on "hexagon"` {
		t.Errorf("Error() = %q", got)
	}
	e2 := &Error{Site: SiteRPCTransport, Attempts: 3, Target: "fastrpc"}
	if got := e2.Error(); got != `faults: rpc-transport on "fastrpc" failed after 3 attempts` {
		t.Errorf("Error() = %q", got)
	}
	var err error = e
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != SiteDelegateInit {
		t.Error("errors.As failed to recover *Error")
	}
	names := map[Site]string{
		SiteRPCTransport: "rpc-transport", SiteRPCTimeout: "rpc-timeout",
		SiteSessionSetup: "session-setup", SiteDelegateInit: "delegate-init",
		SiteDriverStall: "driver-stall", SiteThermalTrip: "thermal-trip",
	}
	for s, w := range names {
		if s.String() != w {
			t.Errorf("Site %d String = %q, want %q", s, s.String(), w)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("rpc=0.2, timeout=0.1, deadline=40ms, session=0.3, init=1, stall=0.25, stalldur=10ms, trip=2s, seed=7, attempts=5, backoff=3ms, factor=1.5")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	want := Plan{
		Seed: 7, RPCErrorRate: 0.2, RPCTimeoutRate: 0.1, Deadline: 40 * time.Millisecond,
		SessionFailRate: 0.3, DelegateInitFailRate: 1, StallRate: 0.25,
		StallDuration: 10 * time.Millisecond, ThermalTripAt: 2 * time.Second,
		MaxAttempts: 5, Backoff: 3 * time.Millisecond, BackoffFactor: 1.5,
	}
	if p != want {
		t.Errorf("ParsePlan = %+v, want %+v", p, want)
	}

	if p, err := ParsePlan(""); err != nil || p.Enabled() {
		t.Errorf("empty spec: plan %+v err %v, want disabled/nil", p, err)
	}
	for _, bad := range []string{"rpc", "rpc=2", "bogus=1", "deadline=xyz", "rpc=0.2;stall=0.1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Plan{RPCErrorRate: 2}); err == nil {
		t.Fatal("New accepted out-of-range rate")
	}
}
