package trace

import (
	"strings"
	"testing"
	"time"

	"aitax/internal/driver"
	"aitax/internal/fastrpc"
	"aitax/internal/models"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
)

func TestProfilerRecordsCoreActivity(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := NewProfiler(eng, time.Millisecond)
	p.Attach(sch)
	sch.Spawn("t", sched.BigOnly).Exec(10*time.Millisecond, nil)
	eng.Run()
	u := p.CoreUtilization(0)
	busy := 0.0
	for _, v := range u {
		busy += v
	}
	if busy < 9 || busy > 11 {
		t.Fatalf("core0 busy buckets = %v, want ~10", busy)
	}
	// Other big cores idle.
	for _, v := range p.CoreUtilization(1) {
		if v > 0 {
			t.Fatal("idle core shows activity")
		}
	}
}

func TestProfilerTracksMigrations(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := NewProfiler(eng, time.Millisecond)
	p.Attach(sch)
	sch.SpawnMigratory("m", nil).Exec(40*time.Millisecond, nil)
	eng.Run()
	if p.Migrations() == 0 {
		t.Fatal("migratory thread produced no migration events")
	}
	if p.Migrations() != sch.Migrations() {
		t.Fatalf("profiler migrations %d != scheduler %d", p.Migrations(), sch.Migrations())
	}
}

func TestResourceSampling(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := NewProfiler(eng, time.Millisecond)
	p.Attach(sch)
	dsp := sim.NewResource(eng, "dsp", 1)
	p.TrackResource("cdsp", dsp)
	p.StartSampling(20 * time.Millisecond)
	eng.After(2*time.Millisecond, func() {
		dsp.Acquire(10*time.Millisecond, nil)
	})
	eng.Run()
	busy := 0.0
	for _, v := range p.resources[0].samples {
		busy += v
	}
	if busy < 5 {
		t.Fatalf("dsp samples show %v busy buckets, want ~10", busy)
	}
}

func TestRenderTimeline(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := NewProfiler(eng, time.Millisecond)
	p.Attach(sch)
	for i := 0; i < 4; i++ {
		sch.Spawn("w", sched.BigOnly).Exec(20*time.Millisecond, nil)
	}
	eng.Run()
	out := p.Render()
	if !strings.Contains(out, "cpu0") || !strings.Contains(out, "migr") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	// Busy cores must show solid utilization glyphs.
	if !strings.Contains(out, "#") {
		t.Fatalf("render shows no full-utilization glyphs:\n%s", out)
	}
}

func TestRenderCapsColumns(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := NewProfiler(eng, 100*time.Microsecond)
	p.Attach(sch)
	sch.Spawn("t", sched.BigOnly).Exec(200*time.Millisecond, nil)
	eng.Run()
	for _, line := range strings.Split(p.Render(), "\n") {
		if len(line) > 140 {
			t.Fatalf("render line too wide (%d)", len(line))
		}
	}
}

func TestInstrumentAddsProbeOverheadOnDSP(t *testing.T) {
	// §III-D: 4-7% inference increase with hardware acceleration.
	m, _ := models.ByName("MobileNet 1.0 v1")
	run := func(instr bool) time.Duration {
		eng := sim.NewEngine()
		p := soc.Pixel3()
		dspRes := sim.NewResource(eng, "dsp", 1)
		ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
		var target driver.Target = driver.NewDSPTarget("dsp", &p.DSP, ch, 0.95, driver.SNPESupports)
		if instr {
			target = Instrument(target, eng)
		}
		var warm time.Duration
		target.Execute(m.Graph.Ops(), tensor.UInt8, func(driver.Result) {
			s := eng.Now()
			target.Execute(m.Graph.Ops(), tensor.UInt8, func(driver.Result) {
				warm = eng.Now().Sub(s)
			})
		})
		eng.Run()
		return warm
	}
	plain, probed := run(false), run(true)
	inc := float64(probed-plain) / float64(plain)
	if inc < 0.02 || inc > 0.08 {
		t.Fatalf("probe effect = %.1f%%, want ~4-7%% of compute", inc*100)
	}
}

func TestInstrumentLeavesCPUUntouched(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := soc.Pixel3()
	cpu := driver.NewCPUTarget("cpu", sch, &p.Big, 4)
	if Instrument(cpu, eng) != driver.Target(cpu) {
		t.Fatal("CPU target must pass through uninstrumented")
	}
}

func TestInstrumentedTargetDelegatesSupport(t *testing.T) {
	eng := sim.NewEngine()
	p := soc.Pixel3()
	dspRes := sim.NewResource(eng, "dsp", 1)
	ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
	inner := driver.NewDSPTarget("dsp", &p.DSP, ch, 0.95, driver.SNPESupports)
	w := Instrument(inner, eng)
	if w.Kind() != soc.DSP {
		t.Fatal("kind must pass through")
	}
	if !strings.Contains(w.Name(), "probe") {
		t.Fatal("instrumented name must be marked")
	}
	m, _ := models.ByName("MobileNet 1.0 v1")
	for _, op := range m.Graph.Ops() {
		if w.Supports(op, tensor.UInt8) != inner.Supports(op, tensor.UInt8) {
			t.Fatal("support matrix must pass through")
		}
	}
}

func TestTrackDerived(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := NewProfiler(eng, time.Millisecond)
	p.Attach(sch)
	level := 0.0
	p.TrackDerived("axi", func() float64 { return level })
	p.StartSampling(10 * time.Millisecond)
	eng.After(5*time.Millisecond, func() { level = 0.8 })
	eng.Run()
	samples := p.resources[0].samples
	if samples[0] != 0 {
		t.Fatal("initial gauge sample wrong")
	}
	high := 0
	for _, s := range samples {
		if s > 0.5 {
			high++
		}
	}
	if high == 0 {
		t.Fatal("gauge change not observed")
	}
	if !strings.Contains(p.Render(), "axi") {
		t.Fatal("derived row missing from render")
	}
}

func TestSampleGuardsZeroCapacity(t *testing.T) {
	// A zero-value resource (capacity 0) or a nil one must sample as
	// idle, not divide by zero into NaN.
	for _, tr := range []*trackedResource{
		{name: "zero", res: &sim.Resource{}},
		{name: "nil"},
	} {
		if got := tr.sample(); got != 0 {
			t.Fatalf("%s-capacity sample = %v, want 0", tr.name, got)
		}
	}
}

func TestInstrumentOverheadConfigurable(t *testing.T) {
	// The probe effect must sweep the paper's 4-7% range.
	m, _ := models.ByName("MobileNet 1.0 v1")
	run := func(overhead float64) time.Duration {
		eng := sim.NewEngine()
		p := soc.Pixel3()
		dspRes := sim.NewResource(eng, "dsp", 1)
		ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
		var target driver.Target = driver.NewDSPTarget("dsp", &p.DSP, ch, 0.95, driver.SNPESupports)
		target = InstrumentOverhead(target, eng, overhead)
		var warm time.Duration
		target.Execute(m.Graph.Ops(), tensor.UInt8, func(driver.Result) {
			s := eng.Now()
			target.Execute(m.Graph.Ops(), tensor.UInt8, func(driver.Result) {
				warm = eng.Now().Sub(s)
			})
		})
		eng.Run()
		return warm
	}
	plain := run(0)
	low := float64(run(0.04)-plain) / float64(plain)
	high := float64(run(0.07)-plain) / float64(plain)
	if low < 0.02 || low > 0.05 {
		t.Fatalf("4%% probe produced %.1f%% increase", low*100)
	}
	if high <= low || high > 0.08 {
		t.Fatalf("7%% probe produced %.1f%% increase (low=%.1f%%)", high*100, low*100)
	}
}

func TestInstrumentOverheadCPUAlwaysUnwrapped(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	p := soc.Pixel3()
	cpu := driver.NewCPUTarget("cpu", sch, &p.Big, 4)
	for _, ov := range []float64{0.04, 0.055, 0.07, 0.25} {
		if InstrumentOverhead(cpu, eng, ov) != driver.Target(cpu) {
			t.Fatalf("CPU target wrapped at overhead %v", ov)
		}
	}
	// Non-positive overhead disables the probe even on accelerators.
	dspRes := sim.NewResource(eng, "dsp", 1)
	ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
	dsp := driver.NewDSPTarget("dsp", &p.DSP, ch, 0.95, driver.SNPESupports)
	if InstrumentOverhead(dsp, eng, 0) != driver.Target(dsp) {
		t.Fatal("zero overhead must pass through unwrapped")
	}
}

func TestInstrumentedTargetRecordsTelemetry(t *testing.T) {
	m, _ := models.ByName("MobileNet 1.0 v1")
	eng := sim.NewEngine()
	p := soc.Pixel3()
	dspRes := sim.NewResource(eng, "dsp", 1)
	ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
	inner := driver.NewDSPTarget("dsp", &p.DSP, ch, 0.95, driver.SNPESupports)
	w := InstrumentOverhead(inner, eng, 0.055).(*InstrumentedTarget)
	w.Tracer = telemetry.NewTracer(eng.Now)
	w.Metrics = telemetry.NewRegistry()
	w.Execute(m.Graph.Ops(), tensor.UInt8, nil)
	eng.Run()
	if w.Metrics.Count("aitax_probe_overhead_ms") != 1 {
		t.Fatal("probe overhead not recorded in metrics")
	}
	spans := w.Tracer.Spans()
	if len(spans) != 1 || spans[0].Name != "probe" || spans[0].Duration() <= 0 {
		t.Fatalf("probe span missing or empty: %+v", spans)
	}
}
