// Package trace is the Snapdragon-Profiler stand-in: it records
// scheduler activity per core, samples accelerator occupancy, counts
// context switches and migrations, and renders Fig. 6-style utilization
// timelines. It also provides the driver-instrumentation wrapper whose
// 4-7% probe effect §III-D quantifies.
package trace

import (
	"fmt"
	"strings"
	"time"

	"aitax/internal/sched"
	"aitax/internal/sim"
)

type runEvent struct {
	core  int
	start sim.Time
	dur   time.Duration
}

type trackedResource struct {
	name    string
	res     *sim.Resource
	gauge   func() float64
	samples []float64
}

func (tr *trackedResource) sample() float64 {
	if tr.gauge != nil {
		return tr.gauge()
	}
	if tr.res == nil || tr.res.Capacity() == 0 {
		return 0
	}
	return float64(tr.res.InUse()) / float64(tr.res.Capacity())
}

// Profiler collects a timeline of core and accelerator activity.
type Profiler struct {
	eng *sim.Engine
	// Bucket is the timeline resolution.
	Bucket time.Duration

	cores      int
	runs       []runEvent
	migrations []sim.Time
	resources  []*trackedResource
	sampling   bool
}

// NewProfiler creates a profiler with the given timeline bucket.
func NewProfiler(eng *sim.Engine, bucket time.Duration) *Profiler {
	if bucket <= 0 {
		panic("trace: bucket must be positive")
	}
	return &Profiler{eng: eng, Bucket: bucket}
}

// Attach subscribes to a scheduler's events.
func (p *Profiler) Attach(s *sched.Scheduler) {
	p.cores = len(s.Cores())
	s.Subscribe(p)
}

// OnRun implements sched.Listener.
func (p *Profiler) OnRun(th *sched.Thread, core *sched.Core, start sim.Time, d time.Duration) {
	p.runs = append(p.runs, runEvent{core: core.ID, start: start, dur: d})
}

// OnMigrate implements sched.Listener.
func (p *Profiler) OnMigrate(th *sched.Thread, from, to *sched.Core, at sim.Time) {
	p.migrations = append(p.migrations, at)
}

// TrackResource samples a resource's occupancy each bucket while
// sampling is active (accelerators are not scheduler entities, so they
// are polled the way a profiler daemon polls sysfs counters).
func (p *Profiler) TrackResource(name string, res *sim.Resource) {
	p.resources = append(p.resources, &trackedResource{name: name, res: res})
}

// TrackDerived samples an arbitrary gauge in [0,1] each bucket — used
// for synthetic rows like AXI fabric traffic, which the Snapdragon
// Profiler derives from bus monitors rather than a schedulable unit.
func (p *Profiler) TrackDerived(name string, gauge func() float64) {
	p.resources = append(p.resources, &trackedResource{name: name, gauge: gauge})
}

// StartSampling begins periodic resource sampling for the given horizon
// of virtual time.
func (p *Profiler) StartSampling(horizon time.Duration) {
	if p.sampling {
		return
	}
	p.sampling = true
	deadline := p.eng.Now().Add(horizon)
	var tick func()
	tick = func() {
		for _, tr := range p.resources {
			tr.samples = append(tr.samples, tr.sample())
		}
		if p.eng.Now() < deadline {
			p.eng.After(p.Bucket, tick)
		} else {
			p.sampling = false
		}
	}
	tick()
}

// Migrations returns the number of observed migrations.
func (p *Profiler) Migrations() int { return len(p.migrations) }

// Horizon returns the end of recorded activity.
func (p *Profiler) Horizon() time.Duration {
	var end sim.Time
	for _, r := range p.runs {
		if e := r.start.Add(r.dur); e > end {
			end = e
		}
	}
	return end.Duration()
}

// buckets returns the number of timeline buckets covering the horizon.
func (p *Profiler) buckets() int {
	n := int(p.Horizon()/p.Bucket) + 1
	for _, tr := range p.resources {
		if len(tr.samples) > n {
			n = len(tr.samples)
		}
	}
	return n
}

// CoreUtilization returns per-bucket utilization of one core in [0,1].
func (p *Profiler) CoreUtilization(core int) []float64 {
	out := make([]float64, p.buckets())
	for _, r := range p.runs {
		if r.core != core {
			continue
		}
		spreadInterval(out, p.Bucket, r.start, r.dur)
	}
	for i := range out {
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}

// spreadInterval accumulates an interval's overlap into buckets.
func spreadInterval(buckets []float64, bucket time.Duration, start sim.Time, dur time.Duration) {
	t := start
	remaining := dur
	for remaining > 0 {
		idx := int(t.Duration() / bucket)
		if idx >= len(buckets) {
			return
		}
		bucketEnd := sim.Time((idx + 1) * int(bucket))
		span := bucketEnd.Sub(t)
		if span > remaining {
			span = remaining
		}
		buckets[idx] += float64(span) / float64(bucket)
		t = t.Add(span)
		remaining -= span
	}
}

// MigrationCounts returns per-bucket migration counts.
func (p *Profiler) MigrationCounts() []int {
	out := make([]int, p.buckets())
	for _, at := range p.migrations {
		idx := int(at.Duration() / p.Bucket)
		if idx < len(out) {
			out[idx]++
		}
	}
	return out
}

func utilizationGlyph(u float64) byte {
	switch {
	case u <= 0.02:
		return ' '
	case u < 0.25:
		return '.'
	case u < 0.5:
		return ':'
	case u < 0.75:
		return '+'
	default:
		return '#'
	}
}

// Render draws the Fig. 6-style timeline: one row per core, one row per
// tracked resource, and a migration row, with time left to right.
func (p *Profiler) Render() string {
	var b strings.Builder
	n := p.buckets()
	const maxCols = 120
	stride := 1
	if n > maxCols {
		stride = (n + maxCols - 1) / maxCols
	}
	fmt.Fprintf(&b, "timeline: %v per column, %v total\n", p.Bucket*time.Duration(stride), p.Horizon())
	for c := 0; c < p.cores; c++ {
		u := p.CoreUtilization(c)
		fmt.Fprintf(&b, "cpu%-2d |", c)
		for i := 0; i < n; i += stride {
			peak := 0.0
			for j := i; j < i+stride && j < n; j++ {
				if u[j] > peak {
					peak = u[j]
				}
			}
			b.WriteByte(utilizationGlyph(peak))
		}
		b.WriteString("|\n")
	}
	for _, tr := range p.resources {
		fmt.Fprintf(&b, "%-5s |", tr.name)
		for i := 0; i < n; i += stride {
			peak := 0.0
			for j := i; j < i+stride && j < len(tr.samples); j++ {
				if tr.samples[j] > peak {
					peak = tr.samples[j]
				}
			}
			b.WriteByte(utilizationGlyph(peak))
		}
		b.WriteString("|\n")
	}
	mig := p.MigrationCounts()
	b.WriteString("migr  |")
	for i := 0; i < n; i += stride {
		count := 0
		for j := i; j < i+stride && j < len(mig); j++ {
			count += mig[j]
		}
		switch {
		case count == 0:
			b.WriteByte(' ')
		case count < 3:
			b.WriteByte('.')
		case count < 8:
			b.WriteByte('x')
		default:
			b.WriteByte('X')
		}
	}
	b.WriteString("|\n")
	fmt.Fprintf(&b, "context: %d migrations\n", len(p.migrations))
	return b.String()
}
