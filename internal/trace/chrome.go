package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"aitax/internal/sched"
	"aitax/internal/sim"
)

// ChromeRecorder captures scheduler activity as Chrome trace events
// (the chrome://tracing / Perfetto JSON array format), giving the
// simulated system the same inspection affordance the Snapdragon
// Profiler gives real devices.
type ChromeRecorder struct {
	events []chromeEvent
}

type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds (X events)
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// NewChromeRecorder creates an empty recorder.
func NewChromeRecorder() *ChromeRecorder { return &ChromeRecorder{} }

// Attach subscribes to a scheduler's events.
func (c *ChromeRecorder) Attach(s *sched.Scheduler) { s.Subscribe(c) }

// OnRun implements sched.Listener: each slice becomes a complete ("X")
// event on the core's track.
func (c *ChromeRecorder) OnRun(th *sched.Thread, core *sched.Core, start sim.Time, d time.Duration) {
	c.events = append(c.events, chromeEvent{
		Name: th.Name,
		Cat:  "cpu",
		Ph:   "X",
		TS:   float64(start.Nanoseconds()) / 1e3,
		Dur:  float64(d) / 1e3,
		PID:  0,
		TID:  core.ID,
	})
}

// OnMigrate implements sched.Listener: migrations become instant ("i")
// events on the destination core's track.
func (c *ChromeRecorder) OnMigrate(th *sched.Thread, from, to *sched.Core, at sim.Time) {
	c.events = append(c.events, chromeEvent{
		Name: "migrate:" + th.Name,
		Cat:  "sched",
		Ph:   "i",
		TS:   float64(at.Nanoseconds()) / 1e3,
		PID:  0,
		TID:  to.ID,
		Args: map[string]string{"from": fmt.Sprintf("cpu%d", from.ID), "to": fmt.Sprintf("cpu%d", to.ID)},
	})
}

// MarkSpan records an arbitrary labelled span (e.g. a pipeline stage) on
// a synthetic track.
func (c *ChromeRecorder) MarkSpan(name, category string, track int, start sim.Time, d time.Duration) {
	c.events = append(c.events, chromeEvent{
		Name: name, Cat: category, Ph: "X",
		TS:  float64(start.Nanoseconds()) / 1e3,
		Dur: float64(d) / 1e3,
		PID: 1, TID: track,
	})
}

// Len reports the number of recorded events.
func (c *ChromeRecorder) Len() int { return len(c.events) }

// WriteJSON emits the trace in the Chrome trace-event JSON array format,
// sorted by timestamp for stable output.
func (c *ChromeRecorder) WriteJSON(w io.Writer) error {
	evs := append([]chromeEvent(nil), c.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	enc := json.NewEncoder(w)
	type wrapper struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	return enc.Encode(wrapper{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
