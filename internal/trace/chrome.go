package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/telemetry"
)

// Chrome-trace process IDs: scheduler activity and the pipeline's
// telemetry tracks render as two separate "processes" in Perfetto.
const (
	// PIDSched is the process carrying per-core scheduler slices
	// (tid = core ID).
	PIDSched = 0
	// PIDPipeline is the process carrying pipeline spans and counters
	// (tid = telemetry.Track).
	PIDPipeline = 1
)

// ChromeRecorder captures scheduler activity as Chrome trace events
// (the chrome://tracing / Perfetto JSON array format), giving the
// simulated system the same inspection affordance the Snapdragon
// Profiler gives real devices. Beyond scheduler slices it merges
// pipeline span trees and flow links (AddTelemetry), counter tracks
// (AddCounter / AddSpanOccupancy) and process/thread-name metadata into
// one Perfetto-loadable file.
type ChromeRecorder struct {
	events []chromeEvent
	meta   map[metaKey]string
}

type metaKey struct {
	pid, tid int
	kind     string // "process_name" or "thread_name"
}

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds (X events)
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"` // flow-event binding
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

// NewChromeRecorder creates an empty recorder.
func NewChromeRecorder() *ChromeRecorder {
	return &ChromeRecorder{meta: make(map[metaKey]string)}
}

// SetProcessName attaches a process_name metadata ("M") event, so
// Perfetto labels the pid's track group.
func (c *ChromeRecorder) SetProcessName(pid int, name string) {
	c.meta[metaKey{pid: pid, tid: 0, kind: "process_name"}] = name
}

// SetThreadName attaches a thread_name metadata ("M") event, so
// Perfetto shows "CPU big 0" or "Hexagon DSP" instead of a bare tid.
func (c *ChromeRecorder) SetThreadName(pid, tid int, name string) {
	c.meta[metaKey{pid: pid, tid: tid, kind: "thread_name"}] = name
}

// Attach subscribes to a scheduler's events and names the scheduler
// process and its per-core threads.
func (c *ChromeRecorder) Attach(s *sched.Scheduler) {
	s.Subscribe(c)
	c.SetProcessName(PIDSched, "cpu (sched)")
	for _, core := range s.Cores() {
		kind := "LITTLE"
		if core.Big {
			kind = "big"
		}
		c.SetThreadName(PIDSched, core.ID, fmt.Sprintf("CPU %s %d", kind, core.ID))
	}
}

// OnRun implements sched.Listener: each slice becomes a complete ("X")
// event on the core's track.
func (c *ChromeRecorder) OnRun(th *sched.Thread, core *sched.Core, start sim.Time, d time.Duration) {
	c.events = append(c.events, chromeEvent{
		Name: th.Name,
		Cat:  "cpu",
		Ph:   "X",
		TS:   float64(start.Nanoseconds()) / 1e3,
		Dur:  float64(d) / 1e3,
		PID:  PIDSched,
		TID:  core.ID,
	})
}

// OnMigrate implements sched.Listener: migrations become instant ("i")
// events on the destination core's track.
func (c *ChromeRecorder) OnMigrate(th *sched.Thread, from, to *sched.Core, at sim.Time) {
	c.events = append(c.events, chromeEvent{
		Name: "migrate:" + th.Name,
		Cat:  "sched",
		Ph:   "i",
		TS:   float64(at.Nanoseconds()) / 1e3,
		PID:  PIDSched,
		TID:  to.ID,
		Args: map[string]any{"from": fmt.Sprintf("cpu%d", from.ID), "to": fmt.Sprintf("cpu%d", to.ID)},
	})
}

// MarkSpan records an arbitrary labelled span (e.g. a pipeline stage) on
// a synthetic track of the pipeline process.
func (c *ChromeRecorder) MarkSpan(name, category string, track int, start sim.Time, d time.Duration) {
	c.events = append(c.events, chromeEvent{
		Name: name, Cat: category, Ph: "X",
		TS:  float64(start.Nanoseconds()) / 1e3,
		Dur: float64(d) / 1e3,
		PID: PIDPipeline, TID: track,
	})
}

// trackNames label the pipeline process's threads in Perfetto.
var trackNames = map[telemetry.Track]string{
	telemetry.TrackCPU: "pipeline (CPU)",
	telemetry.TrackDSP: "Hexagon DSP",
	telemetry.TrackGPU: "GPU",
}

// AddTelemetry merges a tracer's span tree and flow links into the
// trace: spans become complete ("X") events on the pipeline process's
// per-track threads, point-in-time spans marked instant=1 (thermal
// trips, delegate fallbacks, failed RPC calls) become instant ("i")
// events, and each flow becomes a start/finish ("s"/"f") event pair
// connecting its endpoints — the arrows that make FastRPC CPU↔DSP
// round-trips visible.
func (c *ChromeRecorder) AddTelemetry(spans []telemetry.Span, flows []telemetry.Flow) {
	c.SetProcessName(PIDPipeline, "ml pipeline")
	byID := make(map[int64]telemetry.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
		c.SetThreadName(PIDPipeline, int(s.Track), trackNames[s.Track])
		args := map[string]any{"span": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		instant := false
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
			if a.Key == "instant" && a.Value == "1" {
				instant = true
			}
		}
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Component,
			Ph:   "X",
			TS:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration()) / 1e3,
			PID:  PIDPipeline,
			TID:  int(s.Track),
			Args: args,
		}
		if instant {
			ev.Ph, ev.Dur = "i", 0
		}
		c.events = append(c.events, ev)
	}
	for _, f := range flows {
		from, okF := byID[f.From]
		to, okT := byID[f.To]
		if !okF || !okT {
			continue
		}
		c.events = append(c.events, chromeEvent{
			Name: f.Name, Cat: "flow", Ph: "s",
			TS:  float64(from.End.Nanoseconds()) / 1e3,
			PID: PIDPipeline, TID: int(from.Track), ID: f.ID,
		}, chromeEvent{
			Name: f.Name, Cat: "flow", Ph: "f", BP: "e",
			TS:  float64(to.Start.Nanoseconds()) / 1e3,
			PID: PIDPipeline, TID: int(to.Track), ID: f.ID,
		})
	}
}

// AddInstant appends a standalone instant ("i") event on the pipeline
// process — e.g. an SLO burn-rate alert firing mid-run.
func (c *ChromeRecorder) AddInstant(name, category string, at sim.Time, args map[string]any) {
	c.events = append(c.events, chromeEvent{
		Name: name, Cat: category, Ph: "i",
		TS:   float64(at.Nanoseconds()) / 1e3,
		PID:  PIDPipeline,
		Args: args,
	})
}

// AddCounter appends one sample to a counter ("C") track of the
// pipeline process.
func (c *ChromeRecorder) AddCounter(name string, at sim.Time, value float64) {
	c.events = append(c.events, chromeEvent{
		Name: name, Cat: "counter", Ph: "C",
		TS:  float64(at.Nanoseconds()) / 1e3,
		PID: PIDPipeline,
		Args: map[string]any{
			"value": value,
		},
	})
}

// AddSpanOccupancy derives a counter track from the spans on one
// telemetry track: the count of open spans at every boundary (for a
// capacity-1 device, its 0/1 occupancy). Deterministic — no sampling.
func (c *ChromeRecorder) AddSpanOccupancy(name string, spans []telemetry.Span, track telemetry.Track) {
	type step struct {
		at    sim.Time
		delta int
	}
	var steps []step
	for _, s := range spans {
		if s.Track != track || s.Duration() <= 0 {
			continue
		}
		steps = append(steps, step{s.Start, +1}, step{s.End, -1})
	}
	if len(steps) == 0 {
		return
	}
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].at != steps[j].at {
			return steps[i].at < steps[j].at
		}
		return steps[i].delta < steps[j].delta // close before open at ties
	})
	open := 0
	for i, st := range steps {
		open += st.delta
		if i+1 < len(steps) && steps[i+1].at == st.at {
			continue // emit only the final value at each timestamp
		}
		c.AddCounter(name, st.at, float64(open))
	}
}

// AddFaultCounters appends one final-value counter sample per fault
// series (the aitax_faults_* counters) at the run's end time, so a
// faulty trace shows injected/retry/fallback totals as counter tracks.
// Fault-free runs carry no such counters, so this adds nothing and the
// trace stays byte-identical.
func (c *ChromeRecorder) AddFaultCounters(reg *telemetry.Registry, at sim.Time) {
	for _, name := range reg.CounterNames() {
		if !strings.HasPrefix(name, "aitax_faults_") {
			continue
		}
		c.AddCounter(name, at, reg.Counter(name))
	}
}

// Len reports the number of recorded events (metadata excluded).
func (c *ChromeRecorder) Len() int { return len(c.events) }

// WriteJSON emits the trace in the Chrome trace-event JSON array
// format: metadata first (sorted by pid/tid), then events sorted by
// timestamp — stable, so identical runs serialize byte-identically.
func (c *ChromeRecorder) WriteJSON(w io.Writer) error {
	keys := make([]metaKey, 0, len(c.meta))
	for k := range c.meta {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.kind != b.kind {
			return a.kind < b.kind // process_name before thread_name
		}
		return a.tid < b.tid
	})
	evs := make([]chromeEvent, 0, len(keys)+len(c.events))
	for _, k := range keys {
		evs = append(evs, chromeEvent{
			Name: k.kind, Ph: "M", PID: k.pid, TID: k.tid,
			Args: map[string]any{"name": c.meta[k]},
		})
	}
	body := append([]chromeEvent(nil), c.events...)
	sort.SliceStable(body, func(i, j int) bool { return body[i].TS < body[j].TS })
	evs = append(evs, body...)
	enc := json.NewEncoder(w)
	type wrapper struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	return enc.Encode(wrapper{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
