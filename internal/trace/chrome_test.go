package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"aitax/internal/sched"
	"aitax/internal/sim"
)

func TestChromeRecorderCapturesRuns(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	rec := NewChromeRecorder()
	rec.Attach(sch)
	sch.Spawn("worker", sched.BigOnly).Exec(10*time.Millisecond, nil)
	sch.SpawnMigratory("floater", nil).Exec(10*time.Millisecond, nil)
	eng.Run()
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatal("missing display unit")
	}
	sawRun, sawMigrate := false, false
	lastTS := -1.0
	for _, e := range parsed.TraceEvents {
		if e.TS < lastTS {
			t.Fatal("events not sorted by timestamp")
		}
		lastTS = e.TS
		switch e.Ph {
		case "X":
			sawRun = true
			if e.Dur <= 0 {
				t.Fatal("complete event without duration")
			}
		case "i":
			sawMigrate = true
		}
	}
	if !sawRun {
		t.Fatal("no run spans in trace")
	}
	if !sawMigrate {
		t.Fatal("no migration markers in trace")
	}
}

func TestChromeMarkSpan(t *testing.T) {
	rec := NewChromeRecorder()
	rec.MarkSpan("pre-processing", "pipeline", 2, sim.Time(1000), time.Millisecond)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("pre-processing")) {
		t.Fatal("span missing from JSON")
	}
}
