package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/telemetry"
)

func TestChromeRecorderCapturesRuns(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	rec := NewChromeRecorder()
	rec.Attach(sch)
	sch.Spawn("worker", sched.BigOnly).Exec(10*time.Millisecond, nil)
	sch.SpawnMigratory("floater", nil).Exec(10*time.Millisecond, nil)
	eng.Run()
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatal("missing display unit")
	}
	sawRun, sawMigrate := false, false
	lastTS := -1.0
	for _, e := range parsed.TraceEvents {
		if e.TS < lastTS {
			t.Fatal("events not sorted by timestamp")
		}
		lastTS = e.TS
		switch e.Ph {
		case "X":
			sawRun = true
			if e.Dur <= 0 {
				t.Fatal("complete event without duration")
			}
		case "i":
			sawMigrate = true
		}
	}
	if !sawRun {
		t.Fatal("no run spans in trace")
	}
	if !sawMigrate {
		t.Fatal("no migration markers in trace")
	}
}

func TestChromeMarkSpan(t *testing.T) {
	rec := NewChromeRecorder()
	rec.MarkSpan("pre-processing", "pipeline", 2, sim.Time(1000), time.Millisecond)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("pre-processing")) {
		t.Fatal("span missing from JSON")
	}
}

func TestChromeMetadataNamesTracks(t *testing.T) {
	eng := sim.NewEngine()
	sch := sched.New(eng, sched.DefaultConfig())
	rec := NewChromeRecorder()
	rec.Attach(sch)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Ph != "M" {
			t.Fatalf("non-metadata event %q before metadata block exhausted? (only metadata expected here)", e.Name)
		}
		if n, ok := e.Args["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"cpu (sched)", "CPU big 0", "CPU LITTLE 4"} {
		if !names[want] {
			t.Fatalf("metadata missing %q (have %v)", want, names)
		}
	}
}

func TestChromeAddTelemetrySpansAndFlows(t *testing.T) {
	eng := sim.NewEngine()
	tr := telemetry.NewTracer(eng.Now)
	down := tr.Emit("rpc-down", "fastrpc", telemetry.TrackCPU, nil, sim.Time(0), sim.Time(1e6))
	exec := tr.Emit("infer", "fastrpc", telemetry.TrackDSP, nil, sim.Time(1e6), sim.Time(5e6))
	up := tr.Emit("rpc-up", "fastrpc", telemetry.TrackCPU, nil, sim.Time(5e6), sim.Time(6e6))
	tr.Link("fastrpc", down, exec)
	tr.Link("fastrpc", exec, up)

	rec := NewChromeRecorder()
	rec.AddTelemetry(tr.Spans(), tr.Flows())
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			BP   string         `json:"bp"`
			ID   int64          `json:"id"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	starts, finishes, dspSpans := 0, 0, 0
	threadNames := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "s":
			starts++
			if e.ID == 0 {
				t.Fatal("flow start without id")
			}
		case "f":
			finishes++
			if e.BP != "e" {
				t.Fatal("flow finish without bp=e")
			}
		case "X":
			if e.PID == PIDPipeline && e.TID == int(telemetry.TrackDSP) {
				dspSpans++
			}
		case "M":
			if n, ok := e.Args["name"].(string); ok {
				threadNames[n] = true
			}
		}
	}
	if starts != 2 || finishes != 2 {
		t.Fatalf("flow events: %d starts, %d finishes, want 2/2", starts, finishes)
	}
	if dspSpans != 1 {
		t.Fatalf("DSP-track spans = %d, want 1", dspSpans)
	}
	for _, want := range []string{"ml pipeline", "Hexagon DSP", "pipeline (CPU)"} {
		if !threadNames[want] {
			t.Fatalf("missing track name %q", want)
		}
	}
}

func TestChromeSpanOccupancyCounter(t *testing.T) {
	eng := sim.NewEngine()
	tr := telemetry.NewTracer(eng.Now)
	tr.Emit("infer", "fastrpc", telemetry.TrackDSP, nil, sim.Time(1e6), sim.Time(3e6))
	tr.Emit("infer", "fastrpc", telemetry.TrackDSP, nil, sim.Time(3e6), sim.Time(5e6))
	tr.Emit("pre", "app", telemetry.TrackCPU, nil, sim.Time(0), sim.Time(1e6))

	rec := NewChromeRecorder()
	rec.AddSpanOccupancy("dsp busy", tr.Spans(), telemetry.TrackDSP)
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	// Expect steps: 1ms→1, 3ms→1 (close+open collapse), 5ms→0.
	var got []float64
	for _, e := range parsed.TraceEvents {
		if e.Ph != "C" {
			continue
		}
		if e.Name != "dsp busy" {
			t.Fatalf("counter name %q", e.Name)
		}
		got = append(got, e.Args["value"].(float64))
	}
	want := []float64{1, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("counter steps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counter steps = %v, want %v", got, want)
		}
	}
}

func TestChromeInstantSpansAndFaultCounters(t *testing.T) {
	eng := sim.NewEngine()
	tr := telemetry.NewTracer(eng.Now)
	tr.Emit("infer", "fastrpc", telemetry.TrackDSP, nil, sim.Time(0), sim.Time(2e6))
	tr.Instant("thermal-trip", "faults", telemetry.TrackDSP, nil, sim.Time(2e6))

	reg := telemetry.NewRegistry()
	reg.Add(`aitax_faults_injected_total{site="rpc-timeout"}`, 3)
	reg.Add("aitax_faults_retries_total", 2)
	reg.Add("aitax_frames_total", 7) // not a fault counter; must not render

	rec := NewChromeRecorder()
	rec.AddTelemetry(tr.Spans(), tr.Flows())
	rec.AddFaultCounters(reg, sim.Time(3e6))
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	counters := map[string]float64{}
	sawTrip := false
	for _, e := range parsed.TraceEvents {
		switch {
		case e.Name == "thermal-trip":
			sawTrip = true
			if e.Ph != "i" || e.Dur != 0 {
				t.Fatalf("instant span rendered as ph=%q dur=%v, want i/0", e.Ph, e.Dur)
			}
		case e.Ph == "C":
			v, _ := e.Args["value"].(float64)
			counters[e.Name] = v
		}
	}
	if !sawTrip {
		t.Fatal("thermal-trip instant event missing")
	}
	if counters[`aitax_faults_injected_total{site="rpc-timeout"}`] != 3 ||
		counters["aitax_faults_retries_total"] != 2 {
		t.Fatalf("fault counter tracks wrong: %v", counters)
	}
	if _, ok := counters["aitax_frames_total"]; ok {
		t.Fatal("non-fault counter leaked into fault counter tracks")
	}
}
