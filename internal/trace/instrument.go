package trace

import (
	"time"

	"aitax/internal/driver"
	"aitax/internal/nn"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
	"aitax/internal/tensor"
)

// DefaultProbeOverhead is the default fractional probe cost — the middle
// of the paper's measured 4-7% range.
const DefaultProbeOverhead = 0.055

// InstrumentedTarget wraps a delegate with driver instrumentation, the
// measurement hooks §III-D quantifies: enabling them adds a 4-7%
// inference-time overhead on hardware-accelerated paths and none on CPU
// paths (the CPU probes ride existing perf counters).
type InstrumentedTarget struct {
	Inner driver.Target
	Eng   *sim.Engine
	// Overhead is the fractional compute-time cost (default ~5.5%).
	Overhead float64
	// Tracer, when set, records each probe charge as a span.
	Tracer *telemetry.Tracer
	// Metrics, when set, accumulates probe overhead observations.
	Metrics *telemetry.Registry
}

// Instrument wraps a target with the default probe overhead. CPU targets
// are returned unwrapped, matching the paper's observation that the
// instrumentation "has no effect on pre-processing or inference
// performed on the CPU".
func Instrument(t driver.Target, eng *sim.Engine) driver.Target {
	return InstrumentOverhead(t, eng, DefaultProbeOverhead)
}

// InstrumentOverhead wraps a target with an explicit fractional probe
// overhead, covering the paper's 4-7% range. CPU targets are always
// returned unwrapped, and a non-positive overhead disables wrapping
// entirely.
func InstrumentOverhead(t driver.Target, eng *sim.Engine, overhead float64) driver.Target {
	if overhead <= 0 {
		return t
	}
	if t.Kind() == soc.CPUBig || t.Kind() == soc.CPULittle {
		return t
	}
	return &InstrumentedTarget{Inner: t, Eng: eng, Overhead: overhead}
}

// Name implements driver.Target.
func (t *InstrumentedTarget) Name() string { return t.Inner.Name() + "+probe" }

// Kind implements driver.Target.
func (t *InstrumentedTarget) Kind() soc.Kind { return t.Inner.Kind() }

// Supports implements driver.Target.
func (t *InstrumentedTarget) Supports(op *nn.Op, dt tensor.DType) bool {
	return t.Inner.Supports(op, dt)
}

// Execute implements driver.Target: the inner execution runs, then the
// probe's logging/timestamping cost is charged proportionally.
func (t *InstrumentedTarget) Execute(ops []*nn.Op, dt tensor.DType, done func(driver.Result)) {
	t.ExecuteSpan(ops, dt, nil, done)
}

// OpCosts implements driver.Coster when the inner target does: the
// probe charge is proportional to measured compute, so the schedule is
// the inner target's unchanged.
func (t *InstrumentedTarget) OpCosts(ops []*nn.Op, dt tensor.DType) []time.Duration {
	if c, ok := t.Inner.(driver.Coster); ok {
		return c.OpCosts(ops, dt)
	}
	return nil
}

// ExecuteSpan implements driver.SpanExecutor: the parent span flows
// through to the inner target, and the probe charge itself becomes a
// "probe" span under it.
func (t *InstrumentedTarget) ExecuteSpan(ops []*nn.Op, dt tensor.DType, parent *telemetry.ActiveSpan, done func(driver.Result)) {
	t.ExecuteCosted(ops, nil, dt, parent, done)
}

// ExecuteCosted implements driver.CostedExecutor, forwarding the
// schedule to the inner target.
func (t *InstrumentedTarget) ExecuteCosted(ops []*nn.Op, costs []time.Duration, dt tensor.DType, parent *telemetry.ActiveSpan, done func(driver.Result)) {
	driver.ExecuteCosted(t.Inner, ops, costs, dt, parent, func(res driver.Result) {
		extra := time.Duration(float64(res.Compute) * t.Overhead)
		start := t.Eng.Now()
		t.Eng.After(extra, func() {
			t.Tracer.Emit("probe", "driver", telemetry.TrackCPU, parent, start, t.Eng.Now())
			t.Metrics.Observe("aitax_probe_overhead_ms", float64(extra)/float64(time.Millisecond))
			res.Overhead += extra
			if done != nil {
				done(res)
			}
		})
	})
}
