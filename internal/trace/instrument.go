package trace

import (
	"time"

	"aitax/internal/driver"
	"aitax/internal/nn"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

// InstrumentedTarget wraps a delegate with driver instrumentation, the
// measurement hooks §III-D quantifies: enabling them adds a 4-7%
// inference-time overhead on hardware-accelerated paths and none on CPU
// paths (the CPU probes ride existing perf counters).
type InstrumentedTarget struct {
	Inner driver.Target
	Eng   *sim.Engine
	// Overhead is the fractional compute-time cost (default ~5.5%).
	Overhead float64
}

// Instrument wraps a target with the default probe overhead. CPU targets
// are returned unwrapped, matching the paper's observation that the
// instrumentation "has no effect on pre-processing or inference
// performed on the CPU".
func Instrument(t driver.Target, eng *sim.Engine) driver.Target {
	if t.Kind() == soc.CPUBig || t.Kind() == soc.CPULittle {
		return t
	}
	return &InstrumentedTarget{Inner: t, Eng: eng, Overhead: 0.055}
}

// Name implements driver.Target.
func (t *InstrumentedTarget) Name() string { return t.Inner.Name() + "+probe" }

// Kind implements driver.Target.
func (t *InstrumentedTarget) Kind() soc.Kind { return t.Inner.Kind() }

// Supports implements driver.Target.
func (t *InstrumentedTarget) Supports(op *nn.Op, dt tensor.DType) bool {
	return t.Inner.Supports(op, dt)
}

// Execute implements driver.Target: the inner execution runs, then the
// probe's logging/timestamping cost is charged proportionally.
func (t *InstrumentedTarget) Execute(ops []*nn.Op, dt tensor.DType, done func(driver.Result)) {
	t.Inner.Execute(ops, dt, func(res driver.Result) {
		extra := time.Duration(float64(res.Compute) * t.Overhead)
		t.Eng.After(extra, func() {
			res.Overhead += extra
			if done != nil {
				done(res)
			}
		})
	})
}
