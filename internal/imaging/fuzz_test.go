package imaging

import (
	"bytes"
	"testing"

	"aitax/internal/par"
)

// FuzzYUVConversion drives the NV21 decode with arbitrary plane bytes:
// it must never panic and must fill every output pixel with an opaque
// color.
// fillCyclic fills dst from src repeated, or a fixed pattern when src is
// empty, so fuzz inputs of any length exercise the full plane.
func fillCyclic(dst, src []byte) {
	if len(src) == 0 {
		for i := range dst {
			dst[i] = byte(i*37 + 11)
		}
		return
	}
	for i := range dst {
		dst[i] = src[i%len(src)]
	}
}

// FuzzYUVToARGBSwarBitExact checks the SWAR decode against the scalar
// BT.601 reference over fuzzed plane bytes (including out-of-gamut
// chroma that forces the clamp fallback path) and over widths covering
// every w%8 tail lane.
func FuzzYUVToARGBSwarBitExact(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{128, 16, 235}, []byte{0, 255})
	f.Add(uint8(3), uint8(1), []byte{255}, []byte{0})
	f.Add(uint8(8), uint8(2), []byte{}, []byte{77, 200})
	f.Fuzz(func(t *testing.T, w8, h8 uint8, y, vu []byte) {
		w := 2 + 2*int(w8%17) // even widths 2..34: all tail lanes
		h := 2 + 2*int(h8%4)
		src := NewYUV(w, h)
		fillCyclic(src.Y, y)
		fillCyclic(src.VU, vu)
		want := scalarYUVToARGB(src)
		got := YUVToARGB(src)
		if !bytes.Equal(pixBytes(got), pixBytes(want)) {
			t.Fatalf("%dx%d: SWAR decode differs from scalar reference", w, h)
		}
	})
}

// FuzzARGBToYUVSwarBitExact checks the SWAR encode against the scalar
// reference over fuzzed pixel bytes and tail-lane-covering widths.
func FuzzARGBToYUVSwarBitExact(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{0xFF, 0x00, 0x80})
	f.Add(uint8(5), uint8(2), []byte{})
	f.Add(uint8(12), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, w8, h8 uint8, pix []byte) {
		w := 2 + 2*int(w8%17)
		h := 2 + 2*int(h8%4)
		src := NewARGB(w, h)
		raw := make([]byte, w*h*4)
		fillCyclic(raw, pix)
		for i := range src.Pix {
			src.Pix[i] = uint32(raw[i*4])<<24 | uint32(raw[i*4+1])<<16 |
				uint32(raw[i*4+2])<<8 | uint32(raw[i*4+3])
		}
		want := scalarARGBToYUV(src)
		got := ARGBToYUV(src)
		if !bytes.Equal(got.Y, want.Y) || !bytes.Equal(got.VU, want.VU) {
			t.Fatalf("%dx%d: SWAR encode differs from scalar reference", w, h)
		}
	})
}

// TestSwarKernelsAllTailLanes sweeps every even width 2..34 (so every
// w%8 tail lane) at several worker counts, pinning both SWAR conversions
// bit-exact against the scalar references regardless of how par splits
// the rows.
func TestSwarKernelsAllTailLanes(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	for _, workers := range []int{1, 2, 3, 8} {
		par.SetWorkers(workers)
		for w := 2; w <= 34; w += 2 {
			for _, h := range []int{2, 6} {
				frame := NewYUV(w, h)
				for i := range frame.Y {
					frame.Y[i] = byte(i*31 + 7)
				}
				for i := range frame.VU {
					frame.VU[i] = byte(i*53 + 3) // spans out-of-gamut chroma
				}
				want := scalarYUVToARGB(frame)
				got := YUVToARGB(frame)
				if !bytes.Equal(pixBytes(got), pixBytes(want)) {
					t.Fatalf("decode %dx%d @%d workers differs", w, h, workers)
				}
				scene := NewARGB(w, h)
				for i := range scene.Pix {
					scene.Pix[i] = uint32(i*2654435761 + 97)
				}
				wantYUV := scalarARGBToYUV(scene)
				gotYUV := ARGBToYUV(scene)
				if !bytes.Equal(gotYUV.Y, wantYUV.Y) || !bytes.Equal(gotYUV.VU, wantYUV.VU) {
					t.Fatalf("encode %dx%d @%d workers differs", w, h, workers)
				}
			}
		}
	}
}

// TestEncodeBytesNeverClamp exhaustively proves the claim that lets the
// encode helpers skip clamping: over the entire 2^24 RGB cube the luma
// and chroma bytes stay inside [0, 255] (luma in [16, 235], chroma in
// [16, 240]), so dropping clampU8 cannot change any output byte. A
// negative intermediate would sign-extend into a huge uint64 and fail
// the < 256 check.
func TestEncodeBytesNeverClamp(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive RGB cube sweep")
	}
	for r := 0; r < 256; r++ {
		for g := 0; g < 256; g++ {
			for b := 0; b < 256; b++ {
				p := uint32(r)<<16 | uint32(g)<<8 | uint32(b)
				if y := lumaByte(p); y < 16 || y > 235 {
					t.Fatalf("luma %d out of range for rgb(%d,%d,%d)", y, r, g, b)
				}
				if v := vByte(p); v > 255 {
					t.Fatalf("V %d out of range for rgb(%d,%d,%d)", v, r, g, b)
				}
				if u := uByte(p); u > 255 {
					t.Fatalf("U %d out of range for rgb(%d,%d,%d)", u, r, g, b)
				}
			}
		}
	}
}

func FuzzYUVConversion(f *testing.F) {
	f.Add([]byte{128, 128, 128, 128}, []byte{128, 128})
	f.Add([]byte{0, 255, 16, 235}, []byte{255, 0})
	f.Fuzz(func(t *testing.T, y, vu []byte) {
		const w, h = 4, 4
		img := NewYUV(w, h)
		copy(img.Y, y)
		copy(img.VU, vu)
		out := YUVToARGB(img)
		if out.Width != w || out.Height != h {
			t.Fatal("dims wrong")
		}
		for _, p := range out.Pix {
			if p>>24 != 0xFF {
				t.Fatalf("non-opaque pixel %#x", p)
			}
		}
	})
}
