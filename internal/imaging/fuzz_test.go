package imaging

import "testing"

// FuzzYUVConversion drives the NV21 decode with arbitrary plane bytes:
// it must never panic and must fill every output pixel with an opaque
// color.
func FuzzYUVConversion(f *testing.F) {
	f.Add([]byte{128, 128, 128, 128}, []byte{128, 128})
	f.Add([]byte{0, 255, 16, 235}, []byte{255, 0})
	f.Fuzz(func(t *testing.T, y, vu []byte) {
		const w, h = 4, 4
		img := NewYUV(w, h)
		copy(img.Y, y)
		copy(img.VU, vu)
		out := YUVToARGB(img)
		if out.Width != w || out.Height != h {
			t.Fatal("dims wrong")
		}
		for _, p := range out.Pix {
			if p>>24 != 0xFF {
				t.Fatalf("non-opaque pixel %#x", p)
			}
		}
	})
}
