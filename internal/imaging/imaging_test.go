package imaging

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewYUVSizes(t *testing.T) {
	img := NewYUV(640, 480)
	if len(img.Y) != 640*480 {
		t.Fatalf("Y plane = %d, want %d", len(img.Y), 640*480)
	}
	if len(img.VU) != 640*480/2 {
		t.Fatalf("VU plane = %d, want %d", len(img.VU), 640*480/2)
	}
	if img.Bytes() != 640*480*3/2 {
		t.Fatalf("bytes = %d, want 1.5/px", img.Bytes())
	}
}

func TestNewYUVRejectsOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd dimensions must panic")
		}
	}()
	NewYUV(641, 480)
}

func TestARGBAccessors(t *testing.T) {
	img := NewARGB(10, 10)
	img.Set(3, 4, PackRGB(1, 2, 3))
	if img.At(3, 4) != 0xFF010203 {
		t.Fatalf("pixel = %#x", img.At(3, 4))
	}
	r, g, b := RGB(img.At(3, 4))
	if r != 1 || g != 2 || b != 3 {
		t.Fatalf("unpack = %d,%d,%d", r, g, b)
	}
	if img.Bytes() != 400 {
		t.Fatalf("bytes = %d, want 400", img.Bytes())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		rr, gg, bb := RGB(PackRGB(r, g, b))
		return rr == r && gg == g && bb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYUVToARGBGray(t *testing.T) {
	// A mid-gray NV21 frame (Y=128, U=V=128) must decode to mid gray.
	src := NewYUV(16, 16)
	for i := range src.Y {
		src.Y[i] = 128
	}
	for i := range src.VU {
		src.VU[i] = 128
	}
	dst := YUVToARGB(src)
	r, g, b := RGB(dst.At(8, 8))
	for _, c := range []uint8{r, g, b} {
		if c < 120 || c > 140 {
			t.Fatalf("gray decode = %d,%d,%d, want ~130", r, g, b)
		}
	}
}

func TestYUVToARGBBlackWhite(t *testing.T) {
	src := NewYUV(4, 4)
	for i := range src.VU {
		src.VU[i] = 128
	}
	for i := range src.Y {
		src.Y[i] = 16 // video black
	}
	if r, g, b := RGB(YUVToARGB(src).At(0, 0)); r > 5 || g > 5 || b > 5 {
		t.Fatalf("black decode = %d,%d,%d", r, g, b)
	}
	for i := range src.Y {
		src.Y[i] = 235 // video white
	}
	if r, g, b := RGB(YUVToARGB(src).At(0, 0)); r < 250 || g < 250 || b < 250 {
		t.Fatalf("white decode = %d,%d,%d", r, g, b)
	}
}

func TestRGBYUVRoundTripWithinQuantization(t *testing.T) {
	// Converting ARGB -> NV21 -> ARGB must stay within chroma subsampling
	// plus rounding error for a chroma-flat image.
	img := NewARGB(32, 32)
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			v := uint8(32 + (i+j)*3)
			img.Set(i, j, PackRGB(v, v, v)) // gray ramp: no chroma
		}
	}
	back := YUVToARGB(ARGBToYUV(img))
	var worst float64
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			r0, g0, b0 := RGB(img.At(i, j))
			r1, g1, b1 := RGB(back.At(i, j))
			for _, d := range []float64{
				math.Abs(float64(r0) - float64(r1)),
				math.Abs(float64(g0) - float64(g1)),
				math.Abs(float64(b0) - float64(b1)),
			} {
				if d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 8 {
		t.Fatalf("round-trip worst channel error %v > 8", worst)
	}
}

func TestSyntheticSceneDeterministic(t *testing.T) {
	a := SyntheticScene(64, 48, 7)
	b := SyntheticScene(64, 48, 7)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different scenes")
		}
	}
	c := SyntheticScene(64, 48, 8)
	diff := 0
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical scenes")
	}
}

func TestSyntheticSceneNotFlat(t *testing.T) {
	img := SyntheticScene(64, 64, 3)
	seen := map[uint32]bool{}
	for _, p := range img.Pix {
		seen[p] = true
	}
	if len(seen) < 100 {
		t.Fatalf("scene too flat: %d distinct colors", len(seen))
	}
}

func TestSyntheticFrameDims(t *testing.T) {
	f := SyntheticFrame(639, 479, 1) // odd dims must be floored to even
	if f.Width != 638 || f.Height != 478 {
		t.Fatalf("frame dims = %dx%d", f.Width, f.Height)
	}
}

func TestClampU8(t *testing.T) {
	if clampU8(-5) != 0 || clampU8(300) != 255 || clampU8(42) != 42 {
		t.Fatal("clamp broken")
	}
}

func TestWritePPM(t *testing.T) {
	img := SyntheticScene(16, 12, 1)
	var buf bytes.Buffer
	if err := WritePPM(img, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P6\n16 12\n255\n")) {
		t.Fatalf("ppm header wrong: %q", out[:20])
	}
	header := len("P6\n16 12\n255\n")
	if len(out) != header+16*12*3 {
		t.Fatalf("ppm payload = %d bytes", len(out)-header)
	}
	// First pixel round-trips.
	r, g, b := RGB(img.At(0, 0))
	if out[header] != r || out[header+1] != g || out[header+2] != b {
		t.Fatal("first pixel mismatch")
	}
}

func TestMaskToImage(t *testing.T) {
	mask := []int{0, 1, 2, 1}
	img := MaskToImage(mask, 2, 2, nil)
	if img.At(0, 0) != MaskPalette()[0] {
		t.Fatal("background color wrong")
	}
	if img.At(1, 0) == img.At(0, 1) && mask[1] != mask[2] {
		t.Fatal("distinct classes must differ in color")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch must panic")
		}
	}()
	MaskToImage(mask, 3, 3, nil)
}

func TestMaskPaletteDistinct(t *testing.T) {
	p := MaskPalette()
	if len(p) != 21 {
		t.Fatalf("palette size = %d", len(p))
	}
	seen := map[uint32]int{}
	for i, c := range p {
		if j, dup := seen[c]; dup {
			t.Fatalf("classes %d and %d share color %#x", i, j, c)
		}
		seen[c] = i
	}
}

// scalarYUVToARGB is the pre-table reference implementation of the BT.601
// NV21 decode, kept verbatim so the coefficient-table kernel is pinned
// bit-exact against it.
func scalarYUVToARGB(src *YUVImage) *ARGBImage {
	w, h := src.Width, src.Height
	dst := NewARGB(w, h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			y := int(src.Y[j*w+i]) - 16
			if y < 0 {
				y = 0
			}
			vuIdx := (j/2)*w + i&^1
			v := int(src.VU[vuIdx]) - 128
			u := int(src.VU[vuIdx+1]) - 128
			y1192 := 1192 * y
			r := clampU8((y1192 + 1634*v) >> 10)
			g := clampU8((y1192 - 833*v - 400*u) >> 10)
			b := clampU8((y1192 + 2066*u) >> 10)
			dst.Pix[j*w+i] = PackRGB(r, g, b)
		}
	}
	return dst
}

// scalarARGBToYUV is the pre-table reference for the NV21 encode.
func scalarARGBToYUV(src *ARGBImage) *YUVImage {
	dst := NewYUV(src.Width&^1, src.Height&^1)
	w, h := dst.Width, dst.Height
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			r, g, b := RGB(src.Pix[j*src.Width+i])
			y := (66*int(r) + 129*int(g) + 25*int(b) + 128) >> 8
			dst.Y[j*w+i] = clampU8(y + 16)
			if j%2 == 0 && i%2 == 0 {
				u := (-38*int(r) - 74*int(g) + 112*int(b) + 128) >> 8
				v := (112*int(r) - 94*int(g) - 18*int(b) + 128) >> 8
				dst.VU[(j/2)*w+i] = clampU8(v + 128)
				dst.VU[(j/2)*w+i+1] = clampU8(u + 128)
			}
		}
	}
	return dst
}

func TestYUVToARGBMatchesScalarReference(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		src := SyntheticFrame(118, 74, seed)
		// Exercise the full byte range, including out-of-gamut chroma.
		for i := range src.Y {
			src.Y[i] = byte((int(src.Y[i]) * 7) % 256)
		}
		for i := range src.VU {
			src.VU[i] = byte((int(src.VU[i])*11 + 3) % 256)
		}
		want := scalarYUVToARGB(src)
		got := YUVToARGB(src)
		if !bytes.Equal(pixBytes(got), pixBytes(want)) {
			t.Fatalf("seed %d: table kernel differs from scalar reference", seed)
		}
	}
}

func TestARGBToYUVMatchesScalarReference(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		src := SyntheticScene(118, 74, seed)
		want := scalarARGBToYUV(src)
		got := ARGBToYUV(src)
		if !bytes.Equal(got.Y, want.Y) || !bytes.Equal(got.VU, want.VU) {
			t.Fatalf("seed %d: table kernel differs from scalar reference", seed)
		}
	}
}

func pixBytes(img *ARGBImage) []byte {
	out := make([]byte, 0, len(img.Pix)*4)
	for _, p := range img.Pix {
		out = append(out, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
	}
	return out
}
