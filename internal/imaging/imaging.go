// Package imaging implements the image buffer formats that the Android
// camera pipeline produces and the conversions between them. These are
// real implementations, not cost stubs: the YUV→ARGB conversion here is
// the "bitmap formatting" pre-processing step the paper measures.
package imaging

import (
	"fmt"

	"aitax/internal/sim"
)

// YUVImage is a camera frame in the YUV 4:2:0 NV21 layout used by the
// Android Camera API: a full-resolution Y plane followed by an interleaved
// VU plane at quarter resolution.
type YUVImage struct {
	Width, Height int
	Y             []byte // len = Width*Height
	VU            []byte // len = Width*Height/2, pairs of (V, U)
}

func checkYUVDims(width, height int) {
	if width <= 0 || height <= 0 || width%2 != 0 || height%2 != 0 {
		panic(fmt.Sprintf("imaging: invalid NV21 dimensions %dx%d", width, height))
	}
}

// NewYUV allocates a black NV21 frame. Width and height must be even.
func NewYUV(width, height int) *YUVImage {
	checkYUVDims(width, height)
	return &YUVImage{
		Width:  width,
		Height: height,
		Y:      make([]byte, width*height),
		VU:     make([]byte, width*height/2),
	}
}

// Bytes returns the frame size in bytes (1.5 bytes/pixel).
func (img *YUVImage) Bytes() int { return len(img.Y) + len(img.VU) }

// ARGBImage is a packed 32-bit ARGB_8888 bitmap, the standard Android
// Bitmap configuration.
type ARGBImage struct {
	Width, Height int
	Pix           []uint32 // 0xAARRGGBB
}

func checkARGBDims(width, height int) {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("imaging: invalid ARGB dimensions %dx%d", width, height))
	}
}

// NewARGB allocates a transparent-black ARGB bitmap.
func NewARGB(width, height int) *ARGBImage {
	checkARGBDims(width, height)
	return &ARGBImage{Width: width, Height: height, Pix: make([]uint32, width*height)}
}

// Bytes returns the bitmap size in bytes (4 bytes/pixel).
func (img *ARGBImage) Bytes() int { return len(img.Pix) * 4 }

// At returns the pixel at (x, y).
func (img *ARGBImage) At(x, y int) uint32 { return img.Pix[y*img.Width+x] }

// Set stores the pixel at (x, y).
func (img *ARGBImage) Set(x, y int, p uint32) { img.Pix[y*img.Width+x] = p }

// RGB unpacks a pixel into its 8-bit channels.
func RGB(p uint32) (r, g, b uint8) {
	return uint8(p >> 16), uint8(p >> 8), uint8(p)
}

// PackRGB builds an opaque ARGB pixel from 8-bit channels.
func PackRGB(r, g, b uint8) uint32 {
	return 0xFF000000 | uint32(r)<<16 | uint32(g)<<8 | uint32(b)
}

func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// YUVToARGB converts an NV21 frame to an ARGB_8888 bitmap using the BT.601
// integer conversion the Android framework applies. This is the real work
// the "bitmap formatting" stage performs.
func YUVToARGB(src *YUVImage) *ARGBImage {
	return YUVToARGBInto(NewARGB(src.Width, src.Height), src)
}

// YUVToARGBInto is the in-place variant of YUVToARGB: it converts into
// dst (resized to match src) and allocates nothing when dst's backing
// array is already large enough. Returns dst.
func YUVToARGBInto(dst *ARGBImage, src *YUVImage) *ARGBImage {
	w, h := src.Width, src.Height
	dst.Resize(w, h)
	for j := 0; j < h; j++ {
		yRow := src.Y[j*w : j*w+w]
		vuRow := src.VU[(j/2)*w : (j/2)*w+w]
		out := dst.Pix[j*w : j*w+w]
		for i := 0; i < w; i++ {
			y := int(yRow[i]) - 16
			if y < 0 {
				y = 0
			}
			vuIdx := i &^ 1
			v := int(vuRow[vuIdx]) - 128
			u := int(vuRow[vuIdx+1]) - 128
			y1192 := 1192 * y
			r := clampU8((y1192 + 1634*v) >> 10)
			g := clampU8((y1192 - 833*v - 400*u) >> 10)
			b := clampU8((y1192 + 2066*u) >> 10)
			out[i] = PackRGB(r, g, b)
		}
	}
	return dst
}

// ARGBToYUV converts a bitmap back to NV21 (BT.601). Used by tests to
// verify the conversion round-trips within quantization error, and by the
// capture pipeline to synthesize sensor frames from procedural bitmaps.
func ARGBToYUV(src *ARGBImage) *YUVImage {
	return ARGBToYUVInto(NewYUV(src.Width&^1, src.Height&^1), src)
}

// ARGBToYUVInto is the in-place variant of ARGBToYUV: it converts into
// dst (resized to src's even dimensions) and allocates nothing when
// dst's backing arrays are already large enough. Returns dst.
func ARGBToYUVInto(dst *YUVImage, src *ARGBImage) *YUVImage {
	dst.Resize(src.Width&^1, src.Height&^1)
	w, h := dst.Width, dst.Height
	for j := 0; j < h; j++ {
		srcRow := src.Pix[j*src.Width : j*src.Width+w]
		yRow := dst.Y[j*w : j*w+w]
		if j%2 == 0 {
			vuRow := dst.VU[(j/2)*w : (j/2)*w+w]
			for i := 0; i < w; i++ {
				r, g, b := RGB(srcRow[i])
				y := (66*int(r) + 129*int(g) + 25*int(b) + 128) >> 8
				yRow[i] = clampU8(y + 16)
				if i%2 == 0 {
					u := (-38*int(r) - 74*int(g) + 112*int(b) + 128) >> 8
					v := (112*int(r) - 94*int(g) - 18*int(b) + 128) >> 8
					vuRow[i] = clampU8(v + 128)
					vuRow[i+1] = clampU8(u + 128)
				}
			}
		} else {
			for i := 0; i < w; i++ {
				r, g, b := RGB(srcRow[i])
				y := (66*int(r) + 129*int(g) + 25*int(b) + 128) >> 8
				yRow[i] = clampU8(y + 16)
			}
		}
	}
	return dst
}

// SyntheticScene deterministically paints a procedural test frame:
// a smooth two-axis gradient background with rectangles and a disc, plus
// seeded per-pixel noise. Content is irrelevant to pre-processing cost,
// but structured frames give post-processing stages non-trivial inputs.
func SyntheticScene(width, height int, seed uint64) *ARGBImage {
	return SyntheticSceneInto(GetARGB(width, height), seed)
}

// SyntheticSceneInto paints the procedural scene into dst, overwriting
// every pixel. The pixel content for a given (dimensions, seed) pair is
// identical to SyntheticScene's. Returns dst.
func SyntheticSceneInto(dst *ARGBImage, seed uint64) *ARGBImage {
	rng := sim.NewRNG(seed)
	img := dst
	width, height := img.Width, img.Height
	// Gradient background. The channel values depend only on the column
	// (r), row (g) and diagonal (b), so the integer divisions are hoisted
	// into per-axis tables and each pixel is an OR of prepacked parts.
	rCol := make([]uint32, width)
	bDiag := make([]uint32, width+height)
	for i := 0; i < width; i++ {
		rCol[i] = uint32(uint8(255*i/width)) << 16
	}
	for s := 0; s < width+height; s++ {
		bDiag[s] = uint32(uint8(s * 255 / (width + height)))
	}
	for j := 0; j < height; j++ {
		gRow := 0xFF000000 | uint32(uint8(255*j/height))<<8
		row := img.Pix[j*width : j*width+width]
		diag := bDiag[j : j+width]
		for i := range row {
			row[i] = gRow | rCol[i] | diag[i]
		}
	}
	// Rectangles simulating objects.
	for k := 0; k < 4; k++ {
		x0 := rng.Intn(width * 3 / 4)
		y0 := rng.Intn(height * 3 / 4)
		w := 1 + rng.Intn(width/4)
		h := 1 + rng.Intn(height/4)
		col := PackRGB(uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)))
		x1 := min(x0+w, width)
		for j := y0; j < y0+h && j < height; j++ {
			row := img.Pix[j*width+x0 : j*width+x1]
			for i := range row {
				row[i] = col
			}
		}
	}
	// Disc.
	cx, cy := width/2, height/2
	rad := min(width, height) / 6
	for j := cy - rad; j <= cy+rad; j++ {
		for i := cx - rad; i <= cx+rad; i++ {
			if i >= 0 && i < width && j >= 0 && j < height {
				dx, dy := i-cx, j-cy
				if dx*dx+dy*dy <= rad*rad {
					img.Set(i, j, PackRGB(240, 240, 240))
				}
			}
		}
	}
	// Sensor noise.
	for p := range img.Pix {
		if rng.Intn(16) == 0 {
			r, g, b := RGB(img.Pix[p])
			n := int(rng.Intn(31)) - 15
			img.Pix[p] = PackRGB(clampU8(int(r)+n), clampU8(int(g)+n), clampU8(int(b)+n))
		}
	}
	return img
}

// SyntheticFrame produces an NV21 sensor frame of the procedural scene,
// i.e. what the camera HAL would hand the application.
func SyntheticFrame(width, height int, seed uint64) *YUVImage {
	return SyntheticFrameInto(NewYUV(width&^1, height&^1), seed)
}

// SyntheticFrameInto paints the procedural scene straight into the NV21
// frame dst (at dst's dimensions), going through a pooled ARGB scratch
// bitmap so a per-frame synthesis allocates nothing in steady state.
// Content is identical to SyntheticFrame's for the same dimensions and
// seed. Returns dst.
func SyntheticFrameInto(dst *YUVImage, seed uint64) *YUVImage {
	scene := GetARGB(dst.Width, dst.Height)
	SyntheticSceneInto(scene, seed)
	ARGBToYUVInto(dst, scene)
	PutARGB(scene)
	return dst
}
