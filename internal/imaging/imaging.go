// Package imaging implements the image buffer formats that the Android
// camera pipeline produces and the conversions between them. These are
// real implementations, not cost stubs: the YUV→ARGB conversion here is
// the "bitmap formatting" pre-processing step the paper measures.
package imaging

import (
	"encoding/binary"
	"fmt"
	"sync"

	"aitax/internal/par"
	"aitax/internal/sim"
)

// YUVImage is a camera frame in the YUV 4:2:0 NV21 layout used by the
// Android Camera API: a full-resolution Y plane followed by an interleaved
// VU plane at quarter resolution.
type YUVImage struct {
	Width, Height int
	Y             []byte // len = Width*Height
	VU            []byte // len = Width*Height/2, pairs of (V, U)
}

func checkYUVDims(width, height int) {
	if width <= 0 || height <= 0 || width%2 != 0 || height%2 != 0 {
		panic(fmt.Sprintf("imaging: invalid NV21 dimensions %dx%d", width, height))
	}
}

// NewYUV allocates a black NV21 frame. Width and height must be even.
func NewYUV(width, height int) *YUVImage {
	checkYUVDims(width, height)
	return &YUVImage{
		Width:  width,
		Height: height,
		Y:      make([]byte, width*height),
		VU:     make([]byte, width*height/2),
	}
}

// Bytes returns the frame size in bytes (1.5 bytes/pixel).
func (img *YUVImage) Bytes() int { return len(img.Y) + len(img.VU) }

// ARGBImage is a packed 32-bit ARGB_8888 bitmap, the standard Android
// Bitmap configuration.
type ARGBImage struct {
	Width, Height int
	Pix           []uint32 // 0xAARRGGBB
}

func checkARGBDims(width, height int) {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("imaging: invalid ARGB dimensions %dx%d", width, height))
	}
}

// NewARGB allocates a transparent-black ARGB bitmap.
func NewARGB(width, height int) *ARGBImage {
	checkARGBDims(width, height)
	return &ARGBImage{Width: width, Height: height, Pix: make([]uint32, width*height)}
}

// Bytes returns the bitmap size in bytes (4 bytes/pixel).
func (img *ARGBImage) Bytes() int { return len(img.Pix) * 4 }

// At returns the pixel at (x, y).
func (img *ARGBImage) At(x, y int) uint32 { return img.Pix[y*img.Width+x] }

// Set stores the pixel at (x, y).
func (img *ARGBImage) Set(x, y int, p uint32) { img.Pix[y*img.Width+x] = p }

// RGB unpacks a pixel into its 8-bit channels.
func RGB(p uint32) (r, g, b uint8) {
	return uint8(p >> 16), uint8(p >> 8), uint8(p)
}

// PackRGB builds an opaque ARGB pixel from 8-bit channels.
func PackRGB(r, g, b uint8) uint32 {
	return 0xFF000000 | uint32(r)<<16 | uint32(g)<<8 | uint32(b)
}

func clampU8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}


// Fixed-point coefficient tables for the BT.601 conversions. Each table
// is one term of the original per-pixel integer expressions, precomputed
// over the 256 possible byte values, so the kernels replace multiplies
// with lookups while producing bit-identical sums (the arithmetic is the
// same int math, merely hoisted; TestYUVToARGBMatchesScalarReference and
// TestARGBToYUVMatchesScalarReference pin the equivalence).
var (
	// YUV -> ARGB: r = (1192*y' + 1634*v') >> 10, etc., with
	// y' = max(Y-16, 0) and u'/v' = U/V - 128.
	lumTab [256]int32 // 1192 * max(y-16, 0)
	rvTab  [256]int32 // 1634 * (v-128)
	gvTab  [256]int32 // -833 * (v-128)
	guTab  [256]int32 // -400 * (u-128)
	buTab  [256]int32 // 2066 * (u-128)

	// ARGB -> YUV: y = (66r + 129g + 25b + 128) >> 8, etc.
	yrTab, ygTab, ybTab [256]int32 // 66r, 129g, 25b
	urTab, ugTab, ubTab [256]int32 // -38r, -74g, 112b
	vrTab, vgTab, vbTab [256]int32 // 112r, -94g, -18b
)

func init() {
	for i := 0; i < 256; i++ {
		y := i - 16
		if y < 0 {
			y = 0
		}
		lumTab[i] = int32(1192 * y)
		c := i - 128
		rvTab[i] = int32(1634 * c)
		gvTab[i] = int32(-833 * c)
		guTab[i] = int32(-400 * c)
		buTab[i] = int32(2066 * c)
		yrTab[i], ygTab[i], ybTab[i] = int32(66*i), int32(129*i), int32(25*i)
		urTab[i], ugTab[i], ubTab[i] = int32(-38*i), int32(-74*i), int32(112*i)
		vrTab[i], vgTab[i], vbTab[i] = int32(112*i), int32(-94*i), int32(-18*i)
	}
}

// YUVToARGB converts an NV21 frame to an ARGB_8888 bitmap using the BT.601
// integer conversion the Android framework applies. This is the real work
// the "bitmap formatting" stage performs.
func YUVToARGB(src *YUVImage) *ARGBImage {
	return YUVToARGBInto(NewARGB(src.Width, src.Height), src)
}

// yuvToARGBTask tiles the conversion by output row; each NV21 chroma row
// serves a pair of luma rows read-only, so row tiles are independent.
type yuvToARGBTask struct {
	dst *ARGBImage
	src *YUVImage
}

var yuvToARGBTasks = sync.Pool{New: func() any { return new(yuvToARGBTask) }}

func (t *yuvToARGBTask) Tile(lo, hi int) {
	src, dst := t.src, t.dst
	w := src.Width
	for j := lo; j < hi; j++ {
		yRow := src.Y[j*w : j*w+w]
		vuRow := src.VU[(j/2)*w : (j/2)*w+w]
		out := dst.Pix[j*w : j*w+w]
		// SWAR main loop: one uint64 load grabs 8 luma bytes and another
		// grabs 4 (V, U) chroma pairs, so the inner loop extracts channel
		// bytes by shifting registers instead of eight bounds-checked
		// slice reads. Clamping folds the six channel values of a pixel
		// pair into a single OR: in-gamut pairs (the overwhelming
		// majority of any real frame) take one perfectly-predicted
		// branch and pack with no per-channel clamps at all, while
		// out-of-gamut pairs fall back to the scalar clamp.
		i := 0
		for ; i+8 <= w; i += 8 {
			yv := binary.LittleEndian.Uint64(yRow[i:])
			cv := binary.LittleEndian.Uint64(vuRow[i:])
			o := out[i : i+8 : i+8]
			for k := 0; k < 8; k += 2 {
				v, u := uint8(cv), uint8(cv>>8)
				cv >>= 16
				rC, gC, bC := rvTab[v], gvTab[v]+guTab[u], buTab[u]
				y0 := lumTab[uint8(yv)]
				yv >>= 8
				y1 := lumTab[uint8(yv)]
				yv >>= 8
				r0, g0, b0 := (y0+rC)>>10, (y0+gC)>>10, (y0+bC)>>10
				r1, g1, b1 := (y1+rC)>>10, (y1+gC)>>10, (y1+bC)>>10
				if (r0|g0|b0|r1|g1|b1)&^0xFF == 0 {
					o[k] = 0xFF000000 | uint32(r0)<<16 | uint32(g0)<<8 | uint32(b0)
					o[k+1] = 0xFF000000 | uint32(r1)<<16 | uint32(g1)<<8 | uint32(b1)
				} else {
					o[k] = PackRGB(clampU8(int(r0)), clampU8(int(g0)), clampU8(int(b0)))
					o[k+1] = PackRGB(clampU8(int(r1)), clampU8(int(g1)), clampU8(int(b1)))
				}
			}
		}
		// Tail (w%8 pixels; NV21 width is even, so whole pairs remain).
		for ; i < w; i += 2 {
			v, u := vuRow[i], vuRow[i+1]
			rC, gC, bC := rvTab[v], gvTab[v]+guTab[u], buTab[u]
			y0 := lumTab[yRow[i]]
			out[i] = PackRGB(clampU8(int(y0+rC)>>10), clampU8(int(y0+gC)>>10), clampU8(int(y0+bC)>>10))
			y1 := lumTab[yRow[i+1]]
			out[i+1] = PackRGB(clampU8(int(y1+rC)>>10), clampU8(int(y1+gC)>>10), clampU8(int(y1+bC)>>10))
		}
	}
}

// YUVToARGBInto is the in-place variant of YUVToARGB: it converts into
// dst (resized to match src) and allocates nothing when dst's backing
// array is already large enough. The conversion runs on the par tile
// scheduler over precomputed coefficient tables; output is bit-identical
// to the scalar BT.601 reference at any worker count. Returns dst.
func YUVToARGBInto(dst *ARGBImage, src *YUVImage) *ARGBImage {
	dst.Resize(src.Width, src.Height)
	t := yuvToARGBTasks.Get().(*yuvToARGBTask)
	t.dst, t.src = dst, src
	par.For(src.Height, t)
	t.dst, t.src = nil, nil
	yuvToARGBTasks.Put(t)
	return dst
}

// ARGBToYUV converts a bitmap back to NV21 (BT.601). Used by tests to
// verify the conversion round-trips within quantization error, and by the
// capture pipeline to synthesize sensor frames from procedural bitmaps.
func ARGBToYUV(src *ARGBImage) *YUVImage {
	return ARGBToYUVInto(NewYUV(src.Width&^1, src.Height&^1), src)
}

// argbToYUVTask tiles the conversion by NV21 row *pair* (one luma pair
// plus its shared chroma row), so every VU write stays inside the tile
// that owns it and tiles remain independent.
type argbToYUVTask struct {
	dst *YUVImage
	src *ARGBImage
}

var argbToYUVTasks = sync.Pool{New: func() any { return new(argbToYUVTask) }}

// lumaByte computes one pixel's NV21 luma byte (BT.601, +16 offset).
// No clamp is needed: over all 2^24 RGB inputs the result stays within
// [16, 235], so the historical clampU8 never fired (pinned exhaustively
// by TestEncodeBytesNeverClamp).
func lumaByte(p uint32) uint64 {
	r, g, b := uint8(p>>16), uint8(p>>8), uint8(p)
	return uint64(((yrTab[r] + ygTab[g] + ybTab[b] + 128) >> 8) + 16)
}

// vByte and uByte compute one pixel's NV21 chroma bytes (+128 bias).
// They are separate functions (rather than one returning both) to stay
// under the inlining budget. Like lumaByte they need no clamp: results
// stay within [16, 240] over the whole RGB cube.
func vByte(p uint32) uint64 {
	r, g, b := uint8(p>>16), uint8(p>>8), uint8(p)
	return uint64(((vrTab[r] + vgTab[g] + vbTab[b] + 128) >> 8) + 128)
}

func uByte(p uint32) uint64 {
	r, g, b := uint8(p>>16), uint8(p>>8), uint8(p)
	return uint64(((urTab[r] + ugTab[g] + ubTab[b] + 128) >> 8) + 128)
}

func (t *argbToYUVTask) Tile(lo, hi int) {
	src, dst := t.src, t.dst
	w := dst.Width
	for j := 2 * lo; j < 2*hi; j++ {
		srcRow := src.Pix[j*src.Width : j*src.Width+w]
		yRow := dst.Y[j*w : j*w+w]
		if j%2 == 0 {
			vuRow := dst.VU[(j/2)*w : (j/2)*w+w]
			// SWAR main loop: 8 pixels become one packed uint64 store
			// into the Y plane plus one (4 chroma pairs from the even
			// columns) into the VU plane.
			i := 0
			for ; i+8 <= w; i += 8 {
				r8 := srcRow[i : i+8 : i+8]
				yw := lumaByte(r8[0]) | lumaByte(r8[1])<<8 | lumaByte(r8[2])<<16 |
					lumaByte(r8[3])<<24 | lumaByte(r8[4])<<32 | lumaByte(r8[5])<<40 |
					lumaByte(r8[6])<<48 | lumaByte(r8[7])<<56
				binary.LittleEndian.PutUint64(yRow[i:], yw)
				cw := vByte(r8[0]) | uByte(r8[0])<<8 | vByte(r8[2])<<16 | uByte(r8[2])<<24 |
					vByte(r8[4])<<32 | uByte(r8[4])<<40 | vByte(r8[6])<<48 | uByte(r8[6])<<56
				binary.LittleEndian.PutUint64(vuRow[i:], cw)
			}
			// Tail (w%8 pixels; width is even so chroma pairs stay whole,
			// and i stays even so the i%2 subsampling phase is preserved).
			for ; i < w; i++ {
				p := srcRow[i]
				yRow[i] = uint8(lumaByte(p))
				if i%2 == 0 {
					vuRow[i] = uint8(vByte(p))
					vuRow[i+1] = uint8(uByte(p))
				}
			}
		} else {
			i := 0
			for ; i+8 <= w; i += 8 {
				r8 := srcRow[i : i+8 : i+8]
				yw := lumaByte(r8[0]) | lumaByte(r8[1])<<8 | lumaByte(r8[2])<<16 |
					lumaByte(r8[3])<<24 | lumaByte(r8[4])<<32 | lumaByte(r8[5])<<40 |
					lumaByte(r8[6])<<48 | lumaByte(r8[7])<<56
				binary.LittleEndian.PutUint64(yRow[i:], yw)
			}
			for ; i < w; i++ {
				yRow[i] = uint8(lumaByte(srcRow[i]))
			}
		}
	}
}

// ARGBToYUVInto is the in-place variant of ARGBToYUV: it converts into
// dst (resized to src's even dimensions) and allocates nothing when
// dst's backing arrays are already large enough. Runs tiled by row pair
// on precomputed coefficient tables; bit-identical to the scalar BT.601
// reference at any worker count. Returns dst.
func ARGBToYUVInto(dst *YUVImage, src *ARGBImage) *YUVImage {
	dst.Resize(src.Width&^1, src.Height&^1)
	t := argbToYUVTasks.Get().(*argbToYUVTask)
	t.dst, t.src = dst, src
	par.For(dst.Height/2, t)
	t.dst, t.src = nil, nil
	argbToYUVTasks.Put(t)
	return dst
}

// SyntheticScene deterministically paints a procedural test frame:
// a smooth two-axis gradient background with rectangles and a disc, plus
// seeded per-pixel noise. Content is irrelevant to pre-processing cost,
// but structured frames give post-processing stages non-trivial inputs.
func SyntheticScene(width, height int, seed uint64) *ARGBImage {
	return SyntheticSceneInto(GetARGB(width, height), seed)
}

// gradientTask fills the scene's gradient background rows from the
// per-axis tables; rows are independent, so it tiles on the scheduler.
type gradientTask struct {
	img   *ARGBImage
	rCol  []uint32
	bDiag []uint32
}

func (t *gradientTask) Tile(lo, hi int) {
	width := t.img.Width
	for j := lo; j < hi; j++ {
		gRow := 0xFF000000 | uint32(uint8(255*j/t.img.Height))<<8
		row := t.img.Pix[j*width : j*width+width]
		diag := t.bDiag[j : j+width]
		for i := range row {
			row[i] = gRow | t.rCol[i] | diag[i]
		}
	}
}

var gradientTasks = sync.Pool{New: func() any { return new(gradientTask) }}

// SyntheticSceneInto paints the procedural scene into dst, overwriting
// every pixel. The pixel content for a given (dimensions, seed) pair is
// identical to SyntheticScene's. Returns dst.
func SyntheticSceneInto(dst *ARGBImage, seed uint64) *ARGBImage {
	rng := sim.NewRNG(seed)
	img := dst
	width, height := img.Width, img.Height
	// Gradient background. The channel values depend only on the column
	// (r), row (g) and diagonal (b), so the integer divisions are hoisted
	// into per-axis tables (recycled across frames) and each pixel is an
	// OR of prepacked parts, painted row-tiled.
	grad := gradientTasks.Get().(*gradientTask)
	grad.img = img
	grad.rCol = growUint32(grad.rCol, width)
	grad.bDiag = growUint32(grad.bDiag, width+height)
	rCol, bDiag := grad.rCol, grad.bDiag
	for i := 0; i < width; i++ {
		rCol[i] = uint32(uint8(255*i/width)) << 16
	}
	for s := 0; s < width+height; s++ {
		bDiag[s] = uint32(uint8(s * 255 / (width + height)))
	}
	par.For(height, grad)
	grad.img = nil
	gradientTasks.Put(grad)
	// Rectangles simulating objects.
	for k := 0; k < 4; k++ {
		x0 := rng.Intn(width * 3 / 4)
		y0 := rng.Intn(height * 3 / 4)
		w := 1 + rng.Intn(width/4)
		h := 1 + rng.Intn(height/4)
		col := PackRGB(uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)))
		x1 := min(x0+w, width)
		for j := y0; j < y0+h && j < height; j++ {
			row := img.Pix[j*width+x0 : j*width+x1]
			for i := range row {
				row[i] = col
			}
		}
	}
	// Disc.
	cx, cy := width/2, height/2
	rad := min(width, height) / 6
	for j := cy - rad; j <= cy+rad; j++ {
		for i := cx - rad; i <= cx+rad; i++ {
			if i >= 0 && i < width && j >= 0 && j < height {
				dx, dy := i-cx, j-cy
				if dx*dx+dy*dy <= rad*rad {
					img.Set(i, j, PackRGB(240, 240, 240))
				}
			}
		}
	}
	// Sensor noise.
	for p := range img.Pix {
		if rng.Intn(16) == 0 {
			r, g, b := RGB(img.Pix[p])
			n := int(rng.Intn(31)) - 15
			img.Pix[p] = PackRGB(clampU8(int(r)+n), clampU8(int(g)+n), clampU8(int(b)+n))
		}
	}
	return img
}

// SyntheticFrame produces an NV21 sensor frame of the procedural scene,
// i.e. what the camera HAL would hand the application.
func SyntheticFrame(width, height int, seed uint64) *YUVImage {
	return SyntheticFrameInto(NewYUV(width&^1, height&^1), seed)
}

// SyntheticFrameInto paints the procedural scene straight into the NV21
// frame dst (at dst's dimensions), going through a pooled ARGB scratch
// bitmap so a per-frame synthesis allocates nothing in steady state.
// Content is identical to SyntheticFrame's for the same dimensions and
// seed. Returns dst.
func SyntheticFrameInto(dst *YUVImage, seed uint64) *YUVImage {
	scene := GetARGB(dst.Width, dst.Height)
	SyntheticSceneInto(scene, seed)
	ARGBToYUVInto(dst, scene)
	PutARGB(scene)
	return dst
}
