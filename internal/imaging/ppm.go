package imaging

import (
	"bufio"
	"fmt"
	"io"
)

// WritePPM serializes an ARGB image as a binary PPM (P6) — the simplest
// portable way to eyeball pipeline outputs without image dependencies.
func WritePPM(img *ARGBImage, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", img.Width, img.Height); err != nil {
		return err
	}
	buf := make([]byte, 0, img.Width*3)
	for y := 0; y < img.Height; y++ {
		buf = buf[:0]
		for x := 0; x < img.Width; x++ {
			r, g, b := RGB(img.At(x, y))
			buf = append(buf, r, g, b)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MaskPalette is a deterministic 21-entry color palette for segmentation
// masks (PASCAL-VOC-sized class sets).
func MaskPalette() []uint32 {
	out := make([]uint32, 21)
	for i := range out {
		// Bit-shuffled class index → well-separated colors.
		r := uint8((i * 97) % 256)
		g := uint8((i * 57 * 3) % 256)
		b := uint8((i * 181) % 256)
		if i == 0 {
			r, g, b = 0, 0, 0 // background stays black
		}
		out[i] = PackRGB(r, g, b)
	}
	return out
}

// MaskToImage renders a per-pixel class mask (h*w labels) as a colored
// image using the palette (labels beyond the palette wrap).
func MaskToImage(mask []int, w, h int, palette []uint32) *ARGBImage {
	if len(mask) != w*h {
		panic(fmt.Sprintf("imaging: mask size %d != %dx%d", len(mask), w, h))
	}
	if len(palette) == 0 {
		palette = MaskPalette()
	}
	img := NewARGB(w, h)
	for i, c := range mask {
		if c < 0 {
			c = 0
		}
		img.Pix[i] = palette[c%len(palette)]
	}
	return img
}
