package imaging

import (
	"os"
	"testing"
	"time"

	"aitax/internal/par"
)

// This file is the in-process half of the wall-time gate (`make
// bench-wall`): it races each SWAR conversion kernel against the scalar
// per-pixel reference it replaced, interleaved in the same process, and
// asserts the SWAR side is measurably faster. Interleaving makes the
// check robust where a cross-run ns/op comparison is not: CPU steal and
// frequency jitter hit both implementations alike, and taking the
// minimum over many short rounds converges on the true runtime of each.
// The checks only run with AITAX_WALL_GATE=1 so the ordinary test suite
// stays timing-free.

// minWall interleaves a and b for the given number of rounds and
// returns each side's fastest round — the noise-robust estimate of its
// steady-state runtime.
func minWall(rounds int, a, b func()) (minA, minB time.Duration) {
	a()
	b() // warm-up: tables, pools, branch predictors
	minA, minB = time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		a()
		t1 := time.Now()
		b()
		t2 := time.Now()
		if d := t1.Sub(t0); d < minA {
			minA = d
		}
		if d := t2.Sub(t1); d < minB {
			minB = d
		}
	}
	return minA, minB
}

// requireFaster fails unless the SWAR side beat the scalar reference by
// at least 3% (the measured margins are 20%+; the slack absorbs
// residual jitter without letting a real regression through).
func requireFaster(t *testing.T, name string, swar, ref time.Duration) {
	t.Helper()
	t.Logf("%s: swar %v vs scalar %v (%.1f%% faster)",
		name, swar, ref, (1-float64(swar)/float64(ref))*100)
	if float64(swar) > 0.97*float64(ref) {
		t.Errorf("%s: SWAR kernel (%v) is not measurably faster than the scalar reference (%v)",
			name, swar, ref)
	}
}

// refYUVToARGBInto is the pre-SWAR scalar kernel: per-pixel table
// lookups with a clamp on every channel. Kept as the wall-gate foil.
func refYUVToARGBInto(dst *ARGBImage, src *YUVImage) {
	dst.Resize(src.Width, src.Height)
	w := src.Width
	for j := 0; j < src.Height; j++ {
		yRow := src.Y[j*w : j*w+w]
		vuRow := src.VU[(j/2)*w : (j/2)*w+w]
		out := dst.Pix[j*w : j*w+w]
		for i := 0; i < w; i += 2 {
			v, u := vuRow[i], vuRow[i+1]
			rC, gC, bC := rvTab[v], gvTab[v]+guTab[u], buTab[u]
			y0 := lumTab[yRow[i]]
			out[i] = PackRGB(clampU8(int(y0+rC)>>10), clampU8(int(y0+gC)>>10), clampU8(int(y0+bC)>>10))
			y1 := lumTab[yRow[i+1]]
			out[i+1] = PackRGB(clampU8(int(y1+rC)>>10), clampU8(int(y1+gC)>>10), clampU8(int(y1+bC)>>10))
		}
	}
}

// refARGBToYUVInto is the pre-SWAR scalar encode: per-pixel lookups,
// per-byte stores, and the historical (never-firing) clamps.
func refARGBToYUVInto(dst *YUVImage, src *ARGBImage) {
	dst.Resize(src.Width&^1, src.Height&^1)
	w := dst.Width
	for j := 0; j < dst.Height; j++ {
		srcRow := src.Pix[j*src.Width : j*src.Width+w]
		yRow := dst.Y[j*w : j*w+w]
		for i, p := range srcRow {
			r, g, b := uint8(p>>16), uint8(p>>8), uint8(p)
			yRow[i] = clampU8(int((yrTab[r]+ygTab[g]+ybTab[b]+128)>>8) + 16)
		}
		if j%2 == 0 {
			vuRow := dst.VU[(j/2)*w : (j/2)*w+w]
			for i := 0; i < w; i += 2 {
				p := srcRow[i]
				r, g, b := uint8(p>>16), uint8(p>>8), uint8(p)
				vuRow[i] = clampU8(int((vrTab[r]+vgTab[g]+vbTab[b]+128)>>8) + 128)
				vuRow[i+1] = clampU8(int((urTab[r]+ugTab[g]+ubTab[b]+128)>>8) + 128)
			}
		}
	}
}

func TestWallGateConversionKernels(t *testing.T) {
	if os.Getenv("AITAX_WALL_GATE") == "" {
		t.Skip("in-process wall check; run via `make bench-wall` (AITAX_WALL_GATE=1)")
	}
	defer par.SetWorkers(par.SetWorkers(1)) // single-threaded A/B: compare kernels, not the scheduler
	frame := SyntheticFrame(640, 480, 7)
	scene := SyntheticScene(640, 480, 7)
	bmp := NewARGB(640, 480)
	refBmp := NewARGB(640, 480)
	nv := NewYUV(640, 480)
	refNV := NewYUV(640, 480)

	swar, ref := minWall(40,
		func() { YUVToARGBInto(bmp, frame) },
		func() { refYUVToARGBInto(refBmp, frame) })
	requireFaster(t, "YUVToARGB 480p", swar, ref)
	for i, p := range refBmp.Pix {
		if bmp.Pix[i] != p {
			t.Fatalf("decode reference diverged at pixel %d", i)
		}
	}

	swar, ref = minWall(40,
		func() { ARGBToYUVInto(nv, scene) },
		func() { refARGBToYUVInto(refNV, scene) })
	requireFaster(t, "ARGBToYUV 480p", swar, ref)
	for i, y := range refNV.Y {
		if nv.Y[i] != y {
			t.Fatalf("encode reference diverged at luma byte %d", i)
		}
	}
	for i, c := range refNV.VU {
		if nv.VU[i] != c {
			t.Fatalf("encode reference diverged at chroma byte %d", i)
		}
	}
}
