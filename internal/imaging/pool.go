package imaging

import "sync"

// Buffer pooling for the per-frame image buffers on the capture→preproc
// hot path. The contract (documented in docs/PERF.md): Get* returns an
// image with the requested dimensions and UNDEFINED pixel contents — the
// caller must fully overwrite it (every kernel in this package and in
// preproc does); Put* hands the buffer back, after which the caller must
// not touch it. Returning a buffer is always optional: an un-Put image
// is simply garbage-collected.

var yuvPool = sync.Pool{New: func() any { return new(YUVImage) }}
var argbPool = sync.Pool{New: func() any { return new(ARGBImage) }}

// GetYUV returns a pooled NV21 frame of the given (even) dimensions.
// Contents are undefined; the caller must overwrite every byte.
func GetYUV(width, height int) *YUVImage {
	img := yuvPool.Get().(*YUVImage)
	img.Resize(width, height)
	return img
}

// PutYUV returns a frame to the pool. nil is ignored.
func PutYUV(img *YUVImage) {
	if img != nil {
		yuvPool.Put(img)
	}
}

// GetARGB returns a pooled ARGB bitmap of the given dimensions.
// Contents are undefined; the caller must overwrite every pixel.
func GetARGB(width, height int) *ARGBImage {
	img := argbPool.Get().(*ARGBImage)
	img.Resize(width, height)
	return img
}

// PutARGB returns a bitmap to the pool. nil is ignored.
func PutARGB(img *ARGBImage) {
	if img != nil {
		argbPool.Put(img)
	}
}

// Resize re-dimensions the frame in place, reusing the backing arrays
// when they are large enough. Contents are undefined afterwards.
func (img *YUVImage) Resize(width, height int) {
	checkYUVDims(width, height)
	img.Width, img.Height = width, height
	img.Y = growBytes(img.Y, width*height)
	img.VU = growBytes(img.VU, width*height/2)
}

// Resize re-dimensions the bitmap in place, reusing the backing array
// when it is large enough. Contents are undefined afterwards.
func (img *ARGBImage) Resize(width, height int) {
	checkARGBDims(width, height)
	img.Width, img.Height = width, height
	if n := width * height; cap(img.Pix) >= n {
		img.Pix = img.Pix[:n]
	} else {
		img.Pix = make([]uint32, n)
	}
}

func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

func growUint32(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint32, n)
}
