package thermal

import (
	"testing"
	"time"
)

func TestStartsAtAmbient(t *testing.T) {
	m := Default()
	if m.TempC() != 33 {
		t.Fatalf("start temp = %v, want 33", m.TempC())
	}
	if !m.IsIdle() {
		t.Fatal("fresh model must be idle")
	}
	if m.ThrottleFactor() != 1 {
		t.Fatal("idle model must not throttle")
	}
}

func TestHeatsUnderLoad(t *testing.T) {
	m := Default()
	for i := 0; i < 60; i++ {
		m.Advance(time.Second, 1)
	}
	if m.TempC() < 80 {
		t.Fatalf("after 60s full load temp = %v, want >80", m.TempC())
	}
	if m.ThrottleFactor() >= 1 {
		t.Fatal("hot die must throttle")
	}
	if m.IsIdle() {
		t.Fatal("hot die reported idle")
	}
}

func TestCoolsWhenIdle(t *testing.T) {
	m := Default()
	for i := 0; i < 60; i++ {
		m.Advance(time.Second, 1)
	}
	hot := m.TempC()
	for i := 0; i < 300; i++ {
		m.Advance(time.Second, 0)
	}
	if m.TempC() >= hot || m.TempC() > 34 {
		t.Fatalf("cooled temp = %v (was %v)", m.TempC(), hot)
	}
}

func TestReset(t *testing.T) {
	m := Default()
	m.Advance(time.Minute, 1)
	m.Reset()
	if !m.IsIdle() {
		t.Fatal("reset must return to idle")
	}
}

func TestThrottleMonotone(t *testing.T) {
	m := Default()
	prev := m.ThrottleFactor()
	for i := 0; i < 120; i++ {
		m.Advance(time.Second, 1)
		f := m.ThrottleFactor()
		if f > prev+1e-9 {
			t.Fatalf("throttle factor rose while heating: %v -> %v", prev, f)
		}
		prev = f
	}
	if prev < m.ThrottleFloorFactor-1e-9 {
		t.Fatalf("throttle %v fell below floor %v", prev, m.ThrottleFloorFactor)
	}
}

func TestUtilizationClamped(t *testing.T) {
	m := Default()
	m.Advance(time.Second, 5) // clamped to 1
	a := m.TempC()
	m2 := Default()
	m2.Advance(time.Second, 1)
	if a != m2.TempC() {
		t.Fatal("utilization not clamped")
	}
	m3 := Default()
	m3.Advance(time.Hour, -1) // clamped to 0: stays ambient
	if m3.TempC() != m3.AmbientC {
		t.Fatal("negative utilization not clamped")
	}
}

func TestEquilibriumProportionalToLoad(t *testing.T) {
	half := Default()
	for i := 0; i < 600; i++ {
		half.Advance(time.Second, 0.5)
	}
	mid := half.AmbientC + (half.MaxLoadC-half.AmbientC)*0.5
	if d := half.TempC() - mid; d > 1 || d < -1 {
		t.Fatalf("half-load equilibrium = %v, want ~%v", half.TempC(), mid)
	}
}
