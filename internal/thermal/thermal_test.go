package thermal

import (
	"math"
	"testing"
	"time"
)

func TestStartsAtAmbient(t *testing.T) {
	m := Default()
	if m.TempC() != 33 {
		t.Fatalf("start temp = %v, want 33", m.TempC())
	}
	if !m.IsIdle() {
		t.Fatal("fresh model must be idle")
	}
	if m.ThrottleFactor() != 1 {
		t.Fatal("idle model must not throttle")
	}
}

func TestHeatsUnderLoad(t *testing.T) {
	m := Default()
	for i := 0; i < 60; i++ {
		m.Advance(time.Second, 1)
	}
	if m.TempC() < 80 {
		t.Fatalf("after 60s full load temp = %v, want >80", m.TempC())
	}
	if m.ThrottleFactor() >= 1 {
		t.Fatal("hot die must throttle")
	}
	if m.IsIdle() {
		t.Fatal("hot die reported idle")
	}
}

func TestCoolsWhenIdle(t *testing.T) {
	m := Default()
	for i := 0; i < 60; i++ {
		m.Advance(time.Second, 1)
	}
	hot := m.TempC()
	for i := 0; i < 300; i++ {
		m.Advance(time.Second, 0)
	}
	if m.TempC() >= hot || m.TempC() > 34 {
		t.Fatalf("cooled temp = %v (was %v)", m.TempC(), hot)
	}
}

func TestReset(t *testing.T) {
	m := Default()
	m.Advance(time.Minute, 1)
	m.Reset()
	if !m.IsIdle() {
		t.Fatal("reset must return to idle")
	}
}

func TestThrottleMonotone(t *testing.T) {
	m := Default()
	prev := m.ThrottleFactor()
	for i := 0; i < 120; i++ {
		m.Advance(time.Second, 1)
		f := m.ThrottleFactor()
		if f > prev+1e-9 {
			t.Fatalf("throttle factor rose while heating: %v -> %v", prev, f)
		}
		prev = f
	}
	if prev < m.ThrottleFloorFactor-1e-9 {
		t.Fatalf("throttle %v fell below floor %v", prev, m.ThrottleFloorFactor)
	}
}

func TestUtilizationClamped(t *testing.T) {
	m := Default()
	m.Advance(time.Second, 5) // clamped to 1
	a := m.TempC()
	m2 := Default()
	m2.Advance(time.Second, 1)
	if a != m2.TempC() {
		t.Fatal("utilization not clamped")
	}
	m3 := Default()
	m3.Advance(time.Hour, -1) // clamped to 0: stays ambient
	if m3.TempC() != m3.AmbientC {
		t.Fatal("negative utilization not clamped")
	}
}

func TestEquilibriumProportionalToLoad(t *testing.T) {
	half := Default()
	for i := 0; i < 600; i++ {
		half.Advance(time.Second, 0.5)
	}
	mid := half.AmbientC + (half.MaxLoadC-half.AmbientC)*0.5
	if d := half.TempC() - mid; d > 1 || d < -1 {
		t.Fatalf("half-load equilibrium = %v, want ~%v", half.TempC(), mid)
	}
}

// heatTo drives the model with full load until it reaches at least
// target (or gives up).
func heatTo(t *testing.T, m *Model, target float64) {
	t.Helper()
	for i := 0; i < 100000 && m.TempC() < target; i++ {
		m.Advance(50*time.Millisecond, 1)
	}
	if m.TempC() < target {
		t.Fatalf("model never reached %g°C (max-load equilibrium %g)", target, m.MaxLoadC)
	}
}

func TestThrottleFactorBoundaries(t *testing.T) {
	m := Default()
	m.tempC = m.ThrottleStartC
	if f := m.ThrottleFactor(); f != 1 {
		t.Fatalf("exactly at throttle start: factor %g, want 1", f)
	}
	m.tempC = m.MaxLoadC
	if f := m.ThrottleFactor(); f != m.ThrottleFloorFactor {
		t.Fatalf("at max load: factor %g, want floor %g", f, m.ThrottleFloorFactor)
	}
	// Past max load the factor clamps at the floor instead of going
	// negative.
	m.tempC = m.MaxLoadC + 20
	if f := m.ThrottleFactor(); f != m.ThrottleFloorFactor {
		t.Fatalf("past max load: factor %g, want clamped floor %g", f, m.ThrottleFloorFactor)
	}
}

func TestThrottleFactorAtAndAboveTrip(t *testing.T) {
	m := Default() // trip 90 sits inside the 72..95 throttle ramp
	m.tempC = m.TripC
	f := m.ThrottleFactor()
	want := 1 - (m.TripC-m.ThrottleStartC)/(m.MaxLoadC-m.ThrottleStartC)*(1-m.ThrottleFloorFactor)
	if math.Abs(f-want) > 1e-12 {
		t.Fatalf("at trip: factor %g, want %g", f, want)
	}
	if !m.Tripped() {
		t.Fatal("at TripC the model must report tripped")
	}
	m.tempC = m.TripC + 10
	if !m.Tripped() {
		t.Fatal("above TripC the model must report tripped")
	}
	if f := m.ThrottleFactor(); f < m.ThrottleFloorFactor || f > 1 {
		t.Fatalf("above trip: factor %g out of [floor, 1]", f)
	}
}

func TestDegenerateThrottleSpan(t *testing.T) {
	// ThrottleStartC == MaxLoadC: the linear ramp has zero width. The
	// factor must step to the floor, not divide by zero.
	m := &Model{AmbientC: 33, MaxLoadC: 80, ThrottleStartC: 80,
		ThrottleFloorFactor: 0.5, TimeConstant: time.Second}
	m.Reset()
	m.tempC = 80
	if f := m.ThrottleFactor(); f != 1 {
		t.Fatalf("at the degenerate threshold: factor %g, want 1 (<= start)", f)
	}
	m.tempC = 80.0001
	f := m.ThrottleFactor()
	if math.IsNaN(f) || math.IsInf(f, 0) {
		t.Fatalf("degenerate span produced %g", f)
	}
	if f != 0.5 {
		t.Fatalf("degenerate span: factor %g, want the floor 0.5", f)
	}
}

func TestThrottleStartEqualsTrip(t *testing.T) {
	// ThrottleC == TripC: throttling and tripping begin at the same
	// temperature; the factor is still exactly 1 at and below it
	// (tempC <= start is unthrottled by contract) while the trip fires
	// at the same instant.
	m := Default()
	m.ThrottleStartC = m.TripC
	m.tempC = m.TripC - 0.001
	if f := m.ThrottleFactor(); f != 1 {
		t.Fatalf("just below start==trip: factor %g, want 1", f)
	}
	if m.Tripped() {
		t.Fatal("below trip must not be tripped")
	}
	m.tempC = m.TripC
	if f := m.ThrottleFactor(); f != 1 {
		t.Fatalf("at start==trip: factor %g, want 1", f)
	}
	if !m.Tripped() {
		t.Fatal("at trip must be tripped")
	}
}

func TestCoolDownReArm(t *testing.T) {
	m := Default()
	m.TimeConstant = time.Second
	heatTo(t, m, m.TripC)
	if !m.Tripped() || m.Headroom() > 0 {
		t.Fatalf("hot die: tripped=%v headroom=%g", m.Tripped(), m.Headroom())
	}
	// Idle cool-down: the model itself re-arms once below TripC (the
	// serving layer latches trips; the model is memoryless).
	for i := 0; i < 100000 && m.Tripped(); i++ {
		m.Advance(50*time.Millisecond, 0)
	}
	if m.Tripped() {
		t.Fatal("model never re-armed while cooling")
	}
	if m.Headroom() <= 0 {
		t.Fatalf("cooled below trip but headroom %g", m.Headroom())
	}
	for i := 0; i < 1000000 && !m.IsIdle(); i++ {
		m.Advance(50*time.Millisecond, 0)
	}
	if !m.IsIdle() {
		t.Fatal("model never cooled back to ambient")
	}
	if f := m.ThrottleFactor(); f != 1 {
		t.Fatalf("idle again: factor %g, want 1", f)
	}
}

func TestHeadroomWithoutTripPoint(t *testing.T) {
	m := Default()
	m.TripC = 0
	if !math.IsInf(m.Headroom(), 1) {
		t.Fatalf("no trip point: headroom %g, want +Inf", m.Headroom())
	}
	m.tempC = 500
	if m.Tripped() {
		t.Fatal("no trip point must never trip")
	}
}

func TestAdvanceRejectsNaNUtilization(t *testing.T) {
	m := Default()
	m.Advance(time.Second, math.NaN())
	if math.IsNaN(m.TempC()) {
		t.Fatal("NaN utilization poisoned the temperature")
	}
	if m.TempC() != m.AmbientC {
		t.Fatalf("NaN utilization heated the die to %g", m.TempC())
	}
}

func TestCloneIsIndependentAndCool(t *testing.T) {
	m := Default()
	heatTo(t, m, m.ThrottleStartC)
	c := m.Clone()
	if !c.IsIdle() {
		t.Fatalf("clone starts at %g, want ambient", c.TempC())
	}
	c.Advance(time.Minute, 1)
	if m.TempC() == c.TempC() {
		t.Fatal("clone shares state with the original")
	}
}

func TestParse(t *testing.T) {
	m, err := Parse("tau=2s,trip=88,start=70,floor=0.6,ambient=30,max=96")
	if err != nil {
		t.Fatal(err)
	}
	if m.TimeConstant != 2*time.Second || m.TripC != 88 || m.ThrottleStartC != 70 ||
		m.ThrottleFloorFactor != 0.6 || m.AmbientC != 30 || m.MaxLoadC != 96 {
		t.Fatalf("parsed %+v", m)
	}
	if m.TempC() != 30 {
		t.Fatalf("parsed model starts at %g, want ambient", m.TempC())
	}
	if _, err := Parse(""); err != nil {
		t.Fatalf("empty spec must be the default model: %v", err)
	}
	bad := []string{
		"tau",          // not key=value
		"tau=warm",     // bad duration
		"tau=0s",       // zero time constant
		"floor=0",      // zero floor
		"floor=2",      // over 1
		"trip=NaN",     // NaN
		"max=20",       // max below ambient
		"trip=10",      // trip below ambient
		"ambient=-Inf", // infinite
		"vendor=qcom",  // unknown key
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}
