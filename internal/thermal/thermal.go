// Package thermal models SoC die temperature with a first-order lumped
// model: temperature relaxes toward a load-dependent equilibrium with an
// exponential time constant, and sustained heat throttles the CPU. The
// paper's methodology (§III-D) cools the chip to its 33°C idle
// temperature before every run precisely because this effect otherwise
// contaminates measurements.
package thermal

import (
	"time"
)

// Model is a lumped thermal state.
type Model struct {
	// AmbientC is the idle equilibrium temperature.
	AmbientC float64
	// MaxLoadC is the equilibrium under full sustained load.
	MaxLoadC float64
	// ThrottleStartC is where frequency capping begins.
	ThrottleStartC float64
	// ThrottleFloorFactor is the worst-case throughput multiplier.
	ThrottleFloorFactor float64
	// TimeConstant controls how fast temperature moves (seconds scale).
	TimeConstant time.Duration

	tempC float64
}

// Default returns the model used for the Snapdragon-class platforms.
func Default() *Model {
	m := &Model{
		AmbientC:            33,
		MaxLoadC:            95,
		ThrottleStartC:      72,
		ThrottleFloorFactor: 0.55,
		TimeConstant:        25 * time.Second,
	}
	m.tempC = m.AmbientC
	return m
}

// TempC returns the current die temperature.
func (m *Model) TempC() float64 { return m.tempC }

// Reset cools the die back to ambient (the paper's pre-run procedure).
func (m *Model) Reset() { m.tempC = m.AmbientC }

// Advance moves the temperature over dt with the given utilization in
// [0, 1]; equilibrium is linear in utilization between ambient and max.
func (m *Model) Advance(dt time.Duration, utilization float64) {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	target := m.AmbientC + (m.MaxLoadC-m.AmbientC)*utilization
	// First-order relaxation: T += (target - T) * (1 - e^(-dt/tau)),
	// approximated by its linearization for stability at any dt.
	alpha := float64(dt) / float64(m.TimeConstant)
	if alpha > 1 {
		alpha = 1
	}
	m.tempC += (target - m.tempC) * alpha
}

// ThrottleFactor returns the current CPU throughput multiplier: 1.0 below
// the throttle threshold, falling linearly to the floor at max
// temperature.
func (m *Model) ThrottleFactor() float64 {
	if m.tempC <= m.ThrottleStartC {
		return 1
	}
	span := m.MaxLoadC - m.ThrottleStartC
	frac := (m.tempC - m.ThrottleStartC) / span
	if frac > 1 {
		frac = 1
	}
	return 1 - frac*(1-m.ThrottleFloorFactor)
}

// IsIdle reports whether the die is within half a degree of ambient,
// i.e. the §III-D precondition for starting a measurement.
func (m *Model) IsIdle() bool { return m.tempC <= m.AmbientC+0.5 }
