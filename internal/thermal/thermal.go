// Package thermal models SoC die temperature with a first-order lumped
// model: temperature relaxes toward a load-dependent equilibrium with an
// exponential time constant, and sustained heat throttles the CPU. The
// paper's methodology (§III-D) cools the chip to its 33°C idle
// temperature before every run precisely because this effect otherwise
// contaminates measurements.
package thermal

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Model is a lumped thermal state.
type Model struct {
	// AmbientC is the idle equilibrium temperature.
	AmbientC float64
	// MaxLoadC is the equilibrium under full sustained load.
	MaxLoadC float64
	// ThrottleStartC is where frequency capping begins.
	ThrottleStartC float64
	// ThrottleFloorFactor is the worst-case throughput multiplier.
	ThrottleFloorFactor float64
	// TimeConstant controls how fast temperature moves (seconds scale).
	TimeConstant time.Duration
	// TripC, when positive, is the hard-trip temperature: at or above
	// it the accelerator shuts down (the event internal/faults models
	// as a thermal trip). Zero disables the trip point — Headroom is
	// then infinite and Tripped never fires.
	TripC float64

	tempC float64
}

// Default returns the model used for the Snapdragon-class platforms.
func Default() *Model {
	m := &Model{
		AmbientC:            33,
		MaxLoadC:            95,
		ThrottleStartC:      72,
		ThrottleFloorFactor: 0.55,
		TimeConstant:        25 * time.Second,
		TripC:               90,
	}
	m.tempC = m.AmbientC
	return m
}

// TempC returns the current die temperature.
func (m *Model) TempC() float64 { return m.tempC }

// Reset cools the die back to ambient (the paper's pre-run procedure).
func (m *Model) Reset() { m.tempC = m.AmbientC }

// Clone returns an independent copy of the model's parameters, cooled
// back to ambient — the per-run state the serving harnesses advance so
// concurrent or repeated runs never share a die.
func (m *Model) Clone() *Model {
	c := *m
	c.Reset()
	return &c
}

// Advance moves the temperature over dt with the given utilization in
// [0, 1]; equilibrium is linear in utilization between ambient and max.
func (m *Model) Advance(dt time.Duration, utilization float64) {
	if utilization < 0 || math.IsNaN(utilization) {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	target := m.AmbientC + (m.MaxLoadC-m.AmbientC)*utilization
	// First-order relaxation: T += (target - T) * (1 - e^(-dt/tau)),
	// approximated by its linearization for stability at any dt.
	alpha := float64(dt) / float64(m.TimeConstant)
	if alpha > 1 {
		alpha = 1
	}
	m.tempC += (target - m.tempC) * alpha
}

// ThrottleFactor returns the current CPU throughput multiplier: 1.0 below
// the throttle threshold, falling linearly to the floor at max
// temperature. A degenerate span (ThrottleStartC at or above MaxLoadC)
// drops straight to the floor once throttling starts.
func (m *Model) ThrottleFactor() float64 {
	if m.tempC <= m.ThrottleStartC {
		return 1
	}
	span := m.MaxLoadC - m.ThrottleStartC
	if span <= 0 {
		return m.ThrottleFloorFactor
	}
	frac := (m.tempC - m.ThrottleStartC) / span
	if frac > 1 {
		frac = 1
	}
	return 1 - frac*(1-m.ThrottleFloorFactor)
}

// Headroom is the distance to the trip point in °C (negative past it,
// +Inf when no trip point is modeled).
func (m *Model) Headroom() float64 {
	if m.TripC <= 0 {
		return math.Inf(1)
	}
	return m.TripC - m.tempC
}

// Tripped reports whether the die is at or above the trip temperature.
// The model itself is memoryless about trips — cooling below TripC
// re-arms it; callers that need a latched trip (the serving layer)
// record the first firing themselves.
func (m *Model) Tripped() bool { return m.TripC > 0 && m.tempC >= m.TripC }

// IsIdle reports whether the die is within half a degree of ambient,
// i.e. the §III-D precondition for starting a measurement.
func (m *Model) IsIdle() bool { return m.tempC <= m.AmbientC+0.5 }

// Validate reports the first physically meaningless parameter. NaN and
// infinities are rejected explicitly: they compare false against every
// range check and would otherwise produce a silently degenerate model.
func (m *Model) Validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	switch {
	case bad(m.AmbientC) || bad(m.MaxLoadC) || bad(m.ThrottleStartC) || bad(m.ThrottleFloorFactor) || bad(m.TripC):
		return fmt.Errorf("thermal: parameters must be finite (ambient %g, max %g, start %g, floor %g, trip %g)",
			m.AmbientC, m.MaxLoadC, m.ThrottleStartC, m.ThrottleFloorFactor, m.TripC)
	case m.MaxLoadC <= m.AmbientC:
		return fmt.Errorf("thermal: max-load temperature %g must exceed ambient %g", m.MaxLoadC, m.AmbientC)
	case m.ThrottleFloorFactor <= 0 || m.ThrottleFloorFactor > 1:
		return fmt.Errorf("thermal: throttle floor must be in (0,1], got %g", m.ThrottleFloorFactor)
	case m.TimeConstant <= 0:
		return fmt.Errorf("thermal: time constant must be positive, got %v", m.TimeConstant)
	case m.TripC > 0 && m.TripC <= m.AmbientC:
		return fmt.Errorf("thermal: trip temperature %g must exceed ambient %g", m.TripC, m.AmbientC)
	}
	return nil
}

// Parse builds a model from a "key=value,..." spec over the defaults:
// ambient, max, start (throttle start), floor, tau, trip. "trip=0"
// disables the trip point. Example: "tau=2s,trip=88,start=70".
func Parse(spec string) (*Model, error) {
	m := Default()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("thermal: %q is not key=value", part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "ambient":
			_, err = fmt.Sscanf(val, "%g", &m.AmbientC)
		case "max":
			_, err = fmt.Sscanf(val, "%g", &m.MaxLoadC)
		case "start":
			_, err = fmt.Sscanf(val, "%g", &m.ThrottleStartC)
		case "floor":
			_, err = fmt.Sscanf(val, "%g", &m.ThrottleFloorFactor)
		case "tau":
			m.TimeConstant, err = time.ParseDuration(val)
		case "trip":
			_, err = fmt.Sscanf(val, "%g", &m.TripC)
		default:
			return nil, fmt.Errorf("thermal: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("thermal: %s=%q: %v", key, val, err)
		}
	}
	m.Reset()
	return m, m.Validate()
}
