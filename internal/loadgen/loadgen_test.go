package loadgen

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

func spec() Spec {
	return Spec{
		Seed: 42,
		Phases: []Phase{
			{QPS: 100, Duration: time.Second},
			{QPS: 400, Duration: 500 * time.Millisecond},
		},
		Mix: []Share{
			{Model: "MobileNet 1.0 v1", Weight: 2},
			{Model: "Deeplab-v3 MobileNet-v2", Weight: 1},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := spec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two generations of the same spec differ")
	}
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
}

func TestGenerateOrderedAndBounded(t *testing.T) {
	s := spec()
	arrivals, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	last := time.Duration(-1)
	for i, a := range arrivals {
		if a.ID != i {
			t.Fatalf("arrival %d has ID %d", i, a.ID)
		}
		if a.At <= last {
			t.Fatalf("arrival %d at %v not after previous %v", i, a.At, last)
		}
		last = a.At
		if a.At >= s.Duration() {
			t.Fatalf("arrival %d at %v beyond ramp end %v", i, a.At, s.Duration())
		}
		if a.Model != "MobileNet 1.0 v1" && a.Model != "Deeplab-v3 MobileNet-v2" {
			t.Fatalf("arrival %d has model %q outside the mix", i, a.Model)
		}
	}
}

func TestGenerateRateRoughlyHonoured(t *testing.T) {
	// 100 QPS for 1s + 400 QPS for 0.5s offers 300 expected arrivals;
	// a Poisson count should land well within ±40%.
	arrivals, err := spec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(arrivals); n < 180 || n > 420 {
		t.Fatalf("got %d arrivals, want roughly 300", n)
	}
	// The 400-QPS phase should hold more than a third of the traffic
	// despite being half as long as the 100-QPS phase.
	second := 0
	for _, a := range arrivals {
		if a.At >= time.Second {
			second++
		}
	}
	if second <= len(arrivals)/3 {
		t.Fatalf("high-QPS phase got %d of %d arrivals", second, len(arrivals))
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, _ := spec().Generate()
	s2 := spec()
	s2.Seed = 43
	b, _ := s2.Generate()
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestParseRamp(t *testing.T) {
	phases, err := ParseRamp("50x2s, 12.5x500ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Phase{{QPS: 50, Duration: 2 * time.Second}, {QPS: 12.5, Duration: 500 * time.Millisecond}}
	if !reflect.DeepEqual(phases, want) {
		t.Fatalf("got %+v, want %+v", phases, want)
	}
	for _, bad := range []string{"", "50", "x2s", "50x", "fastx2s", "50xlong"} {
		if _, err := ParseRamp(bad); err == nil {
			t.Errorf("ParseRamp(%q) succeeded, want error", bad)
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("MobileNet 1.0 v1=2, Deeplab-v3 MobileNet-v2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Share{{Model: "MobileNet 1.0 v1", Weight: 2}, {Model: "Deeplab-v3 MobileNet-v2", Weight: 1}}
	if !reflect.DeepEqual(mix, want) {
		t.Fatalf("got %+v, want %+v", mix, want)
	}
	for _, bad := range []string{"", "m=x", "m=", ","} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded, want error", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	good := spec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Phases = nil },
		func(s *Spec) { s.Phases[0].QPS = 0 },
		func(s *Spec) { s.Phases[0].Duration = 0 },
		func(s *Spec) { s.Mix = nil },
		func(s *Spec) { s.Mix[0].Weight = 0 },
		func(s *Spec) { s.Mix[0].Model = "" },
	}
	for i, mutate := range cases {
		s := spec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate succeeded, want error", i)
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d: error %v does not wrap ErrBadSpec", i, err)
		}
	}
}

func TestValidateRejectsNaNAndInf(t *testing.T) {
	// NaN compares false against "<= 0", so an untyped range check
	// would silently accept it and generate a degenerate schedule.
	cases := []func(*Spec){
		func(s *Spec) { s.Phases[0].QPS = math.NaN() },
		func(s *Spec) { s.Phases[0].QPS = math.Inf(1) },
		func(s *Spec) { s.Phases[0].QPS = -5 },
		func(s *Spec) { s.Mix[0].Class = "vip" },
	}
	for i, mutate := range cases {
		s := spec()
		mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("case %d: Validate succeeded, want error", i)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("case %d: error %v does not wrap ErrBadSpec", i, err)
		}
		if _, err := s.Generate(); err == nil {
			t.Errorf("case %d: Generate succeeded on an invalid spec", i)
		}
	}
}

func TestParseMixClasses(t *testing.T) {
	mix, err := ParseMix("MobileNet 1.0 v1=3:interactive, SqueezeNet:be, Deeplab-v3 MobileNet-v2=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Share{
		{Model: "MobileNet 1.0 v1", Weight: 3, Class: "interactive"},
		{Model: "SqueezeNet", Weight: 1, Class: "best-effort"},
		{Model: "Deeplab-v3 MobileNet-v2", Weight: 1, Class: ""},
	}
	if !reflect.DeepEqual(mix, want) {
		t.Fatalf("got %+v, want %+v", mix, want)
	}
	for _, bad := range []string{"m=1:vip", "m:platinum", ":interactive", "m=0:be", "m=-2"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) succeeded, want error", bad)
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseMix(%q): error %v does not wrap ErrBadSpec", bad, err)
		}
	}
}

func TestGeneratePropagatesClass(t *testing.T) {
	s := spec()
	s.Mix[0].Class = "interactive"
	s.Mix[1].Class = "best-effort"
	arrivals, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arrivals {
		want := "interactive"
		if a.Model == "Deeplab-v3 MobileNet-v2" {
			want = "best-effort"
		}
		if a.Class != want {
			t.Fatalf("arrival %d (%s) has class %q, want %q", a.ID, a.Model, a.Class, want)
		}
	}
}

func TestParseRampRejectsNonPositive(t *testing.T) {
	for _, bad := range []string{"NaN x1s", "NaNx1s", "0x1s", "-5x1s", "+Infx1s", "5x0s", "5x-1s"} {
		if _, err := ParseRamp(bad); err == nil {
			t.Errorf("ParseRamp(%q) succeeded, want error", bad)
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseRamp(%q): error %v does not wrap ErrBadSpec", bad, err)
		}
	}
}
