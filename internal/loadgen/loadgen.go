// Package loadgen generates deterministic open-loop request traffic for
// the serving frontend. An open-loop generator draws arrival times from
// the workload specification alone — arrivals never wait for the server,
// so queueing delay shows up as latency instead of silently throttling
// the offered rate (the coordinated-omission trap closed-loop generators
// fall into).
//
// Arrivals are a piecewise-constant-rate Poisson process: each ramp
// phase holds a constant QPS, and interarrival gaps are exponential
// draws from one seeded RNG. Because the exponential is memoryless,
// restarting the draw at each phase boundary with the new rate simulates
// the non-homogeneous process exactly. The whole schedule is a pure
// function of the Spec, so a fixed seed regenerates byte-identical
// traffic on any machine at any worker count.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"aitax/internal/qos"
	"aitax/internal/sim"
)

// ErrBadSpec tags every load-spec validation or parse error, so the
// edges (flag parsing, HTTP handlers) can recognize bad input with
// errors.Is instead of matching message text.
var ErrBadSpec = errors.New("loadgen: bad spec")

// Phase is one constant-rate segment of the QPS ramp.
type Phase struct {
	// QPS is the offered arrival rate in requests per second.
	QPS float64
	// Duration is how long the phase holds that rate.
	Duration time.Duration
}

// Share weights one model in the request mix. Requests pick their model
// independently per arrival, proportional to Weight. Class is the QoS
// class every request for this share carries (empty = standard).
type Share struct {
	Model  string
	Weight int
	Class  string
}

// Arrival is one generated request: when it reaches the server (virtual
// time from load start) and which model it asks for.
type Arrival struct {
	// ID numbers arrivals in time order, from 0.
	ID int
	// At is the arrival offset from the start of the load.
	At time.Duration
	// Model is the requested model's Table-I name.
	Model string
	// Class is the request's QoS class, copied from its mix share
	// (empty = standard; see qos.ParseClass).
	Class string
}

// Spec describes an open-loop load: the seed, the QPS ramp and the
// model mix. Generate turns it into a concrete arrival schedule.
type Spec struct {
	Seed   uint64
	Phases []Phase
	Mix    []Share
}

// Validate reports the first problem with the spec. All errors wrap
// ErrBadSpec. NaN and infinite rates are rejected explicitly: NaN
// compares false against every range check and would otherwise produce
// a silently degenerate (empty or endless) schedule.
func (s Spec) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("%w: needs at least one ramp phase", ErrBadSpec)
	}
	for i, p := range s.Phases {
		if !(p.QPS > 0) || math.IsInf(p.QPS, 0) {
			return fmt.Errorf("%w: phase %d: qps must be a positive finite number, got %g", ErrBadSpec, i, p.QPS)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("%w: phase %d: duration must be positive, got %v", ErrBadSpec, i, p.Duration)
		}
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("%w: needs at least one model in the mix", ErrBadSpec)
	}
	for i, m := range s.Mix {
		if m.Model == "" {
			return fmt.Errorf("%w: mix entry %d has no model name", ErrBadSpec, i)
		}
		if m.Weight <= 0 {
			return fmt.Errorf("%w: mix entry %d (%s): weight must be positive, got %d", ErrBadSpec, i, m.Model, m.Weight)
		}
		if _, err := qos.ParseClass(m.Class); err != nil {
			return fmt.Errorf("%w: mix entry %d (%s): %v", ErrBadSpec, i, m.Model, err)
		}
	}
	return nil
}

// Duration returns the total length of the ramp.
func (s Spec) Duration() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// Generate produces the arrival schedule: strictly ordered in time, IDs
// dense from 0. Each arrival draws its gap, then its model, from the
// same RNG, so the whole schedule is one deterministic sequence.
func (s Spec) Generate() ([]Arrival, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	total := 0
	for _, m := range s.Mix {
		total += m.Weight
	}
	rng := sim.NewRNG(s.Seed)
	var out []Arrival
	var phaseStart time.Duration
	for _, p := range s.Phases {
		end := phaseStart + p.Duration
		mean := float64(time.Second) / p.QPS // mean gap in ns
		// Memorylessness: a fresh draw at the phase boundary is exactly
		// the residual wait under the new rate.
		t := phaseStart + time.Duration(rng.Exp(mean))
		for t < end {
			pick := rng.Intn(total)
			model, class := "", ""
			for _, m := range s.Mix {
				if pick < m.Weight {
					model, class = m.Model, m.Class
					break
				}
				pick -= m.Weight
			}
			out = append(out, Arrival{ID: len(out), At: t, Model: model, Class: class})
			t += time.Duration(rng.Exp(mean))
		}
		phaseStart = end
	}
	return out, nil
}

// ParseRamp parses a ramp spec of the form "QPSxDURATION[,...]", e.g.
// "50x2s,200x2s,50x1s": 2 s at 50 QPS, then 2 s at 200, then 1 s back
// at 50. QPS may be fractional; durations use Go syntax.
func ParseRamp(s string) ([]Phase, error) {
	var phases []Phase
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		qpsStr, durStr, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("%w: ramp phase %q: want QPSxDURATION, e.g. 50x2s", ErrBadSpec, part)
		}
		qps, err := strconv.ParseFloat(qpsStr, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: ramp phase %q: bad qps %q", ErrBadSpec, part, qpsStr)
		}
		if !(qps > 0) || math.IsInf(qps, 0) {
			return nil, fmt.Errorf("%w: ramp phase %q: qps must be a positive finite number, got %g", ErrBadSpec, part, qps)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("%w: ramp phase %q: bad duration %q", ErrBadSpec, part, durStr)
		}
		if dur <= 0 {
			return nil, fmt.Errorf("%w: ramp phase %q: duration must be positive, got %v", ErrBadSpec, part, dur)
		}
		phases = append(phases, Phase{QPS: qps, Duration: dur})
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("%w: empty ramp spec", ErrBadSpec)
	}
	return phases, nil
}

// ParseMix parses a model mix of the form "MODEL[=WEIGHT][:CLASS][,...]",
// e.g. "MobileNet 1.0 v1=2:interactive,Deeplab-v3 MobileNet-v2:best-effort".
// An omitted weight is 1; an omitted class is standard. No Table-I model
// name contains a colon, so the class suffix is unambiguous.
func ParseMix(s string) ([]Share, error) {
	var mix []Share
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		class := ""
		weight := 1
		if hasWeight {
			weightStr, class, _ = cutClass(weightStr)
			w, err := strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil {
				return nil, fmt.Errorf("%w: mix entry %q: bad weight %q", ErrBadSpec, part, weightStr)
			}
			if w <= 0 {
				return nil, fmt.Errorf("%w: mix entry %q: weight must be positive, got %d", ErrBadSpec, part, w)
			}
			weight = w
		} else {
			name, class, _ = cutClass(name)
		}
		if name == "" {
			return nil, fmt.Errorf("%w: mix entry %q has no model name", ErrBadSpec, part)
		}
		cls, err := qos.ParseClass(class)
		if err != nil {
			return nil, fmt.Errorf("%w: mix entry %q: %v", ErrBadSpec, part, err)
		}
		if class != "" {
			class = cls.String() // canonical spelling
		}
		mix = append(mix, Share{Model: name, Weight: weight, Class: class})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("%w: empty mix spec", ErrBadSpec)
	}
	return mix, nil
}

// cutClass splits an optional ":CLASS" suffix off a mix segment.
func cutClass(s string) (rest, class string, ok bool) {
	rest, class, ok = strings.Cut(s, ":")
	return strings.TrimSpace(rest), strings.TrimSpace(class), ok
}
