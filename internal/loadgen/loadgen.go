// Package loadgen generates deterministic open-loop request traffic for
// the serving frontend. An open-loop generator draws arrival times from
// the workload specification alone — arrivals never wait for the server,
// so queueing delay shows up as latency instead of silently throttling
// the offered rate (the coordinated-omission trap closed-loop generators
// fall into).
//
// Arrivals are a piecewise-constant-rate Poisson process: each ramp
// phase holds a constant QPS, and interarrival gaps are exponential
// draws from one seeded RNG. Because the exponential is memoryless,
// restarting the draw at each phase boundary with the new rate simulates
// the non-homogeneous process exactly. The whole schedule is a pure
// function of the Spec, so a fixed seed regenerates byte-identical
// traffic on any machine at any worker count.
package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"aitax/internal/sim"
)

// Phase is one constant-rate segment of the QPS ramp.
type Phase struct {
	// QPS is the offered arrival rate in requests per second.
	QPS float64
	// Duration is how long the phase holds that rate.
	Duration time.Duration
}

// Share weights one model in the request mix. Requests pick their model
// independently per arrival, proportional to Weight.
type Share struct {
	Model  string
	Weight int
}

// Arrival is one generated request: when it reaches the server (virtual
// time from load start) and which model it asks for.
type Arrival struct {
	// ID numbers arrivals in time order, from 0.
	ID int
	// At is the arrival offset from the start of the load.
	At time.Duration
	// Model is the requested model's Table-I name.
	Model string
}

// Spec describes an open-loop load: the seed, the QPS ramp and the
// model mix. Generate turns it into a concrete arrival schedule.
type Spec struct {
	Seed   uint64
	Phases []Phase
	Mix    []Share
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("loadgen: spec needs at least one ramp phase")
	}
	for i, p := range s.Phases {
		if p.QPS <= 0 {
			return fmt.Errorf("loadgen: phase %d: qps must be positive, got %g", i, p.QPS)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("loadgen: phase %d: duration must be positive, got %v", i, p.Duration)
		}
	}
	if len(s.Mix) == 0 {
		return fmt.Errorf("loadgen: spec needs at least one model in the mix")
	}
	for i, m := range s.Mix {
		if m.Model == "" {
			return fmt.Errorf("loadgen: mix entry %d has no model name", i)
		}
		if m.Weight <= 0 {
			return fmt.Errorf("loadgen: mix entry %d (%s): weight must be positive, got %d", i, m.Model, m.Weight)
		}
	}
	return nil
}

// Duration returns the total length of the ramp.
func (s Spec) Duration() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// Generate produces the arrival schedule: strictly ordered in time, IDs
// dense from 0. Each arrival draws its gap, then its model, from the
// same RNG, so the whole schedule is one deterministic sequence.
func (s Spec) Generate() ([]Arrival, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	total := 0
	for _, m := range s.Mix {
		total += m.Weight
	}
	rng := sim.NewRNG(s.Seed)
	var out []Arrival
	var phaseStart time.Duration
	for _, p := range s.Phases {
		end := phaseStart + p.Duration
		mean := float64(time.Second) / p.QPS // mean gap in ns
		// Memorylessness: a fresh draw at the phase boundary is exactly
		// the residual wait under the new rate.
		t := phaseStart + time.Duration(rng.Exp(mean))
		for t < end {
			pick := rng.Intn(total)
			model := ""
			for _, m := range s.Mix {
				if pick < m.Weight {
					model = m.Model
					break
				}
				pick -= m.Weight
			}
			out = append(out, Arrival{ID: len(out), At: t, Model: model})
			t += time.Duration(rng.Exp(mean))
		}
		phaseStart = end
	}
	return out, nil
}

// ParseRamp parses a ramp spec of the form "QPSxDURATION[,...]", e.g.
// "50x2s,200x2s,50x1s": 2 s at 50 QPS, then 2 s at 200, then 1 s back
// at 50. QPS may be fractional; durations use Go syntax.
func ParseRamp(s string) ([]Phase, error) {
	var phases []Phase
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		qpsStr, durStr, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("loadgen: ramp phase %q: want QPSxDURATION, e.g. 50x2s", part)
		}
		qps, err := strconv.ParseFloat(qpsStr, 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: ramp phase %q: bad qps %q", part, qpsStr)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: ramp phase %q: bad duration %q", part, durStr)
		}
		phases = append(phases, Phase{QPS: qps, Duration: dur})
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("loadgen: empty ramp spec")
	}
	return phases, nil
}

// ParseMix parses a model mix of the form "MODEL[=WEIGHT][,...]", e.g.
// "MobileNet 1.0 v1=2,Deeplab-v3 MobileNet-v2". An omitted weight is 1.
func ParseMix(s string) ([]Share, error) {
	var mix []Share
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		weight := 1
		if hasWeight {
			w, err := strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil {
				return nil, fmt.Errorf("loadgen: mix entry %q: bad weight %q", part, weightStr)
			}
			weight = w
		}
		mix = append(mix, Share{Model: name, Weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix spec")
	}
	return mix, nil
}
