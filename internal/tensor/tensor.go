// Package tensor implements the dense tensor types that flow through the
// ML pipeline: FP32 and quantized INT8/UINT8 tensors with shapes and
// affine quantization parameters, as used by TFLite-style runtimes.
package tensor

import (
	"fmt"
	"math"
)

// DType identifies a tensor element type.
type DType int

// Supported element types.
const (
	Float32 DType = iota
	Int8
	UInt8
	Int32 // used for quantized bias and integer outputs
)

// String returns the conventional name of the type.
func (d DType) String() string {
	switch d {
	case Float32:
		return "fp32"
	case Int8:
		return "int8"
	case UInt8:
		return "uint8"
	case Int32:
		return "int32"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Size returns the element width in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Int8, UInt8:
		return 1
	default:
		panic("tensor: unknown dtype")
	}
}

// Shape is a tensor's dimension list, outermost first (e.g. NHWC).
type Shape []int

// Elems returns the total element count; an empty shape is a scalar (1).
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		if d < 0 {
			// Referencing s itself here would leak every caller's shape
			// argument to the heap (fmt boxes it), defeating the
			// stack-allocated shape literals on the Ensure hot path.
			panic(fmt.Sprintf("tensor: negative dimension %d in shape", d))
		}
		n *= d
	}
	return n
}

// Equal reports whether two shapes match exactly.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// String renders the shape as "[a b c]".
func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// QuantParams are the affine quantization parameters of a quantized
// tensor: real = scale * (q - zeroPoint).
type QuantParams struct {
	Scale     float64
	ZeroPoint int
}

// Quantize maps a real value to the quantized domain, rounding to nearest
// and saturating to the dtype's range.
func (q QuantParams) Quantize(x float64, d DType) int {
	if q.Scale == 0 {
		return q.ZeroPoint
	}
	v := int(math.Round(x/q.Scale)) + q.ZeroPoint
	lo, hi := dtypeRange(d)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Dequantize maps a quantized value back to the real domain.
func (q QuantParams) Dequantize(v int) float64 {
	return q.Scale * float64(v-q.ZeroPoint)
}

func dtypeRange(d DType) (int, int) {
	switch d {
	case Int8:
		return -128, 127
	case UInt8:
		return 0, 255
	case Int32:
		return math.MinInt32, math.MaxInt32
	default:
		panic("tensor: dtype has no integer range")
	}
}

// Tensor is a dense n-dimensional array. Exactly one of the backing
// slices is populated, matching DType.
type Tensor struct {
	Name  string
	Shape Shape
	DType DType
	Quant QuantParams // meaningful for Int8/UInt8

	F32 []float32
	I8  []int8
	U8  []uint8
	I32 []int32
}

// New allocates a zeroed tensor of the given type and shape.
func New(d DType, shape Shape) *Tensor {
	t := &Tensor{Shape: shape.Clone(), DType: d}
	n := shape.Elems()
	switch d {
	case Float32:
		t.F32 = make([]float32, n)
	case Int8:
		t.I8 = make([]int8, n)
	case UInt8:
		t.U8 = make([]uint8, n)
	case Int32:
		t.I32 = make([]int32, n)
	}
	return t
}

// NewQuant allocates a quantized tensor with parameters q.
func NewQuant(d DType, shape Shape, q QuantParams) *Tensor {
	t := New(d, shape)
	t.Quant = q
	return t
}

// Ensure returns a tensor of the given dtype and shape, reusing t (and
// its backing storage, when large enough) instead of allocating. A nil t
// allocates fresh. Contents are undefined afterwards — the caller must
// overwrite every element. This is the scratch-tensor primitive the
// pooled pre-/post-processing paths build on: in steady state (same
// dtype and shape every frame) it allocates nothing.
func Ensure(t *Tensor, d DType, shape Shape) *Tensor {
	if t == nil {
		return New(d, shape)
	}
	if !t.Shape.Equal(shape) {
		t.Shape = shape.Clone()
	}
	n := t.Shape.Elems()
	t.DType = d
	switch d {
	case Float32:
		t.F32 = growSlice(t.F32, n)
	case Int8:
		t.I8 = growSlice(t.I8, n)
	case UInt8:
		t.U8 = growSlice(t.U8, n)
	case Int32:
		t.I32 = growSlice(t.I32, n)
	}
	return t
}

func growSlice[E any](s []E, n int) []E {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]E, n)
}

// Elems returns the element count.
func (t *Tensor) Elems() int { return t.Shape.Elems() }

// Bytes returns the storage footprint in bytes.
func (t *Tensor) Bytes() int { return t.Elems() * t.DType.Size() }

// At returns element i as a float64 in the *real* domain (dequantized for
// quantized tensors).
func (t *Tensor) At(i int) float64 {
	switch t.DType {
	case Float32:
		return float64(t.F32[i])
	case Int8:
		return t.Quant.Dequantize(int(t.I8[i]))
	case UInt8:
		return t.Quant.Dequantize(int(t.U8[i]))
	case Int32:
		return float64(t.I32[i])
	default:
		panic("tensor: unknown dtype")
	}
}

// RawAt returns element i in the stored (possibly quantized) domain.
func (t *Tensor) RawAt(i int) float64 {
	switch t.DType {
	case Float32:
		return float64(t.F32[i])
	case Int8:
		return float64(t.I8[i])
	case UInt8:
		return float64(t.U8[i])
	case Int32:
		return float64(t.I32[i])
	default:
		panic("tensor: unknown dtype")
	}
}

// Set stores a real-domain value at index i, quantizing if needed.
func (t *Tensor) Set(i int, x float64) {
	switch t.DType {
	case Float32:
		t.F32[i] = float32(x)
	case Int8:
		t.I8[i] = int8(t.Quant.Quantize(x, Int8))
	case UInt8:
		t.U8[i] = uint8(t.Quant.Quantize(x, UInt8))
	case Int32:
		t.I32[i] = int32(math.Round(x))
	default:
		panic("tensor: unknown dtype")
	}
}

// Fill sets every element to the real-domain value x.
func (t *Tensor) Fill(x float64) {
	for i, n := 0, t.Elems(); i < n; i++ {
		t.Set(i, x)
	}
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Name: t.Name, Shape: t.Shape.Clone(), DType: t.DType, Quant: t.Quant}
	switch t.DType {
	case Float32:
		out.F32 = append([]float32(nil), t.F32...)
	case Int8:
		out.I8 = append([]int8(nil), t.I8...)
	case UInt8:
		out.U8 = append([]uint8(nil), t.U8...)
	case Int32:
		out.I32 = append([]int32(nil), t.I32...)
	}
	return out
}

// String describes the tensor without dumping its contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%s %s %s)", t.Name, t.DType, t.Shape)
}

// ChooseQuantParams picks affine parameters covering [lo, hi] for dtype d,
// in the style of post-training quantization. The range is widened to
// include zero so that zero is exactly representable.
func ChooseQuantParams(lo, hi float64, d DType) QuantParams {
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		hi = lo + 1
	}
	qlo, qhi := dtypeRange(d)
	scale := (hi - lo) / float64(qhi-qlo)
	zp := qlo - int(math.Round(lo/scale))
	if zp < qlo {
		zp = qlo
	}
	if zp > qhi {
		zp = qhi
	}
	return QuantParams{Scale: scale, ZeroPoint: zp}
}

// QuantizeTensor converts an FP32 tensor to the quantized dtype d using
// parameters chosen from the tensor's observed range.
func QuantizeTensor(t *Tensor, d DType) *Tensor {
	return QuantizeTensorInto(nil, t, d)
}

// QuantizeTensorInto is the scratch-reusing variant of QuantizeTensor:
// dst (which may be nil) is recycled through Ensure. Returns the
// quantized tensor, which aliases dst's storage when reused.
func QuantizeTensorInto(dst, t *Tensor, d DType) *Tensor {
	if t.DType != Float32 {
		panic("tensor: QuantizeTensor requires an fp32 input")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range t.F32 {
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if len(t.F32) == 0 {
		lo, hi = 0, 1
	}
	q := ChooseQuantParams(lo, hi, d)
	out := Ensure(dst, d, t.Shape)
	out.Quant = q
	out.Name = t.Name
	for i, v := range t.F32 {
		out.Set(i, float64(v))
	}
	return out
}

// DequantizeTensor converts a quantized tensor to FP32.
func DequantizeTensor(t *Tensor) *Tensor {
	return DequantizeTensorInto(nil, t)
}

// DequantizeTensorInto is the scratch-reusing variant of
// DequantizeTensor: dst (which may be nil) is recycled through Ensure.
func DequantizeTensorInto(dst, t *Tensor) *Tensor {
	out := Ensure(dst, Float32, t.Shape)
	out.Quant = QuantParams{}
	out.Name = t.Name
	for i, n := 0, t.Elems(); i < n; i++ {
		out.F32[i] = float32(t.At(i))
	}
	return out
}
