package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	cases := []struct {
		s    Shape
		want int
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{1, 224, 224, 3}, 150528},
		{Shape{2, 0, 3}, 0},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.want {
			t.Errorf("%v.Elems() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeEqualClone(t *testing.T) {
	a := Shape{1, 2, 3}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = 9
	if a[0] == 9 {
		t.Fatal("clone aliased original")
	}
	if a.Equal(Shape{1, 2}) || a.Equal(Shape{1, 2, 4}) {
		t.Fatal("unequal shapes reported equal")
	}
}

func TestDTypeSize(t *testing.T) {
	if Float32.Size() != 4 || Int8.Size() != 1 || UInt8.Size() != 1 || Int32.Size() != 4 {
		t.Fatal("dtype sizes wrong")
	}
	for _, d := range []DType{Float32, Int8, UInt8, Int32} {
		if d.String() == "" {
			t.Fatal("dtype name empty")
		}
	}
}

func TestQuantRoundTrip(t *testing.T) {
	q := QuantParams{Scale: 0.5, ZeroPoint: 10}
	for _, x := range []float64{-3, -0.5, 0, 0.5, 7} {
		v := q.Quantize(x, Int8)
		back := q.Dequantize(v)
		if math.Abs(back-x) > q.Scale/2+1e-12 {
			t.Errorf("round trip %v -> %d -> %v exceeds half scale", x, v, back)
		}
	}
}

func TestQuantSaturates(t *testing.T) {
	q := QuantParams{Scale: 1, ZeroPoint: 0}
	if v := q.Quantize(1000, Int8); v != 127 {
		t.Fatalf("int8 saturation = %d, want 127", v)
	}
	if v := q.Quantize(-1000, Int8); v != -128 {
		t.Fatalf("int8 saturation = %d, want -128", v)
	}
	if v := q.Quantize(-5, UInt8); v != 0 {
		t.Fatalf("uint8 saturation = %d, want 0", v)
	}
	if v := q.Quantize(300, UInt8); v != 255 {
		t.Fatalf("uint8 saturation = %d, want 255", v)
	}
}

func TestZeroScaleQuantize(t *testing.T) {
	q := QuantParams{Scale: 0, ZeroPoint: 3}
	if v := q.Quantize(12, UInt8); v != 3 {
		t.Fatalf("zero-scale quantize = %d, want zero point", v)
	}
}

func TestChooseQuantParamsRepresentsZero(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		for _, d := range []DType{Int8, UInt8} {
			q := ChooseQuantParams(lo, hi, d)
			if q.Scale <= 0 {
				return false
			}
			// Zero must be exactly representable.
			if q.Dequantize(q.ZeroPoint) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTensorSetAt(t *testing.T) {
	tt := New(Float32, Shape{2, 2})
	tt.Set(3, 1.5)
	if tt.At(3) != 1.5 {
		t.Fatalf("At = %v, want 1.5", tt.At(3))
	}
	if tt.Bytes() != 16 {
		t.Fatalf("bytes = %d, want 16", tt.Bytes())
	}
}

func TestQuantizedTensorSetAt(t *testing.T) {
	q := QuantParams{Scale: 0.1, ZeroPoint: 0}
	tt := NewQuant(Int8, Shape{4}, q)
	tt.Set(0, 1.23)
	if math.Abs(tt.At(0)-1.2) > 0.051 {
		t.Fatalf("quantized At = %v, want ~1.2", tt.At(0))
	}
	if tt.RawAt(0) != 12 {
		t.Fatalf("raw = %v, want 12", tt.RawAt(0))
	}
}

func TestFill(t *testing.T) {
	tt := New(Float32, Shape{10})
	tt.Fill(2.5)
	for i := 0; i < 10; i++ {
		if tt.At(i) != 2.5 {
			t.Fatalf("fill failed at %d", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tt := New(Float32, Shape{3})
	tt.Fill(1)
	c := tt.Clone()
	c.Set(0, 9)
	if tt.At(0) != 1 {
		t.Fatal("clone aliased storage")
	}
	for _, d := range []DType{Int8, UInt8, Int32} {
		x := New(d, Shape{2})
		x.Quant = QuantParams{Scale: 1}
		x.Set(0, 1)
		y := x.Clone()
		y.Set(0, 2)
		if x.At(0) == y.At(0) {
			t.Fatalf("clone aliased %v storage", d)
		}
	}
}

func TestQuantizeDequantizeTensor(t *testing.T) {
	tt := New(Float32, Shape{100})
	for i := 0; i < 100; i++ {
		tt.F32[i] = float32(i)/10 - 5 // [-5, 4.9]
	}
	for _, d := range []DType{Int8, UInt8} {
		qt := QuantizeTensor(tt, d)
		if qt.DType != d || !qt.Shape.Equal(tt.Shape) {
			t.Fatalf("quantized tensor has wrong type/shape")
		}
		back := DequantizeTensor(qt)
		for i := 0; i < 100; i++ {
			if math.Abs(float64(back.F32[i])-float64(tt.F32[i])) > qt.Quant.Scale {
				t.Fatalf("%v round trip error at %d: %v vs %v", d, i, back.F32[i], tt.F32[i])
			}
		}
	}
}

func TestQuantizeTensorProperty(t *testing.T) {
	// Property: quantize→dequantize error is bounded by one scale step.
	f := func(raw []float32) bool {
		tt := New(Float32, Shape{len(raw)})
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 1e5 {
				v = 0
			}
			tt.F32[i] = v
		}
		qt := QuantizeTensor(tt, Int8)
		for i := range tt.F32 {
			if math.Abs(qt.At(i)-float64(tt.F32[i])) > qt.Quant.Scale+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTensorString(t *testing.T) {
	tt := New(Int8, Shape{1, 2})
	tt.Name = "x"
	if tt.String() == "" {
		t.Fatal("empty string")
	}
}
