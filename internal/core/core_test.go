package core

import (
	"strings"
	"testing"
	"time"

	"aitax/internal/app"
	"aitax/internal/driver"
)

func TestTaxonomyCoversFigure1(t *testing.T) {
	tax := Taxonomy()
	if len(tax) != 9 {
		t.Fatalf("taxonomy leaves = %d, want 9", len(tax))
	}
	byCat := map[Category]int{}
	for _, c := range tax {
		byCat[c.Category]++
		if c.Name == "" || c.Detail == "" {
			t.Fatal("incomplete taxonomy entry")
		}
	}
	if byCat[CategoryAlgorithms] != 3 || byCat[CategoryFrameworks] != 3 || byCat[CategoryHardware] != 3 {
		t.Fatalf("category split = %v", byCat)
	}
	out := RenderTaxonomy()
	for _, want := range []string{"Algorithms", "Frameworks", "Hardware", "Data Capture", "Offload"} {
		if !strings.Contains(out, want) {
			t.Fatalf("taxonomy render missing %q", want)
		}
	}
}

func frames() []app.FrameStats {
	mk := func(c, p, i, po, u int) app.FrameStats {
		ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
		return app.FrameStats{
			Capture: ms(c), Pre: ms(p), Inference: ms(i), Post: ms(po), UI: ms(u),
			Total: ms(c + p + i + po + u),
		}
	}
	return []app.FrameStats{
		mk(10, 6, 8, 1, 4),
		mk(12, 6, 8, 1, 4),
		mk(14, 6, 8, 1, 4),
	}
}

func TestFromFramesAggregates(t *testing.T) {
	b := FromFrames(frames())
	if b.N != 3 {
		t.Fatalf("n = %d", b.N)
	}
	if b.DataCapture != 12*time.Millisecond {
		t.Fatalf("capture mean = %v, want 12ms", b.DataCapture)
	}
	if b.ModelExecution != 8*time.Millisecond {
		t.Fatalf("inference mean = %v", b.ModelExecution)
	}
	if b.Total() != 31*time.Millisecond {
		t.Fatalf("total = %v", b.Total())
	}
	if b.Tax() != 23*time.Millisecond {
		t.Fatalf("tax = %v", b.Tax())
	}
	frac := b.TaxFraction()
	if frac < 0.74 || frac > 0.75 {
		t.Fatalf("tax fraction = %v, want ~0.742", frac)
	}
	if b.E2E.N != 3 || b.E2E.Mean < 30 || b.E2E.Mean > 32 {
		t.Fatalf("e2e summary = %+v", b.E2E)
	}
}

func TestEmptyFrames(t *testing.T) {
	b := FromFrames(nil)
	if b.Total() != 0 || b.TaxFraction() != 0 {
		t.Fatal("empty breakdown must be zero")
	}
}

func TestRenderBreakdown(t *testing.T) {
	out := FromFrames(frames()).Render()
	for _, want := range []string{"data capture", "model execution", "AI tax", "end-to-end"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestInvocationTax(t *testing.T) {
	it := FromResult(driver.Result{Compute: 6 * time.Millisecond,
		Overhead: 2 * time.Millisecond, Queue: 2 * time.Millisecond})
	if f := it.TaxFraction(); f != 0.4 {
		t.Fatalf("invocation tax fraction = %v, want 0.4", f)
	}
	if (InvocationTax{}).TaxFraction() != 0 {
		t.Fatal("zero invocation must have zero tax")
	}
}
