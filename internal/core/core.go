// Package core implements the paper's central abstraction: the AI tax —
// the time a system spends on tasks that enable ML model execution but
// are not the model execution itself. It provides the Fig. 1 taxonomy
// (algorithms / frameworks / hardware), per-stage breakdown accounting,
// and report rendering used by the experiment harness and the CLI tools.
package core

import (
	"fmt"
	"strings"
	"time"

	"aitax/internal/app"
	"aitax/internal/driver"
	"aitax/internal/stats"
)

// Category is a top-level AI-tax source from Fig. 1.
type Category string

// Fig. 1 categories.
const (
	CategoryAlgorithms Category = "Algorithms"
	CategoryFrameworks Category = "Frameworks"
	CategoryHardware   Category = "Hardware"
)

// Component is a leaf of the Fig. 1 taxonomy.
type Component struct {
	Category Category
	Name     string
	// Detail describes where the overhead comes from.
	Detail string
}

// Taxonomy returns the Fig. 1 overhead tree.
func Taxonomy() []Component {
	return []Component{
		{CategoryAlgorithms, "Data Capture", "sensor acquisition, buffer handling, bitmap formatting"},
		{CategoryAlgorithms, "Pre-processing", "scale, crop, normalize, rotate, type conversion, tokenization"},
		{CategoryAlgorithms, "Post-processing", "topK, dequantization, NMS, keypoints, mask flattening"},
		{CategoryFrameworks, "Drivers", "vendor driver op coverage and kernel quality"},
		{CategoryFrameworks, "Offload", "partition handoffs, FastRPC crossings, cache maintenance"},
		{CategoryFrameworks, "Scheduling", "device assignment, CPU fallback, partition planning"},
		{CategoryHardware, "Multitenancy", "contention for the single DSP / CPU cores"},
		{CategoryHardware, "Run-to-run Variability", "OS scheduling, interrupts, GC, sensor jitter"},
		{CategoryHardware, "Cold Start", "one-time accelerator session setup and model compilation"},
	}
}

// RenderTaxonomy draws the Fig. 1 tree as text.
func RenderTaxonomy() string {
	var b strings.Builder
	b.WriteString("AI Tax taxonomy (Fig. 1)\n")
	var last Category
	for _, c := range Taxonomy() {
		if c.Category != last {
			fmt.Fprintf(&b, "%s\n", c.Category)
			last = c.Category
		}
		fmt.Fprintf(&b, "  %-24s %s\n", c.Name, c.Detail)
	}
	return b.String()
}

// Breakdown is an aggregated per-stage latency account over a run.
type Breakdown struct {
	N int

	DataCapture    time.Duration
	PreProcessing  time.Duration
	ModelExecution time.Duration
	PostProcessing time.Duration
	UI             time.Duration

	// Retry and Fallback are mean per-frame fault-recovery times spent
	// inside the inference stage (they are contained in ModelExecution's
	// wall time but are tax, not model compute). Zero on fault-free runs.
	Retry    time.Duration
	Fallback time.Duration

	// Distribution of end-to-end latency across the run (Fig. 11).
	E2E stats.Summary
}

// FromFrames aggregates instrumented app frames into mean stage times.
func FromFrames(frames []app.FrameStats) Breakdown {
	b := Breakdown{N: len(frames)}
	if len(frames) == 0 {
		return b
	}
	e2e := stats.NewSample()
	for _, f := range frames {
		b.DataCapture += f.Capture
		b.PreProcessing += f.Pre
		b.ModelExecution += f.Inference
		b.PostProcessing += f.Post
		b.UI += f.UI
		b.Retry += f.Retry
		b.Fallback += f.Fallback
		e2e.Add(float64(f.Total) / float64(time.Millisecond))
	}
	n := time.Duration(len(frames))
	b.DataCapture /= n
	b.PreProcessing /= n
	b.ModelExecution /= n
	b.PostProcessing /= n
	b.UI /= n
	b.Retry /= n
	b.Fallback /= n
	b.E2E = e2e.Summarize()
	return b
}

// Total returns the mean end-to-end stage sum.
func (b Breakdown) Total() time.Duration {
	return b.DataCapture + b.PreProcessing + b.ModelExecution + b.PostProcessing + b.UI
}

// Tax returns the mean non-inference time. Fault recovery that happened
// inside the inference stage (retries, delegate fallback) is tax too;
// on fault-free runs this is exactly Total - ModelExecution.
func (b Breakdown) Tax() time.Duration { return b.Total() - b.ModelExecution + b.Retry + b.Fallback }

// TaxFraction returns the AI-tax share of end-to-end time.
func (b Breakdown) TaxFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Tax()) / float64(t)
}

// Render draws the breakdown as an aligned table.
func (b Breakdown) Render() string {
	var sb strings.Builder
	total := b.Total()
	row := func(name string, d time.Duration) {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(&sb, "  %-18s %10.2f ms  %5.1f%%\n", name, ms(d), pct)
	}
	fmt.Fprintf(&sb, "stage breakdown over %d frames:\n", b.N)
	row("data capture", b.DataCapture)
	row("pre-processing", b.PreProcessing)
	row("model execution", b.ModelExecution)
	row("post-processing", b.PostProcessing)
	row("ui/render", b.UI)
	if b.Retry > 0 || b.Fallback > 0 {
		// Only fault-injected runs grow this line, so fault-free output
		// stays byte-identical.
		fmt.Fprintf(&sb, "  %-18s %10.2f ms  (retry %.2f ms, fallback %.2f ms, inside inference)\n",
			"fault recovery", ms(b.Retry+b.Fallback), ms(b.Retry), ms(b.Fallback))
	}
	fmt.Fprintf(&sb, "  %-18s %10.2f ms\n", "end-to-end", ms(total))
	fmt.Fprintf(&sb, "  AI tax: %.2f ms (%.1f%% of end-to-end)\n", ms(b.Tax()), 100*b.TaxFraction())
	return sb.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// InvocationTax splits a single framework invocation result into model
// time and framework/offload tax.
type InvocationTax struct {
	Compute  time.Duration
	Overhead time.Duration
	Queue    time.Duration
}

// FromResult converts a driver result into an invocation tax record.
func FromResult(r driver.Result) InvocationTax {
	return InvocationTax{Compute: r.Compute, Overhead: r.Overhead, Queue: r.Queue}
}

// TaxFraction returns the non-compute share of the invocation.
func (t InvocationTax) TaxFraction() float64 {
	total := t.Compute + t.Overhead + t.Queue
	if total == 0 {
		return 0
	}
	return float64(t.Overhead+t.Queue) / float64(total)
}
