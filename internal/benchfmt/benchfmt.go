// Package benchfmt parses `go test -bench -benchmem` output into a
// stable JSON benchmark report (the BENCH_<date>.json artifact `make
// bench` emits) and compares two reports for regressions — the gate that
// protects the allocation-free hot path from bit-rot.
//
// The format is deliberately small: one entry per benchmark name with
// ns/op, B/op, allocs/op and any custom ReportMetric units. Duplicate
// runs of one benchmark (e.g. -count > 1, or the same name in several
// packages) collapse to the fastest run, the usual best-of-N convention
// for throughput benchmarks.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's measured result.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// so reports compare across machines with different core counts.
	Name string `json:"name"`
	// Iterations is b.N of the kept (fastest) run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -benchmem's allocation figures.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics carries custom b.ReportMetric units (e.g. "app/cli-x").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	// Date is the emission date (YYYY-MM-DD), supplied by the caller.
	Date string `json:"date"`
	// GoOS/GoArch/CPU echo the `go test` header lines when present.
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Entries are the benchmarks, sorted by name.
	Entries []Entry `json:"benchmarks"`
}

// Lookup returns the entry with the given name, or nil.
func (r *Report) Lookup(name string) *Entry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// maxprocsSuffix matches the "-8" GOMAXPROCS suffix of a benchmark name.
var maxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and collects benchmark entries.
// Non-benchmark lines (test output, PASS/ok, shape-check notes) are
// ignored. Duplicate names keep the run with the lowest ns/op.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	best := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		e, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if prev, seen := best[e.Name]; !seen || e.NsPerOp < prev.NsPerOp {
			best[e.Name] = e
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, e := range best {
		rep.Entries = append(rep.Entries, e)
	}
	sort.Slice(rep.Entries, func(i, j int) bool { return rep.Entries[i].Name < rep.Entries[j].Name })
	return rep, nil
}

// parseBenchLine parses one "BenchmarkFoo-8  100  123 ns/op  45 B/op ..."
// result line.
func parseBenchLine(line string) (Entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{
		Name:       maxprocsSuffix.ReplaceAllString(f[0], ""),
		Iterations: iters,
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = v
		}
	}
	if e.NsPerOp == 0 && e.Iterations == 0 {
		return Entry{}, false
	}
	return e, true
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read deserializes a report written by Write.
func Read(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name string
	// OldNs/NewNs are ns/op; NsRatio is New/Old (1.0 = unchanged).
	OldNs, NewNs, NsRatio float64
	// OldAllocs/NewAllocs are allocs/op; AllocsRatio is New/Old, with
	// 0→0 reported as 1.0 and 0→n as +Inf.
	OldAllocs, NewAllocs, AllocsRatio float64
	// Regressed marks deltas beyond the comparison threshold.
	Regressed bool
}

// Comparison is the outcome of comparing two reports.
type Comparison struct {
	Deltas []Delta
	// OnlyOld/OnlyNew list benchmarks present in just one report.
	OnlyOld, OnlyNew []string
	// Skipped lists benchmarks excluded from a wall-time comparison
	// because one side was a single-iteration run (see CompareWall).
	Skipped []string
}

// Regressions returns the regressed deltas.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// minNsFloor ignores ns/op regressions on benchmarks faster than this
// (sub-microsecond timings are dominated by harness noise); allocs/op is
// exact and always gated.
const minNsFloor = 1000.0

// ratio returns new/old with the 0/0 = 1 convention; anything appearing
// where there was nothing (0 → n) is +Inf, which every threshold flags.
func ratio(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return newV / oldV
}

// Compare matches benchmarks by name and flags entries whose ns/op or
// allocs/op grew by more than threshold (0.10 = 10%).
func Compare(old, new *Report, threshold float64) *Comparison {
	return compare(old, new, threshold, false)
}

// CompareAllocs is Compare restricted to the zero-alloc gate: a
// benchmark that was allocation-free in the old report must stay at 0
// allocs/op; everything else (ns/op, nonzero alloc counts) is reported
// without gating. This is the mode for single-iteration CI smoke runs:
// wall time is pure noise there, and nonzero alloc counts are inflated
// by first-call cache/pool warm-up, but 0 → n on a steady-state-zero
// hot path is an exact, reproducible regression.
func CompareAllocs(old, new *Report, threshold float64) *Comparison {
	return compare(old, new, threshold, true)
}

// CompareWall is the wall-time gate for multi-iteration runs: it flags
// entries whose ns/op grew by more than threshold, subject to two noise
// guards. Entries where either report is a single-iteration run are
// skipped entirely (listed in Comparison.Skipped) — a -benchtime=1x
// timing is dominated by first-call warm-up and proves nothing about
// steady state. Entries whose old ns/op is below floorNs are reported
// but not gated: the shorter the op, the larger the scheduler-jitter
// share, so sub-floor timings cannot carry a trustworthy verdict.
// Allocs/op growth beyond threshold is gated on every non-skipped entry
// with no floor — allocation counts are exact at steady state.
func CompareWall(old, new *Report, threshold, floorNs float64) *Comparison {
	c := &Comparison{}
	for _, oe := range old.Entries {
		ne := new.Lookup(oe.Name)
		if ne == nil {
			c.OnlyOld = append(c.OnlyOld, oe.Name)
			continue
		}
		if oe.Iterations <= 1 || ne.Iterations <= 1 {
			c.Skipped = append(c.Skipped, oe.Name)
			continue
		}
		d := Delta{
			Name:        oe.Name,
			OldNs:       oe.NsPerOp,
			NewNs:       ne.NsPerOp,
			NsRatio:     ratio(oe.NsPerOp, ne.NsPerOp),
			OldAllocs:   oe.AllocsPerOp,
			NewAllocs:   ne.AllocsPerOp,
			AllocsRatio: ratio(oe.AllocsPerOp, ne.AllocsPerOp),
		}
		if d.NsRatio > 1+threshold && oe.NsPerOp >= floorNs {
			d.Regressed = true
		}
		if d.AllocsRatio > 1+threshold {
			d.Regressed = true
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, ne := range new.Entries {
		if old.Lookup(ne.Name) == nil {
			c.OnlyNew = append(c.OnlyNew, ne.Name)
		}
	}
	return c
}

func compare(old, new *Report, threshold float64, allocsOnly bool) *Comparison {
	c := &Comparison{}
	newSeen := make(map[string]bool)
	for _, ne := range new.Entries {
		newSeen[ne.Name] = true
	}
	for _, oe := range old.Entries {
		ne := new.Lookup(oe.Name)
		if ne == nil {
			c.OnlyOld = append(c.OnlyOld, oe.Name)
			continue
		}
		d := Delta{
			Name:        oe.Name,
			OldNs:       oe.NsPerOp,
			NewNs:       ne.NsPerOp,
			NsRatio:     ratio(oe.NsPerOp, ne.NsPerOp),
			OldAllocs:   oe.AllocsPerOp,
			NewAllocs:   ne.AllocsPerOp,
			AllocsRatio: ratio(oe.AllocsPerOp, ne.AllocsPerOp),
		}
		if allocsOnly {
			if oe.AllocsPerOp == 0 && ne.AllocsPerOp > 0 {
				d.Regressed = true
			}
		} else {
			if d.NsRatio > 1+threshold && oe.NsPerOp >= minNsFloor {
				d.Regressed = true
			}
			if d.AllocsRatio > 1+threshold {
				d.Regressed = true
			}
		}
		c.Deltas = append(c.Deltas, d)
	}
	for _, ne := range new.Entries {
		if old.Lookup(ne.Name) == nil {
			c.OnlyNew = append(c.OnlyNew, ne.Name)
		}
	}
	return c
}

// Render writes a human-readable comparison table; regressions are
// marked "REGRESSED".
func (c *Comparison) Render(w io.Writer) {
	fmt.Fprintf(w, "%-44s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %7.1f%% %10.0f %10.0f %7.1f%%%s\n",
			d.Name, d.OldNs, d.NewNs, (d.NsRatio-1)*100,
			d.OldAllocs, d.NewAllocs, (d.AllocsRatio-1)*100, mark)
	}
	for _, n := range c.Skipped {
		fmt.Fprintf(w, "%-44s skipped (single-iteration run)\n", n)
	}
	for _, n := range c.OnlyOld {
		fmt.Fprintf(w, "%-44s only in old report\n", n)
	}
	for _, n := range c.OnlyNew {
		fmt.Fprintf(w, "%-44s only in new report\n", n)
	}
}
