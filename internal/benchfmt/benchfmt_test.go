package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: aitax
cpu: AMD EPYC 7B13
BenchmarkAppPipeline-8   	     100	  11054321 ns/op	  987654 B/op	    1234 allocs/op
BenchmarkYUVToARGB480p-8 	    2000	    654321 ns/op	  691200 B/op	       1 allocs/op
BenchmarkTopK-8          	   10000	    123456 ns/op	   49152 B/op	       3 allocs/op
BenchmarkWithMetric-8    	     500	   2000000 ns/op	       12.5 frames/s	       0 B/op	       0 allocs/op
some unrelated line
PASS
ok  	aitax	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header = %q %q %q", rep.GoOS, rep.GoArch, rep.CPU)
	}
	if len(rep.Entries) != 4 {
		t.Fatalf("got %d entries, want 4: %+v", len(rep.Entries), rep.Entries)
	}
	e := rep.Lookup("BenchmarkAppPipeline")
	if e == nil {
		t.Fatal("BenchmarkAppPipeline missing (suffix not stripped?)")
	}
	if e.Iterations != 100 || e.NsPerOp != 11054321 || e.BytesPerOp != 987654 || e.AllocsPerOp != 1234 {
		t.Fatalf("entry = %+v", *e)
	}
	m := rep.Lookup("BenchmarkWithMetric")
	if m == nil || m.Metrics["frames/s"] != 12.5 {
		t.Fatalf("custom metric not parsed: %+v", m)
	}
}

func TestParseKeepsFastestDuplicate(t *testing.T) {
	out := `BenchmarkX-8   100   2000 ns/op   16 B/op   1 allocs/op
BenchmarkX-8   200   1500 ns/op   16 B/op   1 allocs/op
`
	rep, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].NsPerOp != 1500 {
		t.Fatalf("entries = %+v", rep.Entries)
	}
}

func TestRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	rep.Date = "2026-08-05"
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != "2026-08-05" || len(back.Entries) != len(rep.Entries) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if got := back.Lookup("BenchmarkTopK"); got == nil || got.AllocsPerOp != 3 {
		t.Fatalf("round trip entry mismatch: %+v", got)
	}
}

func mkReport(entries ...Entry) *Report { return &Report{Entries: entries} }

func TestCompareFlagsRegressions(t *testing.T) {
	old := mkReport(
		Entry{Name: "BenchmarkA", NsPerOp: 100000, AllocsPerOp: 100},
		Entry{Name: "BenchmarkB", NsPerOp: 100000, AllocsPerOp: 10},
		Entry{Name: "BenchmarkGone", NsPerOp: 5000},
	)
	newR := mkReport(
		Entry{Name: "BenchmarkA", NsPerOp: 120000, AllocsPerOp: 100}, // +20% ns: regression
		Entry{Name: "BenchmarkB", NsPerOp: 90000, AllocsPerOp: 12},   // +20% allocs: regression
		Entry{Name: "BenchmarkNew", NsPerOp: 1},
	)
	c := Compare(old, newR, 0.10)
	regs := c.Regressions()
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v", regs)
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkGone" {
		t.Fatalf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkNew" {
		t.Fatalf("OnlyNew = %v", c.OnlyNew)
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	old := mkReport(Entry{Name: "BenchmarkA", NsPerOp: 100000, AllocsPerOp: 100})
	newR := mkReport(Entry{Name: "BenchmarkA", NsPerOp: 105000, AllocsPerOp: 105})
	if regs := Compare(old, newR, 0.10).Regressions(); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %+v", regs)
	}
}

func TestCompareNoiseFloorAndZeroAllocs(t *testing.T) {
	// ns/op regressions below the noise floor are ignored; an alloc
	// appearing on a previously allocation-free path is always flagged.
	old := mkReport(Entry{Name: "BenchmarkTiny", NsPerOp: 50, AllocsPerOp: 0})
	newR := mkReport(Entry{Name: "BenchmarkTiny", NsPerOp: 90, AllocsPerOp: 0})
	if regs := Compare(old, newR, 0.10).Regressions(); len(regs) != 0 {
		t.Fatalf("noise-floor delta flagged: %+v", regs)
	}
	newR.Entries[0].AllocsPerOp = 1
	if regs := Compare(old, newR, 0.10).Regressions(); len(regs) != 1 {
		t.Fatalf("0→1 allocs not flagged: %+v", regs)
	}
}

func TestCompareAllocsGatesOnlyZeroAllocPaths(t *testing.T) {
	// A 10x wall-time swing and nonzero alloc growth (both normal for
	// -benchtime=1x smoke runs, which pay first-call warm-up) must not
	// fail the allocs-only gate...
	old := mkReport(Entry{Name: "BenchmarkA", NsPerOp: 100000, AllocsPerOp: 4})
	newR := mkReport(Entry{Name: "BenchmarkA", NsPerOp: 1000000, AllocsPerOp: 9})
	if regs := CompareAllocs(old, newR, 0.10).Regressions(); len(regs) != 0 {
		t.Fatalf("warm-up deltas flagged in allocs-only mode: %+v", regs)
	}
	// ...but an alloc appearing on a zero-alloc path still must.
	old.Entries[0].AllocsPerOp = 0
	newR.Entries[0].AllocsPerOp = 1
	if regs := CompareAllocs(old, newR, 0.10).Regressions(); len(regs) != 1 {
		t.Fatalf("0→1 allocs not flagged in allocs-only mode: %+v", regs)
	}
}

func TestRenderMarksRegressions(t *testing.T) {
	old := mkReport(Entry{Name: "BenchmarkA", NsPerOp: 100000, AllocsPerOp: 100})
	newR := mkReport(Entry{Name: "BenchmarkA", NsPerOp: 150000, AllocsPerOp: 100})
	var buf bytes.Buffer
	Compare(old, newR, 0.10).Render(&buf)
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("render output missing REGRESSED marker:\n%s", buf.String())
	}
}

func TestCompareWallSkipsSingleIterationRuns(t *testing.T) {
	// A 3x wall-time regression is invisible to the wall gate when
	// either side is a -benchtime=1x run: 1-iteration timings are
	// warm-up, not steady state. The entry is skipped, not judged.
	old := mkReport(
		Entry{Name: "BenchmarkSmoke", Iterations: 1, NsPerOp: 100000},
		Entry{Name: "BenchmarkHot", Iterations: 100, NsPerOp: 100000},
	)
	newR := mkReport(
		Entry{Name: "BenchmarkSmoke", Iterations: 100, NsPerOp: 300000},
		Entry{Name: "BenchmarkHot", Iterations: 1, NsPerOp: 300000},
	)
	c := CompareWall(old, newR, 0.10, 1000)
	if regs := c.Regressions(); len(regs) != 0 {
		t.Fatalf("single-iteration entries judged: %+v", regs)
	}
	if len(c.Skipped) != 2 {
		t.Fatalf("Skipped = %v, want both entries", c.Skipped)
	}
	if len(c.Deltas) != 0 {
		t.Fatalf("skipped entries still produced deltas: %+v", c.Deltas)
	}
}

func TestCompareWallGatesMultiIterationWallTime(t *testing.T) {
	old := mkReport(
		Entry{Name: "BenchmarkKernel", Iterations: 100, NsPerOp: 100000},
		Entry{Name: "BenchmarkSteady", Iterations: 100, NsPerOp: 100000},
	)
	newR := mkReport(
		Entry{Name: "BenchmarkKernel", Iterations: 100, NsPerOp: 150000}, // +50% ns: regression
		Entry{Name: "BenchmarkSteady", Iterations: 100, NsPerOp: 110000}, // +10%: within threshold
	)
	regs := CompareWall(old, newR, 0.40, 1000).Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkKernel" {
		t.Fatalf("regressions = %+v, want just BenchmarkKernel", regs)
	}
}

func TestCompareWallNoiseFloor(t *testing.T) {
	// Below the floor the op is too short for jitter-free timing: the
	// delta is reported but never gated. At or above the floor it is.
	old := mkReport(
		Entry{Name: "BenchmarkMicro", Iterations: 1000, NsPerOp: 4000},
		Entry{Name: "BenchmarkMacro", Iterations: 1000, NsPerOp: 5000},
	)
	newR := mkReport(
		Entry{Name: "BenchmarkMicro", Iterations: 1000, NsPerOp: 12000},
		Entry{Name: "BenchmarkMacro", Iterations: 1000, NsPerOp: 15000},
	)
	c := CompareWall(old, newR, 0.40, 5000)
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkMacro" {
		t.Fatalf("regressions = %+v, want just BenchmarkMacro", regs)
	}
	if len(c.Deltas) != 2 {
		t.Fatalf("sub-floor entry dropped from the report: %+v", c.Deltas)
	}
}

func TestCompareWallGatesAllocsWithoutFloor(t *testing.T) {
	// Allocation counts are exact at steady state, so alloc growth is
	// gated on every multi-iteration entry — even sub-floor ones.
	old := mkReport(Entry{Name: "BenchmarkMicro", Iterations: 1000, NsPerOp: 100, AllocsPerOp: 10})
	newR := mkReport(Entry{Name: "BenchmarkMicro", Iterations: 1000, NsPerOp: 100, AllocsPerOp: 20})
	if regs := CompareWall(old, newR, 0.40, 5000).Regressions(); len(regs) != 1 {
		t.Fatalf("steady-state alloc growth not flagged: %+v", regs)
	}
}

func TestRenderListsSkippedEntries(t *testing.T) {
	old := mkReport(Entry{Name: "BenchmarkSmoke", Iterations: 1, NsPerOp: 100000})
	newR := mkReport(Entry{Name: "BenchmarkSmoke", Iterations: 1, NsPerOp: 900000})
	var buf bytes.Buffer
	CompareWall(old, newR, 0.40, 5000).Render(&buf)
	if !strings.Contains(buf.String(), "skipped (single-iteration run)") {
		t.Fatalf("render output missing skip note:\n%s", buf.String())
	}
}
