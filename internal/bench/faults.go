package bench

import (
	"fmt"
	"time"

	"aitax/internal/app"
	"aitax/internal/core"
	"aitax/internal/faults"
	"aitax/internal/models"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// faultScenario is one (label, plan) row of the fault experiment.
type faultScenario struct {
	label string
	plan  faults.Plan
}

// faultRunStats is everything one faulted run reports back.
type faultRunStats struct {
	breakdown core.Breakdown
	initTime  time.Duration
	fellBack  bool
	injected  int
	frames    int
}

// FaultTolerance demonstrates the robustness side of the AI tax: the
// offload path the paper profiles (FastRPC, delegate bring-up, the
// shared DSP) can fail, and a production stack survives by retrying and
// by degrading to CPU execution — paying for survival with extra tax.
// Each row runs MobileNet v1 int8 on the Hexagon delegate under one
// deterministic fault plan: a clean baseline, a delegate-init failure
// that re-plans the whole model onto the CPU interpreter, flaky FastRPC
// invokes that stretch frames with retry backoff, and a thermal trip
// that kills the accelerator mid-run.
func FaultTolerance(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:    "faults",
		Title: "Fault tolerance: MobileNet v1 int8 on Hexagon under injected offload failures",
		Headers: []string{"scenario", "init (ms)", "inference (ms)", "retry (ms)",
			"fallback (ms)", "total (ms)", "tax %", "faults", "on CPU"},
	}
	frames := cfg.Runs / 2
	if frames < 10 {
		frames = 10
	}

	run := func(plan faults.Plan) (faultRunStats, bool) {
		rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
		inj, err := faults.New(plan.Resolved(cfg.Seed))
		if err != nil {
			return faultRunStats{}, false
		}
		rt.Faults = inj
		a, err := app.New(rt, app.Config{
			Model: m, DType: tensor.UInt8, Delegate: tflite.DelegateHexagon, Streaming: true,
		})
		if err != nil {
			return faultRunStats{}, false
		}
		var out faultRunStats
		a.Init(func() {
			a.Run(frames+2, func(sts []app.FrameStats) {
				out.breakdown = core.FromFrames(sts[2:])
				out.frames = len(sts[2:])
				a.StopStream()
			})
		})
		rt.Eng.Run()
		out.initTime = a.Interpreter().InitTime
		out.fellBack = a.Interpreter().FellBack()
		out.injected = inj.InjectedTotal()
		return out, true
	}

	scenarios := []faultScenario{
		{"none (baseline)", faults.Plan{}},
		{"delegate-init failure", faults.Plan{DelegateInitFailRate: 1}},
		{"flaky FastRPC (retry)", faults.Plan{RPCTimeoutRate: 0.2, Deadline: 8 * time.Millisecond}},
		{"thermal trip mid-run", faults.Plan{ThermalTripAt: 150 * time.Millisecond}},
	}
	if cfg.Faults.Enabled() {
		scenarios = append(scenarios, faultScenario{"custom (-faults)", cfg.Faults})
	}

	stats := make(map[string]faultRunStats, len(scenarios))
	for _, sc := range scenarios {
		st, ok := run(sc.plan)
		if !ok {
			r.Notes = append(r.Notes, "setup failed")
			return r
		}
		stats[sc.label] = st
		onCPU := "no"
		if st.fellBack {
			onCPU = "yes"
		}
		b := st.breakdown
		r.AddRow(sc.label, msf(st.initTime), msf(b.ModelExecution), msf(b.Retry),
			msf(b.Fallback), msf(b.Total()), fmt.Sprintf("%.1f", 100*b.TaxFraction()),
			st.injected, onCPU)
	}

	base, initFail, flaky, trip :=
		stats["none (baseline)"], stats["delegate-init failure"],
		stats["flaky FastRPC (retry)"], stats["thermal trip mid-run"]
	completed := base.frames == frames && initFail.frames == frames &&
		flaky.frames == frames && trip.frames == frames
	switch {
	case !completed:
		r.Notes = append(r.Notes, "shape check FAIL: a faulted run did not complete every frame")
	case base.injected != 0 || base.breakdown.Retry != 0 || base.breakdown.Fallback != 0:
		r.Notes = append(r.Notes, "shape check FAIL: the baseline must stay fault-free")
	case !initFail.fellBack || initFail.initTime <= base.initTime ||
		initFail.breakdown.ModelExecution <= base.breakdown.ModelExecution:
		r.Notes = append(r.Notes, "shape check FAIL: delegate-init failure must re-plan onto the slower CPU")
	case flaky.breakdown.Retry <= 0:
		r.Notes = append(r.Notes, "shape check FAIL: flaky FastRPC must surface retry backoff as tax")
	case !trip.fellBack:
		r.Notes = append(r.Notes, "shape check FAIL: a thermal trip must end in CPU fallback")
	default:
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: all %d frames completed under every plan; init failure re-planned onto CPU (tax %.1f%% vs %.1f%% baseline), retries added %.2f ms/frame, thermal trip degraded to CPU mid-run",
			frames, 100*initFail.breakdown.TaxFraction(), 100*base.breakdown.TaxFraction(),
			ms(flaky.breakdown.Retry)))
	}
	r.Notes = append(r.Notes,
		"recovery is tax: every retry and fallback millisecond lands outside model execution, exactly the time inference-only benchmarks never see (§III)")
	return r
}
