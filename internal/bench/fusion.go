package bench

import (
	"fmt"
	"time"

	"aitax/internal/models"
	"aitax/internal/nn"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// FusionAblation measures the activation-fusion graph optimization that
// production runtimes apply: folding element-wise activations into their
// producing convolutions removes per-op dispatch (CPU) and kernel-launch
// (GPU) overheads without changing total FLOPs. An ablation of a design
// choice DESIGN.md calls out: how much of the framework tax is pure op
// bookkeeping?
func FusionAblation(cfg Config) *Result {
	cfg = cfg.Defaults()
	r := &Result{
		ID:    "fusion",
		Title: "Activation-fusion ablation: per-op overhead share",
		Headers: []string{"Model", "delegate", "ops", "fused ops",
			"plain (ms)", "fused (ms)", "saved"},
	}
	type cfgRow struct {
		model    string
		delegate tflite.Delegate
		dt       tensor.DType
	}
	allSaved := true
	for _, c := range []cfgRow{
		{"MobileNet 1.0 v1", tflite.DelegateCPU, tensor.Float32},
		{"MobileNet 1.0 v1", tflite.DelegateGPU, tensor.Float32},
		{"Inception v3", tflite.DelegateGPU, tensor.Float32},
		{"EfficientNet-Lite0", tflite.DelegateHexagon, tensor.UInt8},
	} {
		m, _ := models.ByName(c.model)
		measure := func(fuse bool) (time.Duration, int) {
			rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
			ip, err := rt.NewInterpreter(m, c.dt, tflite.Options{
				Delegate: c.delegate, FuseActivations: fuse,
			})
			if err != nil {
				return 0, 0
			}
			var warm time.Duration
			ip.Init(func() {
				ip.Invoke(func(tflite.Report) {
					start := rt.Eng.Now()
					ip.Invoke(func(tflite.Report) { warm = rt.Eng.Now().Sub(start) })
				})
			})
			rt.Eng.Run()
			return warm, ip.Segments()
		}
		plain, _ := measure(false)
		fused, _ := measure(true)
		if plain == 0 || fused == 0 {
			continue
		}
		fusedGraph := nn.FuseActivations(m.Graph)
		saved := float64(plain-fused) / float64(plain)
		if fused > plain {
			allSaved = false
		}
		r.AddRow(c.model, c.delegate.String(), m.Graph.NumOps(), fusedGraph.NumOps(),
			msf(plain), msf(fused), fmt.Sprintf("%.1f%%", 100*saved))
	}
	if allSaved {
		r.Notes = append(r.Notes,
			"shape check PASS: fusion never hurts; savings scale with op count and per-op overhead (largest on launch-heavy GPU paths)")
	} else {
		r.Notes = append(r.Notes, "shape check FAIL: fusion regressed a configuration")
	}
	return r
}
