package bench

import (
	"context"
	"fmt"

	"aitax/internal/lab"
)

// RunExperimentsCtx runs the given experiments across a lab worker pool
// of the given size (<= 0 means GOMAXPROCS) and returns their results in
// the order the experiments were given, regardless of completion order —
// output rendered from the slice is byte-identical at any parallelism.
//
// A panicking or failing experiment becomes an error Result (its Notes
// carry a "setup failed" line that aitax-validate and the bench tests
// flag) instead of taking the run down. Cancelling ctx skips every
// experiment that has not started and returns the context's error
// alongside the partial results.
func RunExperimentsCtx(ctx context.Context, exps []Experiment, cfg Config, parallelism int) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := make([]lab.Job, len(exps))
	for i, e := range exps {
		e := e
		jobs[i] = lab.Job{
			ID: e.ID,
			Run: func(ctx context.Context) (any, error) {
				return e.RunCtx(ctx, cfg)
			},
		}
	}
	l := &lab.Lab{Parallelism: parallelism}
	results := l.Run(ctx, jobs)
	out := make([]*Result, len(results))
	for i, r := range results {
		switch {
		case r.Err != nil:
			out[i] = errorResult(exps[i], r.Err)
		default:
			out[i] = r.Value.(*Result)
		}
	}
	return out, ctx.Err()
}

// RunAll regenerates every experiment in paper order across a worker
// pool of the given size (<= 0 means GOMAXPROCS). It is the library
// counterpart of `aitax-experiments -run all -parallel N`.
func RunAll(cfg Config, parallelism int) []*Result {
	out, _ := RunExperimentsCtx(context.Background(), Experiments(), cfg, parallelism)
	return out
}

// RunAllCtx is RunAll with cancellation.
func RunAllCtx(ctx context.Context, cfg Config, parallelism int) ([]*Result, error) {
	return RunExperimentsCtx(ctx, Experiments(), cfg, parallelism)
}

// errorResult packages a failed experiment as a renderable Result whose
// note matches the "setup failed" convention the validation gate scans
// for.
func errorResult(e Experiment, err error) *Result {
	return &Result{
		ID:    e.ID,
		Title: e.Title,
		Notes: []string{fmt.Sprintf("setup failed: %v", err)},
	}
}
