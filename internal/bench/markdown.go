package bench

import (
	"fmt"
	"strings"
)

// RenderMarkdown draws the result as GitHub-flavored markdown, for
// report generation (aitax-experiments -format markdown).
func (r *Result) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	if len(r.Headers) > 0 {
		writeMDRow(&b, r.Headers)
		sep := make([]string, len(r.Headers))
		for i := range sep {
			sep[i] = "---"
		}
		writeMDRow(&b, sep)
		for _, row := range r.Rows {
			writeMDRow(&b, row)
		}
		b.WriteString("\n")
	}
	for _, blk := range r.Blocks {
		b.WriteString("```\n")
		b.WriteString(blk)
		if !strings.HasSuffix(blk, "\n") {
			b.WriteString("\n")
		}
		b.WriteString("```\n\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

func writeMDRow(b *strings.Builder, cells []string) {
	b.WriteString("|")
	for _, c := range cells {
		b.WriteString(" ")
		b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
		b.WriteString(" |")
	}
	b.WriteString("\n")
}

// RenderCSV emits the result's table as CSV (blocks and notes are
// dropped; they are not tabular).
func (r *Result) RenderCSV() string {
	var b strings.Builder
	writeCSVRow(&b, r.Headers)
	for _, row := range r.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteString(",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteString("\n")
}
