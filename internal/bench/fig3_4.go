package bench

import (
	"fmt"

	"aitax/internal/tflite"
)

// Figure3 regenerates the paper's Fig. 3: end-to-end latency of the same
// models run as (1) the CLI benchmark utility, (2) the Android benchmark
// app, and (3) a real application — all with CPU inference. The expected
// shape: app > benchmark app > CLI, for every model.
func Figure3(cfg Config) *Result {
	cfg = cfg.Defaults()
	r := &Result{
		ID:    "fig3",
		Title: "End-to-end latency: CLI benchmark vs benchmark app vs application (CPU, 4 threads)",
		Headers: []string{"Model", "CLI bench (ms)", "Benchmark app (ms)",
			"Application (ms)", "App/CLI"},
	}
	ordered := true
	for _, v := range figureModels(false) {
		cli, err := benchToolRun(cfg.Platform, cfg.Seed, v.M, v.DT, tflite.DelegateCPU, 4, cfg.Runs, false)
		if err != nil {
			continue
		}
		wrapped, err := benchToolRun(cfg.Platform, cfg.Seed+1, v.M, v.DT, tflite.DelegateCPU, 4, cfg.Runs, true)
		if err != nil {
			continue
		}
		frames, err := appRun(cfg.Platform, cfg.Seed+2, v.M, v.DT, tflite.DelegateCPU,
			appRunOpts{Frames: cfg.Runs})
		if err != nil {
			continue
		}
		cliMean := meanSample(cli).Total
		appWrapMean := meanSample(wrapped).Total
		appMean := meanFrames(frames).Total
		if !(appMean > appWrapMean && appWrapMean > cliMean) {
			ordered = false
		}
		r.AddRow(variantName(v.M, v.DT), msf(cliMean), msf(appWrapMean), msf(appMean),
			fmt.Sprintf("%.2fx", float64(appMean)/float64(cliMean)))
	}
	if ordered {
		r.Notes = append(r.Notes, "shape check PASS: application > benchmark app > CLI for every model (paper Fig. 3)")
	} else {
		r.Notes = append(r.Notes, "shape check FAIL: expected application > benchmark app > CLI everywhere")
	}
	return r
}

// fig4Row holds one model's benchmark-vs-app stage means.
type fig4Row struct {
	name                         string
	benchCap, benchPre, benchInf float64
	appCap, appPre, appInf       float64
}

func figure4Data(cfg Config) []fig4Row {
	cfg = cfg.Defaults()
	var rows []fig4Row
	for _, v := range figureModels(true) { // NNAPI path, as the paper uses
		bench, err := benchToolRun(cfg.Platform, cfg.Seed, v.M, v.DT, tflite.DelegateNNAPI, 4, cfg.Runs, false)
		if err != nil {
			continue
		}
		frames, err := appRun(cfg.Platform, cfg.Seed+1, v.M, v.DT, tflite.DelegateNNAPI,
			appRunOpts{Frames: cfg.Runs})
		if err != nil {
			continue
		}
		bm := meanSample(bench)
		am := meanFrames(frames)
		rows = append(rows, fig4Row{
			name:     variantName(v.M, v.DT),
			benchCap: ms(bm.DataCapture), benchPre: ms(bm.Pre), benchInf: ms(bm.Inference),
			appCap: ms(am.Capture), appPre: ms(am.Pre), appInf: ms(am.Inference),
		})
	}
	return rows
}

// Figure4a regenerates Fig. 4a: absolute data-capture, pre-processing
// and inference latency, benchmark vs application, via NNAPI.
func Figure4a(cfg Config) *Result {
	r := &Result{
		ID:    "fig4a",
		Title: "Data capture & pre-processing vs inference, benchmark vs application (NNAPI)",
		Headers: []string{"Model", "bench capture", "bench pre", "bench infer",
			"app capture", "app pre", "app infer"},
	}
	var appHeavy, total int
	for _, row := range figure4Data(cfg) {
		r.AddRow(row.name,
			fmt.Sprintf("%.2f", row.benchCap), fmt.Sprintf("%.2f", row.benchPre), fmt.Sprintf("%.2f", row.benchInf),
			fmt.Sprintf("%.2f", row.appCap), fmt.Sprintf("%.2f", row.appPre), fmt.Sprintf("%.2f", row.appInf))
		total++
		if row.appCap+row.appPre > row.benchCap+row.benchPre {
			appHeavy++
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"shape check: %d/%d models spend more on capture+pre inside an application than inside the benchmark", appHeavy, total),
		"all latencies in milliseconds, mean over runs")
	return r
}

// Figure4b regenerates Fig. 4b: capture and pre-processing latency
// relative to inference latency.
func Figure4b(cfg Config) *Result {
	r := &Result{
		ID:      "fig4b",
		Title:   "Capture and pre-processing relative to inference (NNAPI)",
		Headers: []string{"Model", "bench (cap+pre)/inf", "app (cap+pre)/inf"},
	}
	for _, row := range figure4Data(cfg) {
		br := (row.benchCap + row.benchPre) / row.benchInf
		ar := (row.appCap + row.appPre) / row.appInf
		r.AddRow(row.name, fmt.Sprintf("%.2f", br), fmt.Sprintf("%.2f", ar))
		switch row.name {
		case "MobileNet 1.0 v1-int8":
			if ar >= 1 {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"quantized MobileNet spends %.1fx inference time on capture+pre in the app (paper: up to ~2x)", ar))
			}
		case "Inception v3-fp32":
			if ar < 0.5 {
				r.Notes = append(r.Notes,
					"Inception v3: inference latency dominates, as §IV-A reports")
			}
		}
	}
	return r
}
