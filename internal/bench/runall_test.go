package bench

import (
	"context"
	"strings"
	"testing"
)

// renderAll joins the rendered results the way aitax-experiments does.
func renderAll(rs []*Result) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(r.Render())
		b.WriteString("\n")
	}
	return b.String()
}

func TestRunExperimentsParallelByteIdentical(t *testing.T) {
	// A representative subset (app runs, bench-tool runs, timelines,
	// distribution histograms) rendered at parallelism 1 vs 8 must be
	// byte-identical: the merge is deterministic and the experiments
	// share no state.
	var subset []Experiment
	for _, id := range []string{"fig5", "fig8", "coldstart", "init", "post", "fig11"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, e)
	}
	cfg := Config{Seed: 42, Runs: 8}

	seqRes, err := RunExperimentsCtx(context.Background(), subset, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := RunExperimentsCtx(context.Background(), subset, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	seq, par := renderAll(seqRes), renderAll(parRes)
	if seq != par {
		t.Fatalf("parallel output diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if len(seq) < 200 {
		t.Fatalf("suspiciously small output:\n%s", seq)
	}
}

func TestRunExperimentsPanicBecomesErrorResult(t *testing.T) {
	exps := []Experiment{
		{ID: "ok-before", Title: "healthy", Run: TableII},
		{ID: "boom", Title: "exploding experiment", Run: func(Config) *Result {
			panic("synthetic failure")
		}},
		{ID: "ok-after", Title: "healthy", Run: TableII},
	}
	rs, err := RunExperimentsCtx(context.Background(), exps, Config{Runs: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	if len(rs[0].Rows) != 4 || len(rs[2].Rows) != 4 {
		t.Fatal("healthy experiments disturbed by the panicking one")
	}
	if rs[1].ID != "boom" || len(rs[1].Notes) != 1 {
		t.Fatalf("error result = %+v", rs[1])
	}
	if !strings.Contains(rs[1].Notes[0], "setup failed") ||
		!strings.Contains(rs[1].Notes[0], "synthetic failure") {
		t.Fatalf("error note = %q", rs[1].Notes[0])
	}
	// The error result must render (the CLI prints it like any other).
	if out := rs[1].Render(); !strings.Contains(out, "setup failed") {
		t.Fatalf("error result render = %q", out)
	}
}

func TestRunExperimentsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs, err := RunExperimentsCtx(ctx, Experiments()[:3], Config{Runs: 5}, 1)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range rs {
		if len(r.Notes) == 0 || !strings.Contains(r.Notes[0], "setup failed") {
			t.Fatalf("cancelled experiment result = %+v", r)
		}
	}
}

func TestRunCtxRespectsContext(t *testing.T) {
	e, _ := ByID("table2")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunCtx(ctx, Config{Runs: 5}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	res, err := e.RunCtx(context.Background(), Config{Runs: 5})
	if err != nil || len(res.Rows) != 4 {
		t.Fatalf("RunCtx = %v, %v", res, err)
	}
}

func TestRunAllCoversEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	rs := RunAll(Config{Runs: 4}, 0)
	if len(rs) != len(Experiments()) {
		t.Fatalf("RunAll returned %d results, want %d", len(rs), len(Experiments()))
	}
	for i, e := range Experiments() {
		if rs[i].ID != e.ID {
			t.Fatalf("result %d = %s, want %s (paper order must be preserved)", i, rs[i].ID, e.ID)
		}
	}
}

func TestConfigSeedZeroRequestable(t *testing.T) {
	c := Config{Seed: 0, SeedSet: true}.Defaults()
	if c.Seed != 0 || !c.SeedSet {
		t.Fatalf("explicit seed 0 coerced: %+v", c)
	}
	d := Config{}.Defaults()
	if d.Seed != DefaultSeed {
		t.Fatalf("unset seed = %d, want DefaultSeed", d.Seed)
	}
	e := Config{Seed: 7}.Defaults()
	if e.Seed != 7 {
		t.Fatalf("non-zero seed rewritten: %+v", e)
	}
}
