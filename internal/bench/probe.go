package bench

import (
	"time"

	"aitax/internal/driver"
	"aitax/internal/fastrpc"
	"aitax/internal/models"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/tensor"
	"aitax/internal/trace"
)

// probeRun measures one warm inference with and without driver
// instrumentation, on the DSP (dsp=true) or the 4-thread CPU path.
func probeRun(cfg Config, m *models.Model, dsp bool) (plain, probed time.Duration) {
	measure := func(instrument bool) time.Duration {
		p := clonePlatform(cfg.Platform)
		eng := sim.NewEngine()
		sch := sched.New(eng, sched.DefaultConfig())
		var target driver.Target
		if dsp {
			res := sim.NewResource(eng, "dsp", 1)
			ch := fastrpc.NewChannel(eng, p.RPC, res)
			target = driver.NewDSPTarget("snpe-dsp", &p.DSP, ch, 0.95, driver.SNPESupports)
		} else {
			target = driver.NewCPUTarget("cpu", sch, &p.Big, 4)
		}
		if instrument {
			target = trace.Instrument(target, eng)
		}
		var warm time.Duration
		target.Execute(m.Graph.Ops(), tensor.UInt8, func(driver.Result) {
			start := eng.Now()
			target.Execute(m.Graph.Ops(), tensor.UInt8, func(driver.Result) {
				warm = eng.Now().Sub(start)
			})
		})
		eng.Run()
		return warm
	}
	return measure(false), measure(true)
}
