package bench

import (
	"fmt"
	"time"

	"aitax/internal/models"
	"aitax/internal/stats"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// multiTenancy runs the classification app with 0..maxBG background
// inference jobs on the given delegate and tabulates the stage means.
func multiTenancy(cfg Config, bgDelegate tflite.Delegate, id, title string) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:    id,
		Title: title,
		Headers: []string{"Background jobs", "capture (ms)", "pre (ms)",
			"inference (ms)", "post (ms)", "total (ms)"},
	}
	frames := cfg.Runs / 2
	if frames < 8 {
		frames = 8
	}
	var inf0, infN, capPre0, capPreN time.Duration
	var xs, ys []float64
	maxBG := 4
	for n := 0; n <= maxBG; n++ {
		sts, err := appRun(cfg.Platform, cfg.Seed, m, tensor.UInt8, tflite.DelegateNNAPI,
			appRunOpts{Frames: frames, Background: n, BGDelegate: bgDelegate, BGDType: tensor.UInt8})
		if err != nil {
			r.Notes = append(r.Notes, "setup failed: "+err.Error())
			return r
		}
		mean := meanFrames(sts)
		r.AddRow(n, msf(mean.Capture), msf(mean.Pre), msf(mean.Inference),
			msf(mean.Post), msf(mean.Total))
		xs = append(xs, float64(n))
		ys = append(ys, ms(mean.Inference))
		if n == 0 {
			inf0, capPre0 = mean.Inference, mean.Capture+mean.Pre
		}
		if n == maxBG {
			infN, capPreN = mean.Inference, mean.Capture+mean.Pre
		}
	}
	infGrowth := float64(infN) / float64(inf0)
	capGrowth := float64(capPreN) / float64(capPre0)
	r.Notes = append(r.Notes, fmt.Sprintf(
		"inference latency grew %.1fx, capture+pre grew %.1fx across 0->%d background jobs",
		infGrowth, capGrowth, maxBG))
	if fit := stats.LinReg(xs, ys); infGrowth > 1.5 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"linearity of the inference growth: %.2f ms per background job, R^2 = %.3f (paper: \"linear increase\")",
			fit.Slope, fit.R2))
	}
	return r
}

// Figure9 regenerates the paper's Fig. 9: latency breakdown of the image
// classification app while increasingly many background inferences run
// through the NNAPI Hexagon path. Inference stalls on the single DSP;
// capture and pre-processing stay approximately constant.
func Figure9(cfg Config) *Result {
	r := multiTenancy(cfg, tflite.DelegateHexagon, "fig9",
		"App breakdown vs background NNAPI(DSP) inferences")
	r.Notes = append(r.Notes,
		"expected shape: inference grows ~linearly (one DSP), capture+pre flat (paper Fig. 9)")
	return r
}

// Figure10 regenerates the paper's Fig. 10: the same experiment with the
// background inferences scheduled on the CPU. Now capture and
// pre-processing stretch, while the app's DSP inference stays flat.
func Figure10(cfg Config) *Result {
	r := multiTenancy(cfg, tflite.DelegateCPU, "fig10",
		"App breakdown vs background CPU inferences")
	r.Notes = append(r.Notes,
		"expected shape: capture+pre grow (CPU contention), inference flat (paper Fig. 10)")
	return r
}

// Figure11 regenerates the paper's Fig. 11: the latency distribution of
// MobileNet v1 classification on the CPU, contrasting the benchmark
// utility's tight distribution with the application's wide one.
func Figure11(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	runs := cfg.Runs * 2
	r := &Result{
		ID:    "fig11",
		Title: "Latency distribution: MobileNet v1 (fp32) on CPU, application vs benchmark",
		Headers: []string{"Form factor", "n", "mean (ms)", "median (ms)",
			"stddev (ms)", "CV", "max dev from median"},
	}

	bench, err := benchToolRun(cfg.Platform, cfg.Seed, m, tensor.Float32, tflite.DelegateCPU, 4, runs, false)
	if err != nil {
		r.Notes = append(r.Notes, "setup failed: "+err.Error())
		return r
	}
	benchSample := stats.NewSample()
	for _, s := range bench {
		benchSample.Add(ms(s.Total))
	}

	frames, err := appRun(cfg.Platform, cfg.Seed+1, m, tensor.Float32, tflite.DelegateCPU,
		appRunOpts{Frames: runs})
	if err != nil {
		r.Notes = append(r.Notes, "setup failed: "+err.Error())
		return r
	}
	appSample := stats.NewSample()
	for _, f := range frames {
		appSample.Add(ms(f.Total))
	}

	for _, row := range []struct {
		label string
		s     *stats.Sample
	}{{"benchmark utility", benchSample}, {"application", appSample}} {
		sum := row.s.Summarize()
		r.AddRow(row.label, sum.N, fmt.Sprintf("%.2f", sum.Mean),
			fmt.Sprintf("%.2f", sum.Median), fmt.Sprintf("%.2f", sum.StdDev),
			fmt.Sprintf("%.1f%%", 100*sum.CV),
			fmt.Sprintf("%.1f%%", 100*sum.MaxDevFromMedian))
	}

	r.Blocks = append(r.Blocks,
		"benchmark latency histogram (ms):\n"+stats.HistogramOf(benchSample, 12).Render(40),
		"application latency histogram (ms):\n"+stats.HistogramOf(appSample, 12).Render(40))

	if appSample.CV() > 2*benchSample.CV() {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: app CV %.1f%% >> benchmark CV %.1f%% (paper: up to 30%% deviation from median in apps)",
			100*appSample.CV(), 100*benchSample.CV()))
	} else {
		r.Notes = append(r.Notes, "shape check FAIL: app distribution not wider than benchmark")
	}
	return r
}

// ProbeEffect quantifies §III-D: enabling driver instrumentation adds a
// few percent to hardware-accelerated inference and nothing to CPU runs.
func ProbeEffect(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:      "probe",
		Title:   "Probe effect of driver instrumentation",
		Headers: []string{"Path", "plain (ms)", "instrumented (ms)", "increase"},
	}

	dspPlain, dspProbed := probeRun(cfg, m, true)
	r.AddRow("DSP (SNPE-tuned)", msf(dspPlain), msf(dspProbed),
		fmt.Sprintf("%.1f%%", 100*float64(dspProbed-dspPlain)/float64(dspPlain)))
	cpuPlain, cpuProbed := probeRun(cfg, m, false)
	r.AddRow("CPU (4 threads)", msf(cpuPlain), msf(cpuProbed),
		fmt.Sprintf("%.1f%%", 100*float64(cpuProbed-cpuPlain)/float64(cpuPlain)))

	inc := float64(dspProbed-dspPlain) / float64(dspPlain)
	if inc >= 0.02 && inc <= 0.08 && cpuProbed == cpuPlain {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: %.1f%% on accelerated path, 0%% on CPU (paper: 4-7%% / none)", 100*inc))
	} else {
		r.Notes = append(r.Notes, "shape check FAIL: probe effect out of the 4-7%/0% envelope")
	}
	return r
}
