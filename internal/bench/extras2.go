package bench

import (
	"fmt"

	"aitax/internal/models"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// InitTimes breaks down model initialization by delegate — the quantity
// §IV-C says "is good to measure if an application switches between
// models or frequently reloads them". GPU shader compilation and NNAPI
// model compilation dominate; both amortize only if the model stays
// loaded.
func InitTimes(cfg Config) *Result {
	cfg = cfg.Defaults()
	r := &Result{
		ID:      "init",
		Title:   "Model initialization time by delegate (one-time, per load)",
		Headers: []string{"Model", "CPU (ms)", "GPU delegate (ms)", "Hexagon (ms)", "NNAPI (ms)"},
	}
	type cellRun struct {
		delegate tflite.Delegate
		dt       tensor.DType
	}
	for _, name := range []string{"MobileNet 1.0 v1", "EfficientNet-Lite0", "Inception v3", "Deeplab-v3 MobileNet-v2"} {
		m, _ := models.ByName(name)
		cells := []string{}
		for _, c := range []cellRun{
			{tflite.DelegateCPU, tensor.Float32},
			{tflite.DelegateGPU, tensor.Float32},
			{tflite.DelegateHexagon, tensor.UInt8},
			{tflite.DelegateNNAPI, tensor.Float32},
		} {
			rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
			ip, err := rt.NewInterpreter(m, c.dt, tflite.Options{Delegate: c.delegate})
			if err != nil {
				cells = append(cells, "n/a")
				continue
			}
			ip.Init(nil)
			rt.Eng.Run()
			cells = append(cells, msf(ip.InitTime))
		}
		r.AddRow(name, cells[0], cells[1], cells[2], cells[3])
	}
	r.Notes = append(r.Notes,
		"GPU-delegate init is shader-compilation-dominated; add the DSP session setup (see coldstart) for the first accelerated inference")
	return r
}

// StdlibQuirk reproduces the §IV-A anecdote verbatim: the benchmark
// binary's C++ standard library flips which precision's random input
// generation is expensive, silently distorting the "data capture" stage
// of inference-only benchmarks.
func StdlibQuirk(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	elems := m.InputW * m.InputH * 3
	p := clonePlatform(cfg.Platform)
	r := &Result{
		ID:      "stdlib",
		Title:   "Random input generation cost by C++ standard library (MobileNet input)",
		Headers: []string{"stdlib", "fp32 gen (ms)", "int8 gen (ms)", "slower side"},
	}
	for _, lib := range []tflite.StdLib{tflite.LibCXX, tflite.LibStdCXX} {
		f32 := p.Big.TimeFor(tflite.RandomInputWork(elems, tensor.Float32, lib), tensor.Float32)
		i8 := p.Big.TimeFor(tflite.RandomInputWork(elems, tensor.UInt8, lib), tensor.UInt8)
		slower := "fp32"
		if i8 > f32 {
			slower = "int8"
		}
		r.AddRow(lib.String(), msf(f32), msf(i8), slower)
	}
	if len(r.Rows) == 2 && r.Rows[0][3] != r.Rows[1][3] {
		r.Notes = append(r.Notes,
			"shape check PASS: switching the standard library reverses which precision pays for random generation (§IV-A)")
	} else {
		r.Notes = append(r.Notes, "shape check FAIL: stdlib flip not observed")
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("benchmark 'data capture' is random generation over %d elements — a fallacy of that stand-in for real sensors", elems))
	return r
}
