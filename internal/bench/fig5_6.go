package bench

import (
	"fmt"
	"time"

	"aitax/internal/models"
	"aitax/internal/sim"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
	"aitax/internal/trace"
)

// fig5Config is one bar of Fig. 5.
type fig5Config struct {
	label    string
	delegate tflite.Delegate
	threads  int
}

func fig5Configs() []fig5Config {
	return []fig5Config{
		{"Hexagon delegate", tflite.DelegateHexagon, 4},
		{"CPU 4 threads", tflite.DelegateCPU, 4},
		{"CPU 1 thread", tflite.DelegateCPU, 1},
		{"NNAPI (auto)", tflite.DelegateNNAPI, 4},
	}
}

// fig5Latency measures steady-state inference latency for one config.
func fig5Latency(cfg Config, m *models.Model, dt tensor.DType, c fig5Config) (time.Duration, error) {
	samples, err := benchToolRun(cfg.Platform, cfg.Seed, m, dt, c.delegate, c.threads, cfg.Runs, false)
	if err != nil {
		return 0, err
	}
	return meanSample(samples).Inference, nil
}

// Figure5 regenerates the paper's Fig. 5: quantized EfficientNet-Lite0
// through four device targets, with NNAPI's automatic assignment
// degrading performance ~7x versus a single CPU thread — and the fp32
// model showing no such cliff.
func Figure5(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("EfficientNet-Lite0")
	r := &Result{
		ID:      "fig5",
		Title:   "EfficientNet-Lite0: inference latency by execution target",
		Headers: []string{"Target", "int8 (ms)", "fp32 (ms)"},
	}
	var int8CPU1, int8NNAPI time.Duration
	var fp32CPU1, fp32NNAPI time.Duration
	for _, c := range fig5Configs() {
		i8, err8 := fig5Latency(cfg, m, tensor.UInt8, c)
		f32, err32 := fig5Latency(cfg, m, tensor.Float32, c)
		i8s, f32s := "n/a", "n/a"
		if err8 == nil {
			i8s = msf(i8)
		}
		if err32 == nil {
			f32s = msf(f32)
		}
		r.AddRow(c.label, i8s, f32s)
		switch c.label {
		case "CPU 1 thread":
			int8CPU1, fp32CPU1 = i8, f32
		case "NNAPI (auto)":
			int8NNAPI, fp32NNAPI = i8, f32
		}
	}
	if int8CPU1 > 0 && int8NNAPI > 0 {
		ratio := float64(int8NNAPI) / float64(int8CPU1)
		r.Notes = append(r.Notes, fmt.Sprintf(
			"int8 NNAPI degradation vs CPU-1T: %.1fx (paper: ~7x)", ratio))
	}
	if fp32CPU1 > 0 && fp32NNAPI > 0 && fp32NNAPI < 2*fp32CPU1 {
		r.Notes = append(r.Notes, "fp32 shows no NNAPI cliff, as the paper observes")
	}
	r.Notes = append(r.Notes,
		"mechanism: the vendor driver lacks the quantized ADD variant; the plan shatters and NNAPI retreats to its single-threaded reference CPU path")
	return r
}

// Figure6 regenerates the paper's Fig. 6: Snapdragon-Profiler-style
// execution timelines of quantized EfficientNet-Lite0 under (1) CPU
// 4 threads, (2) the Hexagon delegate, and (3) NNAPI automatic device
// selection — the last showing a lone thread bouncing across cores.
func Figure6(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("EfficientNet-Lite0")
	r := &Result{
		ID:    "fig6",
		Title: "Execution profile while running EfficientNet-Lite0 (int8)",
	}

	type profRun struct {
		label    string
		delegate tflite.Delegate
	}
	for _, pr := range []profRun{
		{"CPU (4 threads)", tflite.DelegateCPU},
		{"TFLite Hexagon delegate", tflite.DelegateHexagon},
		{"NNAPI automatic device selection", tflite.DelegateNNAPI},
	} {
		rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
		prof := trace.NewProfiler(rt.Eng, 2*time.Millisecond)
		prof.Attach(rt.Sch)
		prof.TrackResource("cdsp", rt.DSP)
		// AXI fabric traffic, derived from accelerator activity weighted
		// by each unit's memory bandwidth (how bus monitors see it).
		p := rt.Platform
		totalBW := p.DSP.MemBytesPerSec + p.GPU.MemBytesPerSec
		prof.TrackDerived("axi", func() float64 {
			bw := float64(rt.DSP.InUse())*p.DSP.MemBytesPerSec +
				float64(rt.GPUQueue.InUse())*p.GPU.MemBytesPerSec
			return bw / totalBW
		})
		ip, err := rt.NewInterpreter(m, tensor.UInt8, tflite.Options{Delegate: pr.delegate})
		if err != nil {
			continue
		}
		const horizon = 600 * time.Millisecond
		ip.Init(func() {
			prof.StartSampling(horizon)
			var loop func()
			loop = func() {
				if rt.Eng.Now().Duration() >= horizon {
					return
				}
				ip.Invoke(func(tflite.Report) { loop() })
			}
			loop()
		})
		rt.Eng.RunUntil(sim.Time(0).Add(horizon))
		block := fmt.Sprintf("--- %s ---\n%s", pr.label, prof.Render())
		r.Blocks = append(r.Blocks, block)
		if pr.delegate == tflite.DelegateNNAPI {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"NNAPI run shows %d core migrations (paper: frequent CPU migrations, annotation 4)", prof.Migrations()))
		}
	}
	r.Notes = append(r.Notes,
		"CPU run: sustained utilization on the big cores (annotation 1)",
		"Hexagon run: cDSP row saturated during inference (annotation 2)",
		"NNAPI run: sporadic single-core activity wandering across cores (annotation 3)")
	return r
}
