package bench

import (
	"fmt"
	"time"

	"aitax/internal/models"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// DVFSRamp shows the frequency-governor contribution to cold-start
// latency that warmed-up, frequency-pinned benchmarks never see: on a
// system with schedutil-style DVFS, the first CPU inferences after idle
// run at the lowest frequency step and ramp over the first tens of
// milliseconds.
func DVFSRamp(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:      "dvfs",
		Title:   "DVFS cold ramp: consecutive CPU inferences from idle (MobileNet v1 fp32)",
		Headers: []string{"Inference #", "pinned freq (ms)", "with governor (ms)", "governor penalty"},
	}

	measure := func(dvfs bool) []time.Duration {
		eng := sim.NewEngine()
		schedCfg := sched.DefaultConfig()
		schedCfg.DVFS = dvfs
		sch := sched.New(eng, schedCfg)
		rt := tflite.NewRuntime(eng, sch, clonePlatform(cfg.Platform), cfg.Seed)
		ip, err := rt.NewInterpreter(m, tensor.Float32, tflite.Options{Delegate: tflite.DelegateCPU})
		if err != nil {
			return nil
		}
		var lats []time.Duration
		ip.Init(func() {
			var loop func(i int)
			loop = func(i int) {
				if i >= 6 {
					return
				}
				start := eng.Now()
				ip.Invoke(func(tflite.Report) {
					lats = append(lats, eng.Now().Sub(start))
					loop(i + 1)
				})
			}
			loop(0)
		})
		eng.Run()
		return lats
	}

	pinned := measure(false)
	governed := measure(true)
	if len(pinned) != len(governed) || len(pinned) == 0 {
		r.Notes = append(r.Notes, "setup failed: measurement mismatch")
		return r
	}
	for i := range pinned {
		r.AddRow(i+1, msf(pinned[i]), msf(governed[i]),
			fmt.Sprintf("%.2fx", float64(governed[i])/float64(pinned[i])))
	}
	first := float64(governed[0]) / float64(pinned[0])
	last := float64(governed[len(governed)-1]) / float64(pinned[len(pinned)-1])
	if first > 1.2 && last < first {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: first inference pays %.2fx for the frequency ramp, decaying to %.2fx at steady state",
			first, last))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check FAIL: ramp penalties %.2fx -> %.2fx", first, last))
	}
	r.Notes = append(r.Notes,
		"extends §IV-C's cold-start discussion: accelerator session setup is not the only first-use cost — CPU frequency ramp hits pure-CPU inference too")
	return r
}
