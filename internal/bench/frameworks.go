package bench

import (
	"fmt"
	"time"

	"aitax/internal/driver"
	"aitax/internal/models"
	"aitax/internal/snpe"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// Frameworks regenerates the §IV-B framework comparison: the same
// quantized models through the TFLite CPU path, the open Hexagon
// delegate, NNAPI automatic assignment, and the vendor-tuned SNPE DSP
// runtime. The paper's takeaways checked here: (1) under SNPE the DSP
// clearly outperforms the CPU; (2) under NNAPI the same DSP silicon can
// lose to the CPU when driver support lags.
func Frameworks(cfg Config) *Result {
	cfg = cfg.Defaults()
	r := &Result{
		ID:    "frameworks",
		Title: "Framework comparison: warm int8 inference latency (ms)",
		Headers: []string{"Model", "TFLite CPU-4T", "Hexagon delegate",
			"NNAPI auto", "SNPE DSP"},
	}
	var snpeWins, nnapiLosses, rows int
	for _, m := range models.All() {
		if !m.Quantizable() {
			continue
		}
		cpu, err1 := benchToolRun(cfg.Platform, cfg.Seed, m, tensor.UInt8, tflite.DelegateCPU, 4, cfg.Runs, false)
		hex, err2 := benchToolRun(cfg.Platform, cfg.Seed, m, tensor.UInt8, tflite.DelegateHexagon, 4, cfg.Runs, false)
		var nnapiCell string
		nnapiMean := time.Duration(0)
		if m.Support.NNAPIInt8 {
			nn8, err := benchToolRun(cfg.Platform, cfg.Seed, m, tensor.UInt8, tflite.DelegateNNAPI, 4, cfg.Runs, false)
			if err == nil {
				nnapiMean = meanSample(nn8).Inference
				nnapiCell = msf(nnapiMean)
			} else {
				nnapiCell = "n/a"
			}
		} else {
			nnapiCell = "n/a"
		}
		snpeLat, snpeOK := snpeWarmLatency(cfg, m)
		if err1 != nil || err2 != nil {
			continue
		}
		cpuMean := meanSample(cpu).Inference
		snpeCell := "n/a"
		if snpeOK {
			snpeCell = msf(snpeLat)
			if snpeLat < cpuMean {
				snpeWins++
			}
		}
		if nnapiMean > cpuMean && nnapiMean > 0 {
			nnapiLosses++
		}
		rows++
		r.AddRow(m.Name, msf(cpuMean), msf(meanSample(hex).Inference), nnapiCell, snpeCell)
	}
	if snpeWins == rows {
		r.Notes = append(r.Notes,
			"shape check PASS: the SNPE DSP beats the CPU on every model it converts (§IV-B)")
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check FAIL: SNPE DSP beat the CPU on only %d/%d models", snpeWins, rows))
	}
	if nnapiLosses > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%d models are slower via NNAPI than on the plain CPU — \"not all frameworks are created equal\"", nnapiLosses))
	}
	return r
}

// snpeWarmLatency loads the model under the SNPE DSP runtime and
// measures the second (warm) execution.
func snpeWarmLatency(cfg Config, m *models.Model) (time.Duration, bool) {
	rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
	sdk := rt.NewSNPE()
	net, err := sdk.Load(m.Graph, tensor.UInt8, snpe.RuntimeDSP)
	if err != nil {
		return 0, false
	}
	var warm time.Duration
	net.Execute(func(driver.Result) {
		start := rt.Eng.Now()
		net.Execute(func(driver.Result) { warm = rt.Eng.Now().Sub(start) })
	})
	rt.Eng.Run()
	return warm, true
}
