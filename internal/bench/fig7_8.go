package bench

import (
	"fmt"
	"time"

	"aitax/internal/fastrpc"
	"aitax/internal/models"
	"aitax/internal/sim"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
	"aitax/internal/work"
)

// Figure7 regenerates the paper's Fig. 7: the FastRPC call flow between
// CPU and DSP, itemized by boundary crossing, plus the one-time session
// setup.
func Figure7(cfg Config) *Result {
	cfg = cfg.Defaults()
	p := clonePlatform(cfg.Platform)
	eng := sim.NewEngine()
	dsp := sim.NewResource(eng, "dsp", 1)
	ch := fastrpc.NewChannel(eng, p.RPC, dsp)

	m, _ := models.ByName("MobileNet 1.0 v1")
	payload := int64(m.InputW*m.InputH*3 + m.NumClasses)

	r := &Result{
		ID:      "fig7",
		Title:   "FastRPC call flow for the Qualcomm DSP",
		Headers: []string{"Stage", "Cost"},
	}
	r.AddRow("session setup (once: map DSP into process)", ch.SetupCost().String())
	var perCall time.Duration
	for _, st := range ch.CallStages(payload) {
		r.AddRow(st.Name, st.Duration.String())
		perCall += st.Duration
	}
	r.AddRow("total per-call transport", perCall.String())
	r.Notes = append(r.Notes,
		"the cache flush maintains coherency for the shared buffer, as Fig. 7 highlights",
		fmt.Sprintf("payload modeled: %d KB of boundary activations", payload/1024))
	return r
}

// Figure8 regenerates the paper's Fig. 8: offload-overhead amortization
// over consecutive inferences through the Hexagon delegate. For one
// inference the session setup dominates; over hundreds it vanishes.
func Figure8(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:    "fig8",
		Title: "Offload overhead amortization over consecutive inferences (MobileNet v1 int8, Hexagon)",
		Headers: []string{"Inferences", "offload total (ms)", "exec total (ms)",
			"offload share", "mean latency (ms)"},
	}
	counts := []int{1, 2, 5, 10, 20, 50, 100, 200, 500}
	var first, last float64
	for _, n := range counts {
		rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
		ip, err := rt.NewInterpreter(m, tensor.UInt8, tflite.Options{Delegate: tflite.DelegateHexagon})
		if err != nil {
			r.Notes = append(r.Notes, "setup failed: "+err.Error())
			return r
		}
		var offload, exec time.Duration
		ip.Init(func() {
			var loop func(i int)
			loop = func(i int) {
				if i >= n {
					return
				}
				ip.Invoke(func(rep tflite.Report) {
					offload += rep.Overhead + rep.Queue
					exec += rep.Compute
					loop(i + 1)
				})
			}
			loop(0)
		})
		rt.Eng.Run()
		share := float64(offload) / float64(offload+exec)
		if n == counts[0] {
			first = share
		}
		last = share
		r.AddRow(n, msf(offload), msf(exec),
			fmt.Sprintf("%.1f%%", 100*share),
			fmt.Sprintf("%.2f", ms(offload+exec)/float64(n)))
	}
	if first > 0.5 && last < 0.15 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: offload share falls from %.0f%% at 1 inference to %.1f%% at 500 (paper Fig. 8)",
			100*first, 100*last))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check FAIL: offload share %.0f%% -> %.1f%%", 100*first, 100*last))
	}
	r.Notes = append(r.Notes,
		"the DSP session setup is performed once and amortizes across subsequent inferences (§IV-C)")
	return r
}

// ColdStart isolates §IV-C's cold-start penalty: the first accelerated
// inference versus a warm one, broken down.
func ColdStart(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:      "coldstart",
		Title:   "Cold start: first vs warm DSP inference (MobileNet v1 int8)",
		Headers: []string{"Invocation", "setup (ms)", "transport (ms)", "exec (ms)", "total (ms)"},
	}
	p := clonePlatform(cfg.Platform)
	eng := sim.NewEngine()
	dspRes := sim.NewResource(eng, "dsp", 1)
	ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
	execTime := p.DSP.TimeFor(sumWork(m), tensor.UInt8)
	payload := int64(m.InputW*m.InputH*3 + m.NumClasses)

	var cold, warm fastrpc.Breakdown
	ch.Invoke(payload, execTime, func(b fastrpc.Breakdown) {
		cold = b
		ch.Invoke(payload, execTime, func(b2 fastrpc.Breakdown) { warm = b2 })
	})
	eng.Run()
	for _, row := range []struct {
		label string
		b     fastrpc.Breakdown
	}{{"first (cold)", cold}, {"second (warm)", warm}} {
		r.AddRow(row.label, msf(row.b.Setup), msf(row.b.Transport), msf(row.b.Exec), msf(row.b.Total()))
	}
	r.AddRow("cold/warm ratio", "", "", "",
		fmt.Sprintf("%.1fx", float64(cold.Total())/float64(warm.Total())))
	r.Notes = append(r.Notes,
		"benchmarks that allow warm-up hide this penalty from end users (§IV-C)")
	return r
}

// sumWork aggregates a model's total op work.
func sumWork(m *models.Model) work.Work {
	w := work.Work{Vectorizable: true}
	for _, op := range m.Graph.Ops() {
		w = w.Add(op.Work(tensor.UInt8))
	}
	return w
}
