package bench

import (
	"fmt"
	"time"

	"aitax/internal/models"
	"aitax/internal/nnapi"
	"aitax/internal/soc"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
	"aitax/internal/thermal"
)

// PlatformSweep runs the same workload across all four Table-II
// platforms, exposing the generational trend the paper's text notes
// ("our experimental results indicate that the trends are representative
// across the other, older and newer, chipsets").
func PlatformSweep(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:    "platforms",
		Title: "MobileNet v1 across Snapdragon generations",
		Headers: []string{"Platform", "CPU-4T fp32 (ms)", "NNAPI int8 (ms)",
			"Hexagon int8 (ms)", "DSP cold start (ms)"},
	}
	var prev float64
	monotone := true
	for _, p := range soc.Platforms() {
		cpu, err1 := benchToolRun(p, cfg.Seed, m, tensor.Float32, tflite.DelegateCPU, 4, cfg.Runs, false)
		nn8, err2 := benchToolRun(p, cfg.Seed, m, tensor.UInt8, tflite.DelegateNNAPI, 4, cfg.Runs, false)
		hex, err3 := benchToolRun(p, cfg.Seed, m, tensor.UInt8, tflite.DelegateHexagon, 4, cfg.Runs, false)
		if err1 != nil || err2 != nil || err3 != nil {
			r.Notes = append(r.Notes, "setup failed on "+p.Name)
			continue
		}
		cpuMs := ms(meanSample(cpu).Inference)
		r.AddRow(p.Name, fmt.Sprintf("%.2f", cpuMs),
			msf(meanSample(nn8).Inference), msf(meanSample(hex).Inference),
			msf(p.RPC.SessionSetup))
		if prev != 0 && cpuMs >= prev {
			monotone = false
		}
		prev = cpuMs
	}
	if monotone {
		r.Notes = append(r.Notes, "shape check PASS: every generation is faster than its predecessor")
	} else {
		r.Notes = append(r.Notes, "shape check FAIL: generational trend broken")
	}
	return r
}

// Preferences contrasts NNAPI execution preferences on latency and
// energy: FAST_SINGLE_ANSWER picks the GPU for fp32; LOW_POWER routes
// fp32 to the frugal-but-slow DSP path.
func Preferences(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:      "prefs",
		Title:   "NNAPI execution preferences: latency vs power (MobileNet v1 fp32)",
		Headers: []string{"Preference", "device", "latency (ms)", "energy (mJ)", "avg power (W)"},
	}
	var fastW, lowW, fastL, lowL float64
	for _, pref := range []nnapi.Preference{nnapi.FastSingleAnswer, nnapi.SustainedSpeed, nnapi.LowPower} {
		rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
		fw := rt.NewNNAPI()
		cm := fw.Compile(m.Graph, tensor.Float32, pref)
		device := "?"
		if len(cm.Partitions) > 0 {
			device = cm.Partitions[0].Target.Name()
		}
		var warm nnapi.Report
		fw.Execute(cm, func(nnapi.Report) { // warm the accelerator path
			fw.Execute(cm, func(rep nnapi.Report) { warm = rep })
		})
		rt.Eng.Run()
		lat := ms(warm.Total())
		energy := warm.EnergyJ * 1000
		watts := warm.EnergyJ / warm.Total().Seconds()
		r.AddRow(pref.String(), device, fmt.Sprintf("%.2f", lat),
			fmt.Sprintf("%.1f", energy), fmt.Sprintf("%.2f", watts))
		switch pref {
		case nnapi.FastSingleAnswer:
			fastL, fastW = lat, watts
		case nnapi.LowPower:
			lowL, lowW = lat, watts
		}
	}
	if lowW < fastW && lowL > fastL {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: LOW_POWER draws %.1fx less power at %.1fx the latency (thermal/battery headroom, not energy-to-solution)",
			fastW/lowW, lowL/fastL))
	} else {
		r.Notes = append(r.Notes, "shape check FAIL: LOW_POWER should draw less power at higher latency")
	}
	return r
}

// Thermal demonstrates the §III-D methodology hazard: a long
// benchmarking session heats the die past the throttling threshold and
// the "same" measurement drifts — which is why the paper cools the CPU
// to its 33°C idle point before every run.
func Thermal(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("Inception v3")
	r := &Result{
		ID:      "thermal",
		Title:   "Latency drift under sustained load (Inception v3 fp32, CPU)",
		Headers: []string{"Minute", "die temp (C)", "throttle factor", "inference (ms)"},
	}

	// Baseline inference time at idle temperature.
	samples, err := benchToolRun(cfg.Platform, cfg.Seed, m, tensor.Float32, tflite.DelegateCPU, 4, 3, false)
	if err != nil {
		r.Notes = append(r.Notes, "setup failed: "+err.Error())
		return r
	}
	base := meanSample(samples).Inference

	th := thermal.Default()
	var first, last float64
	for minute := 0; minute <= 8; minute++ {
		factor := th.ThrottleFactor()
		lat := time.Duration(float64(base) / factor)
		r.AddRow(minute, fmt.Sprintf("%.1f", th.TempC()),
			fmt.Sprintf("%.2f", factor), msf(lat))
		if minute == 0 {
			first = ms(lat)
		}
		last = ms(lat)
		// One minute of the benchmark loop at ~full CPU utilization.
		th.Advance(time.Minute, 0.95)
	}
	if last > first*1.15 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: sustained load drifts latency %.2f -> %.2f ms (%.0f%%) — cool to idle before measuring (§III-D)",
			first, last, 100*(last-first)/first))
	} else {
		r.Notes = append(r.Notes, "shape check FAIL: no thermal drift under sustained load")
	}
	return r
}

// PartitionAblation sweeps the NNAPI driver's partition-shatter
// threshold, the design parameter behind the Fig. 5 cliff: with a high
// enough limit the shattered plan executes partitioned (paying dozens of
// DSP round-trips); past the limit NNAPI retreats to the reference CPU
// path. Both lose to the plain CPU.
func PartitionAblation(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("EfficientNet-Lite0")
	r := &Result{
		ID:      "ablation-partitions",
		Title:   "Fig. 5 ablation: NNAPI partition-shatter threshold (EfficientNet-Lite0 int8)",
		Headers: []string{"MaxQuantPartitions", "plan", "partitions", "warm latency (ms)"},
	}
	for _, limit := range []int{4, 12, 24, 1000} {
		rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
		fw := rt.NewNNAPI()
		fw.MaxQuantPartitions = limit
		cm := fw.Compile(m.Graph, tensor.UInt8, nnapi.FastSingleAnswer)
		plan := "partitioned (DSP+CPU)"
		if cm.ReferenceFallback {
			plan = "reference CPU fallback"
		}
		var warm nnapi.Report
		fw.Execute(cm, func(nnapi.Report) {
			fw.Execute(cm, func(rep nnapi.Report) { warm = rep })
		})
		rt.Eng.Run()
		r.AddRow(limit, plan, len(cm.Partitions), msf(warm.Total()))
	}
	cpu, err := benchToolRun(cfg.Platform, cfg.Seed, m, tensor.UInt8, tflite.DelegateCPU, 1, cfg.Runs, false)
	if err == nil {
		r.AddRow("(plain CPU, 1 thread)", "-", 1, msf(meanSample(cpu).Inference))
	}
	r.Notes = append(r.Notes,
		"whether the driver shatters or retreats, a graph with unsupported interleaved ops loses to staying on the CPU — the Fig. 5 lesson is threshold-independent")
	return r
}

// ModelsInventory exposes the reconstruction-scale table.
func ModelsInventory(cfg Config) *Result { return modelCard() }
