package bench

import (
	"fmt"
	"time"

	"aitax/internal/app"
	"aitax/internal/models"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
	"aitax/internal/workload"
)

// PreOffload explores the paper's concluding proposal: "it is necessary
// to consider jointly accelerating these seemingly mundane yet important
// data processing tasks along with ML execution" — e.g. trading "a more
// powerful NPU for a smaller one paired with a DSP for pre-processing".
// Pre-processing moves from managed CPU code to the DSP via FastRPC, and
// the experiment exposes both the win (pixel math at HVX rate) and the
// new cost (the stage queues behind inference on the same DSP).
func PreOffload(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:    "preoffload",
		Title: "Pre-processing placement: managed CPU vs DSP offload (MobileNet v1 int8, NNAPI inference)",
		Headers: []string{"pre placement", "bg DSP jobs", "capture (ms)",
			"pre (ms)", "inference (ms)", "total (ms)"},
	}
	frames := cfg.Runs / 2
	if frames < 8 {
		frames = 8
	}
	run := func(preDSP bool, bgJobs int) (app.FrameStats, bool) {
		rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
		a, err := app.New(rt, app.Config{
			Model: m, DType: tensor.UInt8, Delegate: tflite.DelegateNNAPI,
			Streaming: true, PreOnDSP: preDSP,
		})
		if err != nil {
			return app.FrameStats{}, false
		}
		var bg *workload.Background
		if bgJobs > 0 {
			bg, err = workload.Start(rt, m, tensor.UInt8, tflite.DelegateHexagon, bgJobs)
			if err != nil {
				return app.FrameStats{}, false
			}
		}
		var mean app.FrameStats
		a.Init(func() {
			a.Run(frames+2, func(sts []app.FrameStats) {
				mean = meanFrames(sts[2:])
				a.StopStream()
				if bg != nil {
					bg.Stop()
				}
			})
		})
		rt.Eng.Run()
		return mean, true
	}

	var cpuPreIdle, dspPreIdle, dspPreLoaded time.Duration
	for _, c := range []struct {
		label  string
		preDSP bool
		bg     int
	}{
		{"CPU (managed)", false, 0},
		{"DSP (FastRPC)", true, 0},
		{"CPU (managed)", false, 3},
		{"DSP (FastRPC)", true, 3},
	} {
		mean, ok := run(c.preDSP, c.bg)
		if !ok {
			r.Notes = append(r.Notes, "setup failed")
			return r
		}
		r.AddRow(c.label, c.bg, msf(mean.Capture), msf(mean.Pre),
			msf(mean.Inference), msf(mean.Total))
		switch {
		case !c.preDSP && c.bg == 0:
			cpuPreIdle = mean.Pre
		case c.preDSP && c.bg == 0:
			dspPreIdle = mean.Pre
		case c.preDSP && c.bg == 3:
			dspPreLoaded = mean.Pre
		}
	}
	if dspPreIdle < cpuPreIdle && dspPreLoaded > 2*dspPreIdle {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: DSP pre is %.1fx faster when the DSP is free, but stretches %.1fx under DSP tenancy — placement depends on what else runs (§IV-C)",
			float64(cpuPreIdle)/float64(dspPreIdle), float64(dspPreLoaded)/float64(dspPreIdle)))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check FAIL: pre times cpu=%v dspIdle=%v dspLoaded=%v",
			cpuPreIdle, dspPreIdle, dspPreLoaded))
	}
	return r
}
