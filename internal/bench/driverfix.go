package bench

import (
	"fmt"
	"time"

	"aitax/internal/driver"
	"aitax/internal/fastrpc"
	"aitax/internal/nn"
	"aitax/internal/nnapi"
	"aitax/internal/sched"
	"aitax/internal/sim"
	"aitax/internal/tensor"

	"aitax/internal/models"
)

// DriverFix plays out §IV-B's prediction — "Future iterations may likely
// fix this performance 'bug'" — by re-running the Fig. 5 workload against
// a hypothetical vendor driver whose INT8 operator set includes the
// quantized ADD variant. With the support gap closed, the same NNAPI
// machinery produces a clean single-partition DSP plan and the 7x cliff
// becomes a 5x win.
func DriverFix(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("EfficientNet-Lite0")
	r := &Result{
		ID:      "driverfix",
		Title:   "Fig. 5 counterfactual: vendor driver with quantized ADD support",
		Headers: []string{"Driver", "plan", "partitions", "warm latency (ms)"},
	}

	fixedSupports := func(op *nn.Op, dt tensor.DType) bool {
		if driver.NNAPIVendorSupports(op, dt) {
			return true
		}
		// The one missing operator, implemented.
		return op.Kind == nn.Add
	}

	var lagging, fixed time.Duration
	for _, c := range []struct {
		label    string
		supports func(*nn.Op, tensor.DType) bool
	}{
		{"lagging (as measured)", driver.NNAPIVendorSupports},
		{"fixed (quantized ADD implemented)", fixedSupports},
	} {
		eng := sim.NewEngine()
		sch := sched.New(eng, sched.DefaultConfig())
		p := clonePlatform(cfg.Platform)
		dspRes := sim.NewResource(eng, "dsp", 1)
		gpuQ := sim.NewResource(eng, "gpu", 1)
		ch := fastrpc.NewChannel(eng, p.RPC, dspRes)
		fw := nnapi.New(nnapi.Config{
			Engine:       eng,
			AccelFP32:    driver.NewGPUTarget("nnapi-gpu", eng, &p.GPU, gpuQ, c.supports),
			AccelInt8:    driver.NewDSPTarget("nnapi-dsp", &p.DSP, ch, 0.6, c.supports),
			FallbackCPU:  driver.NewCPUTarget("nnapi-cpu-fallback", sch, &p.Big, 4),
			ReferenceCPU: driver.NewReferenceCPUTarget("nnapi-ref", sch, &p.Big),
			Supports:     c.supports,
		})
		cm := fw.Compile(m.Graph, tensor.UInt8, nnapi.FastSingleAnswer)
		plan := "partitioned (DSP)"
		if cm.ReferenceFallback {
			plan = "reference CPU fallback"
		}
		var warm nnapi.Report
		fw.Execute(cm, func(nnapi.Report) {
			fw.Execute(cm, func(rep nnapi.Report) { warm = rep })
		})
		eng.Run()
		r.AddRow(c.label, plan, len(cm.Partitions), msf(warm.Total()))
		if c.label[0] == 'l' {
			lagging = warm.Total()
		} else {
			fixed = warm.Total()
		}
	}
	if fixed > 0 && lagging > 10*fixed {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: implementing one missing INT8 operator turns the reference-CPU fallback into a clean DSP plan, %.1fx faster",
			ms(lagging)/ms(fixed)))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check FAIL: lagging=%v fixed=%v", lagging, fixed))
	}
	r.Notes = append(r.Notes,
		"the entire Fig. 5 pathology hinges on a single operator's driver support — the transparency argument of the paper's framework takeaway")
	return r
}
