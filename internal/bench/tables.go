package bench

import (
	"fmt"

	"aitax/internal/models"
	"aitax/internal/soc"
	"aitax/internal/tensor"
)

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

// TableI regenerates the paper's Table I: the benchmark list with each
// model's task, resolution, pre-/post-processing tasks and the
// framework/precision support matrix.
func TableI(cfg Config) *Result {
	r := &Result{
		ID:    "table1",
		Title: "Comprehensive list of benchmarks (paper Table I)",
		Headers: []string{"Task", "Model", "Resolution", "Pre-processing",
			"Post-processing", "NNAPI-fp32", "NNAPI-int8", "CPU-fp32", "CPU-int8"},
	}
	for _, m := range models.All() {
		post := m.PostTasks
		if m.Quantizable() {
			post += ", dequantization*"
		}
		r.AddRow(string(m.Task), m.Name, m.Resolution(), m.Pre.Tasks(), post,
			yn(m.Support.NNAPIFP32), yn(m.Support.NNAPIInt8),
			yn(m.Support.CPUFP32), yn(m.Support.CPUInt8))
	}
	r.Notes = append(r.Notes,
		"tasks marked with * are only performed with quantized models",
		fmt.Sprintf("%d models reconstructed as op graphs (see internal/models)", len(models.All())))
	return r
}

// TableII regenerates the paper's Table II: the hardware platforms.
func TableII(cfg Config) *Result {
	r := &Result{
		ID:      "table2",
		Title:   "Platforms used to conduct the study (paper Table II)",
		Headers: []string{"System", "SoC", "Accelerators", "CPU", "DSP int8 (GOPS)", "Idle temp (C)"},
	}
	for _, p := range soc.Platforms() {
		accel := p.GPUName + " GPU, " + p.DSPName + " DSP"
		cpu := fmt.Sprintf("%d big + %d little", p.BigCores, p.LittleCores)
		r.AddRow(p.Name, p.Chipset, accel, cpu,
			fmt.Sprintf("%.0f", p.DSP.Int8OpsPerSec/1e9), fmt.Sprintf("%.0f", p.IdleTempC))
	}
	r.Notes = append(r.Notes,
		"simulated platform models; the paper reports results on the Google Pixel 3 (SD845)")
	return r
}

// modelCard is an extra (beyond the paper) inventory of the rebuilt
// graphs, used by the experiments binary's verbose mode.
func modelCard() *Result {
	r := &Result{
		ID:      "models",
		Title:   "Model zoo inventory (reconstruction scale)",
		Headers: []string{"Model", "Ops", "MMACs", "MParams", "fp32 size (MB)"},
	}
	for _, m := range models.All() {
		g := m.Graph
		r.AddRow(m.Name, g.NumOps(),
			fmt.Sprintf("%.1f", float64(g.TotalMACs())/1e6),
			fmt.Sprintf("%.2f", float64(g.TotalParams())/1e6),
			fmt.Sprintf("%.1f", float64(g.WeightBytes(tensor.Float32))/1e6))
	}
	return r
}
