package bench

import (
	"strconv"
	"strings"
	"testing"

	"aitax/internal/faults"
	"aitax/internal/soc"
)

func smallCfg() Config {
	return Config{Platform: soc.Pixel3(), Seed: 42, Runs: 12}
}

func TestRegistryCoversAllArtifacts(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "fig3", "fig4a", "fig4b", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "coldstart", "probe",
		"models", "platforms", "prefs", "thermal", "ablation-partitions",
		"init", "stdlib", "frameworks", "dvfs", "post", "fusion", "preoffload",
		"driverfix", "resolution", "faults"}
	if len(ids) != len(want) {
		t.Fatalf("experiments = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	if _, err := ByID("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	cfg := smallCfg()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(cfg)
			if res == nil {
				t.Fatal("nil result")
			}
			if res.ID != e.ID {
				t.Fatalf("result id = %s", res.ID)
			}
			out := res.Render()
			if len(out) < 40 {
				t.Fatalf("render too small:\n%s", out)
			}
			for _, n := range res.Notes {
				if strings.Contains(n, "FAIL") {
					t.Errorf("shape check failed: %s", n)
				}
				if strings.Contains(n, "setup failed") {
					t.Errorf("experiment setup failed: %s", n)
				}
			}
		})
	}
}

func TestTableIHasElevenRows(t *testing.T) {
	res := TableI(smallCfg())
	if len(res.Rows) != 11 {
		t.Fatalf("Table I rows = %d", len(res.Rows))
	}
	// MobileNet row must be fully supported.
	if got := res.Rows[0][5:]; got[0] != "Y" || got[1] != "Y" || got[2] != "Y" || got[3] != "Y" {
		t.Fatalf("MobileNet support cells = %v", got)
	}
	// AlexNet row: N N Y Y.
	for _, row := range res.Rows {
		if row[1] == "AlexNet" {
			if row[5] != "N" || row[6] != "N" || row[7] != "Y" || row[8] != "Y" {
				t.Fatalf("AlexNet support = %v", row[5:])
			}
		}
	}
}

func TestTableIIHasFourPlatforms(t *testing.T) {
	res := TableII(smallCfg())
	if len(res.Rows) != 4 {
		t.Fatalf("Table II rows = %d", len(res.Rows))
	}
}

func TestFigure5RatioInBand(t *testing.T) {
	res := Figure5(smallCfg())
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "degradation vs CPU-1T") {
			found = true
			// Extract "N.Nx".
			f := strings.Fields(n)
			for _, tok := range f {
				if strings.HasSuffix(tok, "x") {
					v, err := strconv.ParseFloat(strings.TrimSuffix(tok, "x"), 64)
					if err == nil {
						if v < 4 || v > 11 {
							t.Fatalf("degradation = %.1fx, want ~7x", v)
						}
						return
					}
				}
			}
		}
	}
	if !found {
		t.Fatalf("no degradation note in:\n%s", res.Render())
	}
}

func TestFigure6ShowsThreeProfiles(t *testing.T) {
	res := Figure6(smallCfg())
	if len(res.Blocks) != 3 {
		t.Fatalf("profiles = %d, want 3", len(res.Blocks))
	}
	joined := strings.Join(res.Blocks, "\n")
	if !strings.Contains(joined, "cdsp") {
		t.Fatal("missing cDSP row")
	}
}

func TestFigure8AmortizationMonotone(t *testing.T) {
	res := Figure8(smallCfg())
	// Offload share column (index 3) must be non-increasing.
	prev := 101.0
	for _, row := range res.Rows {
		s := strings.TrimSuffix(row[3], "%")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad share %q", row[3])
		}
		if v > prev+0.5 {
			t.Fatalf("offload share rose: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestFigure9InferenceGrows(t *testing.T) {
	res := Figure9(smallCfg())
	var first, last float64
	for i, row := range res.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = v
		}
		last = v
	}
	if last < 2*first {
		t.Fatalf("fig9 inference %v -> %v, want strong growth", first, last)
	}
}

func TestFigure10CapturePreGrows(t *testing.T) {
	res := Figure10(smallCfg())
	capPre := func(row []string) float64 {
		c, _ := strconv.ParseFloat(row[1], 64)
		p, _ := strconv.ParseFloat(row[2], 64)
		return c + p
	}
	inf := func(row []string) float64 {
		v, _ := strconv.ParseFloat(row[3], 64)
		return v
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if capPre(last) < 1.3*capPre(first) {
		t.Fatalf("fig10 capture+pre %v -> %v, want growth", capPre(first), capPre(last))
	}
	if inf(last) > 1.6*inf(first) {
		t.Fatalf("fig10 inference %v -> %v, want ~flat", inf(first), inf(last))
	}
}

func TestColdStartDominatedBySetup(t *testing.T) {
	res := ColdStart(smallCfg())
	if len(res.Rows) < 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	coldSetup, _ := strconv.ParseFloat(res.Rows[0][1], 64)
	warmSetup, _ := strconv.ParseFloat(res.Rows[1][1], 64)
	if coldSetup <= 0 || warmSetup != 0 {
		t.Fatalf("setup cells: cold=%v warm=%v", coldSetup, warmSetup)
	}
}

func TestDeterministicResults(t *testing.T) {
	a := Figure5(smallCfg()).Render()
	b := Figure5(smallCfg()).Render()
	if a != b {
		t.Fatal("experiment output is nondeterministic")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Platform == nil || c.Seed == 0 || c.Runs == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestModelCard(t *testing.T) {
	res := modelCard()
	if len(res.Rows) != 11 {
		t.Fatalf("model card rows = %d", len(res.Rows))
	}
}

func TestRenderMarkdownAndCSV(t *testing.T) {
	res := TableII(smallCfg())
	md := res.RenderMarkdown()
	if !strings.Contains(md, "## table2") || !strings.Contains(md, "| --- |") {
		t.Fatalf("markdown malformed:\n%s", md)
	}
	csv := res.RenderCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 { // header + 4 platforms
		t.Fatalf("csv lines = %d", len(lines))
	}
	// Commas inside cells must be quoted.
	if !strings.Contains(csv, `"`) {
		t.Fatal("accelerator cells contain commas and must be quoted")
	}
}

func TestShapesHoldAcrossChipsets(t *testing.T) {
	// §III-C: "our experimental results indicate that the trends are
	// representative across the other, older and newer, chipsets."
	// The headline shape checks must pass on the oldest and newest
	// Table-II platforms, not just the Pixel 3.
	for _, name := range []string{"Snapdragon 835", "Snapdragon 865"} {
		p, err := soc.PlatformByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Platform: p, Seed: 42, Runs: 10}
		for _, id := range []string{"fig5", "fig8", "fig11"} {
			e, _ := ByID(id)
			res := e.Run(cfg)
			for _, n := range res.Notes {
				if strings.Contains(n, "FAIL") {
					t.Errorf("%s on %s: %s", id, name, n)
				}
			}
		}
	}
}

func TestFaultToleranceCustomScenario(t *testing.T) {
	cfg := smallCfg()
	base := FaultTolerance(cfg)
	cfg.Faults = faults.Plan{RPCErrorRate: 0.5, Seed: 3}
	custom := FaultTolerance(cfg)
	if len(custom.Rows) != len(base.Rows)+1 {
		t.Fatalf("custom plan must add exactly one scenario row: %d vs %d",
			len(custom.Rows), len(base.Rows))
	}
	last := custom.Rows[len(custom.Rows)-1]
	if last[0] != "custom (-faults)" {
		t.Fatalf("last row = %v", last)
	}
	// The fixed scenarios must not be perturbed by the custom plan.
	for i, row := range base.Rows {
		for j := range row {
			if custom.Rows[i][j] != row[j] {
				t.Fatalf("fixed scenario %d drifted under a custom plan: %v vs %v",
					i, custom.Rows[i], row)
			}
		}
	}
}
