package bench

import (
	"fmt"
	"time"

	"aitax/internal/app"
	"aitax/internal/models"
	"aitax/internal/soc"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
	"aitax/internal/workload"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func msf(d time.Duration) string { return fmt.Sprintf("%.2f", ms(d)) }

// variantName labels a (model, dtype) pair the way the paper's figures
// do ("MobileNet 1.0 v1-int8").
func variantName(m *models.Model, dt tensor.DType) string {
	if dt == tensor.Float32 {
		return m.Name + "-fp32"
	}
	return m.Name + "-int8"
}

// figureModels returns the (model, dtype) variants the latency figures
// sweep: every Table-I model in each precision it supports on the given
// path.
func figureModels(nnapiPath bool) []struct {
	M  *models.Model
	DT tensor.DType
} {
	var out []struct {
		M  *models.Model
		DT tensor.DType
	}
	for _, m := range models.All() {
		for _, dt := range []tensor.DType{tensor.Float32, tensor.UInt8} {
			if m.Support.Supports(nnapiPath, dt) {
				out = append(out, struct {
					M  *models.Model
					DT tensor.DType
				}{m, dt})
			}
		}
	}
	return out
}

// benchToolRun executes the TFLite benchmark utility (or its app
// wrapper) for n measured runs and returns the samples.
func benchToolRun(platform *soc.SoC, seed uint64, m *models.Model, dt tensor.DType,
	delegate tflite.Delegate, threads, n int, appWrapper bool) ([]tflite.RunSample, error) {

	rt := tflite.NewStack(clonePlatform(platform), seed)
	ip, err := rt.NewInterpreter(m, dt, tflite.Options{Delegate: delegate, Threads: threads})
	if err != nil {
		return nil, err
	}
	bt := tflite.NewBenchTool(rt, ip)
	bt.AppWrapper = appWrapper
	var samples []tflite.RunSample
	bt.Run(n, func(s []tflite.RunSample) { samples = s })
	rt.Eng.Run()
	return samples, nil
}

// appRunOpts configures appRun.
type appRunOpts struct {
	Frames     int
	SkipWarmup int
	Background int
	BGDelegate tflite.Delegate
	BGModel    *models.Model
	BGDType    tensor.DType
}

// appRun executes the instrumented application for the given
// configuration and returns steady-state frame breakdowns.
func appRun(platform *soc.SoC, seed uint64, m *models.Model, dt tensor.DType,
	delegate tflite.Delegate, opts appRunOpts) ([]app.FrameStats, error) {

	rt := tflite.NewStack(clonePlatform(platform), seed)
	a, err := app.New(rt, app.Config{Model: m, DType: dt, Delegate: delegate, Streaming: true})
	if err != nil {
		return nil, err
	}
	var bg *workload.Background
	if opts.Background > 0 {
		bgModel := opts.BGModel
		if bgModel == nil {
			bgModel = m
		}
		bgDT := opts.BGDType
		if bgDT == tensor.Float32 && dt != tensor.Float32 {
			bgDT = dt
		}
		bg, err = workload.Start(rt, bgModel, bgDT, opts.BGDelegate, opts.Background)
		if err != nil {
			return nil, err
		}
	}
	if opts.SkipWarmup == 0 {
		opts.SkipWarmup = 2
	}
	var out []app.FrameStats
	a.Init(func() {
		a.Run(opts.Frames+opts.SkipWarmup, func(sts []app.FrameStats) {
			out = sts[opts.SkipWarmup:]
			a.StopStream()
			if bg != nil {
				bg.Stop()
			}
		})
	})
	rt.Eng.Run()
	return out, nil
}

// meanSample averages benchmark-tool samples.
func meanSample(samples []tflite.RunSample) tflite.RunSample {
	var sum tflite.RunSample
	if len(samples) == 0 {
		return sum
	}
	for _, s := range samples {
		sum.DataCapture += s.DataCapture
		sum.Pre += s.Pre
		sum.Inference += s.Inference
		sum.UI += s.UI
		sum.Total += s.Total
	}
	n := time.Duration(len(samples))
	sum.DataCapture /= n
	sum.Pre /= n
	sum.Inference /= n
	sum.UI /= n
	sum.Total /= n
	return sum
}

// meanFrames averages app frame breakdowns.
func meanFrames(frames []app.FrameStats) app.FrameStats {
	var sum app.FrameStats
	if len(frames) == 0 {
		return sum
	}
	for _, f := range frames {
		sum.Capture += f.Capture
		sum.Pre += f.Pre
		sum.Inference += f.Inference
		sum.Post += f.Post
		sum.UI += f.UI
		sum.Total += f.Total
		sum.Retry += f.Retry
		sum.Fallback += f.Fallback
	}
	n := time.Duration(len(frames))
	sum.Capture /= n
	sum.Pre /= n
	sum.Inference /= n
	sum.Post /= n
	sum.UI /= n
	sum.Total /= n
	sum.Retry /= n
	sum.Fallback /= n
	return sum
}

// clonePlatform re-derives a fresh platform value so experiments cannot
// leak state through shared device structs.
func clonePlatform(p *soc.SoC) *soc.SoC {
	fresh, err := soc.PlatformByName(p.Name)
	if err != nil {
		cp := *p
		return &cp
	}
	return fresh
}
