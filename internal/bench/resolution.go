package bench

import (
	"fmt"

	"aitax/internal/app"
	"aitax/internal/capture"
	"aitax/internal/models"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// ResolutionSweep quantifies §II-A's warning: "an incorrect choice of
// image resolution can cause non-linear performance drops if image
// processing algorithms in later parts of the ML pipeline do not scale
// with image size". The same classification app runs with increasing
// camera preview resolutions; inference is untouched while the
// capture+pre tax grows with the pixel count.
func ResolutionSweep(cfg Config) *Result {
	cfg = cfg.Defaults()
	m, _ := models.ByName("MobileNet 1.0 v1")
	r := &Result{
		ID:    "resolution",
		Title: "Camera preview resolution vs AI tax (MobileNet v1 int8, NNAPI)",
		Headers: []string{"Preview", "pixels", "capture (ms)", "pre (ms)",
			"inference (ms)", "tax share"},
	}
	frames := cfg.Runs / 2
	if frames < 8 {
		frames = 8
	}
	type res struct{ w, h int }
	var first, last app.FrameStats
	sizes := []res{{320, 240}, {480, 360}, {640, 480}, {1280, 720}}
	for i, sz := range sizes {
		rt := tflite.NewStack(clonePlatform(cfg.Platform), cfg.Seed)
		a, err := app.New(rt, app.Config{
			Model: m, DType: tensor.UInt8, Delegate: tflite.DelegateNNAPI, Streaming: true,
		})
		if err != nil {
			r.Notes = append(r.Notes, "setup failed: "+err.Error())
			return r
		}
		a.SetCamera(capture.NewCamera(rt.Eng, rt.RNG, sz.w, sz.h))
		var mean app.FrameStats
		a.Init(func() {
			a.Run(frames+2, func(sts []app.FrameStats) {
				mean = meanFrames(sts[2:])
				a.StopStream()
			})
		})
		rt.Eng.Run()
		tax := float64(mean.Total-mean.Inference) / float64(mean.Total)
		r.AddRow(fmt.Sprintf("%dx%d", sz.w, sz.h), sz.w*sz.h,
			msf(mean.Capture), msf(mean.Pre), msf(mean.Inference),
			fmt.Sprintf("%.0f%%", 100*tax))
		if i == 0 {
			first = mean
		}
		last = mean
	}
	capGrowth := float64(last.Capture+last.Pre) / float64(first.Capture+first.Pre)
	pxGrowth := float64(1280*720) / float64(320*240)
	infGrowth := float64(last.Inference) / float64(first.Inference)
	if capGrowth > 4 && infGrowth < 1.3 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: %.0fx more pixels cost %.1fx more capture+pre while inference stays flat (%.2fx) — resolution choice is an AI-tax lever (§II-A)",
			pxGrowth, capGrowth, infGrowth))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check FAIL: capture+pre growth %.1fx, inference growth %.2fx", capGrowth, infGrowth))
	}
	return r
}
