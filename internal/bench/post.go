package bench

import (
	"fmt"
	"sort"

	"aitax/internal/models"
	"aitax/internal/tensor"
	"aitax/internal/tflite"
)

// PostProcessing tabulates the app-side post-processing cost per model —
// the §IV-A observation that "most results suggest post-processing
// latency is negligible (sub-millisecond per inference)" while
// "segmentation and object detection show that applications require
// significant additional work on the model output".
func PostProcessing(cfg Config) *Result {
	cfg = cfg.Defaults()
	r := &Result{
		ID:      "post",
		Title:   "Post-processing latency by task (application, fp32 via NNAPI)",
		Headers: []string{"Model", "Task", "post (ms)", "share of e2e"},
	}
	type row struct {
		name, task string
		post       float64
		share      float64
	}
	var rows []row
	var classMax, segLike float64
	for _, m := range models.All() {
		if !m.Support.NNAPIFP32 {
			continue
		}
		sts, err := appRun(cfg.Platform, cfg.Seed, m, tensor.Float32, tflite.DelegateNNAPI,
			appRunOpts{Frames: cfg.Runs / 2})
		if err != nil {
			continue
		}
		mean := meanFrames(sts)
		post := ms(mean.Post)
		share := float64(mean.Post) / float64(mean.Total)
		rows = append(rows, row{m.Name, string(m.Task), post, share})
		switch m.Task {
		case models.Classification, models.FaceRecognition:
			if post > classMax {
				classMax = post
			}
		case models.Segmentation:
			segLike = post
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].post > rows[b].post })
	for _, rr := range rows {
		r.AddRow(rr.name, rr.task, fmt.Sprintf("%.3f", rr.post),
			fmt.Sprintf("%.2f%%", 100*rr.share))
	}
	if classMax < 0.2 && segLike > 5*classMax {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check PASS: classification post <= %.3f ms (sub-ms, §IV-A) while mask flattening costs %.2f ms",
			classMax, segLike))
	} else {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"shape check FAIL: classification max %.3f ms vs segmentation %.2f ms", classMax, segLike))
	}
	return r
}
