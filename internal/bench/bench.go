// Package bench is the experiment harness: one experiment per table and
// figure of the paper's evaluation, each regenerating the corresponding
// rows/series on the simulated platform. The aitax-experiments binary
// and the root-level Go benchmarks drive this package.
package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"aitax/internal/faults"
	"aitax/internal/soc"
)

// DefaultSeed is the seed an unset Config gets. Every number in the
// committed reference results was generated with it.
const DefaultSeed uint64 = 42

// Config parameterizes an experiment run. The zero value is usable:
// every experiment calls Defaults before reading it.
type Config struct {
	// Platform defaults to the Google Pixel 3 (SD845), the platform the
	// paper reports on.
	Platform *soc.SoC
	// Seed drives all stochastic behaviour; a fixed seed regenerates
	// byte-identical results. A zero Seed with SeedSet false selects
	// DefaultSeed; set SeedSet to request seed 0 itself.
	Seed uint64
	// SeedSet marks Seed as explicit. Without it a zero Seed is
	// indistinguishable from "unset" and is replaced by DefaultSeed.
	SeedSet bool
	// Runs is the per-configuration iteration count. The paper uses 500;
	// smaller values trade precision for speed. Defaults to 50.
	Runs int
	// Faults, when enabled, adds a "custom" scenario driven by this plan
	// to the faults experiment; every other experiment ignores it. The
	// zero plan (the default) keeps all output byte-identical.
	Faults faults.Plan
}

// Defaults returns a copy with every unset field filled with its
// documented default: the Pixel 3 platform, DefaultSeed (unless SeedSet
// or a non-zero Seed marks the seed explicit), and 50 runs.
func (c Config) Defaults() Config {
	if c.Platform == nil {
		c.Platform = soc.Pixel3()
	}
	if !c.SeedSet {
		if c.Seed == 0 {
			c.Seed = DefaultSeed
		}
		c.SeedSet = true
	}
	if c.Runs == 0 {
		c.Runs = 50
	}
	return c
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string // e.g. "table1", "fig5"
	Title string
	// Headers and Rows form the main table.
	Headers []string
	Rows    [][]string
	// Blocks are pre-rendered text artifacts (timelines, histograms).
	Blocks []string
	// Notes record shape checks and paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a table row from mixed values.
func (r *Result) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Render draws the result as aligned text.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if len(r.Headers) > 0 {
		widths := make([]int, len(r.Headers))
		for i, h := range r.Headers {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, c := range cells {
				if i < len(widths) {
					fmt.Fprintf(&b, "%-*s  ", widths[i], c)
				} else {
					b.WriteString(c)
				}
			}
			b.WriteString("\n")
		}
		writeRow(r.Headers)
		sep := make([]string, len(r.Headers))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	for _, blk := range r.Blocks {
		b.WriteString("\n")
		b.WriteString(blk)
		if !strings.HasSuffix(blk, "\n") {
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a runnable table/figure regenerator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Result
}

// RunCtx is Run under a context. Experiments are atomic units of
// simulation, so cancellation is observed at experiment granularity: a
// context cancelled before the experiment starts skips it, one
// cancelled mid-run lets the experiment finish. The lab runner uses
// this to drain a cancelled sweep quickly.
func (e Experiment) RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.Run(cfg), nil
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Benchmark list: models, pipelines, support matrix", TableI},
		{"table2", "Hardware platforms", TableII},
		{"fig3", "CLI benchmark vs benchmark app vs application (CPU)", Figure3},
		{"fig4a", "Data capture & pre-processing vs inference (absolute)", Figure4a},
		{"fig4b", "Data capture & pre-processing relative to inference", Figure4b},
		{"fig5", "EfficientNet-Lite0 quantized: NNAPI degradation", Figure5},
		{"fig6", "Execution profile of the Fig. 5 runs", Figure6},
		{"fig7", "FastRPC call flow costs", Figure7},
		{"fig8", "Offload overhead amortization over consecutive inferences", Figure8},
		{"fig9", "App breakdown vs background NNAPI(DSP) inferences", Figure9},
		{"fig10", "App breakdown vs background CPU inferences", Figure10},
		{"fig11", "Latency distribution: application vs benchmark", Figure11},
		{"coldstart", "Cold start: first vs warm accelerated inference", ColdStart},
		{"probe", "Probe effect of driver instrumentation", ProbeEffect},
		// Extensions beyond the paper's artifacts.
		{"models", "Model zoo inventory (reconstruction scale)", ModelsInventory},
		{"platforms", "MobileNet v1 across Snapdragon generations", PlatformSweep},
		{"prefs", "NNAPI execution preferences: latency vs energy", Preferences},
		{"thermal", "Latency drift under sustained load", Thermal},
		{"ablation-partitions", "Fig. 5 ablation: partition-shatter threshold", PartitionAblation},
		{"init", "Model initialization time by delegate", InitTimes},
		{"stdlib", "Random input generation cost by C++ standard library", StdlibQuirk},
		{"frameworks", "Framework comparison: CPU vs Hexagon vs NNAPI vs SNPE", Frameworks},
		{"dvfs", "DVFS cold ramp on consecutive CPU inferences", DVFSRamp},
		{"post", "Post-processing latency by task", PostProcessing},
		{"fusion", "Activation-fusion ablation", FusionAblation},
		{"preoffload", "Pre-processing placement: CPU vs DSP offload", PreOffload},
		{"driverfix", "Fig. 5 counterfactual: fixed vendor driver", DriverFix},
		{"resolution", "Camera preview resolution vs AI tax", ResolutionSweep},
		{"faults", "Fault tolerance: offload failures, retries, CPU fallback", FaultTolerance},
	}
}

// ErrUnknownExperiment is the sentinel ByID wraps when no experiment
// matches; callers branch with errors.Is instead of matching message
// text.
var ErrUnknownExperiment = errors.New("bench: unknown experiment")

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w %q (have %s)", ErrUnknownExperiment, id, strings.Join(IDs(), ", "))
}

// IDs lists experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.ID)
	}
	return out
}
