// Package qos implements the brownout controller: a deterministic,
// policy-driven degradation ladder that keeps an interactive latency SLO
// alive under overload and thermal pressure by spending the cheapest
// quality currency first.
//
// The controller consumes three pressure signals the serving layer
// already produces — SLO error-budget burn rate (internal/obs
// semantics), admission-queue occupancy, and thermal headroom on the
// accelerator (internal/thermal, plus the internal/faults trip state) —
// and folds them into one scalar pressure in [0, ∞). Pressure moves a
// level up an ordered ladder of reversible actions:
//
//	L1  shed best-effort traffic at admission (QoS classes)
//	L2  + downshift models to cheaper same-task fallbacks
//	L3  + steer batches off the hot accelerator delegate
//
// Climbing is immediate (one rung per decision tick); descending is
// hysteretic: pressure must stay below the rung's exit threshold for
// Hold consecutive ticks before the controller steps down, so the
// system re-arms without flapping. The controller is a pure state
// machine on explicit inputs — no clocks, no goroutines, no
// allocation on the tick path — so the virtual-time simulator and the
// wall-clock HTTP frontend drive the exact same code and a seeded storm
// replays byte-identically at any host parallelism.
package qos

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
)

// Class is a request's QoS class. Lower values are more important:
// the ladder sheds from the bottom up.
type Class uint8

// The serving classes, most to least important.
const (
	Interactive Class = iota
	Standard
	BestEffort
	// NumClasses counts the classes above.
	NumClasses = 3
)

// String names the class the way ParseClass accepts it.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Standard:
		return "standard"
	case BestEffort:
		return "best-effort"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass parses a class name. The empty string is Standard — the
// default for traffic that never declared a class.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "standard", "std":
		return Standard, nil
	case "interactive", "int":
		return Interactive, nil
	case "best-effort", "besteffort", "be":
		return BestEffort, nil
	}
	return Standard, fmt.Errorf("%w: unknown class %q (want interactive, standard or best-effort)", ErrBadLadder, s)
}

// NumRungs is the ladder's depth: shed, downshift, steer.
const NumRungs = 3

// ErrBadLadder tags every ladder-configuration validation error, so
// callers at the edges can distinguish bad policy input from runtime
// failures with errors.Is.
var ErrBadLadder = errors.New("qos: bad ladder config")

// Ladder is the brownout policy: decision cadence, per-rung thresholds,
// hysteresis, and the pressure-signal normalization constants.
type Ladder struct {
	// Tick is the decision cadence (virtual time in the simulator, wall
	// clock in the HTTP frontend).
	Tick time.Duration
	// Enter[i] is the pressure at or above which the controller climbs
	// from level i to i+1. Exit[i] is the pressure below which level
	// i+1 may step back down; each Exit must sit strictly below its
	// Enter or the ladder flaps.
	Enter [NumRungs]float64
	Exit  [NumRungs]float64
	// Hold is how many consecutive ticks pressure must stay below the
	// exit threshold before the controller descends one rung.
	Hold int
	// ShortTicks and LongTicks are the burn-rate horizons in ticks: the
	// short horizon reacts fast, the long horizon keeps one calm tick
	// from resetting the picture (the multiwindow rule internal/obs
	// alerts on, scaled down to controller cadence).
	ShortTicks, LongTicks int
	// Budget is the error budget the burn rate is measured against
	// (0.05 = a 95% objective).
	Budget float64
	// Page is the burn rate that normalizes to pressure 1.0 — burning
	// the budget Page times faster than allowed saturates the signal.
	Page float64
	// SteerHeadroomC is the thermal headroom (trip minus die
	// temperature, °C) below which thermal pressure ramps from 0
	// toward 1 at zero headroom — so steering engages before the trip.
	SteerHeadroomC float64
}

// Defaults fills every zero field with the standard policy.
func (l Ladder) Defaults() Ladder {
	if l.Tick == 0 {
		l.Tick = 50 * time.Millisecond
	}
	if l.Enter == ([NumRungs]float64{}) {
		l.Enter = [NumRungs]float64{0.5, 0.7, 0.9}
	}
	if l.Exit == ([NumRungs]float64{}) {
		l.Exit = [NumRungs]float64{0.25, 0.4, 0.6}
	}
	if l.Hold == 0 {
		l.Hold = 8
	}
	if l.ShortTicks == 0 {
		l.ShortTicks = 4
	}
	if l.LongTicks == 0 {
		l.LongTicks = 16
	}
	if l.Budget == 0 {
		l.Budget = 0.05
	}
	if l.Page == 0 {
		l.Page = 10
	}
	if l.SteerHeadroomC == 0 {
		l.SteerHeadroomC = 10
	}
	return l
}

// badNumber rejects the values that slip through comparison-based
// range checks: NaN compares false against everything.
func badNumber(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// Validate reports the first problem with the ladder. All errors wrap
// ErrBadLadder.
func (l Ladder) Validate() error {
	if l.Tick <= 0 {
		return fmt.Errorf("%w: tick must be positive, got %v", ErrBadLadder, l.Tick)
	}
	if l.Hold < 1 {
		return fmt.Errorf("%w: hold must be at least 1 tick, got %d", ErrBadLadder, l.Hold)
	}
	if l.ShortTicks < 1 {
		return fmt.Errorf("%w: short horizon must be at least 1 tick, got %d", ErrBadLadder, l.ShortTicks)
	}
	if l.LongTicks < l.ShortTicks {
		return fmt.Errorf("%w: long horizon (%d) must cover the short one (%d)", ErrBadLadder, l.LongTicks, l.ShortTicks)
	}
	if l.LongTicks > 4096 {
		return fmt.Errorf("%w: long horizon %d is over the 4096-tick cap", ErrBadLadder, l.LongTicks)
	}
	if badNumber(l.Budget) || l.Budget <= 0 || l.Budget >= 1 {
		return fmt.Errorf("%w: budget must be in (0,1), got %g", ErrBadLadder, l.Budget)
	}
	if badNumber(l.Page) || l.Page <= 0 {
		return fmt.Errorf("%w: page burn must be positive, got %g", ErrBadLadder, l.Page)
	}
	if badNumber(l.SteerHeadroomC) || l.SteerHeadroomC <= 0 {
		return fmt.Errorf("%w: steer headroom must be positive, got %g", ErrBadLadder, l.SteerHeadroomC)
	}
	for i := 0; i < NumRungs; i++ {
		if badNumber(l.Enter[i]) || l.Enter[i] <= 0 {
			return fmt.Errorf("%w: enter[%d] must be positive, got %g", ErrBadLadder, i, l.Enter[i])
		}
		if badNumber(l.Exit[i]) || l.Exit[i] <= 0 {
			return fmt.Errorf("%w: exit[%d] must be positive, got %g", ErrBadLadder, i, l.Exit[i])
		}
		if l.Exit[i] >= l.Enter[i] {
			return fmt.Errorf("%w: exit[%d] (%g) must sit below enter[%d] (%g) for hysteresis",
				ErrBadLadder, i, l.Exit[i], i, l.Enter[i])
		}
		if i > 0 && l.Enter[i] < l.Enter[i-1] {
			return fmt.Errorf("%w: enter thresholds must be non-decreasing (enter[%d]=%g < enter[%d]=%g)",
				ErrBadLadder, i, l.Enter[i], i-1, l.Enter[i-1])
		}
	}
	return nil
}

// ParseLadder parses a ladder spec of the form "key=value,...":
//
//	tick=50ms hold=8 short=4 long=16 budget=0.05 page=10 headroom=10
//	enter=0.5/0.7/0.9 exit=0.25/0.4/0.6
//
// Unset keys take the defaults; "on", "default" or the empty string is
// the all-defaults ladder. Every parse or range error wraps
// ErrBadLadder.
func ParseLadder(spec string) (Ladder, error) {
	l := Ladder{}.Defaults()
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" || strings.EqualFold(trimmed, "on") || strings.EqualFold(trimmed, "default") {
		return l, nil
	}
	for _, part := range strings.Split(trimmed, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Ladder{}, fmt.Errorf("%w: %q is not key=value", ErrBadLadder, part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "tick":
			l.Tick, err = time.ParseDuration(val)
		case "hold":
			_, err = fmt.Sscanf(val, "%d", &l.Hold)
		case "short":
			_, err = fmt.Sscanf(val, "%d", &l.ShortTicks)
		case "long":
			_, err = fmt.Sscanf(val, "%d", &l.LongTicks)
		case "budget":
			_, err = fmt.Sscanf(val, "%g", &l.Budget)
		case "page":
			_, err = fmt.Sscanf(val, "%g", &l.Page)
		case "headroom":
			_, err = fmt.Sscanf(val, "%g", &l.SteerHeadroomC)
		case "enter":
			l.Enter, err = parseRungs(val)
		case "exit":
			l.Exit, err = parseRungs(val)
		default:
			return Ladder{}, fmt.Errorf("%w: unknown key %q", ErrBadLadder, key)
		}
		if err != nil {
			return Ladder{}, fmt.Errorf("%w: %s=%q: %v", ErrBadLadder, key, val, err)
		}
	}
	return l, l.Validate()
}

// parseRungs parses "a/b/c" into per-rung thresholds.
func parseRungs(val string) ([NumRungs]float64, error) {
	var out [NumRungs]float64
	parts := strings.Split(val, "/")
	if len(parts) != NumRungs {
		return out, fmt.Errorf("want %d slash-separated values", NumRungs)
	}
	for i, p := range parts {
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%g", &out[i]); err != nil {
			return out, fmt.Errorf("bad threshold %q", p)
		}
	}
	return out, nil
}

// Signals are the per-tick pressure inputs the serving layer samples.
type Signals struct {
	// QueueFrac is the fullest admission queue's occupancy in [0,1].
	QueueFrac float64
	// HeadroomC is the accelerator's thermal headroom: trip temperature
	// minus die temperature (+Inf when no trip point is modeled).
	HeadroomC float64
	// Tripped reports the accelerator already hard-tripped (thermal
	// model or fault plan) — pressure saturates and steering is forced.
	Tripped bool
}

// Pressure-driver names, interned so the tick path never allocates.
const (
	DriverIdle    = "idle"
	DriverBurn    = "burn"
	DriverQueue   = "queue"
	DriverThermal = "thermal"
)

// Tick is one decision's outcome.
type Tick struct {
	// Level is the ladder level after the decision (0 = no degradation).
	Level int
	// From is the level before it; Changed marks a transition.
	From    int
	Changed bool
	// Pressure is the folded scalar the decision used, Driver the
	// signal that dominated it, Burn the min(short, long) burn rate.
	Pressure float64
	Driver   string
	Burn     float64
}

// tickCount is one closed tick's good/bad tally.
type tickCount struct{ good, bad float64 }

// Controller is the brownout state machine. It is not synchronized:
// the simulator drives it single-threaded on virtual time, the HTTP
// frontend guards it with the server mutex.
type Controller struct {
	lad    Ladder
	frozen bool

	ring      []tickCount // last LongTicks closed ticks
	tick      int         // index of the next tick to close
	good, bad float64     // open-tick accumulators

	level int
	calm  int // consecutive ticks below the exit threshold
}

// NewController validates the ladder and returns a controller at level
// 0 with empty burn history.
func NewController(l Ladder) (*Controller, error) {
	l = l.Defaults()
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &Controller{lad: l, ring: make([]tickCount, l.LongTicks)}, nil
}

// Ladder returns the validated policy the controller runs.
func (c *Controller) Ladder() Ladder { return c.lad }

// Freeze pins the controller at level 0: pressure and burn are still
// computed and reported every tick, but no action ever engages. This
// is the observe-only baseline the storm comparison runs.
func (c *Controller) Freeze() { c.frozen = true }

// Frozen reports whether the controller is observe-only.
func (c *Controller) Frozen() bool { return c.frozen }

// ObserveGood and ObserveBad feed one SLO-scored request outcome into
// the open tick. Shed requests are not fed back — the controller's own
// action must not hold its pressure up, or it never recovers.
func (c *Controller) ObserveGood() { c.good++ }

// ObserveBad records one SLO breach (late or rejected).
func (c *Controller) ObserveBad() { c.bad++ }

// Level returns the current ladder level.
func (c *Controller) Level() int { return c.level }

// Shed reports whether admission should turn class away right now.
// Only best-effort traffic is ever shed: the ladder's premise is that
// interactive and standard requests are what the shedding protects.
func (c *Controller) Shed(class Class) bool {
	return c.level >= 1 && class == BestEffort
}

// Downshift reports whether requests should be rewritten to their
// configured cheaper fallback models.
func (c *Controller) Downshift() bool { return c.level >= 2 }

// Steer reports whether batches should run on the steer delegate
// instead of the configured (hot) accelerator.
func (c *Controller) Steer() bool { return c.level >= NumRungs }

// burn computes the budget-burn rate over the last n closed ticks.
func (c *Controller) burn(n int) float64 {
	var good, bad float64
	for w := c.tick - n; w < c.tick; w++ {
		if w < 0 {
			continue
		}
		t := c.ring[w%len(c.ring)]
		good += t.good
		bad += t.bad
	}
	total := good + bad
	if total == 0 {
		return 0
	}
	return (bad / total) / c.lad.Budget
}

// TickAt closes the open observation tick and runs one ladder
// decision. now is informational (it stamps nothing inside the
// controller); the caller owns the cadence. The tick path performs no
// allocation — it is the serving hot loop's companion.
func (c *Controller) TickAt(now time.Duration, sig Signals) Tick {
	c.ring[c.tick%len(c.ring)] = tickCount{c.good, c.bad}
	c.tick++
	c.good, c.bad = 0, 0

	burnShort := c.burn(c.lad.ShortTicks)
	burnLong := c.burn(c.lad.LongTicks)
	burn := burnShort
	if burnLong < burn {
		burn = burnLong
	}

	// Fold the three signals into one scalar; the largest wins and
	// names the driver (ties resolve burn > queue > thermal).
	burnP := burn / c.lad.Page
	queueP := sig.QueueFrac
	if queueP < 0 || math.IsNaN(queueP) {
		queueP = 0
	} else if queueP > 1 {
		queueP = 1
	}
	thermP := 0.0
	if sig.Tripped {
		thermP = 2
	} else if sig.HeadroomC < c.lad.SteerHeadroomC {
		thermP = (c.lad.SteerHeadroomC - sig.HeadroomC) / c.lad.SteerHeadroomC
		if thermP > 2 {
			thermP = 2
		}
	}
	pressure, driver := burnP, DriverBurn
	if queueP > pressure {
		pressure, driver = queueP, DriverQueue
	}
	if thermP > pressure {
		pressure, driver = thermP, DriverThermal
	}
	if pressure == 0 {
		driver = DriverIdle
	}

	out := Tick{From: c.level, Pressure: pressure, Driver: driver, Burn: burn}
	if !c.frozen {
		switch {
		case c.level < NumRungs && pressure >= c.lad.Enter[c.level]:
			// Climb one rung per tick: the ladder is ordered, each
			// action gets a tick to bite before the next engages.
			c.level++
			c.calm = 0
		case c.level > 0 && pressure < c.lad.Exit[c.level-1]:
			c.calm++
			if c.calm >= c.lad.Hold {
				c.level--
				c.calm = 0
			}
		default:
			// In the hysteresis band (or at level 0): hold, and any
			// accumulated calm is forfeit.
			c.calm = 0
		}
	}
	out.Level = c.level
	out.Changed = out.Level != out.From
	return out
}
