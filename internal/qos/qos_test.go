package qos

import (
	"errors"
	"math"
	"testing"
	"time"
)

func mustController(t *testing.T, l Ladder) *Controller {
	t.Helper()
	c, err := NewController(l)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// tickN runs n ticks with the given per-tick feed and signals,
// returning the last tick.
func tickN(c *Controller, n int, good, bad int, sig Signals) Tick {
	var last Tick
	for i := 0; i < n; i++ {
		for g := 0; g < good; g++ {
			c.ObserveGood()
		}
		for b := 0; b < bad; b++ {
			c.ObserveBad()
		}
		last = c.TickAt(time.Duration(i)*50*time.Millisecond, sig)
	}
	return last
}

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"", Standard, true},
		{"standard", Standard, true},
		{"std", Standard, true},
		{"Interactive", Interactive, true},
		{" best-effort ", BestEffort, true},
		{"besteffort", BestEffort, true},
		{"be", BestEffort, true},
		{"vip", 0, false},
		{"0", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseClass(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseClass(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err != nil {
			if !errors.Is(err, ErrBadLadder) {
				t.Errorf("ParseClass(%q): error %v does not wrap ErrBadLadder", tc.in, err)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("ParseClass(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{Interactive, Standard, BestEffort} {
		back, err := ParseClass(c.String())
		if err != nil || back != c {
			t.Errorf("ParseClass(%v.String()) = %v, %v", c, back, err)
		}
	}
}

func TestParseLadder(t *testing.T) {
	good := []struct {
		in    string
		check func(Ladder) bool
	}{
		{"", func(l Ladder) bool { return l.Tick == 50*time.Millisecond && l.Hold == 8 }},
		{"on", func(l Ladder) bool { return l == Ladder{}.Defaults() }},
		{"default", func(l Ladder) bool { return l == Ladder{}.Defaults() }},
		{"tick=100ms,hold=4", func(l Ladder) bool { return l.Tick == 100*time.Millisecond && l.Hold == 4 }},
		{"enter=0.4/0.6/0.8,exit=0.2/0.3/0.4", func(l Ladder) bool {
			return l.Enter == [NumRungs]float64{0.4, 0.6, 0.8} && l.Exit == [NumRungs]float64{0.2, 0.3, 0.4}
		}},
		{"budget=0.1,page=5,headroom=15", func(l Ladder) bool {
			return l.Budget == 0.1 && l.Page == 5 && l.SteerHeadroomC == 15
		}},
		{"short=2,long=8", func(l Ladder) bool { return l.ShortTicks == 2 && l.LongTicks == 8 }},
	}
	for _, tc := range good {
		l, err := ParseLadder(tc.in)
		if err != nil {
			t.Errorf("ParseLadder(%q): %v", tc.in, err)
			continue
		}
		if !tc.check(l) {
			t.Errorf("ParseLadder(%q) = %+v fails its check", tc.in, l)
		}
	}

	bad := []string{
		"tick",               // not key=value
		"tick=fast",          // unparseable duration
		"tick=0s",            // zero tick
		"tick=-50ms",         // negative tick
		"hold=0",             // hysteresis needs at least one tick
		"hold=-3",            // negative
		"short=0",            // empty horizon
		"short=8,long=4",     // long shorter than short
		"long=100000",        // over the horizon cap
		"budget=0",           // empty budget
		"budget=1.5",         // over 1
		"budget=NaN",         // NaN must not slip through range checks
		"page=NaN",           // NaN
		"page=-2",            // negative
		"headroom=0",         // zero headroom span
		"headroom=+Inf",      // infinite
		"enter=0.5/0.7",      // wrong arity
		"enter=a/b/c",        // garbage thresholds
		"enter=0/0.7/0.9",    // zero enter
		"exit=0.6/0.4/0.6",   // exit[0] >= enter[0]
		"enter=0.9/0.7/0.95", // non-monotonic enters
		"exit=NaN/0.4/0.6",   // NaN threshold
		"turbo=1",            // unknown key
	}
	for _, in := range bad {
		if _, err := ParseLadder(in); err == nil {
			t.Errorf("ParseLadder(%q) succeeded, want error", in)
		} else if !errors.Is(err, ErrBadLadder) {
			t.Errorf("ParseLadder(%q): error %v does not wrap ErrBadLadder", in, err)
		}
	}
}

func TestValidateRejectsNaNFields(t *testing.T) {
	l := Ladder{}.Defaults()
	l.Budget = math.NaN()
	if err := l.Validate(); err == nil {
		t.Fatal("NaN budget validated — NaN compares false against every range check")
	}
	l = Ladder{}.Defaults()
	l.Enter[1] = math.Inf(1)
	if err := l.Validate(); err == nil {
		t.Fatal("Inf enter threshold validated")
	}
}

func TestLadderClimbsOneRungPerTick(t *testing.T) {
	c := mustController(t, Ladder{})
	// All-bad traffic: burn saturates, pressure >= 1 from the first
	// closed tick, so the controller climbs 0→1→2→3 over three ticks.
	for want := 1; want <= NumRungs; want++ {
		tk := tickN(c, 1, 0, 10, Signals{HeadroomC: 100})
		if tk.Level != want || !tk.Changed {
			t.Fatalf("tick %d: level %d changed=%v, want climb to %d", want, tk.Level, tk.Changed, want)
		}
		if tk.Driver != DriverBurn {
			t.Fatalf("tick %d: driver %q, want burn", want, tk.Driver)
		}
	}
	if !c.Shed(BestEffort) || !c.Downshift() || !c.Steer() {
		t.Fatal("at the top rung all three actions must be engaged")
	}
	if c.Shed(Interactive) || c.Shed(Standard) {
		t.Fatal("interactive/standard must never be shed")
	}
}

func TestRecoveryRequiresHoldCalmTicks(t *testing.T) {
	l := Ladder{Hold: 3, ShortTicks: 2, LongTicks: 4}.Defaults()
	c := mustController(t, l)
	tickN(c, NumRungs, 0, 10, Signals{HeadroomC: 100})
	if c.Level() != NumRungs {
		t.Fatalf("setup: level %d, want %d", c.Level(), NumRungs)
	}
	// Good traffic: the burn horizons drain over LongTicks, then the
	// calm counter must see Hold consecutive sub-exit ticks per rung.
	steps := 0
	for c.Level() > 0 {
		tickN(c, 1, 10, 0, Signals{HeadroomC: 100})
		steps++
		if steps > 100 {
			t.Fatal("controller never recovered")
		}
	}
	// Descending three rungs takes at least 3*Hold calm ticks — strictly
	// more than one Hold, proving the per-rung re-arm.
	if steps < 3*l.Hold {
		t.Fatalf("recovered in %d ticks, want at least %d (Hold per rung)", steps, 3*l.Hold)
	}
}

func TestHysteresisBandForfeitsCalm(t *testing.T) {
	l := Ladder{Hold: 2, ShortTicks: 1, LongTicks: 1}.Defaults()
	c := mustController(t, l)
	tickN(c, 1, 0, 10, Signals{HeadroomC: 100}) // climb to 1
	if c.Level() != 1 {
		t.Fatalf("level %d, want 1", c.Level())
	}
	// Alternate calm (below exit[0]) and band (between exit[0] and
	// enter[1]) ticks via the queue signal: calm never reaches Hold=2
	// consecutively, so the level must not flap down.
	for i := 0; i < 10; i++ {
		sig := Signals{QueueFrac: 0.1, HeadroomC: 100} // calm
		if i%2 == 1 {
			sig.QueueFrac = 0.5 // inside the band: exit[0]=0.25 <= p < enter[1]=0.7
		}
		tk := tickN(c, 1, 0, 0, sig)
		if tk.Level != 1 {
			t.Fatalf("tick %d: level %d, want the band to hold level 1", i, tk.Level)
		}
	}
	// Two consecutive calm ticks now release the rung.
	tickN(c, 1, 0, 0, Signals{QueueFrac: 0.1, HeadroomC: 100})
	tk := tickN(c, 1, 0, 0, Signals{QueueFrac: 0.1, HeadroomC: 100})
	if tk.Level != 0 {
		t.Fatalf("level %d after Hold calm ticks, want 0", tk.Level)
	}
}

func TestThermalPressureSteersBeforeTrip(t *testing.T) {
	c := mustController(t, Ladder{})
	// Headroom shrinking below SteerHeadroomC (10): at 0.5°C of
	// headroom thermal pressure is 0.95 ≥ every enter threshold, so the
	// ladder climbs to the steer rung while the trip has NOT fired.
	for i := 0; i < NumRungs; i++ {
		tk := tickN(c, 1, 10, 0, Signals{HeadroomC: 0.5})
		if tk.Driver != DriverThermal {
			t.Fatalf("driver %q, want thermal", tk.Driver)
		}
	}
	if !c.Steer() {
		t.Fatal("steer must engage from thermal headroom alone, before the trip")
	}
}

func TestTrippedSaturatesPressure(t *testing.T) {
	c := mustController(t, Ladder{})
	tk := tickN(c, 1, 10, 0, Signals{HeadroomC: 50, Tripped: true})
	if tk.Pressure != 2 || tk.Driver != DriverThermal {
		t.Fatalf("tripped tick: pressure %g driver %q, want 2/thermal", tk.Pressure, tk.Driver)
	}
}

func TestFrozenControllerObservesButNeverActs(t *testing.T) {
	c := mustController(t, Ladder{})
	c.Freeze()
	tk := tickN(c, 10, 0, 10, Signals{HeadroomC: 1, Tripped: true})
	if tk.Level != 0 || c.Level() != 0 {
		t.Fatalf("frozen controller moved to level %d", tk.Level)
	}
	if tk.Pressure == 0 || tk.Burn == 0 {
		t.Fatalf("frozen controller must still report pressure/burn, got %g/%g", tk.Pressure, tk.Burn)
	}
	if c.Shed(BestEffort) || c.Downshift() || c.Steer() {
		t.Fatal("frozen controller engaged an action")
	}
}

func TestIdleDriverAndZeroTraffic(t *testing.T) {
	c := mustController(t, Ladder{})
	tk := tickN(c, 5, 0, 0, Signals{HeadroomC: 100})
	if tk.Pressure != 0 || tk.Driver != DriverIdle || tk.Level != 0 {
		t.Fatalf("idle tick: %+v", tk)
	}
}

func TestBurnHorizonsUseMin(t *testing.T) {
	l := Ladder{ShortTicks: 2, LongTicks: 8}.Defaults()
	c := mustController(t, l)
	// One very bad tick inside an otherwise good long horizon: the
	// short horizon spikes but the long one stays low — min() keeps a
	// single blip from climbing the ladder (the multiwindow rule).
	tickN(c, 7, 10, 0, Signals{HeadroomC: 100})
	tk := tickN(c, 1, 0, 10, Signals{HeadroomC: 100})
	if tk.Level != 0 {
		t.Fatalf("one-tick blip moved the ladder to %d", tk.Level)
	}
}

func TestControllerTickDoesNotAllocate(t *testing.T) {
	c := mustController(t, Ladder{})
	sig := Signals{QueueFrac: 0.4, HeadroomC: 8}
	n := testing.AllocsPerRun(1000, func() {
		c.ObserveGood()
		c.ObserveBad()
		c.TickAt(0, sig)
	})
	if n != 0 {
		t.Fatalf("controller tick allocates %.1f allocs/op, want 0", n)
	}
}

func BenchmarkControllerTick(b *testing.B) {
	c, err := NewController(Ladder{})
	if err != nil {
		b.Fatal(err)
	}
	sig := Signals{QueueFrac: 0.4, HeadroomC: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ObserveGood()
		c.ObserveBad()
		c.TickAt(time.Duration(i), sig)
	}
}
