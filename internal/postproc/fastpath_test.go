package postproc

import (
	"math"
	"math/rand/v2"
	"testing"

	"aitax/internal/tensor"
)

// randomScores fills an NHWC score tensor of the given dtype with a
// seeded pattern covering the full raw range (including exact ties, so
// the first-wins rule is exercised).
func randomScores(dt tensor.DType, shape tensor.Shape, q tensor.QuantParams, seed uint64) *tensor.Tensor {
	t := tensor.New(dt, shape)
	t.Quant = q
	r := rand.New(rand.NewPCG(seed, 99))
	for i, n := 0, t.Elems(); i < n; i++ {
		switch dt {
		case tensor.Float32:
			t.F32[i] = float32(r.NormFloat64() * 3)
		case tensor.UInt8:
			t.U8[i] = uint8(r.IntN(256))
		case tensor.Int8:
			t.I8[i] = int8(r.IntN(256) - 128)
		case tensor.Int32:
			t.I32[i] = int32(r.IntN(64) - 32)
		}
	}
	return t
}

// atArgmaxMask is the original generic FlattenMask loop, kept as the
// reference the specialized tile kernels must reproduce exactly.
func atArgmaxMask(t *tensor.Tensor) []int {
	h, w, c := t.Shape[1], t.Shape[2], t.Shape[3]
	mask := make([]int, h*w)
	for p := 0; p < h*w; p++ {
		base := p * c
		best, bestScore := 0, t.At(base)
		for ch := 1; ch < c; ch++ {
			if s := t.At(base + ch); s > bestScore {
				best, bestScore = ch, s
			}
		}
		mask[p] = best
	}
	return mask
}

func TestFlattenMaskFastPathsMatchGenericScan(t *testing.T) {
	shape := tensor.Shape{1, 33, 29, 21}
	cases := []struct {
		dt tensor.DType
		q  tensor.QuantParams
	}{
		{tensor.Float32, tensor.QuantParams{}},
		{tensor.Int32, tensor.QuantParams{}},
		{tensor.UInt8, tensor.QuantParams{Scale: 0.00390625, ZeroPoint: 0}},
		{tensor.UInt8, tensor.QuantParams{Scale: 2.5, ZeroPoint: 131}},
		{tensor.Int8, tensor.QuantParams{Scale: 0.1, ZeroPoint: -7}},
		// Degenerate scale: every score dequantizes to the same value,
		// so the argmax must stay 0 everywhere (generic path).
		{tensor.UInt8, tensor.QuantParams{Scale: 0, ZeroPoint: 10}},
	}
	for _, tc := range cases {
		scores := randomScores(tc.dt, shape, tc.q, 7)
		want := atArgmaxMask(scores)
		got := FlattenMask(scores)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v %+v: pixel %d = %d, want %d", tc.dt, tc.q, i, got[i], want[i])
			}
		}
	}
}

func TestFlattenMaskNaNMatchesGenericScan(t *testing.T) {
	scores := randomScores(tensor.Float32, tensor.Shape{1, 8, 8, 5}, tensor.QuantParams{}, 3)
	nan := float32(math.NaN())
	scores.F32[0], scores.F32[7], scores.F32[63] = nan, nan, nan
	want := atArgmaxMask(scores)
	got := FlattenMask(scores)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pixel %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// atDecodeBoxes is the original sequential DecodeBoxes loop.
func atDecodeBoxes(locs, scores *tensor.Tensor, anchors []Anchor, threshold float64) []Box {
	n, c := scores.Shape[1], scores.Shape[2]
	const scaleXY, scaleHW = 10.0, 5.0
	var out []Box
	for i := 0; i < n; i++ {
		bestC, bestS := 0, 0.0
		for ch := 1; ch < c; ch++ {
			if s := scores.At(i*c + ch); s > bestS {
				bestC, bestS = ch, s
			}
		}
		if bestC == 0 || bestS < threshold {
			continue
		}
		a := anchors[i]
		ty, tx := locs.At(i*4), locs.At(i*4+1)
		th, tw := locs.At(i*4+2), locs.At(i*4+3)
		cy := ty/scaleXY*a.H + a.CY
		cx := tx/scaleXY*a.W + a.CX
		hh := math.Exp(th/scaleHW) * a.H
		ww := math.Exp(tw/scaleHW) * a.W
		out = append(out, Box{
			YMin: cy - hh/2, XMin: cx - ww/2,
			YMax: cy + hh/2, XMax: cx + ww/2,
			Class: bestC, Score: bestS,
		})
	}
	return out
}

func TestDecodeBoxesFastPathsMatchGenericScan(t *testing.T) {
	anchors := DefaultAnchors(8)
	n := len(anchors)
	locs := randomScores(tensor.Float32, tensor.Shape{1, n, 4}, tensor.QuantParams{}, 13)
	cases := []struct {
		dt tensor.DType
		q  tensor.QuantParams
	}{
		{tensor.Float32, tensor.QuantParams{}},
		{tensor.UInt8, tensor.QuantParams{Scale: 0.00390625, ZeroPoint: 128}},
		{tensor.UInt8, tensor.QuantParams{Scale: 1, ZeroPoint: 0}},
		{tensor.Int8, tensor.QuantParams{Scale: 0.02, ZeroPoint: 5}},
		{tensor.UInt8, tensor.QuantParams{Scale: 0, ZeroPoint: 3}}, // generic fallback
	}
	for _, tc := range cases {
		scores := randomScores(tc.dt, tensor.Shape{1, n, 91}, tc.q, 17)
		for _, threshold := range []float64{0.0, 0.25, 0.6} {
			want := atDecodeBoxes(locs, scores, anchors, threshold)
			got := DecodeBoxes(locs, scores, anchors, threshold)
			if len(got) != len(want) {
				t.Fatalf("%v %+v thr=%v: %d boxes, want %d", tc.dt, tc.q, threshold, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v %+v thr=%v: box %d = %+v, want %+v", tc.dt, tc.q, threshold, i, got[i], want[i])
				}
			}
		}
	}
}

// atDecodeKeypoints is the original sequential keypoint decode.
func atDecodeKeypoints(heatmaps, offsets *tensor.Tensor, outputStride int) []Keypoint {
	h, w, k := heatmaps.Shape[1], heatmaps.Shape[2], heatmaps.Shape[3]
	out := make([]Keypoint, k)
	for kp := 0; kp < k; kp++ {
		bestY, bestX, bestScore := 0, 0, math.Inf(-1)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				s := heatmaps.At(((y*w)+x)*k + kp)
				if s > bestScore {
					bestY, bestX, bestScore = y, x, s
				}
			}
		}
		offBase := ((bestY * w) + bestX) * 2 * k
		out[kp] = Keypoint{
			Y:     float64(bestY*outputStride) + offsets.At(offBase+kp),
			X:     float64(bestX*outputStride) + offsets.At(offBase+k+kp),
			Score: sigmoid(bestScore),
		}
	}
	return out
}

func TestDecodeKeypointsFastPathsMatchGenericScan(t *testing.T) {
	shape := tensor.Shape{1, 9, 9, 17}
	offShape := tensor.Shape{1, 9, 9, 34}
	offsets := randomScores(tensor.Float32, offShape, tensor.QuantParams{}, 29)
	cases := []struct {
		dt tensor.DType
		q  tensor.QuantParams
	}{
		{tensor.Float32, tensor.QuantParams{}},
		{tensor.UInt8, tensor.QuantParams{Scale: 0.00390625, ZeroPoint: 128}},
		{tensor.Int8, tensor.QuantParams{Scale: 0.05, ZeroPoint: 0}},
		{tensor.UInt8, tensor.QuantParams{Scale: 0, ZeroPoint: 0}}, // generic fallback
	}
	for _, tc := range cases {
		heatmaps := randomScores(tc.dt, shape, tc.q, 31)
		want := atDecodeKeypoints(heatmaps, offsets, 32)
		got := DecodeKeypoints(heatmaps, offsets, 32)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v %+v: keypoint %d = %+v, want %+v", tc.dt, tc.q, i, got[i], want[i])
			}
		}
	}
}
