package postproc

// Tiled fast paths for the heavy post-processing kernels. Two ideas,
// both output-preserving:
//
//  1. Dtype specialization. The generic kernels call tensor.At per
//     element — a dequantizing switch that dominates the DeepLab mask
//     flatten (5.5M calls per frame). For the common dtypes the argmax
//     can instead compare raw storage: float64(float32) is a monotone
//     injection (and NaN stays incomparable), int32 order is the
//     float64 order, and for quantized tensors real = scale*(q-zp) is
//     strictly increasing in q whenever scale > 0 — distinct bytes
//     can't collide after rounding because their real values differ by
//     at least scale, far above one ulp at this magnitude. Tensors
//     with scale <= 0 (or exotic dtypes) take the original At loop.
//
//  2. Row tiling on internal/par. Every task below writes only its own
//     slice of the output, so the static partition makes the result
//     byte-identical at any worker count.

import (
	"math"
	"sync"

	"aitax/internal/tensor"
)

// rawComparable are the element types whose native order equals the
// dequantized float64 order (given scale > 0 for the byte types).
type rawComparable interface {
	~int8 | ~uint8 | ~int32 | ~float32
}

// argmaxRows writes the per-row argmax of an n×c matrix into mask for
// rows [lo, hi), with the same strict-greater first-wins tie rule as
// the At-based loop.
func argmaxRows[E rawComparable](mask []int, s []E, c, lo, hi int) {
	for p := lo; p < hi; p++ {
		row := s[p*c:][:c]
		best, bestS := 0, row[0]
		for ch := 1; ch < c; ch++ {
			if row[ch] > bestS {
				best, bestS = ch, row[ch]
			}
		}
		mask[p] = best
	}
}

type maskTask struct {
	t    *tensor.Tensor
	c    int
	mask []int
}

var maskTaskPool = sync.Pool{New: func() any { return new(maskTask) }}

func (mt *maskTask) Tile(lo, hi int) {
	t, c := mt.t, mt.c
	switch {
	case t.DType == tensor.Float32:
		argmaxRows(mt.mask, t.F32, c, lo, hi)
	case t.DType == tensor.Int32:
		argmaxRows(mt.mask, t.I32, c, lo, hi)
	case t.DType == tensor.UInt8 && t.Quant.Scale > 0:
		argmaxRows(mt.mask, t.U8, c, lo, hi)
	case t.DType == tensor.Int8 && t.Quant.Scale > 0:
		argmaxRows(mt.mask, t.I8, c, lo, hi)
	default:
		for p := lo; p < hi; p++ {
			base := p * c
			best, bestScore := 0, t.At(base)
			for ch := 1; ch < c; ch++ {
				if s := t.At(base + ch); s > bestScore {
					best, bestScore = ch, s
				}
			}
			mt.mask[p] = best
		}
	}
}

// ssdScratch holds the per-anchor argmax results of the parallel score
// scan, recycled across DecodeBoxesInto calls.
type ssdScratch struct {
	bestC []int32
	bestS []float64
}

var ssdScratchPool = sync.Pool{New: func() any { return new(ssdScratch) }}

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// bestClassRows scans anchors [lo, hi) of raw class scores, skipping
// background channel 0, replicating "s > bestS with bestS starting at
// 0.0" in the raw domain: the raw threshold init is the value that
// dequantizes to exactly 0.0 (the zero point; 0 for identity dtypes).
func bestClassRows[E rawComparable](bestC []int32, bestS []float64, s []E, c, lo, hi int, init E, deq func(E) float64) {
	for i := lo; i < hi; i++ {
		row := s[i*c:][:c]
		best, bestRaw := 0, init
		for ch := 1; ch < c; ch++ {
			if row[ch] > bestRaw {
				best, bestRaw = ch, row[ch]
			}
		}
		bestC[i] = int32(best)
		bestS[i] = deq(bestRaw)
	}
}

type boxScanTask struct {
	scores *tensor.Tensor
	c      int
	bestC  []int32
	bestS  []float64
}

var boxScanTaskPool = sync.Pool{New: func() any { return new(boxScanTask) }}

func (bt *boxScanTask) Tile(lo, hi int) {
	t, c := bt.scores, bt.c
	q := t.Quant
	switch {
	case t.DType == tensor.Float32:
		bestClassRows(bt.bestC, bt.bestS, t.F32, c, lo, hi, 0,
			func(v float32) float64 { return float64(v) })
	case t.DType == tensor.Int32:
		bestClassRows(bt.bestC, bt.bestS, t.I32, c, lo, hi, 0,
			func(v int32) float64 { return float64(v) })
	case t.DType == tensor.UInt8 && q.Scale > 0 && q.ZeroPoint >= 0 && q.ZeroPoint <= 255:
		bestClassRows(bt.bestC, bt.bestS, t.U8, c, lo, hi, uint8(q.ZeroPoint),
			func(v uint8) float64 { return q.Dequantize(int(v)) })
	case t.DType == tensor.Int8 && q.Scale > 0 && q.ZeroPoint >= -128 && q.ZeroPoint <= 127:
		bestClassRows(bt.bestC, bt.bestS, t.I8, c, lo, hi, int8(q.ZeroPoint),
			func(v int8) float64 { return q.Dequantize(int(v)) })
	default:
		for i := lo; i < hi; i++ {
			best, bestScore := 0, 0.0
			for ch := 1; ch < c; ch++ {
				if s := t.At(i*c + ch); s > bestScore {
					best, bestScore = ch, s
				}
			}
			bt.bestC[i] = int32(best)
			bt.bestS[i] = bestScore
		}
	}
}

type kpTask struct {
	heatmaps, offsets *tensor.Tensor
	h, w, k, stride   int
	out               []Keypoint
}

var kpTaskPool = sync.Pool{New: func() any { return new(kpTask) }}

func (t *kpTask) Tile(lo, hi int) {
	h, w, k := t.h, t.w, t.k
	hm := t.heatmaps
	for kp := lo; kp < hi; kp++ {
		bestY, bestX := 0, 0
		var bestScore float64
		switch {
		case hm.DType == tensor.Float32:
			bestScore = math.Inf(-1)
			idx := kp
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if s := float64(hm.F32[idx]); s > bestScore {
						bestY, bestX, bestScore = y, x, s
					}
					idx += k
				}
			}
		case hm.DType == tensor.UInt8 && hm.Quant.Scale > 0:
			// Raw bytes can't be NaN, so seeding from cell (0,0) is
			// equivalent to the -Inf init of the float path.
			bestRaw := hm.U8[kp]
			idx := kp
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if v := hm.U8[idx]; v > bestRaw {
						bestY, bestX, bestRaw = y, x, v
					}
					idx += k
				}
			}
			bestScore = hm.Quant.Dequantize(int(bestRaw))
		case hm.DType == tensor.Int8 && hm.Quant.Scale > 0:
			bestRaw := hm.I8[kp]
			idx := kp
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if v := hm.I8[idx]; v > bestRaw {
						bestY, bestX, bestRaw = y, x, v
					}
					idx += k
				}
			}
			bestScore = hm.Quant.Dequantize(int(bestRaw))
		default:
			bestScore = math.Inf(-1)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if s := hm.At(((y*w)+x)*k + kp); s > bestScore {
						bestY, bestX, bestScore = y, x, s
					}
				}
			}
		}
		offBase := ((bestY * w) + bestX) * 2 * k
		offY := t.offsets.At(offBase + kp)
		offX := t.offsets.At(offBase + k + kp)
		t.out[kp] = Keypoint{
			Y:     float64(bestY*t.stride) + offY,
			X:     float64(bestX*t.stride) + offX,
			Score: sigmoid(bestScore),
		}
	}
}
