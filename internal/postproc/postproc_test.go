package postproc

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"aitax/internal/tensor"
)

func TestTopK(t *testing.T) {
	tt := tensor.New(tensor.Float32, tensor.Shape{5})
	for i, v := range []float32{0.1, 0.7, 0.05, 0.9, 0.15} {
		tt.F32[i] = v
	}
	top := TopK(tt, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d, want 3", len(top))
	}
	if top[0].Index != 3 || top[1].Index != 1 || top[2].Index != 4 {
		t.Fatalf("topK order wrong: %v", top)
	}
}

func TestTopKQuantized(t *testing.T) {
	tt := tensor.NewQuant(tensor.UInt8, tensor.Shape{4}, tensor.QuantParams{Scale: 1.0 / 255})
	tt.U8 = []uint8{10, 250, 30, 100}
	top := TopK(tt, 2)
	if top[0].Index != 1 || top[1].Index != 3 {
		t.Fatalf("quantized topK wrong: %v", top)
	}
	if math.Abs(top[0].Score-250.0/255) > 1e-9 {
		t.Fatalf("dequantized score = %v", top[0].Score)
	}
}

func TestTopKEdges(t *testing.T) {
	tt := tensor.New(tensor.Float32, tensor.Shape{3})
	if got := TopK(tt, 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
	if got := TopK(tt, 10); len(got) != 3 {
		t.Fatalf("k>n must clamp: %d", len(got))
	}
	// Ties break by index.
	tie := TopK(tt, 3)
	if tie[0].Index != 0 || tie[1].Index != 1 {
		t.Fatalf("tie break wrong: %v", tie)
	}
}

func TestTopKIsSortedProperty(t *testing.T) {
	f := func(raw []float32) bool {
		tt := tensor.New(tensor.Float32, tensor.Shape{len(raw)})
		for i, v := range raw {
			if math.IsNaN(float64(v)) {
				v = 0
			}
			tt.F32[i] = v
		}
		top := TopK(tt, len(raw))
		return sort.SliceIsSorted(top, func(a, b int) bool {
			return top[a].Score > top[b].Score ||
				(top[a].Score == top[b].Score && top[a].Index < top[b].Index)
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("softmax not monotone: %v", p)
	}
	if Softmax(nil) != nil {
		t.Fatal("empty softmax must be nil")
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsInf(p[1], 0) {
		t.Fatal("softmax overflowed")
	}
	if math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Fatal("large-logit softmax does not sum to 1")
	}
}

func TestFlattenMask(t *testing.T) {
	// 2x2 map with 3 classes.
	tt := tensor.New(tensor.Float32, tensor.Shape{1, 2, 2, 3})
	scores := [][]float32{{0.1, 0.8, 0.1}, {0.9, 0.05, 0.05}, {0, 0, 1}, {0.3, 0.4, 0.3}}
	for p, s := range scores {
		copy(tt.F32[p*3:], s)
	}
	mask := FlattenMask(tt)
	want := []int{1, 0, 2, 1}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

func TestDecodeKeypoints(t *testing.T) {
	// 1 keypoint on a 3x3 heatmap; peak at (2,1) with offsets (+3, -2).
	hm := tensor.New(tensor.Float32, tensor.Shape{1, 3, 3, 1})
	hm.F32[(2*3+1)*1] = 5
	off := tensor.New(tensor.Float32, tensor.Shape{1, 3, 3, 2})
	off.F32[(2*3+1)*2] = 3    // y offset
	off.F32[(2*3+1)*2+1] = -2 // x offset
	kps := DecodeKeypoints(hm, off, 16)
	if len(kps) != 1 {
		t.Fatalf("keypoints = %d", len(kps))
	}
	if kps[0].Y != 2*16+3 || kps[0].X != 1*16-2 {
		t.Fatalf("keypoint at (%v,%v)", kps[0].X, kps[0].Y)
	}
	if kps[0].Score <= 0.5 {
		t.Fatalf("positive logit must have score > 0.5: %v", kps[0].Score)
	}
}

func TestIoU(t *testing.T) {
	a := Box{YMin: 0, XMin: 0, YMax: 1, XMax: 1}
	if v := IoU(a, a); math.Abs(v-1) > 1e-12 {
		t.Fatalf("self IoU = %v", v)
	}
	b := Box{YMin: 0, XMin: 0.5, YMax: 1, XMax: 1.5}
	if v := IoU(a, b); math.Abs(v-1.0/3) > 1e-12 {
		t.Fatalf("half-overlap IoU = %v", v)
	}
	c := Box{YMin: 5, XMin: 5, YMax: 6, XMax: 6}
	if IoU(a, c) != 0 {
		t.Fatal("disjoint IoU must be 0")
	}
}

func TestIoUSymmetricProperty(t *testing.T) {
	f := func(y0, x0, y1, x1, y2, x2, y3, x3 float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 10) }
		a := Box{YMin: norm(y0), XMin: norm(x0), YMax: norm(y0) + norm(y1), XMax: norm(x0) + norm(x1)}
		b := Box{YMin: norm(y2), XMin: norm(x2), YMax: norm(y2) + norm(y3), XMax: norm(x2) + norm(x3)}
		u, v := IoU(a, b), IoU(b, a)
		return math.Abs(u-v) < 1e-12 && u >= 0 && u <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultAnchors(t *testing.T) {
	anchors := DefaultAnchors(4)
	if len(anchors) != 4*4*3 {
		t.Fatalf("anchor count = %d, want 48", len(anchors))
	}
	for _, a := range anchors {
		if a.CX < 0 || a.CX > 1 || a.CY < 0 || a.CY > 1 || a.W <= 0 || a.H <= 0 {
			t.Fatalf("bad anchor %+v", a)
		}
	}
}

func TestDecodeBoxes(t *testing.T) {
	anchors := DefaultAnchors(2) // 12 anchors
	n := len(anchors)
	locs := tensor.New(tensor.Float32, tensor.Shape{1, n, 4})
	scores := tensor.New(tensor.Float32, tensor.Shape{1, n, 3})
	// Anchor 0: class 1 at 0.9; anchor 5: class 2 at 0.4; others background.
	scores.F32[0*3+1] = 0.9
	scores.F32[5*3+2] = 0.4
	boxes := DecodeBoxes(locs, scores, anchors, 0.5)
	if len(boxes) != 1 {
		t.Fatalf("boxes = %d, want 1 above threshold", len(boxes))
	}
	if boxes[0].Class != 1 || math.Abs(boxes[0].Score-0.9) > 1e-6 {
		t.Fatalf("box = %+v", boxes[0])
	}
	// Zero regression must recover the anchor itself.
	a := anchors[0]
	if math.Abs((boxes[0].XMax+boxes[0].XMin)/2-a.CX) > 1e-9 {
		t.Fatal("zero regression must center on anchor")
	}
}

func TestNMS(t *testing.T) {
	boxes := []Box{
		{YMin: 0, XMin: 0, YMax: 1, XMax: 1, Class: 1, Score: 0.9},
		{YMin: 0.05, XMin: 0.05, YMax: 1, XMax: 1, Class: 1, Score: 0.8}, // overlaps first
		{YMin: 0, XMin: 2, YMax: 1, XMax: 3, Class: 1, Score: 0.7},       // disjoint
		{YMin: 0.02, XMin: 0.02, YMax: 1, XMax: 1, Class: 2, Score: 0.6}, // other class
	}
	kept := NMS(boxes, 0.5, 10)
	if len(kept) != 3 {
		t.Fatalf("kept = %d, want 3", len(kept))
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.7 || kept[2].Score != 0.6 {
		t.Fatalf("kept wrong: %+v", kept)
	}
	if got := NMS(boxes, 0.5, 1); len(got) != 1 {
		t.Fatalf("maxOut ignored: %d", len(got))
	}
}

func TestWorkEstimatorsPositive(t *testing.T) {
	checks := []struct {
		name string
		ops  int64
	}{
		{"topk", TopKWork(1000, 5).Ops},
		{"dequant", DequantizeWork(1000).Ops},
		{"softmax", SoftmaxWork(2).Ops},
		{"mask", FlattenMaskWork(513, 513, 21).Ops},
		{"keypoint", KeypointWork(9, 9, 17).Ops},
		{"detect", DetectionWork(1917, 91).Ops},
	}
	for _, c := range checks {
		if c.ops <= 0 {
			t.Errorf("%s work must be positive", c.name)
		}
	}
}

func TestDequantize(t *testing.T) {
	q := tensor.NewQuant(tensor.UInt8, tensor.Shape{2}, tensor.QuantParams{Scale: 0.5, ZeroPoint: 10})
	q.U8 = []uint8{10, 20}
	f := Dequantize(q)
	if f.F32[0] != 0 || f.F32[1] != 5 {
		t.Fatalf("dequantize = %v", f.F32)
	}
}

func TestNMSInvariantProperty(t *testing.T) {
	// Property: after NMS, no two kept same-class boxes overlap past the
	// threshold, and scores are non-increasing.
	f := func(raw []float64) bool {
		var boxes []Box
		for i := 0; i+4 < len(raw); i += 5 {
			norm := func(v float64) float64 {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return 0.5
				}
				return math.Mod(math.Abs(v), 1)
			}
			b := Box{
				YMin: norm(raw[i]), XMin: norm(raw[i+1]),
				Class: 1 + int(norm(raw[i+4])*3), Score: norm(raw[i+2]),
			}
			b.YMax = b.YMin + 0.1 + norm(raw[i+3])*0.4
			b.XMax = b.XMin + 0.1 + norm(raw[i])*0.4
			boxes = append(boxes, b)
		}
		const thresh = 0.45
		kept := NMS(boxes, thresh, 0)
		for i := range kept {
			if i > 0 && kept[i].Score > kept[i-1].Score {
				return false
			}
			for j := 0; j < i; j++ {
				if kept[i].Class == kept[j].Class && IoU(kept[i], kept[j]) > thresh {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
