// Package postproc implements the post-processing algorithms of the
// paper's Table I: topK label selection, dequantization of quantized
// outputs, logits/softmax computation, segmentation mask flattening
// (DeepLab), keypoint calculation (PoseNet), and bounding-box decoding
// with non-maximum suppression (SSD). All kernels are real; each has a
// matching Work estimator for the simulator.
package postproc

import (
	"math"
	"slices"
	"sort"

	"aitax/internal/par"
	"aitax/internal/tensor"
	"aitax/internal/work"
)

// Class is a classification result.
type Class struct {
	Index int
	Score float64
}

// TopK returns the k highest-scoring classes from a model output tensor,
// dequantizing on the fly for quantized outputs. The paper notes this is
// effectively an array slice after sorting by likelihood.
func TopK(t *tensor.Tensor, k int) []Class {
	n := t.Elems()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	all := make([]Class, n)
	for i := 0; i < n; i++ {
		all[i] = Class{Index: i, Score: t.At(i)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		return all[a].Index < all[b].Index
	})
	return all[:k]
}

// TopKInto is the allocation-free variant of TopK: it selects the k best
// classes into dst's storage (grown only if cap(dst) < k) with a single
// pass over the tensor. The ordering criterion is the same strict total
// order TopK sorts by — score descending, index ascending on ties — so
// for any input TopKInto(dst, t, k) equals TopK(t, k).
func TopKInto(dst []Class, t *tensor.Tensor, k int) []Class {
	n := t.Elems()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	if cap(dst) < k {
		dst = make([]Class, k)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		s := t.At(i)
		if len(dst) == k && s <= dst[k-1].Score {
			// Not better than the current k-th: with ties broken by the
			// lower index, a later equal score never displaces.
			continue
		}
		// Find the insertion point (score desc, index asc) and shift.
		pos := len(dst)
		for pos > 0 && dst[pos-1].Score < s {
			pos--
		}
		if len(dst) < k {
			dst = dst[:len(dst)+1]
		}
		copy(dst[pos+1:], dst[pos:])
		dst[pos] = Class{Index: i, Score: s}
	}
	return dst
}

// TopKWork reports the demand of topK over n classes.
func TopKWork(n, k int) work.Work {
	if n <= 1 {
		return work.Work{Ops: 1, Bytes: 8}
	}
	logN := int64(math.Log2(float64(n))) + 1
	return work.Work{Ops: int64(n) * logN, Bytes: int64(n) * 16}
}

// Dequantize converts a quantized output tensor to FP32; Table I marks
// this step for all quantized models.
func Dequantize(t *tensor.Tensor) *tensor.Tensor { return tensor.DequantizeTensor(t) }

// DequantizeInto is the scratch-reusing variant of Dequantize (dst may
// be nil; see tensor.DequantizeTensorInto).
func DequantizeInto(dst, t *tensor.Tensor) *tensor.Tensor { return tensor.DequantizeTensorInto(dst, t) }

// DequantizeWork reports the demand of dequantizing n elements.
func DequantizeWork(n int) work.Work {
	return work.Work{Ops: int64(n) * 2, Bytes: int64(n) * 5, Vectorizable: true}
}

// Softmax computes the numerically-stable softmax of logits in place over
// a float64 copy and returns the probabilities (Mobile BERT's
// "compute logits" step).
func Softmax(logits []float64) []float64 {
	if len(logits) == 0 {
		return nil
	}
	maxV := logits[0]
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SoftmaxWork reports the demand of softmax over n logits.
func SoftmaxWork(n int) work.Work {
	return work.Work{Ops: int64(n) * 12, Bytes: int64(n) * 16, Vectorizable: true}
}

// FlattenMask converts a DeepLab-style per-pixel class-score tensor of
// shape [1, H, W, C] into an H*W argmax label mask — the "mask
// flattening" step of Table I.
func FlattenMask(t *tensor.Tensor) []int {
	if len(t.Shape) != 4 {
		panic("postproc: FlattenMask expects NHWC scores")
	}
	h, w := t.Shape[1], t.Shape[2]
	return FlattenMaskInto(make([]int, h*w), t)
}

// FlattenMaskInto is the allocation-free variant of FlattenMask: the
// mask is written into dst's storage (grown only if too small). The
// argmax runs tiled over the pixel range with dtype-specialized inner
// loops (see fastpath.go); the result is identical to the sequential
// At-based scan for every dtype.
func FlattenMaskInto(dst []int, t *tensor.Tensor) []int {
	if len(t.Shape) != 4 {
		panic("postproc: FlattenMask expects NHWC scores")
	}
	h, w, c := t.Shape[1], t.Shape[2], t.Shape[3]
	mask := dst
	if cap(mask) < h*w {
		mask = make([]int, h*w)
	}
	mask = mask[:h*w]
	if c == 0 {
		return mask
	}
	task := maskTaskPool.Get().(*maskTask)
	*task = maskTask{t: t, c: c, mask: mask}
	par.For(h*w, task)
	*task = maskTask{}
	maskTaskPool.Put(task)
	return mask
}

// FlattenMaskWork reports the demand of flattening an H×W×C score map.
func FlattenMaskWork(h, w, c int) work.Work {
	px := int64(h) * int64(w)
	return work.Work{Ops: px * int64(c), Bytes: px * int64(c) * 4, Vectorizable: true}
}

// Keypoint is a detected body keypoint in image coordinates.
type Keypoint struct {
	X, Y  float64
	Score float64
}

// DecodeKeypoints maps PoseNet heatmap and offset tensors back to image
// coordinates — the "calculate keypoints" step of Table I. heatmaps has
// shape [1, H, W, K]; offsets has shape [1, H, W, 2K] with y-offsets in
// channels [0,K) and x-offsets in [K,2K). outputStride is the model's
// spatial stride (PoseNet uses 32 at 224×224 with 7×7 maps... stride =
// inputSize / (H-1) conventionally; callers pass it explicitly).
func DecodeKeypoints(heatmaps, offsets *tensor.Tensor, outputStride int) []Keypoint {
	return DecodeKeypointsInto(nil, heatmaps, offsets, outputStride)
}

// DecodeKeypointsInto is the allocation-free variant of DecodeKeypoints:
// keypoints are written into dst's storage (grown only if too small).
// Each keypoint's heatmap scan is an independent tile (grain 1 — a scan
// covers the whole H×W map, so even 17 keypoints are worth spreading).
func DecodeKeypointsInto(dst []Keypoint, heatmaps, offsets *tensor.Tensor, outputStride int) []Keypoint {
	if len(heatmaps.Shape) != 4 || len(offsets.Shape) != 4 {
		panic("postproc: DecodeKeypoints expects NHWC tensors")
	}
	h, w, k := heatmaps.Shape[1], heatmaps.Shape[2], heatmaps.Shape[3]
	out := dst
	if cap(out) < k {
		out = make([]Keypoint, k)
	}
	out = out[:k]
	task := kpTaskPool.Get().(*kpTask)
	*task = kpTask{heatmaps: heatmaps, offsets: offsets, h: h, w: w, k: k, stride: outputStride, out: out}
	par.ForGrain(k, 1, task)
	*task = kpTask{}
	kpTaskPool.Put(task)
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// KeypointWork reports the demand of decoding K keypoints from H×W maps.
func KeypointWork(h, w, k int) work.Work {
	cells := int64(h) * int64(w) * int64(k)
	return work.Work{Ops: cells * 2, Bytes: cells * 4}
}

// Box is an axis-aligned detection box with a class and score.
type Box struct {
	YMin, XMin, YMax, XMax float64
	Class                  int
	Score                  float64
}

// Area returns the box area (0 for degenerate boxes).
func (b Box) Area() float64 {
	w := b.XMax - b.XMin
	h := b.YMax - b.YMin
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// IoU returns the intersection-over-union of two boxes.
func IoU(a, b Box) float64 {
	ix := math.Min(a.XMax, b.XMax) - math.Max(a.XMin, b.XMin)
	iy := math.Min(a.YMax, b.YMax) - math.Max(a.YMin, b.YMin)
	if ix <= 0 || iy <= 0 {
		return 0
	}
	inter := ix * iy
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// Anchor is an SSD prior box (center form).
type Anchor struct{ CY, CX, H, W float64 }

// DefaultAnchors generates a deterministic single-scale anchor grid, a
// simplified SSD prior set: gridSize×gridSize cells with aspect ratios
// 1:1, 2:1 and 1:2.
func DefaultAnchors(gridSize int) []Anchor {
	var out []Anchor
	scale := 1.0 / float64(gridSize)
	ratios := []float64{1, 2, 0.5}
	for y := 0; y < gridSize; y++ {
		for x := 0; x < gridSize; x++ {
			cy := (float64(y) + 0.5) * scale
			cx := (float64(x) + 0.5) * scale
			for _, r := range ratios {
				out = append(out, Anchor{CY: cy, CX: cx, H: scale * 1.5 / math.Sqrt(r), W: scale * 1.5 * math.Sqrt(r)})
			}
		}
	}
	return out
}

// DecodeBoxes converts SSD box regressions (ty, tx, th, tw per anchor)
// and per-anchor class scores into detection boxes, keeping the best
// class per anchor when its score passes threshold. locs has shape
// [1, N, 4] and scores [1, N, C] with C including a background class 0.
func DecodeBoxes(locs, scores *tensor.Tensor, anchors []Anchor, threshold float64) []Box {
	return DecodeBoxesInto(nil, locs, scores, anchors, threshold)
}

// DecodeBoxesInto is the scratch-reusing variant of DecodeBoxes:
// detections are appended into dst[:0], so a caller that passes back the
// returned slice each frame stops allocating once its capacity covers
// the detection count.
func DecodeBoxesInto(dst []Box, locs, scores *tensor.Tensor, anchors []Anchor, threshold float64) []Box {
	if len(locs.Shape) != 3 || len(scores.Shape) != 3 {
		panic("postproc: DecodeBoxes expects [1,N,4] and [1,N,C]")
	}
	n, c := scores.Shape[1], scores.Shape[2]
	if locs.Shape[1] != n || locs.Shape[2] != 4 || n > len(anchors) {
		panic("postproc: box/score/anchor shape mismatch")
	}
	const scaleXY, scaleHW = 10.0, 5.0
	out := dst[:0]
	// Phase 1 — the O(N·C) score filter runs tiled over the anchors,
	// writing each anchor's best class/score into pooled scratch.
	sc := ssdScratchPool.Get().(*ssdScratch)
	sc.bestC = growInt32(sc.bestC, n)
	sc.bestS = growFloat64(sc.bestS, n)
	task := boxScanTaskPool.Get().(*boxScanTask)
	*task = boxScanTask{scores: scores, c: c, bestC: sc.bestC, bestS: sc.bestS}
	par.For(n, task)
	*task = boxScanTask{}
	boxScanTaskPool.Put(task)
	// Phase 2 — the cheap decode of the few surviving anchors stays
	// sequential so detections append in anchor order, as before.
	for i := 0; i < n; i++ {
		bestC, bestS := int(sc.bestC[i]), sc.bestS[i]
		if bestC == 0 || bestS < threshold {
			continue
		}
		a := anchors[i]
		ty, tx := locs.At(i*4), locs.At(i*4+1)
		th, tw := locs.At(i*4+2), locs.At(i*4+3)
		cy := ty/scaleXY*a.H + a.CY
		cx := tx/scaleXY*a.W + a.CX
		hh := math.Exp(th/scaleHW) * a.H
		ww := math.Exp(tw/scaleHW) * a.W
		out = append(out, Box{
			YMin: cy - hh/2, XMin: cx - ww/2,
			YMax: cy + hh/2, XMax: cx + ww/2,
			Class: bestC, Score: bestS,
		})
	}
	ssdScratchPool.Put(sc)
	return out
}

// NMS performs class-aware greedy non-maximum suppression, keeping at
// most maxOut boxes whose pairwise same-class IoU is below iouThresh.
func NMS(boxes []Box, iouThresh float64, maxOut int) []Box {
	sorted := append([]Box(nil), boxes...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Score > sorted[b].Score })
	var kept []Box
	return nmsSorted(kept, sorted, iouThresh, maxOut)
}

// NMSInto is the allocation-free variant of NMS: the candidate copy goes
// into scratch's storage (grown in place so the caller keeps it) and the
// survivors into dst's. Score ties are ordered deterministically by
// descending score with the original slice order preserved (stable),
// which may differ from NMS's unstable sort on exact ties.
func NMSInto(dst []Box, scratch *[]Box, boxes []Box, iouThresh float64, maxOut int) []Box {
	*scratch = append((*scratch)[:0], boxes...)
	sorted := *scratch
	slices.SortStableFunc(sorted, func(a, b Box) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		default:
			return 0
		}
	})
	return nmsSorted(dst[:0], sorted, iouThresh, maxOut)
}

// nmsSorted runs the greedy suppression loop over score-sorted
// candidates, appending survivors to kept.
func nmsSorted(kept, sorted []Box, iouThresh float64, maxOut int) []Box {
	for _, b := range sorted {
		if maxOut > 0 && len(kept) >= maxOut {
			break
		}
		ok := true
		for _, k := range kept {
			if k.Class == b.Class && IoU(k, b) > iouThresh {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, b)
		}
	}
	return kept
}

// DetectionWork reports the demand of decoding n anchors with c classes
// plus NMS.
func DetectionWork(n, c int) work.Work {
	return work.Work{
		Ops:   int64(n)*int64(c) + int64(n)*40,
		Bytes: int64(n) * int64(c+16) * 4,
	}
}
