// Package stats provides the descriptive statistics used throughout the
// AI-tax experiments: summaries with percentiles, coefficients of
// variation, histograms, and simple text rendering for distribution
// figures (paper Fig. 11).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns an empty sample.
func NewSample() *Sample { return &Sample{} }

// FromDurations builds a sample from durations, in milliseconds.
func FromDurations(ds []time.Duration) *Sample {
	s := NewSample()
	for _, d := range ds {
		s.Add(float64(d) / float64(time.Millisecond))
	}
	return s
}

// FromFloats builds a sample from raw values.
func FromFloats(xs []float64) *Sample {
	s := NewSample()
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations in insertion order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Variance returns the population variance.
func (s *Sample) Variance() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	acc := 0.0
	for _, x := range s.xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(n)
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CV returns the coefficient of variation (stddev/mean), or 0 when the
// mean is 0.
func (s *Sample) CV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / m
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Percentile returns the p-th percentile (0..100) by linear interpolation.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// IQR returns the interquartile range.
func (s *Sample) IQR() float64 { return s.Percentile(75) - s.Percentile(25) }

// MaxDeviationFromMedian returns the largest relative deviation of any
// observation from the median, as a fraction of the median (the paper
// reports "as much as 30% from the median").
func (s *Sample) MaxDeviationFromMedian() float64 {
	med := s.Median()
	if med == 0 {
		return 0
	}
	worst := 0.0
	for _, x := range s.xs {
		d := math.Abs(x-med) / med
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Summary is a snapshot of a sample's descriptive statistics.
type Summary struct {
	N                  int
	Mean, StdDev, CV   float64
	Min, P25, Median   float64
	P75, P90, P99, Max float64
	MaxDevFromMedian   float64
}

// Summarize computes a Summary.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:                s.N(),
		Mean:             s.Mean(),
		StdDev:           s.StdDev(),
		CV:               s.CV(),
		Min:              s.Min(),
		P25:              s.Percentile(25),
		Median:           s.Median(),
		P75:              s.Percentile(75),
		P90:              s.Percentile(90),
		P99:              s.Percentile(99),
		Max:              s.Max(),
		MaxDevFromMedian: s.MaxDeviationFromMedian(),
	}
}

// String renders the summary on one line.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f cv=%.1f%% min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f maxdev=%.1f%%",
		sm.N, sm.Mean, sm.StdDev, sm.CV*100, sm.Min, sm.Median, sm.P90, sm.P99, sm.Max, sm.MaxDevFromMedian*100)
}

// Histogram bins observations into equal-width buckets.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Total   int
	Under   int
	Over    int
	binSize float64
}

// NewHistogram creates a histogram over [lo, hi) with bins buckets.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), binSize: (hi - lo) / float64(bins)}
}

// Add bins one observation.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binSize)
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// HistogramOf bins all of a sample's observations between its min and max.
func HistogramOf(s *Sample, bins int) *Histogram {
	lo, hi := s.Min(), s.Max()
	if hi <= lo {
		hi = lo + 1
	}
	h := NewHistogram(lo, hi*1.0000001, bins)
	for _, x := range s.Values() {
		h.Add(x)
	}
	return h
}

// Render draws the histogram as ASCII rows, one row per bin, with bars
// scaled to width characters.
func (h *Histogram) Render(width int) string {
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		peak = 1
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*h.binSize
		bar := strings.Repeat("#", c*width/peak)
		fmt.Fprintf(&b, "%10.2f | %-*s %d\n", lo, width, bar, c)
	}
	return b.String()
}

// GeoMean returns the geometric mean of positive values; zero or negative
// inputs are skipped.
func GeoMean(xs []float64) float64 {
	acc, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			acc += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(acc / float64(n))
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// MeanDuration returns the arithmetic mean of durations.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// LinFit is a least-squares line fit y = Slope*x + Intercept with its
// coefficient of determination.
type LinFit struct {
	Slope, Intercept, R2 float64
}

// LinReg fits a straight line to (x, y) pairs. It panics on mismatched
// lengths; fewer than two points yield a zero fit.
func LinReg(xs, ys []float64) LinFit {
	if len(xs) != len(ys) {
		panic("stats: LinReg length mismatch")
	}
	n := float64(len(xs))
	if n < 2 {
		return LinFit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinFit{Intercept: sy / n, R2: 1}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R^2 = 1 - SSres/SStot.
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		d := ys[i] - (slope*xs[i] + intercept)
		ssRes += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinFit{Slope: slope, Intercept: intercept, R2: r2}
}
