package stats

import "fmt"

// RegAccum is a streaming, exactly-mergeable least-squares accumulator.
// Observations are quantized onto fixed-point grids and accumulated as
// int64 sums, so addition is associative: any sharding of the input —
// merged in any grouping — yields bit-identical sums and therefore a
// bit-identical fit. This is the regression counterpart of the
// fixed-bucket histogram: flat memory (six words), exact merges.
//
// Grid resolution bounds the usable range: with XScale=1e4 and
// YScale=1e2 (the fleet runner's choice for perf multipliers ≤ ~4 and
// percent shares ≤ 100), the Σx²·scale² terms stay far below int64
// overflow out past 10⁸ observations. Choose scales so that
// |x·XScale| and |y·YScale| stay under ~10⁵.
type RegAccum struct {
	xScale, yScale float64
	n              int64
	sx, sy         int64
	sxx, sxy, syy  int64
}

// NewRegAccum returns an accumulator quantizing x and y onto 1/xScale
// and 1/yScale grids. Scales must be positive.
func NewRegAccum(xScale, yScale float64) *RegAccum {
	if xScale <= 0 || yScale <= 0 {
		panic(fmt.Sprintf("stats: RegAccum scales must be positive (%g, %g)", xScale, yScale))
	}
	return &RegAccum{xScale: xScale, yScale: yScale}
}

// quantize rounds v onto the grid (half away from zero).
func quantize(v, scale float64) int64 {
	s := v * scale
	if s >= 0 {
		return int64(s + 0.5)
	}
	return int64(s - 0.5)
}

// Add records one (x, y) observation.
func (r *RegAccum) Add(x, y float64) {
	qx, qy := quantize(x, r.xScale), quantize(y, r.yScale)
	r.n++
	r.sx += qx
	r.sy += qy
	r.sxx += qx * qx
	r.sxy += qx * qy
	r.syy += qy * qy
}

// N returns the observation count.
func (r *RegAccum) N() int64 { return r.n }

// Merge folds other into r. Both accumulators must share grids.
func (r *RegAccum) Merge(other *RegAccum) {
	if other == nil || other.n == 0 {
		return
	}
	if r.xScale != other.xScale || r.yScale != other.yScale {
		panic("stats: merging RegAccums with different grids")
	}
	r.n += other.n
	r.sx += other.sx
	r.sy += other.sy
	r.sxx += other.sxx
	r.sxy += other.sxy
	r.syy += other.syy
}

// Reset empties the accumulator, keeping its grids.
func (r *RegAccum) Reset() {
	r.n, r.sx, r.sy, r.sxx, r.sxy, r.syy = 0, 0, 0, 0, 0, 0
}

// Fit solves the least-squares line over the accumulated (quantized)
// observations — the same closed form as LinReg, evaluated from the
// integer sums. Fewer than two observations yield a zero fit.
func (r *RegAccum) Fit() LinFit {
	n := float64(r.n)
	if r.n < 2 {
		return LinFit{}
	}
	sx := float64(r.sx) / r.xScale
	sy := float64(r.sy) / r.yScale
	sxx := float64(r.sxx) / (r.xScale * r.xScale)
	sxy := float64(r.sxy) / (r.xScale * r.yScale)
	syy := float64(r.syy) / (r.yScale * r.yScale)
	den := n*sxx - sx*sx
	if den == 0 {
		return LinFit{Intercept: sy / n, R2: 1}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² from the sufficient statistics:
	// SSres = Σy² - 2aΣxy - 2bΣy + a²Σx² + 2abΣx + nb².
	ssTot := syy - sy*sy/n
	ssRes := syy - 2*slope*sxy - 2*intercept*sy + slope*slope*sxx + 2*slope*intercept*sx + n*intercept*intercept
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
		if r2 < 0 {
			r2 = 0
		}
	}
	return LinFit{Slope: slope, Intercept: intercept, R2: r2}
}
