package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	s := FromFloats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if !almost(s.StdDev(), 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2", s.StdDev())
	}
	if !almost(s.CV(), 0.4, 1e-12) {
		t.Fatalf("cv = %v, want 0.4", s.CV())
	}
}

func TestEmptySampleIsZero(t *testing.T) {
	s := NewSample()
	if s.Mean() != 0 || s.StdDev() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample statistics must all be zero")
	}
	if s.Summarize().N != 0 {
		t.Fatal("empty summary N must be zero")
	}
}

func TestPercentiles(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if !almost(s.Median(), 50.5, 1e-9) {
		t.Fatalf("median = %v, want 50.5", s.Median())
	}
	if s.Percentile(0) != 1 || s.Percentile(100) != 100 {
		t.Fatalf("extreme percentiles wrong: %v %v", s.Percentile(0), s.Percentile(100))
	}
	if p := s.Percentile(25); !almost(p, 25.75, 1e-9) {
		t.Fatalf("p25 = %v, want 25.75", p)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		s := NewSample()
		any := false
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				s.Add(x)
				any = true
			}
		}
		if !any {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxBound(t *testing.T) {
	f := func(raw []float64) bool {
		s := NewSample()
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e12 {
				s.Add(x)
			}
		}
		if s.N() == 0 {
			return true
		}
		mean := s.Mean()
		return s.Min() <= mean+1e-9 && mean <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDeviationFromMedian(t *testing.T) {
	s := FromFloats([]float64{10, 10, 10, 13})
	// median 10, worst |13-10|/10 = 0.3
	if !almost(s.MaxDeviationFromMedian(), 0.3, 1e-9) {
		t.Fatalf("maxdev = %v, want 0.3", s.MaxDeviationFromMedian())
	}
}

func TestFromDurations(t *testing.T) {
	s := FromDurations([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond})
	if !almost(s.Mean(), 15, 1e-9) {
		t.Fatalf("mean = %v ms, want 15", s.Mean())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.9, -1, 10, 11} {
		h.Add(x)
	}
	if h.Total != 8 {
		t.Fatalf("total = %d, want 8", h.Total)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 5 {
		t.Fatalf("binned = %d, want 5", sum)
	}
	if h.Counts[0] != 2 { // 0 and 1
		t.Fatalf("bin0 = %d, want 2", h.Counts[0])
	}
}

func TestHistogramOfCoversAll(t *testing.T) {
	s := FromFloats([]float64{1, 2, 3, 4, 5})
	h := HistogramOf(s, 4)
	sum := h.Under + h.Over
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 5 || h.Under != 0 || h.Over != 0 {
		t.Fatalf("histogram lost observations: under=%d over=%d", h.Under, h.Over)
	}
	if h.Render(20) == "" {
		t.Fatal("render must produce output")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !almost(g, 10, 1e-9) {
		t.Fatalf("geomean = %v, want 10", g)
	}
	if g := GeoMean([]float64{0, -5}); g != 0 {
		t.Fatalf("geomean of non-positive = %v, want 0", g)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Fatal("ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("ratio by zero must be 0")
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Fatal("empty mean duration must be 0")
	}
	ds := []time.Duration{time.Millisecond, 3 * time.Millisecond}
	if MeanDuration(ds) != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", MeanDuration(ds))
	}
}

func TestSummaryString(t *testing.T) {
	s := FromFloats([]float64{1, 2, 3})
	if s.Summarize().String() == "" {
		t.Fatal("summary string empty")
	}
}

func TestIQR(t *testing.T) {
	s := NewSample()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if iqr := s.IQR(); !almost(iqr, 49.5, 1e-9) {
		t.Fatalf("iqr = %v, want 49.5", iqr)
	}
}

func TestLinRegPerfectLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	f := LinReg(xs, ys)
	if !almost(f.Slope, 2, 1e-9) || !almost(f.Intercept, 1, 1e-9) || !almost(f.R2, 1, 1e-9) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinRegNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1.2, 1.8, 3.1}
	f := LinReg(xs, ys)
	if f.Slope < 0.8 || f.Slope > 1.2 {
		t.Fatalf("slope = %v", f.Slope)
	}
	if f.R2 < 0.9 {
		t.Fatalf("r2 = %v", f.R2)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	if f := LinReg(nil, nil); f.Slope != 0 {
		t.Fatal("empty fit must be zero")
	}
	// Vertical data (all same x) must not divide by zero.
	f := LinReg([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 {
		t.Fatalf("vertical fit slope = %v", f.Slope)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	LinReg([]float64{1}, []float64{1, 2})
}
