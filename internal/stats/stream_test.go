package stats

import (
	"math"
	"testing"
)

// TestRegAccumMatchesLinReg: on grid-aligned inputs the streaming fit
// equals the retained-sample fit exactly.
func TestRegAccumMatchesLinReg(t *testing.T) {
	xs := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	ys := []float64{10, 14, 17, 22, 26, 29}
	acc := NewRegAccum(1e4, 1e2)
	for i := range xs {
		acc.Add(xs[i], ys[i])
	}
	want := LinReg(xs, ys)
	got := acc.Fit()
	if math.Abs(got.Slope-want.Slope) > 1e-9 || math.Abs(got.Intercept-want.Intercept) > 1e-9 {
		t.Fatalf("fit %+v, want %+v", got, want)
	}
	if math.Abs(got.R2-want.R2) > 1e-9 {
		t.Fatalf("r2 %g, want %g", got.R2, want.R2)
	}
	if acc.N() != 6 {
		t.Fatalf("n %d", acc.N())
	}
}

// TestRegAccumMergeAssociative: any shard grouping of the same stream
// yields bit-identical sums and fits — the property the fleet runner's
// byte-identical-at-any-shard-count report rests on.
func TestRegAccumMergeAssociative(t *testing.T) {
	const n = 1000
	xy := func(i int) (float64, float64) {
		x := 0.25 + float64(i%17)*0.13
		y := 5 + 20*x + float64(i%7) // deterministic scatter
		return x, y
	}
	whole := NewRegAccum(1e4, 1e2)
	for i := 0; i < n; i++ {
		whole.Add(xy(i))
	}
	for _, shards := range []int{2, 3, 7, 64, n} {
		merged := NewRegAccum(1e4, 1e2)
		for s := 0; s < shards; s++ {
			part := NewRegAccum(1e4, 1e2)
			lo, hi := s*n/shards, (s+1)*n/shards
			for i := lo; i < hi; i++ {
				part.Add(xy(i))
			}
			merged.Merge(part)
		}
		if *merged != *whole {
			t.Fatalf("%d-shard merge diverged: %+v vs %+v", shards, merged, whole)
		}
		got, want := merged.Fit(), whole.Fit()
		if got != want {
			t.Fatalf("%d-shard fit %+v, want %+v", shards, got, want)
		}
	}
}

// TestRegAccumEmptyAndDegenerate covers the guard rails.
func TestRegAccumEmptyAndDegenerate(t *testing.T) {
	acc := NewRegAccum(1e4, 1e2)
	if f := acc.Fit(); f != (LinFit{}) {
		t.Fatalf("empty fit %+v", f)
	}
	acc.Add(1, 2)
	if f := acc.Fit(); f != (LinFit{}) {
		t.Fatalf("single-point fit %+v", f)
	}
	// All x equal: vertical line degenerates to the mean intercept.
	acc.Reset()
	acc.Add(1, 2)
	acc.Add(1, 4)
	f := acc.Fit()
	if f.Slope != 0 || math.Abs(f.Intercept-3) > 1e-9 {
		t.Fatalf("degenerate fit %+v, want intercept 3", f)
	}
	// Merging an empty or nil accumulator is a no-op.
	before := *acc
	acc.Merge(NewRegAccum(1e4, 1e2))
	acc.Merge(nil)
	if *acc != before {
		t.Fatal("empty merge changed state")
	}
}

// TestRegAccumPanics pins the misuse paths.
func TestRegAccumPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad scale", func() { NewRegAccum(0, 1) })
	mustPanic("grid mismatch", func() {
		a, b := NewRegAccum(1e4, 1e2), NewRegAccum(1e2, 1e2)
		b.Add(1, 1)
		a.Merge(b)
	})
}

// TestRegAccumNegativeValues: quantization rounds half away from zero
// symmetrically.
func TestRegAccumNegativeValues(t *testing.T) {
	acc := NewRegAccum(10, 10)
	acc.Add(-1.25, -1.25)
	acc.Add(1.25, 1.25)
	if acc.sx != 0 || acc.sy != 0 {
		t.Fatalf("asymmetric rounding: sx=%d sy=%d", acc.sx, acc.sy)
	}
}
