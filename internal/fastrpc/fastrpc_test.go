package fastrpc

import (
	"testing"
	"time"

	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
)

func newChannel() (*sim.Engine, *Channel) {
	eng := sim.NewEngine()
	dsp := sim.NewResource(eng, "dsp", 1)
	return eng, NewChannel(eng, soc.Pixel3().RPC, dsp)
}

func TestColdStartPaysSetup(t *testing.T) {
	eng, c := newChannel()
	var b Breakdown
	c.Invoke(1<<20, 5*time.Millisecond, func(bd Breakdown) { b = bd })
	eng.Run()
	if b.Setup == 0 {
		t.Fatal("first call must pay session setup")
	}
	if b.Setup != c.SetupCost() {
		t.Fatalf("setup share = %v, want %v", b.Setup, c.SetupCost())
	}
	if !c.Ready() {
		t.Fatal("channel must be warm after first call")
	}
}

func TestWarmCallsSkipSetup(t *testing.T) {
	eng, c := newChannel()
	var first, second Breakdown
	c.Invoke(1<<20, 5*time.Millisecond, func(bd Breakdown) {
		first = bd
		c.Invoke(1<<20, 5*time.Millisecond, func(bd2 Breakdown) { second = bd2 })
	})
	eng.Run()
	if second.Setup != 0 {
		t.Fatalf("warm call paid setup %v", second.Setup)
	}
	if second.Total() >= first.Total() {
		t.Fatal("warm call must be cheaper than cold call")
	}
	if c.Calls() != 2 {
		t.Fatalf("calls = %d, want 2", c.Calls())
	}
}

func TestOffloadAmortization(t *testing.T) {
	// Fig. 8: the offload share of total time shrinks as the number of
	// consecutive inferences grows.
	share := func(n int) float64 {
		eng, c := newChannel()
		var overhead, exec time.Duration
		var run func(i int)
		run = func(i int) {
			if i >= n {
				return
			}
			c.Invoke(150*1024, 8*time.Millisecond, func(b Breakdown) {
				overhead += b.Setup + b.Transport
				exec += b.Exec
				run(i + 1)
			})
		}
		run(0)
		eng.Run()
		return float64(overhead) / float64(overhead+exec)
	}
	s1, s10, s100 := share(1), share(10), share(100)
	if !(s1 > s10 && s10 > s100) {
		t.Fatalf("offload share must shrink: %v %v %v", s1, s10, s100)
	}
	if s1 < 0.5 {
		t.Fatalf("single-call offload share = %v, want setup-dominated (>0.5)", s1)
	}
	if s100 > 0.15 {
		t.Fatalf("100-call offload share = %v, want amortized (<0.15)", s100)
	}
}

func TestConcurrentColdCallsSetupOnce(t *testing.T) {
	eng, c := newChannel()
	setups := 0
	for i := 0; i < 3; i++ {
		c.Invoke(1024, time.Millisecond, func(b Breakdown) {
			if b.Setup > 0 {
				setups++
			}
		})
	}
	eng.Run()
	// All three waited on the same setup; each reports its own wait but
	// the channel performed one establishment.
	if c.Calls() != 3 {
		t.Fatalf("calls = %d", c.Calls())
	}
	if setups != 3 {
		t.Fatalf("setup-affected calls = %d, want 3 (all waited)", setups)
	}
}

func TestQueueingUnderContention(t *testing.T) {
	// Two channels sharing one DSP: the second's calls see queue time.
	eng := sim.NewEngine()
	dsp := sim.NewResource(eng, "dsp", 1)
	p := soc.Pixel3().RPC
	a := NewChannel(eng, p, dsp)
	b := NewChannel(eng, p, dsp)
	var queued time.Duration
	a.Invoke(1024, 50*time.Millisecond, nil)
	b.Invoke(1024, 50*time.Millisecond, func(bd Breakdown) { queued = bd.Queue })
	eng.Run()
	if queued == 0 {
		t.Fatal("contended call must report queue time")
	}
}

func TestPayloadScalesTransport(t *testing.T) {
	eng, c := newChannel()
	var small, large Breakdown
	c.Invoke(1024, time.Millisecond, func(b Breakdown) {
		small = b
		c.Invoke(32<<20, time.Millisecond, func(b2 Breakdown) { large = b2 })
	})
	eng.Run()
	if large.Transport <= small.Transport {
		t.Fatal("bigger payloads must pay more cache maintenance")
	}
}

func TestCallStages(t *testing.T) {
	_, c := newChannel()
	stages := c.CallStages(1 << 20)
	if len(stages) != 6 {
		t.Fatalf("stages = %d, want 6", len(stages))
	}
	var total time.Duration
	for _, s := range stages {
		if s.Name == "" {
			t.Fatal("stage missing name")
		}
		total += s.Duration
	}
	if total <= 0 {
		t.Fatal("stage durations must be positive")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Setup: 1, Transport: 2, Queue: 3, Exec: 4}
	if b.Total() != 10 {
		t.Fatalf("total = %v", b.Total())
	}
}

func TestInvokeSpanRecordsFlowLinkedSpans(t *testing.T) {
	eng := sim.NewEngine()
	dsp := sim.NewResource(eng, "dsp", 1)
	ch := NewChannel(eng, soc.Pixel3().RPC, dsp)
	ch.Tracer = telemetry.NewTracer(eng.Now)
	ch.Metrics = telemetry.NewRegistry()

	var bd Breakdown
	ch.InvokeSpan(64*1024, 5*time.Millisecond, nil, "infer", func(b Breakdown) { bd = b })
	eng.Run()

	spans := ch.Tracer.Spans()
	byName := map[string]telemetry.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	setup, ok := byName["rpc-setup"]
	if !ok || setup.Duration() != bd.Setup {
		t.Fatalf("rpc-setup span = %+v, want duration %v", setup, bd.Setup)
	}
	down, ok := byName["rpc-down"]
	if !ok || down.Track != telemetry.TrackCPU {
		t.Fatalf("rpc-down span = %+v", down)
	}
	exec, ok := byName["infer"]
	if !ok || exec.Track != telemetry.TrackDSP || exec.Duration() != bd.Exec {
		t.Fatalf("infer span = %+v, want exec %v", exec, bd.Exec)
	}
	up, ok := byName["rpc-up"]
	if !ok || up.Track != telemetry.TrackCPU {
		t.Fatalf("rpc-up span = %+v", up)
	}
	if got := down.Duration() + up.Duration(); got != bd.Transport {
		t.Fatalf("down+up = %v, breakdown transport = %v", got, bd.Transport)
	}
	flows := ch.Tracer.Flows()
	if len(flows) != 2 {
		t.Fatalf("flows = %d, want 2 (down→exec, exec→up)", len(flows))
	}
	if flows[0].From != down.ID || flows[0].To != exec.ID {
		t.Fatalf("first flow = %+v", flows[0])
	}
	if flows[1].From != exec.ID || flows[1].To != up.ID {
		t.Fatalf("second flow = %+v", flows[1])
	}
	if ch.Metrics.Counter("aitax_fastrpc_calls_total") != 1 {
		t.Fatal("call counter not incremented")
	}
	if ch.Metrics.Count("aitax_fastrpc_exec_ms") != 1 {
		t.Fatal("exec histogram not observed")
	}
}

func TestInvokeWithoutTelemetryUnchanged(t *testing.T) {
	run := func(traced bool) (sim.Time, Breakdown) {
		eng := sim.NewEngine()
		dsp := sim.NewResource(eng, "dsp", 1)
		ch := NewChannel(eng, soc.Pixel3().RPC, dsp)
		if traced {
			ch.Tracer = telemetry.NewTracer(eng.Now)
			ch.Metrics = telemetry.NewRegistry()
		}
		var bd Breakdown
		ch.Invoke(128*1024, 3*time.Millisecond, func(b Breakdown) { bd = b })
		eng.Run()
		return eng.Now(), bd
	}
	plainEnd, plainBD := run(false)
	tracedEnd, tracedBD := run(true)
	if plainEnd != tracedEnd || plainBD != tracedBD {
		t.Fatalf("tracing perturbed the run: %v/%v vs %v/%v", plainEnd, plainBD, tracedEnd, tracedBD)
	}
}
