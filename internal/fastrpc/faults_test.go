package fastrpc

import (
	"errors"
	"testing"
	"time"

	"aitax/internal/faults"
	"aitax/internal/sim"
	"aitax/internal/soc"
	"aitax/internal/telemetry"
)

func newFaultyChannel(t *testing.T, plan faults.Plan) (*sim.Engine, *Channel) {
	t.Helper()
	eng, c := newChannel()
	inj, err := faults.New(plan.Resolved(1))
	if err != nil {
		t.Fatalf("faults.New: %v", err)
	}
	c.Faults = inj
	return eng, c
}

// attemptCosts returns the per-attempt failure costs for a payload on
// this channel: transport-error cost and the outbound leg, computed the
// same way the channel computes them.
func attemptCosts(c *Channel, payloadBytes int64) (transportFail, outbound time.Duration) {
	kb := (payloadBytes + 1023) / 1024
	flush := time.Duration(kb) * c.params.CacheFlushPerKB
	outbound = 2*c.params.KernelCrossing + flush + c.params.DSPWakeup
	return outbound + c.params.KernelCrossing, outbound
}

// Satellite: table test proving retried calls add exactly the expected
// virtual-time backoff to Breakdown.Total(). Every attempt fails
// deterministically (rate 1), so the expected retry time is a closed
// form: attempts × per-attempt cost + the geometric backoff series.
func TestRetryBackoffExactAccounting(t *testing.T) {
	const payload = 64 * 1024
	cases := []struct {
		name     string
		plan     faults.Plan
		wantSite faults.Site
		// perAttempt returns the cost of one failed attempt.
		perAttempt func(c *Channel) time.Duration
	}{
		{
			name:     "transport error, no retry",
			plan:     faults.Plan{RPCErrorRate: 1, MaxAttempts: 1, Backoff: 2 * time.Millisecond, BackoffFactor: 2},
			wantSite: faults.SiteRPCTransport,
			perAttempt: func(c *Channel) time.Duration {
				cost, _ := attemptCosts(c, payload)
				return cost
			},
		},
		{
			name:     "transport error, three attempts",
			plan:     faults.Plan{RPCErrorRate: 1, MaxAttempts: 3, Backoff: 2 * time.Millisecond, BackoffFactor: 2},
			wantSite: faults.SiteRPCTransport,
			perAttempt: func(c *Channel) time.Duration {
				cost, _ := attemptCosts(c, payload)
				return cost
			},
		},
		{
			name:     "timeout burns the deadline, four attempts",
			plan:     faults.Plan{RPCTimeoutRate: 1, Deadline: 40 * time.Millisecond, MaxAttempts: 4, Backoff: 3 * time.Millisecond, BackoffFactor: 1.5},
			wantSite: faults.SiteRPCTimeout,
			perAttempt: func(c *Channel) time.Duration {
				return 40 * time.Millisecond
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, c := newFaultyChannel(t, tc.plan)
			var b Breakdown
			done := false
			c.Invoke(payload, 5*time.Millisecond, func(bd Breakdown) { b = bd; done = true })
			eng.Run()
			if !done {
				t.Fatal("onDone never ran")
			}
			if b.Err == nil {
				t.Fatal("rate-1 fault plan must fail the call")
			}
			var fe *faults.Error
			if !errors.As(b.Err, &fe) || fe.Site != tc.wantSite {
				t.Fatalf("Err = %v, want site %v", b.Err, tc.wantSite)
			}
			k := tc.plan.MaxAttempts
			if b.Attempts != k {
				t.Fatalf("attempts = %d, want %d", b.Attempts, k)
			}
			wantRetry := time.Duration(k) * tc.perAttempt(c)
			for i := 1; i < k; i++ {
				wantRetry += c.Faults.BackoffFor(i)
			}
			if b.Retry != wantRetry {
				t.Fatalf("Retry = %v, want exactly %v", b.Retry, wantRetry)
			}
			if b.Setup != c.SetupCost() {
				t.Fatalf("Setup = %v, want %v", b.Setup, c.SetupCost())
			}
			if b.Total() != b.Setup+wantRetry {
				t.Fatalf("Total = %v, want setup+retry = %v", b.Total(), b.Setup+wantRetry)
			}
			if b.Transport != 0 || b.Exec != 0 || b.Queue != 0 {
				t.Fatalf("failed call leaked success time: %+v", b)
			}
			if c.FailedCalls() != 1 || c.RetryTotal() != wantRetry {
				t.Fatalf("channel accounting: failed=%d retry=%v", c.FailedCalls(), c.RetryTotal())
			}
		})
	}
}

// A mirror injector with the same plan predicts the channel's fault
// draws exactly, so a mixed success/failure run can be checked against
// a closed-form expectation too.
func TestRetryThenSuccessMatchesMirrorPrediction(t *testing.T) {
	const payload = 32 * 1024
	plan := faults.Plan{RPCErrorRate: 0.6, MaxAttempts: 8, Backoff: 2 * time.Millisecond, BackoffFactor: 2}
	// Pick a seed whose draw sequence fails at least once and then
	// succeeds within the attempt budget.
	for s := uint64(1); s < 2000; s++ {
		p := plan
		p.Seed = s
		probe, _ := faults.New(p)
		probe.SessionSetup() // the cold channel draws setup first
		first := probe.RPCAttempt(0).Kind
		second := probe.RPCAttempt(0).Kind
		if first != faults.RPCNone && second == faults.RPCNone {
			plan.Seed = s
			break
		}
	}
	if plan.Seed == 0 {
		t.Fatal("no suitable seed found")
	}
	eng, c := newFaultyChannel(t, plan)

	mirror, err := faults.New(plan.Resolved(1))
	if err != nil {
		t.Fatal(err)
	}
	if mirror.SessionSetup() != nil { // mimic the channel's setup draw
		t.Fatal("mirror setup draw failed unexpectedly")
	}
	failCost, _ := attemptCosts(c, payload)
	var wantRetry time.Duration
	wantAttempts := 0
	for a := 1; a <= mirror.MaxAttempts(); a++ {
		wantAttempts = a
		if mirror.RPCAttempt(0).Kind == faults.RPCNone {
			break
		}
		wantRetry += failCost + mirror.BackoffFor(a)
	}
	if wantAttempts == 1 || wantAttempts == mirror.MaxAttempts() {
		t.Fatalf("seed gives attempts=%d; pick a seed that fails some then succeeds", wantAttempts)
	}

	var b Breakdown
	c.Invoke(payload, 5*time.Millisecond, func(bd Breakdown) { b = bd })
	eng.Run()
	if b.Err != nil {
		t.Fatalf("call failed: %v", b.Err)
	}
	if b.Attempts != wantAttempts {
		t.Fatalf("attempts = %d, mirror predicts %d", b.Attempts, wantAttempts)
	}
	if b.Retry != wantRetry {
		t.Fatalf("Retry = %v, mirror predicts %v", b.Retry, wantRetry)
	}
	if b.Faults != wantAttempts-1 {
		t.Fatalf("Faults = %d, want %d failed attempts", b.Faults, wantAttempts-1)
	}
	if b.Exec != 5*time.Millisecond {
		t.Fatalf("Exec = %v", b.Exec)
	}
}

// Satellite: a failed session setup must leave the channel cold (not
// Ready), and a later invoke must be able to establish the session.
func TestFailedSetupLeavesChannelReinitializable(t *testing.T) {
	// Find a seed whose first two setup draws fail at rate 0.5 and whose
	// third succeeds: the first call exhausts MaxAttempts=2 and fails,
	// the second call's fresh setup succeeds.
	plan := faults.Plan{SessionFailRate: 0.5, MaxAttempts: 2, Backoff: time.Millisecond, BackoffFactor: 2}
	seed := uint64(0)
	for s := uint64(1); s < 2000; s++ {
		p := plan
		p.Seed = s
		inj, _ := faults.New(p)
		if inj.SessionSetup() != nil && inj.SessionSetup() != nil && inj.SessionSetup() == nil {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no suitable seed found")
	}
	plan.Seed = seed
	eng, c := newFaultyChannel(t, plan)

	var first, second Breakdown
	c.Invoke(1024, time.Millisecond, func(b Breakdown) { first = b })
	eng.Run()
	var fe *faults.Error
	if first.Err == nil || !errors.As(first.Err, &fe) || fe.Site != faults.SiteSessionSetup {
		t.Fatalf("first call: err = %v, want session-setup failure", first.Err)
	}
	if fe.Attempts != 2 {
		t.Fatalf("setup attempts = %d, want 2", fe.Attempts)
	}
	if c.Ready() {
		t.Fatal("failed setup left the channel Ready — must return to cold")
	}
	if first.Retry == 0 {
		t.Fatal("failed setup wait must be accounted as retry tax")
	}

	c.Invoke(1024, time.Millisecond, func(b Breakdown) { second = b })
	eng.Run()
	if second.Err != nil {
		t.Fatalf("second call after re-setup failed: %v", second.Err)
	}
	if second.Setup == 0 {
		t.Fatal("re-initialized call must pay setup again")
	}
	if !c.Ready() {
		t.Fatal("channel must be warm after successful re-setup")
	}
	if c.Calls() != 1 || c.FailedCalls() != 1 {
		t.Fatalf("calls=%d failed=%d, want 1/1", c.Calls(), c.FailedCalls())
	}
}

func TestSetupFailureFailsAllWaiters(t *testing.T) {
	eng, c := newFaultyChannel(t, faults.Plan{SessionFailRate: 1, MaxAttempts: 2})
	errs := 0
	for i := 0; i < 3; i++ {
		c.Invoke(1024, time.Millisecond, func(b Breakdown) {
			if b.Err != nil {
				errs++
			}
		})
	}
	eng.Run()
	if errs != 3 {
		t.Fatalf("failed waiters = %d, want 3", errs)
	}
	if c.Ready() {
		t.Fatal("channel Ready after setup failure")
	}
}

func TestThermalTripFailsWithoutRetry(t *testing.T) {
	eng, c := newFaultyChannel(t, faults.Plan{ThermalTripAt: time.Millisecond, MaxAttempts: 5})
	var b Breakdown
	c.Invoke(1024, time.Millisecond, func(bd Breakdown) { b = bd })
	eng.Run()
	var fe *faults.Error
	if b.Err == nil || !errors.As(b.Err, &fe) || fe.Site != faults.SiteThermalTrip {
		t.Fatalf("err = %v, want thermal trip", b.Err)
	}
	if b.Attempts != 1 {
		t.Fatalf("attempts = %d — thermal trip must not be retried", b.Attempts)
	}
	if n := c.Faults.Injected(faults.SiteThermalTrip); n != 1 {
		t.Fatalf("trip recorded %d times, want once", n)
	}
}

func TestDriverStallStretchesExec(t *testing.T) {
	stall := 7 * time.Millisecond
	eng, c := newFaultyChannel(t, faults.Plan{StallRate: 1, StallDuration: stall})
	var b Breakdown
	c.Invoke(1024, 5*time.Millisecond, func(bd Breakdown) { b = bd })
	eng.Run()
	if b.Err != nil {
		t.Fatalf("stalled call must still succeed: %v", b.Err)
	}
	if b.Exec != 5*time.Millisecond+stall {
		t.Fatalf("Exec = %v, want exec+stall %v", b.Exec, 5*time.Millisecond+stall)
	}
	if b.Faults != 1 {
		t.Fatalf("Faults = %d, want 1 (the stall)", b.Faults)
	}
}

func TestFaultTelemetry(t *testing.T) {
	eng, c := newFaultyChannel(t, faults.Plan{RPCErrorRate: 1, MaxAttempts: 3, Backoff: 2 * time.Millisecond, BackoffFactor: 2})
	c.Tracer = telemetry.NewTracer(eng.Now)
	c.Metrics = telemetry.NewRegistry()
	c.Invoke(1024, time.Millisecond, nil)
	eng.Run()

	retries, failed := 0, 0
	for _, s := range c.Tracer.Spans() {
		switch s.Name {
		case "rpc-retry":
			retries++
			if s.Component != "faults" || s.Duration() == 0 {
				t.Fatalf("rpc-retry span = %+v", s)
			}
		case "rpc-failed":
			failed++
			if s.Attr("instant") != "1" {
				t.Fatalf("rpc-failed must be an instant marker: %+v", s)
			}
		}
	}
	if retries != 2 || failed != 1 {
		t.Fatalf("retry spans = %d, failed markers = %d, want 2/1", retries, failed)
	}
	if got := c.Metrics.Counter("aitax_faults_retries_total"); got != 2 {
		t.Fatalf("retries counter = %v", got)
	}
	if got := c.Metrics.Counter("aitax_faults_failed_calls_total"); got != 1 {
		t.Fatalf("failed-calls counter = %v", got)
	}
	if got := c.Metrics.Counter(telemetry.Labeled("aitax_faults_injected_total", "site", "rpc-transport")); got != 3 {
		t.Fatalf("injected counter = %v, want 3 attempts", got)
	}
}

// With no injector attached the new fields stay zero and behaviour is
// byte-identical to the infallible transport.
func TestNoInjectorBreakdownUnchanged(t *testing.T) {
	eng, c := newChannel()
	var b Breakdown
	c.Invoke(1024, time.Millisecond, func(bd Breakdown) { b = bd })
	eng.Run()
	if b.Err != nil || b.Retry != 0 || b.Faults != 0 {
		t.Fatalf("fault fields set without injector: %+v", b)
	}
	if b.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", b.Attempts)
	}
}

// Same plan and seed must produce the same fault sites and accounting.
func TestFaultRunsDeterministic(t *testing.T) {
	run := func() (sim.Time, []Breakdown) {
		eng := sim.NewEngine()
		dsp := sim.NewResource(eng, "dsp", 1)
		c := NewChannel(eng, soc.Pixel3().RPC, dsp)
		inj, _ := faults.New(faults.Plan{Seed: 5, RPCErrorRate: 0.4, StallRate: 0.3, MaxAttempts: 3}.Resolved(1))
		c.Faults = inj
		var bds []Breakdown
		var next func(i int)
		next = func(i int) {
			if i >= 10 {
				return
			}
			c.Invoke(4096, 2*time.Millisecond, func(b Breakdown) {
				bds = append(bds, Breakdown{Setup: b.Setup, Transport: b.Transport, Queue: b.Queue,
					Exec: b.Exec, Retry: b.Retry, Attempts: b.Attempts, Faults: b.Faults})
				next(i + 1)
			})
		}
		next(0)
		eng.Run()
		return eng.Now(), bds
	}
	end1, b1 := run()
	end2, b2 := run()
	if end1 != end2 || len(b1) != len(b2) {
		t.Fatalf("runs diverged: %v/%d vs %v/%d", end1, len(b1), end2, len(b2))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("call %d diverged: %+v vs %+v", i, b1[i], b2[i])
		}
	}
}
